package aujoin

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"github.com/aujoin/aujoin/internal/store"
)

// persistCorpus builds a deterministic catalog plus probe set over the paper
// joiner's vocabulary, so synonym rules, taxonomy paths and plain token
// edits all appear in the persisted state.
func persistCorpus(seed int64, n int) (catalog, probes []string) {
	vocab := []string{
		"coffee", "shop", "cafe", "latte", "espresso", "cake", "gateau",
		"apple", "bakery", "helsinki", "helsingki", "bar", "central",
		"art", "food", "drinks", "wikipedia", "common", "nothing",
	}
	rng := rand.New(rand.NewSource(seed))
	gen := func(count int) []string {
		out := make([]string, count)
		for i := range out {
			k := 3 + rng.Intn(4)
			toks := make([]string, k)
			for j := range toks {
				toks[j] = vocab[rng.Intn(len(vocab))]
			}
			var b bytes.Buffer
			for j, tok := range toks {
				if j > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(tok)
			}
			out[i] = b.String()
		}
		return out
	}
	return gen(n), gen(n / 4)
}

// queryFingerprint runs the full read surface — Query, QueryTopK and Probe —
// and flattens the results so two indexes can be compared for bit-identical
// behaviour.
func queryFingerprint(ix *Index, probes []string) string {
	var b bytes.Buffer
	for _, q := range probes {
		for _, m := range ix.Query(q) {
			fmt.Fprintf(&b, "q %d %.17g;", m.Record, m.Similarity)
		}
		b.WriteByte('\n')
		for _, m := range ix.QueryTopK(q, 5) {
			fmt.Fprintf(&b, "k %d %.17g;", m.Record, m.Similarity)
		}
		b.WriteByte('\n')
	}
	matches, _ := ix.Probe(probes)
	for _, m := range matches {
		fmt.Fprintf(&b, "p %d %d %.17g;", m.S, m.T, m.Similarity)
	}
	return b.String()
}

// TestRestartEquivalence is the core restart property: build → mutate →
// snapshot → reload must serve bit-identical Query/QueryTopK/Probe results,
// across every filter, a θ sweep and both the unsharded and sharded layouts.
func TestRestartEquivalence(t *testing.T) {
	catalog, probes := persistCorpus(7, 160)
	for _, filter := range []Filter{UFilter, AUFilterHeuristic, AUFilterDP} {
		for _, theta := range []float64{0.7, 0.8, 0.9} {
			for _, shards := range []int{1, 4} {
				name := fmt.Sprintf("filter=%d/theta=%.1f/shards=%d", filter, theta, shards)
				t.Run(name, func(t *testing.T) {
					j := paperJoiner(t)
					ix := j.IndexWith(catalog, JoinOptions{Theta: theta, Tau: 2, Filter: filter}, IndexOptions{Shards: shards})
					ids := ix.Insert(probes[:8])
					ix.RemoveBatch([]int{ids[1], ids[5], 0})

					var buf bytes.Buffer
					if _, err := ix.WriteSnapshot(&buf); err != nil {
						t.Fatalf("WriteSnapshot: %v", err)
					}
					restored, err := paperJoiner(t).ReadSnapshot(&buf)
					if err != nil {
						t.Fatalf("ReadSnapshot: %v", err)
					}

					want := queryFingerprint(ix, probes)
					got := queryFingerprint(restored, probes)
					if want != got {
						t.Fatalf("restored index diverged from original:\n got %q\nwant %q", got, want)
					}

					// Post-restore mutations must behave identically too: the
					// restored index allocates the same stable IDs and serves
					// the same results for them.
					a := ix.Insert(probes[8:12])
					b := restored.Insert(probes[8:12])
					if !reflect.DeepEqual(a, b) {
						t.Fatalf("post-restore insert IDs diverged: %v vs %v", a, b)
					}
					if want, got := queryFingerprint(ix, probes), queryFingerprint(restored, probes); want != got {
						t.Fatalf("post-restore mutations diverged:\n got %q\nwant %q", got, want)
					}
				})
			}
		}
	}
}

// TestPersistentWALReplay checks the log path of recovery: mutations after
// the last checkpoint live only in the WAL, and reopening replays them into
// the exact same state — same IDs, same results.
func TestPersistentWALReplay(t *testing.T) {
	catalog, probes := persistCorpus(11, 120)
	fs := store.NewMemFS()
	jopts := JoinOptions{Theta: 0.8, Tau: 2, Filter: AUFilterDP}

	px, err := paperJoiner(t).openPersistentFS(fs, "data", catalog, jopts, IndexOptions{Shards: 4})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	ids, err := px.Insert(probes[:6])
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	if _, err := px.Remove(ids[2]); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := px.RemoveBatch([]int{1, 3}); err != nil {
		t.Fatalf("remove batch: %v", err)
	}
	if _, err := px.Insert(probes[6:9]); err != nil {
		t.Fatalf("insert: %v", err)
	}
	want := queryFingerprint(px.Index(), probes)
	if err := px.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Catalog and options are deliberately different on reopen: a recovered
	// directory must win over them.
	px2, err := paperJoiner(t).openPersistentFS(fs, "data", nil, JoinOptions{Theta: 0.5}, IndexOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer px2.Close()
	if got := queryFingerprint(px2.Index(), probes); got != want {
		t.Fatalf("replayed state diverged:\n got %q\nwant %q", got, want)
	}
	st := px2.Index().Stats()
	if st.Theta != 0.8 || st.Shards != 4 {
		t.Fatalf("recovered configuration lost: %+v", st)
	}

	// A checkpoint folds the WAL; the next open restores from snapshot only.
	if err := px2.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	px3, err := paperJoiner(t).openPersistentFS(fs, "data", nil, JoinOptions{}, IndexOptions{})
	if err != nil {
		t.Fatalf("reopen after checkpoint: %v", err)
	}
	defer px3.Close()
	if got := queryFingerprint(px3.Index(), probes); got != want {
		t.Fatalf("post-checkpoint state diverged:\n got %q\nwant %q", got, want)
	}
}

// liveSet captures the recovered catalog as id→raw for prefix checking.
func liveSet(ix *Index) map[int]string {
	out := map[int]string{}
	for _, rec := range ix.inner.Snapshot().Live() {
		out[rec.ID] = rec.Raw
	}
	return out
}

// TestPersistentCrashSweep kills the full open→mutate→checkpoint→mutate
// sequence at every filesystem mutation unit and reopens: recovery must
// always succeed and land on a state reachable by applying a prefix of the
// issued batches — a prefix containing every acknowledged one.
func TestPersistentCrashSweep(t *testing.T) {
	catalog, probes := persistCorpus(13, 40)
	jopts := JoinOptions{Theta: 0.8, Tau: 2, Filter: AUFilterDP}

	type batch struct {
		insert []string
		remove []int
	}
	script := []batch{
		{insert: probes[0:2]},
		{remove: []int{1, len(catalog)}},
		{insert: probes[2:4]},
		{remove: []int{0}},
		{insert: probes[4:6]},
	}
	ckptAfter := 2 // checkpoint between batch 2 and 3

	run := func(fs *store.MemFS) (acked int) {
		j := paperJoiner(t)
		px, err := j.openPersistentFS(fs, "data", catalog, jopts, IndexOptions{Shards: 2})
		if err != nil {
			return -1 // not even the initial checkpoint survived
		}
		defer px.Close()
		for i, b := range script {
			var err error
			if b.insert != nil {
				_, err = px.Insert(b.insert)
			} else {
				_, err = px.RemoveBatch(b.remove)
			}
			if err == nil {
				acked = i + 1
			}
			if i+1 == ckptAfter {
				_ = px.Checkpoint()
			}
		}
		return acked
	}

	// Model states: live sets after applying 0..len(script) batches.
	states := make([]map[int]string, 0, len(script)+1)
	{
		j := paperJoiner(t)
		ix := j.IndexWith(catalog, jopts, IndexOptions{Shards: 2})
		states = append(states, liveSet(ix))
		for _, b := range script {
			if b.insert != nil {
				ix.Insert(b.insert)
			} else {
				ix.RemoveBatch(b.remove)
			}
			states = append(states, liveSet(ix))
		}
	}

	dry := store.NewMemFS()
	if run(dry) != len(script) {
		t.Fatal("dry run did not acknowledge every batch")
	}
	total := dry.Spent()

	// Every sweep point rebuilds the index and replays the script, so unlike
	// the store-level byte-exact sweep this one samples: a prime stride keeps
	// the points spread across every phase (snapshot write, rename, dir sync,
	// WAL frames) rather than aliasing onto frame boundaries.
	stride := int64(31)
	if testing.Short() {
		stride = 211
	}
	for k := int64(0); k <= total; k += stride {
		fs := store.NewMemFS()
		fs.FailAfter(k)
		acked := run(fs)
		fs.Heal()
		// Reopen the way a restarted daemon would: same catalog, same options.
		// They only matter when nothing was durable yet (the initial
		// checkpoint itself was killed); a recovered directory ignores them.
		px, err := paperJoiner(t).openPersistentFS(fs, "data", catalog, jopts, IndexOptions{Shards: 2})
		if err != nil {
			t.Fatalf("fault %d: recovery failed after %d acked batches: %v", k, acked, err)
		}
		got := liveSet(px.Index())
		px.Close()
		matched := -1
		for m := max(acked, 0); m <= len(script); m++ {
			if reflect.DeepEqual(got, states[m]) {
				matched = m
				break
			}
		}
		if matched == -1 {
			t.Fatalf("fault %d: recovered state matches no batch prefix ≥ %d acked (live=%d)", k, acked, len(got))
		}
	}
}

// TestConcurrentCheckpointHammer drives checkpoints concurrently with
// mutations and queries; run under -race it checks the capture's atomic cut
// does not tear against the serving and mutation paths.
func TestConcurrentCheckpointHammer(t *testing.T) {
	catalog, probes := persistCorpus(17, 80)
	fs := store.NewMemFS()
	px, err := paperJoiner(t).openPersistentFS(fs, "data", catalog,
		JoinOptions{Theta: 0.8, Tau: 2, Filter: AUFilterDP}, IndexOptions{Shards: 2})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer px.Close()

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := px.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			ids, err := px.Insert([]string{probes[i%len(probes)]})
			if err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			if i%3 == 0 {
				if _, err := px.Remove(ids[0]); err != nil {
					t.Errorf("remove: %v", err)
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			px.Index().QueryTopK(probes[i%len(probes)], 3)
		}
	}()
	wg.Wait()

	// The final durable state must equal the final live state.
	if err := px.Checkpoint(); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	want := queryFingerprint(px.Index(), probes)
	px2, err := paperJoiner(t).openPersistentFS(fs, "data", nil, JoinOptions{}, IndexOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer px2.Close()
	if got := queryFingerprint(px2.Index(), probes); got != want {
		t.Fatalf("state after hammering diverged:\n got %q\nwant %q", got, want)
	}
}
