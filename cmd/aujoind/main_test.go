package main

import (
	"strings"
	"testing"
	"time"
)

// TestValidateFlags pins the flag-combination contract: impossible or
// ambiguous invocations are refused with an error naming the conflict
// instead of half-working.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		cfg     config
		wantErr string // substring; empty = valid
	}{
		{name: "defaults", cfg: config{addr: ":8321", shards: 1}},
		{name: "negative shards", cfg: config{shards: -1}, wantErr: "-shards"},
		{name: "zero shards is GOMAXPROCS", cfg: config{shards: 0}},
		{name: "catalog with join", cfg: config{join: "http://127.0.0.1:8080", catalog: "c.txt"}, wantErr: "-catalog conflicts with -join"},
		{name: "data-dir with join", cfg: config{join: "http://127.0.0.1:8080", dataDir: "/tmp/d"}, wantErr: "-data-dir conflicts with -join"},
		{name: "join without scheme", cfg: config{join: "127.0.0.1:8080"}, wantErr: "http(s) URL"},
		{name: "worker mode ok", cfg: config{join: "http://127.0.0.1:8080", shards: 2}},
		{name: "checkpoint without data-dir", cfg: config{ckptIvl: time.Minute}, wantErr: "-checkpoint-every requires -data-dir"},
		{name: "checkpoint with data-dir", cfg: config{dataDir: "/tmp/d", ckptIvl: time.Minute}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestAdvertiseURL pins how a worker derives the address the coordinator
// calls back on.
func TestAdvertiseURL(t *testing.T) {
	cases := []struct {
		cfg  config
		want string
	}{
		{config{addr: ":8321"}, "http://127.0.0.1:8321"},
		{config{addr: "10.0.0.7:8321"}, "http://10.0.0.7:8321"},
		{config{addr: ":8321", advertise: "http://worker-3:9000"}, "http://worker-3:9000"},
		{config{addr: ":8321", advertise: "http://worker-3:9000/"}, "http://worker-3:9000"},
	}
	for _, tc := range cases {
		if got := tc.cfg.advertiseURL(); got != tc.want {
			t.Errorf("advertiseURL(%+v) = %q, want %q", tc.cfg, got, tc.want)
		}
	}
}
