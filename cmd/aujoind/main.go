// Command aujoind serves a dynamic similarity-join index over HTTP: a
// catalog is indexed at startup and then queried, extended and shrunk
// online. Queries run lock-free against immutable snapshots while inserts
// and removes mutate the catalog underneath (see the Serving section of the
// README and ARCHITECTURE.md for the snapshot model).
//
// Usage:
//
//	aujoind -catalog catalog.txt -theta 0.8 -tau 2 [-addr :8321] [-shards N] \
//	        [-synonyms rules.tsv] [-taxonomy tax.tsv] [-measures TJS] \
//	        [-data-dir /var/lib/aujoin] [-checkpoint-every 5m]
//
// -shards partitions the index so insert/remove batches parallelize across
// shards and rebuild stalls are bounded by shard size (0 = GOMAXPROCS,
// default 1 = classic single partition).
//
// -data-dir makes the catalog durable: every insert/remove batch is fsynced
// to a write-ahead log before it is applied, and the index state is folded
// into an atomic snapshot on demand (POST /snapshot), periodically
// (-checkpoint-every), and on graceful shutdown. On startup, a directory
// holding a usable snapshot wins over -catalog and the build flags: the
// daemon restores the snapshot, replays the log, and serves the exact
// pre-restart state without re-running signature selection or verification
// preparation. The synonym/taxonomy/measure flags must match across
// restarts — similarity resources are not persisted.
//
// Endpoints:
//
//	GET  /query?q=<string>&k=<n>         top-k matches for one query string,
//	                                     streamed as NDJSON (one match per
//	                                     line); k is required and must be ≥ 1,
//	                                     min_sim=<f> optionally raises the
//	                                     similarity threshold for this request,
//	                                     and plan=auto|fixed overrides the
//	                                     adaptive filter planner (auto is the
//	                                     default; fixed pins the build-time
//	                                     filter/τ — results are identical
//	                                     either way, only latency differs)
//	POST /probe {"records": [...]}       join a batch against the catalog,
//	                                     matches streamed as NDJSON lines as
//	                                     they are confirmed
//	POST /insert {"records": [...]}      append a batch, returns stable ids
//	POST /remove {"id": <n>}             tombstone one record by stable id
//	POST /remove-batch {"ids": [...]}    tombstone a batch, returns per-id
//	                                     booleans
//	POST /snapshot                       fold the WAL into a new durable
//	                                     checkpoint (requires -data-dir)
//	GET  /stats                          snapshot statistics
//	GET  /healthz                        liveness probe
//
// Every query and probe runs under the request's context: a client that
// hangs up or times out cancels the in-flight filter-and-verify work instead
// of leaving it to run to completion against a dead connection.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"github.com/aujoin/aujoin"
	"github.com/aujoin/aujoin/internal/cmdutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aujoind: ")

	var (
		addr     = flag.String("addr", ":8321", "listen address")
		catalog  = flag.String("catalog", "", "path to the initial catalog (one record per line); optional")
		theta    = flag.Float64("theta", 0.8, "unified similarity threshold in [0,1]")
		tau      = flag.Int("tau", 2, "overlap constraint")
		filter   = flag.String("filter", "dp", "signature filter: u, heuristic or dp")
		shards   = flag.Int("shards", 1, "index partitions (0 = GOMAXPROCS)")
		synPath  = flag.String("synonyms", "", "optional synonym rules file (lhs<TAB>rhs[<TAB>closeness])")
		taxPath  = flag.String("taxonomy", "", "optional taxonomy file (node<TAB>parent)")
		measures = flag.String("measures", "TJS", "measure combination (e.g. J, TS, TJS)")
		dataDir  = flag.String("data-dir", "", "durable data directory (snapshot + WAL); empty = in-memory only")
		ckptIvl  = flag.Duration("checkpoint-every", 0, "background checkpoint interval (requires -data-dir; 0 disables)")
	)
	flag.Parse()

	opts := []aujoin.Option{aujoin.WithMeasures(*measures)}
	if *synPath != "" {
		f, err := os.Open(*synPath)
		if err != nil {
			log.Fatalf("open synonyms: %v", err)
		}
		opts = append(opts, aujoin.WithSynonymsFrom(f))
		defer f.Close()
	}
	if *taxPath != "" {
		f, err := os.Open(*taxPath)
		if err != nil {
			log.Fatalf("open taxonomy: %v", err)
		}
		opts = append(opts, aujoin.WithTaxonomyFrom(f))
		defer f.Close()
	}
	joiner, err := aujoin.NewStrict(opts...)
	if err != nil {
		log.Fatalf("configuration: %v", err)
	}

	var records []string
	if *catalog != "" {
		if records, err = cmdutil.ReadLines(*catalog); err != nil {
			log.Fatalf("read catalog: %v", err)
		}
	}
	start := time.Now()
	jopts := aujoin.JoinOptions{Theta: *theta, Tau: *tau, Filter: cmdutil.ParseFilter(*filter)}
	iopts := aujoin.IndexOptions{Shards: *shards}
	var ix *aujoin.Index
	var px *aujoin.PersistentIndex
	if *dataDir != "" {
		px, err = joiner.OpenPersistent(*dataDir, records, jopts, iopts)
		if err != nil {
			log.Fatalf("open data dir: %v", err)
		}
		ix = px.Index()
		st := ix.Stats()
		log.Printf("recovered %d records (%d live) from %s in %v (θ=%v τ=%d shards=%d)",
			st.Records, st.Live, *dataDir, time.Since(start).Round(time.Millisecond), st.Theta, st.Tau, st.Shards)
	} else {
		ix = joiner.IndexWith(records, jopts, iopts)
		log.Printf("indexed %d records in %v (θ=%v τ=%d shards=%d)",
			len(records), time.Since(start).Round(time.Millisecond), *theta, *tau, ix.Stats().Shards)
	}

	srv := &server{ix: ix, px: px}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", srv.handleQuery)
	mux.HandleFunc("/probe", srv.handleProbe)
	mux.HandleFunc("/insert", srv.handleInsert)
	mux.HandleFunc("/remove", srv.handleRemove)
	mux.HandleFunc("/remove-batch", srv.handleRemoveBatch)
	mux.HandleFunc("/snapshot", srv.handleSnapshot)
	mux.HandleFunc("/stats", srv.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s", *addr)

	if px != nil && *ckptIvl > 0 {
		go func() {
			ticker := time.NewTicker(*ckptIvl)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					start := time.Now()
					if err := px.Checkpoint(); err != nil {
						// Sticky store failure: further mutations are refused
						// anyway, so log loudly and keep serving reads.
						log.Printf("background checkpoint: %v", err)
						return
					}
					log.Printf("checkpointed in %v", time.Since(start).Round(time.Millisecond))
				}
			}
		}()
	}

	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	if px != nil {
		// One final checkpoint folds the WAL so the next start restores a
		// compact snapshot instead of replaying the whole mutation log.
		if err := px.Checkpoint(); err != nil {
			log.Printf("final checkpoint: %v", err)
		}
		if err := px.Close(); err != nil {
			log.Printf("close data dir: %v", err)
		}
	}
}

// server wires the dynamic index into HTTP handlers. The index is safe for
// concurrent use, so the handlers carry no locking of their own. When px is
// non-nil the daemon is durable: mutation handlers route through it so every
// batch hits the WAL before the index, and a durability failure surfaces as
// HTTP 500 (the store is read-only from then on — queries keep working).
type server struct {
	ix *aujoin.Index
	px *aujoin.PersistentIndex
}

// maxBodyBytes caps POST bodies (an insert batch has no business being
// larger) and maxTopK caps the per-query result heap, so a single request
// cannot balloon the daemon's memory.
const (
	maxBodyBytes = 8 << 20
	maxTopK      = 10000
)

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	// A missing or non-positive k is rejected rather than passed through: an
	// unbounded "all matches" response is never what a serving client wants,
	// and silently treating k=0 as "everything" made the degenerate case the
	// most expensive one.
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k < 1 || k > maxTopK {
		http.Error(w, fmt.Sprintf("k is required and must be an integer in [1, %d]", maxTopK), http.StatusBadRequest)
		return
	}
	opts := aujoin.QueryOptions{K: k}
	if raw := r.URL.Query().Get("min_sim"); raw != "" {
		minSim, err := strconv.ParseFloat(raw, 64)
		if err != nil || minSim <= 0 || minSim > 1 {
			http.Error(w, "min_sim must be a float in (0, 1]", http.StatusBadRequest)
			return
		}
		opts.MinSimilarity = minSim
	}
	switch r.URL.Query().Get("plan") {
	case "", "auto":
		// PlanAuto is the zero value.
	case "fixed":
		opts.Plan = aujoin.PlanFixed
	default:
		http.Error(w, "plan must be auto or fixed", http.StatusBadRequest)
		return
	}
	// The request context cancels the fan-out mid-verification when the
	// client disconnects or times out; there is no one left to tell, so the
	// handler just stops.
	matches, err := s.ix.QueryTopKCtx(r.Context(), q, opts)
	if err != nil {
		return
	}
	nw := cmdutil.NewNDJSONWriter(w)
	for _, m := range matches {
		if nw.Write(m) != nil {
			return
		}
	}
}

type probeRequest struct {
	Records []string `json:"records"`
}

// probeMatch is one streamed probe result line: the stable ID of the matched
// catalog record, the position of the probe record in the request batch, and
// their unified similarity.
type probeMatch struct {
	S          int     `json:"s"`
	T          int     `json:"t"`
	Similarity float64 `json:"similarity"`
}

// handleProbe joins a batch of records against the current snapshot and
// streams each match as an NDJSON line the moment the parallel verify stage
// confirms it — the response starts before the join finishes, peak match
// buffering stays bounded by the worker count, and a client hanging up
// mid-stream cancels the remaining filter-and-verify work via the request
// context.
func (s *server) handleProbe(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req probeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	nw := cmdutil.NewNDJSONWriter(w)
	for m, err := range s.ix.ProbeSeq(r.Context(), req.Records) {
		if err != nil {
			// Cancelled (client gone or deadline passed) mid-join; the
			// pipeline has already stopped, and an NDJSON stream has no
			// in-band error channel worth inventing for a dead client.
			return
		}
		if nw.Write(probeMatch{S: m.S, T: m.T, Similarity: m.Similarity}) != nil {
			return
		}
	}
}

type insertRequest struct {
	Records []string `json:"records"`
}

type insertResponse struct {
	IDs []int `json:"ids"`
}

func (s *server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req insertRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var ids []int
	if s.px != nil {
		var err error
		if ids, err = s.px.Insert(req.Records); err != nil {
			http.Error(w, "durable insert: "+err.Error(), http.StatusInternalServerError)
			return
		}
	} else {
		ids = s.ix.Insert(req.Records)
	}
	if ids == nil {
		ids = []int{}
	}
	writeJSON(w, insertResponse{IDs: ids})
}

type removeRequest struct {
	ID int `json:"id"`
}

type removeResponse struct {
	Removed bool `json:"removed"`
}

func (s *server) handleRemove(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req removeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var removed bool
	if s.px != nil {
		var err error
		if removed, err = s.px.Remove(req.ID); err != nil {
			http.Error(w, "durable remove: "+err.Error(), http.StatusInternalServerError)
			return
		}
	} else {
		removed = s.ix.Remove(req.ID)
	}
	writeJSON(w, removeResponse{Removed: removed})
}

type removeBatchRequest struct {
	IDs []int `json:"ids"`
}

type removeBatchResponse struct {
	// Removed reports, positionally for each requested id, whether it was
	// present and live; RemovedCount totals the true entries.
	Removed      []bool `json:"removed"`
	RemovedCount int    `json:"removed_count"`
}

func (s *server) handleRemoveBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req removeBatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var removed []bool
	if s.px != nil {
		var err error
		if removed, err = s.px.RemoveBatch(req.IDs); err != nil {
			http.Error(w, "durable remove: "+err.Error(), http.StatusInternalServerError)
			return
		}
	} else {
		removed = s.ix.RemoveBatch(req.IDs)
	}
	if removed == nil {
		removed = []bool{}
	}
	count := 0
	for _, ok := range removed {
		if ok {
			count++
		}
	}
	writeJSON(w, removeBatchResponse{Removed: removed, RemovedCount: count})
}

type snapshotResponse struct {
	Checkpointed bool `json:"checkpointed"`
}

// handleSnapshot folds the WAL into a new durable snapshot generation on
// demand. Mutations stall for the duration of the checkpoint; queries do not.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.px == nil {
		http.Error(w, "daemon is not durable: start with -data-dir to enable snapshots", http.StatusBadRequest)
		return
	}
	if err := s.px.Checkpoint(); err != nil {
		http.Error(w, "checkpoint: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, snapshotResponse{Checkpointed: true})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.ix.Stats())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}
