// Command aujoind serves a dynamic similarity-join index over HTTP: a
// catalog is indexed at startup and then queried, extended and shrunk
// online. Queries run lock-free against immutable snapshots while inserts
// and removes mutate the catalog underneath (see the Serving section of the
// README and ARCHITECTURE.md for the snapshot model).
//
// Usage:
//
//	aujoind -catalog catalog.txt -theta 0.8 -tau 2 [-addr :8321] \
//	        [-synonyms rules.tsv] [-taxonomy tax.tsv] [-measures TJS]
//
// Endpoints:
//
//	GET  /query?q=<string>[&k=<n>]   matches for one query string; k>0
//	                                 returns the top-k by similarity
//	POST /insert {"records": [...]}  append records, returns their ids
//	POST /remove {"id": <n>}         tombstone one record by stable id
//	GET  /stats                      snapshot statistics
//	GET  /healthz                    liveness probe
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"github.com/aujoin/aujoin"
	"github.com/aujoin/aujoin/internal/cmdutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aujoind: ")

	var (
		addr     = flag.String("addr", ":8321", "listen address")
		catalog  = flag.String("catalog", "", "path to the initial catalog (one record per line); optional")
		theta    = flag.Float64("theta", 0.8, "unified similarity threshold in [0,1]")
		tau      = flag.Int("tau", 2, "overlap constraint")
		filter   = flag.String("filter", "dp", "signature filter: u, heuristic or dp")
		synPath  = flag.String("synonyms", "", "optional synonym rules file (lhs<TAB>rhs[<TAB>closeness])")
		taxPath  = flag.String("taxonomy", "", "optional taxonomy file (node<TAB>parent)")
		measures = flag.String("measures", "TJS", "measure combination (e.g. J, TS, TJS)")
	)
	flag.Parse()

	opts := []aujoin.Option{aujoin.WithMeasures(*measures)}
	if *synPath != "" {
		f, err := os.Open(*synPath)
		if err != nil {
			log.Fatalf("open synonyms: %v", err)
		}
		opts = append(opts, aujoin.WithSynonymsFrom(f))
		defer f.Close()
	}
	if *taxPath != "" {
		f, err := os.Open(*taxPath)
		if err != nil {
			log.Fatalf("open taxonomy: %v", err)
		}
		opts = append(opts, aujoin.WithTaxonomyFrom(f))
		defer f.Close()
	}
	joiner, err := aujoin.NewStrict(opts...)
	if err != nil {
		log.Fatalf("configuration: %v", err)
	}

	var records []string
	if *catalog != "" {
		if records, err = cmdutil.ReadLines(*catalog); err != nil {
			log.Fatalf("read catalog: %v", err)
		}
	}
	start := time.Now()
	ix := joiner.Index(records, aujoin.JoinOptions{Theta: *theta, Tau: *tau, Filter: cmdutil.ParseFilter(*filter)})
	log.Printf("indexed %d records in %v (θ=%v τ=%d)", len(records), time.Since(start).Round(time.Millisecond), *theta, *tau)

	srv := &server{ix: ix}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", srv.handleQuery)
	mux.HandleFunc("/insert", srv.handleInsert)
	mux.HandleFunc("/remove", srv.handleRemove)
	mux.HandleFunc("/stats", srv.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s", *addr)

	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
}

// server wires the dynamic index into HTTP handlers. The index is safe for
// concurrent use, so the handlers carry no locking of their own.
type server struct {
	ix *aujoin.Index
}

// maxBodyBytes caps POST bodies (an insert batch has no business being
// larger) and maxTopK caps the per-query result heap, so a single request
// cannot balloon the daemon's memory.
const (
	maxBodyBytes = 8 << 20
	maxTopK      = 10000
)

type queryResponse struct {
	Query   string              `json:"query"`
	Matches []aujoin.QueryMatch `json:"matches"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	k := 0
	if ks := r.URL.Query().Get("k"); ks != "" {
		var err error
		if k, err = strconv.Atoi(ks); err != nil || k < 0 || k > maxTopK {
			http.Error(w, fmt.Sprintf("k must be an integer in [0, %d]", maxTopK), http.StatusBadRequest)
			return
		}
	}
	view := s.ix.Snapshot()
	var matches []aujoin.QueryMatch
	if k > 0 {
		matches = view.QueryTopK(q, k)
	} else {
		matches = view.Query(q)
	}
	if matches == nil {
		matches = []aujoin.QueryMatch{}
	}
	writeJSON(w, queryResponse{Query: q, Matches: matches})
}

type insertRequest struct {
	Records []string `json:"records"`
}

type insertResponse struct {
	IDs []int `json:"ids"`
}

func (s *server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req insertRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	ids := s.ix.Insert(req.Records)
	if ids == nil {
		ids = []int{}
	}
	writeJSON(w, insertResponse{IDs: ids})
}

type removeRequest struct {
	ID int `json:"id"`
}

type removeResponse struct {
	Removed bool `json:"removed"`
}

func (s *server) handleRemove(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req removeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, removeResponse{Removed: s.ix.Remove(req.ID)})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.ix.Stats())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}
