// Command aujoind serves a dynamic similarity-join index over HTTP: a
// catalog is indexed at startup and then queried, extended and shrunk
// online. Queries run lock-free against immutable snapshots while inserts
// and removes mutate the catalog underneath (see the Serving section of the
// README and ARCHITECTURE.md for the snapshot model).
//
// Usage:
//
//	aujoind -catalog catalog.txt -theta 0.8 -tau 2 [-addr :8321] [-shards N] \
//	        [-synonyms rules.tsv] [-taxonomy tax.tsv] [-measures TJS] \
//	        [-data-dir /var/lib/aujoin] [-checkpoint-every 5m]
//	aujoind -join http://coord:8080 [-advertise http://host:8321] [-shards N]
//
// -shards partitions the index so insert/remove batches parallelize across
// shards and rebuild stalls are bounded by shard size (0 = GOMAXPROCS,
// default 1 = classic single partition).
//
// -data-dir makes the catalog durable: every insert/remove batch is fsynced
// to a write-ahead log before it is applied, and the index state is folded
// into an atomic snapshot on demand (POST /snapshot), periodically
// (-checkpoint-every), and on graceful shutdown. On startup, a directory
// holding a usable snapshot wins over -catalog and the build flags: the
// daemon restores the snapshot, replays the log, and serves the exact
// pre-restart state without re-running signature selection or verification
// preparation. The synonym/taxonomy/measure flags must match across
// restarts — similarity resources are not persisted.
//
// -join turns the daemon into a cluster worker: it registers with the
// aujoin-coord coordinator at the given URL, receives its replica-group
// assignment and build parameters from it (so -catalog, -theta, -tau,
// -filter and -data-dir conflict with -join), and serves coordinator
// traffic stamped with the cluster's order epoch. -advertise is the URL the
// coordinator reaches this worker at; it defaults to
// http://127.0.0.1<addr> when -addr is a bare port.
//
// Endpoints:
//
//	GET  /query?q=<string>&k=<n>         top-k matches for one query string,
//	                                     streamed as NDJSON (one match per
//	                                     line); k is required and must be ≥ 1,
//	                                     min_sim=<f> optionally raises the
//	                                     similarity threshold for this request,
//	                                     and plan=auto|fixed overrides the
//	                                     adaptive filter planner (auto is the
//	                                     default; fixed pins the build-time
//	                                     filter/τ — results are identical
//	                                     either way, only latency differs)
//	POST /probe {"records": [...]}       join a batch against the catalog,
//	                                     matches streamed as NDJSON lines as
//	                                     they are confirmed
//	POST /insert {"records": [...]}      append a batch, returns stable ids
//	POST /remove {"id": <n>}             tombstone one record by stable id
//	POST /remove-batch {"ids": [...]}    tombstone a batch, returns per-id
//	                                     booleans
//	POST /snapshot                       fold the WAL into a new durable
//	                                     checkpoint (requires -data-dir)
//	GET  /stats                          snapshot statistics
//	GET  /healthz                        liveness probe: 200 as soon as the
//	                                     listener is up
//	GET  /readyz                         readiness probe: 503 until recovery
//	                                     (or cluster configuration) finishes,
//	                                     then 200
//
// Every query and probe runs under the request's context: a client that
// hangs up or times out cancels the in-flight filter-and-verify work instead
// of leaving it to run to completion against a dead connection.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/aujoin/aujoin"
	"github.com/aujoin/aujoin/internal/cluster"
	"github.com/aujoin/aujoin/internal/cmdutil"
)

// config is the parsed and validated flag set.
type config struct {
	addr      string
	catalog   string
	theta     float64
	tau       int
	filter    string
	shards    int
	synPath   string
	taxPath   string
	measures  string
	dataDir   string
	ckptIvl   time.Duration
	join      string
	advertise string
}

// validate rejects flag combinations that cannot mean what the operator
// intended, with errors that say which flag to drop.
func (c *config) validate() error {
	if c.shards < 0 {
		return fmt.Errorf("-shards must be >= 0 (0 selects GOMAXPROCS), got %d", c.shards)
	}
	if c.join != "" {
		if c.catalog != "" {
			return errors.New("-catalog conflicts with -join: a cluster worker is seeded by the coordinator, not from a local file (seed the catalog on aujoin-coord instead)")
		}
		if c.dataDir != "" {
			return errors.New("-data-dir conflicts with -join: cluster workers hold coordinator-assigned record IDs, which the local WAL cannot represent (worker durability is not supported yet)")
		}
		if !strings.HasPrefix(c.join, "http://") && !strings.HasPrefix(c.join, "https://") {
			return fmt.Errorf("-join must be an http(s) URL, got %q", c.join)
		}
	}
	if c.ckptIvl > 0 && c.dataDir == "" {
		return errors.New("-checkpoint-every requires -data-dir")
	}
	return nil
}

// advertiseURL is the URL the coordinator reaches this worker at: the
// -advertise flag when set, else http://127.0.0.1<addr> when -addr is a
// bare port (the local-cluster default), else http://<addr>.
func (c *config) advertiseURL() string {
	if c.advertise != "" {
		return strings.TrimRight(c.advertise, "/")
	}
	if strings.HasPrefix(c.addr, ":") {
		return "http://127.0.0.1" + c.addr
	}
	return "http://" + c.addr
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("aujoind: ")

	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8321", "listen address")
	flag.StringVar(&cfg.catalog, "catalog", "", "path to the initial catalog (one record per line); optional")
	flag.Float64Var(&cfg.theta, "theta", 0.8, "unified similarity threshold in [0,1]")
	flag.IntVar(&cfg.tau, "tau", 2, "overlap constraint")
	flag.StringVar(&cfg.filter, "filter", "dp", "signature filter: u, heuristic or dp")
	flag.IntVar(&cfg.shards, "shards", 1, "index partitions (0 = GOMAXPROCS)")
	flag.StringVar(&cfg.synPath, "synonyms", "", "optional synonym rules file (lhs<TAB>rhs[<TAB>closeness])")
	flag.StringVar(&cfg.taxPath, "taxonomy", "", "optional taxonomy file (node<TAB>parent)")
	flag.StringVar(&cfg.measures, "measures", "TJS", "measure combination (e.g. J, TS, TJS)")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "durable data directory (snapshot + WAL); empty = in-memory only")
	flag.DurationVar(&cfg.ckptIvl, "checkpoint-every", 0, "background checkpoint interval (requires -data-dir; 0 disables)")
	flag.StringVar(&cfg.join, "join", "", "coordinator URL: run as a cluster worker instead of a standalone daemon")
	flag.StringVar(&cfg.advertise, "advertise", "", "URL the coordinator reaches this worker at (default derived from -addr)")
	flag.Parse()

	if err := cfg.validate(); err != nil {
		log.Fatal(err)
	}

	opts := []aujoin.Option{aujoin.WithMeasures(cfg.measures)}
	if cfg.synPath != "" {
		f, err := os.Open(cfg.synPath)
		if err != nil {
			log.Fatalf("open synonyms: %v", err)
		}
		opts = append(opts, aujoin.WithSynonymsFrom(f))
		defer f.Close()
	}
	if cfg.taxPath != "" {
		f, err := os.Open(cfg.taxPath)
		if err != nil {
			log.Fatalf("open taxonomy: %v", err)
		}
		opts = append(opts, aujoin.WithTaxonomyFrom(f))
		defer f.Close()
	}
	joiner, err := aujoin.NewStrict(opts...)
	if err != nil {
		log.Fatalf("configuration: %v", err)
	}

	// The listener comes up before the index does: /healthz answers the
	// moment the socket is bound, /readyz flips to 200 when recovery (or
	// cluster configuration) completes. A restarting durable daemon is
	// reachable-but-not-ready during WAL replay instead of invisible.
	var node *cluster.Node
	var worker *cluster.Worker
	if cfg.join != "" {
		worker = cluster.NewWorker(joiner, cfg.shards)
		node = cluster.NewWorkerNode(worker)
	} else {
		node = cluster.NewNode()
	}

	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           node.Mux(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s", cfg.addr)

	var px *aujoin.PersistentIndex
	ready := make(chan struct{}) // closed once recovery publishes px (or immediately in worker mode)
	if cfg.join != "" {
		close(ready)
		self := cfg.advertiseURL()
		go func() {
			if err := cluster.RegisterWorker(ctx, http.DefaultClient, strings.TrimRight(cfg.join, "/"), self); err != nil {
				if ctx.Err() == nil {
					log.Printf("register with %s: %v", cfg.join, err)
				}
				return
			}
			log.Printf("registered with %s as %s", cfg.join, self)
		}()
	} else {
		go func() {
			defer close(ready)
			var records []string
			if cfg.catalog != "" {
				if records, err = cmdutil.ReadLines(cfg.catalog); err != nil {
					log.Fatalf("read catalog: %v", err)
				}
			}
			start := time.Now()
			jopts := aujoin.JoinOptions{Theta: cfg.theta, Tau: cfg.tau, Filter: cmdutil.ParseFilter(cfg.filter)}
			iopts := aujoin.IndexOptions{Shards: cfg.shards}
			var ix *aujoin.Index
			if cfg.dataDir != "" {
				px, err = joiner.OpenPersistent(cfg.dataDir, records, jopts, iopts)
				if err != nil {
					log.Fatalf("open data dir: %v", err)
				}
				ix = px.Index()
				st := ix.Stats()
				log.Printf("recovered %d records (%d live) from %s in %v (θ=%v τ=%d shards=%d)",
					st.Records, st.Live, cfg.dataDir, time.Since(start).Round(time.Millisecond), st.Theta, st.Tau, st.Shards)
			} else {
				ix = joiner.IndexWith(records, jopts, iopts)
				log.Printf("indexed %d records in %v (θ=%v τ=%d shards=%d)",
					len(records), time.Since(start).Round(time.Millisecond), cfg.theta, cfg.tau, ix.Stats().Shards)
			}
			node.SetBackend(&cluster.Backend{IX: ix, PX: px})
		}()

		if cfg.ckptIvl > 0 {
			go func() {
				<-ready
				if px == nil {
					return
				}
				ticker := time.NewTicker(cfg.ckptIvl)
				defer ticker.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case <-ticker.C:
						start := time.Now()
						if err := px.Checkpoint(); err != nil {
							// Sticky store failure: further mutations are refused
							// anyway, so log loudly and keep serving reads.
							log.Printf("background checkpoint: %v", err)
							return
						}
						log.Printf("checkpointed in %v", time.Since(start).Round(time.Millisecond))
					}
				}
			}()
		}
	}

	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	<-ready // px is published before ready closes (a failed recovery exits via log.Fatalf)
	if px != nil {
		// One final checkpoint folds the WAL so the next start restores a
		// compact snapshot instead of replaying the whole mutation log.
		if err := px.Checkpoint(); err != nil {
			log.Printf("final checkpoint: %v", err)
		}
		if err := px.Close(); err != nil {
			log.Printf("close data dir: %v", err)
		}
	}
}
