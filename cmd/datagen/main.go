// Command datagen writes a synthetic join benchmark to disk: two record
// files, a taxonomy file, a synonym-rule file and a ground-truth file, in
// the formats the aujoin command and the experiment harness consume.
//
// Usage:
//
//	datagen -preset med -size 20000 -seed 1 -out ./data/med
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/aujoin/aujoin/internal/datagen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	var (
		preset = flag.String("preset", "med", "dataset preset: med or wiki")
		size   = flag.Int("size", 10000, "number of records per collection")
		seed   = flag.Int64("seed", 1, "random seed")
		outDir = flag.String("out", "./data", "output directory")
	)
	flag.Parse()

	var cfg datagen.Config
	switch *preset {
	case "wiki":
		cfg = datagen.WIKILike(*size, *seed)
	default:
		cfg = datagen.MEDLike(*size, *seed)
	}
	gen := datagen.New(cfg)
	ds := gen.Generate()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	writeLines(filepath.Join(*outDir, "left.txt"), func(w *bufio.Writer) {
		for _, r := range ds.S {
			fmt.Fprintln(w, r.Raw)
		}
	})
	writeLines(filepath.Join(*outDir, "right.txt"), func(w *bufio.Writer) {
		for _, r := range ds.T {
			fmt.Fprintln(w, r.Raw)
		}
	})
	writeLines(filepath.Join(*outDir, "truth.tsv"), func(w *bufio.Writer) {
		for pair, prov := range ds.Truth {
			fmt.Fprintf(w, "%d\t%d\ttypo=%v syn=%v tax=%v\n", pair[0], pair[1], prov.Typo, prov.SynonymSwap, prov.TaxonomySwap)
		}
	})
	writeFile(filepath.Join(*outDir, "taxonomy.tsv"), func(f *os.File) error { return ds.Tax.Write(f) })
	writeFile(filepath.Join(*outDir, "synonyms.tsv"), func(f *os.File) error { return ds.Rules.Write(f) })

	log.Printf("wrote %s dataset (%d + %d records, %d truth pairs, %d taxonomy nodes, %d rules) to %s",
		ds.Name, len(ds.S), len(ds.T), len(ds.Truth), ds.Tax.Len(), ds.Rules.Len(), *outDir)
}

func writeLines(path string, fill func(*bufio.Writer)) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fill(w)
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}

func writeFile(path string, fill func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := fill(f); err != nil {
		log.Fatal(err)
	}
}
