// Command datagen writes a synthetic join benchmark to disk: two record
// files, a taxonomy file, a synonym-rule file and a ground-truth file, in
// the formats the aujoin command and the experiment harness consume.
//
// Usage:
//
//	datagen -preset med -size 20000 -seed 1 -out ./data/med
//
// Large corpora (1M–10M records) are generated with -stream, which writes
// records as they are drawn instead of materialising both collections in
// memory, and typically with -zipf to give token frequencies a true
// zipfian skew and -vocab to widen the vocabulary:
//
//	datagen -preset wiki -size 5000000 -stream -zipf 1.3 -vocab 200000 -seed 1 -out ./data/wiki5m
//
// Output is a deterministic function of the flags: the same invocation
// (including -seed) reproduces the same files byte for byte. Streamed and
// batch modes draw records in a different order from the shared generator,
// so -stream and non--stream outputs of the same seed differ — pick one
// mode per corpus and keep it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/aujoin/aujoin/internal/datagen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	var (
		preset = flag.String("preset", "med", "dataset preset: med or wiki")
		size   = flag.Int("size", 10000, "number of records per collection")
		seed   = flag.Int64("seed", 1, "random seed")
		outDir = flag.String("out", "./data", "output directory")
		stream = flag.Bool("stream", false, "write records incrementally (constant memory; use for 1M+ records)")
		vocab  = flag.Int("vocab", 0, "override the preset's vocabulary size (0 keeps the preset)")
		zipfS  = flag.Float64("zipf", 0, "token-frequency Zipf exponent s > 1 (0 keeps the preset's legacy skew)")
	)
	flag.Parse()

	var cfg datagen.Config
	switch *preset {
	case "wiki":
		cfg = datagen.WIKILike(*size, *seed)
	default:
		cfg = datagen.MEDLike(*size, *seed)
	}
	if *vocab > 0 {
		cfg.VocabSize = *vocab
	}
	cfg.ZipfS = *zipfS
	gen := datagen.New(cfg)

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	if *stream {
		streamDataset(gen, cfg, *outDir)
		return
	}

	ds := gen.Generate()
	writeLines(filepath.Join(*outDir, "left.txt"), func(w *bufio.Writer) {
		for _, r := range ds.S {
			fmt.Fprintln(w, r.Raw)
		}
	})
	writeLines(filepath.Join(*outDir, "right.txt"), func(w *bufio.Writer) {
		for _, r := range ds.T {
			fmt.Fprintln(w, r.Raw)
		}
	})
	writeLines(filepath.Join(*outDir, "truth.tsv"), func(w *bufio.Writer) {
		for pair, prov := range ds.Truth {
			fmt.Fprintf(w, "%d\t%d\ttypo=%v syn=%v tax=%v\n", pair[0], pair[1], prov.Typo, prov.SynonymSwap, prov.TaxonomySwap)
		}
	})
	writeFile(filepath.Join(*outDir, "taxonomy.tsv"), func(f *os.File) error { return ds.Tax.Write(f) })
	writeFile(filepath.Join(*outDir, "synonyms.tsv"), func(f *os.File) error { return ds.Rules.Write(f) })

	log.Printf("wrote %s dataset (%d + %d records, %d truth pairs, %d taxonomy nodes, %d rules) to %s",
		ds.Name, len(ds.S), len(ds.T), len(ds.Truth), ds.Tax.Len(), ds.Rules.Len(), *outDir)
}

// streamDataset writes the same file set as the batch path but one record
// at a time: each loop iteration draws a left record, then the matching
// right record (a variant of the left one on even positions — recorded in
// the truth file — or an independent draw on odd ones), so memory stays
// bounded by the generator's vocabulary whatever -size is.
func streamDataset(gen *datagen.Generator, cfg datagen.Config, outDir string) {
	left := newLineWriter(filepath.Join(outDir, "left.txt"))
	right := newLineWriter(filepath.Join(outDir, "right.txt"))
	truth := newLineWriter(filepath.Join(outDir, "truth.tsv"))
	truthPairs := 0
	for i := 0; i < cfg.Size; i++ {
		base := gen.BaseRecord()
		fmt.Fprintln(left.w, base)
		if i%2 == 0 {
			variant, prov := gen.Variant(base)
			fmt.Fprintln(right.w, variant)
			fmt.Fprintf(truth.w, "%d\t%d\ttypo=%v syn=%v tax=%v\n", i, i, prov.Typo, prov.SynonymSwap, prov.TaxonomySwap)
			truthPairs++
		} else {
			fmt.Fprintln(right.w, gen.BaseRecord())
		}
	}
	left.close()
	right.close()
	truth.close()
	writeFile(filepath.Join(outDir, "taxonomy.tsv"), func(f *os.File) error { return gen.Taxonomy().Write(f) })
	writeFile(filepath.Join(outDir, "synonyms.tsv"), func(f *os.File) error { return gen.Rules().Write(f) })

	log.Printf("streamed %s dataset (%d + %d records, %d truth pairs, %d taxonomy nodes, %d rules) to %s",
		cfg.Name, cfg.Size, cfg.Size, truthPairs, gen.Taxonomy().Len(), gen.Rules().Len(), outDir)
}

type lineWriter struct {
	f *os.File
	w *bufio.Writer
}

func newLineWriter(path string) *lineWriter {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	return &lineWriter{f: f, w: bufio.NewWriterSize(f, 1<<20)}
}

func (lw *lineWriter) close() {
	if err := lw.w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := lw.f.Close(); err != nil {
		log.Fatal(err)
	}
}

func writeLines(path string, fill func(*bufio.Writer)) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fill(w)
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}

func writeFile(path string, fill func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := fill(f); err != nil {
		log.Fatal(err)
	}
}
