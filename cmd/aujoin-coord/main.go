// Command aujoin-coord is the cluster coordinator: it waits for the
// expected number of aujoind workers (started with -join) to register,
// consistent-hashes the record space across them in replica groups, seeds
// an optional catalog, and then serves the same /query, /probe, /insert,
// /remove and /remove-batch HTTP API as a single aujoind — answers are
// scatter-gathered from the workers and are bit-identical to a single-node
// index over the same records. See the Cluster section of ARCHITECTURE.md.
//
// Usage:
//
//	aujoin-coord -addr :8080 -expect-workers 3 -replicas 2 -catalog records.txt
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/aujoin/aujoin/internal/cluster"
	"github.com/aujoin/aujoin/internal/cmdutil"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		expect   = flag.Int("expect-workers", 3, "number of workers to wait for before bootstrapping")
		replicas = flag.Int("replicas", 2, "replication factor (clamped to the worker count)")
		catalog  = flag.String("catalog", "", "optional newline-delimited record file seeded at bootstrap")
		theta    = flag.Float64("theta", 0.8, "similarity threshold pushed to workers")
		tau      = flag.Int("tau", 2, "pebble overlap constraint tau")
		filter   = flag.String("filter", "dp", "signature filter: u, heuristic, dp")
		hedge    = flag.Duration("hedge", 50*time.Millisecond, "read hedging delay (negative disables)")
		hbEvery  = flag.Duration("heartbeat", 500*time.Millisecond, "worker health-check interval")
		syncFrac = flag.Float64("sync-fraction", 1.0, "auto epoch bump when a worker's dynamic keys reach this fraction of its frozen order (negative disables)")
	)
	flag.Parse()

	if *expect < 1 {
		log.Fatal("aujoin-coord: -expect-workers must be at least 1")
	}
	switch *filter {
	case "u", "heuristic", "dp":
	default:
		log.Fatalf("aujoin-coord: unknown -filter %q (want u, heuristic or dp)", *filter)
	}
	var records []string
	if *catalog != "" {
		var err error
		records, err = cmdutil.ReadLines(*catalog)
		if err != nil {
			log.Fatalf("aujoin-coord: read catalog: %v", err)
		}
		log.Printf("catalog: %d records from %s", len(records), *catalog)
	}

	coord := cluster.NewCoordinator(cluster.CoordConfig{
		Workers:      *expect,
		Replicas:     *replicas,
		Theta:        *theta,
		Tau:          *tau,
		Filter:       *filter,
		Catalog:      records,
		HedgeDelay:   *hedge,
		Heartbeat:    *hbEvery,
		SyncFraction: *syncFrac,
		Logf:         log.Printf,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go coord.Run(ctx)

	srv := &http.Server{Addr: *addr, Handler: coord.Mux()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("aujoin-coord listening on %s, waiting for %d workers (replicas=%d, theta=%.2f, tau=%d, filter=%s)",
			*addr, *expect, *replicas, *theta, *tau, *filter)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("aujoin-coord: %v", err)
		}
	case <-ctx.Done():
		log.Print("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
	if err := coord.BootstrapErr(); err != nil {
		fmt.Fprintf(os.Stderr, "aujoin-coord: bootstrap had failed: %v\n", err)
		os.Exit(1)
	}
}
