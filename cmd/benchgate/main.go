// Command benchgate turns `go test -bench` output into a committed JSON
// snapshot and enforces the perf-regression gate of the CI bench job.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem ./internal/join | \
//	    benchgate -out BENCH_2026-08-08.json
//	go test -run=NONE -bench=. -benchmem ./internal/join | \
//	    benchgate -out bench.json -baseline BENCH_2026-08-08.json \
//	    -gate BenchmarkFilterPhase -max-regress 0.20
//
// Parsing accepts standard benchmark result lines (with or without the
// -cpu suffix); repeated runs of one benchmark (-count N) keep the fastest
// ns/op, the usual noise floor estimate.
//
// Without -out, the snapshot lands at the first free dated name —
// BENCH_<date>.json, then BENCH_<date>.2.json, … — so repeated runs on one
// day accumulate instead of overwriting each other. An explicit -out
// overwrites its target.
//
// -gate takes a comma-separated list of gates. Each gate compares the
// *ratio* of the gated benchmark to a sibling when both sides have one — a
// machine-independent measure, since CI runners and the baseline machine
// differ in absolute speed — and falls back to absolute ns/op otherwise.
// The sibling is <name>Classic by default; "Name/Sibling" names it
// explicitly (e.g. BenchmarkQueryPlanned/BenchmarkQueryFixed gates the
// planned-over-fixed latency ratio). A ":allocs" suffix gates the
// benchmark's absolute allocs/op instead of time (allocation counts are
// deterministic and machine-independent, so no sibling is needed; e.g.
// BenchmarkJoinSeq:allocs catches alloc regressions that ns ratios hide).
// The run fails (exit 1) when any current metric exceeds its baseline
// metric by more than -max-regress.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's parsed measurement.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp int64   `json:"bytes_per_op,omitempty"`
	AllocsOp   int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is the committed JSON shape: environment plus results.
type Snapshot struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches "BenchmarkName[-cpus]  iters  123 ns/op [...]".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// freeSnapshotPath picks the first unused dated snapshot name:
// BENCH_<date>.json, then BENCH_<date>.2.json, BENCH_<date>.3.json, ….
func freeSnapshotPath(date string) string {
	path := "BENCH_" + date + ".json"
	for n := 2; ; n++ {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
		path = fmt.Sprintf("BENCH_%s.%d.json", date, n)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")

	var (
		in         = flag.String("in", "", "benchmark output file (default stdin)")
		out        = flag.String("out", "", "JSON snapshot to write (default BENCH_<date>.json)")
		baseline   = flag.String("baseline", "", "baseline JSON snapshot to gate against (no gating when empty)")
		gate       = flag.String("gate", "BenchmarkFilterPhase", "comma-separated benchmark gates, each Name or Name/Sibling")
		maxRegress = flag.Float64("max-regress", 0.20, "maximal allowed relative regression of the gated metric")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	results, err := parse(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark result lines found in the input")
	}

	snap := Snapshot{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: results,
	}
	path := *out
	if path == "" {
		// Default snapshots append, never clobber: a second run on the same
		// day lands in BENCH_<date>.2.json and so on, so a day with several
		// benchmark sessions keeps every snapshot. An explicit -out keeps
		// overwrite semantics.
		path = freeSnapshotPath(snap.Date)
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d benchmarks)", path, len(results))

	if *baseline == "" {
		return
	}
	base, err := load(*baseline)
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range strings.Split(*gate, ",") {
		g = strings.TrimSpace(g)
		if g == "" {
			continue
		}
		name, sibling, allocs := splitGate(g)
		var err error
		if allocs {
			err = checkAllocs(base, snap, name, *maxRegress)
		} else {
			err = check(base, snap, name, sibling, *maxRegress)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("gate passed: %s within %.0f%% of %s", *gate, *maxRegress*100, *baseline)
}

// splitGate parses one -gate entry: "Name" gates against the implicit
// <Name>Classic sibling, "Name/Sibling" names the ratio's denominator, and
// a ":allocs" suffix switches the gated metric to absolute allocs/op.
func splitGate(g string) (name, sibling string, allocs bool) {
	if rest, ok := strings.CutSuffix(g, ":allocs"); ok {
		return rest, "", true
	}
	if i := strings.IndexByte(g, '/'); i >= 0 {
		return g[:i], g[i+1:], false
	}
	return g, g + "Classic", false
}

// parse reads benchmark result lines, keeping each name's fastest run.
func parse(r io.Reader) ([]Result, error) {
	best := map[string]Result{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		res := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		res.BytesPerOp, res.AllocsOp = parseMem(m[4])
		if prev, ok := best[res.Name]; !ok {
			best[res.Name] = res
			order = append(order, res.Name)
		} else if res.NsPerOp < prev.NsPerOp {
			best[res.Name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		out = append(out, best[name])
	}
	return out, nil
}

var memField = regexp.MustCompile(`(\d+) (B/op|allocs/op)`)

func parseMem(rest string) (bytes, allocs int64) {
	for _, m := range memField.FindAllStringSubmatch(rest, -1) {
		v, _ := strconv.ParseInt(m[1], 10, 64)
		switch m[2] {
		case "B/op":
			bytes = v
		case "allocs/op":
			allocs = v
		}
	}
	return bytes, allocs
}

func load(path string) (Snapshot, error) {
	var s Snapshot
	buf, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	return s, json.Unmarshal(buf, &s)
}

// metric returns the gated measure for one snapshot: ns(gate)/ns(sibling)
// when the snapshot holds both (ratio=true), else the absolute ns/op.
func metric(s Snapshot, gate, sibling string) (val float64, ratio, ok bool) {
	var g, c *Result
	for i := range s.Benchmarks {
		switch s.Benchmarks[i].Name {
		case gate:
			g = &s.Benchmarks[i]
		case sibling:
			c = &s.Benchmarks[i]
		}
	}
	if g == nil {
		return 0, false, false
	}
	if c != nil && c.NsPerOp > 0 {
		return g.NsPerOp / c.NsPerOp, true, true
	}
	return g.NsPerOp, false, true
}

func check(base, cur Snapshot, gate, sibling string, maxRegress float64) error {
	baseVal, bratio, ok := metric(base, gate, sibling)
	if !ok {
		return fmt.Errorf("baseline has no %s result", gate)
	}
	curVal, cratio, ok := metric(cur, gate, sibling)
	if !ok {
		return fmt.Errorf("current run has no %s result", gate)
	}
	kind := "ns/op"
	if bratio && cratio {
		kind = fmt.Sprintf("ratio vs %s", sibling)
	} else if bratio != cratio {
		// One side is missing the sibling: compare absolutes.
		baseVal, _, _ = absMetric(base, gate)
		curVal, _, _ = absMetric(cur, gate)
	}
	limit := baseVal * (1 + maxRegress)
	log.Printf("%s %s: baseline %.4g, current %.4g, limit %.4g", gate, kind, baseVal, curVal, limit)
	if curVal > limit {
		return fmt.Errorf("%s regressed: %s %.4g exceeds baseline %.4g by more than %.0f%%",
			gate, kind, curVal, baseVal, maxRegress*100)
	}
	return nil
}

// checkAllocs gates a benchmark's absolute allocs/op. The parse step keeps
// the fastest run of a -count series, but allocs/op is deterministic across
// runs of one binary, so any run's count is the count.
func checkAllocs(base, cur Snapshot, gate string, maxRegress float64) error {
	baseAllocs, ok := allocsOf(base, gate)
	if !ok {
		return fmt.Errorf("baseline has no %s allocs/op result", gate)
	}
	curAllocs, ok := allocsOf(cur, gate)
	if !ok {
		return fmt.Errorf("current run has no %s allocs/op result", gate)
	}
	limit := float64(baseAllocs) * (1 + maxRegress)
	log.Printf("%s allocs/op: baseline %d, current %d, limit %.4g", gate, baseAllocs, curAllocs, limit)
	if float64(curAllocs) > limit {
		return fmt.Errorf("%s regressed: allocs/op %d exceeds baseline %d by more than %.0f%%",
			gate, curAllocs, baseAllocs, maxRegress*100)
	}
	return nil
}

func allocsOf(s Snapshot, gate string) (int64, bool) {
	for _, b := range s.Benchmarks {
		if b.Name == gate {
			return b.AllocsOp, b.AllocsOp > 0
		}
	}
	return 0, false
}

func absMetric(s Snapshot, gate string) (float64, bool, bool) {
	for _, b := range s.Benchmarks {
		if b.Name == gate {
			return b.NsPerOp, false, true
		}
	}
	return 0, false, false
}
