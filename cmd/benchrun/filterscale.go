package main

import (
	"fmt"
	"strings"
	"time"

	"github.com/aujoin/aujoin/internal/datagen"
	"github.com/aujoin/aujoin/internal/join"
	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/sim"
	"github.com/aujoin/aujoin/internal/strutil"
)

// filterScaleConfig parameterizes the large-corpus filter-phase comparison
// (the "filterscale" experiment): an R×S join with a zipfian-token corpus
// on the indexed side, run once with the hybrid bitmap posting layout and
// once with the classic slice-only layout, reporting the candidate-phase
// wall time of each.
type filterScaleConfig struct {
	Records int     // indexed-side corpus size
	Probes  int     // probe-side record count
	Vocab   int     // vocabulary size; 0 derives Records/100
	ZipfS   float64 // token-frequency Zipf exponent
	Theta   float64
	Tau     int
	Seed    int64
}

type filterScaleRow struct {
	layout string
	stats  join.Stats
	pairs  int
}

type filterScaleResult struct {
	cfg  filterScaleConfig
	gen  time.Duration
	rows []filterScaleRow
}

func (r filterScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "filter phase at scale: %d indexed records × %d probes (vocab %d, zipf s=%.2f, θ=%.2f, τ=%d, seed %d)\n",
		r.cfg.Records, r.cfg.Probes, r.cfg.Vocab, r.cfg.ZipfS, r.cfg.Theta, r.cfg.Tau, r.cfg.Seed)
	fmt.Fprintf(&b, "corpus generation: %v\n\n", r.gen.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-8s %10s %12s %12s %14s %12s %12s %10s %10s\n",
		"layout", "sig", "filter", "verify", "postings", "bitset-tok", "slice-tok", "cands", "results")
	for _, row := range r.rows {
		st := row.stats
		fmt.Fprintf(&b, "%-8s %10v %12v %12v %14d %12d %12d %10d %10d\n",
			row.layout, st.SignatureTime.Round(time.Millisecond),
			st.FilterTime.Round(time.Millisecond), st.VerifyTime.Round(time.Millisecond),
			st.ProcessedPairs, st.BitsetTokens, st.SliceTokens, st.Candidates, row.pairs)
	}
	if len(r.rows) == 2 && r.rows[0].stats.FilterTime > 0 {
		fmt.Fprintf(&b, "\nfilter-phase speedup (classic / hybrid): %.2f×\n",
			float64(r.rows[1].stats.FilterTime)/float64(r.rows[0].stats.FilterTime))
	}
	return b.String()
}

// runFilterScale generates the corpus, runs the join under both posting
// layouts and returns the comparison. The two runs share the collections
// and the joiner, so the only variable is Options.ClassicFilter.
func runFilterScale(cfg filterScaleConfig) fmt.Stringer {
	if cfg.Vocab <= 0 {
		cfg.Vocab = 200
	}
	// Longer plain-token records than the MED preset: with 10–14 tokens a
	// record's signature is long enough for the τ constraint to prune
	// candidates hard, keeping the run filter-bound rather than
	// verification-bound (the point of this experiment is the candidate
	// phase, not the verifier).
	gcfg := datagen.MEDLike(cfg.Records, cfg.Seed)
	gcfg.VocabSize = cfg.Vocab
	gcfg.ZipfS = cfg.ZipfS
	gcfg.MinTokens, gcfg.MaxTokens = 10, 14
	gcfg.DistinctTokens = true
	gcfg.EntityRate, gcfg.SynonymTermRate = 0.05, 0.05
	// A lean rule set keeps per-record signature selection linear-ish: the
	// selector's cost grows with the applicable-rule count, and at millions
	// of records that, not the filter under test, would dominate the run.
	gcfg.SynonymRules, gcfg.TaxonomyNodes = 20, 100
	gen := datagen.New(gcfg)

	genStart := time.Now()
	s := strutil.NewCollection(gen.Collection(cfg.Records))
	t := strutil.NewCollection(gen.Collection(cfg.Probes))
	genTime := time.Since(genStart)

	ctx := sim.NewContext(gen.Rules(), gen.Taxonomy())
	// 5-grams instead of the default: the generator's pronounceable
	// CV-syllable vocabulary shares shorter grams so heavily that no τ can
	// prune the candidate set, and the run would be verification-bound.
	ctx.Q = 5
	j := join.NewJoiner(ctx)
	res := filterScaleResult{cfg: cfg, gen: genTime}
	for _, classic := range []bool{false, true} {
		layout := "hybrid"
		if classic {
			layout = "classic"
		}
		opts := join.Options{Theta: cfg.Theta, Tau: cfg.Tau, Method: pebble.AUHeuristic, ClassicFilter: classic}
		pairs, st := j.Join(s, t, opts)
		res.rows = append(res.rows, filterScaleRow{layout: layout, stats: st, pairs: len(pairs)})
	}
	return res
}
