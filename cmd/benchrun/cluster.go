package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aujoin/aujoin"
	"github.com/aujoin/aujoin/internal/cluster"
	"github.com/aujoin/aujoin/internal/cmdutil"
	"github.com/aujoin/aujoin/internal/datagen"
	"github.com/aujoin/aujoin/internal/metrics"
)

// clusterBenchConfig parameterises the cluster serving benchmark: an
// in-process cluster (coordinator + workers on loopback HTTP) is driven
// with closed-loop top-k query load and a background mutator, once with a
// single worker and once with the full worker set, and the aggregate QPS
// and latency breakdown of the two runs are compared.
type clusterBenchConfig struct {
	Workers  int // full-cluster worker count (phase two)
	Replicas int
	Records  int
	Duration time.Duration
	Clients  int // concurrent closed-loop query clients
	TopK     int
	Theta    float64
	Tau      int
	// Kill stops one worker halfway through the full-cluster run, so the
	// reported numbers include replica failover (requires Replicas >= 2).
	Kill bool
	// Check rebuilds a single-node index over the same catalog, replays the
	// full-cluster run's mutation log onto it, and verifies the quiesced
	// cluster answers a query sample bit-identically; divergence aborts the
	// process with a non-zero exit, so the mode doubles as a cluster smoke.
	Check bool
	Seed  int64
}

// clusterPhase is one load run against one cluster shape.
type clusterPhase struct {
	workers  int
	queries  int64
	errors   int64
	elapsed  time.Duration
	lat      []float64 // client-observed end-to-end latency, ms
	mergeP   [3]float64
	perWork  []workerLat
	killedAt time.Duration // 0 = no kill
}

// workerLat is the direct (coordinator-bypassing) per-group query latency of
// one worker.
type workerLat struct {
	addr string
	lat  []float64
}

// clusterOp is one entry of the mutation log, replayed onto the reference
// index for the equivalence check.
type clusterOp struct {
	inserts []string
	removes []int
}

type clusterBenchResult struct {
	cfg     clusterBenchConfig
	single  clusterPhase
	multi   clusterPhase
	checked int
}

func (r clusterBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "catalog=%d θ=%v τ=%d clients=%d duration=%v replicas=%d\n",
		r.cfg.Records, r.cfg.Theta, r.cfg.Tau, r.cfg.Clients, r.cfg.Duration, r.cfg.Replicas)
	for _, ph := range []clusterPhase{r.single, r.multi} {
		qps := float64(ph.queries) / ph.elapsed.Seconds()
		fmt.Fprintf(&b, "%d worker(s): queries=%d (%.0f qps) errors=%d", ph.workers, ph.queries, qps, ph.errors)
		if ph.killedAt > 0 {
			fmt.Fprintf(&b, " worker-killed-at=%v", ph.killedAt.Round(time.Millisecond))
		}
		b.WriteByte('\n')
		if len(ph.lat) > 0 {
			ps := metrics.Percentiles(ph.lat, 50, 95, 99)
			fmt.Fprintf(&b, "  end-to-end ms: p50=%.3f p95=%.3f p99=%.3f\n", ps[0], ps[1], ps[2])
		}
		fmt.Fprintf(&b, "  coordinator merge ms: p50=%.3f p95=%.3f p99=%.3f\n", ph.mergeP[0], ph.mergeP[1], ph.mergeP[2])
		for _, wl := range ph.perWork {
			if len(wl.lat) == 0 {
				fmt.Fprintf(&b, "  worker %s direct ms: (down)\n", wl.addr)
				continue
			}
			ps := metrics.Percentiles(wl.lat, 50, 95, 99)
			fmt.Fprintf(&b, "  worker %s direct ms: p50=%.3f p95=%.3f p99=%.3f\n", wl.addr, ps[0], ps[1], ps[2])
		}
	}
	sq := float64(r.single.queries) / r.single.elapsed.Seconds()
	mq := float64(r.multi.queries) / r.multi.elapsed.Seconds()
	if sq > 0 {
		fmt.Fprintf(&b, "aggregate QPS %dw/%dw: %.2fx (scales with cores: each worker is in-process here, GOMAXPROCS bounds the win)\n",
			r.multi.workers, r.single.workers, mq/sq)
	}
	if r.cfg.Check {
		fmt.Fprintf(&b, "equivalence: %d queries bit-identical to single-node index\n", r.checked)
	}
	return b.String()
}

// benchCluster is an in-process cluster the benchmark drives over real HTTP.
type benchCluster struct {
	coord   *cluster.Coordinator
	coordTS *httptest.Server
	workers []*httptest.Server
	cancel  context.CancelFunc
}

func startBenchCluster(n, r int, catalog []string, cfg clusterBenchConfig) (*benchCluster, error) {
	ctx, cancel := context.WithCancel(context.Background())
	coord := cluster.NewCoordinator(cluster.CoordConfig{
		Workers: n, Replicas: r, Theta: cfg.Theta, Tau: cfg.Tau, Filter: "dp",
		Catalog: catalog, Heartbeat: 200 * time.Millisecond,
	})
	bc := &benchCluster{coord: coord, coordTS: httptest.NewServer(coord.Mux()), cancel: cancel}
	go coord.Run(ctx)
	for i := 0; i < n; i++ {
		j, err := aujoin.NewStrict()
		if err != nil {
			bc.close()
			return nil, err
		}
		node := cluster.NewWorkerNode(cluster.NewWorker(j, 1))
		wts := httptest.NewServer(node.Mux())
		bc.workers = append(bc.workers, wts)
		if err := cluster.RegisterWorker(ctx, http.DefaultClient, bc.coordTS.URL, wts.URL); err != nil {
			bc.close()
			return nil, err
		}
	}
	deadline := time.Now().Add(5 * time.Minute)
	for !coord.Ready() {
		if err := coord.BootstrapErr(); err != nil {
			bc.close()
			return nil, err
		}
		if time.Now().After(deadline) {
			bc.close()
			return nil, fmt.Errorf("cluster of %d did not become ready", n)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return bc, nil
}

func (bc *benchCluster) close() {
	bc.cancel()
	bc.coordTS.Close()
	for _, w := range bc.workers {
		w.Close()
	}
}

// clusterTopK fetches one top-k answer (from the coordinator, or — with a
// group and epoch stamp — directly from a worker).
func clusterTopK(base, q string, k int, extra string, header http.Header) ([]aujoin.QueryMatch, error) {
	req, err := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/query?q=%s&k=%d%s", base, url.QueryEscape(q), k, extra), nil)
	if err != nil {
		return nil, err
	}
	for key, vs := range header {
		req.Header[key] = vs
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var out []aujoin.QueryMatch
	err = cmdutil.DecodeNDJSON(resp.Body, func(m aujoin.QueryMatch) error {
		out = append(out, m)
		return nil
	})
	return out, err
}

// runClusterPhase drives the closed-loop load against one cluster shape and
// collects the latency breakdown. It returns the mutation log so the
// equivalence check can replay it.
func runClusterPhase(bc *benchCluster, n, r int, queryPool, insertPool []string, cfg clusterBenchConfig, kill bool) (clusterPhase, []clusterOp, error) {
	ph := clusterPhase{workers: n}
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()

	var queries, errs int64
	latAll := make([][]float64, cfg.Clients)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w) + 1))
			var lat []float64
			for i := 0; time.Now().Before(deadline); i++ {
				q := queryPool[rng.Intn(len(queryPool))]
				t0 := time.Now()
				_, err := clusterTopK(bc.coordTS.URL, q, cfg.TopK, "", nil)
				d := time.Since(t0)
				atomic.AddInt64(&queries, 1)
				if err != nil {
					atomic.AddInt64(&errs, 1)
				} else if i%4 == 0 {
					lat = append(lat, float64(d.Microseconds())/1000)
				}
			}
			latAll[w] = lat
		}(w)
	}

	// Mutator: single-threaded, so the op order (and therefore the
	// coordinator's ID allocation) is exactly reproducible on the reference
	// index.
	var ops []clusterOp
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(cfg.Seed + 4242))
		var live []int
		for time.Now().Before(deadline) {
			batch := make([]string, 1+rng.Intn(3))
			for i := range batch {
				batch[i] = insertPool[rng.Intn(len(insertPool))]
			}
			body, _ := json.Marshal(cluster.InsertRequest{Records: batch})
			resp, err := http.Post(bc.coordTS.URL+"/insert", "application/json", bytes.NewReader(body))
			op := clusterOp{}
			if err == nil {
				var ir cluster.InsertResponse
				if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&ir) == nil {
					op.inserts = batch
					live = append(live, ir.IDs...)
				}
				resp.Body.Close()
			}
			if len(live) > 16 {
				k := rng.Intn(len(live))
				id := live[k]
				body, _ := json.Marshal(cluster.RemoveBatchRequest{IDs: []int{id}})
				resp, err := http.Post(bc.coordTS.URL+"/remove-batch", "application/json", bytes.NewReader(body))
				if err == nil {
					if resp.StatusCode == http.StatusOK {
						op.removes = append(op.removes, id)
						live = append(live[:k], live[k+1:]...)
					}
					resp.Body.Close()
				}
			}
			if op.inserts != nil || op.removes != nil {
				ops = append(ops, op)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	if kill && n > 1 && r > 1 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(cfg.Duration / 2)
			ph.killedAt = time.Since(start)
			bc.workers[1].CloseClientConnections()
			bc.workers[1].Close()
		}()
	}
	wg.Wait()
	ph.queries, ph.errors, ph.elapsed = queries, errs, time.Since(start)
	for _, l := range latAll {
		ph.lat = append(ph.lat, l...)
	}

	// Coordinator-side merge percentiles and per-worker direct latency.
	st := bc.coord.Stats()
	ph.mergeP = [3]float64{st.MergeMsP50, st.MergeMsP95, st.MergeMsP99}
	ring := cluster.NewRing(n, r)
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	for wi, wts := range bc.workers {
		wl := workerLat{addr: wts.URL}
		groups := ring.GroupsOf(wi)
		for i := 0; i < 40; i++ {
			g := groups[i%len(groups)]
			hdr := http.Header{}
			hdr.Set(cluster.EpochHeader, strconv.FormatInt(bc.coord.Stats().Epoch, 10))
			q := queryPool[rng.Intn(len(queryPool))]
			t0 := time.Now()
			if _, err := clusterTopK(wts.URL, q, cfg.TopK, fmt.Sprintf("&group=%d", g), hdr); err != nil {
				break // dead (killed) worker: report it as down
			}
			wl.lat = append(wl.lat, float64(time.Since(t0).Microseconds())/1000)
		}
		ph.perWork = append(ph.perWork, wl)
	}
	return ph, ops, nil
}

// runClusterBench boots the single-worker and full clusters over the same
// catalog, drives the same load shape at both, and (with Check) verifies
// the full cluster still answers bit-identically to a single-node index
// after the run's mutations — and after the mid-run worker kill.
func runClusterBench(cfg clusterBenchConfig) clusterBenchResult {
	gen := datagen.New(datagen.MEDLike(cfg.Records, cfg.Seed))
	ds := gen.Generate()
	catalog := make([]string, len(ds.S))
	for i, rec := range ds.S {
		catalog[i] = rec.Raw
	}
	queryPool := make([]string, len(ds.T))
	insertPool := make([]string, len(ds.T))
	for i, rec := range ds.T {
		queryPool[i] = rec.Raw
		insertPool[i] = rec.Raw
	}

	res := clusterBenchResult{cfg: cfg}

	single, err := startBenchCluster(1, 1, catalog, cfg)
	if err != nil {
		log.Fatalf("cluster: boot 1-worker cluster: %v", err)
	}
	res.single, _, err = runClusterPhase(single, 1, 1, queryPool, insertPool, cfg, false)
	single.close()
	if err != nil {
		log.Fatalf("cluster: 1-worker phase: %v", err)
	}

	multi, err := startBenchCluster(cfg.Workers, cfg.Replicas, catalog, cfg)
	if err != nil {
		log.Fatalf("cluster: boot %d-worker cluster: %v", cfg.Workers, err)
	}
	ph, ops, err := runClusterPhase(multi, cfg.Workers, cfg.Replicas, queryPool, insertPool, cfg, cfg.Kill)
	if err != nil {
		multi.close()
		log.Fatalf("cluster: %d-worker phase: %v", cfg.Workers, err)
	}
	res.multi = ph

	if cfg.Check {
		// Replay the run onto a single-node index and compare the quiesced
		// cluster against it, bit for bit.
		j, err := aujoin.NewStrict()
		if err != nil {
			log.Fatalf("cluster: %v", err)
		}
		ref := j.IndexWith(catalog,
			aujoin.JoinOptions{Theta: cfg.Theta, Tau: cfg.Tau, Filter: aujoin.AUFilterDP},
			aujoin.IndexOptions{Shards: 1})
		for _, op := range ops {
			if op.inserts != nil {
				ref.Insert(op.inserts)
			}
			if op.removes != nil {
				ref.RemoveBatch(op.removes)
			}
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 99))
		for i := 0; i < 30; i++ {
			q := queryPool[rng.Intn(len(queryPool))]
			got, err := clusterTopK(multi.coordTS.URL, q, cfg.TopK, "", nil)
			if err != nil {
				multi.close()
				log.Fatalf("cluster: check query %d: %v", i, err)
			}
			want := ref.QueryTopK(q, cfg.TopK)
			same := len(got) == len(want)
			for k := 0; same && k < len(want); k++ {
				same = got[k] == want[k]
			}
			if !same {
				multi.close()
				log.Fatalf("cluster: check query %d (%q) diverged:\n  cluster     %v\n  single-node %v", i, q, got, want)
			}
			res.checked++
		}
	}
	multi.close()
	return res
}
