// Command benchrun regenerates the paper's tables and figures on synthetic
// MED-like and WIKI-like datasets and prints them as plain-text tables. It
// also hosts the concurrent serving load generator for the dynamic index.
//
// Usage:
//
//	benchrun -exp table8            # one experiment
//	benchrun -exp all -med 2000 -wiki 4000
//	benchrun -exp serve -serve-duration 10s -serve-workers 8 -shards 4
//
// Experiment identifiers follow DESIGN.md §3: table8, table9, fig3, fig4,
// fig5, fig6, fig7, table10, table11, table12, fig8, table13, table14.
// Five extra identifiers (not part of the paper, excluded from "all"):
//
//   - "serve" drives concurrent QueryTopK traffic against a mutating
//     dynamic index and reports QPS, latency percentiles and rebuild
//     counts.
//   - "profile" samples a mixed join + serving workload under the CPU
//     profiler and writes a pprof profile (default default.pgo) for
//     profile-guided optimization: go build -pgo=default.pgo ./...
//   - "filterscale" compares the hybrid bitmap candidate phase against the
//     classic slice layout on a large zipfian corpus (default 1M indexed
//     records), reporting per-layout filter wall time and the speedup.
//   - "recover" builds a sharded index cold, writes a durable snapshot,
//     restores a second index from it and reports cold-build vs restore
//     wall time plus snapshot size; it exits non-zero if the restored
//     index's top-k answers diverge, so it doubles as a recovery smoke.
//   - "cluster" boots an in-process multi-worker cluster (coordinator +
//     aujoind workers over loopback HTTP), drives closed-loop query load
//     with a background mutator at a 1-worker and an N-worker cluster,
//     optionally kills a worker mid-run, and reports aggregate QPS plus
//     end-to-end, coordinator-merge and per-worker latency percentiles;
//     -cluster-check additionally verifies the cluster's answers are
//     bit-identical to a single-node index (non-zero exit on divergence).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/aujoin/aujoin/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchrun: ")

	var (
		exp  = flag.String("exp", "all", "experiment id (see DESIGN.md §3) or 'all'")
		med  = flag.Int("med", 0, "MED-like dataset size (default from the harness)")
		wiki = flag.Int("wiki", 0, "WIKI-like dataset size (default from the harness)")
		seed = flag.Int64("seed", 1, "random seed")

		serveDuration = flag.Duration("serve-duration", 5*time.Second, "serve mode: load duration")
		serveWorkers  = flag.Int("serve-workers", runtime.GOMAXPROCS(0), "serve mode: concurrent query workers")
		serveTheta    = flag.Float64("serve-theta", 0.8, "serve mode: similarity threshold")
		serveTau      = flag.Int("serve-tau", 2, "serve mode: overlap constraint")
		serveTopK     = flag.Int("serve-k", 10, "serve mode: top-k per query")
		serveMutate   = flag.Duration("serve-mutate-every", 10*time.Millisecond, "serve mode: pause between mutation batches")
		serveTimeout  = flag.Duration("serve-query-timeout", 0, "serve mode: per-query deadline (0 = none)")
		shards        = flag.Int("shards", 1, "serve mode: index partitions (0 = GOMAXPROCS)")
		mixedQueries  = flag.Bool("mixed-queries", false, "serve mode: bimodal short/long query workload with per-length-bucket latency percentiles")
		servePlan     = flag.String("serve-plan", "auto", "serve mode: per-query filter planning: auto, fixed, or a pinned probe config (ufilter/t1, auheur/t2, audp/t3, ...)")

		profileOut  = flag.String("profile-out", "default.pgo", "profile mode: output file (pprof format)")
		profileSize = flag.Int("profile-size", 4000, "profile mode: dataset size for the sampled workload")

		recoverRecords = flag.Int("recover-records", 100_000, "recover mode: catalog size to snapshot and restore")
		recoverShards  = flag.Int("recover-shards", 4, "recover mode: index partitions (0 = GOMAXPROCS)")
		recoverTheta   = flag.Float64("recover-theta", 0.8, "recover mode: similarity threshold")
		recoverTau     = flag.Int("recover-tau", 2, "recover mode: overlap constraint")
		recoverProbes  = flag.Int("recover-probes", 100, "recover mode: top-k equivalence probe count")
		recoverDir     = flag.String("recover-dir", "", "recover mode: snapshot directory (empty = temp dir)")

		clusterWorkers  = flag.Int("cluster-workers", 3, "cluster mode: worker count for the full-cluster phase")
		clusterReplicas = flag.Int("cluster-replicas", 2, "cluster mode: replication factor")
		clusterRecords  = flag.Int("cluster-records", 2000, "cluster mode: seeded catalog size")
		clusterDuration = flag.Duration("cluster-duration", 3*time.Second, "cluster mode: load duration per phase")
		clusterClients  = flag.Int("cluster-clients", 4, "cluster mode: concurrent closed-loop query clients")
		clusterTopK     = flag.Int("cluster-k", 10, "cluster mode: top-k per query")
		clusterTheta    = flag.Float64("cluster-theta", 0.8, "cluster mode: similarity threshold")
		clusterTau      = flag.Int("cluster-tau", 2, "cluster mode: overlap constraint")
		clusterKill     = flag.Bool("cluster-kill", true, "cluster mode: kill one worker halfway through the full-cluster phase")
		clusterCheck    = flag.Bool("cluster-check", false, "cluster mode: verify the cluster answers bit-identically to a single-node index (non-zero exit on divergence)")

		scaleRecords = flag.Int("scale-records", 1_000_000, "filterscale mode: indexed-side corpus size")
		scaleProbes  = flag.Int("scale-probes", 200, "filterscale mode: probe-side record count")
		scaleVocab   = flag.Int("scale-vocab", 0, "filterscale mode: vocabulary size (0 = 200: every list dense)")
		scaleZipf    = flag.Float64("scale-zipf", 0, "filterscale mode: token-frequency Zipf exponent s > 1 (0 = legacy mild skew)")
		scaleTheta   = flag.Float64("scale-theta", 0.9, "filterscale mode: similarity threshold")
		scaleTau     = flag.Int("scale-tau", 12, "filterscale mode: overlap constraint")
	)
	flag.Parse()

	if _, err := parseServePlan(*servePlan); err != nil {
		log.Fatal(err)
	}

	cfg := experiments.DefaultConfig()
	if *med > 0 {
		cfg.MEDSize = *med
	}
	if *wiki > 0 {
		cfg.WIKISize = *wiki
	}
	cfg.Seed = *seed

	runners := map[string]func() fmt.Stringer{
		"serve": func() fmt.Stringer {
			return runServe(serveConfig{
				CatalogSize:  cfg.MEDSize,
				Theta:        *serveTheta,
				Tau:          *serveTau,
				Duration:     *serveDuration,
				Workers:      *serveWorkers,
				TopK:         *serveTopK,
				Shards:       *shards,
				MutateEvery:  *serveMutate,
				QueryTimeout: *serveTimeout,
				MixedQueries: *mixedQueries,
				PlanMode:     *servePlan,
				Seed:         *seed,
			})
		},
		"profile": func() fmt.Stringer { return runProfile(*profileOut, *profileSize, *seed) },
		"recover": func() fmt.Stringer {
			return runRecover(recoverConfig{
				Records: *recoverRecords,
				Shards:  *recoverShards,
				Theta:   *recoverTheta,
				Tau:     *recoverTau,
				Probes:  *recoverProbes,
				Dir:     *recoverDir,
				Seed:    *seed,
			})
		},
		"cluster": func() fmt.Stringer {
			return runClusterBench(clusterBenchConfig{
				Workers:  *clusterWorkers,
				Replicas: *clusterReplicas,
				Records:  *clusterRecords,
				Duration: *clusterDuration,
				Clients:  *clusterClients,
				TopK:     *clusterTopK,
				Theta:    *clusterTheta,
				Tau:      *clusterTau,
				Kill:     *clusterKill,
				Check:    *clusterCheck,
				Seed:     *seed,
			})
		},
		"filterscale": func() fmt.Stringer {
			return runFilterScale(filterScaleConfig{
				Records: *scaleRecords,
				Probes:  *scaleProbes,
				Vocab:   *scaleVocab,
				ZipfS:   *scaleZipf,
				Theta:   *scaleTheta,
				Tau:     *scaleTau,
				Seed:    *seed,
			})
		},
		"table8":  func() fmt.Stringer { return experiments.RunTable8(cfg, []float64{0.70, 0.75}) },
		"table9":  func() fmt.Stringer { return experiments.RunTable9(cfg, []int{3, 4, 5, 6}, 100) },
		"fig3":    func() fmt.Stringer { return experiments.RunFig3(cfg) },
		"fig4":    func() fmt.Stringer { return experiments.RunFig4(cfg, 3) },
		"fig5":    func() fmt.Stringer { return experiments.RunFig5(cfg, 0.85) },
		"fig6":    func() fmt.Stringer { return experiments.RunFig6(cfg, 3) },
		"fig7":    func() fmt.Stringer { return experiments.RunFig7(cfg, nil, 0.9, 3) },
		"table10": func() fmt.Stringer { return experiments.RunFig7(cfg, nil, 0.9, 3) },
		"table11": func() fmt.Stringer { return experiments.RunTable11(cfg) },
		"table12": func() fmt.Stringer { return experiments.RunTable12(cfg, 20) },
		"fig8":    func() fmt.Stringer { return experiments.RunFig8(cfg, nil) },
		"table13": func() fmt.Stringer { return experiments.RunTable13(cfg, []float64{0.70, 0.75}) },
		"table14": func() fmt.Stringer { return experiments.RunTable14(cfg, 3) },
	}
	order := []string{"table8", "table9", "fig3", "fig4", "fig5", "fig6", "fig7",
		"table10", "table11", "table12", "fig8", "table13", "table14"}

	ids := []string{strings.ToLower(*exp)}
	if *exp == "all" {
		ids = order
	}
	for _, id := range ids {
		run, ok := runners[id]
		if !ok {
			log.Printf("unknown experiment %q; known: %s, serve, profile, filterscale, recover, cluster", id, strings.Join(order, ", "))
			os.Exit(2)
		}
		fmt.Printf("=== %s ===\n%s\n", id, run().String())
	}
}
