// Command benchrun regenerates the paper's tables and figures on synthetic
// MED-like and WIKI-like datasets and prints them as plain-text tables.
//
// Usage:
//
//	benchrun -exp table8            # one experiment
//	benchrun -exp all -med 2000 -wiki 4000
//
// Experiment identifiers follow DESIGN.md §3: table8, table9, fig3, fig4,
// fig5, fig6, fig7, table10, table11, table12, fig8, table13, table14.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/aujoin/aujoin/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchrun: ")

	var (
		exp  = flag.String("exp", "all", "experiment id (see DESIGN.md §3) or 'all'")
		med  = flag.Int("med", 0, "MED-like dataset size (default from the harness)")
		wiki = flag.Int("wiki", 0, "WIKI-like dataset size (default from the harness)")
		seed = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *med > 0 {
		cfg.MEDSize = *med
	}
	if *wiki > 0 {
		cfg.WIKISize = *wiki
	}
	cfg.Seed = *seed

	runners := map[string]func() fmt.Stringer{
		"table8":  func() fmt.Stringer { return experiments.RunTable8(cfg, []float64{0.70, 0.75}) },
		"table9":  func() fmt.Stringer { return experiments.RunTable9(cfg, []int{3, 4, 5, 6}, 100) },
		"fig3":    func() fmt.Stringer { return experiments.RunFig3(cfg) },
		"fig4":    func() fmt.Stringer { return experiments.RunFig4(cfg, 3) },
		"fig5":    func() fmt.Stringer { return experiments.RunFig5(cfg, 0.85) },
		"fig6":    func() fmt.Stringer { return experiments.RunFig6(cfg, 3) },
		"fig7":    func() fmt.Stringer { return experiments.RunFig7(cfg, nil, 0.9, 3) },
		"table10": func() fmt.Stringer { return experiments.RunFig7(cfg, nil, 0.9, 3) },
		"table11": func() fmt.Stringer { return experiments.RunTable11(cfg) },
		"table12": func() fmt.Stringer { return experiments.RunTable12(cfg, 20) },
		"fig8":    func() fmt.Stringer { return experiments.RunFig8(cfg, nil) },
		"table13": func() fmt.Stringer { return experiments.RunTable13(cfg, []float64{0.70, 0.75}) },
		"table14": func() fmt.Stringer { return experiments.RunTable14(cfg, 3) },
	}
	order := []string{"table8", "table9", "fig3", "fig4", "fig5", "fig6", "fig7",
		"table10", "table11", "table12", "fig8", "table13", "table14"}

	ids := []string{strings.ToLower(*exp)}
	if *exp == "all" {
		ids = order
	}
	for _, id := range ids {
		run, ok := runners[id]
		if !ok {
			log.Printf("unknown experiment %q; known: %s", id, strings.Join(order, ", "))
			os.Exit(2)
		}
		fmt.Printf("=== %s ===\n%s\n", id, run().String())
	}
}
