package main

import (
	"fmt"
	"log"
	"os"
	"runtime/pprof"
	"time"

	"github.com/aujoin/aujoin/internal/datagen"
	"github.com/aujoin/aujoin/internal/join"
	"github.com/aujoin/aujoin/internal/pebble"
)

// profileResult summarizes one "profile" run: a CPU profile of a mixed
// batch-join and serving workload, written in pprof format for
// profile-guided optimization (go build -pgo=<file>).
type profileResult struct {
	out     string
	elapsed time.Duration
	joins   int
	probes  int
}

func (r profileResult) String() string {
	return fmt.Sprintf("wrote CPU profile to %s (%v sampled: %d joins, %d probes)\n"+
		"build with it: go build -pgo=%s ./...", r.out, r.elapsed.Round(time.Millisecond), r.joins, r.probes, r.out)
}

// runProfile samples a representative workload under the CPU profiler:
// batch R×S joins and a self-join across θ/τ settings (signature
// selection, hybrid count filter, prepared verification), then dynamic
// serving — inserts driving segment growth and rebuilds, interleaved with
// single-record and top-k probes. The mix keeps the hot paths the PGO
// build should specialize — countFilterRecord, FlushDense, the verifier —
// dominant in the sample.
func runProfile(out string, size int, seed int64) fmt.Stringer {
	gen := datagen.New(datagen.MEDLike(size, seed))
	ds := gen.Generate()
	j := join.NewJoiner(ds.Context())

	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		log.Fatal(err)
	}
	start := time.Now()

	joins := 0
	for _, tau := range []int{2, 3} {
		j.Join(ds.S, ds.T, join.Options{Theta: 0.80, Tau: tau, Method: pebble.AUDP})
		joins++
	}
	j.SelfJoin(ds.S, join.Options{Theta: 0.85, Tau: 2, Method: pebble.AUDP})
	joins++

	opts := join.Options{Theta: 0.80, Tau: 2, Method: pebble.AUDP}
	dx := j.BuildDynamicIndex(ds.S, opts, join.DynamicOptions{})
	probes := 0
	insertBatch := make([]string, 0, 64)
	for round := 0; round < 8; round++ {
		insertBatch = insertBatch[:0]
		for i := 0; i < 64; i++ {
			insertBatch = append(insertBatch, gen.BaseRecord())
		}
		dx.Insert(insertBatch)
		v := dx.Snapshot()
		for i := 0; i < 2000; i++ {
			tokens := ds.T[(round*2000+i)%len(ds.T)].Tokens
			if i%2 == 0 {
				v.ProbeRecord(tokens)
			} else {
				v.QueryTopK(tokens, 10)
			}
			probes++
		}
	}

	elapsed := time.Since(start)
	pprof.StopCPUProfile()
	return profileResult{out: out, elapsed: elapsed, joins: joins, probes: probes}
}
