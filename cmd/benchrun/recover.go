package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"time"

	"github.com/aujoin/aujoin/internal/datagen"
	"github.com/aujoin/aujoin/internal/join"
	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/store"
)

// recoverConfig parameterises the crash-recovery benchmark (the "recover"
// experiment): build a sharded index cold from a MED-like corpus, mutate it,
// write a durable snapshot, restore a second index from that snapshot, and
// compare the wall time of the two paths. The restored index is then checked
// for bit-identical top-k answers against the original — a mismatch is fatal,
// which is what makes this runnable as a CI recovery smoke.
type recoverConfig struct {
	Records int     // catalog size built cold and snapshotted
	Shards  int     // index partitions (0 = GOMAXPROCS)
	Theta   float64 // similarity threshold
	Tau     int     // overlap constraint
	Probes  int     // equivalence-check query count
	Dir     string  // snapshot directory; empty = a fresh temp dir
	Seed    int64
}

type recoverResult struct {
	cfg       recoverConfig
	coldBuild time.Duration // generate-free wall time of BuildShardedIndex
	capture   time.Duration // capture + encode + write + sync
	restore   time.Duration // read + decode + restore
	snapBytes int64
	probes    int
	matches   int
}

func (r recoverResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recovery: %d records, %d shards, θ=%.2f τ=%d (seed %d)\n",
		r.cfg.Records, r.cfg.Shards, r.cfg.Theta, r.cfg.Tau, r.cfg.Seed)
	fmt.Fprintf(&b, "cold build:       %v\n", r.coldBuild.Round(time.Millisecond))
	fmt.Fprintf(&b, "snapshot write:   %v (%d bytes, %.1f B/record)\n",
		r.capture.Round(time.Millisecond), r.snapBytes, float64(r.snapBytes)/float64(r.cfg.Records))
	fmt.Fprintf(&b, "snapshot restore: %v (%.1f%% of cold build)\n",
		r.restore.Round(time.Millisecond), 100*float64(r.restore)/float64(r.coldBuild))
	fmt.Fprintf(&b, "equivalence:      ok (%d top-k probes, %d matches, bit-identical)\n", r.probes, r.matches)
	return b.String()
}

// runRecover builds, snapshots, restores and verifies. Any divergence between
// the original and restored indexes — or any I/O failure — exits non-zero.
func runRecover(cfg recoverConfig) fmt.Stringer {
	gen := datagen.New(datagen.MEDLike(cfg.Records, cfg.Seed))
	ds := gen.Generate()
	j := join.NewJoiner(ds.Context())
	opts := join.Options{Theta: cfg.Theta, Tau: cfg.Tau, Method: pebble.AUDP}

	buildStart := time.Now()
	sx := j.BuildShardedIndex(ds.S, cfg.Shards, opts, join.DynamicOptions{})
	coldBuild := time.Since(buildStart)

	// Mutate before snapshotting so the image carries a dynamic intern
	// region, delta segments and tombstones, not just the frozen build.
	insert := make([]string, 0, 64)
	for i := 0; i < len(ds.T) && i < 64; i++ {
		insert = append(insert, ds.T[i].Raw)
	}
	ids := sx.InsertBatch(insert)
	if len(ids) > 4 {
		sx.RemoveBatch(ids[:4])
	}

	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "aujoin-recover-*")
		if err != nil {
			log.Fatalf("recover: temp dir: %v", err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	path := filepath.Join(dir, "recover.aujs")

	captureStart := time.Now()
	data := sx.CaptureSnapshot().Encode()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatalf("recover: write snapshot: %v", err)
	}
	capture := time.Since(captureStart)

	restoreStart := time.Now()
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("recover: read snapshot: %v", err)
	}
	snap, err := store.Decode(raw)
	if err != nil {
		log.Fatalf("recover: decode snapshot: %v", err)
	}
	restored, err := join.NewJoiner(ds.Context()).RestoreShardedIndex(snap, join.DynamicOptions{})
	if err != nil {
		log.Fatalf("recover: restore: %v", err)
	}
	restore := time.Since(restoreStart)

	// Equivalence: the restored index must answer top-k probes bit-identically
	// (same IDs, same similarities, same order) to the one it was cut from.
	want, got := sx.Snapshot(), restored.Snapshot()
	probes := cfg.Probes
	if probes > len(ds.T) {
		probes = len(ds.T)
	}
	matches := 0
	for i := 0; i < probes; i++ {
		a := want.QueryTopK(ds.T[i].Tokens, 10)
		b := got.QueryTopK(ds.T[i].Tokens, 10)
		if !reflect.DeepEqual(a, b) {
			log.Fatalf("recover: restored index diverged on probe %d: original %v, restored %v", i, a, b)
		}
		matches += len(a)
	}

	return recoverResult{
		cfg:       cfg,
		coldBuild: coldBuild,
		capture:   capture,
		restore:   restore,
		snapBytes: int64(len(data)),
		probes:    probes,
		matches:   matches,
	}
}
