package main

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aujoin/aujoin/internal/datagen"
	"github.com/aujoin/aujoin/internal/join"
	"github.com/aujoin/aujoin/internal/metrics"
	"github.com/aujoin/aujoin/internal/pebble"
)

// serveConfig parameterises the concurrent load-generator mode: a dynamic
// index over a MED-like catalog is hammered with top-k queries from several
// workers while a mutator thread inserts and removes records, exercising
// snapshot serving, the dynamic intern region and threshold rebuilds under
// realistic contention.
type serveConfig struct {
	CatalogSize int
	Theta       float64
	Tau         int
	Duration    time.Duration
	Workers     int
	TopK        int
	// Shards partitions the index (1 = classic single partition,
	// 0 = GOMAXPROCS); mutation batches parallelize across shards and
	// rebuild stalls are bounded by shard size.
	Shards int
	// MutateEvery is the pause between mutation batches; each batch
	// inserts a handful of records and removes one.
	MutateEvery time.Duration
	// QueryTimeout is the per-query deadline (0 = none): each top-k query
	// runs under a context.WithTimeout, exercising the cancellation path a
	// serving deployment relies on and bounding tail latency at the cost of
	// dropped answers (counted in the result).
	QueryTimeout time.Duration
	// MixedQueries switches the workload to a bimodal short/long mix: the
	// bulk of the stream is hot-token lookups — three tokens drawn from one
	// or two of the catalog's most frequent tokens, so posting density and
	// multiplicity weighting swing the per-configuration candidate count
	// (and so the latency) hardest — and 1 in 32 queries is a full-record
	// near-duplicate probe, whose candidate set is its whole duplicate
	// family at any configuration. This is the heterogeneous stream
	// adaptive planning exists for; latency percentiles are then also
	// reported per length bucket.
	MixedQueries bool
	// PlanMode runs every query under the given planning mode: "auto" (the
	// default), "fixed" (pin the build-time filter/τ, the pre-planner
	// behaviour), or a pinned probe-side configuration like "ufilter/t1",
	// "auheur/t2" or "audp/t3" — one point of the planner's search space,
	// run against the same build. Sweeping the pinned configurations is the
	// A/B for the planner's latency win: auto must tie the best of them and
	// beat the worst.
	PlanMode string
	Seed     int64
}

// serveResult aggregates what the load generator observed.
type serveResult struct {
	cfg       serveConfig
	queries   int64
	timeouts  int64 // queries abandoned at their per-query deadline
	elapsed   time.Duration
	latencies []float64 // milliseconds, sampled
	// latShort and latLong split the sampled latencies by query-length
	// bucket under -mixed-queries (both nil otherwise).
	latShort []float64
	latLong  []float64
	inserted int64
	removed  int64
	pauses   []float64 // per-rebuild writer stalls, milliseconds
	stats    join.DynamicStats
}

func (r serveResult) String() string {
	var b strings.Builder
	qps := float64(r.queries) / r.elapsed.Seconds()
	fmt.Fprintf(&b, "catalog=%d θ=%v τ=%d workers=%d shards=%d duration=%v\n",
		r.cfg.CatalogSize, r.cfg.Theta, r.cfg.Tau, r.cfg.Workers, r.stats.Shards, r.elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "queries=%d (%.0f qps) inserted=%d removed=%d\n", r.queries, qps, r.inserted, r.removed)
	if r.cfg.QueryTimeout > 0 {
		fmt.Fprintf(&b, "query timeout %v: %d queries cancelled at deadline\n", r.cfg.QueryTimeout, r.timeouts)
	}
	if r.cfg.MixedQueries || r.cfg.PlanMode != "" {
		plan := r.cfg.PlanMode
		if plan == "" {
			plan = "auto"
		}
		fmt.Fprintf(&b, "workload: mixed-queries=%v plan=%s plans=%d fallbacks=%d suggested-τ=%d decisions=%v\n",
			r.cfg.MixedQueries, plan, r.stats.Plans, r.stats.PlanFallbacks, r.stats.SuggestedTau, r.stats.PlanDecisions)
	}
	if len(r.latencies) > 0 {
		ps := metrics.Percentiles(r.latencies, 50, 95, 99)
		fmt.Fprintf(&b, "latency ms: p50=%.3f p95=%.3f p99=%.3f\n", ps[0], ps[1], ps[2])
	}
	for _, bucket := range []struct {
		name string
		lat  []float64
	}{{"short", r.latShort}, {"long", r.latLong}} {
		if len(bucket.lat) > 0 {
			ps := metrics.Percentiles(bucket.lat, 50, 95, 99)
			fmt.Fprintf(&b, "latency ms (%s): n=%d p50=%.3f p95=%.3f p99=%.3f\n",
				bucket.name, len(bucket.lat), ps[0], ps[1], ps[2])
		}
	}
	if len(r.pauses) > 0 {
		ps := metrics.Percentiles(r.pauses, 50, 95, 99, 100)
		fmt.Fprintf(&b, "rebuild pause ms: n=%d p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
			len(r.pauses), ps[0], ps[1], ps[2], ps[3])
	}
	st := r.stats
	fmt.Fprintf(&b, "index: records=%d live=%d dead=%d segments=%d frozen-keys=%d dynamic-keys=%d rebuilds=%d cache-hits=%d cache-misses=%d\n",
		st.Records, st.Live, st.Dead, st.Segments, st.FrozenKeys, st.DynamicKeys, st.Rebuilds, st.CacheHits, st.CacheMisses)
	return b.String()
}

// parseServePlan resolves a -serve-plan value into the per-query options it
// stands for: "auto"/"" (adaptive planning), "fixed" (build-time config), or
// a pinned probe-side configuration "ufilter/t1" | "auheur/tN" | "audp/tN".
func parseServePlan(s string) (join.QueryOpts, error) {
	var qo join.QueryOpts
	switch s {
	case "", "auto":
		return qo, nil
	case "fixed":
		qo.Plan = join.PlanFixed
		return qo, nil
	}
	method, tauStr, ok := strings.Cut(s, "/t")
	if ok {
		switch method {
		case "ufilter":
			qo.ProbeMethod = pebble.UFilter
		case "auheur":
			qo.ProbeMethod = pebble.AUHeuristic
		case "audp":
			qo.ProbeMethod = pebble.AUDP
		default:
			ok = false
		}
	}
	tau := 0
	if ok {
		if _, err := fmt.Sscanf(tauStr, "%d", &tau); err != nil || tau < 1 {
			ok = false
		}
	}
	if !ok {
		return qo, fmt.Errorf("invalid -serve-plan %q (want auto, fixed, or e.g. ufilter/t1, auheur/t2, audp/t3)", s)
	}
	qo.ProbeTau = tau
	return qo, nil
}

// runServe builds the catalog and drives the concurrent serve/mutate load.
func runServe(cfg serveConfig) serveResult {
	gen := datagen.New(datagen.MEDLike(cfg.CatalogSize, cfg.Seed))
	ds := gen.Generate()
	j := join.NewJoiner(ds.Context())
	dx := j.BuildShardedIndex(ds.S, cfg.Shards,
		join.Options{Theta: cfg.Theta, Tau: cfg.Tau, Method: pebble.AUDP}, join.DynamicOptions{})

	queryPool := ds.T
	insertPool := make([]string, len(ds.T))
	for i, rec := range ds.T {
		insertPool[i] = rec.Raw
	}

	qo, _ := parseServePlan(cfg.PlanMode) // main validated the flag already

	// Head tokens for the mixed workload's short bucket: the most frequent
	// catalog tokens, whose posting lists are the dense ones a poorly chosen
	// τ over-admits on.
	var headToks []string
	if cfg.MixedQueries {
		freq := map[string]int{}
		for _, rec := range ds.S {
			for _, tok := range rec.Tokens {
				freq[tok]++
			}
		}
		headToks = make([]string, 0, len(freq))
		for tok := range freq {
			headToks = append(headToks, tok)
		}
		sort.Slice(headToks, func(a, b int) bool { return freq[headToks[a]] > freq[headToks[b]] })
		if len(headToks) > 8 {
			headToks = headToks[:8]
		}
	}

	var queries, timeouts, inserted, removed int64
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()

	// Readers: each worker keeps its own sampled latency slices. Every query
	// runs through the context-aware serving path; with a per-query timeout
	// configured, a deadline cancels the fan-out mid-verification exactly as
	// a disconnecting client would in aujoind.
	latAll := make([][]float64, cfg.Workers)
	latShortAll := make([][]float64, cfg.Workers)
	latLongAll := make([][]float64, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w) + 1))
			var lat, latShort, latLong []float64
			for i := 0; time.Now().Before(deadline); i++ {
				tokens := queryPool[rng.Intn(len(queryPool))].Tokens
				long := false
				if cfg.MixedQueries {
					// Bimodal workload: the bulk of the stream is hot-token
					// lookups (one or two head tokens, length three, so
					// multiplicity weighting matters), where the candidate
					// count — and so the query cost — swings hardest with the
					// probe-side configuration; 1 in 32 queries is the full
					// record, whose near-duplicate family dominates the
					// candidate set at any configuration.
					if rng.Intn(32) != 0 {
						a := headToks[rng.Intn(len(headToks))]
						b := headToks[rng.Intn(len(headToks))]
						switch rng.Intn(3) {
						case 0:
							tokens = []string{a, a, a}
						case 1:
							tokens = []string{a, a, b}
						default:
							tokens = []string{a, b, b}
						}
					} else {
						long = true
					}
				}
				t0 := time.Now()
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if cfg.QueryTimeout > 0 {
					ctx, cancel = context.WithTimeout(ctx, cfg.QueryTimeout)
				}
				_, err := dx.Snapshot().QueryTopKCtx(ctx, tokens, cfg.TopK, qo)
				cancel()
				d := time.Since(t0)
				atomic.AddInt64(&queries, 1)
				if err != nil {
					atomic.AddInt64(&timeouts, 1)
				}
				if i%8 == 0 { // sample 1-in-8 to bound memory
					ms := float64(d.Microseconds()) / 1000
					lat = append(lat, ms)
					if cfg.MixedQueries {
						if long {
							latLong = append(latLong, ms)
						} else {
							latShort = append(latShort, ms)
						}
					}
				}
			}
			latAll[w] = lat
			latShortAll[w] = latShort
			latLongAll[w] = latLong
		}(w)
	}

	// Mutator: periodic insert batches and removals of previously inserted
	// records, so the catalog churns without draining.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(cfg.Seed + 9999))
		var liveInserted []int
		for time.Now().Before(deadline) {
			batch := make([]string, 1+rng.Intn(4))
			for i := range batch {
				batch[i] = insertPool[rng.Intn(len(insertPool))]
			}
			ids := dx.Insert(batch)
			atomic.AddInt64(&inserted, int64(len(ids)))
			liveInserted = append(liveInserted, ids...)
			if len(liveInserted) > 8 {
				k := rng.Intn(len(liveInserted))
				if dx.Remove(liveInserted[k]) {
					atomic.AddInt64(&removed, 1)
				}
				liveInserted = append(liveInserted[:k], liveInserted[k+1:]...)
			}
			// Never sleep past the deadline: a large -serve-mutate-every
			// (used to quiesce mutation for clean A/B runs) must not hold
			// the whole run hostage.
			pause := cfg.MutateEvery
			if rem := time.Until(deadline); rem < pause {
				pause = rem
			}
			if pause > 0 {
				time.Sleep(pause)
			}
		}
	}()
	wg.Wait()

	flatten := func(parts [][]float64) []float64 {
		var out []float64
		for _, l := range parts {
			out = append(out, l...)
		}
		return out
	}
	var pauses []float64
	for _, p := range dx.RebuildPauses() {
		pauses = append(pauses, float64(p.Microseconds())/1000)
	}
	return serveResult{
		cfg:       cfg,
		queries:   queries,
		timeouts:  timeouts,
		elapsed:   time.Since(start),
		latencies: flatten(latAll),
		latShort:  flatten(latShortAll),
		latLong:   flatten(latLongAll),
		inserted:  inserted,
		removed:   removed,
		pauses:    pauses,
		stats:     dx.Stats(),
	}
}
