package main

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aujoin/aujoin/internal/datagen"
	"github.com/aujoin/aujoin/internal/join"
	"github.com/aujoin/aujoin/internal/metrics"
	"github.com/aujoin/aujoin/internal/pebble"
)

// serveConfig parameterises the concurrent load-generator mode: a dynamic
// index over a MED-like catalog is hammered with top-k queries from several
// workers while a mutator thread inserts and removes records, exercising
// snapshot serving, the dynamic intern region and threshold rebuilds under
// realistic contention.
type serveConfig struct {
	CatalogSize int
	Theta       float64
	Tau         int
	Duration    time.Duration
	Workers     int
	TopK        int
	// Shards partitions the index (1 = classic single partition,
	// 0 = GOMAXPROCS); mutation batches parallelize across shards and
	// rebuild stalls are bounded by shard size.
	Shards int
	// MutateEvery is the pause between mutation batches; each batch
	// inserts a handful of records and removes one.
	MutateEvery time.Duration
	// QueryTimeout is the per-query deadline (0 = none): each top-k query
	// runs under a context.WithTimeout, exercising the cancellation path a
	// serving deployment relies on and bounding tail latency at the cost of
	// dropped answers (counted in the result).
	QueryTimeout time.Duration
	Seed         int64
}

// serveResult aggregates what the load generator observed.
type serveResult struct {
	cfg       serveConfig
	queries   int64
	timeouts  int64 // queries abandoned at their per-query deadline
	elapsed   time.Duration
	latencies []float64 // milliseconds, sampled
	inserted  int64
	removed   int64
	pauses    []float64 // per-rebuild writer stalls, milliseconds
	stats     join.DynamicStats
}

func (r serveResult) String() string {
	var b strings.Builder
	qps := float64(r.queries) / r.elapsed.Seconds()
	fmt.Fprintf(&b, "catalog=%d θ=%v τ=%d workers=%d shards=%d duration=%v\n",
		r.cfg.CatalogSize, r.cfg.Theta, r.cfg.Tau, r.cfg.Workers, r.stats.Shards, r.elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "queries=%d (%.0f qps) inserted=%d removed=%d\n", r.queries, qps, r.inserted, r.removed)
	if r.cfg.QueryTimeout > 0 {
		fmt.Fprintf(&b, "query timeout %v: %d queries cancelled at deadline\n", r.cfg.QueryTimeout, r.timeouts)
	}
	if len(r.latencies) > 0 {
		ps := metrics.Percentiles(r.latencies, 50, 95, 99)
		fmt.Fprintf(&b, "latency ms: p50=%.3f p95=%.3f p99=%.3f\n", ps[0], ps[1], ps[2])
	}
	if len(r.pauses) > 0 {
		ps := metrics.Percentiles(r.pauses, 50, 95, 99, 100)
		fmt.Fprintf(&b, "rebuild pause ms: n=%d p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
			len(r.pauses), ps[0], ps[1], ps[2], ps[3])
	}
	st := r.stats
	fmt.Fprintf(&b, "index: records=%d live=%d dead=%d segments=%d frozen-keys=%d dynamic-keys=%d rebuilds=%d cache-hits=%d cache-misses=%d\n",
		st.Records, st.Live, st.Dead, st.Segments, st.FrozenKeys, st.DynamicKeys, st.Rebuilds, st.CacheHits, st.CacheMisses)
	return b.String()
}

// runServe builds the catalog and drives the concurrent serve/mutate load.
func runServe(cfg serveConfig) serveResult {
	gen := datagen.New(datagen.MEDLike(cfg.CatalogSize, cfg.Seed))
	ds := gen.Generate()
	j := join.NewJoiner(ds.Context())
	dx := j.BuildShardedIndex(ds.S, cfg.Shards,
		join.Options{Theta: cfg.Theta, Tau: cfg.Tau, Method: pebble.AUDP}, join.DynamicOptions{})

	queryPool := ds.T
	insertPool := make([]string, len(ds.T))
	for i, rec := range ds.T {
		insertPool[i] = rec.Raw
	}

	var queries, timeouts, inserted, removed int64
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()

	// Readers: each worker keeps its own sampled latency slice. Every query
	// runs through the context-aware serving path; with a per-query timeout
	// configured, a deadline cancels the fan-out mid-verification exactly as
	// a disconnecting client would in aujoind.
	latAll := make([][]float64, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w) + 1))
			var lat []float64
			for i := 0; time.Now().Before(deadline); i++ {
				q := queryPool[rng.Intn(len(queryPool))]
				t0 := time.Now()
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if cfg.QueryTimeout > 0 {
					ctx, cancel = context.WithTimeout(ctx, cfg.QueryTimeout)
				}
				_, err := dx.Snapshot().QueryTopKCtx(ctx, q.Tokens, cfg.TopK, join.QueryOpts{})
				cancel()
				d := time.Since(t0)
				atomic.AddInt64(&queries, 1)
				if err != nil {
					atomic.AddInt64(&timeouts, 1)
				}
				if i%8 == 0 { // sample 1-in-8 to bound memory
					lat = append(lat, float64(d.Microseconds())/1000)
				}
			}
			latAll[w] = lat
		}(w)
	}

	// Mutator: periodic insert batches and removals of previously inserted
	// records, so the catalog churns without draining.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(cfg.Seed + 9999))
		var liveInserted []int
		for time.Now().Before(deadline) {
			batch := make([]string, 1+rng.Intn(4))
			for i := range batch {
				batch[i] = insertPool[rng.Intn(len(insertPool))]
			}
			ids := dx.Insert(batch)
			atomic.AddInt64(&inserted, int64(len(ids)))
			liveInserted = append(liveInserted, ids...)
			if len(liveInserted) > 8 {
				k := rng.Intn(len(liveInserted))
				if dx.Remove(liveInserted[k]) {
					atomic.AddInt64(&removed, 1)
				}
				liveInserted = append(liveInserted[:k], liveInserted[k+1:]...)
			}
			time.Sleep(cfg.MutateEvery)
		}
	}()
	wg.Wait()

	var lat []float64
	for _, l := range latAll {
		lat = append(lat, l...)
	}
	var pauses []float64
	for _, p := range dx.RebuildPauses() {
		pauses = append(pauses, float64(p.Microseconds())/1000)
	}
	return serveResult{
		cfg:       cfg,
		queries:   queries,
		timeouts:  timeouts,
		elapsed:   time.Since(start),
		latencies: lat,
		inserted:  inserted,
		removed:   removed,
		pauses:    pauses,
		stats:     dx.Stats(),
	}
}
