// Command aujoin joins two files of strings (one record per line) under the
// unified similarity measure and prints the matching pairs.
//
// Usage:
//
//	aujoin -left a.txt -right b.txt -theta 0.8 [-tau 3 | -auto-tau] \
//	       [-filter dp|heuristic|u] [-synonyms rules.tsv] [-taxonomy tax.tsv] \
//	       [-measures TJS]
//
// Output lines have the form "<left-index>\t<right-index>\t<similarity>".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/aujoin/aujoin"
	"github.com/aujoin/aujoin/internal/cmdutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aujoin: ")

	var (
		leftPath  = flag.String("left", "", "path to the left collection (one record per line)")
		rightPath = flag.String("right", "", "path to the right collection; omit for a self-join of -left")
		theta     = flag.Float64("theta", 0.8, "unified similarity threshold in [0,1]")
		tau       = flag.Int("tau", 1, "overlap constraint (ignored with -auto-tau)")
		autoTau   = flag.Bool("auto-tau", false, "pick τ with the sampling-based estimator")
		filter    = flag.String("filter", "dp", "signature filter: u, heuristic or dp")
		synPath   = flag.String("synonyms", "", "optional synonym rules file (lhs<TAB>rhs[<TAB>closeness])")
		taxPath   = flag.String("taxonomy", "", "optional taxonomy file (node<TAB>parent)")
		measures  = flag.String("measures", "TJS", "measure combination (e.g. J, TS, TJS)")
		stats     = flag.Bool("stats", false, "print join statistics to stderr")
	)
	flag.Parse()

	if *leftPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	opts := []aujoin.Option{aujoin.WithMeasures(*measures)}
	if *synPath != "" {
		f, err := os.Open(*synPath)
		if err != nil {
			log.Fatalf("open synonyms: %v", err)
		}
		opts = append(opts, aujoin.WithSynonymsFrom(f))
		defer f.Close()
	}
	if *taxPath != "" {
		f, err := os.Open(*taxPath)
		if err != nil {
			log.Fatalf("open taxonomy: %v", err)
		}
		opts = append(opts, aujoin.WithTaxonomyFrom(f))
		defer f.Close()
	}
	joiner, err := aujoin.NewStrict(opts...)
	if err != nil {
		log.Fatalf("configuration: %v", err)
	}

	left, err := cmdutil.ReadLines(*leftPath)
	if err != nil {
		log.Fatalf("read left: %v", err)
	}

	jopts := aujoin.JoinOptions{Theta: *theta, Tau: *tau, AutoTau: *autoTau, Filter: cmdutil.ParseFilter(*filter)}

	var matches []aujoin.Match
	var jstats aujoin.Stats
	if *rightPath == "" {
		matches, jstats = joiner.SelfJoin(left, jopts)
	} else {
		right, err := cmdutil.ReadLines(*rightPath)
		if err != nil {
			log.Fatalf("read right: %v", err)
		}
		matches, jstats = joiner.Join(left, right, jopts)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, m := range matches {
		fmt.Fprintf(w, "%d\t%d\t%.4f\n", m.S, m.T, m.Similarity)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "tau=%d candidates=%d results=%d suggest=%v filter=%v verify=%v total=%v\n",
			jstats.SuggestedTau, jstats.Candidates, jstats.Results,
			jstats.SuggestionTime, jstats.FilterTime, jstats.VerifyTime, jstats.Total())
	}
}
