package aujoin_test

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/aujoin/aujoin"
)

// ExampleJoiner_JoinSeq streams a join instead of buffering it: matches are
// yielded as the parallel verify stage confirms them, and the context bounds
// the whole pipeline — sampling, filtering and verification — with one
// deadline.
func ExampleJoiner_JoinSeq() {
	j := aujoin.New(
		aujoin.WithSynonym("coffee shop", "cafe", 1.0),
		aujoin.WithTaxonomyPath("wikipedia", "food", "coffee", "coffee drinks", "espresso"),
		aujoin.WithTaxonomyPath("wikipedia", "food", "coffee", "coffee drinks", "latte"),
	)
	left := []string{"coffee shop latte Helsingki", "apple cake bakery"}
	right := []string{"espresso cafe Helsinki", "cake gateau bakery", "unrelated"}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	var matches []aujoin.Match
	for m, err := range j.JoinSeq(ctx, left, right, aujoin.JoinOptions{Theta: 0.75, Tau: 2}) {
		if err != nil {
			fmt.Println("join aborted:", err) // deadline or cancellation
			return
		}
		matches = append(matches, m) // or process and drop — nothing is buffered
	}
	// Streaming yields in completion order; sort by (S, T) for Join's order.
	sort.Slice(matches, func(a, b int) bool {
		if matches[a].S != matches[b].S {
			return matches[a].S < matches[b].S
		}
		return matches[a].T < matches[b].T
	})
	for _, m := range matches {
		fmt.Printf("%q ~ %q\n", left[m.S], right[m.T])
	}
	// Output:
	// "coffee shop latte Helsingki" ~ "espresso cafe Helsinki"
}

// ExampleIndex_QueryCtx serves one lookup under a request deadline with
// per-request options: the similarity threshold is raised for this call
// only, without rebuilding the index.
func ExampleIndex_QueryCtx() {
	j := aujoin.New(aujoin.WithSynonym("st", "street", 1.0))
	ix := j.Index([]string{
		"espresso bar mannerheim street",
		"espresso bar mannerheim st",
		"apple cake bakery",
	}, aujoin.JoinOptions{Theta: 0.6, Tau: 1})

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()

	matches, err := ix.QueryCtx(ctx, "espresso bar mannerheim street", aujoin.QueryOptions{
		MinSimilarity: 0.95, // stricter than the build-time θ, for this request only
	})
	if err != nil {
		fmt.Println("query aborted:", err)
		return
	}
	for _, m := range matches {
		fmt.Printf("record %d (similarity %.2f)\n", m.Record, m.Similarity)
	}
	// Output:
	// record 0 (similarity 1.00)
	// record 1 (similarity 1.00)
}
