package aujoin

// bench_test.go hosts one testing.B benchmark per table and figure of the
// paper's evaluation (Section 5), each delegating to the corresponding
// runner in internal/experiments at a reduced scale so that
// `go test -bench=. -benchmem` finishes on a laptop. The full-scale runs
// are available through cmd/benchrun.

import (
	"testing"

	"github.com/aujoin/aujoin/internal/experiments"
)

// benchConfig is the scaled-down configuration shared by the benchmarks.
func benchConfig() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.MEDSize = 100
	cfg.WIKISize = 130
	cfg.Thetas = []float64{0.85, 0.95}
	cfg.Taus = []int{1, 2, 3}
	return cfg
}

func BenchmarkTable8Effectiveness(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable8(cfg, []float64{0.8})
		if len(res.Cells) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable9Approximation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable9(cfg, []int{3, 4}, 25)
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig3OverlapConstraint(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig3(cfg)
		if len(res.Points) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig4JoinTime(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig4(cfg, 2)
		if len(res.Points) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig5FilteringPower(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig5(cfg, 0.85)
		if len(res.Points) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig6MeasureJoinTime(b *testing.B) {
	cfg := benchConfig()
	cfg.Thetas = []float64{0.85}
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig6(cfg, 2)
		if len(res.Points) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig7Scalability(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig7(cfg, []int{80, 150}, 0.9, 2)
		if len(res.Points) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable10Breakdown(b *testing.B) {
	// Table 10 is the per-stage breakdown of the Figure 7 runs with the
	// suggestion stage included; RunFig7 records the same breakdown.
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig7(cfg, []int{150}, 0.9, 3)
		if len(res.Points) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable11ParameterChoice(b *testing.B) {
	cfg := benchConfig()
	cfg.Thetas = []float64{0.9}
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable11(cfg)
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable12SuggestionAccuracy(b *testing.B) {
	cfg := benchConfig()
	cfg.Thetas = []float64{0.9}
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable12(cfg, 3)
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig8SamplingProbability(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig8(cfg, []float64{0.1, 0.3})
		if len(res.Points) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable13BaselineEffectiveness(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable13(cfg, []float64{0.8})
		if len(res.Cells) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable14BaselineJoinTime(b *testing.B) {
	cfg := benchConfig()
	cfg.Thetas = []float64{0.9}
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable14(cfg, 2)
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkSimilarity measures the unified-similarity hot path on the
// paper's running example.
func BenchmarkSimilarity(b *testing.B) {
	j := New(
		WithSynonym("coffee shop", "cafe", 1),
		WithTaxonomyPath("wikipedia", "food", "coffee", "coffee drinks", "espresso"),
		WithTaxonomyPath("wikipedia", "food", "coffee", "coffee drinks", "latte"),
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Similarity("coffee shop latte Helsingki", "espresso cafe Helsinki")
	}
}
