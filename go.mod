module github.com/aujoin/aujoin

go 1.23
