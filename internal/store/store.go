package store

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Store manages one data directory holding at most one live checkpoint
// generation: snap-<seq>.aujs (the snapshot) and wal-<seq>.aujw (the
// mutation log since that snapshot). A checkpoint writes the next
// generation's snapshot to a temp file, fsyncs, atomically renames it into
// place, fsyncs the directory, starts a fresh empty WAL, and only then
// removes the previous generation — so a crash at any byte leaves either
// the old generation or the new one fully intact, never a blend.
//
// Durability errors are sticky: once an append or commit fails partway,
// the Store refuses further mutations. Acknowledging a write after an
// earlier one tore would let recovery silently truncate the acknowledged
// write away with the torn tail.
type Store struct {
	fs     FS
	dir    string
	seq    uint64
	wal    File
	broken error
}

func snapName(seq uint64) string { return fmt.Sprintf("snap-%d.aujs", seq) }
func walName(seq uint64) string  { return fmt.Sprintf("wal-%d.aujw", seq) }

// parseSeq extracts the sequence number from snap-/wal- file names.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Open attaches to dir, loads the newest decodable snapshot (nil when the
// directory is fresh), replays the matching WAL with torn-tail truncation,
// and leaves the store ready to append. The returned entries are the
// mutations the caller must reapply on top of the snapshot to reach the
// last durable state.
func Open(fs FS, dir string) (*Store, *Snapshot, []WalEntry, error) {
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("store: list %s: %w", dir, err)
	}

	var snapSeqs []uint64
	for _, name := range names {
		if seq, ok := parseSeq(name, "snap-", ".aujs"); ok {
			snapSeqs = append(snapSeqs, seq)
		}
	}
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] })

	var (
		snap    *Snapshot
		seq     uint64
		decErr  error
		decoded bool
	)
	for _, cand := range snapSeqs {
		data, err := fs.ReadFile(filepath.Join(dir, snapName(cand)))
		if err != nil {
			decErr = err
			continue
		}
		s, err := Decode(data)
		if err != nil {
			decErr = err
			continue
		}
		snap, seq, decoded = s, cand, true
		break
	}
	if !decoded && len(snapSeqs) > 0 {
		// Snapshot files exist but none decodes: refuse to silently restart
		// empty over data the operator thought was durable.
		return nil, nil, nil, fmt.Errorf("store: no usable snapshot in %s: %w", dir, decErr)
	}

	st := &Store{fs: fs, dir: dir, seq: seq}

	// Best-effort cleanup of temp files and generations other than the one
	// we recovered; a failure here only leaves garbage for the next open.
	for _, name := range names {
		stale := strings.HasSuffix(name, ".tmp")
		if s, ok := parseSeq(name, "snap-", ".aujs"); ok && s != seq {
			stale = true
		}
		if s, ok := parseSeq(name, "wal-", ".aujw"); ok && s != seq {
			stale = true
		}
		if stale {
			_ = fs.Remove(filepath.Join(dir, name))
		}
	}

	var entries []WalEntry
	walPath := filepath.Join(dir, walName(seq))
	if data, err := fs.ReadFile(walPath); err == nil {
		var good int
		entries, good = ReplayWAL(data)
		if good < len(data) {
			if err := fs.Truncate(walPath, int64(good)); err != nil {
				return nil, nil, nil, fmt.Errorf("store: truncate torn WAL tail: %w", err)
			}
		}
	}
	wal, err := fs.OpenAppend(walPath)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("store: open WAL: %w", err)
	}
	st.wal = wal
	return st, snap, entries, nil
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Seq returns the live checkpoint generation.
func (s *Store) Seq() uint64 { return s.seq }

// Append logs one mutation batch durably: the entry is framed, written and
// fsynced before Append returns nil. On error the mutation MUST NOT be
// applied to the in-memory index — the log may hold a torn frame that
// recovery will truncate — and the store refuses all further mutations.
func (s *Store) Append(e WalEntry) error {
	if s.broken != nil {
		return s.broken
	}
	frame, err := EncodeWalEntry(e)
	if err != nil {
		return err
	}
	if _, err := s.wal.Write(frame); err != nil {
		s.broken = fmt.Errorf("store: WAL append failed, store is read-only: %w", err)
		return s.broken
	}
	if err := s.wal.Sync(); err != nil {
		s.broken = fmt.Errorf("store: WAL sync failed, store is read-only: %w", err)
		return s.broken
	}
	return nil
}

// Commit durably writes snap as the next checkpoint generation, rotates to
// a fresh WAL and retires the previous generation. The caller must ensure
// snap reflects every mutation previously Appended (i.e. capture and
// Commit run under the same mutation exclusion).
func (s *Store) Commit(snap *Snapshot) error {
	if s.broken != nil {
		return s.broken
	}
	next := s.seq + 1
	data := snap.Encode()

	tmpPath := filepath.Join(s.dir, snapName(next)+".tmp")
	f, err := s.fs.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("store: create snapshot: %w", err)
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = s.fs.Remove(tmpPath)
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := s.fs.Rename(tmpPath, filepath.Join(s.dir, snapName(next))); err != nil {
		_ = s.fs.Remove(tmpPath)
		return fmt.Errorf("store: publish snapshot: %w", err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		// The rename may or may not be durable; refuse further mutations
		// rather than guess which generation a recovery will see.
		s.broken = fmt.Errorf("store: sync data dir failed, store is read-only: %w", err)
		return s.broken
	}

	// The new generation is durable from here on: advance even if the WAL
	// rotation below fails, because recovery will pick snap-<next> and an
	// absent wal-<next> reads as empty.
	prev := s.seq
	s.seq = next
	if s.wal != nil {
		_ = s.wal.Close()
		s.wal = nil
	}
	wal, err := s.fs.OpenAppend(filepath.Join(s.dir, walName(next)))
	if err != nil {
		s.broken = fmt.Errorf("store: rotate WAL failed, store is read-only: %w", err)
		return s.broken
	}
	s.wal = wal
	_ = s.fs.Remove(filepath.Join(s.dir, snapName(prev)))
	_ = s.fs.Remove(filepath.Join(s.dir, walName(prev)))
	return nil
}

// Close releases the WAL handle. The store must not be used afterwards.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}
