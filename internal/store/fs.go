package store

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the narrow filesystem surface the store needs. Production uses OS
// (the real filesystem); the crash-recovery suite swaps in a MemFS whose
// write budget kills the sequence at an arbitrary byte to model a SIGKILL
// mid-commit.
type FS interface {
	MkdirAll(dir string) error
	ReadDir(dir string) ([]string, error)
	ReadFile(path string) ([]byte, error)
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// OpenAppend opens an existing file (creating it if absent) positioned
	// at the end.
	OpenAppend(path string) (File, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	Truncate(path string, size int64) error
	// SyncDir flushes directory metadata so a completed rename survives the
	// crash model.
	SyncDir(dir string) error
}

// File is a writable handle with durability control.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OS is the production FS backed by the operating system.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }
func (osFS) Truncate(path string, size int64) error {
	return os.Truncate(path, size)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
