package store

import (
	"encoding/binary"
	"fmt"
)

// WAL entry framing:
//
//	length u32 | crc32c(payload) u32 | payload
//
// payload:
//
//	op u8 | count uvarint | items
//
// Insert items are length-prefixed raw record strings (one WAL entry is one
// insert batch, so a batch is atomic: it is either fully durable or, after
// torn-tail truncation, entirely absent). Remove items are stable record
// IDs as uvarints.

// WAL operation codes.
const (
	OpInsert = 1
	OpRemove = 2
)

// maxWalEntry caps the framed length a replayer will believe. It exists to
// bound allocation on hostile input, not to limit real batches — an insert
// batch approaching it would be hundreds of megabytes of raw text.
const maxWalEntry = 1 << 30

// WalEntry is one logged mutation batch.
type WalEntry struct {
	Op   uint8
	Raws []string // OpInsert: raw record strings, in batch order
	IDs  []uint64 // OpRemove: stable record IDs, in batch order
}

// EncodeWalEntry frames one entry (length, checksum, payload) ready to be
// appended to the log.
func EncodeWalEntry(e WalEntry) ([]byte, error) {
	var p writer
	p.u8(e.Op)
	switch e.Op {
	case OpInsert:
		p.uvarint(uint64(len(e.Raws)))
		for _, raw := range e.Raws {
			p.str(raw)
		}
	case OpRemove:
		p.uvarint(uint64(len(e.IDs)))
		for _, id := range e.IDs {
			p.uvarint(id)
		}
	default:
		return nil, fmt.Errorf("store: unknown WAL op %d", e.Op)
	}
	if len(p.buf) > maxWalEntry {
		return nil, fmt.Errorf("store: WAL entry of %d bytes exceeds limit", len(p.buf))
	}
	var w writer
	w.u32(uint32(len(p.buf)))
	w.u32(checksum(p.buf))
	w.buf = append(w.buf, p.buf...)
	return w.buf, nil
}

// decodeWalPayload parses one checksummed payload.
func decodeWalPayload(b []byte) (WalEntry, error) {
	r := reader{b: b}
	e := WalEntry{Op: r.u8()}
	switch e.Op {
	case OpInsert:
		n := r.count(1)
		e.Raws = make([]string, n)
		for i := 0; i < n; i++ {
			e.Raws[i] = r.str()
		}
	case OpRemove:
		n := r.count(1)
		e.IDs = make([]uint64, n)
		for i := 0; i < n; i++ {
			e.IDs[i] = r.uvarint()
		}
	default:
		r.fail()
	}
	if err := r.finish(); err != nil {
		return WalEntry{}, err
	}
	return e, nil
}

// ReplayWAL walks the log from the start and returns every entry up to the
// first defect, together with the byte length of that clean prefix. A torn
// or corrupt tail — short frame, checksum mismatch, undecodable payload —
// is expected after a crash and simply ends the replay; it is not an
// error. The caller truncates the log to goodLen before appending again so
// the torn bytes can never be misread later.
func ReplayWAL(data []byte) (entries []WalEntry, goodLen int) {
	off := 0
	for {
		if len(data)-off < 8 {
			return entries, off
		}
		length := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if uint64(length) > maxWalEntry || uint64(length) > uint64(len(data)-off-8) {
			return entries, off
		}
		payload := data[off+8 : off+8+int(length)]
		if checksum(payload) != crc {
			return entries, off
		}
		e, err := decodeWalPayload(payload)
		if err != nil {
			return entries, off
		}
		entries = append(entries, e)
		off += 8 + int(length)
	}
}
