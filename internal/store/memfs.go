package store

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrInjected is the failure every MemFS mutation returns once the write
// budget is exhausted: the modeled process has been killed, so nothing
// mutates any more until Heal.
var ErrInjected = errors.New("store: injected crash")

// MemFS is an in-memory FS with deterministic fault injection for the
// crash-recovery suite. Its budget is a count of mutation units — one per
// data byte written plus one per metadata operation (create, rename,
// remove, truncate, sync) — and the op that crosses the budget applies its
// allowed prefix (a partial write persists the bytes that fit, a metadata
// op does not happen) and fails; every later mutation fails too. This is
// the SIGKILL model: completed writes are durable, in-flight ones are cut
// mid-byte, and nothing runs afterwards. Heal lifts the failure so a test
// can reopen the surviving files the way a restarted process would.
type MemFS struct {
	mu     sync.Mutex
	files  map[string][]byte
	budget int64 // remaining mutation units; <0 = unlimited
	failed bool
	spent  int64 // units consumed since the last FailAfter/Heal
}

// NewMemFS returns an empty MemFS with an unlimited budget.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string][]byte{}, budget: -1}
}

// FailAfter arms the fault: the next n mutation units succeed and every
// one after them fails until Heal. The spent counter restarts at zero.
func (m *MemFS) FailAfter(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.budget = n
	m.failed = false
	m.spent = 0
}

// Heal clears the failure and restores an unlimited budget, modeling the
// process restart that follows the crash.
func (m *MemFS) Heal() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.budget = -1
	m.failed = false
	m.spent = 0
}

// Spent reports the mutation units consumed since the last FailAfter or
// Heal; a dry run with an unlimited budget uses it to size the fault sweep.
func (m *MemFS) Spent() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.spent
}

// take consumes up to want units and reports how many were granted plus
// whether the op may proceed at all.
func (m *MemFS) take(want int64) (granted int64, ok bool) {
	if m.failed {
		return 0, false
	}
	if m.budget < 0 {
		m.spent += want
		return want, true
	}
	if want <= m.budget {
		m.budget -= want
		m.spent += want
		return want, true
	}
	granted = m.budget
	m.budget = 0
	m.spent += granted
	m.failed = true
	return granted, false
}

func (m *MemFS) MkdirAll(string) error {
	// Directories are implicit; creating one costs nothing and cannot fail:
	// the store only ever makes its own data dir before any durable state
	// exists.
	return nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for path := range m.files {
		if strings.HasPrefix(path, prefix) && !strings.Contains(path[len(prefix):], "/") {
			names = append(names, path[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[filepath.Clean(path)]
	if !ok {
		return nil, fmt.Errorf("memfs: %s: file does not exist", path)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

func (m *MemFS) Create(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.take(1); !ok {
		return nil, ErrInjected
	}
	path = filepath.Clean(path)
	m.files[path] = nil
	return &memFile{fs: m, path: path}, nil
}

func (m *MemFS) OpenAppend(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	path = filepath.Clean(path)
	if _, ok := m.files[path]; !ok {
		if _, ok := m.take(1); !ok {
			return nil, ErrInjected
		}
		m.files[path] = nil
	}
	return &memFile{fs: m, path: path}, nil
}

func (m *MemFS) Rename(oldPath, newPath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldPath, newPath = filepath.Clean(oldPath), filepath.Clean(newPath)
	data, ok := m.files[oldPath]
	if !ok {
		return fmt.Errorf("memfs: %s: file does not exist", oldPath)
	}
	// Rename is atomic: it either entirely happens or entirely does not.
	if _, ok := m.take(1); !ok {
		return ErrInjected
	}
	m.files[newPath] = data
	delete(m.files, oldPath)
	return nil
}

func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	path = filepath.Clean(path)
	if _, ok := m.files[path]; !ok {
		return fmt.Errorf("memfs: %s: file does not exist", path)
	}
	if _, ok := m.take(1); !ok {
		return ErrInjected
	}
	delete(m.files, path)
	return nil
}

func (m *MemFS) Truncate(path string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	path = filepath.Clean(path)
	data, ok := m.files[path]
	if !ok {
		return fmt.Errorf("memfs: %s: file does not exist", path)
	}
	if size < 0 || size > int64(len(data)) {
		return fmt.Errorf("memfs: %s: truncate to %d out of range", path, size)
	}
	if _, ok := m.take(1); !ok {
		return ErrInjected
	}
	m.files[path] = data[:size]
	return nil
}

func (m *MemFS) SyncDir(string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.take(1); !ok {
		return ErrInjected
	}
	return nil
}

type memFile struct {
	fs   *MemFS
	path string
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	data, ok := f.fs.files[f.path]
	if !ok {
		return 0, fmt.Errorf("memfs: %s: write to removed file", f.path)
	}
	granted, full := f.fs.take(int64(len(p)))
	f.fs.files[f.path] = append(data, p[:granted]...)
	if !full {
		return int(granted), ErrInjected
	}
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if _, ok := f.fs.take(1); !ok {
		return ErrInjected
	}
	return nil
}

func (f *memFile) Close() error { return nil }
