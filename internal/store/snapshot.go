package store

import (
	"fmt"
	"sort"
)

// Section identifiers. META through TOMBSTONES are required; PLANNER is
// optional (a snapshot taken with planning disabled simply omits it).
// Unknown ids are skipped on read so optional sections can be added without
// a version bump.
const (
	secMeta       = 1
	secOrder      = 2
	secRecords    = 3
	secSigs       = 4
	secPrepared   = 5
	secTombstones = 6
	secPlanner    = 7
)

// Snapshot is the plain-data image of a sharded dynamic index: everything
// needed to reconstruct bit-identical query behaviour without re-running
// signature selection or prepared-segment enumeration. Records are flat
// across shards in ascending stable-ID order — per-shard arrival order is
// recovered by re-partitioning, because shard assignment is a pure function
// of the ID and IDs are allocated monotonically.
type Snapshot struct {
	Theta         float64
	Tau           int
	Method        uint8 // pebble.Method the index was built with
	Plan          uint8 // planner mode (auto/fixed)
	ClassicFilter bool
	Shards        int
	NextID        uint64 // next stable ID the index would allocate

	Order   OrderData
	Records []RecordData
	// Dead is the tombstone bitmap over flat record positions (bit i set =
	// Records[i] is removed but still occupies its stable position).
	Dead []uint64

	Planner *PlannerData // nil when the index has no adaptive planner
}

// OrderData is the serialized pebble order: the frozen prefix in dense-ID
// order with per-key corpus frequencies (non-decreasing, key-ascending
// within equal frequency — the Finalize sort order), followed by the
// dynamically interned keys in ID order.
type OrderData struct {
	FrozenKeys  []string
	Freqs       []uint32 // len(FrozenKeys); frequency of each frozen key
	DynamicKeys []string // IDs len(FrozenKeys)..len(FrozenKeys)+len(DynamicKeys)-1
}

// NumKeys is the restored order's key universe size.
func (o *OrderData) NumKeys() int { return len(o.FrozenKeys) + len(o.DynamicKeys) }

// RecordData is one record: raw text (tokens are re-derived — tokenization
// is deterministic), the pebble IDs of its stored signature (a multiset;
// equal IDs adjacent), and the prepared-segment metadata that lets the
// loader rebuild the PreparedRecord without re-running segment enumeration
// and set cover.
type RecordData struct {
	ID      uint32
	Raw     string
	SigIDs  []uint32
	Segs    []SegMeta
	MinPart uint32
}

// SegMeta locates one prepared segment as a token span plus its provenance
// flags; segment tokens and similarity data are recomputed from the span.
type SegMeta struct {
	Start, End uint32
	Rule       bool
	Entity     bool
}

// PlannerData is the adaptive planner's feedback state: EWMA cells are
// stored as raw float64 bits (zero = unobserved), counters as totals.
// Restoring it is a continuity optimization — planner state never changes
// results, only which sound probe configuration is tried first.
type PlannerData struct {
	TauMax         int
	Method         uint8
	CandRatio      []uint64
	VerifyNs       []uint64
	LatNs          []uint64
	DPShrink       []uint64
	Decisions      []int64
	EpochDecisions []int64
	ExploreN       int64
	Plans          int64
	Fallbacks      int64
	Reanchors      int64
	Suggested      int64
}

// Encode serializes the snapshot into the sectioned format described in the
// package comment.
func (s *Snapshot) Encode() []byte {
	type section struct {
		id      uint32
		payload []byte
	}
	sections := []section{
		{secMeta, s.encodeMeta()},
		{secOrder, s.encodeOrder()},
		{secRecords, s.encodeRecords()},
		{secSigs, s.encodeSigs()},
		{secPrepared, s.encodePrepared()},
		{secTombstones, s.encodeTombstones()},
	}
	if s.Planner != nil {
		sections = append(sections, section{secPlanner, s.Planner.encode()})
	}

	const headerSize = 8 + 4 + 4
	const entrySize = 4 + 8 + 8 + 4
	var w writer
	w.buf = append(w.buf, Magic...)
	w.u32(Version)
	w.u32(uint32(len(sections)))
	offset := uint64(headerSize + entrySize*len(sections))
	for _, sec := range sections {
		w.u32(sec.id)
		w.u64(offset)
		w.u64(uint64(len(sec.payload)))
		w.u32(checksum(sec.payload))
		offset += uint64(len(sec.payload))
	}
	for _, sec := range sections {
		w.buf = append(w.buf, sec.payload...)
	}
	return w.buf
}

// Decode parses and validates a snapshot image. Any structural defect —
// bad magic, unknown version, out-of-range section, checksum mismatch,
// truncated payload, inconsistent counts, out-of-universe signature ID,
// non-ascending record IDs — yields an error, never a panic or over-read.
func Decode(data []byte) (*Snapshot, error) {
	const headerSize = 8 + 4 + 4
	if len(data) < headerSize || string(data[:8]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	hr := reader{b: data, off: 8}
	version := hr.u32()
	if version != Version {
		return nil, fmt.Errorf("store: unsupported snapshot version %d (want %d)", version, Version)
	}
	nsec := hr.u32()
	const entrySize = 4 + 8 + 8 + 4
	if uint64(nsec) > uint64(len(data))/entrySize {
		return nil, fmt.Errorf("%w: section count %d", ErrCorrupt, nsec)
	}
	payloads := make(map[uint32][]byte, nsec)
	for i := uint32(0); i < nsec; i++ {
		id := hr.u32()
		off := hr.u64()
		length := hr.u64()
		crc := hr.u32()
		if hr.err != nil {
			return nil, hr.err
		}
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("%w: section %d out of range", ErrCorrupt, id)
		}
		payload := data[off : off+length]
		if checksum(payload) != crc {
			return nil, fmt.Errorf("%w: section %d checksum mismatch", ErrCorrupt, id)
		}
		if _, dup := payloads[id]; dup {
			return nil, fmt.Errorf("%w: duplicate section %d", ErrCorrupt, id)
		}
		payloads[id] = payload
	}
	for _, id := range []uint32{secMeta, secOrder, secRecords, secSigs, secPrepared, secTombstones} {
		if _, ok := payloads[id]; !ok {
			return nil, fmt.Errorf("%w: missing section %d", ErrCorrupt, id)
		}
	}

	s := &Snapshot{}
	if err := s.decodeMeta(payloads[secMeta]); err != nil {
		return nil, err
	}
	if err := s.decodeOrder(payloads[secOrder]); err != nil {
		return nil, err
	}
	if err := s.decodeRecords(payloads[secRecords]); err != nil {
		return nil, err
	}
	if err := s.decodeSigs(payloads[secSigs]); err != nil {
		return nil, err
	}
	if err := s.decodePrepared(payloads[secPrepared]); err != nil {
		return nil, err
	}
	if err := s.decodeTombstones(payloads[secTombstones]); err != nil {
		return nil, err
	}
	if p, ok := payloads[secPlanner]; ok {
		s.Planner = &PlannerData{}
		if err := s.Planner.decode(p); err != nil {
			return nil, err
		}
	}
	return s, s.validate()
}

func (s *Snapshot) encodeMeta() []byte {
	var w writer
	w.f64(s.Theta)
	w.uvarint(uint64(s.Tau))
	w.u8(s.Method)
	w.u8(s.Plan)
	var flags uint8
	if s.ClassicFilter {
		flags |= 1
	}
	w.u8(flags)
	w.uvarint(uint64(s.Shards))
	w.uvarint(s.NextID)
	return w.buf
}

func (s *Snapshot) decodeMeta(b []byte) error {
	r := reader{b: b}
	s.Theta = r.f64()
	s.Tau = int(r.uvarint())
	s.Method = r.u8()
	s.Plan = r.u8()
	flags := r.u8()
	s.ClassicFilter = flags&1 != 0
	s.Shards = int(r.uvarint())
	s.NextID = r.uvarint()
	return r.finish()
}

func (s *Snapshot) encodeOrder() []byte {
	var w writer
	w.uvarint(uint64(len(s.Order.FrozenKeys)))
	for i, k := range s.Order.FrozenKeys {
		w.str(k)
		w.uvarint(uint64(s.Order.Freqs[i]))
	}
	w.uvarint(uint64(len(s.Order.DynamicKeys)))
	for _, k := range s.Order.DynamicKeys {
		w.str(k)
	}
	return w.buf
}

func (s *Snapshot) decodeOrder(b []byte) error {
	r := reader{b: b}
	nf := r.count(2)
	s.Order.FrozenKeys = make([]string, nf)
	s.Order.Freqs = make([]uint32, nf)
	for i := 0; i < nf; i++ {
		s.Order.FrozenKeys[i] = r.str()
		s.Order.Freqs[i] = uint32(r.uvarint())
	}
	nd := r.count(1)
	s.Order.DynamicKeys = make([]string, nd)
	for i := 0; i < nd; i++ {
		s.Order.DynamicKeys[i] = r.str()
	}
	return r.finish()
}

func (s *Snapshot) encodeRecords() []byte {
	var w writer
	w.uvarint(uint64(len(s.Records)))
	for i := range s.Records {
		w.uvarint(uint64(s.Records[i].ID))
		w.str(s.Records[i].Raw)
	}
	return w.buf
}

func (s *Snapshot) decodeRecords(b []byte) error {
	r := reader{b: b}
	n := r.count(2)
	s.Records = make([]RecordData, n)
	for i := 0; i < n; i++ {
		id := r.uvarint()
		if id > uint64(^uint32(0)) {
			r.fail()
			break
		}
		s.Records[i].ID = uint32(id)
		s.Records[i].Raw = r.str()
	}
	return r.finish()
}

func (s *Snapshot) encodeSigs() []byte {
	var w writer
	w.uvarint(uint64(len(s.Records)))
	for i := range s.Records {
		w.uvarint(uint64(len(s.Records[i].SigIDs)))
		for _, id := range s.Records[i].SigIDs {
			w.uvarint(uint64(id))
		}
	}
	return w.buf
}

func (s *Snapshot) decodeSigs(b []byte) error {
	r := reader{b: b}
	n := r.count(1)
	if n != len(s.Records) {
		return fmt.Errorf("%w: signature count %d != record count %d", ErrCorrupt, n, len(s.Records))
	}
	for i := 0; i < n; i++ {
		m := r.count(1)
		ids := make([]uint32, m)
		for j := 0; j < m; j++ {
			ids[j] = uint32(r.uvarint())
		}
		s.Records[i].SigIDs = ids
	}
	return r.finish()
}

func (s *Snapshot) encodePrepared() []byte {
	var w writer
	w.uvarint(uint64(len(s.Records)))
	for i := range s.Records {
		w.uvarint(uint64(len(s.Records[i].Segs)))
		for _, seg := range s.Records[i].Segs {
			w.uvarint(uint64(seg.Start))
			w.uvarint(uint64(seg.End))
			var flags uint8
			if seg.Rule {
				flags |= 1
			}
			if seg.Entity {
				flags |= 2
			}
			w.u8(flags)
		}
		w.uvarint(uint64(s.Records[i].MinPart))
	}
	return w.buf
}

func (s *Snapshot) decodePrepared(b []byte) error {
	r := reader{b: b}
	n := r.count(1)
	if n != len(s.Records) {
		return fmt.Errorf("%w: prepared count %d != record count %d", ErrCorrupt, n, len(s.Records))
	}
	for i := 0; i < n; i++ {
		m := r.count(3)
		segs := make([]SegMeta, m)
		for j := 0; j < m; j++ {
			segs[j].Start = uint32(r.uvarint())
			segs[j].End = uint32(r.uvarint())
			flags := r.u8()
			segs[j].Rule = flags&1 != 0
			segs[j].Entity = flags&2 != 0
		}
		s.Records[i].Segs = segs
		s.Records[i].MinPart = uint32(r.uvarint())
	}
	return r.finish()
}

func (s *Snapshot) encodeTombstones() []byte {
	var w writer
	w.uvarint(uint64(len(s.Dead)))
	for _, word := range s.Dead {
		w.u64(word)
	}
	return w.buf
}

func (s *Snapshot) decodeTombstones(b []byte) error {
	r := reader{b: b}
	n := r.count(8)
	s.Dead = make([]uint64, n)
	for i := 0; i < n; i++ {
		s.Dead[i] = r.u64()
	}
	return r.finish()
}

func (p *PlannerData) encode() []byte {
	var w writer
	w.uvarint(uint64(p.TauMax))
	w.u8(p.Method)
	for _, arr := range [][]uint64{p.CandRatio, p.VerifyNs, p.LatNs, p.DPShrink} {
		w.uvarint(uint64(len(arr)))
		for _, v := range arr {
			w.u64(v)
		}
	}
	for _, arr := range [][]int64{p.Decisions, p.EpochDecisions} {
		w.uvarint(uint64(len(arr)))
		for _, v := range arr {
			w.u64(uint64(v))
		}
	}
	w.u64(uint64(p.ExploreN))
	w.u64(uint64(p.Plans))
	w.u64(uint64(p.Fallbacks))
	w.u64(uint64(p.Reanchors))
	w.u64(uint64(p.Suggested))
	return w.buf
}

func (p *PlannerData) decode(b []byte) error {
	r := reader{b: b}
	p.TauMax = int(r.uvarint())
	p.Method = r.u8()
	for _, dst := range []*[]uint64{&p.CandRatio, &p.VerifyNs, &p.LatNs, &p.DPShrink} {
		n := r.count(8)
		arr := make([]uint64, n)
		for i := 0; i < n; i++ {
			arr[i] = r.u64()
		}
		*dst = arr
	}
	for _, dst := range []*[]int64{&p.Decisions, &p.EpochDecisions} {
		n := r.count(8)
		arr := make([]int64, n)
		for i := 0; i < n; i++ {
			arr[i] = int64(r.u64())
		}
		*dst = arr
	}
	p.ExploreN = int64(r.u64())
	p.Plans = int64(r.u64())
	p.Fallbacks = int64(r.u64())
	p.Reanchors = int64(r.u64())
	p.Suggested = int64(r.u64())
	return r.finish()
}

// validate cross-checks the decoded sections: IDs strictly ascending and
// below NextID, signature IDs inside the key universe, segment spans
// ordered, frozen frequencies in Finalize order, and the tombstone bitmap
// sized to the record count with no bits past the end.
func (s *Snapshot) validate() error {
	if s.Theta < 0 || s.Theta > 1 || s.Theta != s.Theta {
		return fmt.Errorf("%w: theta %v out of range", ErrCorrupt, s.Theta)
	}
	if s.Shards < 1 || s.Shards > 1<<16 {
		return fmt.Errorf("%w: shard count %d", ErrCorrupt, s.Shards)
	}
	if !sort.SliceIsSorted(s.Order.Freqs, func(i, j int) bool { return s.Order.Freqs[i] < s.Order.Freqs[j] }) {
		return fmt.Errorf("%w: frozen frequencies not sorted", ErrCorrupt)
	}
	numKeys := uint32(s.Order.NumKeys())
	prevID := int64(-1)
	for i := range s.Records {
		rec := &s.Records[i]
		if int64(rec.ID) <= prevID {
			return fmt.Errorf("%w: record IDs not strictly ascending at %d", ErrCorrupt, rec.ID)
		}
		prevID = int64(rec.ID)
		if uint64(rec.ID) >= s.NextID {
			return fmt.Errorf("%w: record ID %d >= next ID %d", ErrCorrupt, rec.ID, s.NextID)
		}
		for _, id := range rec.SigIDs {
			if id >= numKeys {
				return fmt.Errorf("%w: signature ID %d outside key universe %d", ErrCorrupt, id, numKeys)
			}
		}
		for _, seg := range rec.Segs {
			if seg.Start > seg.End {
				return fmt.Errorf("%w: inverted segment span [%d,%d)", ErrCorrupt, seg.Start, seg.End)
			}
		}
	}
	wantWords := (len(s.Records) + 63) / 64
	if len(s.Dead) != wantWords {
		return fmt.Errorf("%w: tombstone bitmap has %d words, want %d", ErrCorrupt, len(s.Dead), wantWords)
	}
	if rem := len(s.Records) % 64; rem != 0 && wantWords > 0 {
		if s.Dead[wantWords-1]>>uint(rem) != 0 {
			return fmt.Errorf("%w: tombstone bits past record count", ErrCorrupt)
		}
	}
	return nil
}
