// Package store implements the durable persistence layer for the dynamic
// index: a versioned binary snapshot format whose sections (pebble order,
// records, signatures, prepared-record metadata, tombstones, planner
// feedback) are individually CRC32C-checksummed and addressed through a
// section-offset table, plus a small length-prefixed write-ahead log that
// records the Insert/Remove batch stream between snapshots with per-entry
// checksums and torn-tail truncation on replay.
//
// The package is deliberately a leaf: it deals in plain data structs
// (Snapshot, WalEntry) and knows nothing about indexes, so the codec can be
// fuzzed and crash-tested in isolation. Capture and reconstruction live in
// internal/join.
//
// Layout of a snapshot file:
//
//	magic "AUJSNAP1" | version u32 | section count u32
//	section table: count × { id u32 | offset u64 | length u64 | crc32c u32 }
//	section payloads (offsets are absolute, sections contiguous)
//
// All fixed-width integers are little-endian; variable-width integers use
// unsigned varint encoding. The offset table makes the format mmap-friendly:
// a reader can locate and checksum one section without touching the rest.
//
// Version bump policy: the version is bumped whenever a section payload
// changes incompatibly or a required section is added; readers reject
// versions they do not know rather than guessing. Adding an optional
// section (like the planner table) is backward compatible — unknown section
// ids are ignored on read — and does not bump the version.
package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
)

// Magic identifies a snapshot file; Version is the current format version.
const (
	Magic   = "AUJSNAP1"
	Version = 1
)

// ErrCorrupt is returned when a snapshot or WAL payload fails structural
// validation: bad magic, checksum mismatch, truncated field, or a count
// that cannot fit in the bytes that remain. Torn WAL tails are not errors
// (they truncate); a torn snapshot is.
var ErrCorrupt = errors.New("store: corrupt data")

// castagnoli is the CRC32C polynomial table shared by snapshot sections and
// WAL entries.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// checksum is CRC32C over the payload.
func checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// writer accumulates one section or WAL payload. Append-only; never fails.
type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// reader decodes one section or WAL payload with strict bounds checking:
// the first short read or oversized count sets err, and every subsequent
// accessor returns a zero value, so decode loops never index past the
// input and never allocate more than the input could possibly describe.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrCorrupt
	}
}

func (r *reader) remain() int { return len(r.b) - r.off }

func (r *reader) u8() uint8 {
	if r.err != nil || r.remain() < 1 {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.remain() < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.remain() < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// count reads a uvarint that counts elements each occupying at least
// minBytes bytes of the remaining input, rejecting counts that could not
// possibly fit. This is what keeps hostile inputs from provoking huge
// allocations: every slice we make is bounded by the input length.
func (r *reader) count(minBytes int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(r.remain()/minBytes) {
		r.fail()
		return 0
	}
	return int(v)
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil || n > uint64(r.remain()) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// finish reports corruption if any accessor failed or trailing bytes
// remain; a section payload must be consumed exactly.
func (r *reader) finish() error {
	if r.err == nil && r.remain() != 0 {
		r.fail()
	}
	return r.err
}
