package store

import (
	"testing"
)

// FuzzSnapshotDecode hammers the sectioned snapshot decoder with arbitrary
// bytes. The contract under fuzz: never panic, never over-read (the strict
// reader bounds every count by the remaining input), and anything accepted
// must be a valid snapshot that survives a canonical re-encode round trip.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add(testSnapshot().Encode())
	empty := &Snapshot{
		Theta:   0.5,
		Shards:  1,
		Order:   OrderData{FrozenKeys: []string{}, Freqs: []uint32{}, DynamicKeys: []string{}},
		Records: []RecordData{},
		Dead:    []uint64{},
	}
	f.Add(empty.Encode())
	noPlanner := testSnapshot()
	noPlanner.Planner = nil
	f.Add(noPlanner.Encode())
	f.Add([]byte(Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		// Whatever the decoder accepted — including images with non-minimal
		// varints — must describe a snapshot the canonical encoder can round
		// trip losslessly.
		s2, err := Decode(s.Encode())
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-decode: %v", err)
		}
		if len(s2.Records) != len(s.Records) || s2.NextID != s.NextID || s2.Shards != s.Shards {
			t.Fatalf("re-encode changed the snapshot: %+v vs %+v", s2, s)
		}
	})
}

// FuzzWALReplay hammers the WAL replayer. The contract: never panic, report a
// clean-prefix length inside the input, replay the clean prefix identically a
// second time (truncation-then-append safety depends on that), and yield
// entries that re-encode into a log replaying to the same entries.
func FuzzWALReplay(f *testing.F) {
	var log []byte
	for _, e := range []WalEntry{
		{Op: OpInsert, Raws: []string{"alpha", ""}},
		{Op: OpRemove, IDs: []uint64{3, 1 << 33}},
	} {
		frame, err := EncodeWalEntry(e)
		if err != nil {
			f.Fatal(err)
		}
		log = append(log, frame...)
	}
	f.Add(log)
	f.Add(log[:len(log)-3])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, good := ReplayWAL(data)
		if good < 0 || good > len(data) {
			t.Fatalf("clean prefix %d outside input of %d bytes", good, len(data))
		}
		again, g2 := ReplayWAL(data[:good])
		if g2 != good || !equalEntries(entries, again) {
			t.Fatalf("clean prefix did not replay identically: %d/%d entries, %d/%d bytes",
				len(again), len(entries), g2, good)
		}
		var re []byte
		for _, e := range entries {
			frame, err := EncodeWalEntry(e)
			if err != nil {
				t.Fatalf("replayed entry does not re-encode: %v", err)
			}
			re = append(re, frame...)
		}
		re2, gr := ReplayWAL(re)
		if gr != len(re) || !equalEntries(re2, entries) {
			t.Fatal("re-encoded log did not replay to the same entries")
		}
	})
}
