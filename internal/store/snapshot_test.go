package store

import (
	"reflect"
	"strings"
	"testing"
)

// testSnapshot builds a snapshot exercising every section: a mixed frozen and
// dynamic order, sparse ascending record IDs, multiset signatures, segment
// flags, a set tombstone bit and a populated planner table. Empty slices are
// deliberately non-nil so a decode round-trip is reflect.DeepEqual-exact.
func testSnapshot() *Snapshot {
	return &Snapshot{
		Theta:  0.8,
		Tau:    2,
		Method: 2,
		Plan:   1,
		Shards: 4,
		NextID: 7,
		Order: OrderData{
			FrozenKeys:  []string{"aa", "bb", "cc"},
			Freqs:       []uint32{1, 2, 2},
			DynamicKeys: []string{"dd"},
		},
		Records: []RecordData{
			{ID: 0, Raw: "aa bb", SigIDs: []uint32{0, 1}, Segs: []SegMeta{{Start: 0, End: 1}, {Start: 1, End: 2, Rule: true}}, MinPart: 1},
			{ID: 2, Raw: "cc dd", SigIDs: []uint32{2, 3, 3}, Segs: []SegMeta{{Start: 0, End: 2, Entity: true}}, MinPart: 2},
			{ID: 6, Raw: "", SigIDs: []uint32{}, Segs: []SegMeta{}, MinPart: 0},
		},
		Dead: []uint64{1 << 1},
		Planner: &PlannerData{
			TauMax: 3, Method: 1,
			CandRatio: []uint64{1, 2}, VerifyNs: []uint64{3, 4},
			LatNs: []uint64{5, 6}, DPShrink: []uint64{7, 8},
			Decisions: []int64{9, 10}, EpochDecisions: []int64{11, 12},
			ExploreN: 1, Plans: 2, Fallbacks: 3, Reanchors: 4, Suggested: 2,
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := testSnapshot()
	got, err := Decode(want.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestSnapshotRoundTripEmpty(t *testing.T) {
	want := &Snapshot{
		Theta:   0.5,
		Shards:  1,
		Order:   OrderData{FrozenKeys: []string{}, Freqs: []uint32{}, DynamicKeys: []string{}},
		Records: []RecordData{},
		Dead:    []uint64{},
	}
	got, err := Decode(want.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestSnapshotNoPlannerSection(t *testing.T) {
	s := testSnapshot()
	s.Planner = nil
	got, err := Decode(s.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Planner != nil {
		t.Fatalf("planner section materialized from nothing: %+v", got.Planner)
	}
}

// TestSnapshotCorruption flips every byte of a valid image (and truncates it
// at every length) and requires Decode to reject the result — every section
// is checksummed and the table is structurally validated, so no single-byte
// defect may slip through, and none may panic. The image carries required
// sections only: flipping the table id of an optional section merely drops
// the section, which is correct but not corruption.
func TestSnapshotCorruption(t *testing.T) {
	snap := testSnapshot()
	snap.Planner = nil
	data := snap.Encode()
	for i := range data {
		bad := make([]byte, len(data))
		copy(bad, data)
		bad[i] ^= 0xFF
		if _, err := Decode(bad); err == nil {
			t.Fatalf("byte %d flipped: Decode accepted corrupt image", i)
		}
	}
	for i := 0; i < len(data); i++ {
		if _, err := Decode(data[:i]); err == nil {
			t.Fatalf("truncated to %d bytes: Decode accepted", i)
		}
	}
}

// encodeSections builds an image from explicit (id, payload) sections with
// the real header/table layout, so tests can inject sections Encode never
// writes.
func encodeSections(secs []struct {
	id      uint32
	payload []byte
}) []byte {
	const headerSize = 8 + 4 + 4
	const entrySize = 4 + 8 + 8 + 4
	var w writer
	w.buf = append(w.buf, Magic...)
	w.u32(Version)
	w.u32(uint32(len(secs)))
	offset := uint64(headerSize + entrySize*len(secs))
	for _, sec := range secs {
		w.u32(sec.id)
		w.u64(offset)
		w.u64(uint64(len(sec.payload)))
		w.u32(checksum(sec.payload))
		offset += uint64(len(sec.payload))
	}
	for _, sec := range secs {
		w.buf = append(w.buf, sec.payload...)
	}
	return w.buf
}

func snapshotSections(s *Snapshot) []struct {
	id      uint32
	payload []byte
} {
	return []struct {
		id      uint32
		payload []byte
	}{
		{secMeta, s.encodeMeta()},
		{secOrder, s.encodeOrder()},
		{secRecords, s.encodeRecords()},
		{secSigs, s.encodeSigs()},
		{secPrepared, s.encodePrepared()},
		{secTombstones, s.encodeTombstones()},
	}
}

func TestSnapshotUnknownSectionSkipped(t *testing.T) {
	want := testSnapshot()
	want.Planner = nil
	secs := append(snapshotSections(want), struct {
		id      uint32
		payload []byte
	}{99, []byte("payload from a future format revision")})
	got, err := Decode(encodeSections(secs))
	if err != nil {
		t.Fatalf("Decode with unknown section: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("unknown section changed the decode:\n got %+v\nwant %+v", got, want)
	}
}

func TestSnapshotDuplicateSectionRejected(t *testing.T) {
	s := testSnapshot()
	secs := append(snapshotSections(s), snapshotSections(s)[0])
	if _, err := Decode(encodeSections(secs)); err == nil {
		t.Fatal("duplicate section accepted")
	}
}

func TestSnapshotMissingSectionRejected(t *testing.T) {
	s := testSnapshot()
	s.Planner = nil
	all := snapshotSections(s)
	for drop := range all {
		secs := make([]struct {
			id      uint32
			payload []byte
		}, 0, len(all)-1)
		for i, sec := range all {
			if i != drop {
				secs = append(secs, sec)
			}
		}
		if _, err := Decode(encodeSections(secs)); err == nil {
			t.Fatalf("image missing section %d accepted", all[drop].id)
		}
	}
}

func TestSnapshotUnsupportedVersion(t *testing.T) {
	data := testSnapshot().Encode()
	data[8]++ // little-endian version low byte
	_, err := Decode(data)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted: %v", err)
	}
}

// TestSnapshotValidate drives every cross-section consistency check with an
// image that decodes cleanly but describes an impossible index.
func TestSnapshotValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Snapshot)
	}{
		{"theta above one", func(s *Snapshot) { s.Theta = 1.5 }},
		{"theta NaN", func(s *Snapshot) { nan := 0.0; s.Theta = nan / nan }},
		{"zero shards", func(s *Snapshot) { s.Shards = 0 }},
		{"unsorted frequencies", func(s *Snapshot) { s.Order.Freqs = []uint32{2, 1, 2} }},
		{"record IDs not ascending", func(s *Snapshot) { s.Records[1].ID = 0 }},
		{"record ID at next ID", func(s *Snapshot) { s.Records[2].ID = uint32(s.NextID) }},
		{"signature outside universe", func(s *Snapshot) { s.Records[0].SigIDs[0] = uint32(s.Order.NumKeys()) }},
		{"inverted segment span", func(s *Snapshot) { s.Records[0].Segs[0] = SegMeta{Start: 2, End: 1} }},
		{"tombstone bitmap too short", func(s *Snapshot) { s.Dead = []uint64{} }},
		{"tombstone bits past records", func(s *Snapshot) { s.Dead = []uint64{1 << 63} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testSnapshot()
			tc.mutate(s)
			if _, err := Decode(s.Encode()); err == nil {
				t.Fatal("invalid snapshot accepted")
			}
		})
	}
}
