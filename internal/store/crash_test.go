package store

import (
	"reflect"
	"testing"
)

// crashOp is one step of the scripted commit/append sequence the sweep kills
// at every byte. Exactly one field is set.
type crashOp struct {
	commit *Snapshot
	entry  *WalEntry
}

// crashSnap builds a minimal valid snapshot whose NextID doubles as a unique
// marker identifying which commit of the script produced it.
func crashSnap(marker uint64) *Snapshot {
	return &Snapshot{
		Theta:   0.8,
		Shards:  1,
		NextID:  marker,
		Order:   OrderData{FrozenKeys: []string{}, Freqs: []uint32{}, DynamicKeys: []string{}},
		Records: []RecordData{},
		Dead:    []uint64{},
	}
}

// crashScript interleaves appends and commits so the sweep crosses every
// interesting boundary: append into the initial empty generation, first
// commit (snapshot write, rename, dir sync, WAL rotation, old-generation
// removal), appends into a rotated WAL, a second commit, and a trailing
// append.
func crashScript() []crashOp {
	ins := func(raw string) *WalEntry { return &WalEntry{Op: OpInsert, Raws: []string{raw}} }
	rem := func(ids ...uint64) *WalEntry { return &WalEntry{Op: OpRemove, IDs: ids} }
	return []crashOp{
		{entry: ins("op-0 first insert")},
		{commit: crashSnap(100)},
		{entry: ins("op-2 insert after first checkpoint")},
		{entry: rem(7, 9)},
		{commit: crashSnap(200)},
		{entry: ins("op-5 trailing insert")},
	}
}

// runCrashScript opens the store and drives the script, reporting which ops
// were acknowledged (returned nil). A failed open reports nil acks: nothing
// was acknowledged.
func runCrashScript(fs FS, dir string) []bool {
	st, _, _, err := Open(fs, dir)
	if err != nil {
		return nil
	}
	defer st.Close()
	ops := crashScript()
	acked := make([]bool, len(ops))
	for i, op := range ops {
		var err error
		if op.commit != nil {
			err = st.Commit(op.commit)
		} else {
			err = st.Append(*op.entry)
		}
		acked[i] = err == nil
	}
	return acked
}

// verifyRecovery reopens the healed filesystem and checks the one invariant
// crash recovery promises: the recovered state is a consistent prefix of the
// operation history — every acknowledged op is present, unacknowledged ops
// are either absent or present atomically, and nothing is reordered.
func verifyRecovery(t *testing.T, fs FS, dir string, acked []bool, fault int64) {
	t.Helper()
	st, snap, entries, err := Open(fs, dir)
	if err != nil {
		t.Fatalf("fault %d: recovery open: %v", fault, err)
	}
	st.Close()

	ops := crashScript()
	// Locate the recovered snapshot in the script by its marker.
	pos := -1
	if snap != nil {
		for i, op := range ops {
			if op.commit != nil && op.commit.NextID == snap.NextID {
				pos = i
			}
		}
		if pos == -1 {
			t.Fatalf("fault %d: recovered snapshot with unknown marker %d", fault, snap.NextID)
		}
	}
	// No acknowledged commit may be newer than the recovered snapshot.
	for i, op := range ops {
		if op.commit != nil && acked != nil && acked[i] && i > pos {
			t.Fatalf("fault %d: acknowledged commit at op %d lost, recovered op %d", fault, i, pos)
		}
	}
	// The replayed WAL must be a prefix of the appends issued after the
	// recovered commit (failed intermediate commits do not rotate the log),
	// and every acknowledged append in that range must be inside the prefix.
	var expect []WalEntry
	var expectAcked []bool
	for i := pos + 1; i < len(ops); i++ {
		if ops[i].entry != nil {
			expect = append(expect, *ops[i].entry)
			expectAcked = append(expectAcked, acked != nil && acked[i])
		}
	}
	if len(entries) > len(expect) {
		t.Fatalf("fault %d: recovered %d WAL entries, only %d appends followed the snapshot", fault, len(entries), len(expect))
	}
	for i, e := range entries {
		if !reflect.DeepEqual(e, expect[i]) {
			t.Fatalf("fault %d: WAL entry %d diverged:\n got %+v\nwant %+v", fault, i, e, expect[i])
		}
	}
	for i, ok := range expectAcked {
		if ok && i >= len(entries) {
			t.Fatalf("fault %d: acknowledged append (entry %d after snapshot) lost", fault, i)
		}
	}

	// Recovery must be idempotent: a second crash-free open lands on the
	// exact same state.
	st2, snap2, entries2, err := Open(fs, dir)
	if err != nil {
		t.Fatalf("fault %d: second recovery open: %v", fault, err)
	}
	st2.Close()
	if (snap == nil) != (snap2 == nil) || (snap != nil && snap.NextID != snap2.NextID) {
		t.Fatalf("fault %d: second recovery chose a different snapshot", fault)
	}
	if !reflect.DeepEqual(entries, entries2) {
		t.Fatalf("fault %d: second recovery replayed different entries", fault)
	}
}

// TestCrashSweep kills the scripted commit/append sequence at every mutation
// unit — every data byte written and every metadata operation — and requires
// recovery to land on a consistent prefix state every single time.
func TestCrashSweep(t *testing.T) {
	dry := NewMemFS()
	runCrashScript(dry, "data")
	total := dry.Spent()
	if total < 64 {
		t.Fatalf("dry run spent only %d mutation units; script too small to sweep", total)
	}
	for k := int64(0); k <= total; k++ {
		fs := NewMemFS()
		fs.FailAfter(k)
		acked := runCrashScript(fs, "data")
		fs.Heal()
		verifyRecovery(t, fs, "data", acked, k)
	}
}

// TestCrashSweepDouble crashes a second time during the recovery itself (the
// torn-tail truncation and stale-file cleanup are mutations too), then heals
// and requires the third open to still land on a consistent state.
func TestCrashSweepDouble(t *testing.T) {
	// First crash point: mid-append after the second commit, leaving both a
	// retired generation to clean and a torn tail to truncate.
	dry := NewMemFS()
	runCrashScript(dry, "data")
	total := dry.Spent()

	for k := total * 3 / 4; k <= total; k++ {
		fs := NewMemFS()
		fs.FailAfter(k)
		acked := runCrashScript(fs, "data")

		// Measure recovery's own mutation footprint, then sweep it.
		fs.Heal()
		before := fs.Spent()
		if st, _, _, err := Open(fs, "data"); err == nil {
			st.Close()
		}
		recoverCost := fs.Spent() - before
		for r := int64(0); r <= recoverCost; r++ {
			fs2 := NewMemFS()
			fs2.FailAfter(k)
			acked2 := runCrashScript(fs2, "data")
			fs2.Heal()
			fs2.FailAfter(r)
			if st, _, _, err := Open(fs2, "data"); err == nil {
				st.Close()
			}
			fs2.Heal()
			verifyRecovery(t, fs2, "data", acked2, k*1000+r)
			_ = acked
		}
	}
}

// TestOpenRefusesUndecodableSnapshots ensures a directory whose snapshots all
// fail to decode is an error, not a silent empty restart over data the
// operator thought was durable.
func TestOpenRefusesUndecodableSnapshots(t *testing.T) {
	fs := NewMemFS()
	st, _, _, err := Open(fs, "data")
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	if err := st.Commit(crashSnap(100)); err != nil {
		t.Fatalf("commit: %v", err)
	}
	st.Close()

	// Corrupt the one durable snapshot in place.
	data, err := fs.ReadFile("data/snap-1.aujs")
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	data[len(data)-1] ^= 0xFF
	f, err := fs.Create("data/snap-1.aujs")
	if err != nil {
		t.Fatalf("rewrite snapshot: %v", err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("rewrite snapshot: %v", err)
	}
	f.Close()

	if _, _, _, err := Open(fs, "data"); err == nil {
		t.Fatal("open accepted a directory with only undecodable snapshots")
	}
}

// TestStoreBrokenIsSticky checks that after one injected durability failure
// the store refuses every further mutation: acknowledging a later write would
// let recovery silently truncate it away together with the torn tail.
func TestStoreBrokenIsSticky(t *testing.T) {
	fs := NewMemFS()
	st, _, _, err := Open(fs, "data")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close()
	if err := st.Append(WalEntry{Op: OpInsert, Raws: []string{"ok"}}); err != nil {
		t.Fatalf("append: %v", err)
	}
	fs.FailAfter(2) // dies inside the next frame's data bytes
	if err := st.Append(WalEntry{Op: OpInsert, Raws: []string{"torn"}}); err == nil {
		t.Fatal("append survived an injected crash")
	}
	fs.Heal()
	if err := st.Append(WalEntry{Op: OpInsert, Raws: []string{"after"}}); err == nil {
		t.Fatal("store accepted a mutation after a durability failure")
	}
	if err := st.Commit(crashSnap(100)); err == nil {
		t.Fatal("store committed after a durability failure")
	}
}
