package store

import (
	"reflect"
	"testing"
)

func testEntries() []WalEntry {
	return []WalEntry{
		{Op: OpInsert, Raws: []string{"alpha beta", "", "gamma"}},
		{Op: OpRemove, IDs: []uint64{0, 7, 1 << 40}},
		{Op: OpInsert, Raws: []string{"delta"}},
	}
}

// equalEntries compares entry slices without distinguishing nil from empty
// (a replay of zero entries returns nil).
func equalEntries(a, b []WalEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func encodeLog(t *testing.T, entries []WalEntry) ([]byte, []int) {
	t.Helper()
	var log []byte
	var ends []int // cumulative frame boundaries
	for _, e := range entries {
		frame, err := EncodeWalEntry(e)
		if err != nil {
			t.Fatalf("EncodeWalEntry: %v", err)
		}
		log = append(log, frame...)
		ends = append(ends, len(log))
	}
	return log, ends
}

func TestWALRoundTrip(t *testing.T) {
	want := testEntries()
	log, _ := encodeLog(t, want)
	got, good := ReplayWAL(log)
	if good != len(log) {
		t.Fatalf("clean log: good prefix %d, want %d", good, len(log))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestWALTornTail cuts the log at every byte: replay must return exactly the
// entries whose frames fit entirely in the prefix, report the boundary of the
// last complete frame as the clean length, and never panic.
func TestWALTornTail(t *testing.T) {
	want := testEntries()
	log, ends := encodeLog(t, want)
	for cut := 0; cut <= len(log); cut++ {
		complete := 0
		goodWant := 0
		for i, end := range ends {
			if end <= cut {
				complete = i + 1
				goodWant = end
			}
		}
		got, good := ReplayWAL(log[:cut])
		if good != goodWant {
			t.Fatalf("cut %d: clean prefix %d, want %d", cut, good, goodWant)
		}
		if !equalEntries(got, want[:complete]) {
			t.Fatalf("cut %d: replayed %d entries, want %d", cut, len(got), complete)
		}
	}
}

// TestWALCorruptByte flips every byte of the log: replay must stop exactly at
// the frame holding the flip, returning the intact entries before it.
func TestWALCorruptByte(t *testing.T) {
	want := testEntries()
	log, ends := encodeLog(t, want)
	for i := range log {
		frame := 0
		goodWant := 0
		for f, end := range ends {
			if i >= end {
				frame = f + 1
				goodWant = end
			}
		}
		bad := make([]byte, len(log))
		copy(bad, log)
		bad[i] ^= 0xFF
		got, good := ReplayWAL(bad)
		if good != goodWant {
			t.Fatalf("byte %d flipped: clean prefix %d, want %d", i, good, goodWant)
		}
		if !equalEntries(got, want[:frame]) {
			t.Fatalf("byte %d flipped: replayed %d entries, want %d", i, len(got), frame)
		}
	}
}

func TestWALUnknownOpStopsReplay(t *testing.T) {
	// A frame with a valid checksum over a payload whose op the replayer does
	// not know ends the replay at that frame.
	var p writer
	p.u8(3)
	p.uvarint(0)
	var w writer
	w.u32(uint32(len(p.buf)))
	w.u32(checksum(p.buf))
	w.buf = append(w.buf, p.buf...)

	good0, _ := EncodeWalEntry(WalEntry{Op: OpInsert, Raws: []string{"x"}})
	log := append(append([]byte{}, good0...), w.buf...)
	got, good := ReplayWAL(log)
	if good != len(good0) || len(got) != 1 {
		t.Fatalf("unknown op: replayed %d entries with prefix %d, want 1 entries at %d", len(got), good, len(good0))
	}
}

func TestWALOversizedLengthStopsReplay(t *testing.T) {
	var w writer
	w.u32(maxWalEntry + 1)
	w.u32(0)
	w.buf = append(w.buf, make([]byte, 64)...)
	got, good := ReplayWAL(w.buf)
	if len(got) != 0 || good != 0 {
		t.Fatalf("oversized frame believed: %d entries, prefix %d", len(got), good)
	}
}

func TestWALEncodeRejectsUnknownOp(t *testing.T) {
	if _, err := EncodeWalEntry(WalEntry{Op: 9}); err == nil {
		t.Fatal("unknown op encoded")
	}
}
