package datagen

import (
	"testing"

	"github.com/aujoin/aujoin/internal/strutil"
)

func TestGeneratorDeterminism(t *testing.T) {
	cfg := MEDLike(50, 7)
	a := New(cfg).Generate()
	b := New(cfg).Generate()
	if len(a.S) != len(b.S) || len(a.T) != len(b.T) {
		t.Fatal("sizes differ between identically seeded runs")
	}
	for i := range a.S {
		if a.S[i].Raw != b.S[i].Raw {
			t.Fatalf("record %d differs: %q vs %q", i, a.S[i].Raw, b.S[i].Raw)
		}
	}
	for i := range a.T {
		if a.T[i].Raw != b.T[i].Raw {
			t.Fatalf("variant %d differs", i)
		}
	}
	if len(a.Truth) != len(b.Truth) {
		t.Fatal("ground truth differs")
	}
}

func TestGeneratedDatasetShape(t *testing.T) {
	for _, cfg := range []Config{MEDLike(80, 3), WIKILike(80, 4)} {
		g := New(cfg)
		ds := g.Generate()
		if ds.Name != cfg.Name {
			t.Errorf("name = %q", ds.Name)
		}
		if len(ds.S) != 80 || len(ds.T) != 80 {
			t.Fatalf("sizes = %d/%d, want 80/80", len(ds.S), len(ds.T))
		}
		if len(ds.Truth) == 0 {
			t.Fatal("no ground truth pairs")
		}
		eff := g.Config()
		for _, r := range ds.S {
			n := len(r.Tokens)
			if n < eff.MinTokens {
				t.Fatalf("record %q has %d tokens, min is %d", r.Raw, n, eff.MinTokens)
			}
			// Entity mentions may push a record a few tokens over MaxTokens.
			if n > eff.MaxTokens+3 {
				t.Fatalf("record %q has %d tokens, far above max %d", r.Raw, n, eff.MaxTokens)
			}
		}
		// Variant records may shrink when a multi-token rule side is
		// replaced by a shorter one, but they must never be empty.
		for _, r := range ds.T {
			if len(r.Tokens) == 0 {
				t.Fatalf("empty variant record")
			}
		}
		_ = strutil.JoinTokens
		// Ground-truth indices must be valid and the referenced variant must
		// not be identical to its source too often (transformations applied).
		changed := 0
		for pair, prov := range ds.Truth {
			if pair[0] < 0 || pair[0] >= len(ds.S) || pair[1] < 0 || pair[1] >= len(ds.T) {
				t.Fatalf("truth pair out of range: %v", pair)
			}
			if ds.S[pair[0]].Raw != ds.T[pair[1]].Raw {
				changed++
			}
			_ = prov
		}
		if changed == 0 {
			t.Error("no variant was actually transformed")
		}
		// Knowledge sources exist and are non-trivial.
		if ds.Tax.Len() < 10 {
			t.Errorf("taxonomy only has %d nodes", ds.Tax.Len())
		}
		if ds.Rules.Len() < 10 {
			t.Errorf("rule set only has %d rules", ds.Rules.Len())
		}
		if ds.Context() == nil {
			t.Error("context is nil")
		}
		if len(ds.TruthPairs()) != len(ds.Truth) {
			t.Error("TruthPairs length mismatch")
		}
	}
}

func TestTaxonomyStatsWithinConfig(t *testing.T) {
	cfg := MEDLike(10, 11)
	g := New(cfg)
	st := g.Taxonomy().Stats()
	if st.Nodes > cfg.TaxonomyNodes+cfg.TaxonomyFanout {
		t.Errorf("taxonomy grew to %d nodes, budget %d", st.Nodes, cfg.TaxonomyNodes)
	}
	if st.MaxHeight > cfg.TaxonomyDepth {
		t.Errorf("max height %d exceeds configured depth %d", st.MaxHeight, cfg.TaxonomyDepth)
	}
	if g.Rules().Len() < cfg.SynonymRules {
		t.Errorf("rules = %d, want ≥ %d", g.Rules().Len(), cfg.SynonymRules)
	}
}

func TestVariantProvenance(t *testing.T) {
	g := New(Config{Seed: 21, Size: 10, TypoRate: 1, SynonymSwapRate: 1, TaxonomySwapRate: 1})
	typos, syns, taxs := 0, 0, 0
	for i := 0; i < 200; i++ {
		base := g.BaseRecord()
		variant, prov := g.Variant(base)
		if prov.Typo {
			typos++
		}
		if prov.SynonymSwap {
			syns++
		}
		if prov.TaxonomySwap {
			taxs++
		}
		if variant == "" {
			t.Fatal("empty variant")
		}
	}
	if typos == 0 {
		t.Error("no typos injected despite rate 1")
	}
	if syns == 0 {
		t.Error("no synonym swaps injected despite rate 1")
	}
	if taxs == 0 {
		t.Error("no taxonomy swaps injected despite rate 1")
	}
}

func TestApplyTypoChangesString(t *testing.T) {
	g := New(Config{Seed: 5, Size: 1})
	changed := 0
	for i := 0; i < 100; i++ {
		if g.applyTypo("keyword") != "keyword" {
			changed++
		}
	}
	if changed < 80 {
		t.Errorf("typo only changed the token %d/100 times", changed)
	}
	if got := g.applyTypo("a"); got != "a" {
		t.Errorf("single-letter token should be untouched, got %q", got)
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Size <= 0 || cfg.VocabSize <= 0 || cfg.MaxTokens < cfg.MinTokens {
		t.Errorf("bad defaults: %+v", cfg)
	}
	if cfg.Name != "synthetic" {
		t.Errorf("default name = %q", cfg.Name)
	}
	g := New(Config{Seed: 1})
	if g.Config().Size != 1000 {
		t.Errorf("default size = %d", g.Config().Size)
	}
}

func TestSpliceTokens(t *testing.T) {
	out := spliceTokens([]string{"a", "b", "c", "d"}, 1, 2, []string{"x"})
	if strutil.JoinTokens(out) != "a x d" {
		t.Errorf("spliceTokens = %v", out)
	}
}

// TestZipfTokenSkew pins the true-Zipf sampler: with ZipfS set, plain
// tokens concentrate on the top vocabulary ranks far beyond the legacy
// squared-uniform skew, generation stays deterministic per seed, and the
// record-by-record streaming surface (BaseRecord/Variant) reproduces
// itself across identically seeded generators.
func TestZipfTokenSkew(t *testing.T) {
	cfg := MEDLike(200, 5)
	cfg.EntityRate, cfg.SynonymTermRate = 0, 0 // plain tokens only
	cfg.ZipfS = 1.4

	count := func(c Config) (map[string]int, int) {
		g := New(c)
		freq := map[string]int{}
		total := 0
		for i := 0; i < c.Size; i++ {
			for _, tok := range strutil.Tokenize(g.BaseRecord()) {
				freq[tok]++
				total++
			}
		}
		return freq, total
	}
	top := func(freq map[string]int) int {
		best := 0
		for _, n := range freq {
			if n > best {
				best = n
			}
		}
		return best
	}

	zf, ztotal := count(cfg)
	legacy := cfg
	legacy.ZipfS = 0
	lf, ltotal := count(legacy)
	zshare := float64(top(zf)) / float64(ztotal)
	lshare := float64(top(lf)) / float64(ltotal)
	if zshare <= lshare {
		t.Fatalf("zipf top-token share %.3f not above legacy %.3f", zshare, lshare)
	}
	if zshare < 0.05 {
		t.Fatalf("zipf top-token share %.3f too flat for s=1.4", zshare)
	}

	ga, gb := New(cfg), New(cfg)
	for i := 0; i < 100; i++ {
		ra, rb := ga.BaseRecord(), gb.BaseRecord()
		if ra != rb {
			t.Fatalf("streamed record %d differs between identically seeded generators: %q vs %q", i, ra, rb)
		}
		if i%2 == 0 {
			va, pa := ga.Variant(ra)
			vb, pb := gb.Variant(rb)
			if va != vb || pa != pb {
				t.Fatalf("streamed variant %d differs", i)
			}
		}
	}
}
