package join

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/strutil"
)

// shardCounts are the partitionings every invariance check runs under:
// the degenerate router (1, the legacy single index), an even split (2) and
// a prime count that exercises uneven shard sizes (7 shards over ≲50
// records leaves some shards nearly empty).
var shardCounts = []int{1, 2, 7}

// TestShardedIndexShardCountInvariance is the correctness hinge of the
// sharded engine: shard assignment must never change results. The same
// corpus and the same mutation script are applied to routers with 1, 2 and
// 7 shards — across all three filter methods and θ ∈ {0.7, 0.8, 0.9}, with
// thresholds aggressive enough to force per-shard rebuilds — and after
// every round Probe, ProbeRecord and QueryTopK must be bit-identical across
// shard counts and equal to BruteForce over the live catalog.
func TestShardedIndexShardCountInvariance(t *testing.T) {
	ctx := propertyContexts()["full"]
	for _, method := range []pebble.Method{pebble.UFilter, pebble.AUHeuristic, pebble.AUDP} {
		for _, theta := range []float64{0.7, 0.8, 0.9} {
			rng := rand.New(rand.NewSource(31))
			j := NewJoiner(ctx)
			opts := Options{Theta: theta, Tau: 2, Method: method}
			corpus := propertyCorpus(30, rng)
			probe := propertyCorpus(20, rng)
			indexes := make([]*ShardedIndex, len(shardCounts))
			for i, n := range shardCounts {
				indexes[i] = j.BuildShardedIndex(corpus, n, opts, DynamicOptions{
					RebuildFraction: 0.15, MaxSegments: 3,
				})
			}
			// The mutation script is data, not calls, so every variant sees
			// the identical sequence (router ID allocation is deterministic:
			// sequential from the max initial ID).
			type mutation struct {
				insert []string
				remove []int
			}
			var script []mutation
			nextID := 30
			for round := 0; round < 4; round++ {
				ins := rawCorpus(6, rng)
				var rem []int
				for i := 0; i < 4; i++ {
					rem = append(rem, (round*7+i*3)%(nextID+len(ins)))
				}
				rem = append(rem, nextID+1) // an id from this very batch
				script = append(script, mutation{ins, rem})
				nextID += len(ins)
			}

			check := func(step int) {
				t.Helper()
				views := make([]*ShardedView, len(indexes))
				for i := range indexes {
					views[i] = indexes[i].Snapshot()
				}
				ref, refStats := views[0].Probe(probe)
				oracle := j.BruteForce(views[0].Live(), probe, theta, nil)
				if !reflect.DeepEqual(ref, oracle) {
					t.Fatalf("%v θ=%v step %d: shards=1 Probe %d pairs, oracle %d pairs",
						method, theta, step, len(ref), len(oracle))
				}
				if refStats.Results != len(ref) {
					t.Fatalf("%v θ=%v step %d: stats.Results = %d, want %d",
						method, theta, step, refStats.Results, len(ref))
				}
				for i := 1; i < len(views); i++ {
					if live := views[i].Live(); !reflect.DeepEqual(live, views[0].Live()) {
						t.Fatalf("%v θ=%v step %d: shards=%d live catalog diverged",
							method, theta, step, shardCounts[i])
					}
					got, _ := views[i].Probe(probe)
					if !reflect.DeepEqual(got, ref) {
						t.Fatalf("%v θ=%v step %d: shards=%d Probe %d pairs, shards=1 %d pairs",
							method, theta, step, shardCounts[i], len(got), len(ref))
					}
				}
				for qi := 0; qi < 5; qi++ {
					tokens := probe[qi].Tokens
					refQ := views[0].ProbeRecord(tokens)
					for i := 1; i < len(views); i++ {
						if got := views[i].ProbeRecord(tokens); !reflect.DeepEqual(got, refQ) {
							t.Fatalf("%v θ=%v step %d shards=%d: ProbeRecord(%q) = %v, want %v",
								method, theta, step, shardCounts[i], probe[qi].Raw, got, refQ)
						}
						for _, k := range []int{-1, 0, 1, 3, len(refQ) + 2} {
							got := views[i].QueryTopK(tokens, k)
							var want []QueryMatch
							if k > 0 {
								want = views[0].QueryTopK(tokens, k)
							}
							if len(got) == 0 && len(want) == 0 {
								continue
							}
							if !reflect.DeepEqual(got, want) {
								t.Fatalf("%v θ=%v step %d shards=%d: QueryTopK(%q, %d) = %v, want %v",
									method, theta, step, shardCounts[i], probe[qi].Raw, k, got, want)
							}
						}
					}
				}
			}

			check(0)
			for step, mut := range script {
				for i := range indexes {
					indexes[i].InsertBatch(mut.insert)
					// Router ID allocation must be identical across shard
					// counts for the invariance comparison to make sense.
					if want := indexes[0].nextID; indexes[i].nextID != want {
						t.Fatalf("id allocation diverged: shards=%d nextID=%d, shards=1 nextID=%d",
							shardCounts[i], indexes[i].nextID, want)
					}
					indexes[i].RemoveBatch(mut.remove)
					if want := indexes[0].Snapshot().Stats().Live; indexes[i].Snapshot().Stats().Live != want {
						t.Fatalf("live count diverged after removes: shards=%d", shardCounts[i])
					}
				}
				check(step + 1)
			}
			// The partitioned variants must actually have exercised
			// per-shard rebuilds, or the test proves nothing about them.
			for i, sx := range indexes {
				if shardCounts[i] > 1 && sx.Stats().Rebuilds == 0 {
					t.Fatalf("%v θ=%v: shards=%d never rebuilt under the mutation script",
						method, theta, shardCounts[i])
				}
			}
		}
	}
}

// TestShardedIndexRemoveBatchSemantics pins the per-ID report of RemoveBatch:
// present IDs true exactly once, absent and re-removed IDs false, and a
// batch mixing shards lands on every involved shard.
func TestShardedIndexRemoveBatchSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	j := NewJoiner(propertyContexts()["synonyms"])
	sx := j.BuildShardedIndex(propertyCorpus(20, rng), 4, Options{Theta: 0.8, Tau: 1}, DynamicOptions{})
	got := sx.RemoveBatch([]int{3, 99, 3, 7, -1, 12})
	want := []bool{true, false, false, true, false, true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RemoveBatch = %v, want %v", got, want)
	}
	if live := sx.Stats().Live; live != 17 {
		t.Fatalf("Live = %d after 3 removals from 20, want 17", live)
	}
	if sx.RemoveBatch(nil) != nil {
		t.Fatal("RemoveBatch(nil) should be nil")
	}
}

// TestShardedIndexSharedCache checks that one prepared-record cache spans
// all shards: re-inserting a removed record that hashes to a different
// shard must still hit, and the counters surface in the stats.
func TestShardedIndexSharedCache(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	j := NewJoiner(propertyContexts()["plain"])
	sx := j.BuildShardedIndex(propertyCorpus(8, rng), 3, Options{Theta: 0.8, Tau: 1}, DynamicOptions{})
	raw := []string{"coffee shop latte helsinki"}
	id0 := sx.InsertBatch(raw)[0]
	sx.Remove(id0)
	// Re-insert until the fresh ID routes to a different shard than id0.
	var id1 int
	for {
		id1 = sx.InsertBatch(raw)[0]
		if shardOf(id1, 3) != shardOf(id0, 3) {
			break
		}
		sx.Remove(id1)
	}
	st := sx.Stats()
	if st.CacheHits == 0 {
		t.Fatalf("re-insert across shards never hit the shared cache: %+v", st)
	}
	if st.CacheMisses == 0 {
		t.Fatalf("first insert should have missed: %+v", st)
	}
	if st.Shards != 3 {
		t.Fatalf("Shards = %d, want 3", st.Shards)
	}
}

// TestShardedIndexStableIDsAcrossShardRebuilds checks stable IDs keep
// identifying the same strings after forced per-shard rebuilds, and that
// ShardedView.Record routes to the right shard.
func TestShardedIndexStableIDsAcrossShardRebuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	j := NewJoiner(propertyContexts()["synonyms"])
	sx := j.BuildShardedIndex(propertyCorpus(12, rng), 3, Options{Theta: 0.8, Tau: 1}, DynamicOptions{
		RebuildFraction: 0.05, MaxSegments: 1,
	})
	ids := sx.InsertBatch([]string{"coffee shop latte helsinki", "apple cake bakery special"})
	for i := 0; i < 10; i++ {
		sx.Remove(i)
	}
	if sx.Stats().Rebuilds == 0 {
		t.Fatal("expected per-shard rebuilds")
	}
	v := sx.Snapshot()
	rec, ok := v.Record(ids[0])
	if !ok || rec.Raw != "coffee shop latte helsinki" {
		t.Fatalf("Record(%d) = %+v, %v; want the first inserted string", ids[0], rec, ok)
	}
	if _, ok := v.Record(3); ok {
		t.Fatal("removed record still visible after rebuild")
	}
	if got := len(sx.RebuildPauses()); got != sx.Stats().Rebuilds {
		t.Fatalf("RebuildPauses has %d entries, Rebuilds = %d", got, sx.Stats().Rebuilds)
	}
}

// TestShardedIndexConcurrentMutateQuery hammers a 4-shard router with
// concurrent InsertBatch/RemoveBatch writers and fan-out readers while
// per-shard rebuilds fire — it exists to run under -race — and finishes
// with an oracle check of the final state.
func TestShardedIndexConcurrentMutateQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	j := NewJoiner(propertyContexts()["full"])
	sx := j.BuildShardedIndex(propertyCorpus(30, rng), 4, Options{Theta: 0.75, Tau: 2, Method: pebble.AUDP}, DynamicOptions{
		RebuildFraction: 0.1, MaxSegments: 2,
	})
	queries := rawCorpus(30, rng)
	probe := propertyCorpus(10, rng)

	done := make(chan struct{})
	var readers, writers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				v := sx.Snapshot()
				tokens := strutil.Tokenize(queries[(i+r)%len(queries)])
				switch i % 3 {
				case 0:
					v.ProbeRecord(tokens)
				case 1:
					v.QueryTopK(tokens, 5)
				default:
					v.Probe(probe)
				}
				st := v.Stats()
				if st.Live != st.Records-st.Dead {
					t.Errorf("inconsistent snapshot stats: %+v", st)
					return
				}
			}
		}(r)
	}

	insertedIDs := make(chan int, 4096)
	writers.Add(2)
	go func() {
		defer writers.Done()
		wrng := rand.New(rand.NewSource(53))
		for i := 0; i < 40; i++ {
			batch := rawCorpus(4, wrng)
			// Novel tokens grow the shared dynamic region past the frozen
			// prefix, so global refreezes fire while readers snapshot —
			// exercising the generation-retry path under the race detector.
			for b := range batch {
				batch[b] += fmt.Sprintf(" zaw%dqx%dv", i, b)
			}
			for _, id := range sx.InsertBatch(batch) {
				select {
				case insertedIDs <- id:
				default:
				}
			}
		}
	}()
	go func() {
		defer writers.Done()
		for i := 0; i < 30; i++ {
			batch := []int{i % 30}
			select {
			case id := <-insertedIDs:
				batch = append(batch, id)
			default:
			}
			sx.RemoveBatch(batch)
		}
	}()

	writers.Wait()
	close(done)
	readers.Wait()

	v := sx.Snapshot()
	got, _ := v.Probe(probe)
	want := j.BruteForce(v.Live(), probe, 0.75, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("final Probe %d pairs, oracle %d pairs", len(got), len(want))
	}
	if sx.Stats().Rebuilds == 0 {
		t.Fatal("expected per-shard rebuilds under mutation load")
	}
	if sx.Refreezes() == 0 {
		t.Fatal("expected global refreezes under novel-key mutation load")
	}
}

// TestShardedIndexGlobalRefreeze drives sustained novel-key inserts until
// the shared order's dynamic region outgrows its frozen prefix and the
// router re-finalizes globally: the dynamic region must reset, stable IDs
// must survive, and results must still match BruteForce on a fresh
// generation-consistent snapshot.
func TestShardedIndexGlobalRefreeze(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	j := NewJoiner(propertyContexts()["full"])
	sx := j.BuildShardedIndex(propertyCorpus(12, rng), 3, Options{Theta: 0.7, Tau: 2, Method: pebble.AUDP}, DynamicOptions{})
	probe := propertyCorpus(10, rng)
	keep := sx.InsertBatch([]string{"coffee shop latte helsinki"})[0]
	var novel []int
	for i := 0; sx.Refreezes() == 0 && i < 500; i++ {
		novel = append(novel, sx.InsertBatch([]string{fmt.Sprintf("novel%dxa token%dyb fresh%dzc", i, i, i)})...)
	}
	if sx.Refreezes() == 0 {
		t.Fatal("global refreeze never fired under sustained novel-key inserts")
	}
	st := sx.Stats()
	if st.DynamicKeys >= st.FrozenKeys {
		t.Fatalf("dynamic region did not reset at the refreeze: %+v", st)
	}
	v := sx.Snapshot()
	if rec, ok := v.Record(keep); !ok || rec.Raw != "coffee shop latte helsinki" {
		t.Fatalf("stable id %d lost across the refreeze: %+v %v", keep, rec, ok)
	}
	got, _ := v.Probe(probe)
	want := j.BruteForce(v.Live(), probe, 0.7, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-refreeze Probe %d pairs, oracle %d pairs", len(got), len(want))
	}
	// Removing the novel records and mutating further keeps working on the
	// new generation.
	sx.RemoveBatch(novel[:len(novel)/2])
	v = sx.Snapshot()
	got, _ = v.Probe(probe)
	want = j.BruteForce(v.Live(), probe, 0.7, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-refreeze mutation Probe %d pairs, oracle %d pairs", len(got), len(want))
	}
}
