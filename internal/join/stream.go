package join

import (
	"context"
	"iter"
	"runtime"
	"sync"
	"time"

	"github.com/aujoin/aujoin/internal/core"
	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/strutil"
)

// This file is the streaming heart of the join pipeline. Every entry point —
// batch Join/Probe/SelfJoin as much as the iter.Seq2 streaming variants —
// runs through runProbeStream: candidate generation feeds a parallel
// verification stage whose workers push confirmed pairs into a bounded emit
// channel, and a single collector goroutine (the caller's) hands them to an
// emit callback as they arrive. Peak Match buffering is therefore
// O(workers·emitBatch) regardless of the result size; the batch wrappers
// simply collect and sort, so there is one pipeline, not two.
//
// Cancellation is cooperative and prompt: the candidate stage checks the
// context between probe records, verification workers between candidate
// pairs, and a consumer abandoning an iter.Seq2 mid-stream cancels an
// internal context that unblocks every worker parked on the emit channel.
// No goroutine outlives its seq iteration.

// emitBatch is the per-worker slack of the bounded emit channel: verification
// workers may run at most this many confirmed matches ahead of the consumer
// before they block, which is what bounds the streaming path's Match
// buffering at O(workers·emitBatch).
const emitBatch = 64

// ctxCheckStride bounds how many loop iterations a sequential stage runs
// between context checks; Err on an idle context is a few nanoseconds, so a
// small stride keeps cancellation prompt without measurable overhead.
const ctxCheckStride = 16

// parallelForWorkersCtx is parallelForWorkers with cooperative cancellation:
// once ctx is done, no new index is dispatched, workers skip whatever is
// still queued, and — crucially — the context error is reported even when
// the cancellation raced with the end of the dispatch loop, so a caller can
// never mistake a run with silently skipped items for a complete one.
func parallelForWorkersCtx(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n <= 1 || workers == 1 {
		for i := 0; i < n; i++ {
			if i%ctxCheckStride == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			fn(0, i)
		}
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		goPipeline(func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() == nil {
					fn(w, i)
				}
			}
		})
	}
	done := ctx.Done()
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			break feed
		}
	}
	close(next)
	wg.Wait()
	// The final check (not the feed loop) is authoritative: a cancellation
	// landing after the last dispatch still made workers skip queued items.
	return ctx.Err()
}

// verifyTally aggregates verify-phase work counters across the workers of
// one run; the values feed Stats and the cumulative index atomics.
type verifyTally struct {
	verified int64
	pruned   int64
	memoHits int64
}

func (t *verifyTally) addScratch(sc *core.Scratch) {
	if sc == nil {
		return
	}
	t.verified += sc.Stats.Verified
	t.pruned += sc.Stats.PrunedByBound
	t.memoHits += sc.Stats.MemoHits
}

// pairBatchPool recycles the emit batches flowing from verification workers
// to the collector, so steady-state match emission allocates nothing.
var pairBatchPool = sync.Pool{
	New: func() any {
		s := make([]Pair, 0, emitBatch)
		return &s
	},
}

// streamVerify runs the thresholded prepared-record verification of the
// candidate pairs in parallel, with one similarity scratch per worker, and
// sends every pair reaching theta to out in completion order, batched in
// pooled slices of up to emitBatch pairs. It returns nil after the last
// send, or the context error when cancelled; it never closes out (the caller
// owns the channel). When vt is non-nil, the workers' verify counters are
// accumulated into it before returning.
func streamVerify(ctx context.Context, s, t []strutil.Record, prepS, prepT []*core.PreparedRecord, candidates []pairKey, calc *core.Calculator, theta float64, workers int, noMemo bool, out chan<- []Pair, vt *verifyTally) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	scratches := make([]*core.Scratch, workers)
	batches := make([]*[]Pair, workers)
	done := ctx.Done()
	flush := func(w int) {
		b := batches[w]
		if b == nil || len(*b) == 0 {
			return
		}
		batches[w] = nil
		select {
		case out <- *b:
		case <-done:
			*b = (*b)[:0]
			pairBatchPool.Put(b)
		}
	}
	err := parallelForWorkersCtx(ctx, len(candidates), workers, func(w, i int) {
		c := candidates[i]
		if c.s >= len(s) || c.t >= len(t) {
			return
		}
		sc := scratches[w]
		if sc == nil {
			sc = core.NewScratch()
			sc.DisableMemo = noMemo
			scratches[w] = sc
		}
		if v, ok := calc.VerifyPrepared(prepS[c.s], prepT[c.t], theta, sc); ok {
			b := batches[w]
			if b == nil {
				b = pairBatchPool.Get().(*[]Pair)
				batches[w] = b
			}
			*b = append(*b, Pair{S: s[c.s].ID, T: t[c.t].ID, Similarity: v})
			if len(*b) >= emitBatch {
				flush(w)
			}
		}
	})
	// Workers have all returned; hand their partial batches to the collector
	// and fold their counters.
	for w := range batches {
		flush(w)
	}
	if vt != nil {
		for _, sc := range scratches {
			vt.addScratch(sc)
		}
	}
	return err
}

// collectStream drives one producer goroutine that sends pair batches to a
// bounded channel and forwards each pair to emit on the caller's goroutine,
// returning consumed batches to the pool. When emit returns false the
// internal context is cancelled, the channel drained, and the producer
// joined — the consumer walking away mid-stream leaks nothing and is not an
// error. The returned count is the number of pairs emitted.
func collectStream(ctx context.Context, workers int, produce func(ctx context.Context, out chan<- []Pair) error, emit func(Pair) bool) (int, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make(chan []Pair, workers)
	done := make(chan error, 1)
	goPipeline(func() {
		err := produce(ictx, out)
		close(out)
		done <- err
	})
	emitted := 0
	stopped := false
	for batch := range out {
		for _, p := range batch {
			if stopped {
				break
			}
			if !emit(p) {
				stopped = true
				cancel()
				break
			}
			emitted++
		}
		batch = batch[:0]
		pairBatchPool.Put(&batch)
	}
	err := <-done
	if stopped {
		// The consumer broke out of the stream; the induced cancellation is
		// bookkeeping, not a failure.
		return emitted, nil
	}
	return emitted, err
}

// runProbeStream runs candidate generation and streaming verification for
// ready-made probe signatures against a probe target, invoking emit for every
// confirmed pair in completion order (unordered across workers) on the
// caller's goroutine. It returns the join statistics accumulated up to the
// point of return and the context error when the run was cancelled. The
// batch runProbeStages and every Seq entry point ride this one pipeline.
func runProbeStream(ctx context.Context, calc *core.Calculator, opts Options, tgt probeTarget, records []strutil.Record, sigs []pebble.Signature, prep []*core.PreparedRecord, self bool, sigTime time.Duration, emit func(Pair) bool) (Stats, error) {
	var stats Stats
	stats.SignatureTime = sigTime
	stats.AvgSignatureS = tgt.avgSig
	if self {
		stats.AvgSignatureT = tgt.avgSig
	} else if len(records) > 0 {
		total := 0
		for i := range sigs {
			total += sigs[i].Len()
		}
		stats.AvgSignatureT = float64(total) / float64(len(records))
	}

	start := time.Now()
	candidates, tally, err := tgt.candidates(ctx, sigs, opts.workers())
	stats.ProcessedPairs = tally.postings
	stats.BitsetTokens = tally.bitsetTokens
	stats.SliceTokens = tally.sliceTokens
	stats.Candidates = len(candidates)
	stats.FilterTime = time.Since(start)
	if err != nil {
		return stats, err
	}

	start = time.Now()
	var vt verifyTally
	results, err := collectStream(ctx, opts.workers(), func(ictx context.Context, out chan<- []Pair) error {
		return streamVerify(ictx, tgt.records, records, tgt.prepared, prep, candidates, calc, opts.Theta, opts.workers(), opts.NoVerifyMemo, out, &vt)
	}, emit)
	stats.VerifyTime = time.Since(start)
	stats.VerifiedCandidates = vt.verified
	stats.PrunedByBound = vt.pruned
	stats.MemoHits = vt.memoHits
	stats.Results = results
	return stats, err
}

// pairSeq adapts a streaming run function into an iter.Seq2: the run executes
// inside the consumer's range loop, forwarding pairs through yield; a
// consumer break stops the run (and its goroutines) before the range
// statement returns, and a cancellation surfaces as one final yielded error.
func pairSeq(ctx context.Context, run func(ctx context.Context, emit func(Pair) bool) error) iter.Seq2[Pair, error] {
	return func(yield func(Pair, error) bool) {
		stopped := false
		err := run(ctx, func(p Pair) bool {
			if !yield(p, nil) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil && !stopped {
			yield(Pair{}, err)
		}
	}
}

// JoinSeq is the streaming form of Join: it yields matching pairs in
// verification-completion order (sort by (S, T) for Join's order) as they are
// confirmed, instead of buffering the full result. The work — order
// construction, signatures, filtering, verification — runs inside the
// consumer's range loop; breaking out of the loop stops the pipeline and
// releases its goroutines, and a ctx cancellation or deadline surfaces as one
// final non-nil error.
func (j *Joiner) JoinSeq(ctx context.Context, s, t []strutil.Record, opts Options) iter.Seq2[Pair, error] {
	return pairSeq(ctx, func(ctx context.Context, emit func(Pair) bool) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		start := time.Now()
		ix := j.buildIndex(s, j.BuildOrder(s, t), opts, nil)
		return ix.probeStream(ctx, t, opts, time.Since(start), emit)
	})
}

// SelfJoinSeq is the streaming form of SelfJoin: each unordered pair (i < j)
// is yielded at most once, in completion order.
func (j *Joiner) SelfJoinSeq(ctx context.Context, s []strutil.Record, opts Options) iter.Seq2[Pair, error] {
	return pairSeq(ctx, func(ctx context.Context, emit func(Pair) bool) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		ix := j.BuildIndex(s, opts)
		_, err := runProbeStream(ctx, ix.calc, ix.opts, ix.target(true), ix.records, ix.sigs, ix.prepared, true, ix.BuildTime, emit)
		return err
	})
}

// ProbeSeq is the streaming form of Probe against the prebuilt index: matches
// are yielded in completion order as the parallel verify stage confirms them.
func (ix *Index) ProbeSeq(ctx context.Context, records []strutil.Record) iter.Seq2[Pair, error] {
	return pairSeq(ctx, func(ctx context.Context, emit func(Pair) bool) error {
		return ix.probeStream(ctx, records, ix.opts, 0, emit)
	})
}

// SelfJoinSeq is the streaming form of Index.SelfJoin.
func (ix *Index) SelfJoinSeq(ctx context.Context) iter.Seq2[Pair, error] {
	return pairSeq(ctx, func(ctx context.Context, emit func(Pair) bool) error {
		_, err := runProbeStream(ctx, ix.calc, ix.opts, ix.target(true), ix.records, ix.sigs, ix.prepared, true, ix.BuildTime, emit)
		return err
	})
}

// probeStream generates probe-side signatures and prepared records and runs
// the streaming pipeline; it is the streaming analogue of Index.probe and the
// shared body of ProbeSeq and the legacy batch Probe.
func (ix *Index) probeStream(ctx context.Context, records []strutil.Record, opts Options, extraSigTime time.Duration, emit func(Pair) bool) error {
	start := time.Now()
	sigs := ix.joiner.signatures(records, ix.sel, opts.Method, ix.tau)
	prep := prepareRecords(records, ix.calc)
	_, err := runProbeStream(ctx, ix.calc, opts, ix.target(false), records, sigs, prep, false, extraSigTime+time.Since(start), emit)
	return err
}
