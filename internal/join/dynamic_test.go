package join

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/strutil"
)

// rawCorpus is propertyCorpus as raw strings (the dynamic index's Insert
// takes strings, not records).
func rawCorpus(n int, rng *rand.Rand) []string {
	recs := propertyCorpus(n, rng)
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Raw
	}
	return out
}

// oracleOnLive computes the BruteForce join of the probe collection against
// the snapshot's live records, with Pair.S carrying stable IDs — directly
// comparable to View.Probe output.
func oracleOnLive(j *Joiner, v *View, probe []strutil.Record, theta float64) []Pair {
	return j.BruteForce(v.Live(), probe, theta, nil)
}

// TestDynamicIndexMutationMatchesBruteForce is the oracle property of the
// dynamic pipeline: after every batch of Insert/Remove mutations, Probe on
// a fresh snapshot must equal BruteForce over the snapshot's live catalog —
// same pairs (by stable ID), same similarities — across filter methods and
// thresholds, including states straddling rebuilds.
func TestDynamicIndexMutationMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ctx := propertyContexts()["full"]
	j := NewJoiner(ctx)
	probe := propertyCorpus(25, rng)
	for _, method := range []pebble.Method{pebble.UFilter, pebble.AUHeuristic, pebble.AUDP} {
		for _, theta := range []float64{0.7, 0.8, 0.9} {
			opts := Options{Theta: theta, Tau: 2, Method: method}
			// Aggressive thresholds so the mutation sequence crosses at
			// least one rebuild.
			dx := j.BuildDynamicIndex(propertyCorpus(30, rng), opts, DynamicOptions{
				RebuildFraction: 0.15, MaxSegments: 4,
			})
			live := map[int]bool{}
			for id := 0; id < 30; id++ {
				live[id] = true
			}
			check := func(step string) {
				t.Helper()
				v := dx.Snapshot()
				got, stats := v.Probe(probe)
				want := oracleOnLive(j, v, probe, theta)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v θ=%v %s: Probe %d pairs, oracle %d pairs", method, theta, step, len(got), len(want))
				}
				if stats.Results != len(got) {
					t.Fatalf("%v θ=%v %s: stats.Results = %d, want %d", method, theta, step, stats.Results, len(got))
				}
				if lv := v.Stats().Live; lv != len(live) {
					t.Fatalf("%v θ=%v %s: Live = %d, want %d", method, theta, step, lv, len(live))
				}
				// Single-record serving must agree with the batch probe:
				// ProbeRecord(q) is exactly the rows of Probe with T = q.
				for qi := 0; qi < 3; qi++ {
					var want []QueryMatch
					for _, p := range got {
						if p.T == probe[qi].ID {
							want = append(want, QueryMatch{Record: p.S, Similarity: p.Similarity})
						}
					}
					sort.Slice(want, func(a, b int) bool { return want[a].Record < want[b].Record })
					if qr := v.ProbeRecord(probe[qi].Tokens); !reflect.DeepEqual(qr, want) {
						t.Fatalf("%v θ=%v %s: ProbeRecord(%q) = %v, want %v",
							method, theta, step, probe[qi].Raw, qr, want)
					}
				}
			}
			check("initial")
			for round := 0; round < 4; round++ {
				ids := dx.Insert(rawCorpus(8, rng))
				for _, id := range ids {
					live[id] = true
				}
				removed := 0
				for id := range live {
					if removed >= 5 {
						break
					}
					if !dx.Remove(id) {
						t.Fatalf("Remove(%d) failed for live id", id)
					}
					if dx.Remove(id) {
						t.Fatalf("Remove(%d) succeeded twice", id)
					}
					delete(live, id)
					removed++
				}
				check("round")
			}
			if dx.Stats().Rebuilds == 0 {
				t.Fatalf("%v θ=%v: mutation sequence never triggered a rebuild", method, theta)
			}
		}
	}
}

// TestDynamicIndexQueryTopK pins QueryTopK against ProbeRecord: the top-k
// result must be the k highest-similarity entries of the full thresholded
// result, ordered by descending similarity with ascending-ID ties.
func TestDynamicIndexQueryTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	j := NewJoiner(propertyContexts()["full"])
	dx := j.BuildDynamicIndex(propertyCorpus(40, rng), Options{Theta: 0.7, Tau: 2, Method: pebble.AUDP}, DynamicOptions{})
	dx.Insert(rawCorpus(15, rng))
	for i := 0; i < 7; i++ {
		dx.Remove(3 * i)
	}
	v := dx.Snapshot()
	queries := rawCorpus(20, rng)
	for _, q := range queries {
		tokens := strutil.Tokenize(q)
		full := v.ProbeRecord(tokens)
		sort.Slice(full, func(a, b int) bool {
			if full[a].Similarity != full[b].Similarity {
				return full[a].Similarity > full[b].Similarity
			}
			return full[a].Record < full[b].Record
		})
		for _, k := range []int{0, 1, 3, len(full), len(full) + 5} {
			got := v.QueryTopK(tokens, k)
			want := full
			if k < len(full) {
				want = full[:k]
			}
			if k == 0 {
				want = nil
			}
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("QueryTopK(%q, %d) = %v, want %v", q, k, got, want)
			}
		}
	}
}

// TestDynamicIndexStableIDs checks that stable record IDs survive rebuilds
// and keep identifying the same raw strings.
func TestDynamicIndexStableIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	j := NewJoiner(propertyContexts()["synonyms"])
	dx := j.BuildDynamicIndex(propertyCorpus(10, rng), Options{Theta: 0.8, Tau: 1}, DynamicOptions{
		RebuildFraction: 0.05, MaxSegments: 1,
	})
	ids := dx.Insert([]string{"coffee shop latte helsinki", "apple cake bakery special"})
	for i := 0; i < 8; i++ {
		dx.Remove(i) // force tombstone-triggered rebuilds
	}
	if dx.Stats().Rebuilds == 0 {
		t.Fatal("expected at least one rebuild")
	}
	v := dx.Snapshot()
	rec, ok := v.Record(ids[0])
	if !ok || rec.Raw != "coffee shop latte helsinki" {
		t.Fatalf("Record(%d) = %+v, %v; want the first inserted string", ids[0], rec, ok)
	}
	if _, ok := v.Record(3); ok {
		t.Fatal("removed record still visible after rebuild")
	}
}

// TestDynamicIndexConcurrentServeMutate hammers snapshots with concurrent
// Query/QueryTopK/Probe traffic while writers insert and remove records and
// rebuilds fire underneath — the test exists to run under -race, and it
// finishes with an oracle check on the final state.
func TestDynamicIndexConcurrentServeMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	j := NewJoiner(propertyContexts()["full"])
	dx := j.BuildDynamicIndex(propertyCorpus(30, rng), Options{Theta: 0.75, Tau: 2, Method: pebble.AUDP}, DynamicOptions{
		RebuildFraction: 0.1, MaxSegments: 3,
	})
	queries := rawCorpus(30, rng)
	probe := propertyCorpus(10, rng)

	done := make(chan struct{})
	var readers, writers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				v := dx.Snapshot()
				tokens := strutil.Tokenize(queries[(i+r)%len(queries)])
				switch i % 3 {
				case 0:
					v.ProbeRecord(tokens)
				case 1:
					v.QueryTopK(tokens, 5)
				default:
					v.Probe(probe)
				}
				st := v.Stats()
				if st.Live != st.Records-st.Dead {
					t.Errorf("inconsistent snapshot stats: %+v", st)
					return
				}
			}
		}(r)
	}

	// Two writers: inserts and removes contend on the writer lock.
	insertedIDs := make(chan int, 4096)
	writers.Add(2)
	go func() {
		defer writers.Done()
		wrng := rand.New(rand.NewSource(29))
		for i := 0; i < 40; i++ {
			for _, id := range dx.Insert(rawCorpus(3, wrng)) {
				select {
				case insertedIDs <- id:
				default:
				}
			}
		}
	}()
	go func() {
		defer writers.Done()
		for i := 0; i < 60; i++ {
			select {
			case id := <-insertedIDs:
				dx.Remove(id)
			default:
				dx.Remove(i % 30)
			}
		}
	}()

	writers.Wait()
	close(done)
	readers.Wait()

	v := dx.Snapshot()
	got, _ := v.Probe(probe)
	want := oracleOnLive(j, v, probe, 0.75)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("final Probe %d pairs, oracle %d pairs", len(got), len(want))
	}
	if dx.Stats().Rebuilds == 0 {
		t.Fatal("expected rebuilds under mutation load")
	}
}

// TestProbeTallyStats pins the cumulative filter-phase counters: probes
// served by a dynamic index must accumulate ProbePostings and the
// bitmap/slice token split in Stats, growing monotonically across snapshots
// and summing over the shards of a sharded index.
func TestProbeTallyStats(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	j := NewJoiner(propertyContexts()["full"])
	opts := Options{Theta: 0.8, Tau: 2, Method: pebble.AUDP}
	corpus := propertyCorpus(200, rng)
	queries := propertyCorpus(20, rng)

	dx := j.BuildDynamicIndex(corpus, opts, DynamicOptions{})
	if st := dx.Stats(); st.ProbePostings != 0 || st.ProbeBitsetTokens != 0 || st.ProbeSliceTokens != 0 {
		t.Fatalf("fresh index has nonzero probe tallies: %+v", st)
	}
	v := dx.Snapshot()
	for _, q := range queries {
		v.ProbeRecord(q.Tokens)
	}
	st := v.Stats()
	if st.ProbePostings == 0 {
		t.Fatal("probes processed no postings")
	}
	if st.ProbeBitsetTokens+st.ProbeSliceTokens == 0 {
		t.Fatal("probes consulted no posting lists")
	}
	for _, q := range queries {
		v.QueryTopK(q.Tokens, 3)
	}
	// Counters are index-lifetime, read fresh through any snapshot.
	if st2 := v.Stats(); st2.ProbePostings <= st.ProbePostings {
		t.Fatalf("tallies did not grow: %d then %d", st.ProbePostings, st2.ProbePostings)
	}

	sx := j.BuildShardedIndex(corpus, 3, opts, DynamicOptions{})
	sv := sx.Snapshot()
	for _, q := range queries {
		sv.ProbeRecord(q.Tokens)
	}
	if sst := sx.Stats(); sst.ProbePostings == 0 || sst.ProbeBitsetTokens+sst.ProbeSliceTokens == 0 {
		t.Fatalf("sharded probe tallies missing: %+v", sst)
	}
}
