package join

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/strutil"
)

// This file pins the hybrid posting layout to the classic count filter:
// across every filter method, threshold and serving path (static probe,
// self-join, dynamic snapshots with tombstones and rebuilds, sharded
// fan-out) the candidate set produced with bitmap-backed dense lists must be
// bit-identical to the one produced with Options.ClassicFilter (slice-only
// postings), and the processed-postings tally (the paper's T_τ cost measure)
// must agree as well.

// propVocabulary mixes a skewed common vocabulary (dense posting lists that
// cross the hybrid cutoff) with per-record unique tokens (sparse lists that
// stay in slice form), so both accumulator paths run in every trial.
func propCorpus(n int, seed int64) []strutil.Record {
	rng := rand.New(rand.NewSource(seed))
	vocab := make([]string, 60)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("tok%02d", i)
	}
	raws := make([]string, n)
	for i := range raws {
		l := 3 + rng.Intn(4)
		toks := make([]string, 0, l+1)
		for k := 0; k < l; k++ {
			u := rng.Float64()
			toks = append(toks, vocab[int(u*u*float64(len(vocab)))])
		}
		if rng.Intn(4) == 0 {
			toks = append(toks, fmt.Sprintf("uniq%d_%d", seed, i))
		}
		raws[i] = strutil.JoinTokens(toks)
	}
	return strutil.NewCollection(raws)
}

// propConfigs enumerates the method × θ grid of the bit-identity contract.
// The U-Filter fixes τ at 1; the adaptive filters run with τ = 2 so the
// count filter actually accumulates overlaps.
func propConfigs() []Options {
	var out []Options
	for _, theta := range []float64{0.7, 0.8, 0.9} {
		out = append(out,
			Options{Theta: theta, Tau: 1, Method: pebble.UFilter},
			Options{Theta: theta, Tau: 2, Method: pebble.AUHeuristic},
			Options{Theta: theta, Tau: 2, Method: pebble.AUDP},
		)
	}
	return out
}

func classic(opts Options) Options {
	opts.ClassicFilter = true
	return opts
}

func pairKeySet(cands []pairKey) map[pairKey]bool {
	m := make(map[pairKey]bool, len(cands))
	for _, c := range cands {
		m[c] = true
	}
	return m
}

// diffPairs reports a compact description of the symmetric difference.
func diffPairs(hybrid, cls map[pairKey]bool) string {
	var onlyH, onlyC []pairKey
	for k := range hybrid {
		if !cls[k] {
			onlyH = append(onlyH, k)
		}
	}
	for k := range cls {
		if !hybrid[k] {
			onlyC = append(onlyC, k)
		}
	}
	return fmt.Sprintf("only-hybrid=%v only-classic=%v", onlyH, onlyC)
}

func TestHybridStaticCandidatesMatchClassic(t *testing.T) {
	j := NewJoiner(paperContext())
	recs := propCorpus(600, 11)
	probe := propCorpus(150, 22)
	ctx := context.Background()
	denseSeen := false
	for _, opts := range propConfigs() {
		name := fmt.Sprintf("%v/θ=%v", opts.Method, opts.Theta)
		hx := j.BuildIndex(recs, opts)
		cx := j.BuildIndex(recs, classic(opts))
		if hx.inv.DenseKeys() > 0 {
			denseSeen = true
		}
		if cx.inv.DenseKeys() != 0 {
			t.Fatalf("%s: classic index hybridized anyway (%d dense keys)", name, cx.inv.DenseKeys())
		}

		hsigs := j.signatures(probe, hx.sel, opts.Method, hx.tau)
		csigs := j.signatures(probe, cx.sel, opts.Method, cx.tau)
		hc, ht, err := hx.candidates(ctx, hsigs, false, 4)
		if err != nil {
			t.Fatalf("%s: hybrid candidates: %v", name, err)
		}
		cc, ct, err := cx.candidates(ctx, csigs, false, 4)
		if err != nil {
			t.Fatalf("%s: classic candidates: %v", name, err)
		}
		hset, cset := pairKeySet(hc), pairKeySet(cc)
		if len(hset) != len(cset) || diffPairs(hset, cset) != "only-hybrid=[] only-classic=[]" {
			t.Errorf("%s probe: candidate sets differ: %s", name, diffPairs(hset, cset))
		}
		if ht.postings != ct.postings {
			t.Errorf("%s probe: processed postings differ: hybrid=%d classic=%d", name, ht.postings, ct.postings)
		}
		if ht.bitsetTokens == 0 && hx.inv.DenseKeys() > 0 {
			t.Errorf("%s probe: hybrid index has %d dense keys but no bitset lookups", name, hx.inv.DenseKeys())
		}
		if ct.bitsetTokens != 0 {
			t.Errorf("%s probe: classic filter reported %d bitset lookups", name, ct.bitsetTokens)
		}

		// Self-join over the prebuilt signatures.
		hc, ht, err = hx.candidates(ctx, hx.sigs, true, 4)
		if err != nil {
			t.Fatalf("%s: hybrid self candidates: %v", name, err)
		}
		cc, ct, err = cx.candidates(ctx, cx.sigs, true, 4)
		if err != nil {
			t.Fatalf("%s: classic self candidates: %v", name, err)
		}
		hset, cset = pairKeySet(hc), pairKeySet(cc)
		if diffPairs(hset, cset) != "only-hybrid=[] only-classic=[]" {
			t.Errorf("%s self: candidate sets differ: %s", name, diffPairs(hset, cset))
		}
		if ht.postings != ct.postings {
			t.Errorf("%s self: processed postings differ: hybrid=%d classic=%d", name, ht.postings, ct.postings)
		}
	}
	if !denseSeen {
		t.Fatal("no configuration produced a hybridized index; the property test is vacuous")
	}
}

// mutate applies the same insert/remove script to a dynamic index: three
// insert batches (fresh tokens land in the dynamic order region), one
// scripted remove wave (tombstones), returning the removed IDs.
func mutate(ix interface {
	Insert([]string) []int
	Remove(int) bool
}, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	var inserted []int
	for b := 0; b < 3; b++ {
		batch := make([]string, 40)
		for i := range batch {
			extra := fmt.Sprintf("dyn%d_%d_%d", seed, b, rng.Intn(25))
			batch[i] = fmt.Sprintf("tok%02d tok%02d %s", rng.Intn(60), rng.Intn(60), extra)
		}
		inserted = append(inserted, ix.Insert(batch)...)
	}
	var removed []int
	for i := 0; i < 50; i++ {
		id := rng.Intn(600 + len(inserted))
		if ix.Remove(id) {
			removed = append(removed, id)
		}
	}
	return removed
}

func TestHybridDynamicCandidatesMatchClassic(t *testing.T) {
	j := NewJoiner(paperContext())
	recs := propCorpus(600, 33)
	probe := propCorpus(120, 44)
	ctx := context.Background()
	// MaxSegments 2 forces rebuilds during the 3-batch insert script, so the
	// comparison covers post-rebuild snapshots, not just delta chains.
	for _, dopts := range []DynamicOptions{{}, {MaxSegments: 2}} {
		for _, opts := range propConfigs() {
			name := fmt.Sprintf("%v/θ=%v/maxseg=%d", opts.Method, opts.Theta, dopts.MaxSegments)
			hd := j.BuildDynamicIndex(recs, opts, dopts)
			cd := j.BuildDynamicIndex(recs, classic(opts), dopts)
			mutate(hd, 55)
			mutate(cd, 55)
			hs, cs := hd.Stats(), cd.Stats()
			if hs.Dead == 0 || hs.Dead != cs.Dead || hs.Records != cs.Records {
				t.Fatalf("%s: mutation scripts diverged: hybrid=%+v classic=%+v", name, hs, cs)
			}
			if dopts.MaxSegments == 2 && hs.Rebuilds == 0 {
				t.Fatalf("%s: expected forced rebuilds, got none", name)
			}

			hv, cv := hd.Snapshot(), cd.Snapshot()
			hsigs := j.signatures(probe, hv.base.sel, opts.Method, hd.tau)
			csigs := j.signatures(probe, cv.base.sel, opts.Method, cd.tau)
			hc, ht, err := hv.candidates(ctx, hsigs, hd.tau, 4)
			if err != nil {
				t.Fatalf("%s: hybrid candidates: %v", name, err)
			}
			cc, ct, err := cv.candidates(ctx, csigs, cd.tau, 4)
			if err != nil {
				t.Fatalf("%s: classic candidates: %v", name, err)
			}
			hset, cset := pairKeySet(hc), pairKeySet(cc)
			if diffPairs(hset, cset) != "only-hybrid=[] only-classic=[]" {
				t.Errorf("%s: candidate sets differ: %s", name, diffPairs(hset, cset))
			}
			if ht.postings != ct.postings {
				t.Errorf("%s: processed postings differ: hybrid=%d classic=%d", name, ht.postings, ct.postings)
			}
		}
	}
}

func TestHybridShardedCandidatesMatchClassic(t *testing.T) {
	j := NewJoiner(paperContext())
	recs := propCorpus(600, 66)
	probe := propCorpus(120, 77)
	ctx := context.Background()
	for _, opts := range propConfigs() {
		name := fmt.Sprintf("%v/θ=%v", opts.Method, opts.Theta)
		hx := j.BuildShardedIndex(recs, 3, opts, DynamicOptions{})
		cx := j.BuildShardedIndex(recs, 3, classic(opts), DynamicOptions{})
		mutate(hx, 88)
		mutate(cx, 88)

		hv, cv := hx.Snapshot(), cx.Snapshot()
		htgt, _ := hv.probeTarget(hx.tau)
		ctgt, _ := cv.probeTarget(cx.tau)
		hsigs := j.signatures(probe, hv.gen.sel, opts.Method, hx.tau)
		csigs := j.signatures(probe, cv.gen.sel, opts.Method, cx.tau)
		hc, ht, err := htgt.candidates(ctx, hsigs, 4)
		if err != nil {
			t.Fatalf("%s: hybrid candidates: %v", name, err)
		}
		cc, ct, err := ctgt.candidates(ctx, csigs, 4)
		if err != nil {
			t.Fatalf("%s: classic candidates: %v", name, err)
		}
		hset, cset := pairKeySet(hc), pairKeySet(cc)
		if diffPairs(hset, cset) != "only-hybrid=[] only-classic=[]" {
			t.Errorf("%s: candidate sets differ: %s", name, diffPairs(hset, cset))
		}
		if ht.postings != ct.postings {
			t.Errorf("%s: processed postings differ: hybrid=%d classic=%d", name, ht.postings, ct.postings)
		}

		// End-to-end sharded probes must agree too (positions remapped
		// through two different flattened catalogs collapse to the same
		// stable IDs).
		hp, hstats := hv.Probe(probe)
		cp, cstats := cv.Probe(probe)
		if len(hp) != len(cp) || hstats.Candidates != cstats.Candidates {
			t.Errorf("%s: probe results differ: hybrid %d pairs/%d cands, classic %d pairs/%d cands",
				name, len(hp), hstats.Candidates, len(cp), cstats.Candidates)
		}
	}
}
