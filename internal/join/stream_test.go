package join

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/strutil"
)

// collectSeq drains a pair stream, returning the pairs in emission order and
// the first error the stream yielded.
func collectSeq(t *testing.T, seq func(func(Pair, error) bool)) ([]Pair, error) {
	t.Helper()
	var out []Pair
	for p, err := range seq {
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
	return out, nil
}

// sortPairs orders pairs by (S, T), the batch API's result order.
func sortPairs(pairs []Pair) {
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].S != pairs[b].S {
			return pairs[a].S < pairs[b].S
		}
		return pairs[a].T < pairs[b].T
	})
}

// checkGoroutines waits for every pipeline-tagged goroutine (parallel
// workers, stream producers) to exit, failing with a full stack dump when
// they do not — the streaming pipeline must not leak workers however the
// consumer leaves. It deliberately does not look at runtime.NumGoroutine():
// that counts runtime housekeeping and other tests' goroutines, so asserting
// the total settles back to a before-value raced with unrelated activity.
func checkGoroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := pipelineGoroutines.Load()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d pipeline goroutines still live\n%s",
				n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSeqMatchesBatch pins the streaming contract: collecting a Seq and
// sorting by (S, T) reproduces the batch result exactly — same pairs, same
// similarities — across all three filter methods and θ ∈ {0.7, 0.8, 0.9},
// for R×S joins, self-joins and index probes.
func TestSeqMatchesBatch(t *testing.T) {
	ctx := propertyContexts()["full"]
	rng := rand.New(rand.NewSource(77))
	s := propertyCorpus(40, rng)
	u := propertyCorpus(35, rng)
	for _, method := range []pebble.Method{pebble.UFilter, pebble.AUHeuristic, pebble.AUDP} {
		for _, theta := range []float64{0.7, 0.8, 0.9} {
			j := NewJoiner(ctx)
			opts := Options{Theta: theta, Tau: 2, Method: method}

			want, _ := j.Join(s, u, opts)
			got, err := collectSeq(t, j.JoinSeq(context.Background(), s, u, opts))
			if err != nil {
				t.Fatalf("%v θ=%v: JoinSeq error: %v", method, theta, err)
			}
			sortPairs(got)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v θ=%v: JoinSeq %v != Join %v", method, theta, got, want)
			}

			wantSelf, _ := j.SelfJoin(s, opts)
			gotSelf, err := collectSeq(t, j.SelfJoinSeq(context.Background(), s, opts))
			if err != nil {
				t.Fatalf("%v θ=%v: SelfJoinSeq error: %v", method, theta, err)
			}
			sortPairs(gotSelf)
			if !reflect.DeepEqual(gotSelf, wantSelf) {
				t.Errorf("%v θ=%v: SelfJoinSeq %v != SelfJoin %v", method, theta, gotSelf, wantSelf)
			}

			ix := j.BuildIndex(s, opts)
			wantProbe, _ := ix.Probe(u)
			gotProbe, err := collectSeq(t, ix.ProbeSeq(context.Background(), u))
			if err != nil {
				t.Fatalf("%v θ=%v: ProbeSeq error: %v", method, theta, err)
			}
			sortPairs(gotProbe)
			if !reflect.DeepEqual(gotProbe, wantProbe) {
				t.Errorf("%v θ=%v: ProbeSeq %v != Probe %v", method, theta, gotProbe, wantProbe)
			}

			wantIxSelf, _ := ix.SelfJoin()
			gotIxSelf, err := collectSeq(t, ix.SelfJoinSeq(context.Background()))
			if err != nil {
				t.Fatalf("%v θ=%v: Index.SelfJoinSeq error: %v", method, theta, err)
			}
			sortPairs(gotIxSelf)
			if !reflect.DeepEqual(gotIxSelf, wantIxSelf) {
				t.Errorf("%v θ=%v: Index.SelfJoinSeq differs from Index.SelfJoin", method, theta)
			}
		}
	}
}

// TestShardedProbeSeqMatchesProbe extends the shard-count invariance to the
// streaming path: ShardedView.ProbeSeq collected and sorted must equal the
// batch Probe for every shard count, including after mutations.
func TestShardedProbeSeqMatchesProbe(t *testing.T) {
	ctx := propertyContexts()["full"]
	rng := rand.New(rand.NewSource(99))
	corpus := propertyCorpus(30, rng)
	probe := propertyCorpus(20, rng)
	for _, shards := range shardCounts {
		j := NewJoiner(ctx)
		opts := Options{Theta: 0.75, Tau: 2, Method: pebble.AUDP}
		sx := j.BuildShardedIndex(corpus, shards, opts, DynamicOptions{})
		sx.InsertBatch(rawCorpus(8, rng))
		sx.Remove(3)
		sv := sx.Snapshot()
		want, wantStats := sv.Probe(probe)
		got, err := collectSeq(t, sv.ProbeSeq(context.Background(), probe))
		if err != nil {
			t.Fatalf("shards=%d: ProbeSeq error: %v", shards, err)
		}
		sortPairs(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: ProbeSeq %v != Probe %v", shards, got, want)
		}
		if shards >= 2 {
			if len(wantStats.ShardCandidates) != shards {
				t.Fatalf("shards=%d: ShardCandidates has %d entries", shards, len(wantStats.ShardCandidates))
			}
			sum := 0
			for _, c := range wantStats.ShardCandidates {
				sum += c
			}
			if sum != wantStats.Candidates {
				t.Errorf("shards=%d: ShardCandidates sum %d != Candidates %d",
					shards, sum, wantStats.Candidates)
			}
		} else if wantStats.ShardCandidates != nil {
			t.Errorf("shards=1: ShardCandidates should be nil, got %v", wantStats.ShardCandidates)
		}
	}
}

// denseCorpus builds n records in a few near-duplicate families (five shared
// tokens plus one variable token), so an R×S join at moderate θ produces on
// the order of (n/families)²·families matches — the result-heavy workload
// the streaming path exists for.
func denseCorpus(n, families int, seed int64) []strutil.Record {
	rng := rand.New(rand.NewSource(seed))
	templates := [][]string{
		{"espresso", "cafe", "helsinki", "city", "center"},
		{"apple", "cake", "bakery", "market", "street"},
		{"database", "systems", "course", "spring", "term"},
		{"machine", "learning", "lab", "open", "day"},
	}
	tail := []string{"north", "south", "east", "west", "old", "new"}
	raws := make([]string, n)
	for i := range raws {
		toks := append([]string(nil), templates[i%families]...)
		toks = append(toks, tail[rng.Intn(len(tail))])
		raws[i] = strutil.JoinTokens(toks)
	}
	return strutil.NewCollection(raws)
}

// TestJoinSeqCancellation pins the cancellation contract on a long join:
// cancelling after the first yielded match returns promptly (well under the
// full-join wall time), surfaces the context error exactly once, and leaks
// no goroutines.
func TestJoinSeqCancellation(t *testing.T) {
	j := NewJoiner(paperContext())
	s := denseCorpus(220, 3, 1)
	u := denseCorpus(220, 3, 2)
	opts := Options{Theta: 0.7, Tau: 2, Method: pebble.AUDP}

	start := time.Now()
	full, err := collectSeq(t, j.JoinSeq(context.Background(), s, u, opts))
	if err != nil {
		t.Fatalf("full JoinSeq error: %v", err)
	}
	fullTime := time.Since(start)
	if len(full) < 10000 {
		t.Fatalf("workload too small to time cancellation: %d results", len(full))
	}
	checkGoroutines(t)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start = time.Now()
	seen := 0
	var seqErr error
	for _, err := range j.JoinSeq(ctx, s, u, opts) {
		if err != nil {
			seqErr = err
			break
		}
		seen++
		cancel()
	}
	cancelTime := time.Since(start)
	if seqErr == nil {
		t.Fatal("cancelled JoinSeq yielded no error")
	}
	if seqErr != context.Canceled {
		t.Fatalf("cancelled JoinSeq error = %v, want context.Canceled", seqErr)
	}
	if seen >= len(full) {
		t.Fatalf("cancellation delivered all %d results", seen)
	}
	if cancelTime >= fullTime {
		t.Errorf("cancelled join took %v, full join %v — cancellation did not stop work early",
			cancelTime, fullTime)
	}
	checkGoroutines(t)
}

// TestSeqConsumerBreak pins the early-exit contract: breaking out of the
// range loop mid-stream is not an error, stops the pipeline, and leaks no
// goroutines.
func TestSeqConsumerBreak(t *testing.T) {
	ctx := propertyContexts()["full"]
	rng := rand.New(rand.NewSource(5))
	j := NewJoiner(ctx)
	s := propertyCorpus(40, rng)
	u := propertyCorpus(40, rng)
	opts := Options{Theta: 0.7, Tau: 1, Method: pebble.AUDP}
	full, _ := j.Join(s, u, opts)
	if len(full) < 4 {
		t.Fatalf("corpus yields only %d matches; break test needs a few", len(full))
	}
	seen := 0
	for _, err := range j.JoinSeq(context.Background(), s, u, opts) {
		if err != nil {
			t.Fatalf("unexpected error before break: %v", err)
		}
		seen++
		if seen == 2 {
			break
		}
	}
	if seen != 2 {
		t.Fatalf("consumer break saw %d pairs, want 2", seen)
	}
	checkGoroutines(t)
}

// TestProbeSeqCancellation covers the snapshot streaming path: a cancelled
// context aborts a View.ProbeSeq mid-verify with the context error and no
// goroutine leak.
func TestProbeSeqCancellation(t *testing.T) {
	j := NewJoiner(paperContext())
	catalog := denseCorpus(200, 3, 3)
	probe := denseCorpus(200, 3, 4)
	sx := j.BuildShardedIndex(catalog, 2, Options{Theta: 0.7, Tau: 2, Method: pebble.AUDP}, DynamicOptions{})
	sv := sx.Snapshot()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	var seqErr error
	for _, err := range sv.ProbeSeq(ctx, probe) {
		if err != nil {
			seqErr = err
			break
		}
		seen++
		cancel()
	}
	if seqErr != context.Canceled {
		t.Fatalf("ProbeSeq error = %v, want context.Canceled", seqErr)
	}
	full, _ := sv.Probe(probe)
	if seen >= len(full) {
		t.Fatalf("cancellation delivered all %d results", seen)
	}
	checkGoroutines(t)
}

// TestQueryCtxParityAndOverrides pins the context-aware single-record paths
// against their batch counterparts and checks the per-request overrides:
// the zero QueryOpts reproduces ProbeRecord/QueryTopK exactly (sharded and
// not), a raised threshold drops exactly the matches below it, and a
// parallel-verification request returns the same matches as a sequential
// one.
func TestQueryCtxParityAndOverrides(t *testing.T) {
	ctx := propertyContexts()["full"]
	rng := rand.New(rand.NewSource(13))
	corpus := propertyCorpus(40, rng)
	queries := propertyCorpus(15, rng)
	bg := context.Background()
	for _, shards := range shardCounts {
		j := NewJoiner(ctx)
		sx := j.BuildShardedIndex(corpus, shards, Options{Theta: 0.7, Tau: 2, Method: pebble.AUDP}, DynamicOptions{})
		sv := sx.Snapshot()
		for _, q := range queries {
			want := sv.ProbeRecord(q.Tokens)
			got, err := sv.ProbeRecordCtx(bg, q.Tokens, QueryOpts{})
			if err != nil || !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d: ProbeRecordCtx = %v (%v), want %v", shards, got, err, want)
			}
			gotPar, err := sv.ProbeRecordCtx(bg, q.Tokens, QueryOpts{Workers: 4})
			if err != nil || !reflect.DeepEqual(gotPar, want) {
				t.Fatalf("shards=%d: parallel ProbeRecordCtx = %v (%v), want %v", shards, gotPar, err, want)
			}

			wantTop := sv.QueryTopK(q.Tokens, 5)
			gotTop, err := sv.QueryTopKCtx(bg, q.Tokens, 5, QueryOpts{})
			if err != nil || !reflect.DeepEqual(gotTop, wantTop) {
				t.Fatalf("shards=%d: QueryTopKCtx = %v (%v), want %v", shards, gotTop, err, wantTop)
			}

			strict, err := sv.ProbeRecordCtx(bg, q.Tokens, QueryOpts{Theta: 0.9})
			if err != nil {
				t.Fatalf("shards=%d: raised-θ query error: %v", shards, err)
			}
			var wantStrict []QueryMatch
			for _, m := range want {
				if m.Similarity >= 0.9 {
					wantStrict = append(wantStrict, m)
				}
			}
			if !reflect.DeepEqual(strict, wantStrict) {
				t.Fatalf("shards=%d: θ=0.9 override = %v, want %v", shards, strict, wantStrict)
			}
		}

		// A cancelled context aborts the fan-out with its error.
		cancelled, cancel := context.WithCancel(bg)
		cancel()
		if _, err := sv.ProbeRecordCtx(cancelled, queries[0].Tokens, QueryOpts{}); err != context.Canceled {
			t.Errorf("shards=%d: cancelled ProbeRecordCtx error = %v", shards, err)
		}
		if _, err := sv.QueryTopKCtx(cancelled, queries[0].Tokens, 3, QueryOpts{}); err != context.Canceled {
			t.Errorf("shards=%d: cancelled QueryTopKCtx error = %v", shards, err)
		}
	}
}

// TestEmptyQueryReturnsEarly is the regression test for the zero-signature
// probe: empty (or all-whitespace, i.e. zero-token) queries must return an
// empty result on every query path instead of running the pipeline with an
// empty signature.
func TestEmptyQueryReturnsEarly(t *testing.T) {
	ctx := propertyContexts()["full"]
	rng := rand.New(rand.NewSource(21))
	corpus := propertyCorpus(25, rng)
	j := NewJoiner(ctx)
	ix := j.BuildIndex(corpus, Options{Theta: 0.7, Tau: 1, Method: pebble.AUDP})
	if got := ix.ProbeRecord(nil); got != nil {
		t.Errorf("Index.ProbeRecord(nil) = %v, want nil", got)
	}
	if got := ix.ProbeRecord(strutil.Tokenize("   ")); got != nil {
		t.Errorf("Index.ProbeRecord(whitespace) = %v, want nil", got)
	}
	for _, shards := range shardCounts {
		sx := j.BuildShardedIndex(corpus, shards, Options{Theta: 0.7, Tau: 1, Method: pebble.AUDP}, DynamicOptions{})
		sv := sx.Snapshot()
		if got := sv.ProbeRecord(nil); got != nil {
			t.Errorf("shards=%d: ProbeRecord(nil) = %v, want nil", shards, got)
		}
		if got := sv.QueryTopK(strutil.Tokenize(""), 5); got != nil {
			t.Errorf("shards=%d: QueryTopK(empty) = %v, want nil", shards, got)
		}
		if got, err := sv.ProbeRecordCtx(context.Background(), nil, QueryOpts{}); err != nil || got != nil {
			t.Errorf("shards=%d: ProbeRecordCtx(nil) = %v, %v", shards, got, err)
		}
		if got, err := sv.QueryTopKCtx(context.Background(), nil, 5, QueryOpts{}); err != nil || got != nil {
			t.Errorf("shards=%d: QueryTopKCtx(nil) = %v, %v", shards, got, err)
		}
	}
}

// TestBruteForceCtxCancelled pins the oracle's cancellation behaviour: a
// cancelled context yields no partial result.
func TestBruteForceCtxCancelled(t *testing.T) {
	ctx := propertyContexts()["plain"]
	rng := rand.New(rand.NewSource(8))
	j := NewJoiner(ctx)
	s := propertyCorpus(20, rng)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := j.BruteForceCtx(cancelled, s, s, 0.7, nil)
	if err != context.Canceled || out != nil {
		t.Fatalf("BruteForceCtx cancelled = %v, %v; want nil, context.Canceled", out, err)
	}
	full, err := j.BruteForceCtx(context.Background(), s, s, 0.7, nil)
	if err != nil {
		t.Fatalf("BruteForceCtx background error: %v", err)
	}
	if !reflect.DeepEqual(full, j.BruteForce(s, s, 0.7, nil)) {
		t.Fatal("BruteForceCtx(Background) differs from BruteForce")
	}
}

// TestProbeSeqAllocsBelowBatch enforces the memory contract of the streaming
// path: consuming ProbeSeq without retaining matches must allocate strictly
// less than the batch Probe on a result-heavy workload (the batch path pays
// for the O(results) buffer and its sort; the stream does not).
func TestProbeSeqAllocsBelowBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("result-heavy workload; skipped with -short")
	}
	j := NewJoiner(paperContext())
	catalog := denseCorpus(600, 3, 5)
	probe := denseCorpus(600, 3, 6)
	opts := Options{Theta: 0.7, Tau: 2, Method: pebble.AUDP, Workers: 4}
	ix := j.buildIndex(catalog, j.BuildOrder(catalog, probe), opts, nil)

	results, _ := ix.Probe(probe)
	if len(results) < 100000 {
		t.Fatalf("workload yields %d results, want ≥ 100000", len(results))
	}

	batchAllocs := testing.AllocsPerRun(1, func() {
		ix.Probe(probe)
	})
	streamAllocs := testing.AllocsPerRun(1, func() {
		count := 0
		for _, err := range ix.ProbeSeq(context.Background(), probe) {
			if err != nil {
				t.Errorf("ProbeSeq error: %v", err)
				return
			}
			count++
		}
		if count != len(results) {
			t.Errorf("ProbeSeq yielded %d matches, want %d", count, len(results))
		}
	})
	t.Logf("allocs: stream=%.0f batch=%.0f (%d results)", streamAllocs, batchAllocs, len(results))
	if streamAllocs >= batchAllocs {
		t.Errorf("streaming allocations (%.0f) not below batch (%.0f)", streamAllocs, batchAllocs)
	}
}
