package join

import (
	"context"
	"iter"
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aujoin/aujoin/internal/core"
	"github.com/aujoin/aujoin/internal/invindex"
	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/planner"
	"github.com/aujoin/aujoin/internal/strutil"
)

// PlanMode selects between adaptive per-query planning (Auto, the zero
// value) and the fixed build-time configuration (Fixed). It appears both on
// Options (index-wide default; Fixed disables the planner entirely) and on
// QueryOpts (per-request override).
type PlanMode = planner.Mode

const (
	// PlanAuto plans each request adaptively (the default).
	PlanAuto = planner.Auto
	// PlanFixed pins the build-time filter method and τ.
	PlanFixed = planner.Fixed
)

// DynamicIndex is the mutable, concurrently servable form of Index: a
// frozen base index plus a chain of small immutable delta segments for
// records inserted since the last rebuild, a tombstone bitmap for removed
// records, and the append-only dynamic region of the pebble order for
// signature keys first seen after the base was finalized.
//
// Writers (Insert, Remove) serialize on an internal mutex, mutate
// writer-owned state, and publish a fresh immutable View via an atomic
// pointer swap — copy-on-write at the granularity of slice headers and the
// tombstone bitmap. Readers call Snapshot (or the convenience wrappers) and
// run entirely against that View: no locks, no retries, and a consistent
// picture of the catalog no matter how many mutations land mid-query.
//
// Correctness under mutation rests on two invariants:
//
//  1. The pebble order is append-only (pebble.Order.InternDynamic), so the
//     relative position of any two interned keys never changes and every
//     signature ever selected remains a valid prefix under every later
//     order state. Signatures of base records and of each segment therefore
//     stay comparable with signatures of new probes.
//  2. Published Views are never mutated: records/prepared/segment slices
//     only ever grow past the published length, and the tombstone bitmap is
//     cloned before a bit is set. A View observes removals only if they
//     were published before the View was taken.
//
// Frequency order (the filter's selectivity heuristic) degrades as the
// dynamic region and tombstones accumulate, so once either exceeds
// RebuildFraction of the base — or the segment chain grows past
// MaxSegments — the writer re-finalizes: live records are compacted into a
// fresh base index under a newly frozen order (reusing their prepared
// verification records), and the segment chain resets to empty.
type DynamicIndex struct {
	joiner *Joiner
	opts   Options
	tau    int
	calc   *core.Calculator
	cache  *core.PreparedCache

	// planner is the adaptive per-query cost model (nil when Options.Plan is
	// PlanFixed). Shards of a ShardedIndex share the router's planner — the
	// corpus statistics and feedback are global.
	planner *planner.Planner

	// sharedOrder marks a shard of a ShardedIndex: the pebble order is owned
	// by the router and shared with the sibling shards, so rebuilds compact
	// this shard under the *same* order (append-only forever) instead of
	// re-freezing a private one — re-freezing would re-assign IDs other
	// shards' signatures still reference.
	sharedOrder bool

	rebuildFraction float64
	maxSegments     int

	mu  sync.Mutex // serializes writers; never held by readers
	cur atomic.Pointer[View]

	// Writer-owned state. records, prepared and segs are append-only while
	// a base is live (published Views hold shorter headers); dead is cloned
	// before every bit set. All of it is replaced wholesale on rebuild.
	base      *Index
	segs      []*segment
	records   []strutil.Record
	prepared  []*core.PreparedRecord
	dead      []uint64
	deadCount int
	positions map[int]int // stable record ID -> position
	nextID    int
	rebuilds  int
	inserts   int
	// sigLens holds each position's signature length and sigLenLive the
	// total over live positions, so snapshots report the true mean
	// indexed-side signature length even between rebuilds.
	sigLens    []int
	sigLenLive int
	// dynAtBuild is the order's dynamic-region size when the current base
	// was adopted, and dynAdded counts the keys *this* index appended since
	// then. The rebuild trigger fires on dynAdded: in shared-order mode the
	// region grows from all shards and never resets, so neither its absolute
	// size nor its growth is attributable to one shard — only the shard's
	// own interning is (for a standalone index the two coincide).
	dynAtBuild int
	dynAdded   int
	// pauses records the wall-clock duration of every rebuild, i.e. how long
	// this shard's writers stalled; readers never pause. The serve benchmark
	// reports their percentiles.
	pauses []time.Duration
	// gen is the router's order generation this shard's base was built
	// under (0 for a standalone index, which never changes generation). A
	// ShardedIndex global re-finalize bumps it on every shard while holding
	// every writer lock, and snapshots use it to detect mixed-generation
	// view sets.
	gen int

	// Cumulative filter-phase work over every probe served against this
	// index's views (single-record, top-k and batch alike), surfaced
	// through DynamicStats so a serving process can watch the
	// bitmap-versus-slice mix live. Atomics: probes run concurrently with
	// each other and with writers.
	probePostings     atomic.Int64
	probeBitsetTokens atomic.Int64
	probeSliceTokens  atomic.Int64

	// Cumulative verify-phase work, the same way: candidates whose msim
	// matrix was computed, candidates rejected by the sound upper bounds
	// (size-ratio bound or the rising top-k floor), and msim memo hits.
	verifyVerified atomic.Int64
	verifyPruned   atomic.Int64
	verifyMemoHits atomic.Int64

	pool sync.Pool // *probeScratch shared across Views and generations
}

// noteProbe folds one probe's filter tally into the cumulative counters.
func (dx *DynamicIndex) noteProbe(t filterTally) {
	dx.probePostings.Add(t.postings)
	dx.probeBitsetTokens.Add(t.bitsetTokens)
	dx.probeSliceTokens.Add(t.sliceTokens)
}

// noteVerify folds one operation's verify tally into the cumulative counters.
func (dx *DynamicIndex) noteVerify(t verifyTally) {
	dx.verifyVerified.Add(t.verified)
	dx.verifyPruned.Add(t.pruned)
	dx.verifyMemoHits.Add(t.memoHits)
}

// segment is one immutable batch of inserted records: a sparse inverted
// index over their signatures, keyed by global record positions.
type segment struct {
	inv *invindex.Delta
}

// DynamicOptions tunes the mutation behaviour of a DynamicIndex on top of
// the join Options fixed at build time.
type DynamicOptions struct {
	// RebuildFraction triggers a re-finalize/rebuild when the dynamically
	// appended pebble keys exceed this fraction of the frozen order, or
	// tombstoned records this fraction of the catalog. 0 selects the
	// default 0.25; negative disables size-triggered rebuilds.
	RebuildFraction float64
	// MaxSegments caps the delta-segment chain length (every Insert call
	// appends one segment); crossing it triggers a rebuild. 0 selects the
	// default 64.
	MaxSegments int
	// CacheSize bounds the prepared-record cache consulted on Insert
	// (core.PreparedCache). 0 selects core.DefaultPreparedCacheSize;
	// negative disables the cache.
	CacheSize int
}

const (
	defaultRebuildFraction = 0.25
	defaultMaxSegments     = 64
)

// BuildDynamicIndex builds a mutable, concurrently servable index over the
// records. The join Options (θ, τ, filter method) are fixed for the life of
// the index, exactly as for BuildIndex.
func (j *Joiner) BuildDynamicIndex(records []strutil.Record, opts Options, dopts DynamicOptions) *DynamicIndex {
	return j.buildDynamic(records, nil, opts, dopts, nil, nil)
}

// buildDynamic is the shared constructor of standalone dynamic indexes and
// ShardedIndex shards. A non-nil order puts the index in shared-order mode
// (the base is built under it and rebuilds keep it); a non-nil cache
// overrides DynamicOptions.CacheSize (the router shares one cache across all
// shards so delete/re-insert churn hits regardless of which shard the
// record lands on after compaction); a non-nil pl installs the router's
// shared planner (a standalone index creates its own unless Options.Plan is
// PlanFixed).
func (j *Joiner) buildDynamic(records []strutil.Record, order *pebble.Order, opts Options, dopts DynamicOptions, cache *core.PreparedCache, pl *planner.Planner) *DynamicIndex {
	dx := &DynamicIndex{
		joiner:          j,
		opts:            opts,
		tau:             opts.tau(),
		planner:         pl,
		rebuildFraction: dopts.RebuildFraction,
		maxSegments:     dopts.MaxSegments,
	}
	if dx.planner == nil && opts.Plan != PlanFixed && order == nil {
		dx.planner = planner.New(opts.Method, dx.tau)
	}
	if dx.rebuildFraction == 0 {
		dx.rebuildFraction = defaultRebuildFraction
	}
	if dx.maxSegments <= 0 {
		dx.maxSegments = defaultMaxSegments
	}
	switch {
	case cache != nil:
		dx.cache = cache
	case dopts.CacheSize >= 0:
		dx.cache = core.NewPreparedCache(dopts.CacheSize)
	}
	var base *Index
	if order != nil {
		dx.sharedOrder = true
		base = j.buildIndex(records, order, opts, nil)
	} else {
		base = j.BuildIndex(records, opts)
	}
	dx.calc = base.calc
	dx.adoptBaseLocked(base)
	dx.publishLocked()
	return dx
}

// adoptBaseLocked installs a freshly built base index as the writer state.
func (dx *DynamicIndex) adoptBaseLocked(base *Index) {
	dx.base = base
	dx.segs = nil
	dx.records = base.records
	dx.prepared = base.prepared
	dx.dead = make([]uint64, (len(base.records)+63)/64)
	dx.deadCount = 0
	dx.positions = make(map[int]int, len(base.records))
	for pos, rec := range base.records {
		dx.positions[rec.ID] = pos
		if rec.ID >= dx.nextID {
			dx.nextID = rec.ID + 1
		}
	}
	dx.sigLens = make([]int, base.sigCount())
	dx.sigLenLive = 0
	for i := range dx.sigLens {
		dx.sigLens[i] = base.sigLenAt(i)
		dx.sigLenLive += dx.sigLens[i]
	}
	dx.dynAtBuild = base.order.DynamicCount()
	dx.dynAdded = 0
}

// publishLocked snapshots the writer state into a fresh immutable View and
// swaps it in for readers.
func (dx *DynamicIndex) publishLocked() {
	frozen := dx.base.order.FrozenKeys()
	v := &View{
		dx:       dx,
		base:     dx.base,
		segs:     dx.segs,
		records:  dx.records,
		prepared: dx.prepared,
		dead:     dx.dead,
		gen:      dx.gen,
		stats: DynamicStats{
			Records:     len(dx.records),
			Live:        len(dx.records) - dx.deadCount,
			Dead:        dx.deadCount,
			Segments:    len(dx.segs),
			Shards:      1,
			FrozenKeys:  frozen,
			DynamicKeys: dx.base.order.DynamicCount(),
			Rebuilds:    dx.rebuilds,
			Inserts:     dx.inserts,
			DenseKeys:   dx.base.inv.DenseKeys(),
			SparseKeys:  dx.base.inv.SparseKeys(),
			Theta:       dx.opts.Theta,
			Tau:         dx.tau,
			BuildTime:   dx.base.BuildTime,
		},
	}
	if dx.cache != nil {
		v.stats.CacheHits, v.stats.CacheMisses = dx.cache.Stats()
	}
	if live := len(dx.records) - dx.deadCount; live > 0 {
		v.avgSig = float64(dx.sigLenLive) / float64(live)
	}
	dx.cur.Store(v)
}

// Snapshot returns the current immutable View. The View stays fully
// consistent — and safe for any number of concurrent Query/QueryTopK/Probe
// calls — no matter what Insert/Remove/rebuild activity follows.
func (dx *DynamicIndex) Snapshot() *View { return dx.cur.Load() }

// Insert appends records to the catalog and returns their stable IDs. New
// signature keys are interned into the order's dynamic region, the batch's
// postings become one immutable delta segment, and a new View is published;
// a rebuild is triggered first when the mutation thresholds are crossed.
func (dx *DynamicIndex) Insert(raw []string) []int {
	if len(raw) == 0 {
		return nil
	}
	dx.mu.Lock()
	defer dx.mu.Unlock()
	recs := make([]strutil.Record, len(raw))
	for i, s := range raw {
		recs[i] = strutil.NewRecord(dx.nextID, s)
		dx.nextID++
	}
	return dx.insertRecordsLocked(recs)
}

// insertRecords is Insert for records whose stable IDs were assigned by the
// caller — the sharded router allocates IDs centrally so they stay unique
// across shards and hash-routable.
func (dx *DynamicIndex) insertRecords(recs []strutil.Record) []int {
	if len(recs) == 0 {
		return nil
	}
	dx.mu.Lock()
	defer dx.mu.Unlock()
	return dx.insertRecordsLocked(recs)
}

func (dx *DynamicIndex) insertRecordsLocked(recs []strutil.Record) []int {
	ids := make([]int, len(recs))
	delta := invindex.NewDelta()
	// Generate each record's pebbles once: the whole batch is interned in a
	// single InternDynamic call (at most one dynamic-table clone), and the
	// same slices then feed signature selection via PreparePebbles.
	pebs := make([][]pebble.Pebble, len(recs))
	segs := make([][]core.Segment, len(recs))
	for i := range recs {
		if recs[i].ID >= dx.nextID {
			dx.nextID = recs[i].ID + 1
		}
		pebs[i], segs[i] = dx.joiner.gen.Pebbles(recs[i].Tokens)
	}
	dx.dynAdded += dx.base.order.InternDynamic(pebs...)
	var idbuf []uint32
	for i := range recs {
		pos := len(dx.records)
		pre := dx.base.sel.PreparePebbles(pebs[i], segs[i], recs[i].Tokens)
		sig := dx.base.sel.Select(pre, dx.opts.Method, dx.tau)
		idbuf = appendSignatureIDs(idbuf[:0], sig)
		delta.Add(pos, idbuf)
		dx.sigLens = append(dx.sigLens, sig.Len())
		dx.sigLenLive += sig.Len()
		dx.records = append(dx.records, recs[i])
		dx.prepared = append(dx.prepared, dx.calc.PrepareCached(dx.cache, recs[i].Tokens))
		dx.positions[recs[i].ID] = pos
		ids[i] = recs[i].ID
	}
	for len(dx.dead)*64 < len(dx.records) {
		dx.dead = append(dx.dead, 0)
	}
	dx.segs = append(dx.segs, &segment{inv: delta})
	dx.inserts += len(recs)
	dx.maybeRebuildLocked()
	dx.publishLocked()
	return ids
}

// Remove tombstones the record with the given stable ID. It reports whether
// the ID was present and live. The record's postings stay in place until
// the next rebuild; count filtering may still touch them, but candidates
// are discarded before verification.
func (dx *DynamicIndex) Remove(id int) bool {
	dx.mu.Lock()
	defer dx.mu.Unlock()
	return dx.removeBatchLocked([]int{id}, nil)
}

// RemoveBatch tombstones every given stable ID, reporting per ID whether it
// was present and live. The writer lock is taken once and the tombstone
// bitmap cloned at most once for the whole batch, so bulk deletions cost one
// publish instead of one per record.
func (dx *DynamicIndex) RemoveBatch(ids []int) []bool {
	if len(ids) == 0 {
		return nil
	}
	out := make([]bool, len(ids))
	dx.mu.Lock()
	defer dx.mu.Unlock()
	dx.removeBatchLocked(ids, out)
	return out
}

// removeBatchLocked tombstones the ids, recording per-id success in out when
// non-nil, and reports whether any record was removed. The bitmap is cloned
// once, before the first bit set (clone-before-set: published Views keep
// observing the old bitmap); nothing is published when every id misses.
func (dx *DynamicIndex) removeBatchLocked(ids []int, out []bool) bool {
	var nd []uint64
	for i, id := range ids {
		pos, ok := dx.positions[id]
		if !ok {
			continue
		}
		delete(dx.positions, id)
		if nd == nil {
			nd = make([]uint64, len(dx.dead))
			copy(nd, dx.dead)
		}
		nd[pos>>6] |= 1 << (uint(pos) & 63)
		dx.deadCount++
		dx.sigLenLive -= dx.sigLens[pos]
		if out != nil {
			out[i] = true
		}
	}
	if nd == nil {
		return false
	}
	dx.dead = nd
	dx.maybeRebuildLocked()
	dx.publishLocked()
	return true
}

// maybeRebuildLocked re-finalizes the index when the appended pebble mass,
// the tombstone mass, or the segment chain crosses its threshold.
func (dx *DynamicIndex) maybeRebuildLocked() {
	if len(dx.segs) > dx.maxSegments {
		dx.rebuildLocked()
		return
	}
	if dx.rebuildFraction < 0 {
		return
	}
	// The trigger compares the keys this index interned since adoption
	// (dynAdded) against the keys known at adoption. Counting only our own
	// interning matters for a shard of a ShardedIndex: the shared dynamic
	// region grows from every sibling's inserts, and triggering on global
	// growth would make all shards cross the threshold on the same batch
	// and stall its caller on N correlated rebuilds — exactly the
	// stop-the-world pause sharding exists to bound. For a standalone index
	// the order is private, so dynAdded equals the region size and
	// dynAtBuild is 0: the classic absolute trigger.
	known := dx.base.order.FrozenKeys() + dx.dynAtBuild
	if known < 1 {
		known = 1
	}
	if dx.dynAdded > 0 && float64(dx.dynAdded) >= dx.rebuildFraction*float64(known) {
		dx.rebuildLocked()
		return
	}
	if n := len(dx.records); dx.deadCount > 0 && float64(dx.deadCount) >= dx.rebuildFraction*float64(n) {
		dx.rebuildLocked()
	}
}

// rebuildLocked compacts the live records into a fresh base index, reusing
// each survivor's prepared verification record. A standalone index freezes a
// new order (true document frequencies, empty dynamic region); a shard of a
// ShardedIndex keeps the shared order — re-freezing would re-assign IDs the
// sibling shards' signatures still reference — and re-selects its signatures
// under the order's current append-only state, so the compaction win is the
// dense base (segments merged, tombstones dropped), not a fresher frequency
// ranking. Stable IDs are preserved; positions are reassigned. The pause is
// recorded for the serve benchmark's percentiles.
func (dx *DynamicIndex) rebuildLocked() {
	start := time.Now()
	live, prep := dx.liveLocked()
	order := dx.base.order
	if !dx.sharedOrder {
		order = dx.joiner.BuildOrder(live)
	}
	base := dx.joiner.buildIndex(live, order, dx.opts, prep)
	dx.adoptBaseLocked(base)
	dx.rebuilds++
	// Re-anchor the planner's feedback table: the corpus its corrections
	// were learned against was just compacted, and the cached τ suggestion
	// must track the observed workload instead of silently keeping the
	// build-time value. Shards of a ShardedIndex skip this — their shared
	// planner is re-anchored once per global re-finalize by the router.
	if !dx.sharedOrder {
		dx.planner.Reanchor()
	}
	dx.pauses = appendPause(dx.pauses, time.Since(start))
}

// maxPauseLog bounds each pause history: a long-running daemon rebuilds
// indefinitely, and the log exists for recent-percentile reporting, not as
// an unbounded archive.
const maxPauseLog = 1024

// appendPause appends a pause, dropping the older half of the log once it
// outgrows maxPauseLog (amortized O(1), keeps the recent window).
func appendPause(log []time.Duration, d time.Duration) []time.Duration {
	if len(log) >= maxPauseLog {
		log = append(log[:0], log[len(log)/2:]...)
	}
	return append(log, d)
}

// liveLocked collects the live records and their prepared verification
// records in position order.
func (dx *DynamicIndex) liveLocked() ([]strutil.Record, []*core.PreparedRecord) {
	live := make([]strutil.Record, 0, len(dx.records)-dx.deadCount)
	prep := make([]*core.PreparedRecord, 0, len(dx.records)-dx.deadCount)
	for pos, rec := range dx.records {
		if dx.dead[pos>>6]&(1<<(uint(pos)&63)) != 0 {
			continue
		}
		live = append(live, rec)
		prep = append(prep, dx.prepared[pos])
	}
	return live, prep
}

// refreezeLocked rebuilds this shard's base under a freshly frozen order of
// a ShardedIndex global re-finalize, stamping the new generation. The caller
// (the router) holds dx.mu — and every sibling's — for the whole refreeze,
// so no view mixing old-order bases with the new selector can be published;
// it also supplies the live records it already collected and logs the whole
// refreeze as one router-level pause (per-shard entries here would both
// double-count the stall and hide its corpus-sized total).
func (dx *DynamicIndex) refreezeLocked(order *pebble.Order, gen int, live []strutil.Record, prep []*core.PreparedRecord) {
	base := dx.joiner.buildIndex(live, order, dx.opts, prep)
	dx.gen = gen
	dx.adoptBaseLocked(base)
	dx.rebuilds++
	dx.publishLocked()
}

// RebuildPauses returns the wall-clock durations of recent rebuilds — the
// history is capped at maxPauseLog entries — (writer stall per rebuild;
// readers keep serving the previous view).
func (dx *DynamicIndex) RebuildPauses() []time.Duration {
	dx.mu.Lock()
	defer dx.mu.Unlock()
	return append([]time.Duration(nil), dx.pauses...)
}

// Stats returns the statistics of the current snapshot.
func (dx *DynamicIndex) Stats() DynamicStats { return dx.Snapshot().Stats() }

// DynamicStats describes one published View of a DynamicIndex.
type DynamicStats struct {
	// Records is the catalog length including tombstones; Live and Dead
	// split it.
	Records, Live, Dead int
	// Segments is the length of the delta-segment chain (one per Insert
	// batch since the last rebuild); for a ShardedIndex it is summed over
	// the shards.
	Segments int
	// Shards is the number of index partitions (1 for a standalone
	// DynamicIndex).
	Shards int
	// FrozenKeys and DynamicKeys count the interned pebble keys in the
	// frozen order prefix and the append-only dynamic region.
	FrozenKeys, DynamicKeys int
	// Rebuilds counts re-finalize/rebuild cycles; Inserts the records
	// appended over the index lifetime.
	Rebuilds, Inserts int
	// DenseKeys and SparseKeys split the base index's non-empty posting
	// lists by representation: packed bitmap form (lists past the hybrid
	// density cutoff) versus sorted slice form. Summed over the shards of a
	// ShardedIndex (each shard hybridizes its own base).
	DenseKeys, SparseKeys int
	// ProbePostings counts posting entries processed by the count filter
	// over every probe served since the index was built;
	// ProbeBitsetTokens and ProbeSliceTokens split the probe signature
	// tokens by the representation their base posting list was served
	// from. Summed over the shards of a ShardedIndex.
	ProbePostings     int64
	ProbeBitsetTokens int64
	ProbeSliceTokens  int64
	// VerifiedCandidates, PrunedByBound and MemoHits are the cumulative
	// verify-phase counters over every query served since the index was
	// built: candidates whose msim matrix was computed, candidates skipped
	// by the sound upper bounds (O(1) size-ratio bound or the rising top-k
	// floor), and segment-pair msim evaluations answered from the memo.
	// Summed over the shards of a ShardedIndex.
	VerifiedCandidates int64
	PrunedByBound      int64
	MemoHits           int64
	// CacheHits and CacheMisses are the cumulative prepared-record cache
	// counters (one cache is shared across all shards of a ShardedIndex;
	// zero when the cache is disabled).
	CacheHits, CacheMisses uint64
	// Theta and Tau are the join parameters fixed at build time.
	Theta float64
	Tau   int
	// SuggestedTau is the planner's live τ suggestion: the build-time τ
	// until the first re-anchor, the observed workload's most-chosen τ
	// afterwards (0 when planning is disabled).
	SuggestedTau int
	// Plans, PlanFallbacks and PlanReanchors count adaptive planning
	// decisions, planner fallbacks to the fixed configuration, and feedback
	// re-anchors after rebuilds; PlanDecisions splits Plans by chosen
	// configuration ("ufilter/t1", "auheur/t2", "audp/t3", ...). All zero
	// when planning is disabled. One planner is shared across all shards of
	// a ShardedIndex, so these are request-level counters, not per-shard.
	Plans         int64
	PlanFallbacks int64
	PlanReanchors int64
	PlanDecisions map[string]int64
	// BuildTime is the construction time of the current base index.
	BuildTime time.Duration
}

// View is one immutable snapshot of a DynamicIndex. All its methods are
// read-only, lock-free and safe for unbounded concurrency; results reflect
// exactly the mutations published before Snapshot returned it.
type View struct {
	dx       *DynamicIndex
	base     *Index
	segs     []*segment
	records  []strutil.Record
	prepared []*core.PreparedRecord
	dead     []uint64
	avgSig   float64 // mean signature length over live records
	gen      int     // order generation of the base (see DynamicIndex.gen)
	stats    DynamicStats
}

// Stats returns the snapshot's statistics.
func (v *View) Stats() DynamicStats {
	st := v.stats
	// The probe tallies are live index-lifetime counters, not snapshot
	// state: read them fresh so successive Stats calls observe queries
	// served after the View was published.
	st.ProbePostings = v.dx.probePostings.Load()
	st.ProbeBitsetTokens = v.dx.probeBitsetTokens.Load()
	st.ProbeSliceTokens = v.dx.probeSliceTokens.Load()
	st.VerifiedCandidates = v.dx.verifyVerified.Load()
	st.PrunedByBound = v.dx.verifyPruned.Load()
	st.MemoHits = v.dx.verifyMemoHits.Load()
	if pl := v.dx.planner; pl != nil {
		c := pl.Counters()
		st.SuggestedTau = c.SuggestedTau
		st.Plans = c.Plans
		st.PlanFallbacks = c.Fallbacks
		st.PlanReanchors = c.Reanchors
		st.PlanDecisions = c.Decisions
	}
	return st
}

// Record returns the record with the given stable ID, if it is live in this
// snapshot.
func (v *View) Record(id int) (strutil.Record, bool) {
	// Positions are writer state, so scan is by stable ID; the method is a
	// convenience for serving layers, not a hot path.
	for pos := range v.records {
		if v.records[pos].ID == id && v.alive(pos) {
			return v.records[pos], true
		}
	}
	return strutil.Record{}, false
}

// alive reports whether the record at a position is not tombstoned in this
// snapshot.
func (v *View) alive(pos int) bool {
	return v.dead[pos>>6]&(1<<(uint(pos)&63)) == 0
}

// scratch borrows a probe scratch from the index-wide pool, its arena sized
// to this snapshot's record count.
func (v *View) scratch() *probeScratch {
	return scratchFromPool(&v.dx.pool, len(v.records))
}

// candidatesRecord runs the hybrid count filter for one probe signature
// across the base index and every delta segment, returning the positions of
// live records whose overlap reached tau (aliasing the accumulator arena,
// valid until the next use of sc) and the filter tally. tau is the
// request's planned overlap constraint — any value in [1, build-τ] is sound
// against the build-time indexed signatures. Base lists in bitmap form go
// through the block accumulator; segment postings are always sparse slices.
func (v *View) candidatesRecord(sig pebble.Signature, tau int, sc *probeScratch) ([]int32, filterTally) {
	peb := sig.Pebbles
	acc := sc.acc
	acc.Begin(tau)
	var tally filterTally
	baseRecords := v.base.inv.Records()
	for a := 0; a < len(peb); {
		id := peb[a].ID
		b := a + 1
		for b < len(peb) && peb[b].ID == id {
			b++
		}
		mult := int32(b - a)
		a = b
		if id == pebble.NoID {
			continue
		}
		if bs := v.base.inv.Bitset(id); bs != nil {
			tally.bitsetTokens++
			tally.postings += acc.AddBitset(bs, mult, baseRecords)
			// Surplus counts of multi-occurrence records; their bitmap bits
			// are already accumulated and tallied, so no added T_τ cost.
			acc.AddPostings(bs.Residual(), mult)
		} else {
			tally.sliceTokens++
			tally.postings += acc.AddPostings(v.base.inv.Postings(id), mult)
		}
		for _, seg := range v.segs {
			tally.postings += acc.AddPostings(seg.inv.Postings(id), mult)
		}
	}
	tally.postings += acc.FlushDense(baseRecords)
	v.dx.noteProbe(tally)
	return acc.Collect(v.dead), tally
}

// lazyPrepared derives the prepared verification record of a query on first
// use and shares it across consumers — the sharded fan-out hands one to
// every shard, so the query is prepared at most once per request and not at
// all when no shard yields a candidate.
type lazyPrepared struct {
	once   sync.Once
	calc   *core.Calculator
	tokens []string
	pr     *core.PreparedRecord
}

func (lp *lazyPrepared) get() *core.PreparedRecord {
	lp.once.Do(func() { lp.pr = lp.calc.Prepare(lp.tokens) })
	return lp.pr
}

// QueryOpts carries per-request overrides of parameters that are otherwise
// fixed when an index is built. The zero value changes nothing.
type QueryOpts struct {
	// Theta overrides the verification threshold for this request; 0 keeps
	// the build-time θ. Values above the build θ are exact (the filter
	// over-admits, verification tightens). Values below it are best-effort:
	// the candidate set is still bounded by the build-time filter, so
	// matches whose similarity falls between the override and the build θ
	// are returned only when they happen to survive that filter.
	Theta float64
	// Workers bounds the verification parallelism of this request; 0 or 1
	// verifies sequentially on the calling goroutine (per shard, on a
	// sharded index — the shard fan-out itself always runs concurrently).
	Workers int
	// Plan selects adaptive per-request planning (PlanAuto, the default) or
	// the fixed build-time configuration (PlanFixed). Auto on an index built
	// with Options.Plan == PlanFixed still runs fixed — that index has no
	// planner.
	Plan PlanMode
	// ProbeTau (with ProbeMethod) pins this request's probe-side
	// configuration to one point of the planner's search space instead of
	// planning or using the build config: the request selects its probe
	// signature with ProbeMethod at min(ProbeTau, τ_build) and count-filters
	// at that τ. Any such configuration is sound against the build-time
	// index (τ′ ≤ τ_build only over-admits; verification is exact), so
	// results are bit-identical to every other configuration. 0 leaves Plan
	// in charge. Benchmarks use this to A/B the planner against each fixed
	// configuration on the same index.
	ProbeTau    int
	ProbeMethod pebble.Method
}

// thetaFor resolves the verification threshold a request runs at.
func (o Options) thetaFor(qo QueryOpts) float64 {
	if qo.Theta > 0 {
		return qo.Theta
	}
	return o.Theta
}

// minParallelVerify is the candidate count below which a per-query
// verification request ignores QueryOpts.Workers: spawning goroutines for a
// handful of candidates costs more than it saves.
const minParallelVerify = 64

// ProbeRecord runs the filter-and-verify pipeline for one tokenised query
// against the snapshot and returns the matching live records — identified
// by their stable IDs — in ascending ID order.
func (v *View) ProbeRecord(tokens []string) []QueryMatch {
	out, _ := v.ProbeRecordCtx(context.Background(), tokens, QueryOpts{})
	return out
}

// ProbeRecordCtx is ProbeRecord with cooperative cancellation and
// per-request options: verification checks ctx between candidates and
// returns the context error on cancellation. An empty token slice returns
// an empty result without touching the index (there is no zero-signature
// probe to run).
func (v *View) ProbeRecordCtx(ctx context.Context, tokens []string, qo QueryOpts) ([]QueryMatch, error) {
	if len(tokens) == 0 {
		return nil, ctx.Err()
	}
	start := time.Now()
	d := v.planRecord(tokens, qo)
	var ex planner.Exec
	out, err := v.probeRecordPrepared(ctx, d.Sig, d.Tau, &lazyPrepared{calc: v.dx.calc, tokens: tokens}, qo, &ex)
	if err != nil {
		return nil, err
	}
	v.dx.planner.ObserveExec(d, &ex, 1, time.Since(start).Nanoseconds())
	sort.Slice(out, func(a, b int) bool { return out[a].Record < out[b].Record })
	return out, nil
}

// planRecord resolves the probe-side configuration and signature for one
// single-record request: the planner's cheapest sound configuration under
// PlanAuto, the build-time configuration under PlanFixed or when the index
// has no planner. Either way the returned decision carries the selected
// probe signature.
func (v *View) planRecord(tokens []string, qo QueryOpts) planner.Decision {
	if qo.ProbeTau > 0 {
		method, tau := pinnedConfig(qo, v.dx.tau)
		d := planner.FixedConfig(method, tau)
		d.Sig = v.base.sel.Signature(tokens, method, tau)
		return d
	}
	pl := v.dx.planner
	if pl == nil || qo.Plan == PlanFixed {
		d := planner.FixedConfig(v.dx.opts.Method, v.dx.tau)
		d.Sig = v.base.sel.Signature(tokens, v.dx.opts.Method, v.dx.tau)
		return d
	}
	return pl.Plan(v.base.sel, v.base.sel.Prepare(tokens), v.base.inv.ListLength, len(v.records))
}

// pinnedConfig resolves a QueryOpts probe-side override into a sound
// configuration: τ clamps into [1, τ_build] (larger values would demand
// overlap the indexed τ_build-signatures never promise) and the U-Filter
// fixes τ at 1, exactly as a build with that method would.
func pinnedConfig(qo QueryOpts, buildTau int) (pebble.Method, int) {
	tau := qo.ProbeTau
	if tau > buildTau {
		tau = buildTau
	}
	if tau < 1 || qo.ProbeMethod == pebble.UFilter {
		tau = 1
	}
	return qo.ProbeMethod, tau
}

// planBatchSample bounds the prepared-probe sample a batch plan evaluates:
// the plan must stay far cheaper than the batch it steers.
const planBatchSample = 8

// planBatch resolves one configuration for a whole probe batch from a
// strided sample of the probe records (batch paths select their signatures
// after the decision, in the shared signature pass).
func (v *View) planBatch(records []strutil.Record) planner.Decision {
	pl := v.dx.planner
	if pl == nil || len(records) == 0 {
		return planner.FixedConfig(v.dx.opts.Method, v.dx.tau)
	}
	stride := (len(records) + planBatchSample - 1) / planBatchSample
	pres := make([]pebble.Presig, 0, planBatchSample)
	for i := 0; i < len(records); i += stride {
		pres = append(pres, v.base.sel.Prepare(records[i].Tokens))
	}
	return pl.PlanBatch(v.base.sel, pres, v.base.inv.ListLength, len(v.records))
}

// floorTracker is the shared rising floor of one top-k operation: the best
// k-th-place similarity any participant (verify worker or shard) has proven
// so far, maintained as a CAS-max over float bits. Every full k-heap's root
// lower-bounds the global k-th best match, so a candidate whose upper bound
// sits below the tracker can be skipped without changing the result.
// Similarities are non-negative, so the float ordering matches the unsigned
// bit ordering and the zero value is a no-op floor.
type floorTracker struct {
	bits atomic.Uint64
}

func (f *floorTracker) floor() float64 {
	return math.Float64frombits(f.bits.Load())
}

func (f *floorTracker) raise(v float64) {
	if v <= 0 {
		return
	}
	nb := math.Float64bits(v)
	for {
		cur := f.bits.Load()
		if math.Float64frombits(cur) >= v {
			return
		}
		if f.bits.CompareAndSwap(cur, nb) {
			return
		}
	}
}

// orderByUpperBound fills sc.ubs with the candidates paired with their O(1)
// partition-size upper bound, ordered best-first (ties by position for
// determinism). Verifying in this order lets the scheduler stop at the first
// candidate whose bound falls under the rising floor: all later bounds are
// no larger.
func (v *View) orderByUpperBound(sc *probeScratch, cands []int32, pq *core.PreparedRecord) []candUB {
	ubs := sc.ubs[:0]
	for _, r := range cands {
		ubs = append(ubs, candUB{r: r, ub: core.SizeRatioUpper(v.prepared[r], pq)})
	}
	sc.ubs = ubs
	slices.SortFunc(ubs, func(a, b candUB) int {
		if a.ub != b.ub {
			if a.ub > b.ub {
				return -1
			}
			return 1
		}
		if a.r != b.r {
			if a.r < b.r {
				return -1
			}
			return 1
		}
		return 0
	})
	return ubs
}

// verifyCandidatesParallel verifies the candidates across qo.Workers workers
// with one lazily built similarity scratch each, feeding every confirmed
// match to sink. sink is called from worker w only (no synchronisation
// needed on per-worker accumulators); the error is the context error when
// the run was cut short. The returned tally folds the workers' verify
// counters.
func (v *View) verifyCandidatesParallel(ctx context.Context, cands []int32, pq *core.PreparedRecord, theta float64, workers int, sink func(w int, m QueryMatch)) (verifyTally, error) {
	scratches := make([]*core.Scratch, workers)
	noMemo := v.dx.opts.NoVerifyMemo
	err := parallelForWorkersCtx(ctx, len(cands), workers, func(w, i int) {
		wsc := scratches[w]
		if wsc == nil {
			wsc = core.NewScratch()
			wsc.DisableMemo = noMemo
			scratches[w] = wsc
		}
		r := cands[i]
		if val, ok := v.dx.calc.VerifyPrepared(v.prepared[r], pq, theta, wsc); ok {
			sink(w, QueryMatch{Record: v.records[r].ID, Similarity: val})
		}
	})
	var vt verifyTally
	for _, wsc := range scratches {
		vt.addScratch(wsc)
	}
	return vt, err
}

// verifyTopKParallel is the rising-floor analogue of verifyCandidatesParallel
// for top-k requests: candidates arrive in upper-bound order, every worker
// keeps its own k-bounded heap in heaps[w], and the shared tracker carries
// the best proven floor across workers (and shards). A candidate is skipped
// when its bound sits below the live floor minus the verify slack — by then
// k matches at least that good are known to exist, so the skip is exact.
func (v *View) verifyTopKParallel(ctx context.Context, ubs []candUB, pq *core.PreparedRecord, theta float64, k, workers int, ft *floorTracker, heaps []topKHeap) (verifyTally, error) {
	scratches := make([]*core.Scratch, workers)
	noMemo := v.dx.opts.NoVerifyMemo
	var pruned atomic.Int64
	err := parallelForWorkersCtx(ctx, len(ubs), workers, func(w, i int) {
		wsc := scratches[w]
		if wsc == nil {
			wsc = core.NewScratch()
			wsc.DisableMemo = noMemo
			scratches[w] = wsc
		}
		h := &heaps[w]
		floor := theta
		if f := ft.floor(); f > floor {
			floor = f
		}
		if len(h.entries) == k {
			if hf := h.entries[0].Similarity; hf > floor {
				floor = hf
			}
		}
		if ubs[i].ub < floor-core.BoundSlack {
			pruned.Add(1)
			return
		}
		r := ubs[i].r
		// floor, not theta: a candidate below the floor cannot enter any
		// final top-k, and one exactly at it still passes (ok is ≥).
		if val, ok := v.dx.calc.VerifyPrepared(v.prepared[r], pq, floor, wsc); ok {
			h.offer(QueryMatch{Record: v.records[r].ID, Similarity: val}, k)
			if len(h.entries) == k {
				ft.raise(h.entries[0].Similarity)
			}
		}
	})
	var vt verifyTally
	for _, wsc := range scratches {
		vt.addScratch(wsc)
	}
	vt.pruned += pruned.Load()
	return vt, err
}

// probeRecordPrepared is ProbeRecordCtx for a ready-made probe signature,
// its planned overlap constraint and a lazily shared prepared query; results
// are unordered (the callers sort — the sharded router merges several
// shards' results first). A non-nil ex accumulates the observed candidate
// count and verification wall time for the planner's feedback loop (the
// sharded fan-out hands one ex to every shard).
func (v *View) probeRecordPrepared(ctx context.Context, sig pebble.Signature, tau int, lp *lazyPrepared, qo QueryOpts, ex *planner.Exec) ([]QueryMatch, error) {
	theta := v.dx.opts.thetaFor(qo)
	sc := v.scratch()
	cands, _ := v.candidatesRecord(sig, tau, sc)
	if ex != nil {
		ex.Candidates.Add(int64(len(cands)))
	}
	var out []QueryMatch
	var err error
	var vt verifyTally
	if len(cands) > 0 {
		verifyStart := time.Now()
		defer func() { // the verify loop has several exits; one timer covers all
			if ex != nil {
				ex.VerifyNs.Add(time.Since(verifyStart).Nanoseconds())
				ex.Pruned.Add(vt.pruned)
			}
			v.dx.noteVerify(vt)
		}()
		pq := lp.get()
		if qo.Workers > 1 && len(cands) >= minParallelVerify {
			outs := make([][]QueryMatch, qo.Workers)
			vt, err = v.verifyCandidatesParallel(ctx, cands, pq, theta, qo.Workers, func(w int, m QueryMatch) {
				outs[w] = append(outs[w], m)
			})
			if err == nil {
				for _, part := range outs {
					out = append(out, part...)
				}
			}
		} else {
			sim := sc.simScratch()
			sim.DisableMemo = v.dx.opts.NoVerifyMemo
			before := sim.Stats
			for i, r := range cands {
				if i%ctxCheckStride == 0 && ctx.Err() != nil {
					err = ctx.Err()
					break
				}
				if val, ok := v.dx.calc.VerifyPrepared(v.prepared[r], pq, theta, sim); ok {
					out = append(out, QueryMatch{Record: v.records[r].ID, Similarity: val})
				}
			}
			// The sim scratch is pooled, so its counters span operations;
			// diff against the snapshot for this probe's share.
			vt.verified = sim.Stats.Verified - before.Verified
			vt.pruned = sim.Stats.PrunedByBound - before.PrunedByBound
			vt.memoHits = sim.Stats.MemoHits - before.MemoHits
		}
	}
	sc.release(&v.dx.pool)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// QueryTopK is ProbeRecord restricted to the k highest-similarity matches:
// candidates from the thresholded scan are verified through the prepared
// engine while a bounded min-heap keeps the current top k, so memory stays
// O(k) however many records clear θ. Results are ordered by descending
// similarity (ascending ID on ties). k ≤ 0 yields an empty result without
// touching the index.
func (v *View) QueryTopK(tokens []string, k int) []QueryMatch {
	out, _ := v.QueryTopKCtx(context.Background(), tokens, k, QueryOpts{})
	return out
}

// QueryTopKCtx is QueryTopK with cooperative cancellation and per-request
// options. An empty token slice or k ≤ 0 returns an empty result without
// touching the index.
func (v *View) QueryTopKCtx(ctx context.Context, tokens []string, k int, qo QueryOpts) ([]QueryMatch, error) {
	if k <= 0 || len(tokens) == 0 {
		return nil, ctx.Err()
	}
	start := time.Now()
	d := v.planRecord(tokens, qo)
	var ex planner.Exec
	heap, err := v.queryTopKPrepared(ctx, d.Sig, d.Tau, &lazyPrepared{calc: v.dx.calc, tokens: tokens}, k, qo, &ex, nil)
	if err != nil {
		return nil, err
	}
	v.dx.planner.ObserveExec(d, &ex, 1, time.Since(start).Nanoseconds())
	return heap.sorted(), nil
}

// queryTopKPrepared runs the thresholded scan and bounded-heap verification
// for a ready-made signature and lazily shared prepared query, returning the
// unsorted heap (the sharded router folds several shards' heaps together
// before sorting once). With qo.Workers > 1 each worker keeps its own
// k-bounded heap and the heaps are folded at the end — sound because the
// top k of the union is contained in the union of per-worker top k's.
//
// Unless Options.NoVerifyPrune is set, candidates are verified in descending
// order of their O(1) similarity upper bound against a rising floor: the
// larger of θ, this scan's heap root once full, and the shared tracker ft
// (which carries the best floor observed by concurrent workers and sibling
// shards). A candidate whose bound falls below the floor — and, in the
// ordered sequential scan, every candidate after it — is provably outside
// the final top k, so the pruned scan returns bit-identical results.
func (v *View) queryTopKPrepared(ctx context.Context, sig pebble.Signature, tau int, lp *lazyPrepared, k int, qo QueryOpts, ex *planner.Exec, ft *floorTracker) (topKHeap, error) {
	theta := v.dx.opts.thetaFor(qo)
	sc := v.scratch()
	cands, _ := v.candidatesRecord(sig, tau, sc)
	if ex != nil {
		ex.Candidates.Add(int64(len(cands)))
	}
	var heap topKHeap
	var err error
	var vt verifyTally
	if len(cands) > 0 {
		verifyStart := time.Now()
		defer func() {
			if ex != nil {
				ex.VerifyNs.Add(time.Since(verifyStart).Nanoseconds())
				ex.Pruned.Add(vt.pruned)
			}
			v.dx.noteVerify(vt)
		}()
		pq := lp.get()
		prune := !v.dx.opts.NoVerifyPrune
		if ft == nil {
			ft = &floorTracker{}
		}
		switch {
		case qo.Workers > 1 && len(cands) >= minParallelVerify && prune:
			heaps := make([]topKHeap, qo.Workers)
			ubs := v.orderByUpperBound(sc, cands, pq)
			vt, err = v.verifyTopKParallel(ctx, ubs, pq, theta, k, qo.Workers, ft, heaps)
			if err == nil {
				for _, h := range heaps {
					for _, m := range h.entries {
						heap.offer(m, k)
					}
				}
			}
		case qo.Workers > 1 && len(cands) >= minParallelVerify:
			heaps := make([]topKHeap, qo.Workers)
			vt, err = v.verifyCandidatesParallel(ctx, cands, pq, theta, qo.Workers, func(w int, m QueryMatch) {
				heaps[w].offer(m, k)
			})
			if err == nil {
				// The fold is O(workers·k·log k); a cancelled request skips
				// it — the result is discarded anyway.
				for _, h := range heaps {
					for _, m := range h.entries {
						heap.offer(m, k)
					}
				}
			}
		case prune:
			sim := sc.simScratch()
			sim.DisableMemo = v.dx.opts.NoVerifyMemo
			before := sim.Stats
			ubs := v.orderByUpperBound(sc, cands, pq)
			for i := range ubs {
				if i%ctxCheckStride == 0 && ctx.Err() != nil {
					err = ctx.Err()
					break
				}
				floor := theta
				if f := ft.floor(); f > floor {
					floor = f
				}
				if len(heap.entries) == k {
					if hf := heap.entries[0].Similarity; hf > floor {
						floor = hf
					}
				}
				if ubs[i].ub < floor-core.BoundSlack {
					// Bounds only shrink from here (ubs is sorted) and the
					// floor only rises: the whole tail is pruned.
					vt.pruned += int64(len(ubs) - i)
					break
				}
				r := ubs[i].r
				if val, ok := v.dx.calc.VerifyPrepared(v.prepared[r], pq, floor, sim); ok {
					heap.offer(QueryMatch{Record: v.records[r].ID, Similarity: val}, k)
					if len(heap.entries) == k {
						ft.raise(heap.entries[0].Similarity)
					}
				}
			}
			vt.verified += sim.Stats.Verified - before.Verified
			vt.pruned += sim.Stats.PrunedByBound - before.PrunedByBound
			vt.memoHits += sim.Stats.MemoHits - before.MemoHits
		default:
			sim := sc.simScratch()
			sim.DisableMemo = v.dx.opts.NoVerifyMemo
			before := sim.Stats
			for i, r := range cands {
				if i%ctxCheckStride == 0 && ctx.Err() != nil {
					err = ctx.Err()
					break
				}
				if val, ok := v.dx.calc.VerifyPrepared(v.prepared[r], pq, theta, sim); ok {
					heap.offer(QueryMatch{Record: v.records[r].ID, Similarity: val}, k)
				}
			}
			vt.verified = sim.Stats.Verified - before.Verified
			vt.pruned = sim.Stats.PrunedByBound - before.PrunedByBound
			vt.memoHits = sim.Stats.MemoHits - before.MemoHits
		}
	}
	sc.release(&v.dx.pool)
	if err != nil {
		return topKHeap{}, err
	}
	return heap, nil
}

// topKHeap is a bounded min-heap on similarity (ties broken towards keeping
// the smaller record ID), so the root is always the weakest retained match.
type topKHeap struct {
	entries []QueryMatch
}

// sorted returns the retained matches ordered by descending similarity with
// ascending-ID ties — the result order of QueryTopK. The heap is consumed.
func (h *topKHeap) sorted() []QueryMatch {
	out := h.entries
	sort.Slice(out, func(a, b int) bool {
		if out[a].Similarity != out[b].Similarity {
			return out[a].Similarity > out[b].Similarity
		}
		return out[a].Record < out[b].Record
	})
	return out
}

// less orders the heap: the root must be the entry to evict first, i.e. the
// lowest similarity, and among equals the largest record ID.
func (h *topKHeap) less(a, b int) bool {
	ea, eb := h.entries[a], h.entries[b]
	if ea.Similarity != eb.Similarity {
		return ea.Similarity < eb.Similarity
	}
	return ea.Record > eb.Record
}

func (h *topKHeap) offer(m QueryMatch, k int) {
	if len(h.entries) < k {
		h.entries = append(h.entries, m)
		for i := len(h.entries) - 1; i > 0; {
			parent := (i - 1) / 2
			if !h.less(i, parent) {
				break
			}
			h.entries[i], h.entries[parent] = h.entries[parent], h.entries[i]
			i = parent
		}
		return
	}
	// Full: replace the root if m beats it, then sift down.
	root := h.entries[0]
	if m.Similarity < root.Similarity ||
		(m.Similarity == root.Similarity && m.Record > root.Record) {
		return
	}
	h.entries[0] = m
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.entries) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.entries) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.entries[i], h.entries[smallest] = h.entries[smallest], h.entries[i]
		i = smallest
	}
}

// Probe joins a probe collection against the snapshot, exactly like
// Index.Probe but over base + segments with tombstones skipped. Pair.S
// carries stable record IDs of the snapshot's catalog, Pair.T the probe
// records' IDs; results are sorted by (S, T).
func (v *View) Probe(records []strutil.Record) ([]Pair, Stats) {
	start := time.Now()
	d := v.planBatch(records)
	sigs := v.dx.joiner.signatures(records, v.base.sel, d.Method, d.Tau)
	prep := prepareRecords(records, v.dx.calc)
	pairs, stats := runProbeStages(v.dx.calc, v.dx.opts, v.target(d.Tau), records, sigs, prep, false, time.Since(start))
	stats.PlanTau = planTauOf(d)
	v.dx.noteVerify(verifyTally{verified: stats.VerifiedCandidates, pruned: stats.PrunedByBound, memoHits: stats.MemoHits})
	v.dx.planner.Observe(d, int64(stats.Candidates), stats.VerifiedCandidates, int64(len(records)), stats.VerifyTime.Nanoseconds(), 0)
	return pairs, stats
}

// ProbeSeq is the streaming form of Probe: matches are yielded in
// verification-completion order as they are confirmed, a consumer break
// stops the pipeline, and a ctx cancellation surfaces as one final error.
func (v *View) ProbeSeq(ctx context.Context, records []strutil.Record) iter.Seq2[Pair, error] {
	return pairSeq(ctx, func(ctx context.Context, emit func(Pair) bool) error {
		return v.probeStream(ctx, records, emit)
	})
}

// probeStream generates probe-side signatures and prepared records and runs
// the streaming pipeline against the snapshot.
func (v *View) probeStream(ctx context.Context, records []strutil.Record, emit func(Pair) bool) error {
	start := time.Now()
	d := v.planBatch(records)
	sigs := v.dx.joiner.signatures(records, v.base.sel, d.Method, d.Tau)
	prep := prepareRecords(records, v.dx.calc)
	stats, err := runProbeStream(ctx, v.dx.calc, v.dx.opts, v.target(d.Tau), records, sigs, prep, false, time.Since(start), emit)
	v.dx.noteVerify(verifyTally{verified: stats.VerifiedCandidates, pruned: stats.PrunedByBound, memoHits: stats.MemoHits})
	if err == nil {
		v.dx.planner.Observe(d, int64(stats.Candidates), stats.VerifiedCandidates, int64(len(records)), stats.VerifyTime.Nanoseconds(), 0)
	}
	return err
}

// planTauOf is the Stats.PlanTau value of a batch decision: the planned τ,
// or 0 when the batch ran the fixed build-time configuration.
func planTauOf(d planner.Decision) int {
	if !d.Planned {
		return 0
	}
	return d.Tau
}

// target reduces the snapshot to the probeTarget the shared probe stages
// need, counting candidates at the batch's planned overlap constraint.
func (v *View) target(tau int) probeTarget {
	return probeTarget{
		records:  v.records,
		prepared: v.prepared,
		avgSig:   v.avgSig,
		candidates: func(ctx context.Context, sigs []pebble.Signature, workers int) ([]pairKey, filterTally, error) {
			return v.candidates(ctx, sigs, tau, workers)
		},
	}
}

// candidates runs the snapshot count filter for a whole probe collection in
// parallel (shared strided-worker driver, one pooled scratch per worker).
func (v *View) candidates(ctx context.Context, sigs []pebble.Signature, tau, workers int) ([]pairKey, filterTally, error) {
	return parallelCandidates(ctx, len(sigs), len(v.records), workers, &v.dx.pool, func(sc *probeScratch, t int) ([]int32, filterTally) {
		return v.candidatesRecord(sigs[t], tau, sc)
	})
}

// Live returns the snapshot's live records in position order. The slice is
// freshly allocated; the records themselves are shared and immutable.
func (v *View) Live() []strutil.Record {
	out := make([]strutil.Record, 0, v.stats.Live)
	for pos := range v.records {
		if v.alive(pos) {
			out = append(out, v.records[pos])
		}
	}
	return out
}
