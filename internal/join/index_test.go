package join

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/sim"
	"github.com/aujoin/aujoin/internal/strutil"
	"github.com/aujoin/aujoin/internal/synonym"
	"github.com/aujoin/aujoin/internal/taxonomy"
)

// propertyContexts returns similarity contexts with and without the two
// knowledge sources, so the oracle comparison covers pure-Jaccard joins,
// synonym-augmented joins and the full unified measure.
func propertyContexts() map[string]*sim.Context {
	rules := synonym.NewRuleSet()
	rules.MustAdd("cake", "gateau", 1)
	rules.MustAdd("coffee shop", "cafe", 1)
	rules.MustAdd("db", "database", 0.9)
	tax := taxonomy.NewTree("Wikipedia")
	food := tax.MustAddChild(tax.Root(), "food")
	coffee := tax.MustAddChild(food, "coffee")
	drinks := tax.MustAddChild(coffee, "coffee drinks")
	tax.MustAddChild(drinks, "espresso")
	tax.MustAddChild(drinks, "latte")
	cake := tax.MustAddChild(food, "cake")
	tax.MustAddChild(cake, "apple cake")
	return map[string]*sim.Context{
		"plain":    sim.NewContext(synonym.NewRuleSet(), nil),
		"synonyms": sim.NewContext(rules, nil),
		"full":     sim.NewContext(rules, tax),
	}
}

// propertyCorpus generates records over a vocabulary dense enough that the
// filters face both matches and near-misses.
func propertyCorpus(n int, rng *rand.Rand) []strutil.Record {
	vocab := []string{"coffee", "shop", "latte", "espresso", "cafe", "helsinki",
		"helsingki", "cake", "apple", "gateau", "bakery", "db", "database", "systems"}
	raws := make([]string, n)
	for i := range raws {
		l := 2 + rng.Intn(3)
		toks := make([]string, l)
		for k := range toks {
			toks[k] = vocab[rng.Intn(len(vocab))]
		}
		raws[i] = strutil.JoinTokens(toks)
	}
	return strutil.NewCollection(raws)
}

// selfOracle filters a BruteForce(s, s) result down to unordered pairs.
func selfOracle(pairs []Pair) []Pair {
	var out []Pair
	for _, p := range pairs {
		if p.S < p.T {
			out = append(out, p)
		}
	}
	return out
}

// TestIndexProbeMatchesBruteForce is the oracle property of the
// build-once/probe-many pipeline: BuildIndex + Probe (and SelfJoin) must
// return exactly the BruteForce result — same pairs, same similarities —
// for every filter method, threshold and knowledge-source combination.
// Note the index is built over S alone, so the probe side exercises the
// shared-order extension for keys the index has never seen.
func TestIndexProbeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, ctx := range propertyContexts() {
		j := NewJoiner(ctx)
		s := propertyCorpus(25, rng)
		u := propertyCorpus(25, rng)
		for _, theta := range []float64{0.7, 0.8, 0.9} {
			wantRS := j.BruteForce(s, u, theta, nil)
			wantSelf := selfOracle(j.BruteForce(s, s, theta, nil))
			for _, method := range []pebble.Method{pebble.UFilter, pebble.AUHeuristic, pebble.AUDP} {
				for _, tau := range []int{1, 2, 3} {
					if method == pebble.UFilter && tau > 1 {
						continue
					}
					opts := Options{Theta: theta, Tau: tau, Method: method}

					ix := j.BuildIndex(s, opts)
					got, stats := ix.Probe(u)
					if !reflect.DeepEqual(got, wantRS) {
						t.Errorf("%s θ=%v %v τ=%d: Probe = %v, want %v", name, theta, method, tau, got, wantRS)
					}
					if stats.Candidates < len(got) || stats.Results != len(got) {
						t.Errorf("%s θ=%v %v τ=%d: inconsistent stats %+v", name, theta, method, tau, stats)
					}

					gotSelf, selfStats := j.BuildIndex(s, opts).SelfJoin()
					if !reflect.DeepEqual(gotSelf, wantSelf) {
						t.Errorf("%s θ=%v %v τ=%d: SelfJoin = %v, want %v", name, theta, method, tau, gotSelf, wantSelf)
					}
					n := len(s)
					if max := n * (n - 1) / 2; selfStats.Candidates > max {
						t.Errorf("%s θ=%v %v τ=%d: self-join candidates %d exceed unordered pair count %d",
							name, theta, method, tau, selfStats.Candidates, max)
					}
				}
			}
		}
	}
}

// TestIndexReuse checks the build-once/probe-many contract: one index
// serves several probe collections (and repeated probes) with identical
// results to one-shot joins sharing the same built side.
func TestIndexReuse(t *testing.T) {
	ctx := paperContext()
	j := NewJoiner(ctx)
	s, _ := collections()
	opts := Options{Theta: 0.75, Tau: 2, Method: pebble.AUDP}
	ix := j.BuildIndex(s, opts)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 3; trial++ {
		u := propertyCorpus(15, rng)
		want := j.BruteForce(s, u, opts.Theta, nil)
		first, _ := ix.Probe(u)
		second, _ := ix.Probe(u)
		if !reflect.DeepEqual(first, want) {
			t.Errorf("trial %d: probe differs from oracle", trial)
		}
		if !reflect.DeepEqual(first, second) {
			t.Errorf("trial %d: repeated probe differs", trial)
		}
	}
	if ix.BuildTime <= 0 {
		t.Error("BuildTime should be positive")
	}
	if ix.AvgSignature() <= 0 {
		t.Error("AvgSignature should be positive")
	}
	if len(ix.Records()) != len(s) {
		t.Error("Records length mismatch")
	}
	if ix.Order().NumKeys() == 0 {
		t.Error("order should have interned keys")
	}
}

// TestProbeRecordMatchesProbe checks that single-record probing agrees with
// collection probing, record by record.
func TestProbeRecordMatchesProbe(t *testing.T) {
	ctx := paperContext()
	j := NewJoiner(ctx)
	s, u := collections()
	opts := Options{Theta: 0.7, Tau: 2, Method: pebble.AUDP}
	ix := j.BuildIndex(s, opts)
	pairs, _ := ix.Probe(u)
	for ti, rec := range u {
		var want []QueryMatch
		for _, p := range pairs {
			if p.T == ti {
				want = append(want, QueryMatch{Record: p.S, Similarity: p.Similarity})
			}
		}
		got := ix.ProbeRecord(rec.Tokens)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("record %d: ProbeRecord = %v, want %v", ti, got, want)
		}
		// Pooled scratch must leave no residue between calls.
		again := ix.ProbeRecord(rec.Tokens)
		if !reflect.DeepEqual(again, got) {
			t.Errorf("record %d: repeated ProbeRecord differs", ti)
		}
	}
	if got := ix.ProbeRecord(nil); len(got) != 0 {
		t.Errorf("empty query returned %v", got)
	}
}

// TestSelfJoinStatsDeduplicated pins the satellite fix: self-join stats
// must count each unordered pair once — no mirrored pairs, no diagonal.
func TestSelfJoinStatsDeduplicated(t *testing.T) {
	ctx := paperContext()
	j := NewJoiner(ctx)
	recs := strutil.NewCollection([]string{
		"coffee shop latte",
		"cafe latte",
		"coffee shop latte",
		"cafe latte",
	})
	opts := Options{Theta: 0.7, Tau: 1, Method: pebble.UFilter}
	_, selfStats := j.SelfJoin(recs, opts)
	_, crossStats := j.Join(recs, recs, opts)
	if selfStats.Candidates*2 >= crossStats.Candidates {
		t.Errorf("self-join candidates %d not deduplicated vs cross %d",
			selfStats.Candidates, crossStats.Candidates)
	}
	if selfStats.ProcessedPairs*2 >= crossStats.ProcessedPairs {
		t.Errorf("self-join processed pairs %d not deduplicated vs cross %d",
			selfStats.ProcessedPairs, crossStats.ProcessedPairs)
	}
	if selfStats.Results*2 != crossStats.Results-len(recs) {
		// Every unordered result appears twice in the cross join plus the
		// diagonal (every record matches itself at similarity 1).
		t.Errorf("self results %d inconsistent with cross results %d",
			selfStats.Results, crossStats.Results)
	}
}

// TestFilterProfileMatchesFilterStats checks that the τ-sweep profile and
// the one-shot FilterStats agree for every τ.
func TestFilterProfileMatchesFilterStats(t *testing.T) {
	ctx := paperContext()
	j := NewJoiner(ctx)
	rng := rand.New(rand.NewSource(3))
	s := propertyCorpus(30, rng)
	u := propertyCorpus(30, rng)
	for _, method := range []pebble.Method{pebble.UFilter, pebble.AUHeuristic, pebble.AUDP} {
		opts := Options{Theta: 0.8, Method: method}
		fp := j.NewFilterProfile(s, u, opts)
		for tau := 1; tau <= 4; tau++ {
			opts.Tau = tau
			wantP, wantC := j.FilterStats(s, u, opts)
			gotP, gotC := fp.Stats(tau)
			if gotP != wantP || gotC != wantC {
				t.Errorf("%v τ=%d: profile (%d, %d) != FilterStats (%d, %d)",
					method, tau, gotP, gotC, wantP, wantC)
			}
		}
	}
}
