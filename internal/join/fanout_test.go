package join

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/aujoin/aujoin/internal/pebble"
)

// TestFanoutStructuredError pins the partial-failure contract of the shard
// fan-out: real shard failures surface as one *FanoutError naming every
// failing shard with its own error, siblings that merely observed the
// resulting internal cancellation are omitted as collateral, and a caller
// whose own context was cancelled gets that cancellation back bare.
func TestFanoutStructuredError(t *testing.T) {
	j := NewJoiner(paperContext())
	sx := j.BuildShardedIndex(denseCorpus(40, 3, 1), 4,
		Options{Theta: 0.7, Tau: 2, Method: pebble.AUDP}, DynamicOptions{})
	sv := sx.Snapshot()

	boom1 := errors.New("disk on fire")
	boom3 := errors.New("bad postings")
	err := sv.fanout(context.Background(), func(ctx context.Context, w int) error {
		switch w {
		case 1:
			return boom1
		case 3:
			return boom3
		default:
			<-ctx.Done() // sibling parked until the failure cancels it
			return ctx.Err()
		}
	})
	var fe *FanoutError
	if !errors.As(err, &fe) {
		t.Fatalf("fanout error = %T (%v), want *FanoutError", err, err)
	}
	if fe.Label != "shard" || fe.Total != 4 {
		t.Errorf("FanoutError label/total = %q/%d, want shard/4", fe.Label, fe.Total)
	}
	if len(fe.Failed) != 2 || fe.Failed[0] != 1 || fe.Failed[1] != 3 {
		t.Errorf("FanoutError.Failed = %v, want [1 3]", fe.Failed)
	}
	if !errors.Is(err, boom1) || !errors.Is(err, boom3) {
		t.Errorf("FanoutError does not unwrap to the shard errors: %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Errorf("collateral sibling cancellation leaked into the error: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "2 of 4 shards failed") ||
		!strings.Contains(msg, "disk on fire") || !strings.Contains(msg, "bad postings") {
		t.Errorf("FanoutError message %q does not name the failures", msg)
	}

	// Caller cancellation is a withdrawn request, not a shard failure.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = sv.fanout(ctx, func(ictx context.Context, w int) error { return ictx.Err() })
	if err != context.Canceled {
		t.Fatalf("cancelled fanout error = %v, want bare context.Canceled", err)
	}

	// All shards succeeding is not an error.
	if err := sv.fanout(context.Background(), func(context.Context, int) error { return nil }); err != nil {
		t.Fatalf("clean fanout returned %v", err)
	}
}
