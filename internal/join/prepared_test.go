package join

import (
	"reflect"
	"testing"

	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/strutil"
)

// tokensOracle computes the join the pre-refactor way: SimilarityTokens on
// raw token slices for every pair, no preparation, no thresholded bounds.
func tokensOracle(j *Joiner, s, t []strutil.Record, theta float64) []Pair {
	var out []Pair
	for i := range s {
		for l := range t {
			v := j.Calculator().SimilarityTokens(s[i].Tokens, t[l].Tokens)
			if v >= theta {
				out = append(out, Pair{S: s[i].ID, T: t[l].ID, Similarity: v})
			}
		}
	}
	return out
}

// TestPreparedVerifyMatchesTokensOracle pins the whole prepared pipeline —
// BruteForce and the filtered build-once/probe-many join — against the raw
// SimilarityTokens oracle, exactly (including the Similarity values), across
// filters and thresholds.
func TestPreparedVerifyMatchesTokensOracle(t *testing.T) {
	j := NewJoiner(paperContext())
	s := benchCorpus(60, 31)
	u := benchCorpus(60, 32)
	for _, method := range []pebble.Method{pebble.UFilter, pebble.AUHeuristic, pebble.AUDP} {
		for _, theta := range []float64{0.7, 0.8, 0.9} {
			want := tokensOracle(j, s, u, theta)
			if got := j.BruteForce(s, u, theta, nil); !reflect.DeepEqual(got, want) {
				t.Fatalf("%v θ=%v: BruteForce disagrees with tokens oracle: %d vs %d pairs",
					method, theta, len(got), len(want))
			}
			opts := Options{Theta: theta, Tau: 2, Method: method}
			ix := j.buildIndex(s, j.BuildOrder(s, u), opts, nil)
			got, _ := ix.probe(u, opts, 0)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v θ=%v: filtered join disagrees with tokens oracle: %d vs %d pairs",
					method, theta, len(got), len(want))
			}
		}
	}
}

// TestProbeRecordMatchesOracle checks single-record serving returns exactly
// the indexed records the raw similarity reaches θ with.
func TestProbeRecordMatchesOracle(t *testing.T) {
	j := NewJoiner(paperContext())
	s := benchCorpus(80, 41)
	ix := j.BuildIndex(s, Options{Theta: 0.8, Tau: 2, Method: pebble.AUDP})
	probes := benchCorpus(20, 42)
	for _, p := range probes {
		got := ix.ProbeRecord(p.Tokens)
		var want []QueryMatch
		for r := range s {
			if v := j.Calculator().SimilarityTokens(s[r].Tokens, p.Tokens); v >= 0.8 {
				want = append(want, QueryMatch{Record: r, Similarity: v})
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ProbeRecord(%v) = %v, want %v", p.Raw, got, want)
		}
	}
}
