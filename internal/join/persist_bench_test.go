package join

import (
	"sync"
	"testing"

	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/store"
	"github.com/aujoin/aujoin/internal/strutil"
)

// persistBench shares one corpus and one encoded snapshot across the
// persistence benchmarks, so the cold-build and restore numbers measure the
// same index.
var persistBench struct {
	once    sync.Once
	records []strutil.Record
	opts    Options
	encoded []byte
}

func persistBenchSetup(b *testing.B) {
	persistBench.once.Do(func() {
		persistBench.records = benchCorpus(4000, 42)
		persistBench.opts = Options{Theta: 0.8, Tau: 2, Method: pebble.AUDP}
		j := NewJoiner(paperContext())
		sx := j.BuildShardedIndex(persistBench.records, 4, persistBench.opts, DynamicOptions{})
		persistBench.encoded = sx.CaptureSnapshot().Encode()
	})
	if persistBench.encoded == nil {
		b.Fatal("persistence bench setup failed")
	}
}

// BenchmarkSnapshotColdBuild is the recovery baseline: re-ingesting the
// catalog from raw records, with signature selection and verification
// preparation run from scratch. The restore gate is the ratio of
// BenchmarkSnapshotRestore over this — machine-independent, like the other
// gated ratios.
func BenchmarkSnapshotColdBuild(b *testing.B) {
	persistBenchSetup(b)
	j := NewJoiner(paperContext())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.BuildShardedIndex(persistBench.records, 4, persistBench.opts, DynamicOptions{})
	}
}

// BenchmarkSnapshotRestore measures decode + reconstruction from the
// serialized snapshot: the cold-start path a durable daemon takes instead of
// re-ingesting.
func BenchmarkSnapshotRestore(b *testing.B) {
	persistBenchSetup(b)
	j := NewJoiner(paperContext())
	b.SetBytes(int64(len(persistBench.encoded)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := store.Decode(persistBench.encoded)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := j.RestoreShardedIndex(snap, DynamicOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotCapture measures the mutation-stall cost of a checkpoint:
// the atomic capture plus encode, the part that runs under every shard's
// write lock.
func BenchmarkSnapshotCapture(b *testing.B) {
	persistBenchSetup(b)
	j := NewJoiner(paperContext())
	sx := j.BuildShardedIndex(persistBench.records, 4, persistBench.opts, DynamicOptions{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(sx.CaptureSnapshot().Encode()) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}
