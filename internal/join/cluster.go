package join

import (
	"context"
	"fmt"
	"strings"

	"github.com/aujoin/aujoin/internal/core"
	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/strutil"
)

// This file holds the hooks the cluster layer builds on: a structured
// fan-out error, inserts with caller-assigned stable IDs, export of the
// live key-frequency table, and adoption of an externally built frozen
// order (the worker side of the coordinator's order-sync protocol).

// FanoutError reports a multi-branch fan-out that failed: which branches
// (in-process shards, or cluster workers) failed, and with what. Unwrap
// exposes the underlying errors, so errors.Is(err, context.Canceled) and
// friends see through it.
type FanoutError struct {
	// Label names the branch kind in messages: "shard" or "worker".
	Label string
	// Total is the fan-out width the failures are reported against.
	Total int
	// Failed holds the indexes of the failing branches, ascending, and
	// Errs their errors, parallel to Failed.
	Failed []int
	Errs   []error
}

func (e *FanoutError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "join: %d of %d %ss failed", len(e.Failed), e.Total, e.Label)
	for i, w := range e.Failed {
		sep := ": "
		if i > 0 {
			sep = "; "
		}
		fmt.Fprintf(&b, "%s%s %d: %v", sep, e.Label, w, e.Errs[i])
	}
	return b.String()
}

// Unwrap exposes the per-branch errors to errors.Is/errors.As.
func (e *FanoutError) Unwrap() []error { return e.Errs }

// newFanoutError folds a fan-out's per-branch error slice into nil (no
// failure) or one *FanoutError. When any branch failed for a reason of its
// own, sibling branches that merely observed the resulting cancellation are
// collateral and dropped from the report; when every failure IS a
// cancellation they are all kept (there is no primary cause to prefer).
func newFanoutError(label string, errs []error) error {
	real := false
	for _, err := range errs {
		if err != nil && err != context.Canceled {
			real = true
			break
		}
	}
	fe := &FanoutError{Label: label, Total: len(errs)}
	for w, err := range errs {
		if err == nil || (real && err == context.Canceled) {
			continue
		}
		fe.Failed = append(fe.Failed, w)
		fe.Errs = append(fe.Errs, err)
	}
	if len(fe.Failed) == 0 {
		return nil
	}
	return fe
}

// InsertBatchRecords appends records whose stable IDs the caller assigned —
// the cluster coordinator allocates IDs centrally so every replica of a
// group indexes byte-identical content under identical IDs. IDs must be
// non-negative and unique within the batch; reusing a live ID is the
// caller's protocol error (the routing hash would still send it to the
// right shard, but the duplicate would shadow the original in position
// maps), so replay protection belongs to the caller's sequencing layer.
func (sx *ShardedIndex) InsertBatchRecords(ids []int, raw []string) error {
	if len(ids) != len(raw) {
		return fmt.Errorf("join: %d ids for %d records", len(ids), len(raw))
	}
	if len(raw) == 0 {
		return nil
	}
	seen := make(map[int]struct{}, len(ids))
	for _, id := range ids {
		if id < 0 {
			return fmt.Errorf("join: negative record id %d", id)
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("join: duplicate record id %d in batch", id)
		}
		seen[id] = struct{}{}
	}
	sx.mu.Lock()
	for _, id := range ids {
		if id >= sx.nextID {
			sx.nextID = id + 1
		}
	}
	sx.mu.Unlock()

	groups := make([][]strutil.Record, len(sx.shards))
	for i, s := range raw {
		w := shardOf(ids[i], len(sx.shards))
		groups[w] = append(groups[w], strutil.NewRecord(ids[i], s))
	}
	sx.runShards(nonEmptyShards(len(groups), func(w int) bool { return len(groups[w]) > 0 }), func(w int) {
		sx.shards[w].insertRecords(groups[w])
	})
	sx.maybeRefreeze()
	return nil
}

// KeyFrequencies returns every pebble key over the index's current live
// records with its document frequency, in finalize order (frequency
// ascending, key ascending on ties) — the image an epoch-bump builder sums
// across groups to construct the next global frozen order. The live set is
// collected under every shard's writer lock (one atomic cut); the frequency
// count itself runs after the locks drop, since records are immutable.
func (sx *ShardedIndex) KeyFrequencies() ([]string, []int) {
	sx.refreezeMu.Lock()
	for _, sh := range sx.shards {
		sh.mu.Lock()
	}
	var flat []strutil.Record
	for _, sh := range sx.shards {
		live, _ := sh.liveLocked()
		flat = append(flat, live...)
	}
	for _, sh := range sx.shards {
		sh.mu.Unlock()
	}
	sx.refreezeMu.Unlock()

	order := sx.joiner.BuildOrder(flat)
	return order.FrequencyTable()
}

// AdoptOrder replaces the index's pebble order with an externally built
// frozen order — the worker side of a cluster epoch bump's prepare phase.
// The (keys, freqs) image must be in finalize order, as produced by
// KeyFrequencies (after cross-group summing on the builder). Every shard is
// rebuilt under the adopted order while all writer locks are held; readers
// never block — they are served the cached pre-adoption snapshot, exactly
// as during a self-triggered global re-finalize. Keys present in live
// records but missing from the image (a mutation that raced the builder's
// frequency collection) are interned into the adopted order's dynamic
// region first, so adoption is correct regardless of what the builder saw;
// the interning is deterministic across replicas because replicas hold
// identical records in identical positions. After adoption the index never
// re-freezes on its own: order ownership has moved to the coordinator, and
// local rebuilds compact shards under the adopted order.
func (sx *ShardedIndex) AdoptOrder(keys []string, freqs []int) error {
	order, err := pebble.RestoreOrder(keys, freqs, nil)
	if err != nil {
		return err
	}
	sx.refreezeMu.Lock()
	defer sx.refreezeMu.Unlock()
	for _, sh := range sx.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range sx.shards {
			sh.mu.Unlock()
		}
	}()
	g := sx.gen.Load()
	// Cache the pre-adoption state for readers arriving mid-rebuild (the
	// views are one generation by construction: all writer locks are held).
	pre := make([]*View, len(sx.shards))
	for w, sh := range sx.shards {
		pre[w] = sh.Snapshot()
	}
	sx.lastView.Store(newShardedView(sx, g, pre))
	liveAll := make([][]strutil.Record, len(sx.shards))
	prepAll := make([][]*core.PreparedRecord, len(sx.shards))
	for w, sh := range sx.shards {
		liveAll[w], prepAll[w] = sh.liveLocked()
	}
	// Defensive intern: any live key the image lacks joins the dynamic
	// region before signatures are re-selected under the adopted order.
	var pebs [][]pebble.Pebble
	for w := range liveAll {
		for _, rec := range liveAll[w] {
			p, _ := sx.joiner.gen.Pebbles(rec.Tokens)
			pebs = append(pebs, p)
		}
	}
	order.InternDynamic(pebs...)
	nextGen := 1
	if g != nil {
		nextGen = g.id + 1
	}
	next := &orderGen{order: order, sel: pebble.NewSelector(sx.joiner.gen, order, sx.opts.Theta), id: nextGen}
	parallelFor(len(sx.shards), len(sx.shards), func(w int) {
		// Shards now share an externally owned order: local rebuilds must
		// compact under it rather than re-freeze a private one (a standalone
		// single-shard index flips modes here).
		sx.shards[w].sharedOrder = true
		sx.shards[w].refreezeLocked(order, next.id, liveAll[w], prepAll[w])
	})
	sx.gen.Store(next)
	sx.noRefreeze.Store(true)
	sx.planner.Reanchor()
	sx.lastView.Store(nil)
	sx.refreezes++
	return nil
}

// DisableRefreeze turns off self-triggered global re-finalizes: a cluster
// worker's order is owned by the coordinator's epoch protocol, so the index
// must never decide on its own to re-freeze (per-shard compaction rebuilds,
// which keep the order, stay enabled).
func (sx *ShardedIndex) DisableRefreeze() {
	sx.refreezeMu.Lock()
	sx.noRefreeze.Store(true)
	sx.refreezeMu.Unlock()
}
