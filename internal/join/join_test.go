package join

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/sim"
	"github.com/aujoin/aujoin/internal/strutil"
	"github.com/aujoin/aujoin/internal/synonym"
	"github.com/aujoin/aujoin/internal/taxonomy"
)

// paperContext reproduces the knowledge sources of Figure 1 plus a few more
// rules so that joins on the small test corpora have interesting matches.
func paperContext() *sim.Context {
	rules := synonym.NewRuleSet()
	rules.MustAdd("cake", "gateau", 1)
	rules.MustAdd("coffee shop", "cafe", 1)
	rules.MustAdd("db", "database", 0.9)
	tax := taxonomy.NewTree("Wikipedia")
	food := tax.MustAddChild(tax.Root(), "food")
	coffee := tax.MustAddChild(food, "coffee")
	drinks := tax.MustAddChild(coffee, "coffee drinks")
	tax.MustAddChild(drinks, "espresso")
	tax.MustAddChild(drinks, "latte")
	cake := tax.MustAddChild(food, "cake")
	tax.MustAddChild(cake, "apple cake")
	return sim.NewContext(rules, tax)
}

func collections() (s, t []strutil.Record) {
	s = strutil.NewCollection([]string{
		"coffee shop latte Helsingki",
		"apple cake bakery",
		"database systems course",
		"espresso machines shop",
		"unrelated record entirely",
	})
	t = strutil.NewCollection([]string{
		"espresso cafe Helsinki",
		"cake gateau bakery",
		"db systems course",
		"totally different thing",
	})
	return s, t
}

func pairSet(pairs []Pair) map[[2]int]bool {
	m := map[[2]int]bool{}
	for _, p := range pairs {
		m[[2]int{p.S, p.T}] = true
	}
	return m
}

func TestJoinMatchesBruteForce(t *testing.T) {
	ctx := paperContext()
	j := NewJoiner(ctx)
	s, u := collections()
	for _, theta := range []float64{0.6, 0.75, 0.85} {
		want := pairSet(j.BruteForce(s, u, theta, nil))
		for _, method := range []pebble.Method{pebble.UFilter, pebble.AUHeuristic, pebble.AUDP} {
			for _, tau := range []int{1, 2, 3} {
				if method == pebble.UFilter && tau > 1 {
					continue
				}
				got, stats := j.Join(s, u, Options{Theta: theta, Tau: tau, Method: method})
				if !reflect.DeepEqual(pairSet(got), want) {
					t.Errorf("θ=%v %v τ=%d: join results %v differ from brute force %v",
						theta, method, tau, pairSet(got), want)
				}
				if stats.Results != len(got) {
					t.Errorf("stats.Results = %d, want %d", stats.Results, len(got))
				}
				if stats.Candidates < len(got) {
					t.Errorf("candidates %d fewer than results %d", stats.Candidates, len(got))
				}
			}
		}
	}
}

func TestJoinFindsMixedSimilarityPair(t *testing.T) {
	ctx := paperContext()
	j := NewJoiner(ctx)
	s, u := collections()
	pairs, _ := j.Join(s, u, Options{Theta: 0.8, Tau: 2, Method: pebble.AUDP})
	found := false
	for _, p := range pairs {
		if p.S == 0 && p.T == 0 { // the POI pair of Figure 1
			found = true
			if p.Similarity < 0.8 {
				t.Errorf("POI pair similarity = %v, want ≥ 0.8", p.Similarity)
			}
		}
	}
	if !found {
		t.Error("the Figure 1 POI pair was not returned at θ = 0.8")
	}
}

func TestJoinFilteringReducesCandidates(t *testing.T) {
	ctx := paperContext()
	j := NewJoiner(ctx)
	s, u := collections()
	_, statsU := j.Join(s, u, Options{Theta: 0.8, Tau: 1, Method: pebble.UFilter})
	_, statsH := j.Join(s, u, Options{Theta: 0.8, Tau: 3, Method: pebble.AUHeuristic})
	_, statsD := j.Join(s, u, Options{Theta: 0.8, Tau: 3, Method: pebble.AUDP})
	total := len(s) * len(u)
	// On this tiny corpus the exact candidate counts between methods can go
	// either way (the AU filters keep longer signatures), so only check the
	// universal invariants here; the statistical candidate-reduction trend
	// is exercised on generated datasets in the experiments package.
	for _, st := range []Stats{statsU, statsH, statsD} {
		if st.Candidates > total {
			t.Errorf("candidates %d exceed cross product %d", st.Candidates, total)
		}
		if st.Candidates < st.Results {
			t.Errorf("candidates %d fewer than results %d", st.Candidates, st.Results)
		}
	}
	if statsU.ProcessedPairs <= 0 {
		t.Error("ProcessedPairs should be positive")
	}
	if statsU.AvgSignatureS <= 0 || statsU.AvgSignatureT <= 0 {
		t.Error("average signature lengths should be positive")
	}
	if statsU.TotalTime() <= 0 {
		t.Error("TotalTime should be positive")
	}
}

func TestSelfJoin(t *testing.T) {
	ctx := paperContext()
	j := NewJoiner(ctx)
	recs := strutil.NewCollection([]string{
		"coffee shop latte",
		"cafe latte",
		"apple cake",
		"cake gateau",
		"coffee shop latte", // duplicate of record 0
	})
	pairs, stats := j.SelfJoin(recs, Options{Theta: 0.7, Tau: 2, Method: pebble.AUDP})
	for _, p := range pairs {
		if p.S >= p.T {
			t.Errorf("self-join pair not ordered: %+v", p)
		}
	}
	// The duplicate records 0 and 4 must be found.
	if !pairSet(pairs)[[2]int{0, 4}] {
		t.Errorf("duplicate pair (0,4) missing from self-join results %v", pairs)
	}
	if stats.Results != len(pairs) {
		t.Errorf("stats.Results = %d, want %d", stats.Results, len(pairs))
	}
}

func TestJoinMeasureRestriction(t *testing.T) {
	ctx := paperContext()
	s, u := collections()
	// With Jaccard only, the POI pair should not reach θ = 0.8 (its
	// similarity relies on synonym and taxonomy relations).
	jJ := NewJoiner(ctx.WithMeasures(sim.SetJaccard))
	pairs, _ := jJ.Join(s, u, Options{Theta: 0.8, Tau: 1, Method: pebble.UFilter})
	if pairSet(pairs)[[2]int{0, 0}] {
		t.Error("Jaccard-only join should not match the POI pair at θ=0.8")
	}
	// The unified join does match it (checked in another test); the result
	// count of the restricted join must never exceed the unified one.
	jAll := NewJoiner(ctx)
	all, _ := jAll.Join(s, u, Options{Theta: 0.8, Tau: 1, Method: pebble.UFilter})
	if len(pairs) > len(all) {
		t.Errorf("restricted join found more pairs (%d) than unified (%d)", len(pairs), len(all))
	}
}

func TestJoinEmptyCollections(t *testing.T) {
	ctx := paperContext()
	j := NewJoiner(ctx)
	pairs, stats := j.Join(nil, nil, Options{Theta: 0.8, Tau: 2, Method: pebble.AUDP})
	if len(pairs) != 0 || stats.Candidates != 0 {
		t.Errorf("empty join returned %v / %+v", pairs, stats)
	}
	s, _ := collections()
	pairs, _ = j.Join(s, nil, Options{Theta: 0.8, Tau: 2, Method: pebble.AUDP})
	if len(pairs) != 0 {
		t.Errorf("join with empty right side returned %v", pairs)
	}
}

func TestJoinRandomisedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	vocab := []string{"coffee", "shop", "latte", "espresso", "cafe", "helsinki",
		"helsingki", "cake", "apple", "gateau", "bakery", "db", "database", "systems"}
	gen := func(n int) []strutil.Record {
		var raws []string
		for i := 0; i < n; i++ {
			l := 2 + rng.Intn(3)
			var toks []string
			for k := 0; k < l; k++ {
				toks = append(toks, vocab[rng.Intn(len(vocab))])
			}
			raws = append(raws, strutil.JoinTokens(toks))
		}
		return strutil.NewCollection(raws)
	}
	ctx := paperContext()
	j := NewJoiner(ctx)
	for trial := 0; trial < 3; trial++ {
		s := gen(20)
		u := gen(20)
		theta := 0.7
		want := pairSet(j.BruteForce(s, u, theta, nil))
		for _, tau := range []int{1, 2, 3, 4} {
			got, _ := j.Join(s, u, Options{Theta: theta, Tau: tau, Method: pebble.AUDP})
			if !reflect.DeepEqual(pairSet(got), want) {
				missing := 0
				for k := range want {
					if !pairSet(got)[k] {
						missing++
					}
				}
				t.Errorf("trial %d τ=%d: %d result pairs missing vs brute force", trial, tau, missing)
			}
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}
	if o.workers() <= 0 {
		t.Error("workers default should be positive")
	}
	if o.tau() != 1 {
		t.Errorf("tau default = %d, want 1", o.tau())
	}
	o = Options{Method: pebble.UFilter, Tau: 5}
	if o.tau() != 1 {
		t.Errorf("U-Filter must force τ=1, got %d", o.tau())
	}
	o = Options{Method: pebble.AUDP, Tau: 4, Workers: 2}
	if o.tau() != 4 || o.workers() != 2 {
		t.Error("explicit options not honoured")
	}
}

func TestParallelFor(t *testing.T) {
	n := 100
	out := make([]int, n)
	parallelFor(n, 4, func(i int) { out[i] = i * i })
	for i := range out {
		if out[i] != i*i {
			t.Fatalf("parallelFor missed index %d", i)
		}
	}
	// Small n runs inline.
	called := 0
	parallelFor(1, 8, func(i int) { called++ })
	if called != 1 {
		t.Errorf("inline run called %d times", called)
	}
	parallelFor(0, 8, func(i int) { t.Error("should not be called") })
}

func BenchmarkJoinSmall(b *testing.B) {
	ctx := paperContext()
	j := NewJoiner(ctx)
	s, u := collections()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Join(s, u, Options{Theta: 0.8, Tau: 2, Method: pebble.AUDP})
	}
}
