package join

import "sync/atomic"

// pipelineGoroutines counts the goroutines the join pipeline has spawned and
// not yet joined: parallel filter and verify workers, stream producers. The
// leak tests wait for it to settle to zero — unlike runtime.NumGoroutine(),
// which also counts runtime housekeeping and whatever other tests left
// running, so asserting on it raced with unrelated goroutines and flaked.
var pipelineGoroutines atomic.Int64

// PipelineGoroutines returns the number of join-pipeline goroutines
// currently in flight. The cluster layer's leak tests assert it settles to
// zero after a cancelled scatter-gather, the same discipline the in-process
// streaming tests apply.
func PipelineGoroutines() int64 { return pipelineGoroutines.Load() }

// goPipeline spawns fn on a goroutine tagged with the pipeline counter.
func goPipeline(fn func()) {
	pipelineGoroutines.Add(1)
	go func() {
		defer pipelineGoroutines.Add(-1)
		fn()
	}()
}
