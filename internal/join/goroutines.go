package join

import "sync/atomic"

// pipelineGoroutines counts the goroutines the join pipeline has spawned and
// not yet joined: parallel filter and verify workers, stream producers. The
// leak tests wait for it to settle to zero — unlike runtime.NumGoroutine(),
// which also counts runtime housekeeping and whatever other tests left
// running, so asserting on it raced with unrelated goroutines and flaked.
var pipelineGoroutines atomic.Int64

// goPipeline spawns fn on a goroutine tagged with the pipeline counter.
func goPipeline(fn func()) {
	pipelineGoroutines.Add(1)
	go func() {
		defer pipelineGoroutines.Add(-1)
		fn()
	}()
}
