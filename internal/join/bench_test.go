package join

import (
	"context"
	"math/rand"
	"testing"

	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/planner"
	"github.com/aujoin/aujoin/internal/strutil"
)

// benchCorpus generates a synthetic collection with heavy key overlap so the
// filtering stage has real posting lists to traverse.
func benchCorpus(n int, seed int64) []strutil.Record {
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{"coffee", "shop", "latte", "espresso", "cafe", "helsinki",
		"helsingki", "cake", "apple", "gateau", "bakery", "db", "database",
		"systems", "course", "machine", "learning", "market", "corner", "town"}
	raws := make([]string, n)
	for i := range raws {
		l := 3 + rng.Intn(3)
		toks := make([]string, l)
		for k := range toks {
			toks[k] = vocab[rng.Intn(len(vocab))]
		}
		raws[i] = strutil.JoinTokens(toks)
	}
	return strutil.NewCollection(raws)
}

// BenchmarkJoinFilterPhase measures the signature + filter stages only
// (FilterStats): the part of the pipeline the interned-ID refactor targets.
func BenchmarkJoinFilterPhase(b *testing.B) {
	j := NewJoiner(paperContext())
	s := benchCorpus(400, 1)
	t := benchCorpus(400, 2)
	opts := Options{Theta: 0.8, Tau: 2, Method: pebble.AUDP}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.FilterStats(s, t, opts)
	}
}

// BenchmarkJoinRS measures the full R×S join end to end.
func BenchmarkJoinRS(b *testing.B) {
	j := NewJoiner(paperContext())
	s := benchCorpus(400, 1)
	t := benchCorpus(400, 2)
	opts := Options{Theta: 0.8, Tau: 2, Method: pebble.AUDP}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Join(s, t, opts)
	}
}

// BenchmarkJoinSelf measures the self-join path.
func BenchmarkJoinSelf(b *testing.B) {
	j := NewJoiner(paperContext())
	s := benchCorpus(400, 3)
	opts := Options{Theta: 0.8, Tau: 2, Method: pebble.AUDP}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.SelfJoin(s, opts)
	}
}

// filterCorpus generates records of 10 distinct tokens drawn from a
// 100-word random vocabulary: every token's posting list is dense (≈ 40 of
// 400 records), so the candidate phase is bound by posting accumulation
// rather than by emitting the surviving pairs, which the τ=12 overlap
// constraint prunes hard.
func filterCorpus(n int, seed int64) []strutil.Record {
	rng := rand.New(rand.NewSource(seed))
	vocab := make([]string, 100)
	vrng := rand.New(rand.NewSource(99))
	for i := range vocab {
		word := make([]byte, 7)
		for c := range word {
			word[c] = byte('a' + vrng.Intn(26))
		}
		vocab[i] = string(word)
	}
	raws := make([]string, n)
	for i := range raws {
		toks := make([]string, 0, 10)
		for _, v := range rng.Perm(len(vocab))[:10] {
			toks = append(toks, vocab[v])
		}
		raws[i] = strutil.JoinTokens(toks)
	}
	return strutil.NewCollection(raws)
}

// filterPhaseBench measures the candidate phase alone on the 400×400
// workload: the index and probe signatures are built once, and each
// iteration re-runs the count filter over every probe record sequentially
// (workers=1, so the number is a per-core filter throughput, not a
// parallelism measure).
func filterPhaseBench(b *testing.B, classicLayout bool) {
	j := NewJoiner(paperContext())
	s := filterCorpus(400, 1)
	t := filterCorpus(400, 2)
	opts := Options{Theta: 0.8, Tau: 12, Method: pebble.AUDP, ClassicFilter: classicLayout}
	ix := j.buildIndex(s, j.BuildOrder(s, t), opts, nil)
	if !classicLayout && ix.inv.DenseKeys() == 0 {
		b.Fatal("bench corpus produced no dense posting lists; hybrid path unexercised")
	}
	sigs := j.signatures(t, ix.sel, opts.Method, ix.tau)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands, _, err := ix.candidates(context.Background(), sigs, false, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(cands) == 0 {
			b.Fatal("empty candidate set")
		}
	}
}

// BenchmarkFilterPhase is the hybrid (bitmap-block) candidate phase — the
// perf-gated headline number of the CI bench job.
func BenchmarkFilterPhase(b *testing.B) { filterPhaseBench(b, false) }

// BenchmarkFilterPhaseClassic is the same workload with the slice-only
// classic layout (Options.ClassicFilter), the baseline the hybrid speedup
// is quoted against.
func BenchmarkFilterPhaseClassic(b *testing.B) { filterPhaseBench(b, true) }

// BenchmarkVerify measures the verification phase alone on the 400×400
// workload: candidates are generated once, prepared records are built once
// per side, and each iteration re-verifies every candidate through the
// thresholded prepared engine (the target of the prepare-once refactor).
func BenchmarkVerify(b *testing.B) {
	j := NewJoiner(paperContext())
	s := benchCorpus(400, 1)
	t := benchCorpus(400, 2)
	opts := Options{Theta: 0.8, Tau: 2, Method: pebble.AUDP}
	ix := j.buildIndex(s, j.BuildOrder(s, t), opts, nil)
	sigs := j.signatures(t, ix.sel, opts.Method, ix.tau)
	prepT := prepareRecords(t, ix.calc)
	cands, _, _ := ix.candidates(context.Background(), sigs, false, opts.workers())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.verify(s, t, ix.prepared, prepT, cands, ix.calc, opts)
	}
}

// BenchmarkJoinSeq measures the streaming join on a result-heavy workload
// (~120k matches): matches are consumed as yielded, never buffered, so the
// reported allocs/op pin the streaming path's memory contract against
// BenchmarkJoinBatch (same workload through batch Join, which additionally
// buffers and sorts the full result).
func BenchmarkJoinSeq(b *testing.B) {
	j := NewJoiner(paperContext())
	s := denseCorpus(600, 3, 5)
	t := denseCorpus(600, 3, 6)
	opts := Options{Theta: 0.7, Tau: 2, Method: pebble.AUDP}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		for _, err := range j.JoinSeq(context.Background(), s, t, opts) {
			if err != nil {
				b.Fatal(err)
			}
			count++
		}
		if count == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkJoinBatch is BenchmarkJoinSeq's baseline: the identical workload
// through the buffering batch Join.
func BenchmarkJoinBatch(b *testing.B) {
	j := NewJoiner(paperContext())
	s := denseCorpus(600, 3, 5)
	t := denseCorpus(600, 3, 6)
	opts := Options{Theta: 0.7, Tau: 2, Method: pebble.AUDP}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairs, _ := j.Join(s, t, opts)
		if len(pairs) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkQuery measures single-record serving against a resident Index:
// signature, count filter, query preparation and thresholded verification
// per ProbeRecord call.
func BenchmarkQuery(b *testing.B) {
	j := NewJoiner(paperContext())
	s := benchCorpus(400, 1)
	opts := Options{Theta: 0.8, Tau: 2, Method: pebble.AUDP}
	ix := j.BuildIndex(s, opts)
	probe := benchCorpus(64, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.ProbeRecord(probe[i%len(probe)].Tokens)
	}
}

// verifyTopKBench serves top-k queries against a 2000-record dynamic index
// (large candidate sets, so the verify phase dominates); opts toggles the
// rising-threshold scheduler and the msim memo.
func verifyTopKBench(b *testing.B, opts Options) {
	j := NewJoiner(paperContext())
	s := benchCorpus(2000, 1)
	v := j.BuildDynamicIndex(s, opts, DynamicOptions{}).Snapshot()
	// Keep only probes with a non-empty answer so every timed op exercises
	// the verify phase (a θ=0.8 threshold leaves some of the raw pool
	// matchless, and those would measure the count filter instead).
	var probe [][]string
	for _, r := range benchCorpus(64, 9) {
		if len(v.QueryTopK(r.Tokens, 10)) > 0 {
			probe = append(probe, r.Tokens)
		}
	}
	if len(probe) < 16 {
		b.Fatalf("only %d productive probes", len(probe))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := v.QueryTopK(probe[i%len(probe)], 10); len(out) == 0 {
			b.Fatal("empty top-k result")
		}
	}
}

// BenchmarkVerifyTopK is the benchgate-gated top-k serving number: the
// rising-floor scheduler prunes candidates whose cheap upper bound cannot
// reach the heap's k-th similarity, and the memo reuses segment-pair msim
// values across candidates of one query.
func BenchmarkVerifyTopK(b *testing.B) {
	verifyTopKBench(b, Options{Theta: 0.8, Tau: 2, Method: pebble.AUDP})
}

// BenchmarkVerifyTopKNoPrune is the same workload through the plain verify
// loop (Options.NoVerifyPrune + NoVerifyMemo) — the ratio sibling that makes
// the gate machine-independent.
func BenchmarkVerifyTopKNoPrune(b *testing.B) {
	verifyTopKBench(b, Options{Theta: 0.8, Tau: 2, Method: pebble.AUDP,
		NoVerifyPrune: true, NoVerifyMemo: true})
}

// mixedProbes builds the bimodal short/long probe pool of the planner
// benchmarks: half 2-token fragments of dense vocabulary (where a small τ
// over-admits little and saves posting scans), half three records
// concatenated (long signatures where the build-time configuration pays for
// every prefix token).
func mixedProbes(n int, seed int64) []strutil.Record {
	rng := rand.New(rand.NewSource(seed))
	pool := benchCorpus(4*n, seed+1)
	raws := make([]string, n)
	for i := range raws {
		if i%2 == 0 {
			toks := pool[rng.Intn(len(pool))].Tokens
			raws[i] = strutil.JoinTokens(toks[:2])
		} else {
			var toks []string
			for k := 0; k < 3; k++ {
				toks = append(toks, pool[rng.Intn(len(pool))].Tokens...)
			}
			raws[i] = strutil.JoinTokens(toks)
		}
	}
	return strutil.NewCollection(raws)
}

// BenchmarkPlanOverhead measures the planner's marginal work per query —
// the τ-sweep of heuristic cuts, the posting-mass prefix sums, the cost
// model and the final signature selection — on prepared probes (query
// preparation is paid identically by the fixed path) and enforces the
// < 50µs/op planning budget the adaptive path promises.
func BenchmarkPlanOverhead(b *testing.B) {
	j := NewJoiner(paperContext())
	s := benchCorpus(2000, 1)
	opts := Options{Theta: 0.8, Tau: 3, Method: pebble.AUDP}
	v := j.BuildDynamicIndex(s, opts, DynamicOptions{}).Snapshot()
	probe := mixedProbes(64, 9)
	pres := make([]pebble.Presig, len(probe))
	for i, rec := range probe {
		pres[i] = v.base.sel.Prepare(rec.Tokens)
	}
	pl := v.dx.planner
	// Steady state is the loop a serving process actually runs: every plan
	// is observed, so the latency cells are measured and greedy exploitation
	// carries the traffic (with the 1-in-16 exploration slot). Without the
	// feedback half the forced initial sampling never completes and every
	// plan re-measures an arm — a state no real workload stays in.
	observe := func(d planner.Decision) { pl.Observe(d, 8, 8, 1, 8_000, 100_000) }
	for i := 0; i < 256; i++ {
		observe(pl.Plan(v.base.sel, pres[i%len(pres)], v.base.inv.ListLength, len(v.records)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := pl.Plan(v.base.sel, pres[i%len(pres)], v.base.inv.ListLength, len(v.records))
		if !d.Planned {
			b.Fatal("plan fell back in the overhead benchmark")
		}
		observe(d)
	}
	b.StopTimer()
	if ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N); ns > 50_000 {
		b.Fatalf("planning overhead %.0f ns/op exceeds the 50µs budget", ns)
	}
}

// queryPlanBench serves the bimodal workload single-record at a time under
// one planning mode; BenchmarkQueryPlanned / BenchmarkQueryFixed are the
// benchgate-gated pair whose ratio pins the planner's latency win.
func queryPlanBench(b *testing.B, qo QueryOpts) {
	j := NewJoiner(paperContext())
	s := benchCorpus(2000, 1)
	opts := Options{Theta: 0.8, Tau: 3, Method: pebble.AUDP}
	v := j.BuildDynamicIndex(s, opts, DynamicOptions{}).Snapshot()
	probe := mixedProbes(64, 9)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.ProbeRecordCtx(ctx, probe[i%len(probe)].Tokens, qo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryPlanned is the adaptive path: every probe is planned.
func BenchmarkQueryPlanned(b *testing.B) { queryPlanBench(b, QueryOpts{}) }

// BenchmarkQueryFixed is the same workload pinned to the build-time
// configuration (the pre-planner behaviour).
func BenchmarkQueryFixed(b *testing.B) { queryPlanBench(b, QueryOpts{Plan: PlanFixed}) }

// BenchmarkQuerySharded is BenchmarkQuery against a GOMAXPROCS-sharded
// index: the same single-record workload, served through the fan-out
// snapshot (one signature selection, per-shard count filters, merged
// results).
func BenchmarkQuerySharded(b *testing.B) {
	j := NewJoiner(paperContext())
	s := benchCorpus(400, 1)
	opts := Options{Theta: 0.8, Tau: 2, Method: pebble.AUDP}
	sx := j.BuildShardedIndex(s, 0, opts, DynamicOptions{})
	probe := benchCorpus(64, 9)
	v := sx.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.ProbeRecord(probe[i%len(probe)].Tokens)
	}
}
