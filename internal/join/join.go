// Package join implements the unified string similarity join of Section 3:
// filter-and-verification joins that generate pebble signatures for both
// collections, find candidate pairs sharing enough signature pebbles
// (Algorithm 3 for U-Filter, Algorithm 6 for AU-Filter), and verify the
// survivors with the unified similarity measure of internal/core.
//
// The pipeline is built once and probed many times: BuildIndex interns
// every pebble into a dense uint32 ID (global frequency order), selects
// signatures, and materialises the ID-indexed inverted index; Probe,
// ProbeRecord and SelfJoin then generate candidates with per-probe-record
// count arrays (classic count filtering) — no string hashing and no
// map[pair]int in the hot path. Join and SelfJoin are thin compositions of
// these stages, and FilterProfile re-derives signatures for many τ values
// from one prepared pebble set (used by the Section 4 estimator).
//
// DynamicIndex extends the pipeline to online serving: the frozen base
// Index plus immutable delta segments for inserted records, a tombstone
// bitmap for removed ones, and snapshot Views published by atomic pointer
// swap so queries run lock-free while the catalog mutates (the paper fixes
// both collections up front; the dynamic layer is this implementation's
// extension for the serving workload — see ARCHITECTURE.md).
package join

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/aujoin/aujoin/internal/core"
	"github.com/aujoin/aujoin/internal/invindex"
	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/sim"
	"github.com/aujoin/aujoin/internal/strutil"
)

// Pair is one join result: the identifiers of the matched records and their
// unified similarity.
type Pair struct {
	S, T       int
	Similarity float64
}

// Stats records what happened during one join execution; the experiment
// harness uses it to regenerate the paper's tables and figures.
type Stats struct {
	// SignatureTime, FilterTime and VerifyTime are the wall-clock durations
	// of signature generation + indexing, candidate generation, and
	// verification — elapsed time per stage, NOT CPU time summed across
	// workers or shards. A stage that runs W workers (or fans out across N
	// shards) for d seconds reports d, not W·d; the three values therefore
	// add up to the end-to-end latency a caller observed, and comparing them
	// across runs with different worker counts compares wall-clock speed,
	// not total work.
	SignatureTime time.Duration
	FilterTime    time.Duration
	VerifyTime    time.Duration
	// ProcessedPairs is T_τ of the cost model: the number of (S, T)
	// occurrences touched while traversing common posting lists. For
	// self-joins this counts each unordered pair at most once (mirrored and
	// diagonal pairs are never generated).
	ProcessedPairs int64
	// Candidates is V_τ: the number of distinct pairs that reached
	// verification (distinct unordered pairs for self-joins).
	Candidates int
	// ShardCandidates breaks Candidates down per shard on a sharded probe
	// (ShardedView.Probe across ≥ 2 shards); its entries sum to Candidates.
	// It is nil on unsharded paths.
	ShardCandidates []int
	// BitsetTokens and SliceTokens split the probe-token lookups of the
	// filter stage by posting representation: tokens whose base posting list
	// was served from the packed bitmap form versus the classic sorted
	// slice. Their sum is the number of (probe record, known token) lookups;
	// a zero BitsetTokens means the hybrid layout never engaged (classic
	// filter, or no list reached the density cutoff).
	BitsetTokens int64
	SliceTokens  int64
	// Results is the number of pairs whose unified similarity reached θ.
	Results int
	// VerifiedCandidates counts the candidates whose msim matrix was actually
	// computed: Candidates minus the pairs the O(1) partition-size bound (or
	// the rising top-k floor) rejected before any segment work.
	VerifiedCandidates int64
	// PrunedByBound counts the candidates skipped by those sound upper
	// bounds. VerifiedCandidates + PrunedByBound ≤ Candidates (a candidate
	// with out-of-range ids counts as neither).
	PrunedByBound int64
	// MemoHits counts segment-pair msim evaluations answered from the
	// per-worker memo instead of being recomputed.
	MemoHits int64
	// PlanTau is the overlap constraint the adaptive planner picked for this
	// probe batch (0 on unplanned paths — fixed configuration or static
	// Index probes).
	PlanTau int
	// AvgSignatureS / AvgSignatureT are the mean signature lengths.
	AvgSignatureS float64
	AvgSignatureT float64
}

// TotalTime returns the end-to-end join time recorded in the stats.
func (s Stats) TotalTime() time.Duration {
	return s.SignatureTime + s.FilterTime + s.VerifyTime
}

// Options configures a join execution.
type Options struct {
	// Theta is the join threshold θ ∈ [0, 1].
	Theta float64
	// Tau is the overlap constraint τ ≥ 1 (ignored by the U-Filter method,
	// which always uses 1).
	Tau int
	// Method selects the signature-selection algorithm.
	Method pebble.Method
	// Workers is the number of goroutines used for signature generation,
	// candidate filtering and verification; 0 means GOMAXPROCS.
	Workers int
	// Calculator overrides the unified-similarity calculator; nil means a
	// default calculator over the joiner's context.
	Calculator *core.Calculator
	// ClassicFilter disables the hybrid bitmap posting layout: every
	// posting list stays in sorted-slice form and the count filter runs
	// entry-at-a-time. Candidate sets are identical either way (the
	// property tests pin this); the toggle exists as the baseline for
	// benchmarks and the equivalence tests themselves.
	ClassicFilter bool
	// Plan selects the index-wide planning default for dynamic and sharded
	// indexes: PlanAuto (zero value) installs the adaptive per-query
	// planner, PlanFixed disables it entirely and pins the build-time
	// Method/Tau on every request (today's pre-planner behaviour). Static
	// Index probes are always fixed.
	Plan PlanMode
	// NoVerifyPrune disables the rising-threshold verify scheduler on top-k
	// paths: candidates are verified in candidate order at the fixed θ, as
	// before PR 9. Results are bit-identical either way (the property tests
	// pin this); the toggle is the baseline for those tests and benchmarks.
	NoVerifyPrune bool
	// NoVerifyMemo disables the per-worker msim memo. Same contract: results
	// are bit-identical, the toggle exists for equivalence tests and as an
	// escape hatch for memory-constrained deployments.
	NoVerifyMemo bool
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) tau() int {
	if o.Method == pebble.UFilter || o.Tau < 1 {
		return 1
	}
	return o.Tau
}

// Joiner joins two collections of records under a fixed similarity context.
type Joiner struct {
	Ctx *sim.Context

	gen  *pebble.Generator
	calc *core.Calculator
}

// NewJoiner creates a Joiner for the given context.
func NewJoiner(ctx *sim.Context) *Joiner {
	if ctx != nil && ctx.Tax != nil {
		// Build the LCA index up front so that concurrent verification
		// goroutines only ever read the taxonomy.
		ctx.Tax.Finalize()
	}
	return &Joiner{Ctx: ctx, gen: pebble.NewGenerator(ctx), calc: core.NewCalculator(ctx)}
}

// Generator exposes the pebble generator (shared with the estimator).
func (j *Joiner) Generator() *pebble.Generator { return j.gen }

// Calculator exposes the unified-similarity calculator.
func (j *Joiner) Calculator() *core.Calculator { return j.calc }

// BuildOrder constructs the global pebble frequency order over the given
// collections.
func (j *Joiner) BuildOrder(collections ...[]strutil.Record) *pebble.Order {
	order := pebble.NewOrder()
	for _, coll := range collections {
		for _, rec := range coll {
			p, _ := j.gen.Pebbles(rec.Tokens)
			order.Add(p)
		}
	}
	return order
}

// Index is a prebuilt probe target: the interned pebble order, the
// signatures and prepared verification records of the indexed collection,
// and the ID-indexed inverted index, all computed once. An Index is safe for
// concurrent probing and is the build-once/probe-many half of the join
// pipeline: repeated joins against the same collection (or a stream of
// single-record queries) skip order construction, signature selection,
// index building and verification preparation entirely. Holding an Index
// therefore costs the prepared records' memory (segment tables, gram sets
// and rule/taxonomy derivations per record) on top of the inverted index.
type Index struct {
	joiner *Joiner
	opts   Options
	tau    int
	calc   *core.Calculator

	order    *pebble.Order
	sel      *pebble.Selector
	records  []strutil.Record
	sigs     []pebble.Signature
	prepared []*core.PreparedRecord
	inv      *invindex.Index

	// sigIDs is the compact signature form of a snapshot-restored index:
	// per-record interned-ID multisets, aliasing the decoded snapshot's
	// buffers. A restored index sets sigIDs and leaves sigs nil — the
	// indexed side of the pipeline only ever reads signature IDs and
	// lengths (posting lists, count filter, capture), and a []pebble.Pebble
	// materialization of millions of entries just to carry a uint32 each
	// dominated restore time. Self-join entry points (which read full
	// signatures) are only reachable through freshly built indexes, where
	// sigs is always populated. Use sigLenAt/appendSigIDsAt instead of
	// touching either field directly.
	sigIDs [][]uint32

	// BuildTime is the wall-clock duration of order construction, signature
	// selection, inverted-index building and verification preparation.
	BuildTime time.Duration
	avgSig    float64

	scratch sync.Pool // *probeScratch, reused across ProbeRecord calls
}

// probeScratch is the per-worker probe state: the block accumulator holding
// the arena-allocated overlap counters and touched list, and the
// verification scratch of the prepared similarity engine. merged collects
// shard-remapped candidate positions when a sharded view fans one probe
// record out across shard filters (each shard reuses the accumulator, so
// survivors are staged here).
type probeScratch struct {
	acc    *invindex.Accumulator
	merged []int32
	sim    *core.Scratch
	// ubs is the verify scheduler's ordering arena: candidates paired with
	// their O(1) similarity upper bound, sorted best-first on top-k paths.
	ubs []candUB
}

// candUB pairs a candidate record position with its partition-size-ratio
// upper bound, the sort key of the rising-threshold verify scheduler.
type candUB struct {
	r  int32
	ub float64
}

// scratchFromPool borrows a probe scratch from pool (allocating on a cold
// pool) with its accumulator arena sized for numRecords. A nil pool yields
// an ephemeral scratch.
func scratchFromPool(pool *sync.Pool, numRecords int) *probeScratch {
	var sc *probeScratch
	if pool != nil {
		sc, _ = pool.Get().(*probeScratch)
	}
	if sc == nil {
		sc = &probeScratch{acc: invindex.NewAccumulator()}
	}
	sc.acc.Reset(numRecords)
	return sc
}

// release returns a scratch to its pool (no-op for ephemeral scratches).
func (sc *probeScratch) release(pool *sync.Pool) {
	if pool != nil {
		pool.Put(sc)
	}
}

// simScratch lazily builds the similarity scratch of the verification step
// (candidate-only paths never need one).
func (sc *probeScratch) simScratch() *core.Scratch {
	if sc.sim == nil {
		sc.sim = core.NewScratch()
	}
	return sc.sim
}

// filterTally aggregates the observability counters of the filter stage:
// postings is T_τ of the cost model (posting entries and bitmap bits
// accumulated), bitsetTokens/sliceTokens split the token lookups by posting
// representation.
type filterTally struct {
	postings     int64
	bitsetTokens int64
	sliceTokens  int64
}

func (t *filterTally) add(o filterTally) {
	t.postings += o.postings
	t.bitsetTokens += o.bitsetTokens
	t.sliceTokens += o.sliceTokens
}

// BuildIndex computes the global pebble order of the records, selects their
// signatures and builds the inverted index under the given options
// (Options.Tau and Options.Theta are fixed at build time; AutoTau-style
// re-tuning requires a rebuild).
func (j *Joiner) BuildIndex(records []strutil.Record, opts Options) *Index {
	return j.buildIndex(records, j.BuildOrder(records), opts, nil)
}

// buildIndex builds an Index over records with an externally supplied order
// (Join uses an order spanning both collections). A non-nil prepared slice
// supplies ready-made verification records positionally (preparation is
// order-independent, so the dynamic index's rebuild passes the survivors'
// records through unchanged instead of re-deriving them).
func (j *Joiner) buildIndex(records []strutil.Record, order *pebble.Order, opts Options, prepared []*core.PreparedRecord) *Index {
	start := time.Now()
	tau := opts.tau()
	calc := j.calcFor(opts)
	sel := pebble.NewSelector(j.gen, order, opts.Theta)
	sigs := j.signatures(records, sel, opts.Method, tau)
	inv := invindex.New(order.NumKeys())
	totalLen := 0
	var ids []uint32
	for i := range sigs {
		ids = appendSignatureIDs(ids[:0], sigs[i])
		inv.Add(i, ids)
		totalLen += sigs[i].Len()
	}
	hybridizeIndex(inv, order, opts)
	if prepared == nil {
		prepared = prepareRecords(records, calc)
	}
	ix := &Index{
		joiner:   j,
		opts:     opts,
		tau:      tau,
		calc:     calc,
		order:    order,
		sel:      sel,
		records:  records,
		sigs:     sigs,
		prepared: prepared,
		inv:      inv,
	}
	if len(records) > 0 {
		ix.avgSig = float64(totalLen) / float64(len(records))
	}
	ix.BuildTime = time.Since(start)
	return ix
}

// minBitsetList is the floor of the hybrid density cutoff: below this list
// length the slice walk beats the fixed per-word costs of the bitmap path
// regardless of corpus size.
const minBitsetList = 16

// hybridCutoff is the density cutoff of the hybrid posting layout for a
// corpus of numRecords records: lists at least this long (≈ 1/64 of the
// corpus, i.e. averaging one set bit per bitmap word, floored at
// minBitsetList) move to packed bitmap form.
func hybridCutoff(numRecords int) int {
	c := numRecords >> 6
	if c < minBitsetList {
		c = minBitsetList
	}
	return c
}

// hybridizeIndex applies the hybrid posting conversion to a freshly built
// inverted index unless the options pin the classic layout. The order's
// maximum document frequency upper-bounds every frozen key's list length,
// so when it cannot reach the cutoff the conversion scan is skipped
// entirely; an order with a dynamic region has stale frequencies (inserted
// records are uncounted), so the scan runs unconditionally there — a missed
// skip costs one pass over the postings, never correctness.
func hybridizeIndex(inv *invindex.Index, order *pebble.Order, opts Options) {
	if opts.ClassicFilter || inv.Records() == 0 {
		return
	}
	cut := hybridCutoff(inv.Records())
	if order.MaxFrequency() < cut && order.DynamicCount() == 0 {
		return
	}
	inv.Hybridize(cut)
}

// Records returns the indexed collection.
func (ix *Index) Records() []strutil.Record { return ix.records }

// Order exposes the interned global order the index was built with.
func (ix *Index) Order() *pebble.Order { return ix.order }

// AvgSignature returns the mean signature length of the indexed records.
func (ix *Index) AvgSignature() float64 { return ix.avgSig }

// Probe joins a probe collection against the prebuilt index and returns
// the matching (indexed, probe) pairs sorted by identifiers. The reported
// SignatureTime covers only the probe side — the build cost is paid once in
// BuildTime.
func (ix *Index) Probe(records []strutil.Record) ([]Pair, Stats) {
	return ix.probe(records, ix.opts, 0)
}

// SelfJoin joins the indexed collection with itself, returning each
// unordered pair (i < j) exactly once. Candidate generation walks only
// postings of records preceding the probe record, so mirrored and diagonal
// pairs are never materialised and Stats counts each unordered pair once.
func (ix *Index) SelfJoin() ([]Pair, Stats) {
	return ix.probeSignatures(ix.records, ix.sigs, ix.prepared, ix.opts, true, ix.BuildTime)
}

// probe generates probe-side signatures and prepared verification records
// and delegates to probeSignatures. extraSigTime is folded into the reported
// SignatureTime (the legacy Join entry points count index building there),
// as is the probe-side preparation — both are per-record preprocessing paid
// once per probe collection.
func (ix *Index) probe(records []strutil.Record, opts Options, extraSigTime time.Duration) ([]Pair, Stats) {
	start := time.Now()
	sigs := ix.joiner.signatures(records, ix.sel, opts.Method, ix.tau)
	prep := prepareRecords(records, ix.calc)
	return ix.probeSignatures(records, sigs, prep, opts, false, extraSigTime+time.Since(start))
}

// probeSignatures runs candidate generation and verification for
// ready-made probe signatures and prepared records.
func (ix *Index) probeSignatures(records []strutil.Record, sigs []pebble.Signature, prep []*core.PreparedRecord, opts Options, self bool, sigTime time.Duration) ([]Pair, Stats) {
	return runProbeStages(ix.calc, opts, ix.target(self), records, sigs, prep, self, sigTime)
}

// target reduces the index to the probeTarget the shared probe stages need.
func (ix *Index) target(self bool) probeTarget {
	return probeTarget{
		records:  ix.records,
		prepared: ix.prepared,
		avgSig:   ix.avgSig,
		candidates: func(ctx context.Context, sigs []pebble.Signature, workers int) ([]pairKey, filterTally, error) {
			return ix.candidates(ctx, sigs, self, workers)
		},
	}
}

// probeTarget is the indexed side of a probe — a static Index or a dynamic
// snapshot View — reduced to what the shared probe stages need.
type probeTarget struct {
	records    []strutil.Record
	prepared   []*core.PreparedRecord
	avgSig     float64
	candidates func(ctx context.Context, sigs []pebble.Signature, workers int) ([]pairKey, filterTally, error)
}

// runProbeStages is the batch form of the streaming pipeline: it collects
// every emitted pair from runProbeStream and orders the result by (S, T)
// identifiers. It never cancels, so the returned statistics are complete.
func runProbeStages(calc *core.Calculator, opts Options, tgt probeTarget, records []strutil.Record, sigs []pebble.Signature, prep []*core.PreparedRecord, self bool, sigTime time.Duration) ([]Pair, Stats) {
	var results []Pair
	stats, _ := runProbeStream(context.Background(), calc, opts, tgt, records, sigs, prep, self, sigTime, func(p Pair) bool {
		results = append(results, p)
		return true
	})
	sort.Slice(results, func(a, b int) bool {
		if results[a].S != results[b].S {
			return results[a].S < results[b].S
		}
		return results[a].T < results[b].T
	})
	return results, stats
}

// QueryMatch is one result of a single-record probe: an indexed record and
// its unified similarity to the query.
type QueryMatch struct {
	Record     int
	Similarity float64
}

// ProbeRecord runs the full filter-and-verify pipeline for one tokenised
// query against the prebuilt index and returns the matching indexed records
// in ascending record order. The query is prepared once and verified against
// the index's prepared records through the thresholded engine with pooled
// scratch, so a query-serving workload allocates only for the query
// preparation and its results.
func (ix *Index) ProbeRecord(tokens []string) []QueryMatch {
	if len(tokens) == 0 {
		// No tokens means a zero-signature probe that could never reach the
		// τ-overlap bar; return empty without walking the index.
		return nil
	}
	sig := ix.sel.Signature(tokens, ix.opts.Method, ix.tau)
	sc := scratchFromPool(&ix.scratch, len(ix.records))
	cands, _ := countFilterRecord(ix.inv, sig, ix.tau, len(ix.records), sc)
	var out []QueryMatch
	if len(cands) > 0 {
		pq := ix.calc.Prepare(tokens)
		sim := sc.simScratch()
		sim.DisableMemo = ix.opts.NoVerifyMemo
		for _, r := range cands {
			if v, ok := ix.calc.VerifyPrepared(ix.prepared[r], pq, ix.opts.Theta, sim); ok {
				out = append(out, QueryMatch{Record: int(r), Similarity: v})
			}
		}
	}
	sc.release(&ix.scratch)
	sort.Slice(out, func(a, b int) bool { return out[a].Record < out[b].Record })
	return out
}

// candidates runs count filtering of probe signatures against the index.
func (ix *Index) candidates(ctx context.Context, sigs []pebble.Signature, self bool, workers int) ([]pairKey, filterTally, error) {
	return countFilterCandidates(ctx, ix.inv, len(ix.records), sigs, ix.tau, self, workers, &ix.scratch)
}

// countFilterCandidates runs parallel count filtering of the probe
// signatures against an inverted index over numRecords records, returning
// every (indexed, probe) pair whose signature-pebble overlap reaches τ,
// plus the filter tally (T_τ and the representation split). In self mode
// only postings of records preceding the probe record are counted, so
// mirrored and diagonal pairs never appear. Worker scratch is borrowed from
// pool (nil for ephemeral scratch).
func countFilterCandidates(ctx context.Context, inv *invindex.Index, numRecords int, sigs []pebble.Signature, tau int, self bool, workers int, pool *sync.Pool) ([]pairKey, filterTally, error) {
	return parallelCandidates(ctx, len(sigs), numRecords, workers, pool, func(sc *probeScratch, t int) ([]int32, filterTally) {
		limit := numRecords
		if self {
			limit = t
		}
		return countFilterRecord(inv, sigs[t], tau, limit, sc)
	})
}

// parallelCandidates is the shared driver of parallel candidate
// generation: it runs record(sc, t) for every probe record t in [0, n)
// across the given number of workers (GOMAXPROCS when ≤ 0), each with a
// pooled probe scratch whose arena is sized to numRecords, and merges the
// per-worker candidate chunks and filter tallies. The static count filter
// and the dynamic snapshot filter differ only in the record callback.
// Workers check ctx between probe records; on cancellation the partial
// candidate set is discarded and the context error returned.
func parallelCandidates(ctx context.Context, n, numRecords, workers int, pool *sync.Pool, record func(sc *probeScratch, t int) ([]int32, filterTally)) ([]pairKey, filterTally, error) {
	var tally filterTally
	if n == 0 || numRecords == 0 {
		return nil, tally, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	type chunk struct {
		cands []pairKey
		tally filterTally
	}
	chunks := make([]chunk, workers)
	run := func(w, start, step int) {
		sc := scratchFromPool(pool, numRecords)
		var out []pairKey
		var sum filterTally
		for t := start; t < n; t += step {
			if ctx.Err() != nil {
				break
			}
			recs, ft := record(sc, t)
			sum.add(ft)
			for _, r := range recs {
				out = append(out, pairKey{int(r), t})
			}
		}
		sc.release(pool)
		chunks[w] = chunk{out, sum}
	}
	if workers == 1 {
		run(0, 0, 1)
	} else {
		// Strided assignment: in self mode the work per probe record grows
		// linearly with its index (only postings < t are counted), so
		// contiguous chunks would make the last worker the straggler.
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			w := w
			goPipeline(func() {
				defer wg.Done()
				run(w, w, workers)
			})
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, tally, err
	}
	var cands []pairKey
	total := 0
	for i := range chunks {
		total += len(chunks[i].cands)
	}
	cands = make([]pairKey, 0, total)
	for i := range chunks {
		cands = append(cands, chunks[i].cands...)
		tally.add(chunks[i].tally)
	}
	return cands, tally, nil
}

// countFilterRecord is the hybrid count filter for one probe record: for
// every distinct interned ID of the probe signature (with its
// multiplicity), it folds the ID's posting list — word-parallel through the
// block accumulator for bitmap-form lists, entry-at-a-time for slice-form
// lists — into per-record overlap counters, considering only indexed
// records < limit. It returns the records whose overlap reached τ (aliasing
// the accumulator arena, valid until the next call) and the filter tally.
// The counters are left zeroed for reuse.
func countFilterRecord(inv *invindex.Index, sig pebble.Signature, tau, limit int, sc *probeScratch) ([]int32, filterTally) {
	peb := sig.Pebbles
	acc := sc.acc
	acc.Begin(tau)
	var tally filterTally
	for a := 0; a < len(peb); {
		id := peb[a].ID
		b := a + 1
		for b < len(peb) && peb[b].ID == id {
			b++
		}
		mult := int32(b - a)
		a = b
		if id == pebble.NoID {
			continue // unknown key: no indexed record can carry it
		}
		if bs := inv.Bitset(id); bs != nil {
			tally.bitsetTokens++
			tally.postings += acc.AddBitset(bs, mult, limit)
			if res := bs.Residual(); len(res) != 0 {
				if limit < inv.Records() {
					cut := sort.Search(len(res), func(k int) bool { return res[k].Record >= limit })
					res = res[:cut]
				}
				// The residual carries only the surplus counts of records
				// whose bitmap bit was already accumulated (and already
				// tallied as processed postings), so its entries add overlap
				// but no new T_τ cost.
				acc.AddPostings(res, mult)
			}
			continue
		}
		tally.sliceTokens++
		postings := inv.Postings(id)
		if limit < inv.Records() {
			// Posting lists are sorted by record, so the self-join
			// restriction to records < limit is a prefix.
			cut := sort.Search(len(postings), func(k int) bool { return postings[k].Record >= limit })
			postings = postings[:cut]
		}
		tally.postings += acc.AddPostings(postings, mult)
	}
	tally.postings += acc.FlushDense(limit)
	return acc.Collect(nil), tally
}

// Join executes the filter-and-verification join between two record
// collections and returns the matching pairs together with execution
// statistics. The result pairs are sorted by (S, T) identifiers. Join is
// BuildIndex + Probe with a shared global order spanning both collections;
// workloads joining against the same collection repeatedly should hold on
// to a BuildIndex result instead.
func (j *Joiner) Join(s, t []strutil.Record, opts Options) ([]Pair, Stats) {
	start := time.Now()
	ix := j.buildIndex(s, j.BuildOrder(s, t), opts, nil)
	return ix.probe(t, opts, time.Since(start))
}

// SelfJoin joins a collection with itself, returning each unordered pair
// (i < j) at most once and never pairing a record with itself. Unlike
// Join(s, s), candidate generation never materialises mirrored or diagonal
// pairs, and Stats reflects the deduplicated work.
func (j *Joiner) SelfJoin(s []strutil.Record, opts Options) ([]Pair, Stats) {
	return j.BuildIndex(s, opts).SelfJoin()
}

// signatures computes signatures for every record in parallel.
func (j *Joiner) signatures(recs []strutil.Record, sel *pebble.Selector, method pebble.Method, tau int) []pebble.Signature {
	out := make([]pebble.Signature, len(recs))
	parallelFor(len(recs), 0, func(i int) {
		out[i] = sel.Signature(recs[i].Tokens, method, tau)
	})
	return out
}

// appendSignatureIDs appends one interned ID per signature pebble
// (duplicates retained), matching the posting-list semantics the overlap
// count relies on.
func appendSignatureIDs(ids []uint32, sig pebble.Signature) []uint32 {
	for i := range sig.Pebbles {
		ids = append(ids, sig.Pebbles[i].ID)
	}
	return ids
}

// sigCount returns the number of records with stored signatures, whichever
// representation (built or restored) the index holds.
func (ix *Index) sigCount() int {
	if ix.sigs != nil {
		return len(ix.sigs)
	}
	return len(ix.sigIDs)
}

// sigLenAt returns record i's signature length in pebbles.
func (ix *Index) sigLenAt(i int) int {
	if ix.sigs != nil {
		return ix.sigs[i].Len()
	}
	return len(ix.sigIDs[i])
}

// appendSigIDsAt appends record i's signature pebble IDs to ids.
func (ix *Index) appendSigIDsAt(ids []uint32, i int) []uint32 {
	if ix.sigs != nil {
		return appendSignatureIDs(ids, ix.sigs[i])
	}
	return append(ids, ix.sigIDs[i]...)
}

// pairKey identifies one candidate pair: an indexed record and a probe
// record.
type pairKey struct{ s, t int }

// verify runs the thresholded prepared-record verification of every
// candidate pair through the streaming stage and collects the pairs reaching
// θ, in completion order (callers sort). It is the batch convenience over
// streamVerify, kept for the verification benchmark; nil when empty, matching
// BruteForce, so oracle comparisons can use reflect.DeepEqual.
func (j *Joiner) verify(s, t []strutil.Record, prepS, prepT []*core.PreparedRecord, candidates []pairKey, calc *core.Calculator, opts Options) []Pair {
	var out []Pair
	workers := opts.workers()
	_, _ = collectStream(context.Background(), workers, func(ictx context.Context, ch chan<- []Pair) error {
		return streamVerify(ictx, s, t, prepS, prepT, candidates, calc, opts.Theta, workers, opts.NoVerifyMemo, ch, nil)
	}, func(p Pair) bool {
		out = append(out, p)
		return true
	})
	return out
}

// prepareRecords runs Calculator.Prepare for every record in parallel; the
// result is the verification half of an index or probe collection.
func prepareRecords(recs []strutil.Record, calc *core.Calculator) []*core.PreparedRecord {
	out := make([]*core.PreparedRecord, len(recs))
	parallelFor(len(recs), 0, func(i int) {
		out[i] = calc.Prepare(recs[i].Tokens)
	})
	return out
}

// FilterProfile holds the τ-independent state of the filtering stage for
// two collections: the shared interned order and every record's prepared
// (generated, interned, sorted) pebble list. Stats re-derives signatures
// and candidate counts for any τ without regenerating or re-sorting
// pebbles — the Section 4 estimator calls it for every τ in its universe on
// each Bernoulli sample — and VerifyStats additionally verifies the
// surviving candidates through the same prepared-record engine the join
// uses, preparing each sample record once across every τ. A FilterProfile
// is not safe for concurrent use: signature re-selection mutates shared
// per-record accumulation scratch (and VerifyStats its verdict memo), so
// sweep τ values sequentially.
type FilterProfile struct {
	joiner     *Joiner
	calc       *core.Calculator
	sel        *pebble.Selector
	order      *pebble.Order
	opts       Options
	method     pebble.Method
	theta      float64
	workers    int
	universe   int
	recS, recT []strutil.Record
	preS, preT []pebble.Presig
	scratch    sync.Pool // *probeScratch, reused across the τ sweep

	prepOnce     sync.Once
	prepS, prepT []*core.PreparedRecord
	// verdicts memoises per-pair verification outcomes across the τ sweep:
	// the verdict depends only on the pair and θ, and candidate sets for
	// different τ overlap heavily.
	verdicts map[pairKey]bool
}

// NewFilterProfile prepares both collections under a shared global order.
func (j *Joiner) NewFilterProfile(s, t []strutil.Record, opts Options) *FilterProfile {
	order := j.BuildOrder(s, t)
	sel := pebble.NewSelector(j.gen, order, opts.Theta)
	calc := opts.Calculator
	if calc == nil {
		calc = j.calc
	}
	return &FilterProfile{
		joiner:   j,
		calc:     calc,
		sel:      sel,
		order:    order,
		opts:     opts,
		method:   opts.Method,
		theta:    opts.Theta,
		workers:  opts.workers(),
		universe: order.NumKeys(),
		recS:     s,
		recT:     t,
		preS:     j.prepareAll(s, sel),
		preT:     j.prepareAll(t, sel),
	}
}

// prepareAll runs Selector.Prepare for every record in parallel.
func (j *Joiner) prepareAll(recs []strutil.Record, sel *pebble.Selector) []pebble.Presig {
	out := make([]pebble.Presig, len(recs))
	parallelFor(len(recs), 0, func(i int) {
		out[i] = sel.Prepare(recs[i].Tokens)
	})
	return out
}

// Stats runs the filtering stage (Lines 1–8 of Algorithm 6) for one τ and
// returns the number of processed posting pairs (T_τ) and candidates (V_τ).
func (fp *FilterProfile) Stats(tau int) (processed int64, candidates int) {
	cands, p := fp.filter(tau)
	return p, len(cands)
}

// VerifyStats is Stats plus verification: it runs the filtering stage for
// one τ and verifies every candidate through the prepared thresholded
// engine, returning the number of results (R_τ) alongside T_τ and V_τ. The
// prepared records of both collections are built on first use and shared by
// every subsequent τ.
func (fp *FilterProfile) VerifyStats(tau int) (processed int64, candidates, results int) {
	cands, processed := fp.filter(tau)
	if len(cands) == 0 {
		return processed, 0, 0
	}
	fp.prepOnce.Do(func() {
		fp.prepS = prepareRecords(fp.recS, fp.calc)
		fp.prepT = prepareRecords(fp.recT, fp.calc)
	})
	// A pair's verdict is τ-independent, and the candidate sets of the τ
	// sweep overlap heavily, so only pairs never seen before are verified.
	if fp.verdicts == nil {
		fp.verdicts = make(map[pairKey]bool)
	}
	var todo []pairKey
	for _, c := range cands {
		if _, ok := fp.verdicts[c]; !ok {
			todo = append(todo, c)
		}
	}
	if len(todo) > 0 {
		scratches := make([]*core.Scratch, fp.workers)
		keep := make([]bool, len(todo))
		parallelForWorkers(len(todo), fp.workers, func(w, i int) {
			sc := scratches[w]
			if sc == nil {
				sc = core.NewScratch()
				scratches[w] = sc
			}
			c := todo[i]
			keep[i] = fp.calc.SimilarityAtLeastPrepared(fp.prepS[c.s], fp.prepT[c.t], fp.theta, sc)
		})
		for i, c := range todo {
			fp.verdicts[c] = keep[i]
		}
	}
	for _, c := range cands {
		if fp.verdicts[c] {
			results++
		}
	}
	return processed, len(cands), results
}

// filter runs signature selection and count filtering for one τ, returning
// the candidate pairs and the processed posting count.
func (fp *FilterProfile) filter(tau int) ([]pairKey, int64) {
	if fp.method == pebble.UFilter || tau < 1 {
		tau = 1
	}
	sigS := fp.selectAll(fp.preS, tau)
	sigT := fp.selectAll(fp.preT, tau)
	inv := invindex.New(fp.universe)
	var ids []uint32
	for i := range sigS {
		ids = appendSignatureIDs(ids[:0], sigS[i])
		inv.Add(i, ids)
	}
	hybridizeIndex(inv, fp.order, fp.opts)
	cands, tally, _ := countFilterCandidates(context.Background(), inv, len(fp.preS), sigT, tau, false, 0, &fp.scratch)
	return cands, tally.postings
}

// selectAll derives the τ-specific signatures from the prepared pebble
// lists in parallel.
func (fp *FilterProfile) selectAll(pre []pebble.Presig, tau int) []pebble.Signature {
	out := make([]pebble.Signature, len(pre))
	parallelFor(len(pre), 0, func(i int) {
		out[i] = fp.sel.Select(pre[i], fp.method, tau)
	})
	return out
}

// FilterStats runs only the signature and filtering stages of the join and
// returns T_τ and V_τ. One-shot convenience over NewFilterProfile; callers
// sweeping several τ values should build the profile once and call Stats
// per τ.
func (j *Joiner) FilterStats(s, t []strutil.Record, opts Options) (processed int64, candidates int) {
	return j.NewFilterProfile(s, t, opts).Stats(opts.tau())
}

// BruteForce computes the join by verifying every pair through the prepared
// thresholded engine (each side prepared once); it is the oracle the
// integration tests compare the filtered joins against and the degenerate
// baseline of the scalability experiments.
func (j *Joiner) BruteForce(s, t []strutil.Record, theta float64, calc *core.Calculator) []Pair {
	out, _ := j.BruteForceCtx(context.Background(), s, t, theta, calc)
	return out
}

// BruteForceCtx is BruteForce with cooperative cancellation: verification
// workers stop between pairs once ctx is done and the partial result is
// discarded (a truncated oracle would silently weaken every comparison made
// against it).
func (j *Joiner) BruteForceCtx(ctx context.Context, s, t []strutil.Record, theta float64, calc *core.Calculator) ([]Pair, error) {
	if calc == nil {
		calc = j.calc
	}
	prepS := prepareRecords(s, calc)
	prepT := prepareRecords(t, calc)
	type cell struct {
		pair Pair
		ok   bool
	}
	cells := make([]cell, len(s)*len(t))
	workers := runtime.GOMAXPROCS(0)
	scratches := make([]*core.Scratch, workers)
	err := parallelForWorkersCtx(ctx, len(s)*len(t), workers, func(w, k int) {
		i, l := k/len(t), k%len(t)
		sc := scratches[w]
		if sc == nil {
			sc = core.NewScratch()
			scratches[w] = sc
		}
		if v, ok := calc.VerifyPrepared(prepS[i], prepT[l], theta, sc); ok {
			cells[k] = cell{pair: Pair{S: s[i].ID, T: t[l].ID, Similarity: v}, ok: true}
		}
	})
	if err != nil {
		return nil, err
	}
	var out []Pair
	for _, c := range cells {
		if c.ok {
			out = append(out, c.pair)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].S != out[b].S {
			return out[a].S < out[b].S
		}
		return out[a].T < out[b].T
	})
	return out, nil
}

// parallelFor runs fn(i) for i in [0, n) across the given number of workers
// (GOMAXPROCS when workers ≤ 0). It runs inline when n is small.
func parallelFor(n, workers int, fn func(int)) {
	parallelForWorkers(n, workers, func(_, i int) { fn(i) })
}

// parallelForWorkers is parallelFor with the worker index exposed to fn, so
// callers can keep per-worker scratch without synchronisation: each worker
// index in [0, workers) is used by exactly one goroutine (index 0 when the
// loop runs inline).
func parallelForWorkers(n, workers int, fn func(worker, i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n <= 1 || workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		goPipeline(func() {
			defer wg.Done()
			for i := range next {
				fn(w, i)
			}
		})
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
