// Package join implements the unified string similarity join of Section 3:
// filter-and-verification joins that generate pebble signatures for both
// collections, find candidate pairs sharing enough signature pebbles
// (Algorithm 3 for U-Filter, Algorithm 6 for AU-Filter), and verify the
// survivors with the unified similarity measure of internal/core.
//
// The Joiner supports R×S joins between two different collections as well
// as self-joins, per-stage timing breakdowns (used by Tables 10–12 of the
// paper), and parallel verification.
package join

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/aujoin/aujoin/internal/core"
	"github.com/aujoin/aujoin/internal/invindex"
	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/sim"
	"github.com/aujoin/aujoin/internal/strutil"
)

// Pair is one join result: the identifiers of the matched records and their
// unified similarity.
type Pair struct {
	S, T       int
	Similarity float64
}

// Stats records what happened during one join execution; the experiment
// harness uses it to regenerate the paper's tables and figures.
type Stats struct {
	// SignatureTime, FilterTime and VerifyTime are the wall-clock durations
	// of signature generation + indexing, candidate generation, and
	// verification.
	SignatureTime time.Duration
	FilterTime    time.Duration
	VerifyTime    time.Duration
	// ProcessedPairs is T_τ of the cost model: the number of (S, T)
	// occurrences touched while traversing common posting lists.
	ProcessedPairs int64
	// Candidates is V_τ: the number of distinct pairs that reached
	// verification.
	Candidates int
	// Results is the number of pairs whose unified similarity reached θ.
	Results int
	// AvgSignatureS / AvgSignatureT are the mean signature lengths.
	AvgSignatureS float64
	AvgSignatureT float64
}

// TotalTime returns the end-to-end join time recorded in the stats.
func (s Stats) TotalTime() time.Duration {
	return s.SignatureTime + s.FilterTime + s.VerifyTime
}

// Options configures a join execution.
type Options struct {
	// Theta is the join threshold θ ∈ [0, 1].
	Theta float64
	// Tau is the overlap constraint τ ≥ 1 (ignored by the U-Filter method,
	// which always uses 1).
	Tau int
	// Method selects the signature-selection algorithm.
	Method pebble.Method
	// Workers is the number of verification goroutines; 0 means GOMAXPROCS.
	Workers int
	// Calculator overrides the unified-similarity calculator; nil means a
	// default calculator over the joiner's context.
	Calculator *core.Calculator
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) tau() int {
	if o.Method == pebble.UFilter || o.Tau < 1 {
		return 1
	}
	return o.Tau
}

// Joiner joins two collections of records under a fixed similarity context.
type Joiner struct {
	Ctx *sim.Context

	gen  *pebble.Generator
	calc *core.Calculator
}

// NewJoiner creates a Joiner for the given context.
func NewJoiner(ctx *sim.Context) *Joiner {
	if ctx != nil && ctx.Tax != nil {
		// Build the LCA index up front so that concurrent verification
		// goroutines only ever read the taxonomy.
		ctx.Tax.Finalize()
	}
	return &Joiner{Ctx: ctx, gen: pebble.NewGenerator(ctx), calc: core.NewCalculator(ctx)}
}

// Generator exposes the pebble generator (shared with the estimator).
func (j *Joiner) Generator() *pebble.Generator { return j.gen }

// Calculator exposes the unified-similarity calculator.
func (j *Joiner) Calculator() *core.Calculator { return j.calc }

// Join executes the filter-and-verification join between two record
// collections and returns the matching pairs together with execution
// statistics. The result pairs are sorted by (S, T) identifiers.
func (j *Joiner) Join(s, t []strutil.Record, opts Options) ([]Pair, Stats) {
	var stats Stats
	calc := opts.Calculator
	if calc == nil {
		calc = j.calc
	}
	tau := opts.tau()

	// ---- Signature generation and indexing -------------------------------
	start := time.Now()
	order := j.BuildOrder(s, t)
	sel := pebble.NewSelector(j.gen, order, opts.Theta)

	sigS := j.signatures(s, sel, opts.Method, tau)
	sigT := j.signatures(t, sel, opts.Method, tau)

	idxS := invindex.New()
	totalLenS := 0
	for i, sig := range sigS {
		idxS.Add(i, signatureKeys(sig))
		totalLenS += sig.Len()
	}
	idxT := invindex.New()
	totalLenT := 0
	for i, sig := range sigT {
		idxT.Add(i, signatureKeys(sig))
		totalLenT += sig.Len()
	}
	if len(s) > 0 {
		stats.AvgSignatureS = float64(totalLenS) / float64(len(s))
	}
	if len(t) > 0 {
		stats.AvgSignatureT = float64(totalLenT) / float64(len(t))
	}
	stats.SignatureTime = time.Since(start)

	// ---- Filtering --------------------------------------------------------
	start = time.Now()
	candidates, processed := candidatePairs(idxS, idxT, tau)
	stats.ProcessedPairs = processed
	stats.Candidates = len(candidates)
	stats.FilterTime = time.Since(start)

	// ---- Verification -----------------------------------------------------
	start = time.Now()
	results := j.verify(s, t, candidates, calc, opts)
	stats.VerifyTime = time.Since(start)
	stats.Results = len(results)

	sort.Slice(results, func(a, b int) bool {
		if results[a].S != results[b].S {
			return results[a].S < results[b].S
		}
		return results[a].T < results[b].T
	})
	return results, stats
}

// SelfJoin joins a collection with itself, returning each unordered pair
// (i < j) at most once and never pairing a record with itself.
func (j *Joiner) SelfJoin(s []strutil.Record, opts Options) ([]Pair, Stats) {
	pairs, stats := j.Join(s, s, opts)
	out := pairs[:0]
	for _, p := range pairs {
		if p.S < p.T {
			out = append(out, p)
		}
	}
	stats.Results = len(out)
	return out, stats
}

// BuildOrder constructs the global pebble frequency order over both
// collections.
func (j *Joiner) BuildOrder(collections ...[]strutil.Record) *pebble.Order {
	order := pebble.NewOrder()
	for _, coll := range collections {
		for _, rec := range coll {
			p, _ := j.gen.Pebbles(rec.Tokens)
			order.Add(p)
		}
	}
	return order
}

// signatures computes signatures for every record in parallel.
func (j *Joiner) signatures(recs []strutil.Record, sel *pebble.Selector, method pebble.Method, tau int) []pebble.Signature {
	out := make([]pebble.Signature, len(recs))
	parallelFor(len(recs), 0, func(i int) {
		out[i] = sel.Signature(recs[i].Tokens, method, tau)
	})
	return out
}

// signatureKeys returns one key per signature pebble (duplicates retained),
// matching the posting-list semantics the overlap count relies on.
func signatureKeys(sig pebble.Signature) []string {
	keys := make([]string, len(sig.Pebbles))
	for i, p := range sig.Pebbles {
		keys[i] = p.Key
	}
	return keys
}

// pairKey packs two record identifiers into one map key.
type pairKey struct{ s, t int }

// candidatePairs walks the common keys of the two indexes and returns every
// record pair whose signature-pebble overlap count reaches τ, together with
// the number of processed (S, T) posting combinations (T_τ).
func candidatePairs(idxS, idxT *invindex.Index, tau int) ([]pairKey, int64) {
	counts := make(map[pairKey]int)
	processed := int64(0)
	for _, key := range invindex.CommonKeys(idxS, idxT) {
		ls := idxS.Postings(key)
		lt := idxT.Postings(key)
		processed += int64(len(ls)) * int64(len(lt))
		for _, ps := range ls {
			for _, pt := range lt {
				counts[pairKey{ps.Record, pt.Record}] += ps.Count * pt.Count
			}
		}
	}
	var out []pairKey
	for pk, c := range counts {
		if c >= tau {
			out = append(out, pk)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].s != out[b].s {
			return out[a].s < out[b].s
		}
		return out[a].t < out[b].t
	})
	return out, processed
}

// verify computes the unified similarity of every candidate pair in
// parallel and keeps those reaching θ.
func (j *Joiner) verify(s, t []strutil.Record, candidates []pairKey, calc *core.Calculator, opts Options) []Pair {
	results := make([]Pair, len(candidates))
	keep := make([]bool, len(candidates))
	parallelFor(len(candidates), opts.workers(), func(i int) {
		c := candidates[i]
		if c.s >= len(s) || c.t >= len(t) {
			return
		}
		v := calc.SimilarityTokens(s[c.s].Tokens, t[c.t].Tokens)
		if v >= opts.Theta {
			results[i] = Pair{S: s[c.s].ID, T: t[c.t].ID, Similarity: v}
			keep[i] = true
		}
	})
	out := make([]Pair, 0, len(candidates))
	for i, ok := range keep {
		if ok {
			out = append(out, results[i])
		}
	}
	return out
}

// FilterStats runs only the signature and filtering stages of the join
// (Lines 1–8 of Algorithm 6) and returns the number of processed posting
// pairs (T_τ) and the number of candidates (V_τ). The parameter-suggestion
// estimator of Section 4 runs this on small Bernoulli samples for every τ
// in its universe.
func (j *Joiner) FilterStats(s, t []strutil.Record, opts Options) (processed int64, candidates int) {
	tau := opts.tau()
	order := j.BuildOrder(s, t)
	sel := pebble.NewSelector(j.gen, order, opts.Theta)
	sigS := j.signatures(s, sel, opts.Method, tau)
	sigT := j.signatures(t, sel, opts.Method, tau)
	idxS := invindex.New()
	for i, sig := range sigS {
		idxS.Add(i, signatureKeys(sig))
	}
	idxT := invindex.New()
	for i, sig := range sigT {
		idxT.Add(i, signatureKeys(sig))
	}
	cands, processed := candidatePairs(idxS, idxT, tau)
	return processed, len(cands)
}

// BruteForce computes the join by verifying every pair; it is the oracle
// the integration tests compare the filtered joins against and the
// degenerate baseline of the scalability experiments.
func (j *Joiner) BruteForce(s, t []strutil.Record, theta float64, calc *core.Calculator) []Pair {
	if calc == nil {
		calc = j.calc
	}
	type cell struct {
		pair Pair
		ok   bool
	}
	cells := make([]cell, len(s)*len(t))
	parallelFor(len(s)*len(t), 0, func(k int) {
		i, l := k/len(t), k%len(t)
		v := calc.SimilarityTokens(s[i].Tokens, t[l].Tokens)
		if v >= theta {
			cells[k] = cell{pair: Pair{S: s[i].ID, T: t[l].ID, Similarity: v}, ok: true}
		}
	})
	var out []Pair
	for _, c := range cells {
		if c.ok {
			out = append(out, c.pair)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].S != out[b].S {
			return out[a].S < out[b].S
		}
		return out[a].T < out[b].T
	})
	return out
}

// parallelFor runs fn(i) for i in [0, n) across the given number of workers
// (GOMAXPROCS when workers ≤ 0). It runs inline when n is small.
func parallelFor(n, workers int, fn func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n <= 1 || workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
