package join

import (
	"context"
	"os"
	"runtime/pprof"
	"testing"
	"time"

	"github.com/aujoin/aujoin/internal/datagen"
	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/sim"
	"github.com/aujoin/aujoin/internal/strutil"
)

// TestFilterScaleProfile is an opt-in diagnostic (AUJOIN_SCALEPROF=1)
// that times the hybrid vs classic candidate phase on a 300k-record
// datagen corpus and writes a CPU profile of the hybrid leg to
// /tmp/scale_hybrid.pprof. It exists to localize scale regressions in
// the block filter core without the full cmd/benchrun filterscale run
// (which spends most of its wall clock on signature selection).
func TestFilterScaleProfile(t *testing.T) {
	if os.Getenv("AUJOIN_SCALEPROF") == "" {
		t.Skip("set AUJOIN_SCALEPROF=1")
	}
	records := 300000
	gcfg := datagen.MEDLike(records, 1)
	gcfg.VocabSize = 200
	gcfg.MinTokens, gcfg.MaxTokens = 10, 14
	gcfg.EntityRate, gcfg.SynonymTermRate = 0.05, 0.05
	gcfg.SynonymRules, gcfg.TaxonomyNodes = 20, 100
	gcfg.DistinctTokens = true
	gen := datagen.New(gcfg)
	s := strutil.NewCollection(gen.Collection(records))
	tt := strutil.NewCollection(gen.Collection(100))
	ctx := sim.NewContext(gen.Rules(), gen.Taxonomy())
	ctx.Q = 5
	j := NewJoiner(ctx)

	for _, classic := range []bool{false, true} {
		opts := Options{Theta: 0.9, Tau: 12, Method: pebble.AUHeuristic, ClassicFilter: classic, Workers: 1}
		ix := j.buildIndex(s, j.BuildOrder(s, tt), opts, nil)
		sigs := j.signatures(tt, ix.sel, opts.Method, ix.tau)
		if !classic {
			// residual sizes of the dense lists
			var resTotal, denseTotal int
			for _, id := range ix.inv.Keys() {
				if bs := ix.inv.Bitset(id); bs != nil {
					resTotal += len(bs.Residual())
					denseTotal++
				}
			}
			t.Logf("dense keys %d, residual entries total %d", denseTotal, resTotal)
			f, _ := os.Create("/tmp/scale_hybrid.pprof")
			pprof.StartCPUProfile(f)
		}
		start := time.Now()
		for rep := 0; rep < 3; rep++ {
			cands, tally, err := ix.candidates(context.Background(), sigs, false, 1)
			if err != nil {
				t.Fatal(err)
			}
			if rep == 0 {
				t.Logf("classic=%v filter=%v cands=%d postings=%d bitset=%d slice=%d",
					classic, time.Since(start), len(cands), tally.postings, tally.bitsetTokens, tally.sliceTokens)
			}
		}
		t.Logf("classic=%v 3 reps total %v", classic, time.Since(start))
		if !classic {
			pprof.StopCPUProfile()
		}
	}
}
