package join

import (
	"context"
	"iter"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aujoin/aujoin/internal/core"
	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/planner"
	"github.com/aujoin/aujoin/internal/strutil"
)

// ShardedIndex partitions a dynamic join index across N DynamicIndex shards
// so that mutations parallelize and rebuild pauses are bounded by shard
// size, not corpus size. Records are routed by hashing their stable ID;
// every shard has its own writer mutex, snapshot View, tombstone bitmap and
// rebuild thresholds, so inserts and removes on different shards proceed in
// parallel and a threshold-crossing rebuild compacts one shard while the
// other N−1 keep serving unchanged.
//
// All shards share one global pebble frequency order (pebble.Order), which
// is what keeps signatures comparable across shards: signature selection and
// the ≥τ-overlap count filter depend only on the order, so a record's
// signature is the same whichever shard holds it, and the union of per-shard
// probe results is exactly the unsharded result. InternDynamic calls from
// concurrently mutating shards serialize on the order's own small mutex,
// decoupled from the shard writer locks. A consequence of sharing is that
// per-shard rebuilds never re-freeze the order — the dynamic region is
// append-only for the router's lifetime and frequency selectivity degrades
// with it; what a shard rebuild restores is a dense compacted base (segments
// merged, tombstones dropped).
//
// Because per-shard rebuilds keep the shared order, its dynamic region
// would otherwise grow for the router's lifetime (degrading filter
// selectivity and inflating every shard's dense posting-array universe).
// A rare *global re-finalize* bounds that: once the dynamic region grows
// as large as the frozen prefix, the router takes every shard's writer
// lock, freezes a fresh order over all live records and rebuilds every
// shard under it — the one deliberate stop-the-world pause for writers,
// amortized over at least a doubling of the key universe. Generations make
// it safe for concurrent readers: every shard view is stamped with the
// order generation of its base and Snapshot only returns
// single-generation view sets, so a fan-out query never mixes signatures
// of one order with posting lists of another; while the re-finalize is in
// flight, readers are served the cached pre-refreeze snapshot instead of
// blocking.
//
// One core.PreparedCache is shared across all shards: delete/re-insert
// churn routes a re-ingested record by its new ID, which may hash to a
// different shard, and a per-shard cache would miss there.
//
// With N = 1 the router degenerates to a single standalone DynamicIndex
// (private order, re-freezing rebuilds) — exactly the pre-sharding engine.
type ShardedIndex struct {
	joiner *Joiner
	opts   Options
	tau    int
	shards []*DynamicIndex
	cache  *core.PreparedCache

	// planner is the adaptive per-query cost model, shared by every shard
	// (the corpus statistics and the feedback are global; a fan-out request
	// plans once and executes the same decision on every shard). Nil when
	// Options.Plan is PlanFixed.
	planner *planner.Planner

	// gen is the current order generation (nil for the single legacy shard,
	// which owns and re-freezes a private order). Replaced wholesale by a
	// global re-finalize; refreezeMu serializes re-finalizes. lastView is
	// the freshest generation-consistent snapshot, refreshed at the start
	// of every re-finalize (under all writer locks, so it is exactly the
	// pre-refreeze state) — readers are served from it while the
	// re-finalize runs instead of blocking.
	gen            atomic.Pointer[orderGen]
	refreezeMu     sync.Mutex
	refreezes      int             // guarded by refreezeMu
	refreezePauses []time.Duration // guarded by refreezeMu; whole-refreeze writer stalls
	noRefreeze     atomic.Bool     // set at build, or at runtime by AdoptOrder/DisableRefreeze
	lastView       atomic.Pointer[ShardedView]

	mu     sync.Mutex // guards nextID only; never held during shard work
	nextID int

	// probePool holds *probeScratch for the batch-probe fan-out stage,
	// shared across snapshots and generations (the arena re-sizes per use).
	probePool sync.Pool
}

// orderGen is one immutable generation of the shared global order: the
// order itself, the selector over it, and a monotonically increasing id
// matched against the per-shard view stamps.
type orderGen struct {
	order *pebble.Order
	sel   *pebble.Selector
	id    int
}

// BuildShardedIndex builds a partitioned dynamic index over the records.
// shards ≤ 0 selects GOMAXPROCS. The join Options are fixed for the life of
// the index, exactly as for BuildDynamicIndex; DynamicOptions apply to every
// shard (thresholds are evaluated against per-shard sizes, so rebuild work
// is bounded by the shard, and the CacheSize bounds the one cache shared by
// all shards).
func (j *Joiner) BuildShardedIndex(records []strutil.Record, shards int, opts Options, dopts DynamicOptions) *ShardedIndex {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	sx := &ShardedIndex{joiner: j, opts: opts, tau: opts.tau()}
	if opts.Plan != PlanFixed {
		sx.planner = planner.New(opts.Method, sx.tau)
	}
	if dopts.CacheSize >= 0 {
		sx.cache = core.NewPreparedCache(dopts.CacheSize)
	}
	parts := make([][]strutil.Record, shards)
	for _, rec := range records {
		w := shardOf(rec.ID, shards)
		parts[w] = append(parts[w], rec)
		if rec.ID >= sx.nextID {
			sx.nextID = rec.ID + 1
		}
	}
	var order *pebble.Order
	if shards > 1 {
		// The shared order spans the whole corpus so document frequencies —
		// and therefore signatures — are identical to the unsharded build.
		order = j.BuildOrder(records)
		order.Finalize()
	}
	sx.noRefreeze.Store(dopts.RebuildFraction < 0)
	sx.shards = make([]*DynamicIndex, shards)
	parallelFor(shards, shards, func(w int) {
		sx.shards[w] = j.buildDynamic(parts[w], order, opts, dopts, sx.cache, sx.planner)
	})
	// The generation stays nil for the single legacy shard: it owns a
	// private order that re-freezing rebuilds replace, so a router-held
	// reference would go stale — every read path delegates to the shard
	// instead, and a future misuse fails fast rather than probing under a
	// dead order.
	if order != nil {
		// id 0 matches the zero-value generation stamp every freshly built
		// shard publishes.
		sx.gen.Store(&orderGen{order: order, sel: pebble.NewSelector(j.gen, order, opts.Theta)})
	}
	return sx
}

// shardOf routes a stable record ID to its shard. IDs are allocated
// sequentially by the router, so a multiplicative hash (Fibonacci hashing)
// spreads both sequential ingest and arbitrary survivor sets evenly without
// letting any stride pattern alias a shard.
func shardOf(id, shards int) int {
	if shards == 1 {
		return 0
	}
	return int((uint64(id) * 0x9E3779B97F4A7C15 >> 33) % uint64(shards))
}

// Shards returns the number of partitions.
func (sx *ShardedIndex) Shards() int { return len(sx.shards) }

// InsertBatch appends records to the catalog and returns their stable IDs
// (assigned centrally, so they are unique across shards). The batch is
// grouped by destination shard and the groups are inserted concurrently,
// each taking its shard's writer lock exactly once; shards untouched by the
// batch never block, and neither do readers anywhere.
func (sx *ShardedIndex) InsertBatch(raw []string) []int {
	if len(raw) == 0 {
		return nil
	}
	sx.mu.Lock()
	startID := sx.nextID
	sx.nextID += len(raw)
	sx.mu.Unlock()

	ids := make([]int, len(raw))
	groups := make([][]strutil.Record, len(sx.shards))
	for i, s := range raw {
		id := startID + i
		ids[i] = id
		w := shardOf(id, len(sx.shards))
		groups[w] = append(groups[w], strutil.NewRecord(id, s))
	}
	sx.runShards(nonEmptyShards(len(groups), func(w int) bool { return len(groups[w]) > 0 }), func(w int) {
		sx.shards[w].insertRecords(groups[w])
	})
	sx.maybeRefreeze()
	return ids
}

// maybeRefreeze triggers a global re-finalize of the shared order once its
// append-only dynamic region has grown as large as the frozen prefix —
// i.e. the key universe at least doubled since the last freeze, so the
// stop-the-world cost is amortized over that growth. Inserts are the only
// source of new keys, so this is checked after each InsertBatch.
func (sx *ShardedIndex) maybeRefreeze() {
	g := sx.gen.Load()
	if g == nil || sx.noRefreeze.Load() {
		return
	}
	frozen := g.order.FrozenKeys()
	if frozen < 1 {
		frozen = 1
	}
	if g.order.DynamicCount() < frozen {
		return
	}
	sx.refreezeMu.Lock()
	defer sx.refreezeMu.Unlock()
	// Re-check against the current generation: a concurrent InsertBatch may
	// have completed the refreeze while this one waited on the mutex.
	g = sx.gen.Load()
	frozen = g.order.FrozenKeys()
	if frozen < 1 {
		frozen = 1
	}
	if g.order.DynamicCount() < frozen {
		return
	}
	// Stop the world for writers: every shard's writer lock is held while
	// all live records are collected, a fresh order frozen over them (true
	// document frequencies, empty dynamic region) and every shard rebuilt
	// under it with the bumped generation. Readers never stall: Snapshot
	// serves the pre-refreeze view cached below until the new generation is
	// fully published.
	start := time.Now()
	for _, sh := range sx.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range sx.shards {
			sh.mu.Unlock()
		}
	}()
	// With all writer locks held the current per-shard views are the exact
	// pre-refreeze state and necessarily one generation — cache them for
	// readers arriving mid-refreeze.
	pre := make([]*View, len(sx.shards))
	for w, sh := range sx.shards {
		pre[w] = sh.Snapshot()
	}
	sx.lastView.Store(newShardedView(sx, g, pre))
	// One live scan serves both the global order build and the per-shard
	// base rebuilds.
	liveAll := make([][]strutil.Record, len(sx.shards))
	prepAll := make([][]*core.PreparedRecord, len(sx.shards))
	var flat []strutil.Record
	for w, sh := range sx.shards {
		liveAll[w], prepAll[w] = sh.liveLocked()
		flat = append(flat, liveAll[w]...)
	}
	order := sx.joiner.BuildOrder(flat)
	order.Finalize()
	next := &orderGen{order: order, sel: pebble.NewSelector(sx.joiner.gen, order, sx.opts.Theta), id: g.id + 1}
	parallelFor(len(sx.shards), len(sx.shards), func(w int) {
		sx.shards[w].refreezeLocked(order, next.id, liveAll[w], prepAll[w])
	})
	sx.gen.Store(next)
	// One re-anchor for the whole re-finalize: the planner is shared, so
	// per-shard calls inside the parallelFor would decay its corrections N
	// times for one corpus event.
	sx.planner.Reanchor()
	// The pre-refreeze view has served its purpose; dropping it releases
	// the superseded generation's bases for collection (readers that
	// already hold it keep it alive only as long as they keep it).
	sx.lastView.Store(nil)
	sx.refreezes++
	// The whole stop-the-world window — live scans, order freeze and every
	// shard rebuild — is one writer stall; log it whole so the pause
	// percentiles cannot understate the one corpus-sized pause the design
	// admits.
	sx.refreezePauses = appendPause(sx.refreezePauses, time.Since(start))
}

// Refreezes returns the number of global re-finalizes of the shared order.
func (sx *ShardedIndex) Refreezes() int {
	sx.refreezeMu.Lock()
	defer sx.refreezeMu.Unlock()
	return sx.refreezes
}

// Insert is InsertBatch (kept for signature parity with DynamicIndex).
func (sx *ShardedIndex) Insert(raw []string) []int { return sx.InsertBatch(raw) }

// Remove tombstones the record with the given stable ID on its shard,
// reporting whether it was present and live.
func (sx *ShardedIndex) Remove(id int) bool {
	return sx.shards[shardOf(id, len(sx.shards))].Remove(id)
}

// RemoveBatch tombstones every given stable ID, reporting per ID whether it
// was present and live. IDs are grouped by shard and the groups removed
// concurrently, each taking its shard's writer lock exactly once.
func (sx *ShardedIndex) RemoveBatch(ids []int) []bool {
	if len(ids) == 0 {
		return nil
	}
	type ref struct{ id, at int }
	groups := make([][]ref, len(sx.shards))
	for i, id := range ids {
		w := shardOf(id, len(sx.shards))
		groups[w] = append(groups[w], ref{id, i})
	}
	out := make([]bool, len(ids))
	sx.runShards(nonEmptyShards(len(groups), func(w int) bool { return len(groups[w]) > 0 }), func(w int) {
		batch := make([]int, len(groups[w]))
		for i, r := range groups[w] {
			batch[i] = r.id
		}
		for i, ok := range sx.shards[w].RemoveBatch(batch) {
			out[groups[w][i].at] = ok
		}
	})
	return out
}

// nonEmptyShards collects the shard indexes a batch actually touches, so a
// small mutation never pays goroutine spawns for uninvolved shards.
func nonEmptyShards(n int, used func(w int) bool) []int {
	var ws []int
	for w := 0; w < n; w++ {
		if used(w) {
			ws = append(ws, w)
		}
	}
	return ws
}

// runShards runs fn(w) for the given shard indexes, concurrently when there
// are several, inline when there is one.
func (sx *ShardedIndex) runShards(ws []int, fn func(w int)) {
	parallelFor(len(ws), len(ws), func(i int) { fn(ws[i]) })
}

// Snapshot captures every shard's current View into one ShardedView. Each
// per-shard View is individually consistent and immutable; the combination
// is not a single atomic cut across shards (a concurrent InsertBatch
// spanning several shards may be partially visible), which is the standard
// relaxation partitioned serving systems make in exchange for lock-free
// writes on disjoint shards. What IS guaranteed is order-generation
// consistency: all N views belong to one generation of the shared order,
// so a fan-out query never mixes signatures of one order with posting
// lists of another. While a global re-finalize is publishing the next
// generation, Snapshot serves the cached pre-refreeze view — exact as of
// the moment every writer stalled — so readers never block on the
// stop-the-world rebuild.
func (sx *ShardedIndex) Snapshot() *ShardedView {
	for {
		g := sx.gen.Load()
		views := make([]*View, len(sx.shards))
		consistent := true
		for w, sh := range sx.shards {
			views[w] = sh.Snapshot()
			if g != nil && views[w].gen != g.id {
				consistent = false
				break
			}
		}
		if consistent {
			return newShardedView(sx, g, views)
		}
		if sx.gen.Load() != g {
			// The re-finalize completed between loading g and reading the
			// shard views; retry against the new generation.
			continue
		}
		// A re-finalize is mid-flight: serve the pre-refreeze snapshot it
		// cached under all writer locks. (nil only before the first
		// re-finalize, when every view is still generation-consistent, so
		// this branch cannot be reached then — the barrier is a safety net.)
		if sv := sx.lastView.Load(); sv != nil {
			return sv
		}
		sx.refreezeMu.Lock()
		sx.refreezeMu.Unlock() //nolint:staticcheck // empty critical section: barrier only
	}
}

// Stats aggregates the current per-shard snapshot statistics. Catalog,
// segment, rebuild and insert counts are summed; the interned-key split and
// the cache counters are global (shared order, shared cache) and reported
// once; BuildTime is the slowest shard's build (shards build in parallel).
func (sx *ShardedIndex) Stats() DynamicStats { return sx.Snapshot().Stats() }

// RebuildPauses returns every writer stall so far: the per-shard rebuild
// durations (shard-local stalls; with N shards the expected maximum is the
// full-corpus rebuild pause divided by N) plus one entry per global
// re-finalize covering its whole stop-the-world window, so the rare
// corpus-sized pause shows up in the percentiles rather than hiding behind
// its per-shard components.
func (sx *ShardedIndex) RebuildPauses() []time.Duration {
	var out []time.Duration
	for _, sh := range sx.shards {
		out = append(out, sh.RebuildPauses()...)
	}
	sx.refreezeMu.Lock()
	out = append(out, sx.refreezePauses...)
	sx.refreezeMu.Unlock()
	return out
}

// ShardedView is one fan-out snapshot: per-shard immutable Views of a
// single order generation, the statistics captured when the snapshot was
// taken, and the lazily built flattened catalog the batch-probe pipeline
// runs over. All methods are read-only and safe for unbounded concurrency.
type ShardedView struct {
	sx    *ShardedIndex
	gen   *orderGen // the views' shared-order generation; nil for one legacy shard
	views []*View

	statsOnce sync.Once
	stats     DynamicStats

	once sync.Once
	flat struct {
		records  []strutil.Record
		prepared []*core.PreparedRecord
		offsets  []int // shard -> base position in the flattened catalog
		avgSig   float64
	}
}

// newShardedView assembles a generation-consistent snapshot. Construction
// is deliberately trivial — Snapshot sits on the per-query serving path, so
// the stats aggregation (which touches the shared cache mutex) is deferred
// to the first Stats call.
func newShardedView(sx *ShardedIndex, g *orderGen, views []*View) *ShardedView {
	return &ShardedView{sx: sx, gen: g, views: views}
}

// Stats aggregates the snapshot's per-shard statistics, computed once on
// first call and immutable afterwards (the per-shard components were fixed
// when the snapshot was taken; the global key split and cache counters are
// read on that first call). Catalog, segment, rebuild and insert counts
// are summed; the interned-key split and cache counters are global (shared
// order, shared cache) and reported once; BuildTime is the slowest shard's
// build (shards build in parallel).
func (sv *ShardedView) Stats() DynamicStats {
	sv.statsOnce.Do(func() {
		st := sv.views[0].Stats()
		st.Shards = len(sv.views)
		for _, v := range sv.views[1:] {
			vs := v.Stats()
			st.Records += vs.Records
			st.Live += vs.Live
			st.Dead += vs.Dead
			st.Segments += vs.Segments
			st.Rebuilds += vs.Rebuilds
			st.Inserts += vs.Inserts
			st.DenseKeys += vs.DenseKeys
			st.SparseKeys += vs.SparseKeys
			st.ProbePostings += vs.ProbePostings
			st.ProbeBitsetTokens += vs.ProbeBitsetTokens
			st.ProbeSliceTokens += vs.ProbeSliceTokens
			st.VerifiedCandidates += vs.VerifiedCandidates
			st.PrunedByBound += vs.PrunedByBound
			st.MemoHits += vs.MemoHits
			if vs.BuildTime > st.BuildTime {
				st.BuildTime = vs.BuildTime
			}
		}
		if sv.gen != nil {
			// The order is shared, so the key split is global. (A single
			// legacy shard owns — and on rebuild replaces — its own order,
			// so its published stats are the authoritative ones.)
			st.FrozenKeys = sv.gen.order.FrozenKeys()
			st.DynamicKeys = sv.gen.order.DynamicCount()
		}
		if sv.sx.cache != nil {
			st.CacheHits, st.CacheMisses = sv.sx.cache.Stats()
		}
		sv.stats = st
	})
	return sv.stats
}

// Record returns the record with the given stable ID, if it is live in this
// snapshot; the ID's hash identifies the one shard that can hold it.
func (sv *ShardedView) Record(id int) (strutil.Record, bool) {
	return sv.views[shardOf(id, len(sv.views))].Record(id)
}

// Live returns the snapshot's live records across all shards, in ascending
// stable-ID order.
func (sv *ShardedView) Live() []strutil.Record {
	var out []strutil.Record
	for _, v := range sv.views {
		out = append(out, v.Live()...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// fanout runs fn for every shard view concurrently under a shared
// cancellable context: the first shard to return an error cancels its
// siblings (errgroup-style propagation, without the dependency). When the
// caller's own context was cancelled, that cancellation is returned bare —
// the shards did not fail, the request was withdrawn. Any other failure is
// reported as one *FanoutError naming every failing shard (siblings that
// merely observed the resulting internal cancellation are collateral, not
// failures, and are omitted).
func (sv *ShardedView) fanout(ctx context.Context, fn func(ctx context.Context, w int) error) error {
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(sv.views))
	parallelFor(len(sv.views), len(sv.views), func(w int) {
		if errs[w] = fn(ictx, w); errs[w] != nil {
			cancel()
		}
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	return newFanoutError("shard", errs)
}

// ProbeRecord runs the filter-and-verify pipeline for one tokenised query
// against every shard concurrently and merges the matches in ascending
// stable-ID order. The signature is selected once (all shards share the
// global order, so one signature is valid everywhere) and the query is
// prepared at most once, on the first shard that produces a candidate.
func (sv *ShardedView) ProbeRecord(tokens []string) []QueryMatch {
	out, _ := sv.ProbeRecordCtx(context.Background(), tokens, QueryOpts{})
	return out
}

// ProbeRecordCtx is ProbeRecord with cooperative cancellation and
// per-request options: the first shard to observe the cancelled context
// aborts the whole fan-out. An empty token slice returns an empty result
// without touching any shard.
func (sv *ShardedView) ProbeRecordCtx(ctx context.Context, tokens []string, qo QueryOpts) ([]QueryMatch, error) {
	if len(tokens) == 0 {
		return nil, ctx.Err()
	}
	if len(sv.views) == 1 {
		return sv.views[0].ProbeRecordCtx(ctx, tokens, qo)
	}
	start := time.Now()
	d := sv.planRecord(tokens, qo)
	lp := &lazyPrepared{calc: sv.sx.joiner.calcFor(sv.sx.opts), tokens: tokens}
	parts := make([][]QueryMatch, len(sv.views))
	var ex planner.Exec
	err := sv.fanout(ctx, func(ictx context.Context, w int) error {
		var werr error
		parts[w], werr = sv.views[w].probeRecordPrepared(ictx, d.Sig, d.Tau, lp, qo, &ex)
		return werr
	})
	if err != nil {
		return nil, err
	}
	sv.sx.planner.ObserveExec(d, &ex, 1, time.Since(start).Nanoseconds())
	var out []QueryMatch
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Record < out[b].Record })
	return out, nil
}

// planRecord resolves one probe-side configuration and signature for a
// fan-out request: one plan per request, shared by every shard (the shards
// share the order, so one signature is valid everywhere, and the planner
// sees the global document frequencies via listLen).
func (sv *ShardedView) planRecord(tokens []string, qo QueryOpts) planner.Decision {
	if qo.ProbeTau > 0 {
		method, tau := pinnedConfig(qo, sv.sx.tau)
		d := planner.FixedConfig(method, tau)
		d.Sig = sv.gen.sel.Signature(tokens, method, tau)
		return d
	}
	pl := sv.sx.planner
	if pl == nil || qo.Plan == PlanFixed {
		d := planner.FixedConfig(sv.sx.opts.Method, sv.sx.tau)
		d.Sig = sv.gen.sel.Signature(tokens, sv.sx.opts.Method, sv.sx.tau)
		return d
	}
	return pl.Plan(sv.gen.sel, sv.gen.sel.Prepare(tokens), sv.listLen, sv.totalRecords())
}

// planBatch resolves one configuration for a whole probe batch (see
// View.planBatch; the sample is prepared under the shared generation's
// selector).
func (sv *ShardedView) planBatch(records []strutil.Record) planner.Decision {
	pl := sv.sx.planner
	if pl == nil || len(records) == 0 {
		return planner.FixedConfig(sv.sx.opts.Method, sv.sx.tau)
	}
	stride := (len(records) + planBatchSample - 1) / planBatchSample
	pres := make([]pebble.Presig, 0, planBatchSample)
	for i := 0; i < len(records); i += stride {
		pres = append(pres, sv.gen.sel.Prepare(records[i].Tokens))
	}
	return pl.PlanBatch(sv.gen.sel, pres, sv.listLen, sv.totalRecords())
}

// listLen sums one interned key's live posting lengths across every shard's
// base index — the global document frequency, identical to what the
// unsharded index would report (routing partitions records, not postings).
func (sv *ShardedView) listLen(id uint32) int {
	n := 0
	for _, v := range sv.views {
		n += v.base.inv.ListLength(id)
	}
	return n
}

// totalRecords is the snapshot's catalog length summed over the shards.
func (sv *ShardedView) totalRecords() int {
	n := 0
	for _, v := range sv.views {
		n += len(v.records)
	}
	return n
}

// QueryTopK fans the thresholded top-k scan out to every shard concurrently
// and k-bounds the merge: each shard returns its own top k through the
// bounded heap, and the per-shard streams are folded through one more
// k-bounded heap — sound because the global top k under the total order
// (similarity desc, ID asc) is contained in the union of per-shard top k's.
// Results are ordered by descending similarity (ascending ID on ties); k ≤ 0
// yields an empty result without touching any shard.
func (sv *ShardedView) QueryTopK(tokens []string, k int) []QueryMatch {
	out, _ := sv.QueryTopKCtx(context.Background(), tokens, k, QueryOpts{})
	return out
}

// QueryTopKCtx is QueryTopK with cooperative cancellation and per-request
// options: the first shard to observe the cancelled context aborts the whole
// fan-out. An empty token slice or k ≤ 0 returns an empty result without
// touching any shard.
func (sv *ShardedView) QueryTopKCtx(ctx context.Context, tokens []string, k int, qo QueryOpts) ([]QueryMatch, error) {
	if k <= 0 || len(tokens) == 0 {
		return nil, ctx.Err()
	}
	if len(sv.views) == 1 {
		return sv.views[0].QueryTopKCtx(ctx, tokens, k, qo)
	}
	start := time.Now()
	d := sv.planRecord(tokens, qo)
	lp := &lazyPrepared{calc: sv.sx.joiner.calcFor(sv.sx.opts), tokens: tokens}
	heaps := make([]topKHeap, len(sv.views))
	var ex planner.Exec
	// One floor tracker spans the whole fan-out: as soon as any shard's
	// heap fills, its k-th similarity becomes a lower bound on the global
	// k-th best, so sibling shards can skip candidates bounded below it.
	var ft floorTracker
	err := sv.fanout(ctx, func(ictx context.Context, w int) error {
		var werr error
		heaps[w], werr = sv.views[w].queryTopKPrepared(ictx, d.Sig, d.Tau, lp, k, qo, &ex, &ft)
		return werr
	})
	if err != nil {
		return nil, err
	}
	sv.sx.planner.ObserveExec(d, &ex, 1, time.Since(start).Nanoseconds())
	merged := heaps[0]
	for _, h := range heaps[1:] {
		for _, m := range h.entries {
			merged.offer(m, k)
		}
	}
	return merged.sorted(), nil
}

// Probe joins a probe collection against the snapshot through the shared
// probe pipeline: probe signatures and prepared records are computed once,
// and the candidate stage fans each probe record out across the per-shard
// count filters, remapping shard-local candidate positions into the
// flattened catalog. Pair.S carries stable record IDs; results are sorted by
// (S, T) and identical to the unsharded Probe. Stats.ShardCandidates breaks
// the candidate count down per shard (its entries sum to Stats.Candidates);
// the stage durations are wall-clock across the whole fan-out, not per-shard
// CPU sums.
func (sv *ShardedView) Probe(records []strutil.Record) ([]Pair, Stats) {
	if len(sv.views) == 1 {
		return sv.views[0].Probe(records)
	}
	start := time.Now()
	d := sv.planBatch(records)
	tgt, shardCands := sv.probeTarget(d.Tau)
	sigs := sv.sx.joiner.signatures(records, sv.gen.sel, d.Method, d.Tau)
	prep := prepareRecords(records, sv.sx.joiner.calcFor(sv.sx.opts))
	pairs, stats := runProbeStages(sv.sx.joiner.calcFor(sv.sx.opts), sv.sx.opts, tgt, records, sigs, prep, false, time.Since(start))
	stats.ShardCandidates = shardCands()
	stats.PlanTau = planTauOf(d)
	// Verification runs centrally over the flattened catalog, not per
	// shard; attribute its counters to shard 0 so the sharded Stats sum
	// still accounts for every verified candidate exactly once.
	sv.views[0].dx.noteVerify(verifyTally{verified: stats.VerifiedCandidates, pruned: stats.PrunedByBound, memoHits: stats.MemoHits})
	sv.sx.planner.Observe(d, int64(stats.Candidates), stats.VerifiedCandidates, int64(len(records)), stats.VerifyTime.Nanoseconds(), 0)
	return pairs, stats
}

// ProbeSeq is the streaming form of Probe: matches are yielded in
// verification-completion order as the fan-out verify stage confirms them,
// a consumer break stops the pipeline, and a ctx cancellation aborts the
// candidate fan-out and every verification worker before surfacing as one
// final error.
func (sv *ShardedView) ProbeSeq(ctx context.Context, records []strutil.Record) iter.Seq2[Pair, error] {
	if len(sv.views) == 1 {
		return sv.views[0].ProbeSeq(ctx, records)
	}
	return pairSeq(ctx, func(ctx context.Context, emit func(Pair) bool) error {
		start := time.Now()
		d := sv.planBatch(records)
		tgt, _ := sv.probeTarget(d.Tau)
		calc := sv.sx.joiner.calcFor(sv.sx.opts)
		sigs := sv.sx.joiner.signatures(records, sv.gen.sel, d.Method, d.Tau)
		prep := prepareRecords(records, calc)
		stats, err := runProbeStream(ctx, calc, sv.sx.opts, tgt, records, sigs, prep, false, time.Since(start), emit)
		sv.views[0].dx.noteVerify(verifyTally{verified: stats.VerifiedCandidates, pruned: stats.PrunedByBound, memoHits: stats.MemoHits})
		if err == nil {
			sv.sx.planner.Observe(d, int64(stats.Candidates), stats.VerifiedCandidates, int64(len(records)), stats.VerifyTime.Nanoseconds(), 0)
		}
		return err
	})
}

// probeTarget flattens the snapshot into the probe target the shared stages
// run over, wiring the fan-out candidate stage in at the batch's planned
// overlap constraint. The returned accessor reads the per-shard candidate
// counts the stage accumulated.
func (sv *ShardedView) probeTarget(tau int) (probeTarget, func() []int) {
	sv.initFlat()
	stage, shardCands := sv.candidateStage(tau)
	return probeTarget{
		records:    sv.flat.records,
		prepared:   sv.flat.prepared,
		avgSig:     sv.flat.avgSig,
		candidates: stage,
	}, shardCands
}

// initFlat concatenates the per-shard catalogs into one position space for
// the batch-probe pipeline. Views are immutable, so this is done once per
// ShardedView and shared by every Probe on it.
func (sv *ShardedView) initFlat() {
	sv.once.Do(func() {
		total, live := 0, 0
		var sigMass float64
		for _, v := range sv.views {
			total += len(v.records)
			st := v.Stats()
			live += st.Live
			sigMass += v.avgSig * float64(st.Live)
		}
		sv.flat.records = make([]strutil.Record, 0, total)
		sv.flat.prepared = make([]*core.PreparedRecord, 0, total)
		sv.flat.offsets = make([]int, len(sv.views))
		for w, v := range sv.views {
			sv.flat.offsets[w] = len(sv.flat.records)
			sv.flat.records = append(sv.flat.records, v.records...)
			sv.flat.prepared = append(sv.flat.prepared, v.prepared...)
		}
		if live > 0 {
			sv.flat.avgSig = sigMass / float64(live)
		}
	})
}

// candidateStage builds the fan-out count filter for a whole probe
// collection: per probe record, every shard's filter runs over the shared
// scratch (counts are zeroed between shards), and shard-local survivor
// positions are remapped by the shard's offset into the flattened catalog.
// The second return value reads the per-shard candidate counts accumulated
// across all probe records (each stage invocation gets fresh counters).
func (sv *ShardedView) candidateStage(tau int) (func(ctx context.Context, sigs []pebble.Signature, workers int) ([]pairKey, filterTally, error), func() []int) {
	counters := make([]atomic.Int64, len(sv.views))
	stage := func(ctx context.Context, sigs []pebble.Signature, workers int) ([]pairKey, filterTally, error) {
		return parallelCandidates(ctx, len(sigs), len(sv.flat.records), workers, &sv.sx.probePool, func(sc *probeScratch, t int) ([]int32, filterTally) {
			sc.merged = sc.merged[:0]
			var sum filterTally
			for w, v := range sv.views {
				// Each shard's filter reuses the worker scratch: the arena
				// is re-sized to the shard's catalog per call (monotone
				// within one fan-out only by accident, so Reset handles
				// shrink and grow), and survivors are staged into merged
				// before the next shard overwrites the touched list.
				sc.acc.Reset(len(v.records))
				recs, ft := v.candidatesRecord(sigs[t], tau, sc)
				sum.add(ft)
				counters[w].Add(int64(len(recs)))
				off := int32(sv.flat.offsets[w])
				for _, r := range recs {
					sc.merged = append(sc.merged, off+r)
				}
			}
			return sc.merged, sum
		})
	}
	shardCands := func() []int {
		out := make([]int, len(counters))
		for i := range counters {
			out[i] = int(counters[i].Load())
		}
		return out
	}
	return stage, shardCands
}

// calcFor resolves the calculator an Options selects: the override when
// set, the joiner default otherwise.
func (j *Joiner) calcFor(opts Options) *core.Calculator {
	if opts.Calculator != nil {
		return opts.Calculator
	}
	return j.calc
}
