package join

import (
	"fmt"
	"sort"

	"github.com/aujoin/aujoin/internal/core"
	"github.com/aujoin/aujoin/internal/invindex"
	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/planner"
	"github.com/aujoin/aujoin/internal/store"
	"github.com/aujoin/aujoin/internal/strutil"
)

// CaptureSnapshot freezes the index's durable state into a store.Snapshot:
// the shared pebble order, every record (live and tombstoned) with its
// stored signature-ID multiset and prepared-segment metadata, the flat
// tombstone bitmap and the planner's feedback table. The capture runs under
// every shard's writer lock (and the refreeze mutex), so it is one atomic
// cut across shards — exactly the guarantee Snapshot relaxes for serving —
// and is therefore safe to pair with a WAL: every mutation is either in the
// capture or logged after it, never half of each.
//
// Records are flattened in ascending stable-ID order. That order round-trips
// exactly because shard routing is a pure function of the ID and both the
// original build and every insert append in ascending-ID order, so each
// shard's position order IS its ascending-ID order and re-partitioning the
// flat list recovers it.
func (sx *ShardedIndex) CaptureSnapshot() *store.Snapshot {
	sx.refreezeMu.Lock()
	defer sx.refreezeMu.Unlock()
	for _, sh := range sx.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range sx.shards {
			sh.mu.Unlock()
		}
	}()
	sx.mu.Lock()
	nextID := sx.nextID
	sx.mu.Unlock()

	order := sx.shards[0].base.order
	if g := sx.gen.Load(); g != nil {
		order = g.order
	}

	snap := &store.Snapshot{
		Theta:         sx.opts.Theta,
		Tau:           sx.tau,
		Method:        uint8(sx.opts.Method),
		Plan:          uint8(sx.opts.Plan),
		ClassicFilter: sx.opts.ClassicFilter,
		Shards:        len(sx.shards),
		NextID:        uint64(nextID),
		Order:         exportOrder(order),
		Planner:       plannerToData(sx.planner.Export()),
	}

	total := 0
	for _, sh := range sx.shards {
		total += len(sh.records)
	}
	type flatRec struct {
		data store.RecordData
		dead bool
	}
	flat := make([]flatRec, 0, total)
	for _, sh := range sx.shards {
		segSigs := sh.segmentSigIDsLocked()
		var ids []uint32
		for pos, rec := range sh.records {
			if pos < sh.base.sigCount() {
				ids = sh.base.appendSigIDsAt(ids[:0], pos)
			} else {
				ids = append(ids[:0], segSigs[pos]...)
			}
			sigIDs := make([]uint32, 0, len(ids))
			for _, id := range ids {
				if id != pebble.NoID {
					sigIDs = append(sigIDs, id)
				}
			}
			segs, minPart := sh.prepared[pos].PersistMeta()
			rd := store.RecordData{
				ID:      uint32(rec.ID),
				Raw:     rec.Raw,
				SigIDs:  sigIDs,
				Segs:    make([]store.SegMeta, len(segs)),
				MinPart: uint32(minPart),
			}
			for i, sg := range segs {
				rd.Segs[i] = store.SegMeta{
					Start:  uint32(sg.Span.Start),
					End:    uint32(sg.Span.End),
					Rule:   sg.Rule,
					Entity: sg.Entity,
				}
			}
			flat = append(flat, flatRec{data: rd, dead: sh.dead[pos>>6]&(1<<(uint(pos)&63)) != 0})
		}
	}
	sort.Slice(flat, func(a, b int) bool { return flat[a].data.ID < flat[b].data.ID })

	snap.Records = make([]store.RecordData, len(flat))
	snap.Dead = make([]uint64, (len(flat)+63)/64)
	for i := range flat {
		snap.Records[i] = flat[i].data
		if flat[i].dead {
			snap.Dead[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return snap
}

// segmentSigIDsLocked recovers the signature-ID multiset of every record
// inserted since the last rebuild from the delta segments' posting lists
// (position -> sorted IDs, one entry per signature pebble). The deltas are
// the only place those signatures survive — the base keeps its sigs slice,
// but inserted records only ever materialized theirs as postings. Sorting
// ascending is safe because posting counts depend only on the multiset, not
// the order IDs were added in.
func (dx *DynamicIndex) segmentSigIDsLocked() map[int][]uint32 {
	if len(dx.segs) == 0 {
		return nil
	}
	out := make(map[int][]uint32)
	for _, seg := range dx.segs {
		seg.inv.Entries(func(id uint32, posts []invindex.Posting) {
			for _, p := range posts {
				for k := 0; k < p.Count; k++ {
					out[p.Record] = append(out[p.Record], id)
				}
			}
		})
	}
	for pos := range out {
		ids := out[pos]
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	}
	return out
}

// exportOrder serializes a pebble order: the frozen prefix in dense-ID order
// with its finalize-time frequencies, then the dynamic region in ID order.
// The caller must hold every writer lock of the indexes interning into the
// order, which freezes the dynamic region for the duration.
func exportOrder(order *pebble.Order) store.OrderData {
	frozen := order.FrozenKeys()
	od := store.OrderData{
		FrozenKeys: make([]string, frozen),
		Freqs:      make([]uint32, frozen),
	}
	for i := 0; i < frozen; i++ {
		k := order.KeyOf(uint32(i))
		od.FrozenKeys[i] = k
		od.Freqs[i] = uint32(order.Frequency(k))
	}
	dyn := order.DynamicCount()
	od.DynamicKeys = make([]string, dyn)
	for i := 0; i < dyn; i++ {
		od.DynamicKeys[i] = order.KeyOf(uint32(frozen + i))
	}
	return od
}

// RestoreShardedIndex reconstructs a sharded dynamic index from a decoded
// snapshot without re-running signature selection or prepared-segment
// enumeration: the stored order is reinstalled verbatim, the stored
// signature-ID multisets rebuild each shard's inverted index, and the
// prepared verification records are rehydrated from their persisted spans
// (only the deterministic per-segment similarity tables are recomputed). The
// result serves bit-identical Query/QueryTopK/Probe answers to the index the
// snapshot was captured from.
//
// The Joiner must be constructed over the same similarity context
// (synonym rules, taxonomy, measure configuration) the original index used —
// the context is the one input the snapshot does not carry.
func (j *Joiner) RestoreShardedIndex(snap *store.Snapshot, dopts DynamicOptions) (*ShardedIndex, error) {
	if snap.NextID > uint64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("join: snapshot next ID %d overflows int", snap.NextID)
	}
	opts := Options{
		Theta:         snap.Theta,
		Tau:           snap.Tau,
		Method:        pebble.Method(snap.Method),
		ClassicFilter: snap.ClassicFilter,
		Plan:          PlanMode(snap.Plan),
	}
	freqs := make([]int, len(snap.Order.Freqs))
	for i, f := range snap.Order.Freqs {
		freqs[i] = int(f)
	}
	order, err := pebble.RestoreOrder(snap.Order.FrozenKeys, freqs, snap.Order.DynamicKeys)
	if err != nil {
		return nil, err
	}

	shards := snap.Shards
	sx := &ShardedIndex{joiner: j, opts: opts, tau: opts.tau(), nextID: int(snap.NextID)}
	if opts.Plan != PlanFixed {
		sx.planner = planner.New(opts.Method, sx.tau)
		if st := plannerFromData(snap.Planner); st != nil {
			// A mismatched table (snapshot from another configuration) leaves
			// the planner cold, which is safe: planner state is a warm-start
			// optimization, never a correctness input.
			_ = sx.planner.Import(st)
		}
	}
	if dopts.CacheSize >= 0 {
		sx.cache = core.NewPreparedCache(dopts.CacheSize)
	}
	sx.noRefreeze.Store(dopts.RebuildFraction < 0)

	// Re-tokenize and rehydrate the prepared records in parallel; both are
	// deterministic functions of the raw text and the similarity context.
	calc := j.calcFor(opts)
	memo := core.NewSegmentMemo()
	n := len(snap.Records)
	records := make([]strutil.Record, n)
	prepared := make([]*core.PreparedRecord, n)
	sigIDs := make([][]uint32, n)
	errs := make([]error, n)
	parallelFor(n, 0, func(i int) {
		rd := &snap.Records[i]
		records[i] = strutil.NewRecord(int(rd.ID), rd.Raw)
		segs := make([]core.SegPersist, len(rd.Segs))
		for k, sg := range rd.Segs {
			segs[k] = core.SegPersist{
				Span:   strutil.Span{Start: int(sg.Start), End: int(sg.End)},
				Rule:   sg.Rule,
				Entity: sg.Entity,
			}
		}
		prepared[i], errs[i] = calc.RestorePrepared(records[i].Tokens, segs, int(rd.MinPart), memo)
		// The index side of the pipeline reads only the signature's pebble
		// IDs (posting lists, count filter, signature length), so the
		// restored index keeps the compact ID form — aliasing the decoded
		// snapshot buffers in place — instead of materializing full pebble
		// structs it would never read.
		sigIDs[i] = rd.SigIDs
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("join: restore record %d: %w", snap.Records[i].ID, err)
		}
	}

	// Re-partition the flat catalog: routing is a pure function of the
	// stable ID, and the flat list is ascending-ID, so each shard receives
	// its records in exactly its original position order.
	type part struct {
		records  []strutil.Record
		sigIDs   [][]uint32
		prepared []*core.PreparedRecord
		deadIDs  []int
	}
	parts := make([]part, shards)
	for i := range records {
		w := shardOf(records[i].ID, shards)
		p := &parts[w]
		p.records = append(p.records, records[i])
		p.sigIDs = append(p.sigIDs, sigIDs[i])
		p.prepared = append(p.prepared, prepared[i])
		if snap.Dead[i>>6]&(1<<(uint(i)&63)) != 0 {
			p.deadIDs = append(p.deadIDs, records[i].ID)
		}
	}

	var sharedOrder *pebble.Order
	if shards > 1 {
		sharedOrder = order
	}
	sx.shards = make([]*DynamicIndex, shards)
	parallelFor(shards, shards, func(w int) {
		p := &parts[w]
		base := j.restoreBase(p.records, p.sigIDs, p.prepared, order, opts)
		sx.shards[w] = j.restoreDynamic(base, sharedOrder != nil, opts, dopts, sx.cache, sx.planner, p.deadIDs)
	})
	if sharedOrder != nil {
		sx.gen.Store(&orderGen{order: sharedOrder, sel: pebble.NewSelector(j.gen, sharedOrder, opts.Theta)})
	}
	return sx, nil
}

// restoreBase is buildIndex with signature selection and verification
// preparation replaced by the snapshot's stored artifacts: only the inverted
// index and its hybrid layout are rebuilt (both are deterministic functions
// of the signature multisets, and the layout affects performance only — the
// candidate sets are representation-independent).
func (j *Joiner) restoreBase(records []strutil.Record, sigIDs [][]uint32, prepared []*core.PreparedRecord, order *pebble.Order, opts Options) *Index {
	inv := invindex.New(order.NumKeys())
	// The full signature multiset is in hand before the first Add — count it
	// and reserve every posting list exactly, so rebuilding the index is one
	// arena allocation instead of per-list regrow churn (the dominant cost
	// of a large restore otherwise).
	caps := make([]int32, order.NumKeys())
	for i := range sigIDs {
		for _, id := range sigIDs[i] {
			if int(id) < len(caps) {
				caps[id]++
			}
		}
	}
	inv.Presize(caps)
	totalLen := 0
	for i := range sigIDs {
		inv.Add(i, sigIDs[i])
		totalLen += len(sigIDs[i])
	}
	hybridizeIndex(inv, order, opts)
	ix := &Index{
		joiner:   j,
		opts:     opts,
		tau:      opts.tau(),
		calc:     j.calcFor(opts),
		order:    order,
		sel:      pebble.NewSelector(j.gen, order, opts.Theta),
		records:  records,
		sigIDs:   sigIDs,
		prepared: prepared,
		inv:      inv,
	}
	if len(records) > 0 {
		ix.avgSig = float64(totalLen) / float64(len(records))
	}
	return ix
}

// restoreDynamic wraps a restored base as one dynamic shard and re-applies
// its tombstones. The restored base holds every record — live and dead — at
// its original position, so the dead bits land on the same positions the
// original index had them and the posting lists match entry for entry.
func (j *Joiner) restoreDynamic(base *Index, shared bool, opts Options, dopts DynamicOptions, cache *core.PreparedCache, pl *planner.Planner, deadIDs []int) *DynamicIndex {
	dx := &DynamicIndex{
		joiner:          j,
		opts:            opts,
		tau:             opts.tau(),
		calc:            base.calc,
		cache:           cache,
		planner:         pl,
		sharedOrder:     shared,
		rebuildFraction: dopts.RebuildFraction,
		maxSegments:     dopts.MaxSegments,
	}
	if dx.rebuildFraction == 0 {
		dx.rebuildFraction = defaultRebuildFraction
	}
	if dx.maxSegments <= 0 {
		dx.maxSegments = defaultMaxSegments
	}
	dx.adoptBaseLocked(base)
	for _, id := range deadIDs {
		pos := dx.positions[id]
		delete(dx.positions, id)
		dx.dead[pos>>6] |= 1 << (uint(pos) & 63)
		dx.deadCount++
		dx.sigLenLive -= dx.sigLens[pos]
	}
	dx.publishLocked()
	return dx
}

// plannerToData converts an exported planner state into its snapshot form.
func plannerToData(st *planner.State) *store.PlannerData {
	if st == nil {
		return nil
	}
	return &store.PlannerData{
		TauMax:         st.TauMax,
		Method:         uint8(st.Method),
		CandRatio:      st.CandRatio,
		VerifyNs:       st.VerifyNs,
		LatNs:          st.LatNs,
		DPShrink:       st.DPShrink,
		Decisions:      st.Decisions,
		EpochDecisions: st.EpochDecisions,
		ExploreN:       st.ExploreN,
		Plans:          st.Plans,
		Fallbacks:      st.Fallbacks,
		Reanchors:      st.Reanchors,
		Suggested:      st.Suggested,
	}
}

// plannerFromData is the inverse of plannerToData.
func plannerFromData(pd *store.PlannerData) *planner.State {
	if pd == nil {
		return nil
	}
	return &planner.State{
		TauMax:         pd.TauMax,
		Method:         pebble.Method(pd.Method),
		CandRatio:      pd.CandRatio,
		VerifyNs:       pd.VerifyNs,
		LatNs:          pd.LatNs,
		DPShrink:       pd.DPShrink,
		Decisions:      pd.Decisions,
		EpochDecisions: pd.EpochDecisions,
		ExploreN:       pd.ExploreN,
		Plans:          pd.Plans,
		Fallbacks:      pd.Fallbacks,
		Reanchors:      pd.Reanchors,
		Suggested:      pd.Suggested,
	}
}
