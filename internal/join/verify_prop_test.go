package join

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// This file pins the verify-phase optimisations — the rising-threshold top-k
// scheduler, the per-query msim memo, and the gram-signature prefilter — to
// the plain verify loop: with Options.NoVerifyPrune and Options.NoVerifyMemo
// set, every entry point (QueryTopK, single-record probe, batch Probe,
// one-shot Join) must return bit-identical results across every filter
// method, threshold and serving shape (static snapshot, post-mutation
// snapshot, sharded fan-out).

func plainVerify(opts Options) Options {
	opts.NoVerifyPrune = true
	opts.NoVerifyMemo = true
	return opts
}

// propQueries derives tokenised query strings that overlap the skewed
// propCorpus vocabulary, so most queries have candidates and some fill their
// top-k heaps (the pruning path needs full heaps to raise the floor).
func propQueries(n int, seed int64) [][]string {
	recs := propCorpus(n, seed)
	out := make([][]string, len(recs))
	for i, r := range recs {
		out[i] = r.Tokens
	}
	return out
}

func pairsEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// topKViews returns the two snapshots to compare for one scenario: the index
// with optimised verification and the one running the plain loop.
type viewPair struct {
	name string
	opt  interface {
		QueryTopKCtx(context.Context, []string, int, QueryOpts) ([]QueryMatch, error)
	}
	plain interface {
		QueryTopKCtx(context.Context, []string, int, QueryOpts) ([]QueryMatch, error)
	}
}

func TestTopKPruningMatchesPlainVerify(t *testing.T) {
	j := NewJoiner(paperContext())
	recs := propCorpus(500, 101)
	queries := propQueries(30, 202)
	ctx := context.Background()
	for _, opts := range propConfigs() {
		base := fmt.Sprintf("%v/θ=%v", opts.Method, opts.Theta)

		// Static and post-mutation snapshots of a dynamic index.
		od := j.BuildDynamicIndex(recs, opts, DynamicOptions{})
		pd := j.BuildDynamicIndex(recs, plainVerify(opts), DynamicOptions{})
		scenarios := []viewPair{{base + "/static", od.Snapshot(), pd.Snapshot()}}
		mutate(od, 303)
		mutate(pd, 303)
		scenarios = append(scenarios, viewPair{base + "/mutated", od.Snapshot(), pd.Snapshot()})

		// Sharded fan-out (shares one rising floor across shards).
		os := j.BuildShardedIndex(recs, 3, opts, DynamicOptions{})
		ps := j.BuildShardedIndex(recs, 3, plainVerify(opts), DynamicOptions{})
		mutate(os, 404)
		mutate(ps, 404)
		scenarios = append(scenarios, viewPair{base + "/sharded", os.Snapshot(), ps.Snapshot()})

		for _, sc := range scenarios {
			for _, k := range []int{1, 3, 10} {
				for _, qo := range []QueryOpts{{}, {Workers: 8}} {
					for qi, q := range queries {
						got, err := sc.opt.QueryTopKCtx(ctx, q, k, qo)
						if err != nil {
							t.Fatalf("%s k=%d q#%d: optimised: %v", sc.name, k, qi, err)
						}
						want, err := sc.plain.QueryTopKCtx(ctx, q, k, qo)
						if err != nil {
							t.Fatalf("%s k=%d q#%d: plain: %v", sc.name, k, qi, err)
						}
						if !matchesEqual(got, want) {
							t.Fatalf("%s k=%d workers=%d q#%d: pruned top-k diverged:\n got %v\nwant %v",
								sc.name, k, qo.Workers, qi, got, want)
						}
					}
				}
			}
		}

		// The optimised indexes must actually have pruned or memoized
		// something, or the comparison is vacuous.
		st := od.Stats()
		if st.PrunedByBound == 0 && st.MemoHits == 0 {
			t.Errorf("%s: optimised dynamic index reported no pruning and no memo hits", base)
		}
		if st.VerifiedCandidates == 0 {
			t.Errorf("%s: optimised dynamic index reported no verified candidates", base)
		}
	}
}

func TestProbeAndJoinMatchPlainVerify(t *testing.T) {
	j := NewJoiner(paperContext())
	recs := propCorpus(400, 505)
	probe := propCorpus(100, 606)
	queries := propQueries(25, 707)
	for _, opts := range propConfigs() {
		name := fmt.Sprintf("%v/θ=%v", opts.Method, opts.Theta)

		// One-shot join (streams through the batch verify pipeline).
		gp, gs := j.Join(recs, probe, opts)
		wp, ws := j.Join(recs, probe, plainVerify(opts))
		if !pairsEqual(gp, wp) {
			t.Fatalf("%s: Join pairs diverged: %d vs %d", name, len(gp), len(wp))
		}
		if gs.Candidates != ws.Candidates {
			t.Fatalf("%s: Join candidates diverged: %d vs %d", name, gs.Candidates, ws.Candidates)
		}

		// Dynamic snapshot: batch Probe and single-record probes.
		od := j.BuildDynamicIndex(recs, opts, DynamicOptions{})
		pd := j.BuildDynamicIndex(recs, plainVerify(opts), DynamicOptions{})
		mutate(od, 808)
		mutate(pd, 808)
		ov, pv := od.Snapshot(), pd.Snapshot()
		gp, _ = ov.Probe(probe)
		wp, _ = pv.Probe(probe)
		if !pairsEqual(gp, wp) {
			t.Fatalf("%s: Probe pairs diverged: %d vs %d", name, len(gp), len(wp))
		}
		for qi, q := range queries {
			got := ov.ProbeRecord(q)
			want := pv.ProbeRecord(q)
			if !matchesEqual(got, want) {
				t.Fatalf("%s q#%d: ProbeRecord diverged:\n got %v\nwant %v", name, qi, got, want)
			}
		}
	}
}

// TestMemoOnlyToggleEquivalence isolates the memo from the scheduler: with
// pruning active in both runs, flipping only NoVerifyMemo must not change a
// single bit (memoized msim values are exact, not approximations).
func TestMemoOnlyToggleEquivalence(t *testing.T) {
	j := NewJoiner(paperContext())
	recs := propCorpus(400, 909)
	queries := propQueries(25, 1010)
	ctx := context.Background()
	for _, opts := range propConfigs() {
		name := fmt.Sprintf("%v/θ=%v", opts.Method, opts.Theta)
		noMemo := opts
		noMemo.NoVerifyMemo = true
		ov := j.BuildDynamicIndex(recs, opts, DynamicOptions{}).Snapshot()
		nv := j.BuildDynamicIndex(recs, noMemo, DynamicOptions{}).Snapshot()
		for qi, q := range queries {
			got, err := ov.QueryTopKCtx(ctx, q, 5, QueryOpts{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := nv.QueryTopKCtx(ctx, q, 5, QueryOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if !matchesEqual(got, want) {
				t.Fatalf("%s q#%d: memo toggle changed results:\n got %v\nwant %v", name, qi, got, want)
			}
		}
	}
}

// TestPrunedQueriesUnderMutation hammers pruned top-k queries (sequential
// and parallel) against a dynamic index while writers insert and remove
// records — the -race run of the suite checks the floor tracker, the memo
// and the pooled scratches for unsynchronised sharing.
func TestPrunedQueriesUnderMutation(t *testing.T) {
	j := NewJoiner(paperContext())
	recs := propCorpus(400, 1111)
	queries := propQueries(16, 1212)
	dx := j.BuildDynamicIndex(recs, Options{Theta: 0.75, Tau: 2}, DynamicOptions{MaxSegments: 3})
	sx := j.BuildShardedIndex(recs, 3, Options{Theta: 0.75, Tau: 2}, DynamicOptions{})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(i+w)%len(queries)]
				qo := QueryOpts{}
				if i%2 == 0 {
					qo.Workers = 4
				}
				if _, err := dx.Snapshot().QueryTopKCtx(ctx, q, 5, qo); err != nil {
					t.Errorf("dynamic query: %v", err)
					return
				}
				if _, err := sx.Snapshot().QueryTopKCtx(ctx, q, 5, qo); err != nil {
					t.Errorf("sharded query: %v", err)
					return
				}
			}
		}(w)
	}
	rng := rand.New(rand.NewSource(1313))
	for b := 0; b < 8; b++ {
		batch := make([]string, 20)
		for i := range batch {
			batch[i] = fmt.Sprintf("tok%02d tok%02d hot%d_%d", rng.Intn(60), rng.Intn(60), b, i)
		}
		ids := dx.Insert(batch)
		sx.Insert(batch)
		for _, id := range ids[:5] {
			dx.Remove(id)
		}
	}
	close(stop)
	wg.Wait()

	st := dx.Stats()
	if st.VerifiedCandidates == 0 {
		t.Error("hammer ran no verifications")
	}
}
