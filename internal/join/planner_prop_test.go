package join

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/strutil"
)

// This file pins the adaptive planner's exactness contract: for every filter
// method, threshold and serving path (static snapshot, post-mutation
// snapshot, sharded fan-out), queries executed under PlanAuto must return
// bit-identical results to the fixed build-time configuration. The planner
// is only allowed to change how much the candidate phase over-admits — never
// what survives exact verification.

// queryView is the slice of View/ShardedView the equivalence tests drive.
type queryView interface {
	ProbeRecordCtx(ctx context.Context, tokens []string, qo QueryOpts) ([]QueryMatch, error)
	QueryTopKCtx(ctx context.Context, tokens []string, k int, qo QueryOpts) ([]QueryMatch, error)
	Probe(records []strutil.Record) ([]Pair, Stats)
	Stats() DynamicStats
}

// plannerScenario builds an auto-planned index and a fixed-plan twin over the
// same corpus and mutation script, returning snapshots of both.
type plannerScenario struct {
	name  string
	build func(j *Joiner, recs []strutil.Record, opts Options) (auto, fixed queryView)
}

func plannerScenarios() []plannerScenario {
	fixedOpts := func(opts Options) Options {
		opts.Plan = PlanFixed
		return opts
	}
	return []plannerScenario{
		{"static", func(j *Joiner, recs []strutil.Record, opts Options) (queryView, queryView) {
			return j.BuildDynamicIndex(recs, opts, DynamicOptions{}).Snapshot(),
				j.BuildDynamicIndex(recs, fixedOpts(opts), DynamicOptions{}).Snapshot()
		}},
		{"mutated", func(j *Joiner, recs []strutil.Record, opts Options) (queryView, queryView) {
			// MaxSegments 2 forces rebuilds mid-script, so the planned paths
			// run against re-finalized snapshots with re-anchored feedback.
			ad := j.BuildDynamicIndex(recs, opts, DynamicOptions{MaxSegments: 2})
			fd := j.BuildDynamicIndex(recs, fixedOpts(opts), DynamicOptions{MaxSegments: 2})
			mutate(ad, 7)
			mutate(fd, 7)
			return ad.Snapshot(), fd.Snapshot()
		}},
		{"sharded", func(j *Joiner, recs []strutil.Record, opts Options) (queryView, queryView) {
			ax := j.BuildShardedIndex(recs, 3, opts, DynamicOptions{})
			fx := j.BuildShardedIndex(recs, 3, fixedOpts(opts), DynamicOptions{})
			mutate(ax, 7)
			mutate(fx, 7)
			return ax.Snapshot(), fx.Snapshot()
		}},
	}
}

func sortMatches(ms []QueryMatch) []QueryMatch {
	sort.Slice(ms, func(a, b int) bool { return ms[a].Record < ms[b].Record })
	return ms
}

func matchesEqual(a, b []QueryMatch) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPlannedEqualsFixed is the exactness property test: across 3 filters ×
// θ ∈ {0.7, 0.8, 0.9} × {static, post-mutation, sharded}, every query path
// (ProbeRecord, QueryTopK, batch Probe) must produce identical results under
// PlanAuto and PlanFixed — both per-request (same snapshot, flipped
// QueryOpts.Plan) and across twin indexes built with Options.Plan flipped.
func TestPlannedEqualsFixed(t *testing.T) {
	j := NewJoiner(paperContext())
	recs := propCorpus(600, 101)
	probe := propCorpus(120, 202)
	ctx := context.Background()
	decisionKinds := map[string]bool{}
	var totalPlans int64

	for _, sc := range plannerScenarios() {
		for _, opts := range propConfigs() {
			name := fmt.Sprintf("%s/%v/θ=%v", sc.name, opts.Method, opts.Theta)
			av, fv := sc.build(j, recs, opts)

			// Pinned probe-side configurations (QueryOpts.ProbeTau/ProbeMethod)
			// are single points of the planner's search space and must agree
			// with it too; cycling by probe index keeps the grid cheap. A
			// ProbeTau above the build τ exercises the soundness clamp.
			pinned := []QueryOpts{{ProbeMethod: pebble.UFilter, ProbeTau: 3}}
			for tau := 1; tau <= opts.Tau+1; tau++ {
				pinned = append(pinned,
					QueryOpts{ProbeMethod: pebble.AUHeuristic, ProbeTau: tau},
					QueryOpts{ProbeMethod: pebble.AUDP, ProbeTau: tau})
			}

			for i, rec := range probe {
				am, err := av.ProbeRecordCtx(ctx, rec.Tokens, QueryOpts{})
				if err != nil {
					t.Fatalf("%s: auto ProbeRecord: %v", name, err)
				}
				pm, err := av.ProbeRecordCtx(ctx, rec.Tokens, QueryOpts{Plan: PlanFixed})
				if err != nil {
					t.Fatalf("%s: fixed-opt ProbeRecord: %v", name, err)
				}
				fm, err := fv.ProbeRecordCtx(ctx, rec.Tokens, QueryOpts{})
				if err != nil {
					t.Fatalf("%s: fixed-index ProbeRecord: %v", name, err)
				}
				sortMatches(am)
				if !matchesEqual(am, sortMatches(pm)) {
					t.Fatalf("%s probe %d: auto vs per-request fixed differ:\nauto  %v\nfixed %v", name, i, am, pm)
				}
				if !matchesEqual(am, sortMatches(fm)) {
					t.Fatalf("%s probe %d: auto vs fixed-built index differ:\nauto  %v\nfixed %v", name, i, am, fm)
				}
				qo := pinned[i%len(pinned)]
				mm, err := av.ProbeRecordCtx(ctx, rec.Tokens, qo)
				if err != nil {
					t.Fatalf("%s: pinned ProbeRecord %+v: %v", name, qo, err)
				}
				if !matchesEqual(am, sortMatches(mm)) {
					t.Fatalf("%s probe %d: auto vs pinned %v/τ%d differ:\nauto   %v\npinned %v",
						name, i, qo.ProbeMethod, qo.ProbeTau, am, mm)
				}

				// Top-k is deterministic under ties (similarity desc, ID asc),
				// so planned and fixed runs must agree element-wise.
				ak, err := av.QueryTopKCtx(ctx, rec.Tokens, 5, QueryOpts{})
				if err != nil {
					t.Fatalf("%s: auto QueryTopK: %v", name, err)
				}
				pk, err := av.QueryTopKCtx(ctx, rec.Tokens, 5, QueryOpts{Plan: PlanFixed})
				if err != nil {
					t.Fatalf("%s: fixed QueryTopK: %v", name, err)
				}
				if !matchesEqual(ak, pk) {
					t.Fatalf("%s probe %d: top-k differs:\nauto  %v\nfixed %v", name, i, ak, pk)
				}
			}

			// Batch probes: one planned decision for the whole batch on the
			// auto index, build-time configuration on the twin.
			ap, astats := av.Probe(probe)
			fp, fstats := fv.Probe(probe)
			sortPairs(ap)
			sortPairs(fp)
			if len(ap) != len(fp) {
				t.Fatalf("%s: batch Probe sizes differ: auto %d fixed %d", name, len(ap), len(fp))
			}
			for i := range ap {
				if ap[i] != fp[i] {
					t.Fatalf("%s: batch Probe pair %d differs: auto %+v fixed %+v", name, i, ap[i], fp[i])
				}
			}
			if astats.Results != fstats.Results {
				t.Fatalf("%s: batch Probe result counts differ: auto %d fixed %d", name, astats.Results, fstats.Results)
			}

			st := av.Stats()
			totalPlans += st.Plans
			for k := range st.PlanDecisions {
				decisionKinds[k] = true
			}
			if fst := fv.Stats(); fst.Plans != 0 {
				t.Errorf("%s: fixed-built index recorded %d plans", name, fst.Plans)
			}
		}
	}

	// Vacuity guards: the grid must actually have planned, and the planner
	// must have exercised more than one configuration somewhere — otherwise
	// the equivalence above is trivially true.
	if totalPlans == 0 {
		t.Fatal("no queries were planned; the property test is vacuous")
	}
	if len(decisionKinds) < 2 {
		t.Fatalf("planner only ever chose %v; expected the grid to exercise multiple configurations", decisionKinds)
	}
}

// TestPlannedQueriesRaceHammer mixes planned queries on live snapshots with
// concurrent inserts, removals and forced rebuilds. Run under -race it pins
// the lock-free feedback table (atomic EWMA updates, epoch swaps, re-anchors
// from the rebuild path) against the query fan-out; in any mode it asserts
// the planner kept counting and queries kept answering.
func TestPlannedQueriesRaceHammer(t *testing.T) {
	j := NewJoiner(paperContext())
	recs := propCorpus(400, 303)
	probe := propCorpus(40, 404)
	sx := j.BuildShardedIndex(recs, 3,
		Options{Theta: 0.8, Tau: 2, Method: pebble.AUDP}, DynamicOptions{MaxSegments: 2})
	ctx := context.Background()

	const workers, iters = 4, 120
	var qwg, mwg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, workers)

	mwg.Add(1)
	go func() { // mutator: churn until the queriers are done
		defer mwg.Done()
		rng := rand.New(rand.NewSource(505))
		var live []int
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			raw := fmt.Sprintf("tok%02d tok%02d hammer%d", rng.Intn(60), rng.Intn(60), i)
			live = append(live, sx.Insert([]string{raw})...)
			if len(live) > 16 {
				k := rng.Intn(len(live))
				sx.Remove(live[k])
				live = append(live[:k], live[k+1:]...)
			}
		}
	}()

	for w := 0; w < workers; w++ {
		qwg.Add(1)
		go func(w int) {
			defer qwg.Done()
			rng := rand.New(rand.NewSource(int64(606 + w)))
			for i := 0; i < iters; i++ {
				sv := sx.Snapshot()
				rec := probe[rng.Intn(len(probe))]
				if _, err := sv.QueryTopKCtx(ctx, rec.Tokens, 5, QueryOpts{}); err != nil {
					errs <- fmt.Errorf("worker %d QueryTopK: %w", w, err)
					return
				}
				if _, err := sv.ProbeRecordCtx(ctx, rec.Tokens, QueryOpts{Workers: 2}); err != nil {
					errs <- fmt.Errorf("worker %d ProbeRecord: %w", w, err)
					return
				}
				if i%16 == 0 {
					sv.Probe(probe[:8])
				}
			}
		}(w)
	}

	qwg.Wait()
	close(stop)
	mwg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	st := sx.Stats()
	if st.Plans == 0 {
		t.Fatal("hammer ran without a single planned query")
	}
	if st.Records == 0 || st.Live == 0 {
		t.Fatalf("index state degenerate after hammer: %+v", st)
	}
}
