package estimator

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/aujoin/aujoin/internal/join"
	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/sim"
	"github.com/aujoin/aujoin/internal/strutil"
	"github.com/aujoin/aujoin/internal/synonym"
	"github.com/aujoin/aujoin/internal/taxonomy"
)

func testContext() *sim.Context {
	rules := synonym.NewRuleSet()
	rules.MustAdd("coffee shop", "cafe", 1)
	rules.MustAdd("cake", "gateau", 1)
	tax := taxonomy.NewTree("root")
	drinks := tax.MustAddChild(tax.Root(), "drinks")
	tax.MustAddChild(drinks, "espresso")
	tax.MustAddChild(drinks, "latte")
	return sim.NewContext(rules, tax)
}

// testCorpus builds a small synthetic corpus with repeated near-duplicates.
func testCorpus(n int, seed int64) []strutil.Record {
	rng := rand.New(rand.NewSource(seed))
	base := []string{
		"coffee shop latte helsinki",
		"espresso cafe helsinki",
		"apple cake bakery town",
		"cake gateau corner shop",
		"latte art championship",
		"database systems lecture",
	}
	var raws []string
	for i := 0; i < n; i++ {
		s := base[rng.Intn(len(base))]
		if rng.Float64() < 0.3 {
			s += " extra"
		}
		raws = append(raws, s)
	}
	return strutil.NewCollection(raws)
}

func TestOnlineStatsAgainstDirectFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(50)
		var xs []float64
		var o OnlineStats
		for i := 0; i < n; i++ {
			x := rng.NormFloat64()*10 + 5
			xs = append(xs, x)
			o.Add(x)
		}
		// Direct mean and sample variance.
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		vari := 0.0
		for _, x := range xs {
			vari += (x - mean) * (x - mean)
		}
		vari /= float64(n - 1)
		if math.Abs(o.Mean()-mean) > 1e-9 {
			t.Fatalf("trial %d: Mean = %v, want %v", trial, o.Mean(), mean)
		}
		if math.Abs(o.Variance()-vari) > 1e-6*(1+vari) {
			t.Fatalf("trial %d: Variance = %v, want %v", trial, o.Variance(), vari)
		}
		if o.N() != n {
			t.Fatalf("N = %d, want %d", o.N(), n)
		}
	}
}

func TestOnlineStatsEdgeCases(t *testing.T) {
	var o OnlineStats
	if o.Mean() != 0 || o.Variance() != 0 || o.StdErr() != 0 {
		t.Error("zero-value stats should be all zero")
	}
	o.Add(3)
	if o.Mean() != 3 || o.Variance() != 0 {
		t.Errorf("single observation stats = %v/%v", o.Mean(), o.Variance())
	}
	lo, hi := o.ConfidenceInterval(1.0)
	if lo != 3 || hi != 3 {
		t.Errorf("CI with zero variance = [%v, %v]", lo, hi)
	}
	o.Add(5)
	lo, hi = o.ConfidenceInterval(2.0)
	if !(lo < 4 && hi > 4) {
		t.Errorf("CI = [%v, %v], should straddle the mean 4", lo, hi)
	}
}

func TestBernoulliEstimatorUnbiasedness(t *testing.T) {
	// The scaled estimator T'/(ps·pt) must be unbiased: averaging many
	// sample estimates approaches the full-data value.
	ctx := testContext()
	j := join.NewJoiner(ctx)
	s := testCorpus(60, 1)
	u := testCorpus(60, 2)
	opts := join.Options{Theta: 0.8, Tau: 2, Method: pebble.AUHeuristic}
	fullT, fullV := j.FilterStats(s, u, opts)

	rng := rand.New(rand.NewSource(77))
	p := 0.4
	var statsT, statsV OnlineStats
	for iter := 0; iter < 300; iter++ {
		ss := bernoulliSample(s, p, rng)
		uu := bernoulliSample(u, p, rng)
		var pt int64
		var pv int
		if len(ss) > 0 && len(uu) > 0 {
			pt, pv = j.FilterStats(ss, uu, opts)
		}
		statsT.Add(float64(pt) / (p * p))
		statsV.Add(float64(pv) / (p * p))
	}
	if fullT > 0 {
		rel := math.Abs(statsT.Mean()-float64(fullT)) / float64(fullT)
		if rel > 0.35 {
			t.Errorf("T estimator off by %.0f%% (est %.1f vs true %d)", rel*100, statsT.Mean(), fullT)
		}
	}
	if fullV > 0 {
		rel := math.Abs(statsV.Mean()-float64(fullV)) / float64(fullV)
		if rel > 0.35 {
			t.Errorf("V estimator off by %.0f%% (est %.1f vs true %d)", rel*100, statsV.Mean(), fullV)
		}
	}
}

func TestSuggestReturnsTauFromUniverse(t *testing.T) {
	ctx := testContext()
	j := join.NewJoiner(ctx)
	s := testCorpus(80, 3)
	u := testCorpus(80, 4)
	cfg := Config{
		Universe:      []int{1, 2, 3, 4},
		SampleProbS:   0.3,
		SampleProbT:   0.3,
		BurnIn:        3,
		MaxIterations: 20,
		Seed:          42,
	}
	rec := Suggest(j, s, u, join.Options{Theta: 0.8, Method: pebble.AUHeuristic}, cfg)
	found := false
	for _, tau := range cfg.Universe {
		if rec.BestTau == tau {
			found = true
		}
	}
	if !found {
		t.Errorf("BestTau %d not in universe %v", rec.BestTau, cfg.Universe)
	}
	if rec.Iterations < cfg.BurnIn {
		t.Errorf("Iterations = %d, want ≥ burn-in %d", rec.Iterations, cfg.BurnIn)
	}
	if rec.Iterations > cfg.MaxIterations {
		t.Errorf("Iterations = %d exceeds cap %d", rec.Iterations, cfg.MaxIterations)
	}
	if len(rec.Estimates) != len(cfg.Universe) {
		t.Fatalf("Estimates = %d entries, want %d", len(rec.Estimates), len(cfg.Universe))
	}
	for _, e := range rec.Estimates {
		if e.EstimatedCost < 0 || e.CostLow > e.CostHigh {
			t.Errorf("estimate %+v is inconsistent", e)
		}
		if e.MeanT < 0 || e.MeanV < 0 {
			t.Errorf("negative means in %+v", e)
		}
	}
	if rec.Duration <= 0 {
		t.Error("Duration should be positive")
	}
}

func TestSuggestEstimateResultsExactWithFullSamples(t *testing.T) {
	// With inclusion probability 1 every "sample" is the full data, so the
	// per-τ result estimate must equal the true join result count exactly
	// (the filters are lossless, so the count is also τ-independent).
	ctx := testContext()
	j := join.NewJoiner(ctx)
	s := testCorpus(40, 7)
	u := testCorpus(40, 8)
	base := join.Options{Theta: 0.8, Method: pebble.AUHeuristic}
	want := len(j.BruteForce(s, u, base.Theta, nil))
	cfg := Config{
		Universe:        []int{1, 2, 3},
		SampleProbS:     1,
		SampleProbT:     1,
		BurnIn:          2,
		MaxIterations:   3,
		Seed:            7,
		EstimateResults: true,
	}
	rec := Suggest(j, s, u, base, cfg)
	for _, e := range rec.Estimates {
		if int(e.MeanR+0.5) != want {
			t.Errorf("τ=%d: MeanR = %v, want %d", e.Tau, e.MeanR, want)
		}
		if e.MeanR > e.MeanV+1e-9 {
			t.Errorf("τ=%d: results %v exceed candidates %v", e.Tau, e.MeanR, e.MeanV)
		}
	}
}

func TestSuggestAgreesWithExhaustiveOnSmallData(t *testing.T) {
	// On a small dataset we can compute the true cost for every τ and
	// verify the recommendation is (near-)optimal: its true cost must be
	// within a factor of 2 of the best true cost.
	ctx := testContext()
	j := join.NewJoiner(ctx)
	s := testCorpus(100, 5)
	u := testCorpus(100, 6)
	base := join.Options{Theta: 0.8, Method: pebble.AUHeuristic}
	cfg := Config{
		Universe:      []int{1, 2, 3, 4, 5},
		SampleProbS:   0.4,
		SampleProbT:   0.4,
		BurnIn:        5,
		MaxIterations: 40,
		Seed:          7,
	}
	rec := Suggest(j, s, u, base, cfg)

	trueCost := map[int]float64{}
	bestTrue := math.Inf(1)
	for _, tau := range cfg.Universe {
		opts := base
		opts.Tau = tau
		pt, pv := j.FilterStats(s, u, opts)
		c := cfg.CostFilter*float64(pt) + cfg.CostVerify*float64(pv)
		if cfg.CostFilter == 0 {
			c = 1*float64(pt) + 40*float64(pv)
		}
		trueCost[tau] = c
		if c < bestTrue {
			bestTrue = c
		}
	}
	if trueCost[rec.BestTau] > 2*bestTrue+1 {
		t.Errorf("suggested τ=%d has true cost %.0f, more than twice the optimum %.0f (costs: %v)",
			rec.BestTau, trueCost[rec.BestTau], bestTrue, trueCost)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults(1000, 50)
	if len(cfg.Universe) == 0 {
		t.Error("universe default missing")
	}
	if cfg.SampleProbS <= 0 || cfg.SampleProbS > 1 {
		t.Errorf("SampleProbS = %v", cfg.SampleProbS)
	}
	if cfg.SampleProbT != 1 {
		t.Errorf("SampleProbT for tiny collection = %v, want 1", cfg.SampleProbT)
	}
	if cfg.CostFilter != 1 || cfg.CostVerify != 40 {
		t.Errorf("cost defaults = %v/%v", cfg.CostFilter, cfg.CostVerify)
	}
	if cfg.BurnIn != 10 || cfg.TQuantile != 1.036 || cfg.MaxIterations != 200 {
		t.Error("loop defaults wrong")
	}
	if cfg.Seed == 0 {
		t.Error("seed default should be non-zero")
	}
	if p := targetProbability(0, 100); p != 1 {
		t.Errorf("targetProbability(0) = %v, want 1", p)
	}
}

func TestBernoulliSampleProperties(t *testing.T) {
	recs := testCorpus(200, 9)
	rng := rand.New(rand.NewSource(11))
	f := func(seed uint8) bool {
		p := 0.3
		sample := bernoulliSample(recs, p, rng)
		if len(sample) > len(recs) {
			return false
		}
		// Sampled records must come from the original collection with IDs
		// preserved.
		for _, r := range sample {
			if r.ID < 0 || r.ID >= len(recs) || recs[r.ID].Raw != r.Raw {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
	full := bernoulliSample(recs, 1.0, rng)
	if len(full) != len(recs) {
		t.Errorf("p=1 sample has %d records, want %d", len(full), len(recs))
	}
}

func TestShouldStopBehaviour(t *testing.T) {
	cfg := Config{}.withDefaults(100, 100)
	// One τ only: trivially stops.
	single := []*tauState{{tau: 1}}
	if !shouldStop(single, cfg) {
		t.Error("single-τ universe should stop immediately")
	}
	// Two τ with hugely separated costs and tiny variance: stop.
	a := &tauState{tau: 1}
	b := &tauState{tau: 2}
	for i := 0; i < 10; i++ {
		a.statsT.Add(100)
		a.statsV.Add(1000) // expensive
		b.statsT.Add(100)
		b.statsV.Add(1) // cheap
		a.lastT, b.lastT = 100, 100
	}
	if !shouldStop([]*tauState{a, b}, cfg) {
		t.Error("well-separated estimates should stop")
	}
	// Two τ with identical means but huge variance: the intervals overlap
	// far beyond one round's cost, so the loop should continue.
	c := &tauState{tau: 1}
	d := &tauState{tau: 2}
	vals := []float64{0, 1e7}
	for i := 0; i < 2; i++ {
		c.statsV.Add(vals[i])
		d.statsV.Add(vals[1-i])
		c.statsT.Add(1)
		d.statsT.Add(1)
		c.lastT, d.lastT = 1, 1
	}
	if shouldStop([]*tauState{c, d}, cfg) {
		t.Error("overlapping noisy estimates should not stop")
	}
}

// TestSuggestCtxRespectsCancellation pins the deadline behaviour of the
// sampling loop: an already-cancelled context stops before the first round
// (still recommending the always-sound smallest τ), and a context cancelled
// mid-loop truncates the iterations while keeping the estimates of the
// completed rounds.
func TestSuggestCtxRespectsCancellation(t *testing.T) {
	j := join.NewJoiner(testContext())
	s := testCorpus(120, 1)
	u := testCorpus(120, 2)
	base := join.Options{Theta: 0.8, Method: pebble.AUDP}
	cfg := Config{Seed: 7, SampleProbS: 1, SampleProbT: 1, BurnIn: 50, MaxIterations: 50}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	rec, err := SuggestCtx(cancelled, j, s, u, base, cfg)
	if err != context.Canceled {
		t.Fatalf("pre-cancelled SuggestCtx error = %v, want context.Canceled", err)
	}
	if rec.Iterations != 0 {
		t.Errorf("pre-cancelled SuggestCtx ran %d iterations", rec.Iterations)
	}
	if rec.BestTau < 1 {
		t.Errorf("pre-cancelled SuggestCtx recommended τ=%d, want a sound fallback ≥ 1", rec.BestTau)
	}

	// Full-probability samples make every round substantial (a 120×120
	// filter sweep), so a deadline a few rounds in reliably truncates the
	// 50-round budget.
	deadline, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	rec, err = SuggestCtx(deadline, j, s, u, base, cfg)
	if err == nil {
		t.Skip("machine fast enough to finish 50 full-sample rounds in 50ms")
	}
	if rec.Iterations == 0 || rec.Iterations >= cfg.MaxIterations {
		t.Errorf("truncated SuggestCtx ran %d iterations, want in (0, %d)", rec.Iterations, cfg.MaxIterations)
	}
	if rec.BestTau < 1 {
		t.Errorf("truncated SuggestCtx recommended τ=%d", rec.BestTau)
	}

	// Background never errors and matches Suggest bit-for-bit (a short
	// round budget keeps the doubled run cheap).
	quick := cfg
	quick.BurnIn, quick.MaxIterations = 2, 3
	recBG, err := SuggestCtx(context.Background(), j, s, u, base, quick)
	if err != nil {
		t.Fatalf("background SuggestCtx error: %v", err)
	}
	if recBG.BestTau != Suggest(j, s, u, base, quick).BestTau {
		t.Error("SuggestCtx(Background) and Suggest disagree on BestTau")
	}
}
