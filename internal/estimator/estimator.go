// Package estimator implements the parameter-recommendation framework of
// Section 4 of the paper: a sampling-based estimator of the join cost
// C_τ = c_f·T_τ + c_v·V_τ for every overlap constraint τ in a candidate
// universe, and the Monte-Carlo refinement loop (Algorithm 7) that keeps
// drawing small independent Bernoulli samples until the currently best τ is
// separated from the runners-up with the requested confidence.
package estimator

import (
	"context"
	"math"
	"math/rand"
	"time"

	"github.com/aujoin/aujoin/internal/join"
	"github.com/aujoin/aujoin/internal/strutil"
)

// OnlineStats maintains a running mean and (sample) variance using the
// numerically stable recursive formulas of Equations (20) and (21).
type OnlineStats struct {
	n    int
	mean float64
	vari float64
}

// Add folds one observation into the statistics.
func (o *OnlineStats) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.mean = x
		o.vari = 0
		return
	}
	prevMean := o.mean
	o.mean += (x - prevMean) / float64(o.n)
	// Recursive sample-variance update (Eq. 21).
	o.vari = float64(o.n-2)/float64(o.n-1)*o.vari + float64(o.n)*(o.mean-prevMean)*(o.mean-prevMean)
}

// N returns the number of observations.
func (o *OnlineStats) N() int { return o.n }

// Mean returns the sample mean.
func (o *OnlineStats) Mean() float64 { return o.mean }

// Variance returns the sample variance (0 for fewer than two observations).
func (o *OnlineStats) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.vari
}

// StdErr returns the standard error of the mean, sqrt(Var/n).
func (o *OnlineStats) StdErr() float64 {
	if o.n == 0 {
		return 0
	}
	return math.Sqrt(o.Variance() / float64(o.n))
}

// ConfidenceInterval returns the (lower, upper) Student-t confidence
// interval of the mean for the given quantile t*.
func (o *OnlineStats) ConfidenceInterval(tQuantile float64) (lo, hi float64) {
	se := o.StdErr()
	return o.mean - tQuantile*se, o.mean + tQuantile*se
}

// Config tunes the suggestion procedure.
type Config struct {
	// Universe is the set of τ values to choose from; empty means {1..8}.
	Universe []int
	// SampleProbS and SampleProbT are the independent Bernoulli inclusion
	// probabilities for the two collections; zero means a probability that
	// targets about 100 records per sample (as in the paper's experiments).
	SampleProbS float64
	SampleProbT float64
	// CostFilter (c_f) and CostVerify (c_v) are the per-pair costs of the
	// cost model (Eq. 15); zeros mean the defaults 1 and 40, reflecting
	// that verifying one pair is far more expensive than touching one
	// posting pair.
	CostFilter float64
	CostVerify float64
	// BurnIn is n*, the minimal number of iterations before the stopping
	// rule may fire; zero means 10 (the paper's setting for Figure 8).
	BurnIn int
	// TQuantile is the Student-t quantile t* of the confidence interval;
	// zero means 1.036 (70% two-sided, the paper's setting).
	TQuantile float64
	// MaxIterations caps the number of sampling rounds; zero means 200.
	MaxIterations int
	// Seed seeds the sampler; 0 means a time-based seed.
	Seed int64
	// EstimateResults additionally verifies every sampled candidate through
	// the join's prepared-record engine, producing an unbiased estimate of
	// the result size R_τ (reported as TauEstimate.MeanR). The cost model is
	// unchanged; the estimate is for capacity planning of downstream stages.
	EstimateResults bool
}

func (c Config) withDefaults(lenS, lenT int) Config {
	if len(c.Universe) == 0 {
		c.Universe = []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	if c.SampleProbS <= 0 {
		c.SampleProbS = targetProbability(lenS, 100)
	}
	if c.SampleProbT <= 0 {
		c.SampleProbT = targetProbability(lenT, 100)
	}
	if c.CostFilter <= 0 {
		c.CostFilter = 1
	}
	if c.CostVerify <= 0 {
		c.CostVerify = 40
	}
	if c.BurnIn <= 0 {
		c.BurnIn = 10
	}
	if c.TQuantile <= 0 {
		c.TQuantile = 1.036
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 200
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
	return c
}

// targetProbability returns a sampling probability that yields roughly
// `target` records from a collection of size n, capped at 1.
func targetProbability(n, target int) float64 {
	if n <= 0 {
		return 1
	}
	p := float64(target) / float64(n)
	if p > 1 {
		return 1
	}
	return p
}

// TauEstimate is the per-τ outcome of the suggestion procedure.
type TauEstimate struct {
	Tau           int
	EstimatedCost float64
	CostLow       float64
	CostHigh      float64
	MeanT         float64 // estimated T_τ (processed pairs on full data)
	MeanV         float64 // estimated V_τ (candidates on full data)
	MeanR         float64 // estimated R_τ (results on full data; EstimateResults only)
}

// Recommendation is the outcome of Algorithm 7.
type Recommendation struct {
	// BestTau is the τ with the minimal estimated cost.
	BestTau int
	// Iterations is the number of sampling rounds executed.
	Iterations int
	// Estimates lists the per-τ cost estimates of the final iteration, in
	// the order of the configured universe.
	Estimates []TauEstimate
	// Duration is the wall-clock time the suggestion took (reported as the
	// "suggestion time" row of Table 10).
	Duration time.Duration
}

// Suggest runs Algorithm 7: it repeatedly draws independent Bernoulli
// samples of both collections, runs the filtering stage for every τ in the
// universe, folds the unbiased estimates of T_τ and V_τ into online means
// and variances, and stops when the worst-case regret of the current best τ
// is smaller than the cost of one more sampling round (after the burn-in).
func Suggest(j *join.Joiner, s, t []strutil.Record, base join.Options, cfg Config) Recommendation {
	rec, _ := SuggestCtx(context.Background(), j, s, t, base, cfg)
	return rec
}

// SuggestCtx is Suggest with deadline awareness: the sampling loop checks
// ctx between rounds (each round is one small Bernoulli sample, so the check
// granularity is milliseconds) and stops early when the context is done.
// The returned Recommendation is computed from the rounds that completed —
// a deadline turns Algorithm 7's statistical stopping rule into a time
// budget — and the context error reports the truncation; when no round
// completed the recommendation falls back to the smallest τ of the universe
// and callers should treat the error as fatal.
func SuggestCtx(ctx context.Context, j *join.Joiner, s, t []strutil.Record, base join.Options, cfg Config) (Recommendation, error) {
	start := time.Now()
	cfg = cfg.withDefaults(len(s), len(t))
	rng := rand.New(rand.NewSource(cfg.Seed))

	states := make([]*tauState, len(cfg.Universe))
	for i, tau := range cfg.Universe {
		states[i] = &tauState{tau: tau}
	}

	scale := 1 / (cfg.SampleProbS * cfg.SampleProbT)
	iterations := 0
	var ctxErr error
	for iterations < cfg.MaxIterations {
		if ctxErr = ctx.Err(); ctxErr != nil {
			break
		}
		iterations++
		sampleS := bernoulliSample(s, cfg.SampleProbS, rng)
		sampleT := bernoulliSample(t, cfg.SampleProbT, rng)
		// One profile per sample pair: pebble generation, interning and
		// sorting are shared by every τ in the universe; only the cheap
		// prefix selection and candidate counting run per τ.
		var profile *join.FilterProfile
		if len(sampleS) > 0 && len(sampleT) > 0 {
			profile = j.NewFilterProfile(sampleS, sampleT, base)
		}
		for _, st := range states {
			processed, candidates, results := int64(0), 0, 0
			if profile != nil {
				if cfg.EstimateResults {
					processed, candidates, results = profile.VerifyStats(st.tau)
				} else {
					processed, candidates = profile.Stats(st.tau)
				}
			}
			st.lastT = float64(processed)
			st.statsT.Add(float64(processed) * scale)
			st.statsV.Add(float64(candidates) * scale)
			if cfg.EstimateResults {
				st.statsR.Add(float64(results) * scale)
			}
		}
		if iterations >= cfg.BurnIn && shouldStop(states, cfg) {
			break
		}
	}

	rec := Recommendation{Iterations: iterations, Duration: time.Since(start)}
	bestCost := math.Inf(1)
	for _, st := range states {
		cost, lo, hi := costInterval(st.statsT, st.statsV, cfg)
		rec.Estimates = append(rec.Estimates, TauEstimate{
			Tau:           st.tau,
			EstimatedCost: cost,
			CostLow:       lo,
			CostHigh:      hi,
			MeanT:         st.statsT.Mean(),
			MeanV:         st.statsV.Mean(),
			MeanR:         st.statsR.Mean(),
		})
		if cost < bestCost {
			bestCost = cost
			rec.BestTau = st.tau
		}
	}
	if rec.BestTau == 0 && len(cfg.Universe) > 0 {
		// Cancelled before the first round: every estimate is degenerate, so
		// recommend the smallest τ (the always-sound overlap constraint).
		rec.BestTau = cfg.Universe[0]
	}
	return rec, ctxErr
}

// costInterval folds the T and V statistics into the cost estimate and its
// confidence interval per Equations (22) and (23).
func costInterval(statsT, statsV OnlineStats, cfg Config) (mean, lo, hi float64) {
	mean = cfg.CostFilter*statsT.Mean() + cfg.CostVerify*statsV.Mean()
	n := statsT.N()
	if n == 0 {
		return mean, mean, mean
	}
	variance := cfg.CostFilter*cfg.CostFilter*statsT.Variance() + cfg.CostVerify*cfg.CostVerify*statsV.Variance()
	se := math.Sqrt(variance / float64(n))
	return mean, mean - cfg.TQuantile*se, mean + cfg.TQuantile*se
}

// tauState accumulates the per-τ estimation state across sampling rounds.
type tauState struct {
	tau    int
	statsT OnlineStats
	statsV OnlineStats
	statsR OnlineStats
	lastT  float64 // T'_τ of the most recent sample (un-scaled)
}

// shouldStop implements the stopping criterion of Inequality (24): the
// worst-case penalty of recommending the current arg-min τ must be below
// the cost of running one more estimation round (approximated with the
// most recent round's filtering volume).
func shouldStop(states []*tauState, cfg Config) bool {
	if len(states) < 2 {
		return true
	}
	bestIdx := 0
	bestCost := math.Inf(1)
	for i, st := range states {
		cost, _, _ := costInterval(st.statsT, st.statsV, cfg)
		if cost < bestCost {
			bestCost = cost
			bestIdx = i
		}
	}
	_, _, upperBest := costInterval(states[bestIdx].statsT, states[bestIdx].statsV, cfg)
	minLowerOther := math.Inf(1)
	nextRoundCost := 0.0
	for i, st := range states {
		nextRoundCost += cfg.CostFilter * st.lastT
		if i == bestIdx {
			continue
		}
		_, lo, _ := costInterval(st.statsT, st.statsV, cfg)
		if lo < minLowerOther {
			minLowerOther = lo
		}
	}
	return upperBest-minLowerOther < nextRoundCost
}

// bernoulliSample draws an independent Bernoulli sample of the records with
// inclusion probability p.
func bernoulliSample(recs []strutil.Record, p float64, rng *rand.Rand) []strutil.Record {
	if p >= 1 {
		return recs
	}
	var out []strutil.Record
	for _, r := range recs {
		if rng.Float64() < p {
			out = append(out, r)
		}
	}
	return out
}
