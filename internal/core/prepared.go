package core

import (
	"github.com/aujoin/aujoin/internal/matching"
	"github.com/aujoin/aujoin/internal/sim"
	"github.com/aujoin/aujoin/internal/strutil"
	"github.com/aujoin/aujoin/internal/wmis"
)

// PreparedSegment is one well-defined segment of a prepared record together
// with its precomputed measure-evaluation tables.
type PreparedSegment struct {
	Span   strutil.Span
	Tokens []string
	// Rule and Entity mirror Segment's flags.
	Rule, Entity bool
	// Data carries the q-gram set, taxonomy node and applicable rule ids.
	Data sim.SegmentData
}

// PreparedRecord caches everything verification needs about one record:
// the full segment enumeration with per-segment gram sets, taxonomy nodes
// and rule-side derivations, plus the partition-size lower bound used by the
// thresholded early exit. Prepare it once per record and verify it against
// arbitrarily many counterparts; the struct is immutable after Prepare and
// safe for concurrent use.
type PreparedRecord struct {
	// Tokens is the record's token sequence.
	Tokens []string
	// Segs lists every well-defined segment, ordered by start position then
	// length (the same order Segmenter.Segments produces).
	Segs []PreparedSegment
	// single[pos] is the index in Segs of the singleton segment starting at
	// pos; every position has one.
	single []int32
	// minPart is a lower bound on the size of any well-defined partition of
	// the record (GetMinPartitionSize of Algorithm 2).
	minPart int
}

// NumSegments returns the number of well-defined segments of the record.
func (pr *PreparedRecord) NumSegments() int { return len(pr.Segs) }

// MinPartitionSize returns the precomputed lower bound on the size of any
// well-defined partition of the record.
func (pr *PreparedRecord) MinPartitionSize() int { return pr.minPart }

// Prepare computes the per-record state of the verification engine: segment
// enumeration, per-segment derivation tables (gram sets, rule ids, taxonomy
// nodes) and the partition-size lower bound. The returned record is
// immutable and safe to share across goroutines.
func (c *Calculator) Prepare(tokens []string) *PreparedRecord {
	pr := &PreparedRecord{Tokens: tokens}
	if len(tokens) == 0 {
		return pr
	}
	sg := c.Segmenter()
	segs := sg.Segments(tokens)
	pr.Segs = make([]PreparedSegment, len(segs))
	pr.single = make([]int32, len(tokens))
	for i, s := range segs {
		pr.Segs[i] = PreparedSegment{
			Span:   s.Span,
			Tokens: s.Tokens,
			Rule:   s.Rule,
			Entity: s.Entity,
			Data:   c.Ctx.PrepareSegment(s.Tokens),
		}
		if s.Span.Len() == 1 {
			pr.single[s.Span.Start] = int32(i)
		}
	}
	pr.minPart = minPartitionSizeSegs(tokens, segs)
	return pr
}

// pairSeg records which segment of each side a candidate pair refers to.
type pairSeg struct{ s, t int32 }

// boundSlack guards the early-exit comparisons against floating-point
// rounding: the upper bounds dominate the similarity mathematically but are
// summed in a different order, so an exact tie can land a few ulps below θ.
// Rejecting only below θ−slack keeps the thresholded path exactly equivalent
// to comparing the full similarity against θ (the fall-through computes it).
const boundSlack = 1e-9

// BoundSlack is the floating-point guard band of the verify-phase upper
// bounds, exported so callers that schedule candidates by SizeRatioUpper can
// prune with exactly the tolerance VerifyPrepared itself uses.
const BoundSlack = boundSlack

// memoCap bounds the per-scratch msim memo. Insertion stops (deterministically)
// once the cap is reached; lookups keep working, so a capped memo only loses
// hit rate, never correctness.
const memoCap = 1 << 16

// The msim memo is a two-level map: left segment text → (right segment
// text → msim). Segment texts are space-joined normalised tokens
// (strutil.JoinTokens), a bijective encoding of the token slice, so MSimData
// is a pure function of (context, text pair). Two levels rather than a
// struct key let fillMSim resolve the left text once per matrix row — the
// row's inner lookups then hash only the right text, halving the string
// hashing on the verify hot path.

// ScratchStats counts verify-phase work performed through one Scratch.
// Callers that want per-operation tallies snapshot the struct before a batch
// and diff afterwards.
type ScratchStats struct {
	// Verified counts record pairs whose msim matrix was actually computed
	// (they survived the O(1) size-ratio bound).
	Verified int64
	// PrunedByBound counts record pairs rejected by the O(1) partition-size
	// ratio bound before any msim work.
	PrunedByBound int64
	// MemoHits counts segment-pair msim evaluations answered from the memo.
	MemoHits int64
}

// Scratch holds the reusable working state of one verification worker: the
// candidate-pair buffers, the dense msim cache, partition index lists, the
// matching weight matrix, the Hungarian solver's internals, the conflict
// graph + w-MIS local-search arenas and the cross-candidate msim memo. A
// Scratch amortises all per-pair allocations across verify calls; it must
// not be shared between goroutines.
type Scratch struct {
	segPairs []SegmentPair
	pairSegs []pairSeg
	msim     []float64 // len(ps.Segs) × len(pt.Segs), row-major
	nt       int       // column count of msim
	rowBest  []float64
	colBest  []float64
	dp       []float64
	sSel     []int32
	tSel     []int32
	psIdx    []int32
	ptIdx    []int32
	weights  []float64
	match    matching.Scratch

	// conflict-graph + local-search arenas (Algorithm 1 Lines 1-4).
	graph   wmis.Graph
	wmisSc  wmis.Scratch
	curSet  []int
	candSet []int
	bestTal []int
	bestRem []int

	// msim memo: values of MSimData keyed by segment-text pair (left text →
	// right text → value), valid for one sim.Context. Repeated (Zipfian)
	// tokens across a probe's candidate set hit the same segment texts over
	// and over; the memo collapses those to a map lookup. memoN counts the
	// total entries across rows for the memoCap bound.
	memo    map[string]map[string]float64
	memoN   int
	memoCtx *sim.Context

	// Stats tallies the work done through this scratch; DisableMemo turns
	// the msim memo off (escape hatch, and the lever the memo-equivalence
	// tests flip).
	Stats       ScratchStats
	DisableMemo bool
}

// NewScratch returns an empty scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// scratch returns sc, or a pooled scratch when sc is nil; the boolean
// reports whether the scratch must be returned to the pool.
func (c *Calculator) scratch(sc *Scratch) (*Scratch, bool) {
	if sc != nil {
		return sc, false
	}
	if v := c.scratchPool.Get(); v != nil {
		return v.(*Scratch), true
	}
	return NewScratch(), true
}

// SimilarityPrepared computes the approximate unified similarity of two
// prepared records. It runs the same Algorithm 1 as SimilarityTokens —
// conflict graph, SquareImp, claw improvements — over the precomputed
// derivation tables, and returns exactly the value SimilarityTokens returns
// for the underlying token sequences. sc may be nil, in which case a pooled
// scratch is used.
func (c *Calculator) SimilarityPrepared(ps, pt *PreparedRecord, sc *Scratch) float64 {
	if len(ps.Tokens) == 0 || len(pt.Tokens) == 0 {
		if len(ps.Tokens) == 0 && len(pt.Tokens) == 0 {
			return 1
		}
		return 0
	}
	sc, pooled := c.scratch(sc)
	c.fillMSim(sc, ps, pt)
	v := c.similarityPrepared(sc, ps, pt)
	if pooled {
		c.scratchPool.Put(sc)
	}
	return v
}

// SimilarityAtLeastPrepared reports whether the unified similarity of the
// two prepared records reaches theta, skipping the w-MIS local search for
// pairs that cheap upper bounds prove hopeless. sc may be nil.
func (c *Calculator) SimilarityAtLeastPrepared(ps, pt *PreparedRecord, theta float64, sc *Scratch) bool {
	_, ok := c.VerifyPrepared(ps, pt, theta, sc)
	return ok
}

// VerifyPrepared is the join verification primitive: it reports whether the
// unified similarity of the two prepared records reaches theta and, when it
// does, returns the similarity (the exact SimilarityTokens value). Hopeless
// candidates are rejected by two sound upper bounds before any matching or
// local search runs:
//
//  1. a partition-size ratio bound — SIM divides by max{|P_S|, |P_T|}, so
//     records whose possible partition-size ranges are too far apart can
//     never reach theta, and
//  2. a best-per-segment bound — the matching total of any partition pair is
//     at most the best span cover of either side weighted by each segment's
//     maximal msim against the other side (row/column maxima of the msim
//     matrix), divided by the larger side's minimal partition size.
//
// Both bounds dominate USIM and therefore the value Algorithm 1 returns, so
// VerifyPrepared agrees exactly with SimilarityTokens ≥ theta. sc may be
// nil, in which case a pooled scratch is used.
func (c *Calculator) VerifyPrepared(ps, pt *PreparedRecord, theta float64, sc *Scratch) (float64, bool) {
	if len(ps.Tokens) == 0 || len(pt.Tokens) == 0 {
		v := 0.0
		if len(ps.Tokens) == 0 && len(pt.Tokens) == 0 {
			v = 1
		}
		return v, v >= theta
	}
	if sizeRatioUpper(ps, pt) < theta-boundSlack {
		if sc != nil {
			sc.Stats.PrunedByBound++
		}
		return 0, false
	}
	sc, pooled := c.scratch(sc)
	defer func() {
		if pooled {
			c.scratchPool.Put(sc)
		}
	}()
	sc.Stats.Verified++
	c.fillMSim(sc, ps, pt)
	if coverUpper(sc, ps, pt) < theta-boundSlack {
		return 0, false
	}
	v := c.similarityPrepared(sc, ps, pt)
	return v, v >= theta
}

// sizeRatioUpper bounds USIM by the best achievable ratio min/max of the two
// partition sizes: |P| ranges over [minPart, len(tokens)] on each side, every
// msim weight is at most 1, and a matching has at most min{|P_S|, |P_T|}
// edges, so SIM ≤ min/max for the chosen sizes.
func sizeRatioUpper(ps, pt *PreparedRecord) float64 {
	aLo, aHi := ps.minPart, len(ps.Tokens)
	bLo, bHi := pt.minPart, len(pt.Tokens)
	if aHi < bLo {
		return float64(aHi) / float64(bLo)
	}
	if bHi < aLo {
		return float64(bHi) / float64(aLo)
	}
	return 1
}

// SizeRatioUpper exposes the O(1) partition-size-ratio bound: an upper bound
// on the unified similarity of the two prepared records, computed without
// touching segment data. Verify schedulers order candidates by it
// (descending) and prune once the bound falls below a rising threshold; the
// bound dominates the similarity, so pruning below floor−BoundSlack is
// exact.
func SizeRatioUpper(ps, pt *PreparedRecord) float64 {
	if len(ps.Tokens) == 0 || len(pt.Tokens) == 0 {
		if len(ps.Tokens) == 0 && len(pt.Tokens) == 0 {
			return 1
		}
		return 0
	}
	return sizeRatioUpper(ps, pt)
}

// fillMSim computes the dense msim matrix between every well-defined segment
// of ps and pt into the scratch cache. Both the upper-bound screen and every
// partition matrix of the local search read from this cache, so each segment
// pair's msim is evaluated exactly once per record pair.
func (c *Calculator) fillMSim(sc *Scratch, ps, pt *PreparedRecord) {
	ns, nt := len(ps.Segs), len(pt.Segs)
	sc.msim = strutil.Resize(sc.msim, ns*nt)
	sc.nt = nt
	if sc.DisableMemo {
		for i := range ps.Segs {
			a := &ps.Segs[i].Data
			row := sc.msim[i*nt : (i+1)*nt]
			for j := range pt.Segs {
				row[j] = c.Ctx.MSimData(a, &pt.Segs[j].Data)
			}
		}
		return
	}
	if sc.memoCtx != c.Ctx {
		// The memo caches context-dependent values; a scratch crossing
		// calculators (different rules/taxonomy/q) must start fresh.
		sc.memo = nil
		sc.memoN = 0
		sc.memoCtx = c.Ctx
	}
	for i := range ps.Segs {
		a := &ps.Segs[i].Data
		row := sc.msim[i*nt : (i+1)*nt]
		mrow := sc.memoRow(a.Text)
		for j := range pt.Segs {
			b := &pt.Segs[j].Data
			if v, ok := mrow[b.Text]; ok {
				sc.Stats.MemoHits++
				row[j] = v
				continue
			}
			v := c.Ctx.MSimData(a, b)
			if sc.memoN < memoCap {
				mrow[b.Text] = v
				sc.memoN++
			}
			row[j] = v
		}
	}
}

// memoRow returns the memo row of one left segment text, creating it on
// first use. The left side of a probe's msim matrices is the probe's own
// segment set, so the handful of rows is resolved once per matrix and the
// per-cell lookups hash only the candidate-side text.
func (sc *Scratch) memoRow(text string) map[string]float64 {
	if m, ok := sc.memo[text]; ok {
		return m
	}
	if sc.memoN >= memoCap {
		// Lookups on a nil row miss and the capped insert guard skips the
		// store, so a full memo stops growing without a special case.
		return nil
	}
	if sc.memo == nil {
		sc.memo = make(map[string]map[string]float64, 64)
	}
	m := make(map[string]float64, 16)
	sc.memo[text] = m
	return m
}

// coverUpper bounds USIM using the row/column maxima of the msim matrix:
// for any partition pair, the matching total is at most the sum over P_S of
// each selected segment's best msim against any segment of T (and
// symmetrically for P_T), maximised over partitions by a span-cover dynamic
// program; the denominator max{|P_S|, |P_T|} is at least the larger of the
// two partition-size lower bounds.
func coverUpper(sc *Scratch, ps, pt *PreparedRecord) float64 {
	ns, nt := len(ps.Segs), len(pt.Segs)
	sc.rowBest = strutil.Resize(sc.rowBest, ns)
	sc.colBest = strutil.Resize(sc.colBest, nt)
	for j := 0; j < nt; j++ {
		sc.colBest[j] = 0
	}
	for i := 0; i < ns; i++ {
		best := 0.0
		row := sc.msim[i*nt : (i+1)*nt]
		for j, w := range row {
			if w > best {
				best = w
			}
			if w > sc.colBest[j] {
				sc.colBest[j] = w
			}
		}
		sc.rowBest[i] = best
	}
	num := maxCover(sc, ps, sc.rowBest)
	if v := maxCover(sc, pt, sc.colBest); v < num {
		num = v
	}
	den := ps.minPart
	if pt.minPart > den {
		den = pt.minPart
	}
	ub := num / float64(den)
	if ub > 1 {
		ub = 1
	}
	return ub
}

// maxCover computes the maximal total value of a well-defined partition of
// the record where each segment contributes value[i]: dp[pos] is the best
// value of covering tokens[pos:], and segments are scanned in reverse
// enumeration order so every dp[end] is final before it is read.
func maxCover(sc *Scratch, pr *PreparedRecord, value []float64) float64 {
	n := len(pr.Tokens)
	sc.dp = strutil.Resize(sc.dp, n+1)
	dp := sc.dp
	dp[n] = 0
	for pos := 0; pos < n; pos++ {
		dp[pos] = -1
	}
	for i := len(pr.Segs) - 1; i >= 0; i-- {
		sp := pr.Segs[i].Span
		if v := value[i] + dp[sp.End]; v > dp[sp.Start] {
			dp[sp.Start] = v
		}
	}
	return dp[0]
}

// similarityPrepared runs Algorithm 1 over the prepared records assuming the
// msim cache in sc is already filled for (ps, pt).
func (c *Calculator) similarityPrepared(sc *Scratch, ps, pt *PreparedRecord) float64 {
	pairs := c.candidatePairsPrepared(sc, ps, pt)
	if len(pairs) == 0 {
		// No rule or taxonomy segment applies: the unified similarity
		// reduces to the token-level bipartite matching over singletons.
		sc.sSel = sc.sSel[:0]
		sc.tSel = sc.tSel[:0]
		return c.simPreparedSelected(sc, ps, pt)
	}
	buildConflictGraphInto(&sc.graph, pairs)

	// Line 1: w-MIS via SquareImp. The solution is copied out of the wmis
	// scratch into a core-owned buffer because the talon iterator below
	// reuses the same wmis scratch.
	sc.curSet = append(sc.curSet[:0], sc.graph.SquareImpScratch(wmisOptions(c.maxTalons()), &sc.wmisSc)...)
	set := sc.curSet
	best := c.simPreparedSet(sc, ps, pt, set)

	// Lines 3-4: claw improvements measured on the unified similarity.
	t := c.tParam()
	minGain := 1 / t
	maxRounds := int(t)
	for round := 0; round < maxRounds; round++ {
		bestGain := 0.0
		haveBest := false
		it := sc.graph.TalonSets(set, c.maxTalons(), false, &sc.wmisSc)
		for {
			talons, removed, ok := it.Next()
			if !ok {
				break
			}
			sc.candSet = wmis.SwapInto(sc.candSet[:0], set, talons, removed)
			v := c.simPreparedSet(sc, ps, pt, sc.candSet)
			if gain := v - best; gain > bestGain {
				bestGain = gain
				// talons/removed alias the iterator's scratch; keep copies.
				sc.bestTal = append(sc.bestTal[:0], talons...)
				sc.bestRem = append(sc.bestRem[:0], removed...)
				haveBest = true
			}
		}
		if !haveBest || bestGain < minGain {
			break
		}
		sc.candSet = wmis.SwapInto(sc.candSet[:0], set, sc.bestTal, sc.bestRem)
		sc.curSet = append(sc.curSet[:0], sc.candSet...)
		set = sc.curSet
		best += bestGain
	}
	return best
}

// candidatePairsPrepared enumerates the conflict-graph vertices exactly as
// Segmenter.CandidatePairs does, but over precomputed rule-id lists and
// taxonomy nodes instead of string joins and map lookups. The returned slice
// and the parallel sc.pairSegs index list are valid until the next call.
func (c *Calculator) candidatePairsPrepared(sc *Scratch, ps, pt *PreparedRecord) []SegmentPair {
	sc.segPairs = sc.segPairs[:0]
	sc.pairSegs = sc.pairSegs[:0]
	ctx := c.Ctx
	syn := ctx.SynonymEnabled()
	tax := ctx.TaxonomyEnabled()
	for i := range ps.Segs {
		a := &ps.Segs[i]
		for j := range pt.Segs {
			b := &pt.Segs[j]
			if a.Span.Len() < 2 && b.Span.Len() < 2 {
				continue
			}
			kind, weight := PairKind(-1), 0.0
			if syn && (a.Rule || b.Rule) {
				if cl, ok := ctx.Rules.MatchIDLists(a.Data.LHS, a.Data.RHS, b.Data.LHS, b.Data.RHS); ok && cl > weight {
					kind, weight = PairRule, cl
				}
			}
			if tax && a.Entity && b.Entity {
				if v := ctx.SegmentTaxonomyData(&a.Data, &b.Data); v > weight {
					kind, weight = PairTaxonomy, v
				}
			}
			if weight <= 0 {
				continue
			}
			sc.segPairs = append(sc.segPairs, SegmentPair{S: a.Span, T: b.Span, Weight: weight, Kind: kind})
			sc.pairSegs = append(sc.pairSegs, pairSeg{int32(i), int32(j)})
		}
	}
	return sc.segPairs
}

// simPreparedSet maps an independent set of conflict-graph vertices to the
// segment selections of both sides and evaluates their SIM (GetSim of
// Algorithm 1) from the msim cache.
func (c *Calculator) simPreparedSet(sc *Scratch, ps, pt *PreparedRecord, set []int) float64 {
	sc.sSel = sc.sSel[:0]
	sc.tSel = sc.tSel[:0]
	for _, v := range set {
		p := sc.pairSegs[v]
		if ps.Segs[p.s].Span.Len() >= 2 {
			// Vertex order is S-major, so sSel arrives sorted by start.
			sc.sSel = append(sc.sSel, p.s)
		}
		if pt.Segs[p.t].Span.Len() >= 2 {
			sc.tSel = append(sc.tSel, p.t)
		}
	}
	// The T-side selections are not start-ordered; insertion sort (the sets
	// are tiny and the spans disjoint, so starts are unique).
	for i := 1; i < len(sc.tSel); i++ {
		for j := i; j > 0 && pt.Segs[sc.tSel[j]].Span.Start < pt.Segs[sc.tSel[j-1]].Span.Start; j-- {
			sc.tSel[j], sc.tSel[j-1] = sc.tSel[j-1], sc.tSel[j]
		}
	}
	return c.simPreparedSelected(sc, ps, pt)
}

// simPreparedSelected evaluates Eq. (6) for the partitions induced by the
// selected multi-token segments in sc.sSel / sc.tSel (sorted by start):
// the maximum-weight bipartite matching over cached msim weights divided by
// the larger partition size.
func (c *Calculator) simPreparedSelected(sc *Scratch, ps, pt *PreparedRecord) float64 {
	sc.psIdx = buildPartitionIdx(ps, sc.sSel, sc.psIdx)
	sc.ptIdx = buildPartitionIdx(pt, sc.tSel, sc.ptIdx)
	n, m := len(sc.psIdx), len(sc.ptIdx)
	if n == 0 || m == 0 {
		return 0
	}
	sc.weights = strutil.Resize(sc.weights, n*m)
	for i, si := range sc.psIdx {
		row := sc.weights[i*m : (i+1)*m]
		base := int(si) * sc.nt
		for j, tj := range sc.ptIdx {
			row[j] = sc.msim[base+int(tj)]
		}
	}
	total := sc.match.Total(sc.weights, n, m)
	den := n
	if m > den {
		den = m
	}
	return total / float64(den)
}

// buildPartitionIdx constructs the partition induced by the selected
// non-overlapping multi-token segments (sorted by start): the selected
// segments plus the singleton segment for every uncovered token, ordered by
// start position — the same partition buildPartition produces.
func buildPartitionIdx(pr *PreparedRecord, sel []int32, out []int32) []int32 {
	out = out[:0]
	si := 0
	for pos := 0; pos < len(pr.Tokens); {
		if si < len(sel) && pr.Segs[sel[si]].Span.Start == pos {
			out = append(out, sel[si])
			pos = pr.Segs[sel[si]].Span.End
			si++
			continue
		}
		out = append(out, pr.single[pos])
		pos++
	}
	return out
}
