package core

import (
	"github.com/aujoin/aujoin/internal/strutil"
	"github.com/aujoin/aujoin/internal/wmis"
)

// ExactResult is the outcome of the exponential-time exact USIM solver.
type ExactResult struct {
	// Similarity is the best unified similarity found.
	Similarity float64
	// Complete is false when the enumeration budget was exhausted before
	// every partition pair had been evaluated; the similarity is then a
	// lower bound.
	Complete bool
	// Evaluated counts the partition pairs whose SIM was computed.
	Evaluated int
}

// SimilarityExact computes the exact unified similarity of two raw strings
// by enumerating all pairs of well-defined partitions (Definition 3). The
// cost is exponential in the number of applicable multi-token segments; the
// enumeration stops after ExactBudget partition pairs.
func (c *Calculator) SimilarityExact(s, t string) ExactResult {
	return c.SimilarityTokensExact(strutil.Tokenize(s), strutil.Tokenize(t))
}

// SimilarityTokensExact is SimilarityExact on pre-tokenised inputs.
func (c *Calculator) SimilarityTokensExact(sTokens, tTokens []string) ExactResult {
	if len(sTokens) == 0 || len(tTokens) == 0 {
		if len(sTokens) == 0 && len(tTokens) == 0 {
			return ExactResult{Similarity: 1, Complete: true}
		}
		return ExactResult{Similarity: 0, Complete: true}
	}
	sg := c.Segmenter()
	sParts := enumeratePartitions(sTokens, sg.MultiTokenSegments(sTokens))
	tParts := enumeratePartitions(tTokens, sg.MultiTokenSegments(tTokens))

	res := ExactResult{Complete: true}
	budget := c.exactBudget()
	for _, ps := range sParts {
		for _, pt := range tParts {
			if res.Evaluated >= budget {
				res.Complete = false
				return res
			}
			res.Evaluated++
			if v := c.SIM(ps, pt); v > res.Similarity {
				res.Similarity = v
			}
		}
	}
	return res
}

// enumeratePartitions lists every well-defined partition of the token
// sequence: each partition is induced by an independent (non-overlapping)
// subset of the multi-token segments, with all uncovered tokens as
// singletons. The empty selection (all-singleton partition) is always
// included.
func enumeratePartitions(tokens []string, multi []Segment) []Partition {
	// Build a tiny conflict graph over the multi-token segments (overlap ⇒
	// conflict) and enumerate all of its independent sets.
	g := wmis.NewGraph(len(multi))
	for i := range multi {
		g.SetWeight(i, 1)
		for j := i + 1; j < len(multi); j++ {
			if multi[i].Span.Overlaps(multi[j].Span) {
				g.AddEdge(i, j)
			}
		}
	}
	var partitions []Partition
	var cur []int
	var rec func(start int)
	rec = func(start int) {
		sel := make([]Segment, len(cur))
		for i, idx := range cur {
			sel[i] = multi[idx]
		}
		partitions = append(partitions, buildPartition(tokens, sel))
		for i := start; i < len(multi); i++ {
			ok := true
			for _, u := range cur {
				if g.HasEdge(u, i) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			cur = append(cur, i)
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return partitions
}

// ApproximationRatio computes the approximation accuracy A/A* of Algorithm 1
// on two strings, where A is the approximate and A* the exact unified
// similarity — the quantity whose percentiles Table 9 of the paper reports.
// An accuracy of 1 means the approximation found the optimum; when the
// exact similarity is 0 the accuracy is defined as 1.
// The boolean reports whether the exact computation completed within its
// budget.
func (c *Calculator) ApproximationRatio(s, t string) (float64, bool) {
	sTok, tTok := strutil.Tokenize(s), strutil.Tokenize(t)
	exact := c.SimilarityTokensExact(sTok, tTok)
	approx := c.SimilarityTokens(sTok, tTok)
	if exact.Similarity <= 0 {
		return 1, exact.Complete
	}
	// The paper reports r = A*/A ≥ ... with A ≤ A*; guard against tiny
	// floating point excesses.
	r := approx / exact.Similarity
	if r > 1 {
		r = 1
	}
	return r, exact.Complete
}

// wmisOptions builds the SquareImp options used by Algorithm 1.
func wmisOptions(maxTalons int) wmis.SquareImpOptions {
	return wmis.SquareImpOptions{MaxTalons: maxTalons}
}

// wmisSwap re-exports wmis.Swap for use inside the improvement loop.
func wmisSwap(set, talons, removed []int) []int {
	return wmis.Swap(set, talons, removed)
}
