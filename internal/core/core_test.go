package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/aujoin/aujoin/internal/sim"
	"github.com/aujoin/aujoin/internal/strutil"
	"github.com/aujoin/aujoin/internal/synonym"
	"github.com/aujoin/aujoin/internal/taxonomy"
)

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// paperContext reproduces the knowledge sources of Figure 1.
func paperContext() *sim.Context {
	rules := synonym.NewRuleSet()
	rules.MustAdd("cake", "gateau", 1)
	rules.MustAdd("coffee shop", "cafe", 1)
	tax := taxonomy.NewTree("Wikipedia")
	food := tax.MustAddChild(tax.Root(), "food")
	coffee := tax.MustAddChild(food, "coffee")
	drinks := tax.MustAddChild(coffee, "coffee drinks")
	tax.MustAddChild(drinks, "espresso")
	tax.MustAddChild(drinks, "latte")
	cake := tax.MustAddChild(food, "cake")
	tax.MustAddChild(cake, "apple cake")
	return sim.NewContext(rules, tax)
}

// figure2Context encodes the strings and rules of Figure 2 / Example 5.
// Tokens are opaque letters; rule weights come from the vertex weights in
// Figure 2(b).
func figure2Context() *sim.Context {
	rules := synonym.NewRuleSet()
	rules.MustAdd("b c d", "f", 0.3)  // R1
	rules.MustAdd("b c", "f g", 0.13) // R2
	rules.MustAdd("c d", "f g", 0.22) // R3
	rules.MustAdd("a", "g", 0.09)     // R4
	rules.MustAdd("d", "h", 0.27)     // R5
	rules.MustAdd("z e f", "g", 0.5)  // R6 (not applicable to S)
	ctx := sim.NewContext(rules, nil)
	// Disable Jaccard so the example's arithmetic is exactly the paper's
	// (opaque letter tokens share no grams anyway, but q=2 padding of
	// single-letter tokens would otherwise add tiny weights).
	return ctx.WithMeasures(sim.SetSynonym)
}

func TestSegmentsPaperExample(t *testing.T) {
	ctx := paperContext()
	sg := NewSegmenter(ctx)
	tokens := strutil.Tokenize("coffee shop latte Helsingki")
	segs := sg.Segments(tokens)
	// Expected well-defined segments: the four single tokens plus
	// "coffee shop" (rule lhs). "shop latte" must not appear.
	var texts []string
	for _, s := range segs {
		texts = append(texts, strutil.JoinTokens(s.Tokens))
	}
	want := map[string]bool{
		"coffee": true, "shop": true, "latte": true, "helsingki": true,
		"coffee shop": true,
	}
	if len(segs) != len(want) {
		t.Fatalf("segments = %v, want %v", texts, want)
	}
	for _, txt := range texts {
		if !want[txt] {
			t.Errorf("unexpected segment %q", txt)
		}
	}
	// The multi-token segment is flagged as a rule side.
	for _, s := range segs {
		if strutil.JoinTokens(s.Tokens) == "coffee shop" && !s.Rule {
			t.Error("coffee shop should be marked as a rule segment")
		}
	}
}

func TestSegmentsTaxonomyEntities(t *testing.T) {
	ctx := paperContext()
	sg := NewSegmenter(ctx)
	tokens := strutil.Tokenize("apple cake gateau")
	segs := sg.Segments(tokens)
	foundEntity := false
	for _, s := range segs {
		if strutil.JoinTokens(s.Tokens) == "apple cake" {
			foundEntity = true
			if !s.Entity {
				t.Error("apple cake should be marked as a taxonomy entity")
			}
		}
	}
	if !foundEntity {
		t.Error("apple cake segment missing")
	}
	multi := sg.MultiTokenSegments(tokens)
	if len(multi) != 1 || strutil.JoinTokens(multi[0].Tokens) != "apple cake" {
		t.Errorf("MultiTokenSegments = %v", multi)
	}
}

func TestMinPartitionSize(t *testing.T) {
	ctx := paperContext()
	sg := NewSegmenter(ctx)
	// Example 6: T = "espresso cafe Helsinki" has three single-token
	// segments, largest segment size 1, so m = ceil(3 / (ln 1 + 1)) = 3.
	if got := sg.MinPartitionSize(strutil.Tokenize("espresso cafe Helsinki")); got != 3 {
		t.Errorf("MinPartitionSize = %d, want 3", got)
	}
	// S = "coffee shop latte Helsingki": greedy picks "coffee shop" then two
	// singletons (3 segments); largest segment 2 tokens → ceil(3/(ln2+1)) = 2.
	if got := sg.MinPartitionSize(strutil.Tokenize("coffee shop latte Helsingki")); got != 2 {
		t.Errorf("MinPartitionSize = %d, want 2", got)
	}
	if got := sg.MinPartitionSize(nil); got != 0 {
		t.Errorf("MinPartitionSize(empty) = %d, want 0", got)
	}
	if got := sg.MinPartitionSize([]string{"solo"}); got != 1 {
		t.Errorf("MinPartitionSize(single) = %d, want 1", got)
	}
}

func TestCandidatePairsAndGraphFigure1(t *testing.T) {
	ctx := paperContext()
	sg := NewSegmenter(ctx)
	s := strutil.Tokenize("coffee shop latte Helsingki")
	u := strutil.Tokenize("espresso cafe Helsinki")
	pairs := sg.CandidatePairs(s, u)
	// Only one multi-token candidate applies: "coffee shop" ↔ "cafe".
	if len(pairs) != 1 {
		t.Fatalf("CandidatePairs = %+v, want exactly 1", pairs)
	}
	p := pairs[0]
	if p.Kind != PairRule || !approxEq(p.Weight, 1) {
		t.Errorf("pair = %+v, want rule pair with weight 1", p)
	}
	if p.Kind.String() != "rule" {
		t.Errorf("Kind.String = %q", p.Kind.String())
	}
	cg := BuildConflictGraph(pairs)
	if cg.Graph.Len() != 1 {
		t.Errorf("graph size = %d, want 1", cg.Graph.Len())
	}
}

func TestUnifiedSimilarityFigure1(t *testing.T) {
	ctx := paperContext()
	calc := NewCalculator(ctx)
	s := "coffee shop latte Helsingki"
	u := "espresso cafe Helsinki"
	// With Eq. (1) Jaccard on 2-grams, the three matched segments score
	// 1 ("coffee shop"→"cafe"), 0.8 (latte/espresso via taxonomy) and
	// 2/3 (Helsingki/Helsinki), giving (1 + 0.8 + 2/3)/3.
	want := (1 + 0.8 + 2.0/3.0) / 3
	got := calc.Similarity(s, u)
	if !approxEq(got, want) {
		t.Errorf("Similarity = %v, want %v", got, want)
	}
	// Exact solver agrees (the 3-segment partition is optimal).
	exact := calc.SimilarityExact(s, u)
	if !exact.Complete {
		t.Fatal("exact solver did not complete")
	}
	if !approxEq(exact.Similarity, want) {
		t.Errorf("exact = %v, want %v", exact.Similarity, want)
	}
	// Symmetry of the unified measure.
	if !approxEq(calc.Similarity(u, s), got) {
		t.Errorf("similarity not symmetric: %v vs %v", calc.Similarity(u, s), got)
	}
}

func TestUnifiedSimilarityAlternativePartitionIsWorse(t *testing.T) {
	ctx := paperContext()
	calc := NewCalculator(ctx)
	sg := calc.Segmenter()
	s := strutil.Tokenize("coffee shop latte Helsingki")
	u := strutil.Tokenize("espresso cafe Helsinki")
	// The all-singleton partition of S (Example 3(ii)) must score lower
	// than the partition that keeps "coffee shop" together.
	psAll := buildPartition(s, nil)
	pt := buildPartition(u, nil)
	allSingle := calc.SIM(psAll, pt)
	best := calc.SimilarityTokens(s, u)
	if allSingle >= best {
		t.Errorf("all-singleton partition %v should be worse than best %v", allSingle, best)
	}
	_ = sg
}

func TestExample5Figure2(t *testing.T) {
	ctx := figure2Context()
	calc := NewCalculator(ctx)
	calc.T = 50 // allow improvements of ≥ 0.02
	s := "a b c d e"
	u := "f g h"

	sg := calc.Segmenter()
	pairs := sg.CandidatePairs(strutil.Tokenize(s), strutil.Tokenize(u))
	// Applicable rules: R1..R5 (R6's lhs is not a segment of S). R4 and R5
	// are single↔single rules and are excluded from the w-MIS graph by the
	// refinement, so the graph holds R1, R2, R3.
	if len(pairs) != 3 {
		t.Fatalf("CandidatePairs = %+v, want 3 multi-token rule pairs", pairs)
	}

	// Example 5: the best selection is {R1, R4}: partitions
	// PS = {{a},{b,c,d},{e}}, PT = {{f},{g},{h}} with similarity
	// (0.3 + 0.09)/3 = 0.13.
	got := calc.Similarity(s, u)
	if !approxEq(got, 0.13) {
		t.Errorf("Similarity = %v, want 0.13", got)
	}
	exact := calc.SimilarityExact(s, u)
	if !exact.Complete || !approxEq(exact.Similarity, 0.13) {
		t.Errorf("exact = %+v, want 0.13", exact)
	}
}

func TestTheorem2TightInstance(t *testing.T) {
	// The appendix constructs an instance where SquareImp alone picks the
	// single heavy rule R_{k+1} while the optimum uses the k light rules.
	// With k = 3: S = {m1,m2,q1}, T = {n1,p1..p4,q2} and rules as below.
	rules := synonym.NewRuleSet()
	rules.MustAdd("m1", "p1 p2", 0.4)  // R1
	rules.MustAdd("m2", "p3 p4", 0.4)  // R2
	rules.MustAdd("q1", "n1 q2", 0.4)  // R3 (the k-th rule)
	rules.MustAdd("m1 m2", "n1", 0.75) // R4 = R_{k+1}
	ctx := sim.NewContext(rules, nil).WithMeasures(sim.SetSynonym)
	calc := NewCalculator(ctx)
	calc.T = 100
	s := "m1 m2 q1"
	// Token order keeps each rule's right-hand side consecutive so that it
	// forms a well-defined segment of T.
	u := "p1 p2 p3 p4 n1 q2"
	exact := calc.SimilarityExact(s, u)
	if !exact.Complete {
		t.Fatal("exact did not complete")
	}
	// Optimal: apply R1, R2, R3 → PS has 3 segments, PT has 3 segments,
	// similarity (0.4·3)/3 = 0.4.
	if !approxEq(exact.Similarity, 0.4) {
		t.Errorf("exact = %v, want 0.4", exact.Similarity)
	}
	approx := calc.Similarity(s, u)
	if approx > exact.Similarity+1e-9 {
		t.Errorf("approximation %v exceeds exact %v", approx, exact.Similarity)
	}
	// Theorem 2 bound with k = 3, t = 100: ratio ≥ 1 / ((t/(t-1))·(k²-1)/2) = 1/4.04...
	if approx < exact.Similarity/4.1 {
		t.Errorf("approximation %v below the Theorem 2 bound for exact %v", approx, exact.Similarity)
	}
}

func TestSimilarityEdgeCases(t *testing.T) {
	calc := NewCalculator(paperContext())
	if got := calc.Similarity("", ""); got != 1 {
		t.Errorf("empty-empty = %v, want 1", got)
	}
	if got := calc.Similarity("coffee", ""); got != 0 {
		t.Errorf("nonempty-empty = %v, want 0", got)
	}
	if got := calc.Similarity("", "coffee"); got != 0 {
		t.Errorf("empty-nonempty = %v, want 0", got)
	}
	if got := calc.Similarity("espresso", "espresso"); !approxEq(got, 1) {
		t.Errorf("identical = %v, want 1", got)
	}
	ex := calc.SimilarityExact("", "")
	if ex.Similarity != 1 || !ex.Complete {
		t.Errorf("exact empty-empty = %+v", ex)
	}
	ex = calc.SimilarityExact("coffee", "")
	if ex.Similarity != 0 {
		t.Errorf("exact nonempty-empty = %+v", ex)
	}
}

func TestSimilarityNoKnowledgeFallsBackToTokenMatching(t *testing.T) {
	ctx := &sim.Context{Q: 2, Measures: sim.SetJaccard}
	calc := NewCalculator(ctx)
	// Without rules or taxonomy the unified similarity is the best token
	// matching under Jaccard: identical strings score 1.
	if got := calc.Similarity("database systems", "database systems"); !approxEq(got, 1) {
		t.Errorf("identical = %v, want 1", got)
	}
	got := calc.Similarity("database systems", "database system")
	if got <= 0.5 || got >= 1 {
		t.Errorf("near-identical = %v, want in (0.5, 1)", got)
	}
}

func TestSimilarityAtLeast(t *testing.T) {
	calc := NewCalculator(paperContext())
	s := strutil.Tokenize("coffee shop latte Helsingki")
	u := strutil.Tokenize("espresso cafe Helsinki")
	if !calc.SimilarityAtLeast(s, u, 0.8) {
		t.Error("expected similarity ≥ 0.8")
	}
	if calc.SimilarityAtLeast(s, u, 0.95) {
		t.Error("similarity should not reach 0.95")
	}
}

func TestApproximationNeverExceedsExact(t *testing.T) {
	ctx := paperContext()
	calc := NewCalculator(ctx)
	vocab := []string{"coffee", "shop", "latte", "espresso", "cafe", "helsinki",
		"helsingki", "cake", "apple", "gateau", "food", "drinks"}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		var sTok, tTok []string
		for i := 0; i < n; i++ {
			sTok = append(sTok, vocab[rng.Intn(len(vocab))])
		}
		for i := 0; i < m; i++ {
			tTok = append(tTok, vocab[rng.Intn(len(vocab))])
		}
		exact := calc.SimilarityTokensExact(sTok, tTok)
		if !exact.Complete {
			continue
		}
		approx := calc.SimilarityTokens(sTok, tTok)
		if approx > exact.Similarity+1e-9 {
			t.Fatalf("trial %d: approx %v > exact %v for %v / %v",
				trial, approx, exact.Similarity, sTok, tTok)
		}
	}
}

func TestApproximationRatio(t *testing.T) {
	calc := NewCalculator(paperContext())
	r, complete := calc.ApproximationRatio("coffee shop latte Helsingki", "espresso cafe Helsinki")
	if !complete {
		t.Fatal("exact incomplete")
	}
	if r <= 0 || r > 1 {
		t.Errorf("ratio = %v, want in (0,1]", r)
	}
	if !approxEq(r, 1) {
		t.Errorf("ratio on the Figure 1 pair = %v, want 1", r)
	}
	// Dissimilar pair: exact similarity may be 0 for fully disjoint strings
	// only when Jaccard is off; with Jaccard the ratio is still in (0,1].
	r, _ = calc.ApproximationRatio("xyz", "abc")
	if r <= 0 || r > 1 {
		t.Errorf("ratio = %v, want in (0,1]", r)
	}
}

func TestSimilarityRangeAndSymmetryProperty(t *testing.T) {
	calc := NewCalculator(paperContext())
	vocab := []string{"coffee", "shop", "latte", "espresso", "cafe", "helsinki", "cake", "apple"}
	f := func(a, b, c, d, e uint8) bool {
		sTok := []string{vocab[int(a)%len(vocab)], vocab[int(b)%len(vocab)]}
		tTok := []string{vocab[int(c)%len(vocab)], vocab[int(d)%len(vocab)], vocab[int(e)%len(vocab)]}
		v := calc.SimilarityTokens(sTok, tTok)
		w := calc.SimilarityTokens(tTok, sTok)
		return v >= 0 && v <= 1+1e-9 && approxEq(v, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMeasureRestrictedCalculators(t *testing.T) {
	base := paperContext()
	s := "coffee shop latte Helsingki"
	u := "espresso cafe Helsinki"
	full := NewCalculator(base).Similarity(s, u)
	jOnly := NewCalculator(base.WithMeasures(sim.SetJaccard)).Similarity(s, u)
	sOnly := NewCalculator(base.WithMeasures(sim.SetSynonym)).Similarity(s, u)
	tOnly := NewCalculator(base.WithMeasures(sim.SetTaxonomy)).Similarity(s, u)
	if full < jOnly-1e-9 || full < sOnly-1e-9 || full < tOnly-1e-9 {
		t.Errorf("unified %v should dominate single measures %v %v %v", full, jOnly, sOnly, tOnly)
	}
	if jOnly >= full {
		t.Errorf("Jaccard-only %v should be strictly below unified %v on the POI pair", jOnly, full)
	}
}

func TestCalculatorDefaults(t *testing.T) {
	c := &Calculator{Ctx: paperContext()}
	if c.tParam() != DefaultT {
		t.Errorf("tParam = %v, want %v", c.tParam(), DefaultT)
	}
	if c.maxTalons() != DefaultMaxTalons {
		t.Errorf("maxTalons = %v", c.maxTalons())
	}
	if c.exactBudget() != DefaultExactBudget {
		t.Errorf("exactBudget = %v", c.exactBudget())
	}
	// Segmenter is lazily created.
	if c.Segmenter() == nil {
		t.Fatal("Segmenter should not be nil")
	}
	c.T = 10
	c.MaxTalons = 2
	c.ExactBudget = 5
	if c.tParam() != 10 || c.maxTalons() != 2 || c.exactBudget() != 5 {
		t.Error("explicit parameters not honoured")
	}
}

func TestExactBudgetExhaustion(t *testing.T) {
	calc := NewCalculator(paperContext())
	calc.ExactBudget = 1
	res := calc.SimilarityExact("coffee shop latte", "espresso cafe latte")
	if res.Complete {
		t.Error("expected incomplete exact result with budget 1")
	}
	if res.Evaluated != 1 {
		t.Errorf("Evaluated = %d, want 1", res.Evaluated)
	}
}

func TestEnumeratePartitionsCounts(t *testing.T) {
	ctx := paperContext()
	sg := NewSegmenter(ctx)
	tokens := strutil.Tokenize("coffee shop latte")
	parts := enumeratePartitions(tokens, sg.MultiTokenSegments(tokens))
	// Two partitions: all singletons, and {coffee shop, latte}.
	if len(parts) != 2 {
		t.Fatalf("partitions = %d, want 2", len(parts))
	}
	sizes := map[int]bool{}
	for _, p := range parts {
		sizes[p.Size()] = true
		// Every partition must cover all tokens exactly once.
		covered := 0
		for _, seg := range p.Segments {
			covered += seg.Span.Len()
		}
		if covered != len(tokens) {
			t.Errorf("partition %v covers %d tokens, want %d", p, covered, len(tokens))
		}
	}
	if !sizes[2] || !sizes[3] {
		t.Errorf("expected partition sizes 2 and 3, got %v", sizes)
	}
}

func TestMSimMatrixShape(t *testing.T) {
	ctx := paperContext()
	calc := NewCalculator(ctx)
	sTok := strutil.Tokenize("coffee shop latte")
	tTok := strutil.Tokenize("cafe espresso")
	ps := buildPartition(sTok, []Segment{{Span: strutil.Span{Start: 0, End: 2}, Tokens: sTok[0:2]}})
	pt := buildPartition(tTok, nil)
	m := MSimMatrix(ctx, ps, pt)
	if len(m) != ps.Size() || len(m[0]) != pt.Size() {
		t.Fatalf("matrix shape %dx%d, want %dx%d", len(m), len(m[0]), ps.Size(), pt.Size())
	}
	// coffee shop ↔ cafe must have weight 1 (synonym rule).
	found := false
	for i, seg := range ps.Segments {
		if strutil.JoinTokens(seg.Tokens) == "coffee shop" {
			for j, tseg := range pt.Segments {
				if strutil.JoinTokens(tseg.Tokens) == "cafe" && approxEq(m[i][j], 1) {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("synonym weight missing from msim matrix")
	}
	_ = calc
}

func BenchmarkSimilarityPOI(b *testing.B) {
	calc := NewCalculator(paperContext())
	s := strutil.Tokenize("coffee shop latte Helsingki")
	u := strutil.Tokenize("espresso cafe Helsinki")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		calc.SimilarityTokens(s, u)
	}
}

func BenchmarkSimilarityExactPOI(b *testing.B) {
	calc := NewCalculator(paperContext())
	s := strutil.Tokenize("coffee shop latte Helsingki")
	u := strutil.Tokenize("espresso cafe Helsinki")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		calc.SimilarityTokensExact(s, u)
	}
}
