package core

import (
	"fmt"
	"testing"

	"github.com/aujoin/aujoin/internal/strutil"
)

func TestPreparedCache(t *testing.T) {
	c := NewCalculator(paperContext())
	pc := NewPreparedCache(3)
	tokens := strutil.Tokenize("coffee shop latte")
	first := c.PrepareCached(pc, tokens)
	if second := c.PrepareCached(pc, tokens); second != first {
		t.Fatal("repeated PrepareCached did not return the cached record")
	}
	if hits, misses := pc.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("hits, misses = %d, %d; want 1, 1", hits, misses)
	}
	// Overflow the capacity: the oldest entry is evicted FIFO.
	for i := 0; i < 3; i++ {
		c.PrepareCached(pc, strutil.Tokenize(fmt.Sprintf("filler record %d", i)))
	}
	if pc.Len() != 3 {
		t.Fatalf("Len = %d, want capacity 3", pc.Len())
	}
	if _, ok := pc.Get("coffee shop latte"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	// A nil cache degrades to plain Prepare.
	if pr := c.PrepareCached(nil, tokens); pr == nil || len(pr.Segs) == 0 {
		t.Fatal("nil-cache PrepareCached returned an unprepared record")
	}
}
