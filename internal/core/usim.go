package core

import (
	"sync"

	"github.com/aujoin/aujoin/internal/matching"
	"github.com/aujoin/aujoin/internal/sim"
	"github.com/aujoin/aujoin/internal/strutil"
)

// DefaultT is the default trade-off parameter t of Algorithm 1: the local
// search keeps applying claw swaps whose unified-similarity improvement is
// at least 1/t, which bounds the number of improvement rounds by ⌊t⌋.
const DefaultT = 50

// DefaultMaxTalons bounds the size of the talon sets explored by the claw
// improvement step of Algorithm 1. Claw-freeness bounds the useful size by
// the maximal rule length k; 3 captures all improvements observed on the
// evaluation datasets.
const DefaultMaxTalons = 3

// DefaultExactBudget is the node budget of the exact solver when invoked
// through the Calculator; enough for strings with up to a few dozen
// applicable rules.
const DefaultExactBudget = 200000

// Calculator computes unified similarities between strings for a fixed
// similarity context. It is safe for concurrent use.
type Calculator struct {
	Ctx *sim.Context
	// T is the approximation trade-off parameter t (> 1) of Algorithm 1;
	// zero means DefaultT.
	T float64
	// MaxTalons bounds claw sizes in the improvement search; zero means
	// DefaultMaxTalons.
	MaxTalons int
	// ExactBudget caps the number of partition pairs the exact solver
	// explores; zero means DefaultExactBudget.
	ExactBudget int

	segmenter *Segmenter
	segOnce   sync.Once

	// scratchPool recycles verification scratch for callers that pass a nil
	// *Scratch to the prepared-path methods.
	scratchPool sync.Pool
}

// NewCalculator creates a Calculator with default parameters over the given
// context.
func NewCalculator(ctx *sim.Context) *Calculator {
	return &Calculator{Ctx: ctx, segmenter: NewSegmenter(ctx)}
}

// Segmenter returns the segment enumerator shared by the calculator. The
// lazy initialisation is synchronised so that a zero-value Calculator stays
// safe for concurrent use (Prepare runs on all workers during index builds).
func (c *Calculator) Segmenter() *Segmenter {
	c.segOnce.Do(func() {
		if c.segmenter == nil {
			c.segmenter = NewSegmenter(c.Ctx)
		}
	})
	return c.segmenter
}

func (c *Calculator) tParam() float64 {
	if c.T > 1 {
		return c.T
	}
	return DefaultT
}

func (c *Calculator) maxTalons() int {
	if c.MaxTalons > 0 {
		return c.MaxTalons
	}
	return DefaultMaxTalons
}

func (c *Calculator) exactBudget() int {
	if c.ExactBudget > 0 {
		return c.ExactBudget
	}
	return DefaultExactBudget
}

// SIM computes Eq. (6) for a fixed pair of partitions: the maximum-weight
// bipartite matching over msim segment weights divided by the larger
// partition size.
func (c *Calculator) SIM(ps, pt Partition) float64 {
	if ps.Size() == 0 || pt.Size() == 0 {
		return 0
	}
	w := MSimMatrix(c.Ctx, ps, pt)
	total := matching.MaxWeight(w).Total
	den := ps.Size()
	if pt.Size() > den {
		den = pt.Size()
	}
	return total / float64(den)
}

// GetSim implements the GetSim function of Algorithm 1: it converts an
// independent set of conflict-graph vertices into a pair of well-defined
// partitions and evaluates SIM on them.
func (c *Calculator) GetSim(cg *ConflictGraph, set []int, sTokens, tTokens []string) float64 {
	sSel, tSel := cg.selectedSegments(set, sTokens, tTokens)
	ps := buildPartition(sTokens, sSel)
	pt := buildPartition(tTokens, tSel)
	return c.SIM(ps, pt)
}

// Similarity computes the approximate unified similarity between two raw
// strings (tokenising them first). This is Algorithm 1 of the paper.
func (c *Calculator) Similarity(s, t string) float64 {
	return c.SimilarityTokens(strutil.Tokenize(s), strutil.Tokenize(t))
}

// SimilarityTokens computes the approximate unified similarity between two
// token sequences using Algorithm 1:
//
//  1. build the conflict graph over candidate segment pairs,
//  2. compute a w-MIS solution with SquareImp,
//  3. greedily apply claw swaps while they improve the unified similarity
//     by at least 1/t,
//  4. return the similarity of the final solution.
func (c *Calculator) SimilarityTokens(sTokens, tTokens []string) float64 {
	if len(sTokens) == 0 || len(tTokens) == 0 {
		if len(sTokens) == 0 && len(tTokens) == 0 {
			return 1
		}
		return 0
	}
	sg := c.Segmenter()
	pairs := sg.CandidatePairs(sTokens, tTokens)
	if len(pairs) == 0 {
		// No rule or taxonomy segment applies: the unified similarity
		// reduces to the token-level bipartite matching over singletons.
		ps := buildPartition(sTokens, nil)
		pt := buildPartition(tTokens, nil)
		return c.SIM(ps, pt)
	}
	cg := BuildConflictGraph(pairs)

	// Line 1: w-MIS via SquareImp.
	set := cg.Graph.SquareImp(wmisOptions(c.maxTalons()))
	best := c.GetSim(cg, set, sTokens, tTokens)

	// Lines 3-4: claw improvements measured on the unified similarity.
	t := c.tParam()
	minGain := 1 / t
	maxRounds := int(t)
	for round := 0; round < maxRounds; round++ {
		var bestTalons, bestRemoved []int
		bestGain := 0.0
		cg.Graph.EnumerateTalonSets(set, c.maxTalons(), func(talons, removed []int) bool {
			candidate := wmisSwap(set, talons, removed)
			v := c.GetSim(cg, candidate, sTokens, tTokens)
			if gain := v - best; gain > bestGain {
				bestGain = gain
				bestTalons = talons
				bestRemoved = removed
			}
			return true
		})
		if bestTalons == nil || bestGain < minGain {
			break
		}
		set = wmisSwap(set, bestTalons, bestRemoved)
		best += bestGain
	}
	return best
}

// SimilarityAtLeast reports whether the unified similarity of the two token
// sequences reaches the threshold. It prepares both records and runs the
// thresholded verification engine, so hopeless pairs are rejected by cheap
// upper bounds before any matching or local search runs. Callers that need
// the similarity value — or the old unconditional full computation — should
// use SimilarityTokens; callers verifying one record against many should
// Prepare it once and use SimilarityAtLeastPrepared.
func (c *Calculator) SimilarityAtLeast(sTokens, tTokens []string, theta float64) bool {
	return c.SimilarityAtLeastPrepared(c.Prepare(sTokens), c.Prepare(tTokens), theta, nil)
}
