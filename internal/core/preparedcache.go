package core

import (
	"sync"

	"github.com/aujoin/aujoin/internal/strutil"
)

// PreparedCache is a bounded, thread-safe cache of PreparedRecord values
// keyed by the record's normalised text. The dynamic join index threads one
// through Insert so that re-inserting a previously seen string (the common
// shape of deduplication feeds, where the same catalog row is deleted and
// re-ingested) skips the segment enumeration and derivation tables of
// Calculator.Prepare entirely. Cached records are immutable, so sharing one
// *PreparedRecord across index generations and goroutines is safe.
//
// Eviction is FIFO: once the capacity is reached the oldest-inserted entry
// is dropped. That is deliberately simpler than LRU — the cache exists to
// absorb short-range repetition in an ingest stream, not to model a working
// set — and keeps Put O(1) without a recency list.
type PreparedCache struct {
	mu       sync.Mutex
	capacity int
	m        map[string]*PreparedRecord
	queue    []string // FIFO eviction order; queue[head:] are live keys
	head     int
	hits     uint64
	misses   uint64
}

// DefaultPreparedCacheSize is the capacity used when a dynamic index
// creates its own cache.
const DefaultPreparedCacheSize = 4096

// NewPreparedCache creates a cache holding at most capacity prepared
// records (capacity ≤ 0 selects DefaultPreparedCacheSize).
func NewPreparedCache(capacity int) *PreparedCache {
	if capacity <= 0 {
		capacity = DefaultPreparedCacheSize
	}
	return &PreparedCache{capacity: capacity, m: make(map[string]*PreparedRecord)}
}

// Get returns the cached prepared record for a key, if present.
func (pc *PreparedCache) Get(key string) (*PreparedRecord, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pr, ok := pc.m[key]
	if ok {
		pc.hits++
	} else {
		pc.misses++
	}
	return pr, ok
}

// Put stores a prepared record under a key, evicting the oldest entry when
// the cache is full. Storing an already-present key refreshes nothing (the
// record is immutable, so both values are interchangeable).
func (pc *PreparedCache) Put(key string, pr *PreparedRecord) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if _, ok := pc.m[key]; ok {
		return
	}
	for len(pc.m) >= pc.capacity && pc.head < len(pc.queue) {
		old := pc.queue[pc.head]
		pc.head++
		delete(pc.m, old)
	}
	if pc.head > len(pc.queue)/2 && pc.head > 64 {
		pc.queue = append([]string(nil), pc.queue[pc.head:]...)
		pc.head = 0
	}
	pc.m[key] = pr
	pc.queue = append(pc.queue, key)
}

// Len returns the number of cached records.
func (pc *PreparedCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.m)
}

// Stats returns the cumulative hit and miss counts.
func (pc *PreparedCache) Stats() (hits, misses uint64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses
}

// PrepareCached is Calculator.Prepare through a cache: the prepared record
// for the tokens' normalised text is returned from pc when present and
// computed-and-stored otherwise. A nil cache degrades to a plain Prepare.
func (c *Calculator) PrepareCached(pc *PreparedCache, tokens []string) *PreparedRecord {
	if pc == nil {
		return c.Prepare(tokens)
	}
	key := strutil.JoinTokens(tokens)
	if pr, ok := pc.Get(key); ok {
		return pr
	}
	pr := c.Prepare(tokens)
	pc.Put(key, pr)
	return pr
}
