package core

import (
	"fmt"
	"sync"

	"github.com/aujoin/aujoin/internal/sim"
	"github.com/aujoin/aujoin/internal/strutil"
)

// SegPersist is the persisted identity of one prepared segment: its token
// span and provenance flags. Everything else about a segment — its tokens
// and its measure-evaluation tables — is a deterministic function of the
// span, the record tokens and the similarity context, so it is recomputed
// on restore instead of being serialized.
type SegPersist struct {
	Span   strutil.Span
	Rule   bool
	Entity bool
}

// PersistMeta returns the metadata a snapshot needs to reconstruct the
// record via RestorePrepared: the segment spans and flags in enumeration
// order, plus the partition-size lower bound.
func (pr *PreparedRecord) PersistMeta() ([]SegPersist, int) {
	segs := make([]SegPersist, len(pr.Segs))
	for i := range pr.Segs {
		segs[i] = SegPersist{Span: pr.Segs[i].Span, Rule: pr.Segs[i].Rule, Entity: pr.Segs[i].Entity}
	}
	return segs, pr.minPart
}

// SegmentMemo caches segment derivation tables by segment text for the
// duration of one restore. Catalog records draw on a shared vocabulary, so
// the same segment texts — every singleton token span in particular — recur
// across thousands of records; deriving each distinct text once makes
// rehydration decode-bound instead of recompute-bound. Safe for concurrent
// use. Sharing is sound because a SegmentData and the tables it references
// (gram set, rule-id lists) are immutable after derivation: verification
// only ever reads them, and the text↔token-sequence mapping is bijective
// (tokens never contain the join separator).
type SegmentMemo struct {
	mu sync.RWMutex
	m  map[string]sim.SegmentData
}

// NewSegmentMemo returns an empty memo. A nil *SegmentMemo is valid and
// disables caching.
func NewSegmentMemo() *SegmentMemo {
	return &SegmentMemo{m: make(map[string]sim.SegmentData)}
}

// prepareSegment derives one segment's tables through the memo (or directly
// when the memo is nil).
func (sm *SegmentMemo) prepareSegment(ctx *sim.Context, tokens []string) sim.SegmentData {
	if sm == nil {
		return ctx.PrepareSegment(tokens)
	}
	key := strutil.JoinTokens(tokens)
	sm.mu.RLock()
	d, ok := sm.m[key]
	sm.mu.RUnlock()
	if ok {
		return d
	}
	d = ctx.PrepareSegment(tokens)
	sm.mu.Lock()
	sm.m[key] = d
	sm.mu.Unlock()
	return d
}

// RestorePrepared rebuilds a PreparedRecord from persisted metadata without
// re-running segment enumeration or the partition-size set cover — only the
// per-segment derivation tables are recomputed (deterministically, from the
// same context), so the result verifies bit-identically to the original.
// The metadata is validated against the token sequence: a snapshot that
// survived its checksum but describes impossible segments is rejected here.
// memo (optional, nil disables it) shares derivations between the records
// of one restore.
func (c *Calculator) RestorePrepared(tokens []string, segs []SegPersist, minPart int, memo *SegmentMemo) (*PreparedRecord, error) {
	pr := &PreparedRecord{Tokens: tokens}
	if len(tokens) == 0 {
		if len(segs) != 0 {
			return nil, fmt.Errorf("core: %d segments on an empty record", len(segs))
		}
		return pr, nil
	}
	if minPart < 1 || minPart > len(tokens) {
		return nil, fmt.Errorf("core: partition bound %d out of range for %d tokens", minPart, len(tokens))
	}
	pr.Segs = make([]PreparedSegment, len(segs))
	pr.single = make([]int32, len(tokens))
	covered := make([]bool, len(tokens))
	prevStart := -1
	for i, s := range segs {
		sp := s.Span
		if sp.Start < 0 || sp.End > len(tokens) || sp.Len() < 1 {
			return nil, fmt.Errorf("core: segment span [%d,%d) out of range for %d tokens", sp.Start, sp.End, len(tokens))
		}
		if sp.Start < prevStart {
			return nil, fmt.Errorf("core: segments not in enumeration order at %d", i)
		}
		prevStart = sp.Start
		segTokens := tokens[sp.Start:sp.End]
		pr.Segs[i] = PreparedSegment{
			Span:   sp,
			Tokens: segTokens,
			Rule:   s.Rule,
			Entity: s.Entity,
			Data:   memo.prepareSegment(c.Ctx, segTokens),
		}
		if sp.Len() == 1 {
			pr.single[sp.Start] = int32(i)
			covered[sp.Start] = true
		}
	}
	for pos, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("core: no singleton segment at position %d", pos)
		}
	}
	pr.minPart = minPart
	return pr, nil
}
