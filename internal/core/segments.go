// Package core implements the paper's primary contribution: the unified
// string similarity measure USIM (Section 2.2) and its polynomial-time
// approximation (Section 2.3, Algorithm 1), together with the exact
// (exponential) reference solver used to measure approximation accuracy
// (Table 9).
//
// Given two strings S and T, the unified similarity is
//
//	USIM(S, T) = max over all pairs of well-defined partitions (P_S, P_T)
//	             of  SIM(P_S, P_T)
//
// where SIM is the maximum-weight bipartite matching between the segments
// of the two partitions, with per-edge weight msim (the best of the
// Jaccard, synonym and taxonomy measures), divided by max{|P_S|, |P_T|}.
//
// # Conflict graph refinement
//
// The paper's Algorithm 1 builds a conflict graph whose vertices are all
// candidate segment pairs, including pairs where both segments are single
// tokens. Those singleton-singleton vertices never change the partitions —
// every token that is not covered by a selected multi-token rule or
// taxonomy segment becomes its own segment anyway — and their contribution
// to the final similarity is computed exactly by the Hungarian matching
// inside GetSim. This implementation therefore restricts the w-MIS graph to
// segment pairs arising from synonym rules and taxonomy entities (the pairs
// that actually steer partitioning), which keeps the graph small without
// changing the value of any candidate solution. The behaviour of Algorithm
// 1 on the paper's Figure 2 / Example 5 is preserved (see the tests).
package core

import (
	"math"
	"sort"

	"github.com/aujoin/aujoin/internal/sim"
	"github.com/aujoin/aujoin/internal/strutil"
)

// Segment is a well-defined segment of a tokenised string (Definition 1):
// a run of consecutive tokens that matches a synonym-rule side, a taxonomy
// entity, or consists of a single token.
type Segment struct {
	Span   strutil.Span
	Tokens []string
	// Rule reports whether the segment matches the lhs or rhs of a synonym
	// rule; Entity reports whether it matches a taxonomy entity. A single
	// token segment may have both flags false.
	Rule   bool
	Entity bool
}

// Segmenter enumerates well-defined segments of tokenised strings for a
// given similarity context. It is stateless apart from the context and safe
// for concurrent use.
type Segmenter struct {
	Ctx *sim.Context
}

// NewSegmenter returns a Segmenter over the given context.
func NewSegmenter(ctx *sim.Context) *Segmenter { return &Segmenter{Ctx: ctx} }

// maxSegmentTokens returns the longest span worth probing: the maximum rule
// side or entity name length (at least 1).
func (sg *Segmenter) maxSegmentTokens() int {
	return sg.Ctx.MaxRuleTokens()
}

// Segments returns every well-defined segment of the token sequence,
// ordered by start position then length. Single-token segments are always
// included; longer spans are included when they match a synonym-rule side
// or a taxonomy entity.
func (sg *Segmenter) Segments(tokens []string) []Segment {
	maxLen := sg.maxSegmentTokens()
	var out []Segment
	for start := 0; start < len(tokens); start++ {
		limit := maxLen
		if rem := len(tokens) - start; rem < limit {
			limit = rem
		}
		for length := 1; length <= limit; length++ {
			span := strutil.Span{Start: start, End: start + length}
			segTokens := tokens[start : start+length]
			seg := Segment{Span: span, Tokens: segTokens}
			if sg.Ctx.SynonymEnabled() && sg.Ctx.Rules.IsSide(segTokens) {
				seg.Rule = true
			}
			if sg.Ctx.TaxonomyEnabled() {
				if _, ok := sg.Ctx.Tax.LookupTokens(segTokens); ok {
					seg.Entity = true
				}
			}
			if length == 1 || seg.Rule || seg.Entity {
				out = append(out, seg)
			}
		}
	}
	return out
}

// MultiTokenSegments returns the well-defined segments spanning two or more
// tokens. These are the segments that change the shape of a partition; all
// remaining tokens are singleton segments by default.
func (sg *Segmenter) MultiTokenSegments(tokens []string) []Segment {
	segs := sg.Segments(tokens)
	out := segs[:0:0]
	for _, s := range segs {
		if s.Span.Len() >= 2 {
			out = append(out, s)
		}
	}
	return out
}

// MinPartitionSize implements GetMinPartitionSize of Algorithm 2: a lower
// bound on the number of segments in any well-defined partition of the
// token sequence, obtained by greedy set cover (largest uncovered segment
// first) and divided by the greedy approximation factor ln(n)+1, where n is
// the size of the largest well-defined segment.
func (sg *Segmenter) MinPartitionSize(tokens []string) int {
	if len(tokens) == 0 {
		return 0
	}
	return minPartitionSizeSegs(tokens, sg.Segments(tokens))
}

// minPartitionSizeSegs is MinPartitionSize over an already-enumerated
// segment list (Prepare shares one enumeration between the segment tables
// and this bound).
func minPartitionSizeSegs(tokens []string, segs []Segment) int {
	uncovered := make(map[int]struct{}, len(tokens))
	for i := range tokens {
		uncovered[i] = struct{}{}
	}
	largest := 1
	for _, s := range segs {
		if s.Span.Len() > largest {
			largest = s.Span.Len()
		}
	}
	picked := 0
	for len(uncovered) > 0 {
		bestGain, bestIdx := 0, -1
		for i, s := range segs {
			gain := 0
			for p := s.Span.Start; p < s.Span.End; p++ {
				if _, ok := uncovered[p]; ok {
					gain++
				}
			}
			if gain > bestGain {
				bestGain, bestIdx = gain, i
			}
		}
		if bestIdx < 0 {
			// Cannot happen because singleton segments always exist, but
			// guard against pathological inputs.
			break
		}
		for p := segs[bestIdx].Span.Start; p < segs[bestIdx].Span.End; p++ {
			delete(uncovered, p)
		}
		picked++
	}
	bound := ceilDiv(picked, lnPlus1(largest))
	if bound < 1 {
		bound = 1
	}
	return bound
}

// lnPlus1 returns ln(n) + 1 for n ≥ 1.
func lnPlus1(n int) float64 {
	if n < 1 {
		n = 1
	}
	return math.Log(float64(n)) + 1
}

// ceilDiv returns ceil(a / b) for a ≥ 0, b > 0.
func ceilDiv(a int, b float64) int {
	v := float64(a) / b
	iv := int(v)
	if float64(iv) < v {
		iv++
	}
	return iv
}

// Partition is a well-defined partition of a tokenised string: every token
// belongs to exactly one segment (Definition 2). Segments are ordered by
// start position.
type Partition struct {
	Segments []Segment
}

// Size returns the number of segments in the partition.
func (p Partition) Size() int { return len(p.Segments) }

// buildPartition constructs the partition induced by a set of selected
// non-overlapping multi-token segments: the selected segments plus a
// singleton segment for every uncovered token.
func buildPartition(tokens []string, selected []Segment) Partition {
	covered := make([]bool, len(tokens))
	segs := make([]Segment, 0, len(tokens))
	for _, s := range selected {
		segs = append(segs, s)
		for p := s.Span.Start; p < s.Span.End; p++ {
			covered[p] = true
		}
	}
	for i := range tokens {
		if !covered[i] {
			segs = append(segs, Segment{
				Span:   strutil.Span{Start: i, End: i + 1},
				Tokens: tokens[i : i+1],
			})
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].Span.Start < segs[b].Span.Start })
	return Partition{Segments: segs}
}
