package core

import (
	"github.com/aujoin/aujoin/internal/sim"
	"github.com/aujoin/aujoin/internal/strutil"
	"github.com/aujoin/aujoin/internal/wmis"
)

// PairKind classifies how a candidate segment pair was generated.
type PairKind int

const (
	// PairRule links a segment of S and a segment of T through a synonym
	// rule in either direction.
	PairRule PairKind = iota
	// PairTaxonomy links two segments that both map to taxonomy entities.
	PairTaxonomy
	// PairSingle links two single-token segments (used only by the exact
	// solver's bipartite matching; such pairs are not graph vertices, see
	// the package comment).
	PairSingle
)

// String returns a short human-readable label.
func (k PairKind) String() string {
	switch k {
	case PairRule:
		return "rule"
	case PairTaxonomy:
		return "taxonomy"
	case PairSingle:
		return "single"
	default:
		return "unknown"
	}
}

// SegmentPair is a candidate pairing of a segment of S with a segment of T,
// weighted by msim (Eq. 4). SegmentPairs are the vertices of the conflict
// graph of Section 2.3.
type SegmentPair struct {
	S, T   strutil.Span
	Weight float64
	Kind   PairKind
}

// CandidatePairs enumerates the segment pairs used as conflict-graph
// vertices for strings with token slices sTokens and tTokens:
//
//   - every (P_S, P_T) linked by a synonym rule (in either direction), and
//   - every (P_S, P_T) where both segments map to taxonomy entities,
//
// restricted to pairs where at least one side spans two or more tokens
// (singleton-singleton pairs are handled exactly by the bipartite matching
// in GetSim and are deliberately excluded from the w-MIS graph; see the
// package comment).
func (sg *Segmenter) CandidatePairs(sTokens, tTokens []string) []SegmentPair {
	sSegs := sg.Segments(sTokens)
	tSegs := sg.Segments(tTokens)
	var out []SegmentPair
	for _, ps := range sSegs {
		for _, pt := range tSegs {
			if ps.Span.Len() < 2 && pt.Span.Len() < 2 {
				continue
			}
			kind, w := sg.pairWeight(ps, pt)
			if w <= 0 {
				continue
			}
			out = append(out, SegmentPair{S: ps.Span, T: pt.Span, Weight: w, Kind: kind})
		}
	}
	return out
}

// pairWeight determines whether a segment pair is a candidate vertex and
// returns its kind and msim weight. Rule pairs and taxonomy pairs qualify;
// a pair qualifying as both keeps the larger weight.
func (sg *Segmenter) pairWeight(ps, pt Segment) (PairKind, float64) {
	kind, weight := PairKind(-1), 0.0
	if sg.Ctx.SynonymEnabled() && (ps.Rule || pt.Rule) {
		if c, ok := sg.Ctx.Rules.MatchPair(ps.Tokens, pt.Tokens); ok && c > weight {
			kind, weight = PairRule, c
		}
	}
	if sg.Ctx.TaxonomyEnabled() && ps.Entity && pt.Entity {
		if v := sg.Ctx.SegmentTaxonomy(ps.Tokens, pt.Tokens); v > weight {
			kind, weight = PairTaxonomy, v
		}
	}
	if weight <= 0 {
		return PairSingle, 0
	}
	return kind, weight
}

// ConflictGraph bundles the conflict graph with its vertex pairs so that
// independent sets (vertex index slices) can be mapped back to segment
// selections.
type ConflictGraph struct {
	Graph *wmis.Graph
	Pairs []SegmentPair
}

// BuildConflictGraph constructs the conflict graph of Section 2.3 for the
// given candidate pairs: one vertex per pair, weighted by msim, and an edge
// between any two pairs whose S-segments or T-segments overlap in token
// positions.
func BuildConflictGraph(pairs []SegmentPair) *ConflictGraph {
	g := &wmis.Graph{}
	buildConflictGraphInto(g, pairs)
	return &ConflictGraph{Graph: g, Pairs: pairs}
}

// buildConflictGraphInto fills g with the conflict graph of the candidate
// pairs, reusing g's storage — the allocation-free form used by the verify
// hot path, which builds one small graph per record pair.
func buildConflictGraphInto(g *wmis.Graph, pairs []SegmentPair) {
	g.Reset(len(pairs))
	for i, p := range pairs {
		g.SetWeight(i, p.Weight)
	}
	for i := 0; i < len(pairs); i++ {
		for j := i + 1; j < len(pairs); j++ {
			if pairs[i].S.Overlaps(pairs[j].S) || pairs[i].T.Overlaps(pairs[j].T) {
				g.AddEdge(i, j)
			}
		}
	}
}

// selectedSegments maps an independent set of vertex indices to the
// multi-token segments it selects on the S side and the T side.
func (cg *ConflictGraph) selectedSegments(set []int, sTokens, tTokens []string) (sSel, tSel []Segment) {
	for _, v := range set {
		p := cg.Pairs[v]
		if p.S.Len() >= 2 {
			sSel = append(sSel, Segment{Span: p.S, Tokens: p.S.Slice(sTokens)})
		}
		if p.T.Len() >= 2 {
			tSel = append(tSel, Segment{Span: p.T, Tokens: p.T.Slice(tTokens)})
		}
	}
	return sSel, tSel
}

// MSimMatrix computes the full msim weight matrix between the segments of
// two partitions; entry [i][j] = msim(P_S i, P_T j).
func MSimMatrix(ctx *sim.Context, ps, pt Partition) [][]float64 {
	w := make([][]float64, len(ps.Segments))
	for i, a := range ps.Segments {
		row := make([]float64, len(pt.Segments))
		for j, b := range pt.Segments {
			row[j] = ctx.MSim(a.Tokens, b.Tokens)
		}
		w[i] = row
	}
	return w
}
