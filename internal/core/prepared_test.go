package core

import (
	"math/rand"
	"testing"

	"github.com/aujoin/aujoin/internal/sim"
)

// randTokens draws up to maxLen tokens from the vocabulary (possibly none).
func randTokens(rng *rand.Rand, vocab []string, maxLen int) []string {
	n := rng.Intn(maxLen + 1)
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = vocab[rng.Intn(len(vocab))]
	}
	return out
}

var preparedVocab = []string{"coffee", "shop", "latte", "espresso", "cafe",
	"helsinki", "helsingki", "cake", "apple", "gateau", "food", "drinks"}

// TestSimilarityPreparedMatchesTokens is the engine's central property:
// SimilarityPrepared must return exactly the value SimilarityTokens returns,
// and the thresholded verification must agree with comparing that value
// against θ, across measure combinations and thresholds.
func TestSimilarityPreparedMatchesTokens(t *testing.T) {
	combos := []sim.MeasureSet{
		sim.SetJaccard,                   // J
		sim.SetTaxonomy | sim.SetSynonym, // TS
		sim.SetAll,                       // TJS
	}
	thetas := []float64{0.7, 0.8, 0.9}
	base := paperContext()
	for _, ms := range combos {
		calc := NewCalculator(base.WithMeasures(ms))
		rng := rand.New(rand.NewSource(int64(ms) + 7))
		sc := NewScratch()
		for trial := 0; trial < 200; trial++ {
			sTok := randTokens(rng, preparedVocab, 5)
			tTok := randTokens(rng, preparedVocab, 5)
			want := calc.SimilarityTokens(sTok, tTok)
			ps := calc.Prepare(sTok)
			pt := calc.Prepare(tTok)
			if got := calc.SimilarityPrepared(ps, pt, sc); got != want {
				t.Fatalf("%v trial %d: SimilarityPrepared = %v, SimilarityTokens = %v for %v / %v",
					ms, trial, got, want, sTok, tTok)
			}
			// Nil scratch (pooled path) must agree too.
			if got := calc.SimilarityPrepared(ps, pt, nil); got != want {
				t.Fatalf("%v trial %d: pooled SimilarityPrepared = %v, want %v", ms, trial, got, want)
			}
			for _, theta := range thetas {
				if got := calc.SimilarityAtLeastPrepared(ps, pt, theta, sc); got != (want >= theta) {
					t.Fatalf("%v trial %d θ=%v: SimilarityAtLeastPrepared = %v, similarity %v for %v / %v",
						ms, trial, theta, got, want, sTok, tTok)
				}
				if v, ok := calc.VerifyPrepared(ps, pt, theta, sc); ok != (want >= theta) || (ok && v != want) {
					t.Fatalf("%v trial %d θ=%v: VerifyPrepared = (%v, %v), similarity %v",
						ms, trial, theta, v, ok, want)
				}
			}
		}
	}
}

// TestSimilarityAtLeastMatchesTokens pins the satellite: SimilarityAtLeast
// is now the real thresholded implementation and must agree with the full
// computation at every threshold, including both boundary directions.
func TestSimilarityAtLeastMatchesTokens(t *testing.T) {
	calc := NewCalculator(paperContext())
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		sTok := randTokens(rng, preparedVocab, 5)
		tTok := randTokens(rng, preparedVocab, 5)
		want := calc.SimilarityTokens(sTok, tTok)
		for _, theta := range []float64{0, 0.5, 0.7, 0.8, 0.9, 1, want} {
			if got := calc.SimilarityAtLeast(sTok, tTok, theta); got != (want >= theta) {
				t.Fatalf("trial %d θ=%v: SimilarityAtLeast = %v, similarity = %v for %v / %v",
					trial, theta, got, want, sTok, tTok)
			}
		}
	}
}

func TestPreparedEmptyRecords(t *testing.T) {
	calc := NewCalculator(paperContext())
	empty := calc.Prepare(nil)
	full := calc.Prepare([]string{"coffee"})
	if v := calc.SimilarityPrepared(empty, empty, nil); v != 1 {
		t.Errorf("empty-empty = %v, want 1", v)
	}
	if v := calc.SimilarityPrepared(empty, full, nil); v != 0 {
		t.Errorf("empty-full = %v, want 0", v)
	}
	if v := calc.SimilarityPrepared(full, empty, nil); v != 0 {
		t.Errorf("full-empty = %v, want 0", v)
	}
	if v, ok := calc.VerifyPrepared(empty, empty, 1, nil); !ok || v != 1 {
		t.Errorf("VerifyPrepared(empty, empty, 1) = (%v, %v), want (1, true)", v, ok)
	}
	if _, ok := calc.VerifyPrepared(empty, full, 0.1, nil); ok {
		t.Error("VerifyPrepared(empty, full) should not reach 0.1")
	}
	if empty.NumSegments() != 0 || empty.MinPartitionSize() != 0 {
		t.Errorf("empty prepared record = %d segments, minPart %d", empty.NumSegments(), empty.MinPartitionSize())
	}
	if full.NumSegments() != 1 || full.MinPartitionSize() != 1 {
		t.Errorf("single-token prepared record = %d segments, minPart %d", full.NumSegments(), full.MinPartitionSize())
	}
}

// TestScratchReuseIsDeterministic verifies a single scratch reused across
// many pairs produces the same values as fresh scratch per pair — the
// property the per-worker reuse in the join verifier depends on.
func TestScratchReuseIsDeterministic(t *testing.T) {
	calc := NewCalculator(paperContext())
	rng := rand.New(rand.NewSource(5))
	shared := NewScratch()
	for trial := 0; trial < 60; trial++ {
		ps := calc.Prepare(randTokens(rng, preparedVocab, 5))
		pt := calc.Prepare(randTokens(rng, preparedVocab, 5))
		a := calc.SimilarityPrepared(ps, pt, shared)
		b := calc.SimilarityPrepared(ps, pt, NewScratch())
		if a != b {
			t.Fatalf("trial %d: shared scratch %v != fresh scratch %v", trial, a, b)
		}
	}
}

func BenchmarkSimilarityPreparedPOI(b *testing.B) {
	calc := NewCalculator(paperContext())
	ps := calc.Prepare([]string{"coffee", "shop", "latte", "helsingki"})
	pt := calc.Prepare([]string{"espresso", "cafe", "helsinki"})
	sc := NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		calc.SimilarityPrepared(ps, pt, sc)
	}
}

func BenchmarkVerifyPreparedReject(b *testing.B) {
	calc := NewCalculator(paperContext())
	ps := calc.Prepare([]string{"coffee", "shop", "latte", "helsingki"})
	pt := calc.Prepare([]string{"apple", "cake", "bakery", "market"})
	sc := NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		calc.VerifyPrepared(ps, pt, 0.8, sc)
	}
}
