package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aujoin/aujoin"
	"github.com/aujoin/aujoin/internal/cmdutil"
)

// Worker is the cluster-mode state of an aujoind process: one empty-born
// aujoin.Index per replica group it hosts (a worker with R-way replication
// hosts R group indexes), the coordinator-pushed membership, and the
// order-epoch state machine. Workers start with nothing and receive
// everything — config, records, orders — from the coordinator, which is
// what keeps every replica of a group byte-identical: same records, same
// IDs, same application order, same adopted frequency order.
type Worker struct {
	joiner *aujoin.Joiner
	shards int

	// epoch is this worker's committed order epoch; adopted (guarded by mu)
	// is the prepared-but-uncommitted one during a bump's window. Requests
	// stamped with either are served: after adoption the indexes already
	// answer under the new order, and answers are exact under any order —
	// the stamp only exists to fence out workers that missed a bump
	// entirely.
	epoch atomic.Int64
	ready atomic.Bool

	mu      sync.Mutex
	ring    *Ring
	self    int
	jopts   aujoin.JoinOptions
	groups  map[int]*workerGroup
	adopted int64
}

// workerGroup is one hosted replica group: its index and the apply
// sequencing. The group mutex serializes ApplyRequests so the sequence
// check and the mutation are atomic; queries never take it.
type workerGroup struct {
	ix  *aujoin.Index
	mu  sync.Mutex
	seq atomic.Uint64
}

// NewWorker builds an unconfigured worker around the joiner (which carries
// the locally configured synonym/taxonomy/measure resources — those must
// match across the cluster, exactly as they must match across restarts of a
// durable daemon). shards is the per-group index partition count.
func NewWorker(joiner *aujoin.Joiner, shards int) *Worker {
	return &Worker{joiner: joiner, shards: shards}
}

// register mounts the worker-only protocol endpoints.
func (wk *Worker) register(mux *http.ServeMux) {
	mux.HandleFunc("/cluster/config", wk.handleConfig)
	mux.HandleFunc("/cluster/apply", wk.handleApply)
	mux.HandleFunc("/cluster/freqs", wk.handleFreqs)
	mux.HandleFunc("/cluster/build-order", wk.handleBuildOrder)
	mux.HandleFunc("/cluster/adopt", wk.handleAdopt)
	mux.HandleFunc("/cluster/commit", wk.handleCommit)
}

// RegisterWorker announces a worker to the coordinator, retrying until the
// registration is accepted or ctx ends. Configuration arrives by push once
// every expected worker has registered.
func RegisterWorker(ctx context.Context, client *http.Client, coordURL, selfAddr string) error {
	if client == nil {
		client = http.DefaultClient
	}
	body, _ := json.Marshal(RegisterRequest{Addr: selfAddr})
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, coordURL+"/cluster/register", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(300 * time.Millisecond):
		}
	}
}

// heartbeat assembles the /readyz body: committed epoch, per-group applied
// sequences, and the interned-key split summed over the hosted groups (the
// coordinator's auto-bump trigger watches the dynamic region's growth).
func (wk *Worker) heartbeat() (Heartbeat, bool) {
	hb := Heartbeat{Ready: wk.ready.Load(), Epoch: wk.epoch.Load()}
	if !hb.Ready {
		return hb, false
	}
	wk.mu.Lock()
	groups := make(map[int]*workerGroup, len(wk.groups))
	for g, wg := range wk.groups {
		groups[g] = wg
	}
	wk.mu.Unlock()
	hb.Groups = make(map[string]uint64, len(groups))
	for g, wg := range groups {
		hb.Groups[strconv.Itoa(g)] = wg.seq.Load()
		st := wg.ix.Stats()
		hb.FrozenKeys += st.FrozenKeys
		hb.DynamicKeys += st.DynamicKeys
	}
	return hb, true
}

// stats is the worker-mode /stats body.
func (wk *Worker) stats() map[string]any {
	out := map[string]any{
		"ready": wk.ready.Load(),
		"epoch": wk.epoch.Load(),
	}
	wk.mu.Lock()
	defer wk.mu.Unlock()
	groups := make(map[string]any, len(wk.groups))
	for g, wg := range wk.groups {
		groups[strconv.Itoa(g)] = map[string]any{"seq": wg.seq.Load(), "index": wg.ix.Stats()}
	}
	out["groups"] = groups
	if wk.ring != nil {
		out["self"] = wk.self
		out["workers"] = wk.ring.Workers()
		out["replicas"] = wk.ring.Replicas()
	}
	return out
}

// resolve maps a read request to the hosted group index it addresses:
// checks readiness, the epoch stamp, and the group parameter, writing the
// protocol error when any fails.
func (wk *Worker) resolve(w http.ResponseWriter, r *http.Request) (*aujoin.Index, bool) {
	if !wk.ready.Load() {
		writeError(w, http.StatusServiceUnavailable, ErrorBody{Error: "worker is not configured yet", Code: "not_ready"})
		return nil, false
	}
	if !wk.checkEpoch(w, r.Header.Get(EpochHeader)) {
		return nil, false
	}
	raw := r.URL.Query().Get("group")
	if raw == "" {
		writeError(w, http.StatusBadRequest, ErrorBody{Error: "worker mode: group parameter is required"})
		return nil, false
	}
	g, err := strconv.Atoi(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorBody{Error: "group must be an integer"})
		return nil, false
	}
	wg := wk.group(g)
	if wg == nil {
		writeError(w, http.StatusNotFound, ErrorBody{Error: fmt.Sprintf("group %d is not hosted here", g), Code: "wrong_group"})
		return nil, false
	}
	return wg.ix, true
}

// checkEpoch enforces the order-sync fence: a request stamped with an epoch
// this worker has neither committed nor prepared is answered 409 with the
// worker's committed epoch, telling the coordinator this replica missed a
// bump and must not serve. Unstamped requests (direct debugging access)
// pass.
func (wk *Worker) checkEpoch(w http.ResponseWriter, stamp string) bool {
	if stamp == "" {
		return true
	}
	e, err := strconv.ParseInt(stamp, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorBody{Error: "bad epoch stamp"})
		return false
	}
	cur := wk.epoch.Load()
	if e == cur {
		return true
	}
	wk.mu.Lock()
	adopted := wk.adopted
	wk.mu.Unlock()
	if adopted != 0 && e == adopted {
		return true
	}
	writeError(w, http.StatusConflict, ErrorBody{
		Error: fmt.Sprintf("epoch mismatch: request %d, worker %d", e, cur),
		Code:  "epoch_mismatch", Epoch: cur,
	})
	return false
}

func (wk *Worker) group(g int) *workerGroup {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	return wk.groups[g]
}

// handleConfig is the coordinator's bootstrap push: membership, join
// parameters and the initial epoch. The worker builds one empty index per
// group it replicates and becomes ready. A repeated identical push is
// acknowledged idempotently (the coordinator retries on timeouts).
func (wk *Worker) handleConfig(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var cfg ConfigRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&cfg); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(cfg.Workers) == 0 || cfg.Self < 0 || cfg.Self >= len(cfg.Workers) {
		writeError(w, http.StatusBadRequest, ErrorBody{Error: "config: self out of range"})
		return
	}
	wk.mu.Lock()
	defer wk.mu.Unlock()
	if wk.ring != nil {
		if wk.ring.Workers() == len(cfg.Workers) && wk.self == cfg.Self {
			writeJSON(w, map[string]bool{"ok": true})
			return
		}
		writeError(w, http.StatusConflict, ErrorBody{Error: "worker is already configured differently"})
		return
	}
	wk.ring = NewRing(len(cfg.Workers), cfg.Replicas)
	wk.self = cfg.Self
	wk.jopts = aujoin.JoinOptions{Theta: cfg.Theta, Tau: cfg.Tau, Filter: cmdutil.ParseFilter(cfg.Filter)}
	wk.groups = make(map[int]*workerGroup)
	for _, g := range wk.ring.GroupsOf(cfg.Self) {
		ix := wk.joiner.IndexWith(nil, wk.jopts, aujoin.IndexOptions{Shards: wk.shards})
		// The order is owned by the coordinator's epoch protocol from here
		// on: no local threshold may ever re-freeze it.
		ix.DisableAutoRefreeze()
		wk.groups[g] = &workerGroup{ix: ix}
	}
	wk.epoch.Store(cfg.Epoch)
	wk.ready.Store(true)
	writeJSON(w, map[string]bool{"ok": true})
}

// handleApply applies one sequenced mutation batch to one hosted group.
// Sequencing makes application idempotent and gap-detecting: a replayed
// sequence acknowledges without re-applying, a gap means this replica
// missed a batch (it answers 409 and the coordinator takes it out — a
// replica that missed a write must not serve).
func (wk *Worker) handleApply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !wk.ready.Load() {
		writeError(w, http.StatusServiceUnavailable, ErrorBody{Error: "worker is not configured yet", Code: "not_ready"})
		return
	}
	var req ApplyRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !wk.checkEpoch(w, strconv.FormatInt(req.Epoch, 10)) {
		return
	}
	wg := wk.group(req.Group)
	if wg == nil {
		writeError(w, http.StatusNotFound, ErrorBody{Error: fmt.Sprintf("group %d is not hosted here", req.Group), Code: "wrong_group"})
		return
	}
	wg.mu.Lock()
	defer wg.mu.Unlock()
	last := wg.seq.Load()
	if req.Seq <= last {
		writeJSON(w, ApplyResponse{Applied: false})
		return
	}
	if req.Seq != last+1 {
		writeError(w, http.StatusConflict, ErrorBody{
			Error: fmt.Sprintf("sequence gap on group %d: have %d, got %d", req.Group, last, req.Seq),
			Code:  "seq_gap",
		})
		return
	}
	if len(req.IDs) > 0 {
		if err := wg.ix.InsertWithIDs(req.IDs, req.Records); err != nil {
			http.Error(w, "apply insert: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	var removed []bool
	if len(req.Removes) > 0 {
		removed = wg.ix.RemoveBatch(req.Removes)
	}
	wg.seq.Store(req.Seq)
	writeJSON(w, ApplyResponse{Applied: true, Removed: removed})
}

// handleFreqs exports one hosted group's live key-frequency table — the
// builder's raw material during an epoch bump.
func (wk *Worker) handleFreqs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	g, err := strconv.Atoi(r.URL.Query().Get("group"))
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorBody{Error: "group must be an integer"})
		return
	}
	wg := wk.group(g)
	if wg == nil {
		writeError(w, http.StatusNotFound, ErrorBody{Error: fmt.Sprintf("group %d is not hosted here", g), Code: "wrong_group"})
		return
	}
	writeJSON(w, wg.ix.KeyFrequencies())
}

// handleBuildOrder runs on the elected builder: it collects one frequency
// table per group (locally when the group is hosted here, over HTTP
// otherwise), sums them — the groups partition the record space, so the sum
// IS the global document-frequency table — and returns the finalize-ordered
// image everyone will adopt.
func (wk *Worker) handleBuildOrder(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req BuildOrderRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	freq := map[string]int{}
	for _, src := range req.Sources {
		img, err := wk.groupFreqs(r.Context(), src)
		if err != nil {
			writeError(w, http.StatusBadGateway, ErrorBody{Error: fmt.Sprintf("collect group %d from %s: %v", src.Group, src.Addr, err)})
			return
		}
		for i, k := range img.Keys {
			freq[k] += img.Freqs[i]
		}
	}
	keys := make([]string, 0, len(freq))
	for k := range freq {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		fi, fj := freq[keys[i]], freq[keys[j]]
		if fi != fj {
			return fi < fj
		}
		return keys[i] < keys[j]
	})
	img := aujoin.OrderImage{Keys: keys, Freqs: make([]int, len(keys))}
	for i, k := range keys {
		img.Freqs[i] = freq[k]
	}
	writeJSON(w, OrderPayload{Epoch: req.Epoch, Order: img})
}

// groupFreqs reads one group's frequency table, short-circuiting to the
// local index when this worker hosts the group.
func (wk *Worker) groupFreqs(ctx context.Context, src FreqSource) (aujoin.OrderImage, error) {
	if wg := wk.group(src.Group); wg != nil {
		return wg.ix.KeyFrequencies(), nil
	}
	var img aujoin.OrderImage
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/cluster/freqs?group=%d", src.Addr, src.Group), nil)
	if err != nil {
		return img, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return img, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return img, fmt.Errorf("status %s", resp.Status)
	}
	return img, json.NewDecoder(resp.Body).Decode(&img)
}

// handleAdopt is the prepare phase of an epoch bump on the worker side: the
// hosted group indexes are rebuilt under the shipped global order, one
// group at a time — a rolling rebuild; reads keep being served from the
// pre-adoption snapshots throughout. The worker's committed epoch does not
// change yet; the prepared epoch is remembered so requests stamped with it
// are already accepted.
func (wk *Worker) handleAdopt(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var payload OrderPayload
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 512<<20)).Decode(&payload); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	cur := wk.epoch.Load()
	if payload.Epoch == cur {
		writeJSON(w, map[string]bool{"ok": true}) // replayed commit-complete bump
		return
	}
	if payload.Epoch < cur {
		writeError(w, http.StatusConflict, ErrorBody{
			Error: fmt.Sprintf("adopt epoch %d behind committed %d", payload.Epoch, cur),
			Code:  "epoch_mismatch", Epoch: cur,
		})
		return
	}
	wk.mu.Lock()
	groups := make([]*workerGroup, 0, len(wk.groups))
	for _, wg := range wk.groups {
		groups = append(groups, wg)
	}
	wk.mu.Unlock()
	for _, wg := range groups {
		if err := wg.ix.AdoptOrder(payload.Order); err != nil {
			http.Error(w, "adopt order: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	wk.mu.Lock()
	wk.adopted = payload.Epoch
	wk.mu.Unlock()
	writeJSON(w, map[string]bool{"ok": true})
}

// handleCommit is phase two: flip the committed epoch to the prepared one.
func (wk *Worker) handleCommit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req CommitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	cur := wk.epoch.Load()
	if req.Epoch == cur {
		writeJSON(w, map[string]bool{"ok": true})
		return
	}
	wk.mu.Lock()
	adopted := wk.adopted
	wk.mu.Unlock()
	if req.Epoch != adopted {
		writeError(w, http.StatusConflict, ErrorBody{
			Error: fmt.Sprintf("commit epoch %d was never prepared (committed %d, prepared %d)", req.Epoch, cur, adopted),
			Code:  "epoch_mismatch", Epoch: cur,
		})
		return
	}
	wk.epoch.Store(req.Epoch)
	wk.mu.Lock()
	wk.adopted = 0
	wk.mu.Unlock()
	writeJSON(w, map[string]bool{"ok": true})
}
