package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/aujoin/aujoin"
)

// denseCatalog builds records in near-duplicate families so probes against
// it produce many matches — enough that an aborted stream is clearly
// distinguishable from a completed one.
func denseCatalog(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	templates := []string{
		"espresso cafe helsinki city center",
		"apple cake bakery market street",
		"database systems course spring term",
	}
	tail := []string{"north", "south", "east", "west", "old", "new"}
	out := make([]string, n)
	for i := range out {
		out[i] = templates[i%len(templates)] + " " + tail[rng.Intn(len(tail))]
	}
	return out
}

func testNode(t *testing.T, catalogSize int) *Node {
	t.Helper()
	j, err := aujoin.NewStrict()
	if err != nil {
		t.Fatalf("NewStrict: %v", err)
	}
	ix := j.Index(denseCatalog(catalogSize, 1), aujoin.JoinOptions{Theta: 0.7, Tau: 2})
	n := NewNode()
	n.SetBackend(&Backend{IX: ix})
	return n
}

func (n *Node) ix() *aujoin.Index { return n.be.Load().IX }

// decodeLines parses every line of an NDJSON body (one target type per call).
func decodeLines[T any](t *testing.T, body string) []T {
	t.Helper()
	var out []T
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var v T
		if err := json.Unmarshal([]byte(sc.Text()), &v); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, v)
	}
	return out
}

// TestHandleQueryStreamsNDJSON pins the /query contract: top-k matches come
// back as one JSON object per line, ordered by descending similarity, and
// min_sim tightens the threshold per request.
func TestHandleQueryStreamsNDJSON(t *testing.T) {
	n := testNode(t, 60)
	req := httptest.NewRequest(http.MethodGet, "/query?q=espresso+cafe+helsinki+city+center+north&k=5", nil)
	rec := httptest.NewRecorder()
	n.handleQuery(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	matches := decodeLines[aujoin.QueryMatch](t, rec.Body.String())
	if len(matches) != 5 {
		t.Fatalf("got %d matches, want 5", len(matches))
	}
	for i := 1; i < len(matches); i++ {
		if matches[i].Similarity > matches[i-1].Similarity {
			t.Fatalf("matches not ordered by similarity: %v", matches)
		}
	}

	// min_sim=1 keeps only exact matches.
	req = httptest.NewRequest(http.MethodGet, "/query?q=espresso+cafe+helsinki+city+center+north&k=50&min_sim=1", nil)
	rec = httptest.NewRecorder()
	n.handleQuery(rec, req)
	strict := decodeLines[aujoin.QueryMatch](t, rec.Body.String())
	if len(strict) == 0 {
		t.Fatal("min_sim=1 returned no matches for an exact catalog string")
	}
	for _, m := range strict {
		if m.Similarity < 1 {
			t.Fatalf("min_sim=1 returned similarity %v", m.Similarity)
		}
	}

	// Parameter validation.
	for _, url := range []string{"/query?q=x", "/query?k=3", "/query?q=x&k=0", "/query?q=x&k=3&min_sim=2", "/query?q=x&k=3&plan=greedy"} {
		rec := httptest.NewRecorder()
		n.handleQuery(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, rec.Code)
		}
	}
}

// TestHandleQueryPlanOverride pins the ?plan= contract: fixed and auto (and
// the default) return identical match sets — the planner only changes how
// the filter runs — and the planned requests show up in /stats counters.
func TestHandleQueryPlanOverride(t *testing.T) {
	n := testNode(t, 60)
	query := func(plan string) []aujoin.QueryMatch {
		url := "/query?q=espresso+cafe+helsinki+city+center+north&k=10"
		if plan != "" {
			url += "&plan=" + plan
		}
		rec := httptest.NewRecorder()
		n.handleQuery(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("plan=%q: status %d, body %q", plan, rec.Code, rec.Body.String())
		}
		return decodeLines[aujoin.QueryMatch](t, rec.Body.String())
	}
	auto, fixed, def := query("auto"), query("fixed"), query("")
	if fmt.Sprint(auto) != fmt.Sprint(fixed) || fmt.Sprint(auto) != fmt.Sprint(def) {
		t.Fatalf("plan modes disagree:\nauto  %v\nfixed %v\ndefault %v", auto, fixed, def)
	}

	rec := httptest.NewRecorder()
	n.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var st aujoin.IndexStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats response %q: %v", rec.Body.String(), err)
	}
	// Two of the three queries ran adaptively (auto + default); fixed must
	// not count as a plan.
	if st.Plans != 2 {
		t.Errorf("stats.Plans = %d, want 2 (auto + default)", st.Plans)
	}
	if len(st.PlanDecisions) == 0 {
		t.Errorf("stats.PlanDecisions empty after planned queries")
	}
	// The verify-phase counters flow through to /stats: queries with
	// results must have verified candidates, and the scheduler/memo pair
	// must have saved some work on this corpus.
	if st.VerifiedCandidates == 0 {
		t.Errorf("stats.VerifiedCandidates = 0 after answered queries")
	}
	if st.PrunedByBound == 0 && st.MemoHits == 0 {
		t.Errorf("stats reports no pruned candidates and no memo hits")
	}
}

// TestHandleQueryNotReady pins the readiness split: before a backend is
// published, /query answers 503 (not 404 or a panic), /healthz stays 200 and
// /readyz reports not ready; after SetBackend both serve.
func TestHandleQueryNotReady(t *testing.T) {
	n := NewNode()
	rec := httptest.NewRecorder()
	n.handleQuery(rec, httptest.NewRequest(http.MethodGet, "/query?q=x&k=3", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("query before backend: status %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	n.Mux().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz before backend: status %d, want 200", rec.Code)
	}
	rec = httptest.NewRecorder()
	n.handleReadyz(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before backend: status %d, want 503", rec.Code)
	}

	j, err := aujoin.NewStrict()
	if err != nil {
		t.Fatalf("NewStrict: %v", err)
	}
	n.SetBackend(&Backend{IX: j.Index(denseCatalog(20, 1), aujoin.JoinOptions{Theta: 0.7, Tau: 2})})
	rec = httptest.NewRecorder()
	n.handleReadyz(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz after backend: status %d, want 200", rec.Code)
	}
	rec = httptest.NewRecorder()
	n.handleQuery(rec, httptest.NewRequest(http.MethodGet, "/query?q=espresso+cafe&k=3", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("query after backend: status %d, want 200", rec.Code)
	}
}

// TestHandleProbeStreamsNDJSON pins the /probe contract: every confirmed
// match arrives as an NDJSON line and the set equals the batch Probe result.
func TestHandleProbeStreamsNDJSON(t *testing.T) {
	n := testNode(t, 45)
	probe := denseCatalog(10, 2)
	body, _ := json.Marshal(ProbeRequest{Records: probe})
	req := httptest.NewRequest(http.MethodPost, "/probe", strings.NewReader(string(body)))
	rec := httptest.NewRecorder()
	n.handleProbe(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %q", rec.Code, rec.Body.String())
	}
	got := decodeLines[ProbeMatch](t, rec.Body.String())
	want, _ := n.ix().Probe(probe)
	if len(got) != len(want) {
		t.Fatalf("streamed %d matches, batch Probe returns %d", len(got), len(want))
	}
	seen := make(map[ProbeMatch]bool, len(got))
	for _, m := range got {
		seen[m] = true
	}
	for _, m := range want {
		if !seen[ProbeMatch{S: m.S, T: m.T, Similarity: m.Similarity}] {
			t.Fatalf("batch match %+v missing from stream", m)
		}
	}
}

// cancellingWriter simulates a client that hangs up mid-stream: the first
// write succeeds, then the request context is cancelled and every further
// write fails — exactly what net/http presents to a handler whose peer
// disconnected.
type cancellingWriter struct {
	*httptest.ResponseRecorder
	cancel context.CancelFunc
	writes int
}

func (cw *cancellingWriter) Write(p []byte) (int, error) {
	cw.writes++
	if cw.writes > 1 {
		cw.cancel()
		return 0, errors.New("client disconnected")
	}
	return cw.ResponseRecorder.Write(p)
}

// TestHandleProbeAbortsOnClientDisconnect: when the client connection dies
// mid-stream, the handler must abort the in-flight join — returning long
// before the full join would complete — instead of verifying candidates for
// a dead peer.
func TestHandleProbeAbortsOnClientDisconnect(t *testing.T) {
	n := testNode(t, 300)
	probe := denseCatalog(300, 3)
	body, _ := json.Marshal(ProbeRequest{Records: probe})

	// Baseline: the full probe, timed, so the aborted run has a yardstick.
	start := time.Now()
	full, _ := n.ix().Probe(probe)
	fullTime := time.Since(start)
	if len(full) < 10000 {
		t.Fatalf("workload too small: %d matches", len(full))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/probe", strings.NewReader(string(body))).WithContext(ctx)
	cw := &cancellingWriter{ResponseRecorder: httptest.NewRecorder(), cancel: cancel}
	start = time.Now()
	n.handleProbe(cw, req)
	abortTime := time.Since(start)

	if cw.writes >= len(full) {
		t.Fatalf("handler wrote %d lines despite disconnect (full result %d)", cw.writes, len(full))
	}
	if abortTime >= fullTime {
		t.Errorf("aborted probe took %v, full probe %v — disconnect did not stop the join",
			abortTime, fullTime)
	}
}

// TestHandleProbeRequestContext drives the real network path: a client with
// a short deadline hits /probe on a live server, and the handler must return
// promptly once the request context dies.
func TestHandleProbeRequestContext(t *testing.T) {
	n := testNode(t, 300)
	done := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer close(done)
		n.handleProbe(w, r)
	}))
	defer ts.Close()

	body, _ := json.Marshal(ProbeRequest{Records: denseCatalog(300, 4)})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/probe", strings.NewReader(string(body)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("probe request: %v", err)
	}
	// Read one line of the stream, then hang up.
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatalf("first streamed line: %v", err)
	}
	cancel()
	resp.Body.Close()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("handler did not return after client disconnect")
	}
}

// TestHandleInsertRemoveRoundTrip keeps the mutation endpoints honest after
// the handler move into the cluster package.
func TestHandleInsertRemoveRoundTrip(t *testing.T) {
	n := testNode(t, 10)
	body, _ := json.Marshal(InsertRequest{Records: []string{"espresso cafe helsinki city center extra"}})
	rec := httptest.NewRecorder()
	n.handleInsert(rec, httptest.NewRequest(http.MethodPost, "/insert", strings.NewReader(string(body))))
	var ins InsertResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ins); err != nil || len(ins.IDs) != 1 {
		t.Fatalf("insert response %q (%v)", rec.Body.String(), err)
	}
	rmBody := fmt.Sprintf(`{"id": %d}`, ins.IDs[0])
	rec = httptest.NewRecorder()
	n.handleRemove(rec, httptest.NewRequest(http.MethodPost, "/remove", strings.NewReader(rmBody)))
	var rm RemoveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rm); err != nil || !rm.Removed {
		t.Fatalf("remove response %q (%v)", rec.Body.String(), err)
	}
}
