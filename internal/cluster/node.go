package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	"github.com/aujoin/aujoin"
	"github.com/aujoin/aujoin/internal/cmdutil"
)

// Node is the aujoind HTTP data plane: the full serving surface (/query,
// /probe, mutations, /stats, /snapshot, /healthz, /readyz) over either a
// single local index (classic aujoind) or a set of per-group cluster
// indexes (worker mode, -join). The daemon binary is reduced to flag
// parsing and lifecycle; every handler lives here so the single-node and
// worker paths cannot drift apart on protocol details.
//
// In single-node mode the backend is attached asynchronously: the listener
// comes up first, /healthz answers immediately (liveness), and /readyz
// flips to 200 only once SetBackend delivers the recovered index — the
// load-balancer-facing readiness gap the split exists to close.
type Node struct {
	be atomic.Pointer[Backend]
	w  *Worker
}

// Backend is a single-node serving target: the index, plus the durable
// wrapper when the daemon runs with -data-dir (mutations then route
// through the WAL).
type Backend struct {
	IX *aujoin.Index
	PX *aujoin.PersistentIndex
}

// NewNode builds a single-node data plane with no backend yet; the node
// serves 503 on everything but /healthz until SetBackend.
func NewNode() *Node { return &Node{} }

// NewWorkerNode builds a cluster-worker data plane around w.
func NewWorkerNode(w *Worker) *Node { return &Node{w: w} }

// SetBackend attaches the recovered single-node index, flipping readiness.
func (n *Node) SetBackend(b *Backend) { n.be.Store(b) }

// maxBodyBytes caps POST bodies (an insert batch has no business being
// larger) and maxTopK caps the per-query result heap, so a single request
// cannot balloon the daemon's memory.
const (
	maxBodyBytes = 8 << 20
	maxTopK      = 10000
)

// MaxTopK is the protocol's per-query k cap, shared with the coordinator.
const MaxTopK = maxTopK

// Mux returns the node's route table.
func (n *Node) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", n.handleQuery)
	mux.HandleFunc("/probe", n.handleProbe)
	mux.HandleFunc("/insert", n.handleInsert)
	mux.HandleFunc("/remove", n.handleRemove)
	mux.HandleFunc("/remove-batch", n.handleRemoveBatch)
	mux.HandleFunc("/snapshot", n.handleSnapshot)
	mux.HandleFunc("/stats", n.handleStats)
	mux.HandleFunc("/healthz", handleHealthz)
	mux.HandleFunc("/readyz", n.handleReadyz)
	if n.w != nil {
		n.w.register(mux)
	}
	return mux
}

// handleHealthz is pure liveness: the process is up and serving HTTP.
// Recovery state is /readyz's business.
func handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports whether this node can serve correct answers now: a
// single-node daemon is ready once snapshot/WAL recovery delivered its
// index, a worker once the coordinator configured it (and, across epoch
// bumps, stays ready — adoption never blocks reads). Workers answer with
// their Heartbeat body, which doubles as the coordinator's health-check
// payload.
func (n *Node) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if n.w != nil {
		hb, ready := n.w.heartbeat()
		if !ready {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(hb)
			return
		}
		writeJSON(w, hb)
		return
	}
	if n.be.Load() == nil {
		writeError(w, http.StatusServiceUnavailable, ErrorBody{Error: "recovering", Code: "not_ready"})
		return
	}
	writeJSON(w, Heartbeat{Ready: true})
}

// resolve picks the index a read request addresses, writing the HTTP error
// and returning false when it cannot: not ready yet, a stale epoch stamp,
// or a group this node does not host.
func (n *Node) resolve(w http.ResponseWriter, r *http.Request) (*aujoin.Index, bool) {
	if n.w != nil {
		return n.w.resolve(w, r)
	}
	be := n.be.Load()
	if be == nil {
		writeError(w, http.StatusServiceUnavailable, ErrorBody{Error: "index is recovering", Code: "not_ready"})
		return nil, false
	}
	if r.URL.Query().Get("group") != "" {
		writeError(w, http.StatusBadRequest, ErrorBody{Error: "group addressing requires worker mode (-join)"})
		return nil, false
	}
	return be.IX, true
}

// ParseQueryOptions validates the /query parameters shared by the worker,
// single-node and coordinator paths: k is required in [1, MaxTopK], min_sim
// optional in (0, 1], plan optional auto|fixed. The error text is the
// client-facing 400 body.
func ParseQueryOptions(r *http.Request) (aujoin.QueryOptions, error) {
	var opts aujoin.QueryOptions
	// A missing or non-positive k is rejected rather than passed through: an
	// unbounded "all matches" response is never what a serving client wants,
	// and silently treating k=0 as "everything" made the degenerate case the
	// most expensive one.
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k < 1 || k > maxTopK {
		return opts, fmt.Errorf("k is required and must be an integer in [1, %d]", maxTopK)
	}
	opts.K = k
	if raw := r.URL.Query().Get("min_sim"); raw != "" {
		minSim, err := strconv.ParseFloat(raw, 64)
		if err != nil || minSim <= 0 || minSim > 1 {
			return opts, fmt.Errorf("min_sim must be a float in (0, 1]")
		}
		opts.MinSimilarity = minSim
	}
	switch r.URL.Query().Get("plan") {
	case "", "auto":
		// PlanAuto is the zero value.
	case "fixed":
		opts.Plan = aujoin.PlanFixed
	default:
		return opts, fmt.Errorf("plan must be auto or fixed")
	}
	return opts, nil
}

func (n *Node) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	opts, err := ParseQueryOptions(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ix, ok := n.resolve(w, r)
	if !ok {
		return
	}
	// The request context cancels the fan-out mid-verification when the
	// client disconnects or times out; there is no one left to tell, so the
	// handler just stops.
	matches, err := ix.QueryTopKCtx(r.Context(), q, opts)
	if err != nil {
		return
	}
	nw := cmdutil.NewNDJSONWriter(w)
	for _, m := range matches {
		if nw.Write(m) != nil {
			return
		}
	}
}

// handleProbe joins a batch of records against the current snapshot and
// streams each match as an NDJSON line the moment the parallel verify stage
// confirms it — the response starts before the join finishes, peak match
// buffering stays bounded by the worker count, and a client hanging up
// mid-stream cancels the remaining filter-and-verify work via the request
// context.
func (n *Node) handleProbe(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req ProbeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	ix, ok := n.resolve(w, r)
	if !ok {
		return
	}
	nw := cmdutil.NewNDJSONWriter(w)
	for m, err := range ix.ProbeSeq(r.Context(), req.Records) {
		if err != nil {
			// Cancelled (client gone or deadline passed) mid-join; the
			// pipeline has already stopped, and an NDJSON stream has no
			// in-band error channel worth inventing for a dead client.
			return
		}
		if nw.Write(ProbeMatch{S: m.S, T: m.T, Similarity: m.Similarity}) != nil {
			return
		}
	}
}

// rejectWorkerMutation fends direct mutations off a cluster worker: every
// write must flow through the coordinator's sequencing, or replicas
// diverge.
func (n *Node) rejectWorkerMutation(w http.ResponseWriter) bool {
	if n.w == nil {
		return false
	}
	writeError(w, http.StatusForbidden, ErrorBody{
		Error: "worker mode: mutations go through the coordinator", Code: "worker_mode",
	})
	return true
}

// singleBackend resolves the single-node backend for a mutation, writing
// 503 while recovery is still running.
func (n *Node) singleBackend(w http.ResponseWriter) (*Backend, bool) {
	be := n.be.Load()
	if be == nil {
		writeError(w, http.StatusServiceUnavailable, ErrorBody{Error: "index is recovering", Code: "not_ready"})
		return nil, false
	}
	return be, true
}

func (n *Node) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if n.rejectWorkerMutation(w) {
		return
	}
	var req InsertRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	be, ok := n.singleBackend(w)
	if !ok {
		return
	}
	var ids []int
	if be.PX != nil {
		var err error
		if ids, err = be.PX.Insert(req.Records); err != nil {
			http.Error(w, "durable insert: "+err.Error(), http.StatusInternalServerError)
			return
		}
	} else {
		ids = be.IX.Insert(req.Records)
	}
	if ids == nil {
		ids = []int{}
	}
	writeJSON(w, InsertResponse{IDs: ids})
}

func (n *Node) handleRemove(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if n.rejectWorkerMutation(w) {
		return
	}
	var req RemoveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	be, ok := n.singleBackend(w)
	if !ok {
		return
	}
	var removed bool
	if be.PX != nil {
		var err error
		if removed, err = be.PX.Remove(req.ID); err != nil {
			http.Error(w, "durable remove: "+err.Error(), http.StatusInternalServerError)
			return
		}
	} else {
		removed = be.IX.Remove(req.ID)
	}
	writeJSON(w, RemoveResponse{Removed: removed})
}

func (n *Node) handleRemoveBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if n.rejectWorkerMutation(w) {
		return
	}
	var req RemoveBatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	be, ok := n.singleBackend(w)
	if !ok {
		return
	}
	var removed []bool
	if be.PX != nil {
		var err error
		if removed, err = be.PX.RemoveBatch(req.IDs); err != nil {
			http.Error(w, "durable remove: "+err.Error(), http.StatusInternalServerError)
			return
		}
	} else {
		removed = be.IX.RemoveBatch(req.IDs)
	}
	if removed == nil {
		removed = []bool{}
	}
	count := 0
	for _, ok := range removed {
		if ok {
			count++
		}
	}
	writeJSON(w, RemoveBatchResponse{Removed: removed, RemovedCount: count})
}

// handleSnapshot folds the WAL into a new durable snapshot generation on
// demand. Mutations stall for the duration of the checkpoint; queries do
// not.
func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if n.w != nil {
		writeError(w, http.StatusBadRequest, ErrorBody{Error: "worker mode is not durable", Code: "worker_mode"})
		return
	}
	be, ok := n.singleBackend(w)
	if !ok {
		return
	}
	if be.PX == nil {
		http.Error(w, "daemon is not durable: start with -data-dir to enable snapshots", http.StatusBadRequest)
		return
	}
	if err := be.PX.Checkpoint(); err != nil {
		http.Error(w, "checkpoint: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, SnapshotResponse{Checkpointed: true})
}

func (n *Node) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if n.w != nil {
		writeJSON(w, n.w.stats())
		return
	}
	be, ok := n.singleBackend(w)
	if !ok {
		return
	}
	writeJSON(w, be.IX.Stats())
}
