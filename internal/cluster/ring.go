// Package cluster lifts the in-process shard router over the network: a
// coordinator consistent-hashes stable record IDs across N aujoind workers
// organised into R-way replica groups, scatter-gathers queries and probes
// over the NDJSON streaming protocol, routes mutations to every replica of
// the owning group under a per-group sequence number, and keeps the global
// pebble order in agreement across nodes through a coordinator-allocated
// epoch protocol. See the Cluster section of ARCHITECTURE.md.
package cluster

import "sort"

// ringVnodes is the number of virtual points each group projects onto the
// hash circle; enough that group ownership shares stay within a few percent
// of even for any N the coordinator realistically manages.
const ringVnodes = 64

// Ring is the consistent-hash placement function: it maps a stable record
// ID to its owning replica group, and a group to the workers that replicate
// it. Placement is a pure function of (workers, replicas) fixed at
// bootstrap — worker failure changes availability, never placement, which
// is what keeps replica indexes byte-identical and cluster results
// bit-identical across failures.
//
// There is one group per worker index: group g's replica set is the worker
// itself plus its R−1 index-successors {g, g+1, …, g+R−1 mod N}. Deriving
// replicas from the owning group (rather than walking the hash circle per
// record) means every record of a group lands on the same R workers, so a
// worker hosts exactly R group indexes and any single replica of a group
// can answer for the whole group.
type Ring struct {
	workers  int
	replicas int
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	group int
}

// NewRing builds the placement for n workers with r-way replication.
// r is clamped to [1, n].
func NewRing(n, r int) *Ring {
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	rg := &Ring{workers: n, replicas: r, points: make([]ringPoint, 0, n*ringVnodes)}
	for g := 0; g < n; g++ {
		for v := 0; v < ringVnodes; v++ {
			rg.points = append(rg.points, ringPoint{hash: mix64(uint64(g)<<32 | uint64(v) | 1<<63), group: g})
		}
	}
	sort.Slice(rg.points, func(i, j int) bool { return rg.points[i].hash < rg.points[j].hash })
	return rg
}

// Workers returns the fixed membership size N.
func (rg *Ring) Workers() int { return rg.workers }

// Replicas returns the replication factor R.
func (rg *Ring) Replicas() int { return rg.replicas }

// Owner maps a stable record ID to its owning group: the group of the first
// virtual point at or after the ID's hash on the circle.
func (rg *Ring) Owner(id int) int {
	h := mix64(uint64(id))
	i := sort.Search(len(rg.points), func(i int) bool { return rg.points[i].hash >= h })
	if i == len(rg.points) {
		i = 0
	}
	return rg.points[i].group
}

// GroupReplicas returns the workers replicating group g, primary first:
// the owner and its R−1 index-successors.
func (rg *Ring) GroupReplicas(g int) []int {
	out := make([]int, rg.replicas)
	for i := range out {
		out[i] = (g + i) % rg.workers
	}
	return out
}

// GroupsOf returns the groups worker w replicates: the R groups whose
// replica sets include w, ascending.
func (rg *Ring) GroupsOf(w int) []int {
	out := make([]int, 0, rg.replicas)
	for i := 0; i < rg.replicas; i++ {
		out = append(out, ((w-i)%rg.workers+rg.workers)%rg.workers)
	}
	sort.Ints(out)
	return out
}

// mix64 is the splitmix64 finisher: a full-avalanche bijection, so the
// sequential IDs the coordinator allocates spread uniformly over the
// circle.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
