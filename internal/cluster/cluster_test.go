package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"github.com/aujoin/aujoin"
	"github.com/aujoin/aujoin/internal/cmdutil"
)

// testCluster is an in-process cluster: a coordinator and N worker daemons,
// all on loopback httptest servers, speaking the real HTTP protocol.
type testCluster struct {
	coord   *Coordinator
	coordTS *httptest.Server
	workers []*httptest.Server
}

// startCluster boots a coordinator and n workers with r-way replication,
// seeds the catalog, and blocks until the cluster is ready (which includes
// the bootstrap epoch bump).
func startCluster(t *testing.T, n, r int, catalog []string, theta float64, tau int, filter string) *testCluster {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	coord := NewCoordinator(CoordConfig{
		Workers: n, Replicas: r, Theta: theta, Tau: tau, Filter: filter,
		Catalog:   catalog,
		Heartbeat: 100 * time.Millisecond, HedgeDelay: 20 * time.Millisecond,
		SyncFraction: -1, // bumps are driven explicitly by the tests
		Logf:         t.Logf,
	})
	coordTS := httptest.NewServer(coord.Mux())
	go coord.Run(ctx)
	tc := &testCluster{coord: coord, coordTS: coordTS}
	t.Cleanup(func() {
		cancel()
		coordTS.Close()
		for _, w := range tc.workers {
			w.Close() // idempotent: already-killed workers are fine
		}
	})
	for i := 0; i < n; i++ {
		j, err := aujoin.NewStrict()
		if err != nil {
			t.Fatalf("NewStrict: %v", err)
		}
		node := NewWorkerNode(NewWorker(j, 1))
		wts := httptest.NewServer(node.Mux())
		tc.workers = append(tc.workers, wts)
		if err := RegisterWorker(ctx, http.DefaultClient, coordTS.URL, wts.URL); err != nil {
			t.Fatalf("register worker %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(2 * time.Minute)
	for !coord.Ready() {
		if err := coord.BootstrapErr(); err != nil {
			t.Fatalf("bootstrap: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster did not become ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
	return tc
}

// kill hard-stops worker i and waits for the coordinator to fail it out.
func (tc *testCluster) kill(t *testing.T, i int) {
	t.Helper()
	addr := tc.workers[i].URL
	tc.workers[i].CloseClientConnections()
	tc.workers[i].Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, w := range tc.coord.Stats().Workers {
			if w.Addr == addr && w.State == "down" {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never marked %s down", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (tc *testCluster) topK(t *testing.T, q string, k int) []aujoin.QueryMatch {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/query?q=%s&k=%d", tc.coordTS.URL, url.QueryEscape(q), k))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query %q: status %d", q, resp.StatusCode)
	}
	var out []aujoin.QueryMatch
	if err := cmdutil.DecodeNDJSON(resp.Body, func(m aujoin.QueryMatch) error {
		out = append(out, m)
		return nil
	}); err != nil {
		t.Fatalf("decode query stream: %v", err)
	}
	return out
}

func (tc *testCluster) probe(t *testing.T, records []string) []ProbeMatch {
	t.Helper()
	body, _ := json.Marshal(ProbeRequest{Records: records})
	resp, err := http.Post(tc.coordTS.URL+"/probe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe: status %d", resp.StatusCode)
	}
	var out []ProbeMatch
	if err := cmdutil.DecodeNDJSON(resp.Body, func(m ProbeMatch) error {
		out = append(out, m)
		return nil
	}); err != nil {
		t.Fatalf("decode probe stream: %v", err)
	}
	return out
}

func (tc *testCluster) insert(t *testing.T, records []string) []int {
	t.Helper()
	body, _ := json.Marshal(InsertRequest{Records: records})
	resp, err := http.Post(tc.coordTS.URL+"/insert", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	defer resp.Body.Close()
	var ir InsertResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: status %d (%v)", resp.StatusCode, err)
	}
	return ir.IDs
}

func (tc *testCluster) removeBatch(t *testing.T, ids []int) []bool {
	t.Helper()
	body, _ := json.Marshal(RemoveBatchRequest{IDs: ids})
	resp, err := http.Post(tc.coordTS.URL+"/remove-batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("remove-batch: %v", err)
	}
	defer resp.Body.Close()
	var rr RemoveBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("remove-batch: status %d (%v)", resp.StatusCode, err)
	}
	return rr.Removed
}

func (tc *testCluster) bump(t *testing.T) {
	t.Helper()
	resp, err := http.Post(tc.coordTS.URL+"/epoch/bump", "application/json", nil)
	if err != nil {
		t.Fatalf("epoch bump: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("epoch bump: status %d", resp.StatusCode)
	}
}

// equivalenceQueries mixes exact catalog strings, partial overlaps and a
// no-match query so the comparison exercises full, fuzzy and empty results.
var equivalenceQueries = []string{
	"espresso cafe helsinki city center north",
	"espresso cafe helsinki center",
	"apple cake bakery market street old",
	"apple bakery market",
	"database systems course spring term west",
	"database course spring",
	"espresso cafe helsinki city center",
	"apple cake bakery market street",
	"zz unrelated tokens qq",
}

// checkEquivalence asserts the cluster's answers are bit-identical to the
// single-node reference index: QueryTopK at small and large k (values AND
// order), and the probe match set.
func checkEquivalence(t *testing.T, tc *testCluster, ref *aujoin.Index, probes []string, stage string) {
	t.Helper()
	for _, q := range equivalenceQueries {
		for _, k := range []int{10, 500} {
			got := tc.topK(t, q, k)
			want := ref.QueryTopK(q, k)
			if len(got) != len(want) {
				t.Fatalf("%s: query %q k=%d: cluster %d matches, single-node %d", stage, q, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: query %q k=%d: match %d differs: cluster %+v, single-node %+v",
						stage, q, k, i, got[i], want[i])
				}
			}
		}
	}
	got := tc.probe(t, probes)
	want, _ := ref.Probe(probes)
	if len(got) != len(want) {
		t.Fatalf("%s: probe: cluster %d matches, single-node %d", stage, len(got), len(want))
	}
	seen := make(map[ProbeMatch]bool, len(got))
	for _, m := range got {
		seen[m] = true
	}
	for _, m := range want {
		if !seen[ProbeMatch{S: m.S, T: m.T, Similarity: m.Similarity}] {
			t.Fatalf("%s: probe: single-node match %+v missing from cluster", stage, m)
		}
	}
}

// TestClusterEquivalence is the cluster's ground truth: a 3-worker cluster
// with 2-way replication must return bit-identical Query/QueryTopK/Probe
// results to a single-node index over the same catalog — after seeding,
// after an identical mutation sequence, after a coordinator-driven global
// re-finalize (epoch bump), after killing one worker mid-workload, and
// after mutating and bumping again with the worker still dead. Under -short
// one (filter, θ) combination runs; the full matrix is 3 filters × 3
// thresholds.
func TestClusterEquivalence(t *testing.T) {
	combos := []struct {
		filter string
		theta  float64
	}{{"dp", 0.8}}
	if !testing.Short() {
		combos = nil
		for _, f := range []string{"u", "heuristic", "dp"} {
			for _, th := range []float64{0.7, 0.8, 0.9} {
				combos = append(combos, struct {
					filter string
					theta  float64
				}{f, th})
			}
		}
	}
	for _, cb := range combos {
		t.Run(fmt.Sprintf("%s-theta%v", cb.filter, cb.theta), func(t *testing.T) {
			catalog := denseCatalog(180, 7)
			probes := denseCatalog(15, 8)
			tc := startCluster(t, 3, 2, catalog, cb.theta, 2, cb.filter)

			j, err := aujoin.NewStrict()
			if err != nil {
				t.Fatalf("NewStrict: %v", err)
			}
			jopts := aujoin.JoinOptions{Theta: cb.theta, Tau: 2, Filter: cmdutil.ParseFilter(cb.filter)}
			ref := j.IndexWith(catalog, jopts, aujoin.IndexOptions{Shards: 1})
			checkEquivalence(t, tc, ref, probes, "seeded")

			// Identical mutation sequence on both sides: IDs must agree
			// (the coordinator allocates exactly like a single node), then
			// results must stay identical.
			extra := denseCatalog(24, 9)
			gotIDs := tc.insert(t, extra)
			wantIDs := ref.Insert(extra)
			if fmt.Sprint(gotIDs) != fmt.Sprint(wantIDs) {
				t.Fatalf("insert IDs diverge: cluster %v, single-node %v", gotIDs, wantIDs)
			}
			rm := []int{gotIDs[0], 3, 17, 171, 99999}
			gotRm := tc.removeBatch(t, rm)
			wantRm := ref.RemoveBatch(rm)
			if fmt.Sprint(gotRm) != fmt.Sprint(wantRm) {
				t.Fatalf("remove flags diverge: cluster %v, single-node %v", gotRm, wantRm)
			}
			checkEquivalence(t, tc, ref, probes, "mutated")

			// Global re-finalize: results must be identical under the new
			// frozen order (exactness is order-independent).
			tc.bump(t)
			checkEquivalence(t, tc, ref, probes, "after epoch bump")

			// Kill one worker: R=2 keeps every group served by its other
			// replica, reads fail over, writes keep applying.
			tc.kill(t, 1)
			checkEquivalence(t, tc, ref, probes, "one worker down")

			extra2 := denseCatalog(10, 10)
			ids2 := tc.insert(t, extra2)
			want2 := ref.Insert(extra2)
			if fmt.Sprint(ids2) != fmt.Sprint(want2) {
				t.Fatalf("post-kill insert IDs diverge: cluster %v, single-node %v", ids2, want2)
			}
			checkEquivalence(t, tc, ref, probes, "mutated with worker down")

			tc.bump(t)
			checkEquivalence(t, tc, ref, probes, "epoch bump with worker down")
		})
	}
}

// TestClusterGatherError pins the structured partial-failure contract on
// the wire: with no replication (R=1), killing a worker leaves its group
// unanswerable, and /query must respond 502 with a JSON body naming the
// failed group and worker — not a bare first-error string, and never a
// silently truncated 200.
func TestClusterGatherError(t *testing.T) {
	catalog := denseCatalog(60, 5)
	tc := startCluster(t, 3, 1, catalog, 0.7, 2, "dp")
	deadAddr := tc.workers[1].URL
	tc.kill(t, 1)

	resp, err := http.Get(tc.coordTS.URL + "/query?q=" + url.QueryEscape(catalog[0]) + "&k=5")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	var body struct {
		Code     string `json:"code"`
		Failures []struct {
			Group int    `json:"group"`
			Addr  string `json:"addr"`
			Error string `json:"error"`
		} `json:"failures"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	if body.Code != "gather_failed" || len(body.Failures) == 0 {
		t.Fatalf("error body %+v, want code gather_failed with failures", body)
	}
	found := false
	for _, f := range body.Failures {
		if f.Group == 1 && f.Addr == deadAddr {
			found = true
			if f.Error == "" {
				t.Errorf("failure for group 1 carries no error text")
			}
		}
	}
	if !found {
		t.Fatalf("failures %+v do not name group 1 on %s", body.Failures, deadAddr)
	}
}

// TestClusterStreamAbortOnDisconnect pins cancellation propagation through
// the coordinator: a client that hangs up mid-stream must tear down every
// worker-side pipeline — the process-wide pipeline goroutine gauge settles
// back to zero instead of workers verifying candidates for a dead client.
func TestClusterStreamAbortOnDisconnect(t *testing.T) {
	catalog := denseCatalog(300, 3)
	tc := startCluster(t, 3, 2, catalog, 0.7, 2, "dp")

	// Streaming probe: read one line, hang up.
	body, _ := json.Marshal(ProbeRequest{Records: denseCatalog(300, 4)})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, tc.coordTS.URL+"/probe", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatalf("first streamed line: %v", err)
	}
	cancel()
	resp.Body.Close()
	settleGoroutines(t, "probe disconnect")

	// Buffered top-k: cancel while the gather is in flight.
	qctx, qcancel := context.WithCancel(context.Background())
	qreq, _ := http.NewRequestWithContext(qctx, http.MethodGet,
		tc.coordTS.URL+"/query?q="+url.QueryEscape(catalog[0])+"&k=500", nil)
	go func() {
		time.Sleep(2 * time.Millisecond)
		qcancel()
	}()
	if qresp, err := http.DefaultClient.Do(qreq); err == nil {
		qresp.Body.Close()
	}
	qcancel()
	settleGoroutines(t, "query cancel")
}

// settleGoroutines waits for the engine's pipeline goroutine gauge to hit
// zero: every fan-out the cancelled request started has unwound.
func settleGoroutines(t *testing.T, stage string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if aujoin.PipelineGoroutines() == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d pipeline goroutines still running", stage, aujoin.PipelineGoroutines())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterRejectsStaleEpoch pins the epoch fence: a request stamped with
// an outdated epoch is answered 409 epoch_mismatch (with the worker's
// current epoch), not served under the wrong order silently.
func TestClusterRejectsStaleEpoch(t *testing.T) {
	catalog := denseCatalog(40, 6)
	tc := startCluster(t, 2, 2, catalog, 0.7, 2, "dp")
	tc.bump(t) // move the cluster past the bootstrap epoch

	req, _ := http.NewRequest(http.MethodGet,
		tc.workers[0].URL+"/query?q="+url.QueryEscape(catalog[0])+"&k=3&group=0", nil)
	req.Header.Set(EpochHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("stale query: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale epoch: status %d, want 409", resp.StatusCode)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("decode 409 body: %v", err)
	}
	if eb.Code != "epoch_mismatch" || eb.Epoch < 2 {
		t.Fatalf("409 body %+v, want code epoch_mismatch with current epoch", eb)
	}
}
