package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aujoin/aujoin"
	"github.com/aujoin/aujoin/internal/cmdutil"
	"github.com/aujoin/aujoin/internal/metrics"
)

// CoordConfig parameterises a Coordinator.
type CoordConfig struct {
	// Workers is the expected membership size; the cluster bootstraps once
	// that many workers have registered (membership is fixed afterwards —
	// worker loss changes availability, never placement).
	Workers int
	// Replicas is the replication factor R (clamped to [1, Workers]).
	Replicas int
	// Theta/Tau/Filter are the join parameters pushed to every worker.
	Theta  float64
	Tau    int
	Filter string
	// Catalog is seeded through the normal sequenced apply path at
	// bootstrap, after which the coordinator runs the first epoch bump so
	// the cluster serves under a properly frozen global order.
	Catalog []string
	// HedgeDelay is how long a group read waits on its first replica before
	// racing the request against a second one (0 = 50ms; < 0 disables
	// hedging).
	HedgeDelay time.Duration
	// Heartbeat is the health-check interval (0 = 500ms).
	Heartbeat time.Duration
	// SyncFraction triggers an automatic epoch bump when any worker's
	// dynamic key region reaches this fraction of its frozen prefix
	// (0 = 1.0, the single-node re-freeze trigger; < 0 disables auto
	// bumps — POST /epoch/bump still works).
	SyncFraction float64
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// Worker health states, tracked per registered worker.
const (
	workerJoining int32 = iota
	workerReady
	workerDown
)

// Coordinator is the cluster's stateless-over-workers control and data
// plane: membership and health, consistent-hash placement, the order-epoch
// state machine, sequenced mutation routing, and scatter-gather serving of
// /query and /probe. It holds no record data — every answer is assembled
// from worker responses — so a lost coordinator is replaced by starting a
// new one against a fresh worker set.
type Coordinator struct {
	cfg    CoordConfig
	client *http.Client

	epoch atomic.Int64
	ready atomic.Bool

	mu      sync.Mutex // membership, ID allocation, bootstrap latch
	workers []*workerRef
	ring    *Ring
	nextID  int
	booted  bool
	bootErr error
	lanes   []*groupLane

	// mutMu orders mutations against epoch bumps: mutations hold it shared,
	// a bump exclusively — so a bump sees a quiescent sequence space and
	// mutations stall (reads do not) for the bump's duration.
	mutMu sync.RWMutex

	rr      atomic.Uint64 // read-plan rotation
	queries atomic.Int64
	bumps   atomic.Int64

	mergeMu sync.Mutex
	mergeMs []float64 // recent gather+merge wall times, milliseconds
}

// workerRef is one registered worker: its advertise address, health state,
// and last heartbeat.
type workerRef struct {
	addr  string
	state atomic.Int32
	fails atomic.Int32

	hbMu sync.Mutex
	hb   Heartbeat
}

// groupLane serializes one group's mutation stream: the lane mutex is held
// across the fan-out to the group's replicas, so sequence numbers reach
// every replica in allocation order.
type groupLane struct {
	mu  sync.Mutex
	seq uint64
}

// NewCoordinator builds a coordinator; workers register themselves via
// POST /cluster/register and the cluster bootstraps when the expected
// number have arrived.
func NewCoordinator(cfg CoordConfig) *Coordinator {
	if cfg.HedgeDelay == 0 {
		cfg.HedgeDelay = 50 * time.Millisecond
	}
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.SyncFraction == 0 {
		cfg.SyncFraction = 1.0
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	return &Coordinator{cfg: cfg, client: &http.Client{}}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Mux returns the coordinator's route table. The serving endpoints mirror
// aujoind's exactly — a cluster client speaks the same protocol against the
// coordinator that a single-node client speaks against the daemon.
func (c *Coordinator) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/register", c.handleRegister)
	mux.HandleFunc("/query", c.handleQuery)
	mux.HandleFunc("/probe", c.handleProbe)
	mux.HandleFunc("/insert", c.handleInsert)
	mux.HandleFunc("/remove", c.handleRemove)
	mux.HandleFunc("/remove-batch", c.handleRemoveBatch)
	mux.HandleFunc("/epoch/bump", c.handleBump)
	mux.HandleFunc("/stats", c.handleStats)
	mux.HandleFunc("/healthz", handleHealthz)
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !c.ready.Load() {
			writeError(w, http.StatusServiceUnavailable, ErrorBody{Error: "cluster is not bootstrapped", Code: "not_ready"})
			return
		}
		writeJSON(w, map[string]any{"ready": true, "epoch": c.epoch.Load()})
	})
	return mux
}

// Run drives the health checker (and the auto-bump trigger) until ctx ends.
func (c *Coordinator) Run(ctx context.Context) {
	ticker := time.NewTicker(c.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			c.checkHealth(ctx)
		}
	}
}

// --- membership and bootstrap ---

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil || req.Addr == "" {
		http.Error(w, "bad request body", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	known := false
	for _, ref := range c.workers {
		if ref.addr == req.Addr {
			known = true
			break
		}
	}
	if !known && len(c.workers) < c.cfg.Workers {
		c.workers = append(c.workers, &workerRef{addr: req.Addr})
		c.logf("worker %d/%d registered: %s", len(c.workers), c.cfg.Workers, req.Addr)
	}
	boot := len(c.workers) == c.cfg.Workers && !c.booted
	if boot {
		c.booted = true
	}
	c.mu.Unlock()
	if boot {
		go c.bootstrap()
	}
	writeJSON(w, RegisterResponse{Accepted: true, Configured: c.ready.Load()})
}

// bootstrap fixes the membership and placement, pushes the configuration to
// every worker, seeds the catalog through the normal sequenced apply path,
// and runs the first epoch bump so the cluster serves under a global frozen
// order instead of an all-dynamic one. Only then does the coordinator
// become ready.
func (c *Coordinator) bootstrap() {
	c.mu.Lock()
	addrs := make([]string, len(c.workers))
	for i, ref := range c.workers {
		addrs[i] = ref.addr
	}
	c.ring = NewRing(len(addrs), c.cfg.Replicas)
	c.lanes = make([]*groupLane, len(addrs))
	for g := range c.lanes {
		c.lanes[g] = &groupLane{}
	}
	c.epoch.Store(1)
	c.mu.Unlock()

	ctx := context.Background()
	for i, ref := range c.refs() {
		cfg := ConfigRequest{
			Workers: addrs, Self: i, Replicas: c.ring.Replicas(), Epoch: 1,
			Theta: c.cfg.Theta, Tau: c.cfg.Tau, Filter: c.cfg.Filter,
		}
		if err := c.postJSON(ctx, ref.addr+"/cluster/config", cfg, nil); err != nil {
			c.mu.Lock()
			c.bootErr = fmt.Errorf("configure %s: %w", ref.addr, err)
			c.mu.Unlock()
			c.logf("bootstrap failed: %v", c.bootErr)
			return
		}
		ref.state.Store(workerReady)
	}
	c.logf("configured %d workers (%d groups, %d-way replication)", len(addrs), c.ring.Workers(), c.ring.Replicas())

	if len(c.cfg.Catalog) > 0 {
		start := time.Now()
		const seedBatch = 512
		for at := 0; at < len(c.cfg.Catalog); at += seedBatch {
			end := min(at+seedBatch, len(c.cfg.Catalog))
			if _, err := c.insertRecords(ctx, c.cfg.Catalog[at:end]); err != nil {
				c.mu.Lock()
				c.bootErr = fmt.Errorf("seed catalog: %w", err)
				c.mu.Unlock()
				c.logf("bootstrap failed: %v", c.bootErr)
				return
			}
		}
		c.logf("seeded %d records in %v", len(c.cfg.Catalog), time.Since(start).Round(time.Millisecond))
	}

	// The seeds were interned as dynamic keys under an empty frozen order;
	// the first bump freezes the true global frequencies over them.
	if err := c.BumpEpoch("bootstrap"); err != nil {
		c.mu.Lock()
		c.bootErr = fmt.Errorf("initial epoch bump: %w", err)
		c.mu.Unlock()
		c.logf("bootstrap failed: %v", c.bootErr)
		return
	}
	c.ready.Store(true)
	c.logf("cluster ready: epoch %d", c.epoch.Load())
}

// refs snapshots the registered workers.
func (c *Coordinator) refs() []*workerRef {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*workerRef(nil), c.workers...)
}

// BootstrapErr reports a failed bootstrap (nil while in progress or after
// success).
func (c *Coordinator) BootstrapErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bootErr
}

// Ready reports whether the cluster has bootstrapped.
func (c *Coordinator) Ready() bool { return c.ready.Load() }

// markDown takes a worker out of the read and write plans. It is called the
// moment a request to the worker hard-fails — conservative by design: a
// replica that may have missed a sequenced write must not serve until the
// health checker proves its sequences match again.
func (c *Coordinator) markDown(ref *workerRef, cause error) {
	if ref.state.Swap(workerDown) != workerDown {
		c.logf("worker %s marked down: %v", ref.addr, cause)
	}
}

// checkHealth polls every worker's /readyz, failing workers out after two
// consecutive misses and readmitting a down worker only when its heartbeat
// proves it is at the coordinator's epoch with matching per-group
// sequences (a network blip, not a missed write). It also fires the
// auto-bump when a worker's dynamic region outgrows the sync fraction.
func (c *Coordinator) checkHealth(ctx context.Context) {
	if c.ring == nil {
		return
	}
	var maxFrozen, maxDyn int
	for _, ref := range c.refs() {
		hctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		hb, err := c.getHeartbeat(hctx, ref.addr)
		cancel()
		if err != nil || !hb.Ready {
			if ref.fails.Add(1) >= 2 {
				c.markDown(ref, fmt.Errorf("health check: %v", err))
			}
			continue
		}
		ref.fails.Store(0)
		ref.hbMu.Lock()
		ref.hb = hb
		ref.hbMu.Unlock()
		if hb.FrozenKeys > maxFrozen {
			maxFrozen = hb.FrozenKeys
		}
		if hb.DynamicKeys > maxDyn {
			maxDyn = hb.DynamicKeys
		}
		if ref.state.Load() == workerDown && c.ready.Load() {
			if hb.Epoch == c.epoch.Load() && c.seqsMatch(hb) {
				ref.state.Store(workerReady)
				c.logf("worker %s readmitted", ref.addr)
			}
		}
	}
	if c.cfg.SyncFraction >= 0 && c.ready.Load() {
		frozen := max(maxFrozen, 1)
		if maxDyn > 0 && float64(maxDyn) >= c.cfg.SyncFraction*float64(frozen) {
			if err := c.BumpEpoch("dynamic region reached sync fraction"); err != nil {
				c.logf("auto epoch bump: %v", err)
			}
		}
	}
}

// seqsMatch reports whether a heartbeat's per-group applied sequences equal
// the coordinator's lanes for every group in the heartbeat.
func (c *Coordinator) seqsMatch(hb Heartbeat) bool {
	for raw, seq := range hb.Groups {
		g, err := strconv.Atoi(raw)
		if err != nil || g < 0 || g >= len(c.lanes) {
			return false
		}
		c.lanes[g].mu.Lock()
		want := c.lanes[g].seq
		c.lanes[g].mu.Unlock()
		if seq != want {
			return false
		}
	}
	return true
}

func (c *Coordinator) getHeartbeat(ctx context.Context, addr string) (Heartbeat, error) {
	var hb Heartbeat
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/readyz", nil)
	if err != nil {
		return hb, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return hb, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
		return hb, err
	}
	return hb, nil
}

// --- scatter-gather reads ---

// GatherFailure is one group's unrecoverable read failure: every live
// replica was tried.
type GatherFailure struct {
	Group int
	Addr  string
	Err   error
}

// GatherError is the structured failure of a cluster scatter-gather: which
// groups failed, on which worker, with what error. Unwrap exposes the
// underlying errors to errors.Is/As.
type GatherError struct {
	Failures []GatherFailure
}

func (e *GatherError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d group(s) failed", len(e.Failures))
	for i, f := range e.Failures {
		sep := ": "
		if i > 0 {
			sep = "; "
		}
		fmt.Fprintf(&b, "%sgroup %d (%s): %v", sep, f.Group, f.Addr, f.Err)
	}
	return b.String()
}

// Unwrap exposes the per-group errors.
func (e *GatherError) Unwrap() []error {
	out := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		out[i] = f.Err
	}
	return out
}

// body is the JSON shape a failed gather answers with.
func (e *GatherError) body() map[string]any {
	fails := make([]map[string]any, len(e.Failures))
	for i, f := range e.Failures {
		fails[i] = map[string]any{"group": f.Group, "addr": f.Addr, "error": f.Err.Error()}
	}
	return map[string]any{"error": "scatter-gather failed", "code": "gather_failed", "failures": fails}
}

// readCandidates returns the live replicas of group g in the order to try
// them, rotated per request so the read load spreads across the group.
func (c *Coordinator) readCandidates(g int) []*workerRef {
	reps := c.ring.GroupReplicas(g)
	rot := int(c.rr.Add(1)) % len(reps)
	refs := c.refs()
	out := make([]*workerRef, 0, len(reps))
	for i := range reps {
		ref := refs[reps[(i+rot)%len(reps)]]
		if ref.state.Load() == workerReady {
			out = append(out, ref)
		}
	}
	return out
}

// fetchGroup runs fetch against group g's replicas with hedging and
// failover: the first replica gets HedgeDelay of exclusive time, then a
// second attempt races it; remaining replicas are tried as earlier attempts
// fail. The first success wins and cancels the losers. fetch must be safe
// to run concurrently against different replicas and must only have
// client-visible effects on success (the buffered top-k fetch qualifies;
// the streaming probe forward manages its own failover instead).
func (c *Coordinator) fetchGroup(ctx context.Context, g int, fetch func(ctx context.Context, ref *workerRef) (any, error)) (any, error) {
	cands := c.readCandidates(g)
	if len(cands) == 0 {
		return nil, errors.New("no live replica")
	}
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		val any
		err error
		ref *workerRef
		idx int
	}
	results := make(chan result, len(cands))
	launched := 0
	launch := func() {
		idx := launched
		ref := cands[idx]
		launched++
		go func() {
			val, err := fetch(fctx, ref)
			results <- result{val: val, err: err, ref: ref, idx: idx}
		}()
	}
	launch()
	hedge := (*time.Timer)(nil)
	var hedgeCh <-chan time.Time
	if c.cfg.HedgeDelay > 0 && len(cands) > 1 {
		hedge = time.NewTimer(c.cfg.HedgeDelay)
		defer hedge.Stop()
		hedgeCh = hedge.C
	}
	var errs []error
	pending := 1
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-hedgeCh:
			hedgeCh = nil
			if launched < len(cands) {
				launch()
				pending++
			}
		case res := <-results:
			pending--
			if res.err == nil {
				return res.val, nil
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			errs = append(errs, fmt.Errorf("%s: %w", res.ref.addr, res.err))
			c.markDown(res.ref, res.err)
			if launched < len(cands) {
				launch()
				pending++
			} else if pending == 0 {
				return nil, errors.Join(errs...)
			}
		}
	}
}

// fetchTopK reads one group's top-k stream fully (buffered — failover must
// stay possible until the merge, so nothing is forwarded early), restamping
// and retrying once on an epoch-mismatch 409 (a bump's commit may be
// landing on the worker at that moment).
func (c *Coordinator) fetchTopK(ctx context.Context, ref *workerRef, g int, rawQuery string) ([]aujoin.QueryMatch, error) {
	do := func() (*http.Response, error) {
		url := fmt.Sprintf("%s/query?%s&group=%d", ref.addr, rawQuery, g)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set(EpochHeader, strconv.FormatInt(c.epoch.Load(), 10))
		return c.client.Do(req)
	}
	resp, err := do()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusConflict {
		// The worker's commit may be a beat behind the coordinator's epoch
		// flip; one restamped retry covers the window.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		time.Sleep(20 * time.Millisecond)
		if resp, err = do(); err != nil {
			return nil, err
		}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("status %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var out []aujoin.QueryMatch
	err = cmdutil.DecodeNDJSON(resp.Body, func(m aujoin.QueryMatch) error {
		out = append(out, m)
		return nil
	})
	return out, err
}

// handleQuery scatter-gathers a top-k query: one live replica per group
// answers for the group, per-group streams are gathered and k-bound merged
// under the engine's total order (similarity descending, ID ascending), and
// the merged top k streams to the client as NDJSON. The request context
// fans out to every worker stream: a client disconnect cancels them all.
func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if r.URL.Query().Get("q") == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	opts, err := ParseQueryOptions(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !c.ready.Load() {
		writeError(w, http.StatusServiceUnavailable, ErrorBody{Error: "cluster is not bootstrapped", Code: "not_ready"})
		return
	}
	c.queries.Add(1)
	start := time.Now()
	raw := r.URL.Query()
	raw.Del("group")
	rawQuery := raw.Encode()

	groups := c.ring.Workers()
	parts := make([][]aujoin.QueryMatch, groups)
	gerrs := make([]error, groups)
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			val, err := c.fetchGroup(r.Context(), g, func(ctx context.Context, ref *workerRef) (any, error) {
				return c.fetchTopK(ctx, ref, g, rawQuery)
			})
			if err != nil {
				gerrs[g] = err
				return
			}
			parts[g] = val.([]aujoin.QueryMatch)
		}(g)
	}
	wg.Wait()
	if r.Context().Err() != nil {
		return // client is gone; nothing to tell it
	}
	var ge GatherError
	for g, err := range gerrs {
		if err != nil {
			ge.Failures = append(ge.Failures, GatherFailure{Group: g, Addr: strings.Join(c.groupAddrs(g), ","), Err: err})
		}
	}
	if len(ge.Failures) > 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		_ = json.NewEncoder(w).Encode(ge.body())
		return
	}
	merged := mergeTopK(parts, opts.K)
	c.noteMerge(time.Since(start))
	nw := cmdutil.NewNDJSONWriter(w)
	for _, m := range merged {
		if nw.Write(m) != nil {
			return
		}
	}
}

// groupAddrs lists group g's replica addresses (for error reporting).
func (c *Coordinator) groupAddrs(g int) []string {
	refs := c.refs()
	reps := c.ring.GroupReplicas(g)
	out := make([]string, len(reps))
	for i, w := range reps {
		out[i] = refs[w].addr
	}
	return out
}

// mergeTopK folds per-group top-k lists into the global top k under the
// engine's total order: similarity descending, stable ID ascending on ties
// — exactly the order a single-node QueryTopK returns, which is what makes
// cluster answers bit-identical. Sound because each group's top k contains
// every group-local record that can reach the global top k.
func mergeTopK(parts [][]aujoin.QueryMatch, k int) []aujoin.QueryMatch {
	var all []aujoin.QueryMatch
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Similarity != all[b].Similarity {
			return all[a].Similarity > all[b].Similarity
		}
		return all[a].Record < all[b].Record
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// noteMerge records one gather+merge wall time for the /stats percentiles.
func (c *Coordinator) noteMerge(d time.Duration) {
	ms := float64(d.Microseconds()) / 1000
	c.mergeMu.Lock()
	if len(c.mergeMs) >= 4096 {
		c.mergeMs = append(c.mergeMs[:0], c.mergeMs[len(c.mergeMs)/2:]...)
	}
	c.mergeMs = append(c.mergeMs, ms)
	c.mergeMu.Unlock()
}

// handleProbe scatter-gathers a probe batch: the same batch goes to one
// live replica per group and every confirmed match line is forwarded to the
// client as it arrives (the groups partition the catalog, so the union of
// group streams is exactly the single-node result; S carries stable IDs, T
// positions in the request batch). A group whose replica dies before
// emitting anything fails over; once a group has emitted, a mid-stream
// death aborts the response — a silently truncated result would read as a
// complete one.
func (c *Coordinator) handleProbe(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req ProbeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !c.ready.Load() {
		writeError(w, http.StatusServiceUnavailable, ErrorBody{Error: "cluster is not bootstrapped", Code: "not_ready"})
		return
	}

	fctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	var outMu sync.Mutex
	var nw *cmdutil.NDJSONWriter
	emitted := false
	emit := func(line ProbeMatch) error {
		outMu.Lock()
		defer outMu.Unlock()
		if nw == nil {
			nw = cmdutil.NewNDJSONWriter(w)
		}
		emitted = true
		if err := nw.Write(line); err != nil {
			cancel() // client hung up: abort every worker stream
			return err
		}
		return nil
	}

	groups := c.ring.Workers()
	gerrs := make([]error, groups)
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gerrs[g] = c.probeGroup(fctx, g, body, emit)
			if gerrs[g] != nil {
				cancel()
			}
		}(g)
	}
	wg.Wait()
	if r.Context().Err() != nil {
		return // client is gone
	}
	var ge GatherError
	for g, err := range gerrs {
		if err != nil && !errors.Is(err, context.Canceled) {
			ge.Failures = append(ge.Failures, GatherFailure{Group: g, Addr: strings.Join(c.groupAddrs(g), ","), Err: err})
		}
	}
	if len(ge.Failures) == 0 {
		outMu.Lock()
		if nw == nil {
			cmdutil.NewNDJSONWriter(w) // headers for an empty (but successful) stream
		}
		outMu.Unlock()
		return
	}
	if !emitted {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		_ = json.NewEncoder(w).Encode(ge.body())
		return
	}
	// Lines already reached the client; kill the connection so the
	// truncation is unmistakable.
	panic(http.ErrAbortHandler)
}

// probeGroup streams one group's probe matches to emit, failing over to the
// next replica as long as nothing from this group has been forwarded yet.
func (c *Coordinator) probeGroup(ctx context.Context, g int, body []byte, emit func(ProbeMatch) error) error {
	cands := c.readCandidates(g)
	if len(cands) == 0 {
		return errors.New("no live replica")
	}
	var errs []error
	for _, ref := range cands {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		forwarded, err := c.probeReplica(ctx, ref, g, body, emit)
		if err == nil {
			return nil
		}
		if forwarded > 0 || ctx.Err() != nil {
			// Mid-stream failure after lines went out (or the whole request
			// is being torn down): no safe failover.
			return err
		}
		c.markDown(ref, err)
		errs = append(errs, fmt.Errorf("%s: %w", ref.addr, err))
	}
	return errors.Join(errs...)
}

// probeReplica runs one group probe against one replica, forwarding each
// NDJSON line through emit; it reports how many lines were forwarded.
func (c *Coordinator) probeReplica(ctx context.Context, ref *workerRef, g int, body []byte, emit func(ProbeMatch) error) (int, error) {
	url := fmt.Sprintf("%s/probe?group=%d", ref.addr, g)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(EpochHeader, strconv.FormatInt(c.epoch.Load(), 10))
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("status %s: %s", resp.Status, strings.TrimSpace(string(b)))
	}
	forwarded := 0
	err = cmdutil.DecodeNDJSON(resp.Body, func(m ProbeMatch) error {
		if err := emit(m); err != nil {
			return err
		}
		forwarded++
		return nil
	})
	return forwarded, err
}

// --- sequenced mutations ---

// insertRecords allocates stable IDs, partitions the batch by owning group
// and applies each partition to every live replica of its group under the
// group's next sequence number. IDs are allocated exactly as a single-node
// index would (sequentially, in request order) — the cornerstone of
// bit-identical placement and results.
func (c *Coordinator) insertRecords(ctx context.Context, records []string) ([]int, error) {
	if len(records) == 0 {
		return []int{}, nil
	}
	c.mu.Lock()
	start := c.nextID
	c.nextID += len(records)
	c.mu.Unlock()
	ids := make([]int, len(records))
	type part struct {
		ids  []int
		recs []string
	}
	parts := map[int]*part{}
	for i, rec := range records {
		id := start + i
		ids[i] = id
		g := c.ring.Owner(id)
		p := parts[g]
		if p == nil {
			p = &part{}
			parts[g] = p
		}
		p.ids = append(p.ids, id)
		p.recs = append(p.recs, rec)
	}
	var ge GatherError
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g, p := range parts {
		wg.Add(1)
		go func(g int, p *part) {
			defer wg.Done()
			_, err := c.applyGroup(ctx, g, func(seq uint64) ApplyRequest {
				return ApplyRequest{Epoch: c.epoch.Load(), Group: g, Seq: seq, IDs: p.ids, Records: p.recs}
			})
			if err != nil {
				mu.Lock()
				ge.Failures = append(ge.Failures, GatherFailure{Group: g, Addr: strings.Join(c.groupAddrs(g), ","), Err: err})
				mu.Unlock()
			}
		}(g, p)
	}
	wg.Wait()
	if len(ge.Failures) > 0 {
		return nil, &ge
	}
	return ids, nil
}

// applyGroup delivers one sequenced mutation to every live replica of a
// group. The lane mutex is held across the whole fan-out so sequences reach
// replicas in order; the write succeeds if at least one replica applied it
// (replicas that failed are taken out — they may have missed the write and
// must not serve), and the sequence advances only on success.
func (c *Coordinator) applyGroup(ctx context.Context, g int, mk func(seq uint64) ApplyRequest) (*ApplyResponse, error) {
	lane := c.lanes[g]
	lane.mu.Lock()
	defer lane.mu.Unlock()
	seq := lane.seq + 1
	req := mk(seq)

	refs := c.refs()
	reps := c.ring.GroupReplicas(g)
	type res struct {
		resp *ApplyResponse
		err  error
		ref  *workerRef
	}
	results := make([]res, 0, len(reps))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, wi := range reps {
		ref := refs[wi]
		if ref.state.Load() != workerReady {
			continue
		}
		wg.Add(1)
		go func(ref *workerRef) {
			defer wg.Done()
			var ar ApplyResponse
			err := c.postJSON(ctx, ref.addr+"/cluster/apply", req, &ar)
			mu.Lock()
			results = append(results, res{resp: &ar, err: err, ref: ref})
			mu.Unlock()
		}(ref)
	}
	wg.Wait()
	var first *ApplyResponse
	var errs []error
	for _, r := range results {
		if r.err != nil {
			c.markDown(r.ref, r.err)
			errs = append(errs, fmt.Errorf("%s: %w", r.ref.addr, r.err))
			continue
		}
		if first == nil {
			first = r.resp
		}
	}
	if first == nil {
		if len(errs) == 0 {
			return nil, errors.New("no live replica")
		}
		return nil, errors.Join(errs...)
	}
	lane.seq = seq
	return first, nil
}

// postJSON posts v and decodes the response into out (when non-nil),
// retrying nothing: callers own their retry/failover policy. Non-2xx is an
// error carrying the response body.
func (c *Coordinator) postJSON(ctx context.Context, url string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("status %s: %s", resp.Status, strings.TrimSpace(string(b)))
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Coordinator) requireReadyMutation(w http.ResponseWriter) bool {
	if !c.ready.Load() {
		writeError(w, http.StatusServiceUnavailable, ErrorBody{Error: "cluster is not bootstrapped", Code: "not_ready"})
		return false
	}
	return true
}

func (c *Coordinator) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req InsertRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !c.requireReadyMutation(w) {
		return
	}
	c.mutMu.RLock()
	defer c.mutMu.RUnlock()
	ids, err := c.insertRecords(r.Context(), req.Records)
	if err != nil {
		c.writeGather(w, err)
		return
	}
	writeJSON(w, InsertResponse{IDs: ids})
}

// removeByIDs routes a removal set to the owning groups and maps the
// per-group answers back to request positions.
func (c *Coordinator) removeByIDs(ctx context.Context, ids []int) ([]bool, error) {
	out := make([]bool, len(ids))
	type part struct {
		ids []int
		at  []int
	}
	parts := map[int]*part{}
	for i, id := range ids {
		g := c.ring.Owner(id)
		p := parts[g]
		if p == nil {
			p = &part{}
			parts[g] = p
		}
		p.ids = append(p.ids, id)
		p.at = append(p.at, i)
	}
	var ge GatherError
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g, p := range parts {
		wg.Add(1)
		go func(g int, p *part) {
			defer wg.Done()
			resp, err := c.applyGroup(ctx, g, func(seq uint64) ApplyRequest {
				return ApplyRequest{Epoch: c.epoch.Load(), Group: g, Seq: seq, Removes: p.ids}
			})
			if err != nil {
				mu.Lock()
				ge.Failures = append(ge.Failures, GatherFailure{Group: g, Addr: strings.Join(c.groupAddrs(g), ","), Err: err})
				mu.Unlock()
				return
			}
			for i, ok := range resp.Removed {
				out[p.at[i]] = ok
			}
		}(g, p)
	}
	wg.Wait()
	if len(ge.Failures) > 0 {
		return nil, &ge
	}
	return out, nil
}

func (c *Coordinator) handleRemove(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req RemoveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !c.requireReadyMutation(w) {
		return
	}
	c.mutMu.RLock()
	defer c.mutMu.RUnlock()
	removed, err := c.removeByIDs(r.Context(), []int{req.ID})
	if err != nil {
		c.writeGather(w, err)
		return
	}
	writeJSON(w, RemoveResponse{Removed: removed[0]})
}

func (c *Coordinator) handleRemoveBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req RemoveBatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !c.requireReadyMutation(w) {
		return
	}
	c.mutMu.RLock()
	defer c.mutMu.RUnlock()
	removed, err := c.removeByIDs(r.Context(), req.IDs)
	if err != nil {
		c.writeGather(w, err)
		return
	}
	if removed == nil {
		removed = []bool{}
	}
	count := 0
	for _, ok := range removed {
		if ok {
			count++
		}
	}
	writeJSON(w, RemoveBatchResponse{Removed: removed, RemovedCount: count})
}

// writeGather maps a mutation failure to HTTP: a GatherError (every replica
// of some group down) is 503 with the structured failure list.
func (c *Coordinator) writeGather(w http.ResponseWriter, err error) {
	var ge *GatherError
	if errors.As(err, &ge) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(ge.body())
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

// --- the order-sync protocol ---

// BumpEpoch runs a global re-finalize as a two-phase epoch bump. Mutations
// are blocked for the duration (mutMu held exclusively); reads never are —
// workers serve from pre-adoption snapshots while their group indexes
// rebuild, and requests stamped with either the old or the prepared epoch
// are accepted throughout.
//
// Prepare: the first ready worker is elected builder; it collects one
// key-frequency table per group (one live replica each — groups partition
// the records, so the tables sum to the global document frequencies),
// merges them into the next frozen order, and every ready worker adopts it,
// one group index at a time (rolling rebuilds). Commit: the coordinator
// flips its epoch — the point of no return; every query from here on is
// stamped with the new epoch — and tells the workers to flip theirs. A
// worker that fails either phase is marked down: its epoch no longer
// matches, so the stamp check fences it out of serving until it is resynced
// (operator intervention; automatic resync is future work).
func (c *Coordinator) BumpEpoch(reason string) error {
	c.mutMu.Lock()
	defer c.mutMu.Unlock()
	start := time.Now()
	cur := c.epoch.Load()
	next := cur + 1

	refs := c.refs()
	var ready []*workerRef
	for _, ref := range refs {
		if ref.state.Load() == workerReady {
			ready = append(ready, ref)
		}
	}
	if len(ready) == 0 {
		return errors.New("epoch bump: no ready workers")
	}
	builder := ready[0]
	var sources []FreqSource
	for g := 0; g < c.ring.Workers(); g++ {
		var addr string
		for _, wi := range c.ring.GroupReplicas(g) {
			if refs[wi].state.Load() == workerReady {
				addr = refs[wi].addr
				break
			}
		}
		if addr == "" {
			return fmt.Errorf("epoch bump: no live replica for group %d", g)
		}
		sources = append(sources, FreqSource{Group: g, Addr: addr})
	}

	ctx := context.Background()
	var payload OrderPayload
	if err := c.postJSON(ctx, builder.addr+"/cluster/build-order", BuildOrderRequest{Epoch: next, Sources: sources}, &payload); err != nil {
		return fmt.Errorf("epoch bump: build order on %s: %w", builder.addr, err)
	}
	payload.Epoch = next

	// Prepare: rolling adoption, worker by worker (each worker rolls its own
	// groups); reads keep flowing the whole time.
	adopted := ready[:0]
	for _, ref := range ready {
		if err := c.postJSON(ctx, ref.addr+"/cluster/adopt", payload, nil); err != nil {
			c.markDown(ref, fmt.Errorf("adopt epoch %d: %w", next, err))
			continue
		}
		adopted = append(adopted, ref)
	}
	if len(adopted) == 0 {
		return errors.New("epoch bump: no worker adopted the order")
	}

	// Commit.
	c.epoch.Store(next)
	for _, ref := range adopted {
		if err := c.postJSON(ctx, ref.addr+"/cluster/commit", CommitRequest{Epoch: next}, nil); err != nil {
			c.markDown(ref, fmt.Errorf("commit epoch %d: %w", next, err))
		}
	}
	c.bumps.Add(1)
	c.logf("epoch %d -> %d (%s): %d keys frozen, %d workers, %v",
		cur, next, reason, len(payload.Order.Keys), len(adopted), time.Since(start).Round(time.Millisecond))
	return nil
}

func (c *Coordinator) handleBump(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !c.requireReadyMutation(w) {
		return
	}
	if err := c.BumpEpoch("manual"); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]int64{"epoch": c.epoch.Load()})
}

// --- stats ---

// CoordStats is the coordinator's /stats body.
type CoordStats struct {
	Ready    bool          `json:"ready"`
	Epoch    int64         `json:"epoch"`
	Groups   int           `json:"groups"`
	Replicas int           `json:"replicas"`
	NextID   int           `json:"next_id"`
	Queries  int64         `json:"queries"`
	Bumps    int64         `json:"epoch_bumps"`
	Workers  []WorkerState `json:"workers"`
	// MergeMsP50/95/99 are percentiles of recent whole-request
	// gather+merge wall times for scatter-gather queries, milliseconds.
	MergeMsP50 float64 `json:"merge_ms_p50"`
	MergeMsP95 float64 `json:"merge_ms_p95"`
	MergeMsP99 float64 `json:"merge_ms_p99"`
}

// WorkerState is one worker's row in CoordStats.
type WorkerState struct {
	Addr        string `json:"addr"`
	State       string `json:"state"`
	Epoch       int64  `json:"epoch"`
	FrozenKeys  int    `json:"frozen_keys"`
	DynamicKeys int    `json:"dynamic_keys"`
}

// Stats assembles the coordinator's current state.
func (c *Coordinator) Stats() CoordStats {
	st := CoordStats{Ready: c.ready.Load(), Epoch: c.epoch.Load(), Queries: c.queries.Load(), Bumps: c.bumps.Load()}
	c.mu.Lock()
	st.NextID = c.nextID
	ring := c.ring
	refs := append([]*workerRef(nil), c.workers...)
	c.mu.Unlock()
	if ring != nil {
		st.Groups = ring.Workers()
		st.Replicas = ring.Replicas()
	}
	for _, ref := range refs {
		state := "joining"
		switch ref.state.Load() {
		case workerReady:
			state = "ready"
		case workerDown:
			state = "down"
		}
		ref.hbMu.Lock()
		hb := ref.hb
		ref.hbMu.Unlock()
		st.Workers = append(st.Workers, WorkerState{
			Addr: ref.addr, State: state, Epoch: hb.Epoch,
			FrozenKeys: hb.FrozenKeys, DynamicKeys: hb.DynamicKeys,
		})
	}
	c.mergeMu.Lock()
	if len(c.mergeMs) > 0 {
		ps := metrics.Percentiles(c.mergeMs, 50, 95, 99)
		st.MergeMsP50, st.MergeMsP95, st.MergeMsP99 = ps[0], ps[1], ps[2]
	}
	c.mergeMu.Unlock()
	return st
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, c.Stats())
}
