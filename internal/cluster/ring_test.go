package cluster

import "testing"

// TestRingDeterministic pins that placement is a pure function of
// (workers, replicas): two rings built with the same shape agree on every
// owner — the property that lets a replacement coordinator resume routing
// without any state handoff.
func TestRingDeterministic(t *testing.T) {
	a, b := NewRing(5, 2), NewRing(5, 2)
	for id := 0; id < 10000; id++ {
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("id %d: owners disagree (%d vs %d)", id, a.Owner(id), b.Owner(id))
		}
	}
}

// TestRingBalance checks that sequential IDs (the only kind the coordinator
// allocates) spread roughly evenly over the groups.
func TestRingBalance(t *testing.T) {
	const n, ids = 5, 100000
	rg := NewRing(n, 2)
	counts := make([]int, n)
	for id := 0; id < ids; id++ {
		counts[rg.Owner(id)]++
	}
	lo, hi := counts[0], counts[0]
	for _, c := range counts[1:] {
		lo, hi = min(lo, c), max(hi, c)
	}
	// 64 vnodes per group keeps shares within a small factor of even.
	if lo == 0 || float64(hi)/float64(lo) > 2.0 {
		t.Fatalf("unbalanced ownership: %v", counts)
	}
}

// TestRingReplicaConsistency pins the group/worker duality: worker w
// replicates group g exactly when g lists w among its replicas, every group
// has exactly R distinct replicas, and every worker hosts exactly R groups.
func TestRingReplicaConsistency(t *testing.T) {
	for _, shape := range []struct{ n, r int }{{1, 1}, {3, 1}, {3, 2}, {5, 3}, {4, 7}} {
		rg := NewRing(shape.n, shape.r)
		r := rg.Replicas()
		if r < 1 || r > shape.n {
			t.Fatalf("N=%d R=%d: effective replicas %d out of range", shape.n, shape.r, r)
		}
		hosts := make([]map[int]bool, shape.n)
		for w := range hosts {
			hosts[w] = map[int]bool{}
			for _, g := range rg.GroupsOf(w) {
				hosts[w][g] = true
			}
			if len(hosts[w]) != r {
				t.Fatalf("N=%d R=%d: worker %d hosts %d groups, want %d", shape.n, shape.r, w, len(hosts[w]), r)
			}
		}
		for g := 0; g < shape.n; g++ {
			reps := rg.GroupReplicas(g)
			seen := map[int]bool{}
			for _, w := range reps {
				if seen[w] {
					t.Fatalf("N=%d R=%d: group %d lists worker %d twice", shape.n, shape.r, g, w)
				}
				seen[w] = true
				if !hosts[w][g] {
					t.Fatalf("N=%d R=%d: group %d names worker %d, but GroupsOf(%d) omits %d", shape.n, shape.r, g, w, w, g)
				}
			}
			if len(reps) != r {
				t.Fatalf("N=%d R=%d: group %d has %d replicas, want %d", shape.n, shape.r, g, len(reps), r)
			}
		}
	}
}
