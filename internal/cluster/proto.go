package cluster

import (
	"encoding/json"
	"net/http"

	"github.com/aujoin/aujoin"
)

// Wire types of the cluster protocol. Everything is JSON over HTTP; query
// and probe results stream as NDJSON in the PR 5 wire format (one
// aujoin.QueryMatch / ProbeMatch per line), so the coordinator's
// scatter-gather speaks the exact protocol a single aujoind already
// serves.

// EpochHeader stamps coordinator-originated requests with the
// coordinator's current order epoch. A worker whose epoch disagrees
// answers 409 with an ErrorBody naming code "epoch_mismatch"; the
// coordinator re-stamps and retries, or fails the worker over.
const EpochHeader = "X-Aujoin-Epoch"

// ErrorBody is the JSON error shape of cluster endpoints.
type ErrorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
	// Epoch is the responder's current epoch on code "epoch_mismatch".
	Epoch int64 `json:"epoch,omitempty"`
}

// RegisterRequest is a worker announcing itself to the coordinator.
type RegisterRequest struct {
	Addr string `json:"addr"`
}

// RegisterResponse acknowledges a registration. Configured reports whether
// the cluster has bootstrapped (the worker will have received its config).
type RegisterResponse struct {
	Accepted   bool `json:"accepted"`
	Configured bool `json:"configured"`
}

// ConfigRequest is the coordinator pushing cluster membership and build
// parameters to one worker at bootstrap. The worker builds one empty index
// per replica group it hosts and becomes ready.
type ConfigRequest struct {
	Workers  []string `json:"workers"` // advertise addresses, by worker index
	Self     int      `json:"self"`    // this worker's index
	Replicas int      `json:"replicas"`
	Epoch    int64    `json:"epoch"`
	Theta    float64  `json:"theta"`
	Tau      int      `json:"tau"`
	Filter   string   `json:"filter"` // cmdutil.ParseFilter spelling: u, heuristic, dp
}

// ApplyRequest is one sequenced mutation batch for one replica group:
// inserts with coordinator-assigned stable IDs, then removes. Seq must be
// exactly the group's last applied sequence plus one; a replayed (≤ last)
// sequence is acknowledged without re-applying, a gap is a 409.
type ApplyRequest struct {
	Epoch   int64    `json:"epoch"`
	Group   int      `json:"group"`
	Seq     uint64   `json:"seq"`
	IDs     []int    `json:"ids,omitempty"`
	Records []string `json:"records,omitempty"`
	Removes []int    `json:"removes,omitempty"`
}

// ApplyResponse acknowledges an ApplyRequest. Removed reports, per entry of
// Removes, whether the record was present and live (identical across
// replicas, since replica indexes are identical).
type ApplyResponse struct {
	Applied bool   `json:"applied"`
	Removed []bool `json:"removed,omitempty"`
}

// BuildOrderRequest asks the elected builder worker to construct the next
// global frozen order: fetch the per-group key-frequency tables from the
// given sources (one live replica per group — groups partition the record
// space, so the tables sum to the global frequencies), merge them, and
// return the finalize-ordered image.
type BuildOrderRequest struct {
	Epoch   int64        `json:"epoch"`
	Sources []FreqSource `json:"sources"`
}

// FreqSource names one group and a live replica to read its table from.
type FreqSource struct {
	Group int    `json:"group"`
	Addr  string `json:"addr"`
}

// OrderPayload carries a frozen-order image: the prepare phase of an epoch
// bump ships it to every worker (POST /cluster/adopt), and the builder
// returns it from /cluster/build-order. Epoch is the epoch being prepared.
type OrderPayload struct {
	Epoch int64             `json:"epoch"`
	Order aujoin.OrderImage `json:"order"`
}

// CommitRequest flips a worker's epoch to the prepared value — phase two of
// the bump, after every ready worker has adopted the order.
type CommitRequest struct {
	Epoch int64 `json:"epoch"`
}

// Heartbeat is a worker's /readyz body: readiness, its current epoch, the
// interned-key split of its order (the coordinator's auto-bump trigger
// watches the dynamic region), and per-group applied sequence numbers
// (keyed by decimal group index; the coordinator readmits a suspect worker
// only when these match its own).
type Heartbeat struct {
	Ready       bool              `json:"ready"`
	Epoch       int64             `json:"epoch"`
	FrozenKeys  int               `json:"frozen_keys"`
	DynamicKeys int               `json:"dynamic_keys"`
	Groups      map[string]uint64 `json:"groups,omitempty"`
}

// ProbeRequest is the body of POST /probe, single-node and cluster alike.
type ProbeRequest struct {
	Records []string `json:"records"`
}

// ProbeMatch is one streamed probe result line: the stable ID of the
// matched catalog record, the position of the probe record in the request
// batch, and their unified similarity.
type ProbeMatch struct {
	S          int     `json:"s"`
	T          int     `json:"t"`
	Similarity float64 `json:"similarity"`
}

// InsertRequest / InsertResponse are the /insert body shapes.
type InsertRequest struct {
	Records []string `json:"records"`
}

type InsertResponse struct {
	IDs []int `json:"ids"`
}

// RemoveRequest / RemoveResponse are the /remove body shapes.
type RemoveRequest struct {
	ID int `json:"id"`
}

type RemoveResponse struct {
	Removed bool `json:"removed"`
}

// RemoveBatchRequest / RemoveBatchResponse are the /remove-batch shapes.
type RemoveBatchRequest struct {
	IDs []int `json:"ids"`
}

type RemoveBatchResponse struct {
	// Removed reports, positionally for each requested id, whether it was
	// present and live; RemovedCount totals the true entries.
	Removed      []bool `json:"removed"`
	RemovedCount int    `json:"removed_count"`
}

// SnapshotResponse is the POST /snapshot acknowledgement.
type SnapshotResponse struct {
	Checkpointed bool `json:"checkpointed"`
}

// writeJSON writes v as a JSON response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes an ErrorBody with the given HTTP status.
func writeError(w http.ResponseWriter, status int, body ErrorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
