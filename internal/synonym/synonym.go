// Package synonym implements the synonym-rule substrate of the unified
// similarity framework (Section 2.1, Eq. 2).
//
// A rule R has the form lhs(R) → rhs(R) with a closeness C(R) ∈ (0, 1].
// Both sides are token sequences ("coffee shop" → "cafe"). The synonym
// similarity of two strings is C(R) when a rule maps one onto the other in
// either direction and 0 otherwise.
//
// The rule set supports the lookups that segment enumeration and pebble
// generation need:
//
//   - ByLHS / ByRHS: all rules whose left (right) side equals a token span,
//     used to decide whether a span is a well-defined segment.
//   - MatchPair: the best closeness linking two spans, used as the segment
//     similarity msim contribution of the synonym measure.
//   - MaxSideTokens: the claw parameter k.
package synonym

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/aujoin/aujoin/internal/strutil"
)

// Rule is a directed synonym (or abbreviation) rule lhs → rhs with
// closeness C ∈ (0, 1].
type Rule struct {
	ID  int
	LHS []string // tokenised left-hand side
	RHS []string // tokenised right-hand side
	C   float64  // closeness
}

// LHSText returns the space-joined left-hand side.
func (r Rule) LHSText() string { return strutil.JoinTokens(r.LHS) }

// RHSText returns the space-joined right-hand side.
func (r Rule) RHSText() string { return strutil.JoinTokens(r.RHS) }

// String implements fmt.Stringer for debugging output.
func (r Rule) String() string {
	return fmt.Sprintf("%s -> %s (%.3f)", r.LHSText(), r.RHSText(), r.C)
}

// RuleSet is an indexed collection of synonym rules. The zero value is an
// empty, usable rule set. RuleSet is safe for concurrent reads once no more
// rules are being added.
type RuleSet struct {
	rules []Rule
	byLHS map[string][]int // lhs text → rule indices
	byRHS map[string][]int // rhs text → rule indices
	// byPair maps "lhs\x00rhs" (and the symmetric "rhs\x00lhs") to the best
	// closeness across all rules linking the two sides.
	byPair map[string]float64
	maxTok int
}

// NewRuleSet creates an empty rule set.
func NewRuleSet() *RuleSet {
	return &RuleSet{
		byLHS:  make(map[string][]int),
		byRHS:  make(map[string][]int),
		byPair: make(map[string]float64),
	}
}

// Len returns the number of rules in the set.
func (rs *RuleSet) Len() int { return len(rs.rules) }

// Rules returns the underlying rules slice. Callers must not modify it.
func (rs *RuleSet) Rules() []Rule { return rs.rules }

// Rule returns the rule with the given identifier.
func (rs *RuleSet) Rule(id int) Rule { return rs.rules[id] }

// Add inserts a rule lhs → rhs with the given closeness. Sides are
// normalised and tokenised; closeness must lie in (0, 1]. The new rule's
// identifier is returned.
func (rs *RuleSet) Add(lhs, rhs string, closeness float64) (int, error) {
	if closeness <= 0 || closeness > 1 {
		return -1, fmt.Errorf("synonym: closeness %v outside (0, 1]", closeness)
	}
	l := strutil.Tokenize(lhs)
	r := strutil.Tokenize(rhs)
	if len(l) == 0 || len(r) == 0 {
		return -1, errors.New("synonym: empty rule side")
	}
	id := len(rs.rules)
	rule := Rule{ID: id, LHS: l, RHS: r, C: closeness}
	rs.rules = append(rs.rules, rule)
	lt, rt := rule.LHSText(), rule.RHSText()
	rs.byLHS[lt] = append(rs.byLHS[lt], id)
	rs.byRHS[rt] = append(rs.byRHS[rt], id)
	rs.addPair(lt, rt, closeness)
	rs.addPair(rt, lt, closeness)
	if len(l) > rs.maxTok {
		rs.maxTok = len(l)
	}
	if len(r) > rs.maxTok {
		rs.maxTok = len(r)
	}
	return id, nil
}

// MustAdd is Add that panics on error.
func (rs *RuleSet) MustAdd(lhs, rhs string, closeness float64) int {
	id, err := rs.Add(lhs, rhs, closeness)
	if err != nil {
		panic(err)
	}
	return id
}

func (rs *RuleSet) addPair(a, b string, c float64) {
	key := a + "\x00" + b
	if prev, ok := rs.byPair[key]; !ok || c > prev {
		rs.byPair[key] = c
	}
}

// ByLHS returns the identifiers of all rules whose left-hand side equals the
// given token span.
func (rs *RuleSet) ByLHS(tokens []string) []int {
	return rs.byLHS[strutil.JoinTokens(tokens)]
}

// ByRHS returns the identifiers of all rules whose right-hand side equals
// the given token span.
func (rs *RuleSet) ByRHS(tokens []string) []int {
	return rs.byRHS[strutil.JoinTokens(tokens)]
}

// ByLHSText is ByLHS for a pre-joined segment text. The returned slice
// aliases the index and lists rule identifiers in ascending order.
func (rs *RuleSet) ByLHSText(text string) []int { return rs.byLHS[text] }

// ByRHSText is ByRHS for a pre-joined segment text.
func (rs *RuleSet) ByRHSText(text string) []int { return rs.byRHS[text] }

// MatchIDLists is MatchPair over precomputed rule-side id lists: aLHS/aRHS
// are the rules whose lhs/rhs equals span a (as returned by ByLHSText and
// ByRHSText), likewise b. It returns the best closeness of a rule linking
// the two spans in either direction without joining or hashing any strings,
// and agrees exactly with MatchPair on the underlying spans.
func (rs *RuleSet) MatchIDLists(aLHS, aRHS, bLHS, bRHS []int) (float64, bool) {
	best, ok := 0.0, false
	rs.scanCommon(aLHS, bRHS, &best, &ok)
	rs.scanCommon(aRHS, bLHS, &best, &ok)
	return best, ok
}

// scanCommon merges two ascending rule-id lists and folds the closeness of
// every common rule into best.
func (rs *RuleSet) scanCommon(x, y []int, best *float64, ok *bool) {
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			i++
		case x[i] > y[j]:
			j++
		default:
			if c := rs.rules[x[i]].C; c > *best {
				*best = c
			}
			*ok = true
			i++
			j++
		}
	}
}

// IsSide reports whether the token span appears as the lhs or rhs of at
// least one rule; such spans are well-defined segments (Definition 1(i)).
func (rs *RuleSet) IsSide(tokens []string) bool {
	key := strutil.JoinTokens(tokens)
	if len(rs.byLHS[key]) > 0 {
		return true
	}
	return len(rs.byRHS[key]) > 0
}

// MatchPair returns the best closeness of a rule linking the two token spans
// in either direction, and whether such a rule exists. This realises Eq. (2)
// applied symmetrically, which is how the unified measure uses rules
// (either string may carry the lhs).
func (rs *RuleSet) MatchPair(a, b []string) (float64, bool) {
	key := strutil.JoinTokens(a) + "\x00" + strutil.JoinTokens(b)
	c, ok := rs.byPair[key]
	return c, ok
}

// Similarity returns the synonym similarity of two strings per Eq. (2)
// (applied in both directions): the best closeness of a rule mapping one
// string onto the other, or 0 when no rule applies.
func (rs *RuleSet) Similarity(s, t string) float64 {
	c, ok := rs.MatchPair(strutil.Tokenize(s), strutil.Tokenize(t))
	if !ok {
		return 0
	}
	return c
}

// MaxSideTokens returns the maximal number of tokens on either side of any
// rule; this is the k in the (k+1)-claw-freeness argument of Section 2.3.
func (rs *RuleSet) MaxSideTokens() int { return rs.maxTok }

// SideLengths returns the sorted distinct lengths (in tokens) of rule sides.
// Segment enumeration uses this to bound which span lengths can possibly
// match a rule.
func (rs *RuleSet) SideLengths() []int {
	seen := map[int]struct{}{}
	for _, r := range rs.rules {
		seen[len(r.LHS)] = struct{}{}
		seen[len(r.RHS)] = struct{}{}
	}
	out := make([]int, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// Write serialises the rule set as tab-separated lines "lhs<TAB>rhs<TAB>C".
func (rs *RuleSet) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range rs.rules {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%g\n", r.LHSText(), r.RHSText(), r.C); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the format produced by Write. Lines with a missing closeness
// column default to C = 1, which matches how public synonym lists (plain
// "term<TAB>alias" files) are usually distributed.
func Read(r io.Reader) (*RuleSet, error) {
	rs := NewRuleSet()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) < 2 {
			return nil, fmt.Errorf("synonym: line %d: want at least 2 tab-separated fields", line)
		}
		c := 1.0
		if len(parts) >= 3 && strings.TrimSpace(parts[2]) != "" {
			v, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
			if err != nil {
				return nil, fmt.Errorf("synonym: line %d: bad closeness: %w", line, err)
			}
			c = v
		}
		if _, err := rs.Add(parts[0], parts[1], c); err != nil {
			return nil, fmt.Errorf("synonym: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rs, nil
}
