package synonym

import (
	"bytes"
	"reflect"
	"testing"
)

func paperRules(t *testing.T) *RuleSet {
	t.Helper()
	rs := NewRuleSet()
	rs.MustAdd("cake", "gateau", 1)
	rs.MustAdd("coffee shop", "cafe", 1)
	return rs
}

func TestPaperExampleSimilarity(t *testing.T) {
	rs := paperRules(t)
	// Example 2(ii): sims("coffee shop", "cafe") = 1.
	if got := rs.Similarity("coffee shop", "cafe"); got != 1 {
		t.Errorf("Similarity(coffee shop, cafe) = %v, want 1", got)
	}
	// Rules apply in both directions for the unified measure.
	if got := rs.Similarity("cafe", "coffee shop"); got != 1 {
		t.Errorf("Similarity(cafe, coffee shop) = %v, want 1", got)
	}
	if got := rs.Similarity("coffee shop", "gateau"); got != 0 {
		t.Errorf("Similarity(coffee shop, gateau) = %v, want 0", got)
	}
	if got := rs.Similarity("coffee", "cafe"); got != 0 {
		t.Errorf("partial lhs should not match, got %v", got)
	}
}

func TestAddValidation(t *testing.T) {
	rs := NewRuleSet()
	if _, err := rs.Add("a", "b", 0); err == nil {
		t.Error("closeness 0 should be rejected")
	}
	if _, err := rs.Add("a", "b", 1.5); err == nil {
		t.Error("closeness > 1 should be rejected")
	}
	if _, err := rs.Add("", "b", 1); err == nil {
		t.Error("empty lhs should be rejected")
	}
	if _, err := rs.Add("a", "  ", 1); err == nil {
		t.Error("empty rhs should be rejected")
	}
	id, err := rs.Add("Heart Attack", "myocardial infarction", 0.9)
	if err != nil {
		t.Fatalf("valid add failed: %v", err)
	}
	r := rs.Rule(id)
	if r.LHSText() != "heart attack" || r.RHSText() != "myocardial infarction" {
		t.Errorf("rule not normalised: %v", r)
	}
	if r.String() == "" {
		t.Error("String should not be empty")
	}
}

func TestLookupsAndSides(t *testing.T) {
	rs := paperRules(t)
	if ids := rs.ByLHS([]string{"coffee", "shop"}); len(ids) != 1 {
		t.Errorf("ByLHS(coffee shop) = %v, want one rule", ids)
	}
	if ids := rs.ByRHS([]string{"cafe"}); len(ids) != 1 {
		t.Errorf("ByRHS(cafe) = %v, want one rule", ids)
	}
	if ids := rs.ByLHS([]string{"cafe"}); len(ids) != 0 {
		t.Errorf("ByLHS(cafe) = %v, want none", ids)
	}
	if !rs.IsSide([]string{"coffee", "shop"}) || !rs.IsSide([]string{"cafe"}) {
		t.Error("both rule sides should be well-defined segments")
	}
	if rs.IsSide([]string{"espresso"}) {
		t.Error("espresso is not a rule side")
	}
}

func TestMatchPairKeepsBestCloseness(t *testing.T) {
	rs := NewRuleSet()
	rs.MustAdd("db", "database", 0.5)
	rs.MustAdd("db", "database", 0.8)
	c, ok := rs.MatchPair([]string{"db"}, []string{"database"})
	if !ok || c != 0.8 {
		t.Errorf("MatchPair = %v,%v want 0.8,true", c, ok)
	}
	c, ok = rs.MatchPair([]string{"database"}, []string{"db"})
	if !ok || c != 0.8 {
		t.Errorf("reverse MatchPair = %v,%v want 0.8,true", c, ok)
	}
	if _, ok := rs.MatchPair([]string{"db"}, []string{"dbms"}); ok {
		t.Error("unexpected match")
	}
}

func TestMaxSideTokensAndLengths(t *testing.T) {
	rs := NewRuleSet()
	rs.MustAdd("database management system", "dbms", 1)
	rs.MustAdd("bill", "william", 0.9)
	if got := rs.MaxSideTokens(); got != 3 {
		t.Errorf("MaxSideTokens = %d, want 3", got)
	}
	if got := rs.SideLengths(); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("SideLengths = %v, want [1 3]", got)
	}
	if rs.Len() != 2 {
		t.Errorf("Len = %d, want 2", rs.Len())
	}
	if len(rs.Rules()) != 2 {
		t.Errorf("Rules() length = %d, want 2", len(rs.Rules()))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rs := NewRuleSet()
	rs.MustAdd("coffee shop", "cafe", 1)
	rs.MustAdd("heart attack", "myocardial infarction", 0.85)
	var buf bytes.Buffer
	if err := rs.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Len() != rs.Len() {
		t.Fatalf("round trip length mismatch: %d vs %d", got.Len(), rs.Len())
	}
	c, ok := got.MatchPair([]string{"heart", "attack"}, []string{"myocardial", "infarction"})
	if !ok || c != 0.85 {
		t.Errorf("closeness lost in round trip: %v %v", c, ok)
	}
}

func TestReadDefaultsAndErrors(t *testing.T) {
	rs, err := Read(bytes.NewBufferString("cake\tgateau\n\ncoffee shop\tcafe\t0.7\n"))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if rs.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rs.Len())
	}
	if got := rs.Similarity("cake", "gateau"); got != 1 {
		t.Errorf("default closeness = %v, want 1", got)
	}
	if got := rs.Similarity("coffee shop", "cafe"); got != 0.7 {
		t.Errorf("closeness = %v, want 0.7", got)
	}
	if _, err := Read(bytes.NewBufferString("onlyonefield\n")); err == nil {
		t.Error("expected error for malformed line")
	}
	if _, err := Read(bytes.NewBufferString("a\tb\tnotanumber\n")); err == nil {
		t.Error("expected error for bad closeness")
	}
	if _, err := Read(bytes.NewBufferString("a\tb\t2.0\n")); err == nil {
		t.Error("expected error for out-of-range closeness")
	}
}
