// Package experiments contains one runner per table and figure of the
// paper's evaluation (Section 5). Every runner works on synthetic MED-like
// and WIKI-like datasets produced by internal/datagen (see DESIGN.md §3 for
// the experiment index and §4 for the dataset substitution rationale),
// returns a structured result, and renders a plain-text table whose rows
// mirror the paper's artefact.
//
// The runners are shared by cmd/benchrun (full-size runs) and by the
// repository-level benchmarks in bench_test.go (scaled-down runs).
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/aujoin/aujoin/internal/datagen"
	"github.com/aujoin/aujoin/internal/join"
	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/sim"
	"github.com/aujoin/aujoin/internal/strutil"
)

// Config controls the scale of every experiment.
type Config struct {
	// MEDSize and WIKISize are the record counts of the two synthetic
	// datasets (the paper uses 293K and 3.5M; the defaults here are sized
	// for a laptop).
	MEDSize  int
	WIKISize int
	// Seed drives all dataset generation and sampling.
	Seed int64
	// Thetas is the join-threshold grid used by the time experiments.
	Thetas []float64
	// Taus is the overlap-constraint grid.
	Taus []int
	// Workers bounds verification parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultConfig returns the scale used by cmd/benchrun.
func DefaultConfig() Config {
	return Config{
		MEDSize:  2000,
		WIKISize: 4000,
		Seed:     1,
		Thetas:   []float64{0.75, 0.80, 0.85, 0.90, 0.95},
		Taus:     []int{1, 2, 3, 4, 5},
	}
}

// QuickConfig returns a small configuration suitable for unit tests and
// the testing.B benchmarks.
func QuickConfig() Config {
	return Config{
		MEDSize:  220,
		WIKISize: 300,
		Seed:     1,
		Thetas:   []float64{0.75, 0.85, 0.95},
		Taus:     []int{1, 2, 3},
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MEDSize <= 0 {
		c.MEDSize = d.MEDSize
	}
	if c.WIKISize <= 0 {
		c.WIKISize = d.WIKISize
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if len(c.Thetas) == 0 {
		c.Thetas = d.Thetas
	}
	if len(c.Taus) == 0 {
		c.Taus = d.Taus
	}
	return c
}

// Workload bundles a generated dataset with the joiner and labels the
// effectiveness experiments need.
type Workload struct {
	Dataset *datagen.Dataset
	Joiner  *join.Joiner
	// Labels holds the ground-truth labels: the generated variant pairs as
	// positives plus an equal number of sampled negatives.
	Labels map[[2]int]bool
}

// Context returns the workload's similarity context.
func (w *Workload) Context() *sim.Context { return w.Dataset.Context() }

// BuildWorkloads generates the MED-like and WIKI-like workloads.
func BuildWorkloads(cfg Config) []*Workload {
	cfg = cfg.withDefaults()
	med := datagen.New(datagen.MEDLike(cfg.MEDSize, cfg.Seed)).Generate()
	wiki := datagen.New(datagen.WIKILike(cfg.WIKISize, cfg.Seed+1)).Generate()
	return []*Workload{newWorkload(med), newWorkload(wiki)}
}

func newWorkload(ds *datagen.Dataset) *Workload {
	w := &Workload{Dataset: ds, Joiner: join.NewJoiner(ds.Context()), Labels: map[[2]int]bool{}}
	for pair := range ds.Truth {
		w.Labels[pair] = true
	}
	// Sample deterministic negatives: shifted pairings that are not in the
	// ground truth.
	n := len(ds.T)
	added := 0
	for pair := range ds.Truth {
		if added >= len(ds.Truth) {
			break
		}
		neg := [2]int{pair[0], (pair[1] + n/2 + 1) % n}
		if _, ok := ds.Truth[neg]; ok {
			continue
		}
		if _, ok := w.Labels[neg]; ok {
			continue
		}
		w.Labels[neg] = false
		added++
	}
	return w
}

// measureCombos is the measure grid of Tables 8 and Figure 6 in the
// paper's order (T, J, S, TJ, JS, TS, TJS reads differently per table; we
// use the Table 8 row order).
var measureCombos = []sim.MeasureSet{
	sim.SetJaccard,
	sim.SetTaxonomy,
	sim.SetSynonym,
	sim.SetTaxonomy | sim.SetJaccard,
	sim.SetTaxonomy | sim.SetSynonym,
	sim.SetJaccard | sim.SetSynonym,
	sim.SetAll,
}

// pairsToSlice converts join results into metric-friendly index pairs.
func pairsToSlice(pairs []join.Pair) [][2]int {
	out := make([][2]int, len(pairs))
	for i, p := range pairs {
		out[i] = [2]int{p.S, p.T}
	}
	return out
}

// table is a tiny plain-text table builder shared by the runners.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func fi(v int) string     { return fmt.Sprintf("%d", v) }

// subset returns the first n records of a collection (or all of them).
func subset(recs []strutil.Record, n int) []strutil.Record {
	if n >= len(recs) {
		return recs
	}
	return recs[:n]
}

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys[K int | float64, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// defaultOptions returns the join options the experiments use unless a
// specific method/τ is under study.
func defaultOptions(theta float64, tau int, method pebble.Method, workers int) join.Options {
	return join.Options{Theta: theta, Tau: tau, Method: method, Workers: workers}
}
