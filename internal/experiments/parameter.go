package experiments

import (
	"math/rand"
	"time"

	"github.com/aujoin/aujoin/internal/baseline"
	"github.com/aujoin/aujoin/internal/estimator"
	"github.com/aujoin/aujoin/internal/join"
	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/sim"
)

// Table11Row compares join time under the suggested, a random and the
// worst τ for one dataset and threshold.
type Table11Row struct {
	Dataset       string
	Theta         float64
	SuggestedTau  int
	SuggestedTime time.Duration
	RandomTime    time.Duration
	WorstTime     time.Duration
}

// Table11Result reproduces Table 11.
type Table11Result struct {
	Rows []Table11Row
}

// RunTable11 measures the AU-Filter (heuristics) join time with the τ the
// estimator suggests, a random τ, and the worst τ of the universe.
func RunTable11(cfg Config) *Table11Result {
	cfg = cfg.withDefaults()
	res := &Table11Result{}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, w := range BuildWorkloads(cfg) {
		for _, theta := range cfg.Thetas {
			base := defaultOptions(theta, 1, pebble.AUHeuristic, cfg.Workers)
			rec := estimator.Suggest(w.Joiner, w.Dataset.S, w.Dataset.T, base, estimator.Config{
				Universe: cfg.Taus, Seed: cfg.Seed + int64(theta*100), BurnIn: 5, MaxIterations: 30,
			})
			timeFor := func(tau int) time.Duration {
				opts := base
				opts.Tau = tau
				_, stats := w.Joiner.Join(w.Dataset.S, w.Dataset.T, opts)
				return stats.TotalTime()
			}
			suggested := timeFor(rec.BestTau)
			randomTau := cfg.Taus[rng.Intn(len(cfg.Taus))]
			randomTime := timeFor(randomTau)
			worst := time.Duration(0)
			for _, tau := range cfg.Taus {
				if d := timeFor(tau); d > worst {
					worst = d
				}
			}
			res.Rows = append(res.Rows, Table11Row{
				Dataset: w.Dataset.Name, Theta: theta,
				SuggestedTau: rec.BestTau, SuggestedTime: suggested,
				RandomTime: randomTime, WorstTime: worst,
			})
		}
	}
	return res
}

// String renders Table 11.
func (r *Table11Result) String() string {
	t := newTable("Dataset", "Theta", "SuggestedTau", "Suggested(s)", "Random(s)", "Worst(s)")
	for _, row := range r.Rows {
		t.addRow(row.Dataset, f2(row.Theta), fi(row.SuggestedTau),
			f3(row.SuggestedTime.Seconds()), f3(row.RandomTime.Seconds()), f3(row.WorstTime.Seconds()))
	}
	return "Table 11: join time w.r.t. parameter selection method\n" + t.String()
}

// Table12Row reports suggestion accuracy and its share of the join time.
type Table12Row struct {
	Dataset      string
	Theta        float64
	Accuracy     float64
	TimeFraction float64
	Runs         int
}

// Table12Result reproduces Table 12.
type Table12Result struct {
	Rows []Table12Row
}

// RunTable12 runs the suggestion procedure `runs` times per (dataset, θ),
// compares the recommendations with the exhaustively determined optimum
// (by true cost), and reports the accuracy and the fraction of total join
// time spent on suggestion.
func RunTable12(cfg Config, runs int) *Table12Result {
	cfg = cfg.withDefaults()
	if runs <= 0 {
		runs = 10
	}
	res := &Table12Result{}
	for _, w := range BuildWorkloads(cfg) {
		for _, theta := range cfg.Thetas {
			base := defaultOptions(theta, 1, pebble.AUHeuristic, cfg.Workers)
			// Exhaustive ground truth: the τ minimising the true cost-model
			// value on the full data. One profile shares the prepared
			// pebbles across the whole τ sweep.
			profile := w.Joiner.NewFilterProfile(w.Dataset.S, w.Dataset.T, base)
			bestTau, bestCost := 0, 0.0
			for i, tau := range cfg.Taus {
				pt, pv := profile.Stats(tau)
				cost := float64(pt) + 40*float64(pv)
				if i == 0 || cost < bestCost {
					bestTau, bestCost = tau, cost
				}
			}
			// One representative full join to measure the total join time.
			opts := base
			opts.Tau = bestTau
			_, joinStats := w.Joiner.Join(w.Dataset.S, w.Dataset.T, opts)

			hits := 0
			var suggestTotal time.Duration
			for run := 0; run < runs; run++ {
				rec := estimator.Suggest(w.Joiner, w.Dataset.S, w.Dataset.T, base, estimator.Config{
					Universe: cfg.Taus, Seed: cfg.Seed + int64(run*977+int(theta*100)),
					BurnIn: 5, MaxIterations: 30,
				})
				suggestTotal += rec.Duration
				if rec.BestTau == bestTau {
					hits++
				}
			}
			avgSuggest := suggestTotal / time.Duration(runs)
			frac := 0.0
			if total := joinStats.TotalTime() + avgSuggest; total > 0 {
				frac = float64(avgSuggest) / float64(total)
			}
			res.Rows = append(res.Rows, Table12Row{
				Dataset: w.Dataset.Name, Theta: theta,
				Accuracy: float64(hits) / float64(runs), TimeFraction: frac, Runs: runs,
			})
		}
	}
	return res
}

// String renders Table 12.
func (r *Table12Result) String() string {
	t := newTable("Dataset", "Theta", "Accuracy", "TimeFraction", "Runs")
	for _, row := range r.Rows {
		t.addRow(row.Dataset, f2(row.Theta), f2(row.Accuracy), f3(row.TimeFraction), fi(row.Runs))
	}
	return "Table 12: suggestion accuracy and fraction of join time\n" + t.String()
}

// Fig8Point records the behaviour of the suggestion procedure for one
// sampling probability.
type Fig8Point struct {
	Dataset     string
	Probability float64
	Iterations  int
	Duration    time.Duration
}

// Fig8Result reproduces Figure 8: iterations and suggestion time as a
// function of the sampling probability.
type Fig8Result struct {
	Points []Fig8Point
}

// RunFig8 sweeps the sampling probability at θ = 0.8 (the paper's setting)
// and records the number of iterations and the suggestion time.
func RunFig8(cfg Config, probabilities []float64) *Fig8Result {
	cfg = cfg.withDefaults()
	if len(probabilities) == 0 {
		probabilities = []float64{0.02, 0.05, 0.1, 0.2, 0.4}
	}
	res := &Fig8Result{}
	for _, w := range BuildWorkloads(cfg) {
		base := defaultOptions(0.8, 1, pebble.AUHeuristic, cfg.Workers)
		for _, p := range probabilities {
			rec := estimator.Suggest(w.Joiner, w.Dataset.S, w.Dataset.T, base, estimator.Config{
				Universe: cfg.Taus, SampleProbS: p, SampleProbT: p,
				Seed: cfg.Seed + int64(p*1e4), BurnIn: 10, MaxIterations: 300, TQuantile: 1.036,
			})
			res.Points = append(res.Points, Fig8Point{
				Dataset: w.Dataset.Name, Probability: p,
				Iterations: rec.Iterations, Duration: rec.Duration,
			})
		}
	}
	return res
}

// String renders Figure 8 as a table.
func (r *Fig8Result) String() string {
	t := newTable("Dataset", "SampleProb", "Iterations", "Time(s)")
	for _, p := range r.Points {
		t.addRow(p.Dataset, f3(p.Probability), fi(p.Iterations), f3(p.Duration.Seconds()))
	}
	return "Figure 8: parameter suggestion vs sampling probability (θ=0.8)\n" + t.String()
}

// Table14Row is one (dataset, θ, method) join-time entry of Table 14.
type Table14Row struct {
	Dataset string
	Theta   float64
	Method  string
	Group   string // which measure group the comparison belongs to
	Time    time.Duration
	Results int
}

// Table14Result reproduces Table 14: join time of the baselines against the
// unified join restricted to the corresponding measure.
type Table14Result struct {
	Rows []Table14Row
}

// RunTable14 times K-Join vs Ours(T), AdaptJoin vs Ours(J), PKduck vs
// Ours(S) and Combination vs Ours(TJS).
func RunTable14(cfg Config, tau int) *Table14Result {
	cfg = cfg.withDefaults()
	if tau <= 0 {
		tau = 3
	}
	res := &Table14Result{}
	for _, w := range BuildWorkloads(cfg) {
		kjoin := baseline.NewKJoin(w.Dataset.Tax)
		adapt := &baseline.AdaptJoin{}
		pkduck := baseline.NewPKDuck(w.Dataset.Rules)
		comb := baseline.NewCombination(kjoin, adapt, pkduck)
		groups := []struct {
			group   string
			alg     baseline.Algorithm
			measure sim.MeasureSet
			ours    string
		}{
			{"taxonomy", kjoin, sim.SetTaxonomy, "Ours (T)"},
			{"jaccard", adapt, sim.SetJaccard, "Ours (J)"},
			{"synonym", pkduck, sim.SetSynonym, "Ours (S)"},
			{"all", comb, sim.SetAll, "Ours (TJS)"},
		}
		for _, theta := range cfg.Thetas {
			for _, g := range groups {
				start := time.Now()
				basePairs := g.alg.Join(w.Dataset.S, w.Dataset.T, theta)
				baseTime := time.Since(start)
				res.Rows = append(res.Rows, Table14Row{
					Dataset: w.Dataset.Name, Theta: theta, Method: g.alg.Name(),
					Group: g.group, Time: baseTime, Results: len(basePairs),
				})
				restricted := join.NewJoiner(w.Context().WithMeasures(g.measure))
				ourPairs, stats := restricted.Join(w.Dataset.S, w.Dataset.T,
					defaultOptions(theta, tau, pebble.AUDP, cfg.Workers))
				res.Rows = append(res.Rows, Table14Row{
					Dataset: w.Dataset.Name, Theta: theta, Method: g.ours,
					Group: g.group, Time: stats.TotalTime(), Results: len(ourPairs),
				})
			}
		}
	}
	return res
}

// String renders Table 14.
func (r *Table14Result) String() string {
	t := newTable("Dataset", "Group", "Method", "Theta", "Results", "Time(s)")
	for _, row := range r.Rows {
		t.addRow(row.Dataset, row.Group, row.Method, f2(row.Theta), fi(row.Results), f3(row.Time.Seconds()))
	}
	return "Table 14: join time of our algorithm vs existing methods\n" + t.String()
}
