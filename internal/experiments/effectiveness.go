package experiments

import (
	"fmt"

	"github.com/aujoin/aujoin/internal/baseline"
	"github.com/aujoin/aujoin/internal/join"
	"github.com/aujoin/aujoin/internal/metrics"
	"github.com/aujoin/aujoin/internal/pebble"
)

// EffectivenessCell is one (dataset, θ, measure/algorithm) entry of
// Tables 8 and 13.
type EffectivenessCell struct {
	Dataset string
	Theta   float64
	Label   string
	Scores  metrics.PRF
}

// Table8Result reproduces Table 8: precision / recall / F-measure of every
// measure combination of the unified similarity.
type Table8Result struct {
	Cells []EffectivenessCell
}

// RunTable8 joins each workload with every measure combination and scores
// the results against the generated ground truth.
func RunTable8(cfg Config, thetas []float64) *Table8Result {
	cfg = cfg.withDefaults()
	if len(thetas) == 0 {
		thetas = []float64{0.70, 0.75}
	}
	res := &Table8Result{}
	for _, w := range BuildWorkloads(cfg) {
		for _, combo := range measureCombos {
			// A dedicated joiner whose context is restricted to the measure
			// combination: signatures, filters and verification all see only
			// the selected measures, exactly as in the paper's per-measure runs.
			restricted := join.NewJoiner(w.Context().WithMeasures(combo))
			for _, theta := range thetas {
				pairs, _ := restricted.Join(w.Dataset.S, w.Dataset.T,
					defaultOptions(theta, 2, pebble.AUDP, cfg.Workers))
				res.Cells = append(res.Cells, EffectivenessCell{
					Dataset: w.Dataset.Name,
					Theta:   theta,
					Label:   combo.String(),
					Scores:  metrics.Evaluate(pairsToSlice(pairs), w.Labels, false),
				})
			}
		}
	}
	return res
}

// String renders the result in the layout of Table 8.
func (r *Table8Result) String() string {
	t := newTable("Measure", "Dataset", "Theta", "P", "R", "F")
	for _, c := range r.Cells {
		t.addRow(c.Label, c.Dataset, f2(c.Theta), f2(c.Scores.Precision), f2(c.Scores.Recall), f2(c.Scores.F1))
	}
	return "Table 8: effectiveness w.r.t. similarity measures\n" + t.String()
}

// BestByF returns, per dataset and θ, the label with the highest F-measure;
// the paper's headline claim is that TJS wins everywhere.
func (r *Table8Result) BestByF() map[string]string {
	best := map[string]EffectivenessCell{}
	for _, c := range r.Cells {
		key := fmt.Sprintf("%s@%.2f", c.Dataset, c.Theta)
		if cur, ok := best[key]; !ok || c.Scores.F1 > cur.Scores.F1 {
			best[key] = c
		}
	}
	out := map[string]string{}
	for k, c := range best {
		out[k] = c.Label
	}
	return out
}

// Table13Result reproduces Table 13: our unified join against the
// single-measure baselines and their combination.
type Table13Result struct {
	Cells []EffectivenessCell
}

// RunTable13 scores K-Join, AdaptJoin, PKduck, Combination and the unified
// join against ground truth.
func RunTable13(cfg Config, thetas []float64) *Table13Result {
	cfg = cfg.withDefaults()
	if len(thetas) == 0 {
		thetas = []float64{0.70, 0.75}
	}
	res := &Table13Result{}
	for _, w := range BuildWorkloads(cfg) {
		kjoin := baseline.NewKJoin(w.Dataset.Tax)
		adapt := &baseline.AdaptJoin{}
		pkduck := baseline.NewPKDuck(w.Dataset.Rules)
		comb := baseline.NewCombination(kjoin, adapt, pkduck)
		algorithms := []baseline.Algorithm{kjoin, adapt, pkduck, comb}
		for _, theta := range thetas {
			for _, alg := range algorithms {
				pairs := alg.Join(w.Dataset.S, w.Dataset.T, theta)
				idx := make([][2]int, len(pairs))
				for i, p := range pairs {
					idx[i] = [2]int{p.S, p.T}
				}
				res.Cells = append(res.Cells, EffectivenessCell{
					Dataset: w.Dataset.Name,
					Theta:   theta,
					Label:   alg.Name(),
					Scores:  metrics.Evaluate(idx, w.Labels, false),
				})
			}
			ours, _ := w.Joiner.Join(w.Dataset.S, w.Dataset.T, defaultOptions(theta, 2, pebble.AUDP, cfg.Workers))
			res.Cells = append(res.Cells, EffectivenessCell{
				Dataset: w.Dataset.Name,
				Theta:   theta,
				Label:   "Ours",
				Scores:  metrics.Evaluate(pairsToSlice(ours), w.Labels, false),
			})
		}
	}
	return res
}

// String renders the result in the layout of Table 13.
func (r *Table13Result) String() string {
	t := newTable("Method", "Dataset", "Theta", "P", "R", "F")
	for _, c := range r.Cells {
		t.addRow(c.Label, c.Dataset, f2(c.Theta), f2(c.Scores.Precision), f2(c.Scores.Recall), f2(c.Scores.F1))
	}
	return "Table 13: effectiveness of our measure vs existing algorithms\n" + t.String()
}

// OursBeatsCombination reports, per dataset/θ, whether the unified join's
// F-measure is at least that of the Combination baseline — the shape the
// paper reports.
func (r *Table13Result) OursBeatsCombination() map[string]bool {
	type key struct {
		ds    string
		theta float64
	}
	ours := map[key]float64{}
	comb := map[key]float64{}
	for _, c := range r.Cells {
		k := key{c.Dataset, c.Theta}
		switch c.Label {
		case "Ours":
			ours[k] = c.Scores.F1
		case "Combination":
			comb[k] = c.Scores.F1
		}
	}
	out := map[string]bool{}
	for k, f := range ours {
		out[fmt.Sprintf("%s@%.2f", k.ds, k.theta)] = f >= comb[k]
	}
	return out
}
