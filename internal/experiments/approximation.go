package experiments

import (
	"fmt"

	"github.com/aujoin/aujoin/internal/core"
	"github.com/aujoin/aujoin/internal/datagen"
	"github.com/aujoin/aujoin/internal/metrics"
	"github.com/aujoin/aujoin/internal/sim"
)

// Table9Row holds the approximation-accuracy percentiles for one maximal
// rule size k on one dataset.
type Table9Row struct {
	Dataset     string
	K           int
	Percentiles []float64 // 2nd, 25th, 50th, 75th, 98th
	Pairs       int
}

// Table9Result reproduces Table 9: accuracy of Algorithm 1 against the
// exact (exponential) unified similarity, grouped by the maximal rule size.
type Table9Result struct {
	Rows []Table9Row
}

// RunTable9 generates, for every k in ks, a rule set whose longest side has
// k tokens, draws string pairs that exercise those rules, and reports the
// percentile distribution of approximate / exact similarity.
func RunTable9(cfg Config, ks []int, pairsPerK int) *Table9Result {
	cfg = cfg.withDefaults()
	if len(ks) == 0 {
		ks = []int{3, 4, 5, 6}
	}
	if pairsPerK <= 0 {
		pairsPerK = 60
	}
	res := &Table9Result{}
	for wi, preset := range []datagen.Config{datagen.MEDLike(cfg.MEDSize, cfg.Seed), datagen.WIKILike(cfg.WIKISize, cfg.Seed+1)} {
		for _, k := range ks {
			gen := datagen.New(datagen.Config{
				Name: preset.Name, Seed: cfg.Seed + int64(wi*100+k),
				Size: pairsPerK, VocabSize: 120,
				MinTokens: k + 1, MaxTokens: k + 4,
				TaxonomyNodes: 80, TaxonomyFanout: 5, TaxonomyDepth: 5,
				SynonymRules: 60, MaxRuleTokens: k, EntityRate: 0.35, SynonymTermRate: 0.35,
				TypoRate: 0.5, SynonymSwapRate: 0.8, TaxonomySwapRate: 0.5,
			})
			calc := core.NewCalculator(sim.NewContext(gen.Rules(), gen.Taxonomy()))
			calc.ExactBudget = 50000
			var ratios []float64
			for i := 0; i < pairsPerK; i++ {
				base := gen.BaseRecord()
				variant, _ := gen.Variant(base)
				r, complete := calc.ApproximationRatio(base, variant)
				if !complete {
					continue
				}
				ratios = append(ratios, r)
			}
			res.Rows = append(res.Rows, Table9Row{
				Dataset:     preset.Name,
				K:           k,
				Percentiles: metrics.Percentiles(ratios, 2, 25, 50, 75, 98),
				Pairs:       len(ratios),
			})
		}
	}
	return res
}

// String renders the result in the layout of Table 9.
func (r *Table9Result) String() string {
	t := newTable("Dataset", "k", "2%", "25%", "50%", "75%", "98%", "pairs")
	for _, row := range r.Rows {
		cells := []string{row.Dataset, fi(row.K)}
		for _, p := range row.Percentiles {
			cells = append(cells, f2(p))
		}
		cells = append(cells, fi(row.Pairs))
		t.addRow(cells...)
	}
	return "Table 9: approximation accuracy w.r.t. longest rule size k\n" + t.String()
}

// MedianByK returns the median accuracy per (dataset, k), used by the
// benchmark assertions on the result shape.
func (r *Table9Result) MedianByK() map[string]float64 {
	out := map[string]float64{}
	for _, row := range r.Rows {
		if len(row.Percentiles) >= 3 {
			out[fmt.Sprintf("%s/k=%d", row.Dataset, row.K)] = row.Percentiles[2]
		}
	}
	return out
}
