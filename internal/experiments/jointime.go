package experiments

import (
	"time"

	"github.com/aujoin/aujoin/internal/join"
	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/sim"
)

// TauSweepPoint is one measurement of Figures 3 and 5: the effect of the
// overlap constraint τ on signature length, candidate count and join time.
type TauSweepPoint struct {
	Dataset      string
	Method       pebble.Method
	Theta        float64
	Tau          int
	AvgSignature float64
	Candidates   int
	Results      int
	JoinTime     time.Duration
}

// TauSweepResult holds a τ sweep (Figure 3 uses several θ at fixed method;
// Figure 5 uses several methods at fixed θ).
type TauSweepResult struct {
	Title  string
	Points []TauSweepPoint
}

// RunFig3 reproduces Figure 3: for each θ, sweep τ with the AU-Filter
// (heuristics) and record signature length, candidates and join time.
func RunFig3(cfg Config) *TauSweepResult {
	cfg = cfg.withDefaults()
	res := &TauSweepResult{Title: "Figure 3: overlap constraint trade-off (AU-Filter heuristics, MED-like)"}
	w := BuildWorkloads(cfg)[0] // MED-like, as in the paper's motivation plot
	for _, theta := range cfg.Thetas {
		for _, tau := range cfg.Taus {
			pairs, stats := w.Joiner.Join(w.Dataset.S, w.Dataset.T,
				defaultOptions(theta, tau, pebble.AUHeuristic, cfg.Workers))
			res.Points = append(res.Points, TauSweepPoint{
				Dataset: w.Dataset.Name, Method: pebble.AUHeuristic, Theta: theta, Tau: tau,
				AvgSignature: (stats.AvgSignatureS + stats.AvgSignatureT) / 2,
				Candidates:   stats.Candidates,
				Results:      len(pairs),
				JoinTime:     stats.TotalTime(),
			})
		}
	}
	return res
}

// RunFig5 reproduces Figure 5: filtering power of U-Filter, AU-Filter
// (heuristics) and AU-Filter (DP) across τ at a fixed θ = 0.85.
func RunFig5(cfg Config, theta float64) *TauSweepResult {
	cfg = cfg.withDefaults()
	if theta <= 0 {
		theta = 0.85
	}
	res := &TauSweepResult{Title: "Figure 5: filtering power of the filters"}
	for _, w := range BuildWorkloads(cfg) {
		for _, method := range []pebble.Method{pebble.UFilter, pebble.AUHeuristic, pebble.AUDP} {
			for _, tau := range cfg.Taus {
				if method == pebble.UFilter && tau != cfg.Taus[0] {
					continue // U-Filter ignores τ; record it once
				}
				pairs, stats := w.Joiner.Join(w.Dataset.S, w.Dataset.T,
					defaultOptions(theta, tau, method, cfg.Workers))
				res.Points = append(res.Points, TauSweepPoint{
					Dataset: w.Dataset.Name, Method: method, Theta: theta, Tau: tau,
					AvgSignature: (stats.AvgSignatureS + stats.AvgSignatureT) / 2,
					Candidates:   stats.Candidates,
					Results:      len(pairs),
					JoinTime:     stats.TotalTime(),
				})
			}
		}
	}
	return res
}

// String renders the sweep as a table.
func (r *TauSweepResult) String() string {
	t := newTable("Dataset", "Method", "Theta", "Tau", "AvgSig", "Candidates", "Results", "Time(s)")
	for _, p := range r.Points {
		t.addRow(p.Dataset, p.Method.String(), f2(p.Theta), fi(p.Tau),
			f2(p.AvgSignature), fi(p.Candidates), fi(p.Results), f3(p.JoinTime.Seconds()))
	}
	return r.Title + "\n" + t.String()
}

// JoinTimePoint is one measurement of Figures 4, 6 and 7.
type JoinTimePoint struct {
	Dataset    string
	Label      string // method name or measure combination or size label
	Theta      float64
	Size       int
	Candidates int
	Results    int
	Suggestion time.Duration
	Filtering  time.Duration
	Verify     time.Duration
}

// Total returns the total join time of the point.
func (p JoinTimePoint) Total() time.Duration { return p.Suggestion + p.Filtering + p.Verify }

// JoinTimeResult is a collection of join-time measurements.
type JoinTimeResult struct {
	Title  string
	Points []JoinTimePoint
}

// String renders the measurements as a table.
func (r *JoinTimeResult) String() string {
	t := newTable("Dataset", "Label", "Theta", "Size", "Candidates", "Results", "Suggest(s)", "Filter(s)", "Verify(s)", "Total(s)")
	for _, p := range r.Points {
		t.addRow(p.Dataset, p.Label, f2(p.Theta), fi(p.Size), fi(p.Candidates), fi(p.Results),
			f3(p.Suggestion.Seconds()), f3(p.Filtering.Seconds()), f3(p.Verify.Seconds()), f3(p.Total().Seconds()))
	}
	return r.Title + "\n" + t.String()
}

// RunFig4 reproduces Figure 4: join time of the three proposed algorithms
// across join thresholds on both datasets.
func RunFig4(cfg Config, tau int) *JoinTimeResult {
	cfg = cfg.withDefaults()
	if tau <= 0 {
		tau = 3
	}
	res := &JoinTimeResult{Title: "Figure 4: join time of the proposed algorithms"}
	for _, w := range BuildWorkloads(cfg) {
		for _, theta := range cfg.Thetas {
			for _, method := range []pebble.Method{pebble.UFilter, pebble.AUHeuristic, pebble.AUDP} {
				pairs, stats := w.Joiner.Join(w.Dataset.S, w.Dataset.T,
					defaultOptions(theta, tau, method, cfg.Workers))
				res.Points = append(res.Points, JoinTimePoint{
					Dataset: w.Dataset.Name, Label: method.String(), Theta: theta,
					Size: len(w.Dataset.S), Candidates: stats.Candidates, Results: len(pairs),
					Filtering: stats.SignatureTime + stats.FilterTime, Verify: stats.VerifyTime,
				})
			}
		}
	}
	return res
}

// RunFig6 reproduces Figure 6: AU-Filter (DP) join time per measure
// combination.
func RunFig6(cfg Config, tau int) *JoinTimeResult {
	cfg = cfg.withDefaults()
	if tau <= 0 {
		tau = 3
	}
	res := &JoinTimeResult{Title: "Figure 6: join time of AU-Filter (DP) by similarity measures"}
	for _, w := range BuildWorkloads(cfg) {
		for _, combo := range measureCombos {
			restricted := join.NewJoiner(w.Context().WithMeasures(combo))
			for _, theta := range cfg.Thetas {
				pairs, stats := restricted.Join(w.Dataset.S, w.Dataset.T,
					defaultOptions(theta, tau, pebble.AUDP, cfg.Workers))
				res.Points = append(res.Points, JoinTimePoint{
					Dataset: w.Dataset.Name, Label: combo.String(), Theta: theta,
					Size: len(w.Dataset.S), Candidates: stats.Candidates, Results: len(pairs),
					Filtering: stats.SignatureTime + stats.FilterTime, Verify: stats.VerifyTime,
				})
			}
		}
	}
	return res
}

// RunFig7 reproduces Figure 7 and Table 10: scalability of the three join
// algorithms with growing dataset size, including the per-stage breakdown
// for AU-Filter (DP).
func RunFig7(cfg Config, sizes []int, theta float64, tau int) *JoinTimeResult {
	cfg = cfg.withDefaults()
	if theta <= 0 {
		theta = 0.9
	}
	if tau <= 0 {
		tau = 3
	}
	res := &JoinTimeResult{Title: "Figure 7 / Table 10: scalability and time breakdown"}
	workloads := BuildWorkloads(cfg)
	for _, w := range workloads {
		maxSize := len(w.Dataset.S)
		if len(sizes) == 0 {
			sizes = []int{maxSize / 3, 2 * maxSize / 3, maxSize}
		}
		for _, size := range sizes {
			if size <= 0 || size > maxSize {
				continue
			}
			s := subset(w.Dataset.S, size)
			t := subset(w.Dataset.T, size)
			for _, method := range []pebble.Method{pebble.UFilter, pebble.AUHeuristic, pebble.AUDP} {
				pairs, stats := w.Joiner.Join(s, t, defaultOptions(theta, tau, method, cfg.Workers))
				res.Points = append(res.Points, JoinTimePoint{
					Dataset: w.Dataset.Name, Label: method.String(), Theta: theta,
					Size: size, Candidates: stats.Candidates, Results: len(pairs),
					Filtering: stats.SignatureTime + stats.FilterTime, Verify: stats.VerifyTime,
				})
			}
		}
	}
	return res
}

// MeanTimeByLabel aggregates the mean total join time per label; the
// benchmarks use it to assert shape properties such as "AU-Filter (DP) is
// not slower than U-Filter on average".
func (r *JoinTimeResult) MeanTimeByLabel() map[string]time.Duration {
	sums := map[string]time.Duration{}
	counts := map[string]int{}
	for _, p := range r.Points {
		sums[p.Label] += p.Total()
		counts[p.Label]++
	}
	out := map[string]time.Duration{}
	for k, v := range sums {
		out[k] = v / time.Duration(counts[k])
	}
	return out
}

var _ = sim.SetAll
