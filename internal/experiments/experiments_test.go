package experiments

import (
	"strings"
	"testing"

	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/strutil"
)

// tinyConfig keeps unit-test runtime low; the full-size runs live in
// cmd/benchrun and bench_test.go. Under -short the datasets shrink further
// so the whole package finishes in seconds (every shape assertion below is
// size-independent; only statistical trends need the larger corpora).
func tinyConfig() Config {
	cfg := Config{
		MEDSize:  60,
		WIKISize: 70,
		Seed:     3,
		Thetas:   []float64{0.85, 0.9},
		Taus:     []int{1, 2, 3},
	}
	if testing.Short() {
		cfg.MEDSize = 30
		cfg.WIKISize = 36
	}
	return cfg
}

func TestBuildWorkloads(t *testing.T) {
	ws := BuildWorkloads(tinyConfig())
	if len(ws) != 2 {
		t.Fatalf("workloads = %d, want 2", len(ws))
	}
	for _, w := range ws {
		if len(w.Dataset.S) == 0 || len(w.Dataset.T) == 0 {
			t.Fatal("empty collections")
		}
		if len(w.Labels) <= len(w.Dataset.Truth) {
			t.Error("labels should include negatives beyond the positive truth pairs")
		}
		positives, negatives := 0, 0
		for _, v := range w.Labels {
			if v {
				positives++
			} else {
				negatives++
			}
		}
		if positives == 0 || negatives == 0 {
			t.Errorf("labels unbalanced: %d positive, %d negative", positives, negatives)
		}
		if w.Context() == nil || w.Joiner == nil {
			t.Error("workload not wired")
		}
	}
}

func TestRunTable8ShapeAndWinner(t *testing.T) {
	res := RunTable8(tinyConfig(), []float64{0.8})
	// 2 datasets × 1 θ × 7 measure combos.
	if len(res.Cells) != 14 {
		t.Fatalf("cells = %d, want 14", len(res.Cells))
	}
	out := res.String()
	if !strings.Contains(out, "TJS") || !strings.Contains(out, "MED-like") {
		t.Errorf("rendered table missing expected labels:\n%s", out)
	}
	// The unified TJS measure should achieve the best (or tied-best)
	// F-measure on every dataset — the paper's headline effectiveness claim.
	tjs := map[string]float64{}
	best := map[string]float64{}
	for _, c := range res.Cells {
		key := c.Dataset
		if c.Scores.F1 > best[key] {
			best[key] = c.Scores.F1
		}
		if c.Label == "TJS" {
			tjs[key] = c.Scores.F1
		}
	}
	for ds, b := range best {
		if tjs[ds] < b-1e-9 {
			t.Errorf("%s: TJS F1 %.3f below best %.3f", ds, tjs[ds], b)
		}
	}
	if len(res.BestByF()) == 0 {
		t.Error("BestByF empty")
	}
}

func TestRunTable13Shape(t *testing.T) {
	res := RunTable13(tinyConfig(), []float64{0.8})
	// 2 datasets × 1 θ × (4 baselines + ours).
	if len(res.Cells) != 10 {
		t.Fatalf("cells = %d, want 10", len(res.Cells))
	}
	for key, ok := range res.OursBeatsCombination() {
		if !ok {
			t.Errorf("%s: unified join F1 below the Combination baseline", key)
		}
	}
	if !strings.Contains(res.String(), "Combination") {
		t.Error("rendered table missing Combination row")
	}
}

func TestRunTable9Shape(t *testing.T) {
	cfg := tinyConfig()
	res := RunTable9(cfg, []int{3, 4}, 20)
	if len(res.Rows) != 4 { // 2 datasets × 2 k values
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Pairs == 0 {
			t.Errorf("row %+v evaluated no pairs", row)
		}
		if len(row.Percentiles) != 5 {
			t.Fatalf("row has %d percentiles", len(row.Percentiles))
		}
		for i, p := range row.Percentiles {
			if p < 0 || p > 1+1e-9 {
				t.Errorf("percentile out of range: %v", p)
			}
			if i > 0 && p < row.Percentiles[i-1]-1e-9 {
				t.Errorf("percentiles not monotone: %v", row.Percentiles)
			}
		}
		// The median accuracy should be clearly better than the worst-case
		// bound — the paper's observation that Algorithm 1 is near-optimal
		// in practice.
		if row.Percentiles[2] < 0.5 {
			t.Errorf("median accuracy %.2f unexpectedly low for k=%d", row.Percentiles[2], row.K)
		}
	}
	if len(res.MedianByK()) != 4 {
		t.Error("MedianByK size mismatch")
	}
	if !strings.Contains(res.String(), "Table 9") {
		t.Error("missing title")
	}
}

func TestRunFig3AndFig5Trends(t *testing.T) {
	cfg := tinyConfig()
	fig3 := RunFig3(cfg)
	if len(fig3.Points) != len(cfg.Thetas)*len(cfg.Taus) {
		t.Fatalf("fig3 points = %d", len(fig3.Points))
	}
	// Signature length must not shrink as τ grows, results must be
	// identical across τ, and candidates must not keep growing once τ ≥ 2
	// (the Figure 3 trade-off; between τ=1 and τ=2 the longer signatures
	// can transiently add a few candidates under per-occurrence overlap
	// counting, see DESIGN.md).
	for _, theta := range cfg.Thetas {
		var prev *TauSweepPoint
		for i := range fig3.Points {
			p := fig3.Points[i]
			if p.Theta != theta {
				continue
			}
			if prev != nil {
				if p.AvgSignature < prev.AvgSignature-1e-9 {
					t.Errorf("θ=%v: signature length decreased from %.2f to %.2f as τ grew",
						theta, prev.AvgSignature, p.AvgSignature)
				}
				if prev.Tau >= 2 && float64(p.Candidates) > float64(prev.Candidates)*1.1+5 {
					t.Errorf("θ=%v: candidates grew from %d (τ=%d) to %d (τ=%d)",
						theta, prev.Candidates, prev.Tau, p.Candidates, p.Tau)
				}
				if p.Results != prev.Results {
					t.Errorf("θ=%v: result count changed with τ (%d vs %d) — filters must not change results",
						theta, prev.Results, p.Results)
				}
			}
			prev = &fig3.Points[i]
		}
	}
	if !strings.Contains(fig3.String(), "Figure 3") {
		t.Error("fig3 title missing")
	}

	fig5 := RunFig5(cfg, 0.85)
	if len(fig5.Points) == 0 {
		t.Fatal("fig5 empty")
	}
	if !strings.Contains(fig5.String(), "Figure 5") {
		t.Error("fig5 title missing")
	}
}

func TestRunFig4Fig6Fig7Shapes(t *testing.T) {
	cfg := tinyConfig()
	cfg.Thetas = []float64{0.85}
	fig4 := RunFig4(cfg, 2)
	if len(fig4.Points) != 2*1*3 {
		t.Fatalf("fig4 points = %d", len(fig4.Points))
	}
	// All three methods return the same number of results for the same
	// dataset and θ (they only differ in filtering).
	results := map[string]map[string]int{}
	for _, p := range fig4.Points {
		if results[p.Dataset] == nil {
			results[p.Dataset] = map[string]int{}
		}
		results[p.Dataset][p.Label] = p.Results
	}
	for ds, byMethod := range results {
		var vals []int
		for _, v := range byMethod {
			vals = append(vals, v)
		}
		for _, v := range vals {
			if v != vals[0] {
				t.Errorf("%s: methods disagree on result counts: %v", ds, byMethod)
				break
			}
		}
	}
	if len(fig4.MeanTimeByLabel()) != 3 {
		t.Error("MeanTimeByLabel size")
	}

	fig6 := RunFig6(cfg, 2)
	if len(fig6.Points) != 2*7 {
		t.Fatalf("fig6 points = %d", len(fig6.Points))
	}

	fig7 := RunFig7(cfg, []int{cfg.MEDSize / 2, cfg.MEDSize}, 0.85, 2)
	if len(fig7.Points) == 0 {
		t.Fatal("fig7 empty")
	}
	// Larger inputs must never produce fewer candidates for the same method.
	byMethod := map[string][]JoinTimePoint{}
	for _, p := range fig7.Points {
		key := p.Dataset + "/" + p.Label
		byMethod[key] = append(byMethod[key], p)
	}
	for key, pts := range byMethod {
		for i := 1; i < len(pts); i++ {
			if pts[i].Size > pts[i-1].Size && pts[i].Results < pts[i-1].Results {
				t.Errorf("%s: results shrank when size grew (%d→%d)", key, pts[i-1].Results, pts[i].Results)
			}
		}
	}
	if !strings.Contains(fig7.String(), "Table 10") {
		t.Error("fig7 title missing")
	}
}

func TestRunParameterExperiments(t *testing.T) {
	cfg := tinyConfig()
	cfg.Thetas = []float64{0.85}
	cfg.Taus = []int{1, 2, 3}

	t11 := RunTable11(cfg)
	if len(t11.Rows) != 2 {
		t.Fatalf("table 11 rows = %d", len(t11.Rows))
	}
	for _, row := range t11.Rows {
		if row.SuggestedTau < 1 {
			t.Errorf("bad suggested τ: %+v", row)
		}
		if row.WorstTime < row.SuggestedTime/4 {
			t.Errorf("worst τ time %v implausibly below suggested %v", row.WorstTime, row.SuggestedTime)
		}
	}
	if !strings.Contains(t11.String(), "Table 11") {
		t.Error("table 11 title")
	}

	t12 := RunTable12(cfg, 3)
	if len(t12.Rows) != 2 {
		t.Fatalf("table 12 rows = %d", len(t12.Rows))
	}
	for _, row := range t12.Rows {
		if row.Accuracy < 0 || row.Accuracy > 1 {
			t.Errorf("accuracy out of range: %+v", row)
		}
		if row.TimeFraction < 0 || row.TimeFraction > 1 {
			t.Errorf("time fraction out of range: %+v", row)
		}
	}

	fig8 := RunFig8(cfg, []float64{0.1, 0.3})
	if len(fig8.Points) != 4 {
		t.Fatalf("fig8 points = %d", len(fig8.Points))
	}
	for _, p := range fig8.Points {
		if p.Iterations < 1 {
			t.Errorf("iterations = %d", p.Iterations)
		}
	}
	if !strings.Contains(fig8.String(), "Figure 8") {
		t.Error("fig8 title")
	}
}

func TestRunTable14Shape(t *testing.T) {
	cfg := tinyConfig()
	cfg.Thetas = []float64{0.85}
	res := RunTable14(cfg, 2)
	// 2 datasets × 1 θ × 4 groups × 2 rows (baseline + ours).
	if len(res.Rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(res.Rows))
	}
	if !strings.Contains(res.String(), "Table 14") {
		t.Error("title missing")
	}
}

func TestConfigDefaultsAndTableRendering(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.MEDSize == 0 || len(cfg.Thetas) == 0 || len(cfg.Taus) == 0 {
		t.Error("defaults not applied")
	}
	if QuickConfig().MEDSize <= 0 {
		t.Error("quick config broken")
	}
	tb := newTable("a", "bb")
	tb.addRow("1", "2")
	out := tb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "--") {
		t.Errorf("table rendering broken:\n%s", out)
	}
	if fi(3) != "3" || f2(1.5) != "1.50" || f3(0.1234) != "0.123" {
		t.Error("format helpers broken")
	}
	if got := subset(strutil.NewCollection([]string{"a b", "c d"}), 1); len(got) != 1 {
		t.Errorf("subset = %v", got)
	}
	keys := sortedKeys(map[int]string{3: "c", 1: "a"})
	if len(keys) != 2 || keys[0] != 1 {
		t.Errorf("sortedKeys = %v", keys)
	}
	_ = pebble.UFilter
}
