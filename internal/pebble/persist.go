package pebble

import (
	"fmt"
	"sort"
)

// FrequencyTable returns every key registered through Add with its document
// frequency, sorted exactly as Finalize interns them (frequency ascending,
// key ascending on ties). The pair round-trips through RestoreOrder: feeding
// it back as the frozen image reproduces the order Finalize would have
// built. It reads only the Add-time frequency table, so it is valid on an
// unfinalized order and never includes dynamically interned keys (their
// global frequencies are unknown).
func (o *Order) FrequencyTable() ([]string, []int) {
	keys := make([]string, 0, len(o.freq))
	for k := range o.freq {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		fi, fj := o.freq[keys[i]], o.freq[keys[j]]
		if fi != fj {
			return fi < fj
		}
		return keys[i] < keys[j]
	})
	freqs := make([]int, len(keys))
	for i, k := range keys {
		freqs[i] = o.freq[k]
	}
	return keys, freqs
}

// RestoreOrder reconstructs a finalized Order from its serialized image:
// the frozen prefix in dense-ID order with the document frequencies
// recorded at the original Finalize, followed by the dynamic region in
// append order. The result is indistinguishable from the original order —
// same IDs, same frequencies, same MaxFrequency, same dynamic tail — which
// is what keeps restored signatures valid prefixes and probe-side
// signature selection bit-identical after a restart.
func RestoreOrder(frozenKeys []string, freqs []int, dynamicKeys []string) (*Order, error) {
	if len(freqs) != len(frozenKeys) {
		return nil, fmt.Errorf("pebble: %d frozen keys but %d frequencies", len(frozenKeys), len(freqs))
	}
	ids := make(map[string]uint32, len(frozenKeys))
	keys := make([]string, len(frozenKeys))
	freq := make(map[string]int, len(frozenKeys))
	for i, k := range frozenKeys {
		if i > 0 {
			prevF, prevK := freqs[i-1], frozenKeys[i-1]
			if freqs[i] < prevF || (freqs[i] == prevF && k <= prevK) {
				return nil, fmt.Errorf("pebble: frozen keys not in finalize order at %d", i)
			}
		}
		if _, dup := ids[k]; dup {
			return nil, fmt.Errorf("pebble: duplicate frozen key %q", k)
		}
		ids[k] = uint32(i)
		keys[i] = k
		freq[k] = freqs[i]
	}

	o := &Order{freq: freq}
	o.once.Do(func() {
		o.ids = ids
		o.keys = keys
		if len(freqs) > 0 {
			o.maxFreq = freqs[len(freqs)-1]
		}
	})

	if len(dynamicKeys) > 0 {
		d := &dynTable{ids: make(map[string]uint32, len(dynamicKeys))}
		for i, k := range dynamicKeys {
			if _, frozen := ids[k]; frozen {
				return nil, fmt.Errorf("pebble: dynamic key %q shadows a frozen key", k)
			}
			if _, dup := d.ids[k]; dup {
				return nil, fmt.Errorf("pebble: duplicate dynamic key %q", k)
			}
			d.ids[k] = uint32(len(keys) + i)
			d.keys = append(d.keys, k)
		}
		o.dyn.Store(d)
	}
	return o, nil
}
