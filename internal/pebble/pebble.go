// Package pebble implements the unified signature structure of Section 3 of
// the paper and the three signature-selection algorithms built on it:
//
//   - U-Filter (Algorithm 2): prefix signatures guaranteeing ≥ 1 common
//     pebble between any pair of strings whose unified similarity reaches θ.
//   - AU-Filter with heuristics (Algorithm 4): signatures guaranteeing ≥ τ
//     common pebbles, using the top-(τ−1) heaviest remaining pebbles as the
//     slack bound (Inequality 10).
//   - AU-Filter with dynamic programming (Algorithm 5): the same guarantee
//     with a tighter per-segment slack bound, yielding shorter signatures.
//
// A pebble is the unified signature unit: a q-gram (Jaccard), the left-hand
// side of a synonym rule (synonym), or a taxonomy node or one of its
// ancestors (taxonomy); see Table 2 of the paper. Pebble keys are
// namespaced by measure ("g:", "s:", "t:") so that a gram can never collide
// with a rule side or an entity name in the inverted index.
package pebble

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/aujoin/aujoin/internal/core"
	"github.com/aujoin/aujoin/internal/sim"
	"github.com/aujoin/aujoin/internal/strutil"
)

// NoID marks a pebble whose key was never registered with the Order the
// pebble was interned against (possible only for probe strings unseen at
// index-build time). Unknown keys have document frequency zero, so they sort
// before every known key in the global rare-first order.
const NoID = ^uint32(0)

// Pebble is a single signature unit generated from one segment of a string
// by one similarity measure.
type Pebble struct {
	// Key is the namespaced identity of the pebble ("g:fe",
	// "s:coffee shop", "t:coffee drinks").
	Key string
	// ID is the dense interned identifier of Key in the global frequency
	// order, assigned by Order.Intern (NoID when the key is unknown to the
	// order). The inverted index and the candidate counters are keyed by ID,
	// never by the string key.
	ID uint32
	// Weight is the pebble's contribution to the similarity of its segment
	// (Table 2: 1/|G(P,q)| for grams, C(R) for rules, 1/|n| for taxonomy
	// nodes).
	Weight float64
	// Segment is the index of the segment (within the generation partition
	// of the string) this pebble was generated from.
	Segment int
	// Measure is the similarity measure that generated the pebble.
	Measure sim.Measure
}

// Generator produces pebbles for strings under a fixed similarity context.
// It is safe for concurrent use.
type Generator struct {
	Ctx *sim.Context
	seg *core.Segmenter

	// gramSigs caches, per segment text, the gram pebbles of that text with
	// an unset Segment field (the caller stamps it). Gram generation — the
	// q-gram split plus one key allocation per gram — dominates the probe
	// path's allocations, and segment texts repeat heavily across records
	// and probes, so the cache converts the hot path to a copy of an
	// immutable template. gramSigCount bounds the cache: past the cap new
	// texts are generated without being stored.
	gramSigs     sync.Map // string -> []Pebble
	gramSigCount atomic.Int64
}

// maxGramSigs caps the gram-template cache (distinct segment texts).
const maxGramSigs = 1 << 19

// NewGenerator returns a Generator over the given context.
func NewGenerator(ctx *sim.Context) *Generator {
	return &Generator{Ctx: ctx, seg: core.NewSegmenter(ctx)}
}

// Segmenter exposes the underlying segment enumerator.
func (g *Generator) Segmenter() *core.Segmenter { return g.seg }

// Partition returns the deterministic greedy partition used for pebble
// generation: scanning left to right, the longest well-defined segment
// starting at each position is taken. For "coffee shop latte Helsingki"
// this yields {coffee shop, latte, Helsingki}, matching the segments used
// in Examples 6–8 of the paper.
func (g *Generator) Partition(tokens []string) []core.Segment {
	segs := g.seg.Segments(tokens)
	// Index the longest segment starting at each position.
	bestAt := make(map[int]core.Segment, len(tokens))
	for _, s := range segs {
		cur, ok := bestAt[s.Span.Start]
		if !ok || s.Span.Len() > cur.Span.Len() {
			bestAt[s.Span.Start] = s
		}
	}
	var out []core.Segment
	for pos := 0; pos < len(tokens); {
		s, ok := bestAt[pos]
		if !ok {
			s = core.Segment{Span: strutil.Span{Start: pos, End: pos + 1}, Tokens: tokens[pos : pos+1]}
		}
		out = append(out, s)
		pos = s.Span.End
	}
	return out
}

// Pebbles generates all pebbles of the token sequence, one group per
// well-defined segment (Line 1 of Algorithms 2, 4 and 5 — "all pebbles of
// S"). The returned segment slice indexes the pebbles' Segment field. The
// pebbles are in generation order; callers sort them with an Order before
// selecting signatures.
//
// Generating pebbles for every well-defined segment (rather than one fixed
// partition) is what keeps the accumulated-similarity bound valid no matter
// which partition the verification step ends up using: the bound is a sum
// over a superset of any partition's segments. On the paper's Example 6
// string "espresso cafe Helsinki" this yields exactly the 23 pebbles the
// paper reports.
func (g *Generator) Pebbles(tokens []string) ([]Pebble, []core.Segment) {
	segments := g.seg.Segments(tokens)
	var out []Pebble
	for idx, seg := range segments {
		out = g.appendSegmentPebbles(out, seg, idx)
	}
	return out, segments
}

// gramPebbles returns the gram pebbles of one segment text with Segment
// left at zero, served from the template cache when possible.
func (g *Generator) gramPebbles(text string) []Pebble {
	if v, ok := g.gramSigs.Load(text); ok {
		return v.([]Pebble)
	}
	var tmpl []Pebble
	grams := strutil.QGrams(text, g.Ctx.GramQ())
	if len(grams) > 0 {
		tmpl = make([]Pebble, len(grams))
		w := 1 / float64(len(grams))
		for i, gram := range grams {
			tmpl[i] = Pebble{Key: "g:" + gram, Weight: w, Measure: sim.Jaccard}
		}
	}
	if g.gramSigCount.Load() < maxGramSigs {
		if _, loaded := g.gramSigs.LoadOrStore(text, tmpl); !loaded {
			g.gramSigCount.Add(1)
		}
	}
	return tmpl
}

// appendSegmentPebbles appends the pebbles of one segment per Table 2.
func (g *Generator) appendSegmentPebbles(out []Pebble, seg core.Segment, idx int) []Pebble {
	text := strutil.JoinTokens(seg.Tokens)

	if g.Ctx.JaccardEnabled() {
		for _, p := range g.gramPebbles(text) {
			p.Segment = idx
			out = append(out, p)
		}
	}

	if g.Ctx.SynonymEnabled() {
		// The synonym pebble is always the *lhs* of the rule, no matter
		// which side the segment matches, so the two sides of a rule
		// produce the same pebble key (Table 2).
		seen := map[string]float64{}
		for _, id := range g.Ctx.Rules.ByLHS(seg.Tokens) {
			r := g.Ctx.Rules.Rule(id)
			if c, ok := seen[r.LHSText()]; !ok || r.C > c {
				seen[r.LHSText()] = r.C
			}
		}
		for _, id := range g.Ctx.Rules.ByRHS(seg.Tokens) {
			r := g.Ctx.Rules.Rule(id)
			if c, ok := seen[r.LHSText()]; !ok || r.C > c {
				seen[r.LHSText()] = r.C
			}
		}
		keys := make([]string, 0, len(seen))
		for k := range seen {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out = append(out, Pebble{Key: "s:" + k, Weight: seen[k], Segment: idx, Measure: sim.Synonym})
		}
	}

	if g.Ctx.TaxonomyEnabled() {
		if node, ok := g.Ctx.Tax.LookupTokens(seg.Tokens); ok {
			depth := g.Ctx.Tax.Depth(node)
			w := 1 / float64(depth)
			for _, anc := range g.Ctx.Tax.Ancestors(node) {
				out = append(out, Pebble{Key: "t:" + g.Ctx.Tax.Name(anc), Weight: w, Segment: idx, Measure: sim.Taxonomy})
			}
		}
	}
	return out
}

// Order is the global pebble order required by prefix filtering: pebbles
// are sorted by ascending document frequency (rare pebbles first), with the
// key as tie-breaker so the order is total and identical across both join
// collections.
//
// After all Add calls, Finalize interns every key into a dense uint32 ID
// whose numeric order IS the global order: comparing IDs is equivalent to
// Less on known keys. The hot paths (signature sorting, inverted indexing,
// candidate counting) work exclusively on these IDs.
//
// # Dynamic region
//
// A finalized Order can still grow through InternDynamic: keys unseen at
// Finalize time are appended after the built prefix, in first-seen order.
// Dynamic IDs therefore sort after every frozen key — they are treated as
// maximally frequent — while the frequency order of the built prefix is
// untouched. Because the assignment is append-only, the relative order of
// any two keys never changes once both are interned, so every signature
// ever selected remains a valid prefix under every later state of the
// order; this is the invariant the dynamic join index relies on. Frequency
// order degrades as the dynamic region grows, which only costs filtering
// selectivity, never correctness — the dynamic index re-finalizes (full
// rebuild) once DynamicCount exceeds a fraction of the frozen prefix.
//
// InternDynamic serializes its callers behind the order's own small mutex,
// so any number of writers — the shards of a sharded index intern
// concurrently — may call it without external locking; all read-side
// methods (ID, Intern, Sort, KeyOf, NumKeys, Frequency) may run
// concurrently with them, as the dynamic table is swapped atomically and
// never mutated in place.
type Order struct {
	freq map[string]int

	once    sync.Once
	ids     map[string]uint32 // key -> dense ID, in (freq asc, key asc) order
	keys    []string          // dense ID -> key
	maxFreq int               // highest document frequency, cached at Finalize

	dmu sync.Mutex               // serializes InternDynamic writers
	dyn atomic.Pointer[dynTable] // append-only dynamic region, nil until first InternDynamic
}

// dynTable is one immutable state of the dynamic intern region. Writers
// clone-and-swap it; readers load it once per operation. Document
// frequencies are deliberately not tracked here: nothing consumes them (a
// rebuild re-derives true frequencies from the live records), and their
// absence lets an insert whose keys are all already interned skip the
// clone entirely.
type dynTable struct {
	ids  map[string]uint32 // key -> ID (all IDs ≥ len(Order.keys))
	keys []string          // ID - len(Order.keys) -> key
}

// NewOrder creates an empty frequency order.
func NewOrder() *Order { return &Order{freq: make(map[string]int)} }

// Add registers one string's pebbles: every distinct key counts once
// (document frequency). Add must not be called after Finalize.
func (o *Order) Add(pebbles []Pebble) {
	if o.ids != nil {
		panic("pebble: Order.Add after Finalize")
	}
	seen := map[string]struct{}{}
	for _, p := range pebbles {
		if _, ok := seen[p.Key]; ok {
			continue
		}
		seen[p.Key] = struct{}{}
		o.freq[p.Key]++
	}
}

// Finalize builds the intern table: every registered key gets a dense ID in
// (frequency asc, key asc) order. Finalize is idempotent and safe to call
// concurrently; the Order becomes read-only (and thus safe for concurrent
// use) afterwards. NewSelector finalizes its order, so explicit calls are
// only needed when using the intern table directly.
func (o *Order) Finalize() {
	o.once.Do(func() {
		keys := make([]string, 0, len(o.freq))
		for k := range o.freq {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			fi, fj := o.freq[keys[i]], o.freq[keys[j]]
			if fi != fj {
				return fi < fj
			}
			return keys[i] < keys[j]
		})
		ids := make(map[string]uint32, len(keys))
		for i, k := range keys {
			ids[k] = uint32(i)
		}
		// Frequencies are sorted ascending, so the last key carries the
		// maximum — cached here because MaxFrequency sits on the index-build
		// path (the hybrid posting cutoff consults it).
		if len(keys) > 0 {
			o.maxFreq = o.freq[keys[len(keys)-1]]
		}
		o.keys = keys
		o.ids = ids
	})
}

// MaxFrequency returns the highest document frequency recorded at Finalize
// time (0 for an empty order). Dynamically interned keys are not counted —
// their frequencies are unknown until a rebuild re-freezes the order — so
// on an order with a non-empty dynamic region the value is a lower bound.
func (o *Order) MaxFrequency() int {
	o.Finalize()
	return o.maxFreq
}

// NumKeys returns the number of interned keys, frozen prefix plus dynamic
// region; valid after Finalize.
func (o *Order) NumKeys() int { return len(o.keys) + o.DynamicCount() }

// FrozenKeys returns the number of keys interned at Finalize time.
func (o *Order) FrozenKeys() int { return len(o.keys) }

// DynamicCount returns the number of keys appended by InternDynamic since
// Finalize.
func (o *Order) DynamicCount() int {
	if d := o.dyn.Load(); d != nil {
		return len(d.keys)
	}
	return 0
}

// ID returns the interned ID of a key; ok is false when the key was never
// registered. Valid after Finalize.
func (o *Order) ID(key string) (id uint32, ok bool) {
	if id, ok = o.ids[key]; ok {
		return id, true
	}
	if d := o.dyn.Load(); d != nil {
		id, ok = d.ids[key]
	}
	return id, ok
}

// KeyOf returns the key of an interned ID; valid after Finalize.
func (o *Order) KeyOf(id uint32) string {
	if int(id) < len(o.keys) {
		return o.keys[id]
	}
	return o.dyn.Load().keys[int(id)-len(o.keys)]
}

// Intern stamps each pebble with the interned ID of its key (NoID for keys
// unknown to the order). Valid after Finalize.
func (o *Order) Intern(pebbles []Pebble) {
	dyn := o.dyn.Load()
	for i := range pebbles {
		if id, ok := o.ids[pebbles[i].Key]; ok {
			pebbles[i].ID = id
		} else if id, ok := dyn.lookup(pebbles[i].Key); ok {
			pebbles[i].ID = id
		} else {
			pebbles[i].ID = NoID
		}
	}
}

// InternDynamic registers every key of the given pebble batches that is
// unknown to the order as a new dynamic ID appended after the built prefix
// (first-seen order across the batches). It returns the number of newly
// appended keys. The dynamic table is cloned at most once per call — pass a
// whole insert batch in one call rather than looping — and not at all when
// every key is already interned. InternDynamic callers are serialized on an
// internal mutex (shards of a sharded index intern into one shared order
// concurrently, each under its own writer lock); concurrent readers are
// safe because the dynamic table is replaced wholesale, never mutated.
func (o *Order) InternDynamic(batches ...[]Pebble) int {
	o.Finalize()
	o.dmu.Lock()
	defer o.dmu.Unlock()
	old := o.dyn.Load()
	var next *dynTable
	added := 0
	for _, pebbles := range batches {
		for i := range pebbles {
			key := pebbles[i].Key
			if _, ok := o.ids[key]; ok {
				continue
			}
			if next == nil {
				if _, ok := old.lookup(key); ok {
					continue
				}
				next = old.clone()
			}
			if _, ok := next.ids[key]; !ok {
				next.ids[key] = uint32(len(o.keys) + len(next.keys))
				next.keys = append(next.keys, key)
				added++
			}
		}
	}
	if next != nil {
		o.dyn.Store(next)
	}
	return added
}

// lookup is a nil-safe dynamic-table probe.
func (d *dynTable) lookup(key string) (uint32, bool) {
	if d == nil {
		return 0, false
	}
	id, ok := d.ids[key]
	return id, ok
}

// clone deep-copies a dynamic table (nil yields an empty table).
func (d *dynTable) clone() *dynTable {
	c := &dynTable{ids: map[string]uint32{}}
	if d == nil {
		return c
	}
	c.keys = append([]string(nil), d.keys...)
	c.ids = make(map[string]uint32, len(d.ids))
	for k, v := range d.ids {
		c.ids[k] = v
	}
	return c
}

// Frequency returns the document frequency recorded at Finalize time (0 for
// keys unseen then, including dynamically interned ones — a rebuild
// re-derives true frequencies from the live records).
func (o *Order) Frequency(key string) int { return o.freq[key] }

// Less reports whether pebble a precedes pebble b in the frozen global
// order (it predates the dynamic region and ignores it; interned
// comparisons go through Sort, whose ID comparison is authoritative).
func (o *Order) Less(a, b Pebble) bool {
	fa, fb := o.freq[a.Key], o.freq[b.Key]
	if fa != fb {
		return fa < fb
	}
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	// Same key generated by different segments: order by segment for
	// determinism.
	return a.Segment < b.Segment
}

// Sort interns the pebbles and sorts them in place by the global order.
// Known keys compare by their dense IDs (one integer comparison instead of
// two map lookups and a string comparison); unknown keys have frequency
// zero, so they sort before every known key, ordered among themselves by
// key. On the frozen prefix this is exactly the order Less defines;
// dynamically interned keys compare by ID too and therefore sort after
// every frozen key (see the Order doc for why that stays sound).
func (o *Order) Sort(pebbles []Pebble) {
	o.Finalize()
	o.Intern(pebbles)
	sort.Slice(pebbles, func(i, j int) bool {
		a, b := &pebbles[i], &pebbles[j]
		ua, ub := a.ID == NoID, b.ID == NoID
		if ua || ub {
			if ua != ub {
				return ua // unknown (frequency 0) precedes known
			}
			if a.Key != b.Key {
				return a.Key < b.Key
			}
			return a.Segment < b.Segment
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Segment < b.Segment
	})
}

// BuildOrder constructs a frequency order over entire collections of
// token sequences using the given generator.
func BuildOrder(gen *Generator, collections ...[][]string) *Order {
	o := NewOrder()
	for _, coll := range collections {
		for _, tokens := range coll {
			p, _ := gen.Pebbles(tokens)
			o.Add(p)
		}
	}
	return o
}

// Keys returns the distinct keys of a pebble list, preserving first-seen
// order. Used when inserting signatures into the inverted index.
func Keys(pebbles []Pebble) []string {
	seen := map[string]struct{}{}
	var out []string
	for _, p := range pebbles {
		if _, ok := seen[p.Key]; ok {
			continue
		}
		seen[p.Key] = struct{}{}
		out = append(out, p.Key)
	}
	return out
}
