package pebble

import (
	"github.com/aujoin/aujoin/internal/core"
	"github.com/aujoin/aujoin/internal/sim"
)

// Method identifies a signature-selection algorithm.
type Method int

const (
	// UFilter is Algorithm 2: prefix signatures with a ≥ 1 overlap
	// guarantee (equivalent to AUHeuristic with τ = 1).
	UFilter Method = iota
	// AUHeuristic is Algorithm 4: the top-(τ−1)-heaviest slack bound.
	AUHeuristic
	// AUDP is Algorithm 5: the dynamic-programming slack bound.
	AUDP
)

// String returns the paper's name for the method.
func (m Method) String() string {
	switch m {
	case UFilter:
		return "U-Filter"
	case AUHeuristic:
		return "AU-Filter (heuristics)"
	case AUDP:
		return "AU-Filter (DP)"
	default:
		return "unknown"
	}
}

// Signature is the selected pebble prefix of one string together with the
// bookkeeping the join algorithms need.
type Signature struct {
	// Pebbles is the selected prefix of the globally ordered pebble list.
	Pebbles []Pebble
	// AllPebbles is the complete sorted pebble list (used by diagnostics
	// and by the adaptive estimator to re-derive signatures for other τ).
	AllPebbles []Pebble
	// MinPartition is MP(S), the lower bound on the partition size.
	MinPartition int
	// Segments is the generation partition.
	Segments []core.Segment
}

// Len returns the signature length in pebbles.
func (s Signature) Len() int { return len(s.Pebbles) }

// Keys returns the distinct pebble keys of the signature.
func (s Signature) Keys() []string { return Keys(s.Pebbles) }

// Selector generates signatures for strings given a generator, a global
// order, and a join threshold θ. It is safe for concurrent use.
type Selector struct {
	Gen   *Generator
	Order *Order
	Theta float64
}

// NewSelector creates a Selector. The order is finalized (interned) so that
// concurrent Signature calls only ever read it.
func NewSelector(gen *Generator, order *Order, theta float64) *Selector {
	order.Finalize()
	return &Selector{Gen: gen, Order: order, Theta: theta}
}

// Presig is the τ-independent part of signature computation: the interned,
// globally sorted pebble list of one string plus its accumulated-similarity
// table. Preparing once and selecting for several τ values is how the
// parameter estimator re-derives signatures without regenerating or
// re-sorting pebbles.
type Presig struct {
	// Pebbles is the complete pebble list, interned and sorted by the
	// global order.
	Pebbles []Pebble
	// Segments is the generation partition.
	Segments []core.Segment
	// MinPartition is MP(S), the lower bound on the partition size.
	MinPartition int

	acc *AccTable
}

// Prepare generates, interns and sorts the pebbles of the token sequence
// and computes its accumulated-similarity table.
func (sel *Selector) Prepare(tokens []string) Presig {
	pebbles, segments := sel.Gen.Pebbles(tokens)
	return sel.PreparePebbles(pebbles, segments, tokens)
}

// PreparePebbles is Prepare for callers that already generated the token
// sequence's pebbles (the dynamic index generates them once to intern new
// keys and then prepares from the same slice). The pebbles are interned and
// sorted in place.
func (sel *Selector) PreparePebbles(pebbles []Pebble, segments []core.Segment, tokens []string) Presig {
	sel.Order.Sort(pebbles)
	mp := sel.Gen.Segmenter().MinPartitionSize(tokens)
	pre := Presig{Pebbles: pebbles, Segments: segments, MinPartition: mp}
	if len(pebbles) > 0 {
		pre.acc = NewAccTable(pebbles)
	}
	return pre
}

// Select computes the signature prefix of a prepared pebble list for one
// method and overlap constraint τ (τ is ignored by UFilter, which always
// uses τ = 1).
func (sel *Selector) Select(pre Presig, method Method, tau int) Signature {
	if tau < 1 {
		tau = 1
	}
	sig := Signature{AllPebbles: pre.Pebbles, MinPartition: pre.MinPartition, Segments: pre.Segments}
	if len(pre.Pebbles) == 0 {
		return sig
	}
	target := sel.Theta * float64(pre.MinPartition)

	var cut int
	switch method {
	case UFilter:
		cut = selectPrefixHeuristic(pre.acc, target, 1)
	case AUHeuristic:
		cut = selectPrefixHeuristic(pre.acc, target, tau)
	case AUDP:
		cut = selectPrefixDP(pre.acc, pre.Segments, target, tau)
	default:
		cut = selectPrefixHeuristic(pre.acc, target, tau)
	}
	sig.Pebbles = pre.Pebbles[:cut]
	return sig
}

// Signature computes the pebble signature of the token sequence with the
// given method and overlap constraint τ.
func (sel *Selector) Signature(tokens []string, method Method, tau int) Signature {
	return sel.Select(sel.Prepare(tokens), method, tau)
}

// selectPrefixHeuristic implements Algorithms 2 and 4: find the largest
// 1-based index i such that AS(i) + TW_{τ-1}(B[1, i-1]) ≥ target and return
// i (the signature length). Returns 0 when even the whole pebble list
// cannot reach the target.
func selectPrefixHeuristic(acc *AccTable, target float64, tau int) int {
	for i := acc.Len(); i >= 1; i-- {
		bound := acc.AS(i) + acc.TopWeights(i-1, tau-1)
		if bound >= target-1e-12 {
			return i
		}
	}
	return 0
}

// selectPrefixDP implements Algorithm 5: the slack for inserting τ−1
// pebbles from the prefix is bounded per segment by the dynamic program of
// Equations (12)–(14), which is never larger than the heuristic's
// TW_{τ-1} bound, so the resulting signatures are never longer.
func selectPrefixDP(acc *AccTable, segments []core.Segment, target float64, tau int) int {
	t := len(segments)

	// W[p][d] (flat, row p at w[p*tau:]) and the accessory row V are
	// allocated once and reused across prefix positions; per-iteration
	// allocations here used to dominate the whole signature phase.
	w := make([]float64, (t+1)*tau)
	v := make([]float64, tau)

	for i := acc.Len(); i >= 1; i-- {
		if acc.AS(i) >= target-1e-12 {
			return i
		}
		// W[p][d]: maximal similarity increment achievable by inserting d
		// pebbles of the first p segments from B[1, i-1].
		for k := range w {
			w[k] = 0
		}
		reached := false
		for p := 1; p <= t && !reached; p++ {
			segIdx := p - 1
			prev, row := w[(p-1)*tau:p*tau], w[p*tau:(p+1)*tau]
			// Accessory table row V[p][c] per Eq. (13)-(14); V[p][0] = 0.
			// The suffix weight of each measure's group is the same for
			// every c, so it is computed once per (i, P) rather than once
			// per R(P, i, c) evaluation.
			var sfx [numMeasures]float64
			for mi, f := range dpMeasures {
				sfx[mi] = acc.SuffixWeightGroup(i, segIdx, f)
			}
			r0 := 0.0
			for _, s := range sfx {
				if s > r0 {
					r0 = s
				}
			}
			for c := 1; c < tau; c++ {
				best := 0.0
				for mi, f := range dpMeasures {
					val := sfx[mi] + acc.TopWeightsGroup(i-1, c, segIdx, f)
					if val > best {
						best = val
					}
				}
				v[c] = best - r0
			}
			for d := 1; d < tau; d++ {
				best := 0.0
				for c := 0; c <= d; c++ {
					cand := prev[d-c] + v[c]
					if cand > best {
						best = cand
					}
				}
				row[d] = best
				if acc.AS(i)+row[d] >= target-1e-12 {
					reached = true
					break
				}
			}
			// Carry forward d = 0 (always 0) implicitly; also make sure
			// W[p][d] is monotone in p by taking the previous row when the
			// current segment adds nothing.
			for d := 1; d < tau; d++ {
				if prev[d] > row[d] {
					row[d] = prev[d]
				}
			}
		}
		if reached {
			return i
		}
		// Check the completed table too (covers tau == 1, where the inner
		// loops never run).
		if acc.AS(i)+w[t*tau+tau-1] >= target-1e-12 {
			return i
		}
	}
	return 0
}

// dpMeasures enumerates the measures R(P, i, c) of Eq. (14) maximizes over.
var dpMeasures = [numMeasures]sim.Measure{sim.Jaccard, sim.Synonym, sim.Taxonomy}
