package pebble

import (
	"sort"

	"github.com/aujoin/aujoin/internal/sim"
)

// numMeasures is the number of similarity measures pebbles can carry
// (sim.Jaccard, sim.Synonym, sim.Taxonomy); group IDs are
// segment*numMeasures + measure.
const numMeasures = 3

// AccTable holds the accumulated-similarity suffix sums of a sorted pebble
// list: AS(i) for every 1-based position i, where
//
//	AS(i, S) = Σ_P max_f W(B_{P,f}[i, n])          (Definition 4)
//
// i.e. the maximal similarity the pebbles from position i to the end could
// still contribute, assuming every one of them also occurs in the partner
// string.
//
// An AccTable is not safe for concurrent use: the top-weight queries share
// one scratch buffer so that the signature-selection loops allocate nothing
// per iteration.
type AccTable struct {
	pebbles []Pebble
	// as[i] = AS(i+1) in the 1-based notation of the paper, for i in [0, n);
	// as[n] = 0.
	as []float64
	// scratch backs the weight lists of TopWeightsGroup.
	scratch []float64
	// groupPos[g] lists the positions (ascending) of group g's pebbles,
	// g = segment*numMeasures + measure. The selection DP queries one group
	// at a time for every (position, segment) cell; indexing by group keeps
	// those queries proportional to the group's size instead of rescanning
	// the whole pebble list per cell.
	groupPos [][]int32
	// topPrefix[c] caches TW_c(B[1, p]) for every prefix length p, built
	// lazily on the first TopWeights call with that c (selection runs with
	// one τ at a time; the estimator asks for a handful).
	topPrefix map[int][]float64
}

// NewAccTable computes the accumulated-similarity table of a pebble list
// already sorted by the global order.
func NewAccTable(sorted []Pebble) *AccTable {
	n := len(sorted)
	t := &AccTable{pebbles: sorted, as: make([]float64, n+1)}

	maxSeg := -1
	for i := range sorted {
		if sorted[i].Segment > maxSeg {
			maxSeg = sorted[i].Segment
		}
	}
	nGroups := (maxSeg + 1) * numMeasures

	// Suffix accumulation of Definition 4, right to left: whenever a group's
	// running sum overtakes its segment's best measure, AS grows by the
	// difference.
	groupSum := make([]float64, nGroups)
	segMax := make([]float64, maxSeg+1)
	counts := make([]int32, nGroups)
	total := 0.0
	for i := n - 1; i >= 0; i-- {
		p := sorted[i]
		g := p.Segment*numMeasures + int(p.Measure)
		groupSum[g] += p.Weight
		if groupSum[g] > segMax[p.Segment] {
			total += groupSum[g] - segMax[p.Segment]
			segMax[p.Segment] = groupSum[g]
		}
		t.as[i] = total
		counts[g]++
	}

	// Bucket the positions of each group, ascending, into one shared arena.
	arena := make([]int32, n)
	t.groupPos = make([][]int32, nGroups)
	off := int32(0)
	for g, c := range counts {
		t.groupPos[g] = arena[off : off : off+c]
		off += c
	}
	for i := range sorted {
		g := sorted[i].Segment*numMeasures + int(sorted[i].Measure)
		t.groupPos[g] = append(t.groupPos[g], int32(i))
	}
	return t
}

// Len returns the number of pebbles.
func (t *AccTable) Len() int { return len(t.pebbles) }

// AS returns AS(i, S) for a 1-based position i in [1, n+1]; AS(n+1) = 0
// (an empty suffix contributes nothing).
func (t *AccTable) AS(i int) float64 {
	if i < 1 {
		i = 1
	}
	if i > len(t.pebbles) {
		return 0
	}
	return t.as[i-1]
}

// Total returns AS(1): the maximal similarity contribution of all pebbles.
func (t *AccTable) Total() float64 { return t.AS(1) }

// TopWeights returns the sum of the c heaviest pebble weights among the
// first `prefix` pebbles (1-based count), i.e. TW_c(B[1, prefix]) of Eq. (8).
// The per-prefix sums are precomputed per c, so the heuristic's scan over
// candidate cut positions pays O(1) per position instead of re-selecting
// the top weights of each prefix.
func (t *AccTable) TopWeights(prefix, c int) float64 {
	if c <= 0 || prefix <= 0 {
		return 0
	}
	if prefix > len(t.pebbles) {
		prefix = len(t.pebbles)
	}
	row, ok := t.topPrefix[c]
	if !ok {
		row = t.buildTopPrefix(c)
		if t.topPrefix == nil {
			t.topPrefix = make(map[int][]float64, 2)
		}
		t.topPrefix[c] = row
	}
	return row[prefix]
}

// buildTopPrefix computes TW_c(B[1, p]) for every p in [0, n], maintaining
// a descending top-c window over one left-to-right sweep. Each prefix sum
// adds the window's values largest-first — the same addition order as a
// per-prefix selection sort, so the cached sums are bit-identical to the
// scan they replace.
func (t *AccTable) buildTopPrefix(c int) []float64 {
	n := len(t.pebbles)
	row := make([]float64, n+1)
	top := make([]float64, 0, c)
	for p := 1; p <= n; p++ {
		w := t.pebbles[p-1].Weight
		if len(top) < c {
			top = append(top, w)
			for j := len(top) - 1; j > 0 && top[j] > top[j-1]; j-- {
				top[j], top[j-1] = top[j-1], top[j]
			}
		} else if w > top[c-1] {
			top[c-1] = w
			for j := c - 1; j > 0 && top[j] > top[j-1]; j-- {
				top[j], top[j-1] = top[j-1], top[j]
			}
		}
		s := 0.0
		for _, v := range top {
			s += v
		}
		row[p] = s
	}
	return row
}

// TopWeightsGroup returns TW_c over the first `prefix` pebbles restricted to
// one (segment, measure) group — the quantity the DP's accessory table
// needs (Eq. 14, second term).
func (t *AccTable) TopWeightsGroup(prefix, c, segment int, measure sim.Measure) float64 {
	if c <= 0 || prefix <= 0 {
		return 0
	}
	if prefix > len(t.pebbles) {
		prefix = len(t.pebbles)
	}
	g := segment*numMeasures + int(measure)
	if g < 0 || g >= len(t.groupPos) {
		return 0
	}
	weights := t.scratch[:0]
	for _, idx := range t.groupPos[g] {
		if int(idx) >= prefix {
			break
		}
		weights = append(weights, t.pebbles[idx].Weight)
	}
	t.scratch = weights
	return sumTopK(weights, c)
}

// SuffixWeightGroup returns W(B_{P,f}[i, n]) for a 1-based position i: the
// total weight of the group's pebbles from position i to the end (Eq. 14,
// first term).
func (t *AccTable) SuffixWeightGroup(i, segment int, measure sim.Measure) float64 {
	if i < 1 {
		i = 1
	}
	g := segment*numMeasures + int(measure)
	if g < 0 || g >= len(t.groupPos) {
		return 0
	}
	pos := t.groupPos[g]
	start := int32(i - 1)
	lo := sort.Search(len(pos), func(k int) bool { return pos[k] >= start })
	total := 0.0
	for _, idx := range pos[lo:] {
		total += t.pebbles[idx].Weight
	}
	return total
}

// sumTopK returns the sum of the k largest values (all values if k ≥ len),
// reordering values in the process.
func sumTopK(values []float64, k int) float64 {
	if k >= len(values) {
		total := 0.0
		for _, v := range values {
			total += v
		}
		return total
	}
	// In-place partial selection sort: k is tiny (τ−1), values are few
	// dozen, and the caller's buffer is scratch anyway.
	total := 0.0
	for picked := 0; picked < k; picked++ {
		bestIdx := picked
		for i := picked + 1; i < len(values); i++ {
			if values[i] > values[bestIdx] {
				bestIdx = i
			}
		}
		values[picked], values[bestIdx] = values[bestIdx], values[picked]
		total += values[picked]
	}
	return total
}
