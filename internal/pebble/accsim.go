package pebble

import "github.com/aujoin/aujoin/internal/sim"

// groupKey identifies a (segment, measure) pebble group, the granularity at
// which the accumulated similarity (Definition 4) takes its inner maximum.
type groupKey struct {
	segment int
	measure sim.Measure
}

// AccTable holds the accumulated-similarity suffix sums of a sorted pebble
// list: AS(i) for every 1-based position i, where
//
//	AS(i, S) = Σ_P max_f W(B_{P,f}[i, n])          (Definition 4)
//
// i.e. the maximal similarity the pebbles from position i to the end could
// still contribute, assuming every one of them also occurs in the partner
// string.
//
// An AccTable is not safe for concurrent use: the top-weight queries share
// one scratch buffer so that the signature-selection loops allocate nothing
// per iteration.
type AccTable struct {
	pebbles []Pebble
	// as[i] = AS(i+1) in the 1-based notation of the paper, for i in [0, n);
	// as[n] = 0.
	as []float64
	// scratch backs the weight lists of TopWeights / TopWeightsGroup.
	scratch []float64
}

// NewAccTable computes the accumulated-similarity table of a pebble list
// already sorted by the global order.
func NewAccTable(sorted []Pebble) *AccTable {
	n := len(sorted)
	t := &AccTable{pebbles: sorted, as: make([]float64, n+1)}
	groupSum := map[groupKey]float64{}
	segMax := map[int]float64{}
	total := 0.0
	for i := n - 1; i >= 0; i-- {
		p := sorted[i]
		gk := groupKey{segment: p.Segment, measure: p.Measure}
		groupSum[gk] += p.Weight
		if groupSum[gk] > segMax[p.Segment] {
			total += groupSum[gk] - segMax[p.Segment]
			segMax[p.Segment] = groupSum[gk]
		}
		t.as[i] = total
	}
	return t
}

// Len returns the number of pebbles.
func (t *AccTable) Len() int { return len(t.pebbles) }

// AS returns AS(i, S) for a 1-based position i in [1, n+1]; AS(n+1) = 0
// (an empty suffix contributes nothing).
func (t *AccTable) AS(i int) float64 {
	if i < 1 {
		i = 1
	}
	if i > len(t.pebbles) {
		return 0
	}
	return t.as[i-1]
}

// Total returns AS(1): the maximal similarity contribution of all pebbles.
func (t *AccTable) Total() float64 { return t.AS(1) }

// TopWeights returns the sum of the c heaviest pebble weights among the
// first `prefix` pebbles (1-based count), i.e. TW_c(B[1, prefix]) of Eq. (8).
func (t *AccTable) TopWeights(prefix, c int) float64 {
	if c <= 0 || prefix <= 0 {
		return 0
	}
	if prefix > len(t.pebbles) {
		prefix = len(t.pebbles)
	}
	weights := t.scratch[:0]
	for i := 0; i < prefix; i++ {
		weights = append(weights, t.pebbles[i].Weight)
	}
	t.scratch = weights
	return sumTopK(weights, c)
}

// TopWeightsGroup returns TW_c over the first `prefix` pebbles restricted to
// one (segment, measure) group — the quantity the DP's accessory table
// needs (Eq. 14, second term).
func (t *AccTable) TopWeightsGroup(prefix, c, segment int, measure sim.Measure) float64 {
	if c <= 0 || prefix <= 0 {
		return 0
	}
	if prefix > len(t.pebbles) {
		prefix = len(t.pebbles)
	}
	weights := t.scratch[:0]
	for i := 0; i < prefix; i++ {
		p := t.pebbles[i]
		if p.Segment == segment && p.Measure == measure {
			weights = append(weights, p.Weight)
		}
	}
	t.scratch = weights
	return sumTopK(weights, c)
}

// SuffixWeightGroup returns W(B_{P,f}[i, n]) for a 1-based position i: the
// total weight of the group's pebbles from position i to the end (Eq. 14,
// first term).
func (t *AccTable) SuffixWeightGroup(i, segment int, measure sim.Measure) float64 {
	if i < 1 {
		i = 1
	}
	total := 0.0
	for idx := i - 1; idx < len(t.pebbles); idx++ {
		p := t.pebbles[idx]
		if p.Segment == segment && p.Measure == measure {
			total += p.Weight
		}
	}
	return total
}

// sumTopK returns the sum of the k largest values (all values if k ≥ len),
// reordering values in the process.
func sumTopK(values []float64, k int) float64 {
	if k >= len(values) {
		total := 0.0
		for _, v := range values {
			total += v
		}
		return total
	}
	// In-place partial selection sort: k is tiny (τ−1), values are few
	// dozen, and the caller's buffer is scratch anyway.
	total := 0.0
	for picked := 0; picked < k; picked++ {
		bestIdx := picked
		for i := picked + 1; i < len(values); i++ {
			if values[i] > values[bestIdx] {
				bestIdx = i
			}
		}
		values[picked], values[bestIdx] = values[bestIdx], values[picked]
		total += values[picked]
	}
	return total
}
