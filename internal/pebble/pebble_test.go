package pebble

import (
	"math"
	"strings"
	"testing"

	"github.com/aujoin/aujoin/internal/sim"
	"github.com/aujoin/aujoin/internal/strutil"
	"github.com/aujoin/aujoin/internal/synonym"
	"github.com/aujoin/aujoin/internal/taxonomy"
)

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// paperContext reproduces the knowledge sources of Figure 1.
func paperContext() *sim.Context {
	rules := synonym.NewRuleSet()
	rules.MustAdd("cake", "gateau", 1)
	rules.MustAdd("coffee shop", "cafe", 1)
	tax := taxonomy.NewTree("Wikipedia")
	food := tax.MustAddChild(tax.Root(), "food")
	coffee := tax.MustAddChild(food, "coffee")
	drinks := tax.MustAddChild(coffee, "coffee drinks")
	tax.MustAddChild(drinks, "espresso")
	tax.MustAddChild(drinks, "latte")
	cake := tax.MustAddChild(food, "cake")
	tax.MustAddChild(cake, "apple cake")
	return sim.NewContext(rules, tax)
}

func TestPebblesExample6Count(t *testing.T) {
	gen := NewGenerator(paperContext())
	tokens := strutil.Tokenize("espresso cafe Helsinki")
	pebbles, segments := gen.Pebbles(tokens)
	// Example 6: "Line 1 generates 23 pebbles": espresso contributes 7
	// 2-grams + 5 taxonomy ancestors, cafe 3 grams + 1 synonym lhs,
	// Helsinki 7 grams.
	if len(pebbles) != 23 {
		t.Fatalf("pebble count = %d, want 23", len(pebbles))
	}
	if len(segments) != 3 {
		t.Fatalf("segments = %d, want 3", len(segments))
	}
	// Count per measure.
	counts := map[sim.Measure]int{}
	for _, p := range pebbles {
		counts[p.Measure]++
	}
	if counts[sim.Jaccard] != 17 || counts[sim.Taxonomy] != 5 || counts[sim.Synonym] != 1 {
		t.Errorf("per-measure counts = %v, want 17 J, 5 T, 1 S", counts)
	}
}

func TestPebblesTable2Weights(t *testing.T) {
	gen := NewGenerator(paperContext())
	// Table 2, segment "coffee": grams weight 1/5, taxonomy pebbles
	// {wikipedia, food, coffee} weight 1/3.
	pebbles, _ := gen.Pebbles([]string{"coffee"})
	var gramW, taxW float64
	taxKeys := map[string]bool{}
	for _, p := range pebbles {
		switch p.Measure {
		case sim.Jaccard:
			gramW = p.Weight
		case sim.Taxonomy:
			taxW = p.Weight
			taxKeys[p.Key] = true
		}
	}
	if !approxEq(gramW, 0.2) {
		t.Errorf("gram weight = %v, want 0.2", gramW)
	}
	if !approxEq(taxW, 1.0/3.0) {
		t.Errorf("taxonomy weight = %v, want 1/3", taxW)
	}
	for _, k := range []string{"t:wikipedia", "t:food", "t:coffee"} {
		if !taxKeys[k] {
			t.Errorf("missing taxonomy pebble %q", k)
		}
	}

	// Table 2, segment "cafe": grams weight 1/3, synonym pebble is the
	// *lhs* "coffee shop" with weight 1.
	pebbles, _ = gen.Pebbles([]string{"cafe"})
	var synKey string
	var synW float64
	for _, p := range pebbles {
		if p.Measure == sim.Synonym {
			synKey, synW = p.Key, p.Weight
		}
		if p.Measure == sim.Jaccard && !approxEq(p.Weight, 1.0/3.0) {
			t.Errorf("cafe gram weight = %v, want 1/3", p.Weight)
		}
	}
	if synKey != "s:coffee shop" || !approxEq(synW, 1) {
		t.Errorf("synonym pebble = %q/%v, want s:coffee shop / 1", synKey, synW)
	}
}

func TestSynonymPebbleSharedAcrossRuleSides(t *testing.T) {
	gen := NewGenerator(paperContext())
	// Both "coffee shop" (lhs) and "cafe" (rhs) must emit the same synonym
	// pebble key so that their signatures can overlap.
	pebblesLHS, _ := gen.Pebbles(strutil.Tokenize("coffee shop"))
	pebblesRHS, _ := gen.Pebbles(strutil.Tokenize("cafe"))
	has := func(list []Pebble, key string) bool {
		for _, p := range list {
			if p.Key == key {
				return true
			}
		}
		return false
	}
	if !has(pebblesLHS, "s:coffee shop") || !has(pebblesRHS, "s:coffee shop") {
		t.Error("both rule sides must produce the pebble s:coffee shop")
	}
}

func TestTaxonomyPebblesShareAncestors(t *testing.T) {
	gen := NewGenerator(paperContext())
	pl, _ := gen.Pebbles([]string{"latte"})
	pe, _ := gen.Pebbles([]string{"espresso"})
	keys := func(list []Pebble) map[string]bool {
		m := map[string]bool{}
		for _, p := range list {
			if p.Measure == sim.Taxonomy {
				m[p.Key] = true
			}
		}
		return m
	}
	kl, ke := keys(pl), keys(pe)
	shared := 0
	for k := range kl {
		if ke[k] {
			shared++
		}
	}
	// Their LCA is "coffee drinks" at depth 4, so they share 4 ancestor
	// pebbles (wikipedia, food, coffee, coffee drinks).
	if shared != 4 {
		t.Errorf("shared taxonomy pebbles = %d, want 4", shared)
	}
}

func TestPartitionLongestMatch(t *testing.T) {
	gen := NewGenerator(paperContext())
	segs := gen.Partition(strutil.Tokenize("coffee shop latte Helsingki"))
	var texts []string
	for _, s := range segs {
		texts = append(texts, strutil.JoinTokens(s.Tokens))
	}
	want := []string{"coffee shop", "latte", "helsingki"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Errorf("Partition = %v, want %v", texts, want)
	}
}

func TestOrderSortAndFrequency(t *testing.T) {
	gen := NewGenerator(paperContext())
	order := NewOrder()
	corpus := [][]string{
		strutil.Tokenize("coffee shop latte"),
		strutil.Tokenize("coffee shop espresso"),
		strutil.Tokenize("coffee cake"),
	}
	for _, tokens := range corpus {
		p, _ := gen.Pebbles(tokens)
		order.Add(p)
	}
	// "g:co" appears in every string, so its frequency is 3.
	if f := order.Frequency("g:co"); f != 3 {
		t.Errorf("Frequency(g:co) = %d, want 3", f)
	}
	if f := order.Frequency("g:zz"); f != 0 {
		t.Errorf("Frequency(unknown) = %d, want 0", f)
	}
	pebbles, _ := gen.Pebbles(strutil.Tokenize("coffee shop latte"))
	order.Sort(pebbles)
	for i := 1; i < len(pebbles); i++ {
		fa, fb := order.Frequency(pebbles[i-1].Key), order.Frequency(pebbles[i].Key)
		if fa > fb {
			t.Fatalf("pebbles not sorted by ascending frequency at %d: %d > %d", i, fa, fb)
		}
	}
}

func TestBuildOrderAndKeys(t *testing.T) {
	gen := NewGenerator(paperContext())
	collA := [][]string{strutil.Tokenize("coffee shop"), strutil.Tokenize("latte art")}
	collB := [][]string{strutil.Tokenize("espresso cafe")}
	order := BuildOrder(gen, collA, collB)
	if order.Frequency("s:coffee shop") != 2 { // from "coffee shop" and "cafe"
		t.Errorf("Frequency(s:coffee shop) = %d, want 2", order.Frequency("s:coffee shop"))
	}
	p, _ := gen.Pebbles(strutil.Tokenize("coffee coffee"))
	keys := Keys(p)
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %q from Keys", k)
		}
		seen[k] = true
	}
}

func TestAccTable(t *testing.T) {
	gen := NewGenerator(paperContext())
	order := NewOrder()
	tokens := strutil.Tokenize("espresso cafe Helsinki")
	pebbles, _ := gen.Pebbles(tokens)
	order.Add(pebbles)
	order.Sort(pebbles)
	acc := NewAccTable(pebbles)
	if acc.Len() != len(pebbles) {
		t.Fatalf("Len = %d, want %d", acc.Len(), len(pebbles))
	}
	// AS is non-increasing in i and AS(n+1) = 0.
	for i := 1; i < acc.Len(); i++ {
		if acc.AS(i) < acc.AS(i+1)-1e-12 {
			t.Fatalf("AS not non-increasing at %d: %v < %v", i, acc.AS(i), acc.AS(i+1))
		}
	}
	if acc.AS(acc.Len()+1) != 0 {
		t.Errorf("AS beyond end = %v, want 0", acc.AS(acc.Len()+1))
	}
	if acc.AS(0) != acc.AS(1) {
		t.Errorf("AS(0) should clamp to AS(1)")
	}
	// The total accumulated similarity of this string: each of the three
	// segments contributes its best measure — espresso max(1, 1/5·5=1)=1,
	// cafe max(1 gram sum, synonym 1)=1, helsinki 1 → total 3.
	if !approxEq(acc.Total(), 3) {
		t.Errorf("Total = %v, want 3", acc.Total())
	}
	// TopWeights: the heaviest pebble is the synonym pebble with weight 1.
	if got := acc.TopWeights(acc.Len(), 1); !approxEq(got, 1) {
		t.Errorf("TopWeights(all,1) = %v, want 1", got)
	}
	if got := acc.TopWeights(0, 3); got != 0 {
		t.Errorf("TopWeights(0,·) = %v, want 0", got)
	}
	if got := acc.TopWeights(acc.Len(), 0); got != 0 {
		t.Errorf("TopWeights(·,0) = %v, want 0", got)
	}
	// Asking for more pebbles than exist sums everything.
	all := 0.0
	for _, p := range pebbles {
		all += p.Weight
	}
	if got := acc.TopWeights(acc.Len()+10, len(pebbles)+10); !approxEq(got, all) {
		t.Errorf("TopWeights(all, many) = %v, want %v", got, all)
	}
}

func TestAccTableGroups(t *testing.T) {
	gen := NewGenerator(paperContext())
	tokens := strutil.Tokenize("espresso cafe")
	pebbles, segments := gen.Pebbles(tokens)
	order := NewOrder()
	order.Add(pebbles)
	order.Sort(pebbles)
	acc := NewAccTable(pebbles)
	// Find the segment index of "cafe".
	cafeIdx := -1
	for i, s := range segments {
		if strutil.JoinTokens(s.Tokens) == "cafe" {
			cafeIdx = i
		}
	}
	if cafeIdx < 0 {
		t.Fatal("cafe segment not found")
	}
	// The full-suffix group weight of cafe under Jaccard is 1 (3 grams of
	// weight 1/3), under Synonym 1, under Taxonomy 0.
	if got := acc.SuffixWeightGroup(1, cafeIdx, sim.Jaccard); !approxEq(got, 1) {
		t.Errorf("SuffixWeightGroup(J) = %v, want 1", got)
	}
	if got := acc.SuffixWeightGroup(1, cafeIdx, sim.Synonym); !approxEq(got, 1) {
		t.Errorf("SuffixWeightGroup(S) = %v, want 1", got)
	}
	if got := acc.SuffixWeightGroup(1, cafeIdx, sim.Taxonomy); got != 0 {
		t.Errorf("SuffixWeightGroup(T) = %v, want 0", got)
	}
	// TopWeightsGroup over the full prefix with c=2 for Jaccard = 2/3.
	if got := acc.TopWeightsGroup(acc.Len(), 2, cafeIdx, sim.Jaccard); !approxEq(got, 2.0/3.0) {
		t.Errorf("TopWeightsGroup = %v, want 2/3", got)
	}
	if got := acc.TopWeightsGroup(0, 2, cafeIdx, sim.Jaccard); got != 0 {
		t.Errorf("TopWeightsGroup(prefix 0) = %v, want 0", got)
	}
}

func TestSumTopK(t *testing.T) {
	vals := []float64{0.2, 0.9, 0.5, 0.7}
	if got := sumTopK(vals, 2); !approxEq(got, 1.6) {
		t.Errorf("sumTopK = %v, want 1.6", got)
	}
	if got := sumTopK(vals, 10); !approxEq(got, 2.3) {
		t.Errorf("sumTopK all = %v, want 2.3", got)
	}
	if got := sumTopK(nil, 3); got != 0 {
		t.Errorf("sumTopK nil = %v, want 0", got)
	}
}

func TestMethodString(t *testing.T) {
	if UFilter.String() != "U-Filter" {
		t.Error("UFilter name")
	}
	if AUHeuristic.String() != "AU-Filter (heuristics)" {
		t.Error("AUHeuristic name")
	}
	if AUDP.String() != "AU-Filter (DP)" {
		t.Error("AUDP name")
	}
	if Method(9).String() != "unknown" {
		t.Error("unknown method name")
	}
}
