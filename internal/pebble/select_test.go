package pebble

import (
	"math/rand"
	"testing"

	"github.com/aujoin/aujoin/internal/core"
	"github.com/aujoin/aujoin/internal/sim"
	"github.com/aujoin/aujoin/internal/strutil"
	"github.com/aujoin/aujoin/internal/synonym"
	"github.com/aujoin/aujoin/internal/taxonomy"
)

// testSelector builds a selector whose global order is derived from a small
// corpus containing the paper's POI strings.
func testSelector(t *testing.T, theta float64) (*Selector, *sim.Context) {
	t.Helper()
	ctx := paperContext()
	gen := NewGenerator(ctx)
	corpus := [][]string{
		strutil.Tokenize("coffee shop latte Helsingki"),
		strutil.Tokenize("espresso cafe Helsinki"),
		strutil.Tokenize("apple cake bakery"),
		strutil.Tokenize("cake gateau shop"),
		strutil.Tokenize("coffee house espresso"),
	}
	order := BuildOrder(gen, corpus)
	return NewSelector(gen, order, theta), ctx
}

func TestSignatureBasics(t *testing.T) {
	sel, _ := testSelector(t, 0.8)
	tokens := strutil.Tokenize("espresso cafe Helsinki")
	sig := sel.Signature(tokens, UFilter, 1)
	if sig.Len() == 0 {
		t.Fatal("U-Filter signature should not be empty for a matchable string")
	}
	if sig.Len() > len(sig.AllPebbles) {
		t.Fatal("signature longer than pebble list")
	}
	if sig.MinPartition != 3 {
		t.Errorf("MinPartition = %d, want 3", sig.MinPartition)
	}
	if len(sig.Keys()) == 0 {
		t.Error("signature keys empty")
	}
	if len(sig.Segments) == 0 {
		t.Error("segments missing")
	}
	// The signature must be a prefix of the sorted pebble list.
	for i, p := range sig.Pebbles {
		if p != sig.AllPebbles[i] {
			t.Fatalf("signature is not a prefix at %d", i)
		}
	}
}

func TestSignatureEmptyString(t *testing.T) {
	sel, _ := testSelector(t, 0.8)
	sig := sel.Signature(nil, AUDP, 3)
	if sig.Len() != 0 || len(sig.AllPebbles) != 0 {
		t.Errorf("empty string signature = %+v", sig)
	}
}

func TestSignatureLengthMonotoneInTau(t *testing.T) {
	sel, _ := testSelector(t, 0.8)
	tokens := strutil.Tokenize("coffee shop latte Helsingki")
	prev := -1
	for tau := 1; tau <= 6; tau++ {
		sig := sel.Signature(tokens, AUHeuristic, tau)
		if prev >= 0 && sig.Len() < prev {
			t.Fatalf("heuristic signature length decreased from %d to %d at τ=%d", prev, sig.Len(), tau)
		}
		prev = sig.Len()
	}
	prev = -1
	for tau := 1; tau <= 6; tau++ {
		sig := sel.Signature(tokens, AUDP, tau)
		if prev >= 0 && sig.Len() < prev {
			t.Fatalf("DP signature length decreased from %d to %d at τ=%d", prev, sig.Len(), tau)
		}
		prev = sig.Len()
	}
}

func TestDPNeverLongerThanHeuristic(t *testing.T) {
	sel, _ := testSelector(t, 0.8)
	inputs := []string{
		"coffee shop latte Helsingki",
		"espresso cafe Helsinki",
		"apple cake bakery",
		"cake gateau shop",
	}
	for _, raw := range inputs {
		tokens := strutil.Tokenize(raw)
		for tau := 1; tau <= 5; tau++ {
			h := sel.Signature(tokens, AUHeuristic, tau).Len()
			d := sel.Signature(tokens, AUDP, tau).Len()
			if d > h {
				t.Errorf("%q τ=%d: DP signature %d longer than heuristic %d", raw, tau, d, h)
			}
		}
	}
}

func TestUFilterEqualsHeuristicTau1(t *testing.T) {
	sel, _ := testSelector(t, 0.85)
	tokens := strutil.Tokenize("espresso cafe Helsinki")
	u := sel.Signature(tokens, UFilter, 5) // τ ignored
	h := sel.Signature(tokens, AUHeuristic, 1)
	if u.Len() != h.Len() {
		t.Errorf("U-Filter length %d != heuristic(τ=1) length %d", u.Len(), h.Len())
	}
}

func TestSignatureLengthShrinksWithTheta(t *testing.T) {
	// As in classic prefix filtering, a higher join threshold lets the
	// filter discard more pebbles, so signatures never grow as θ grows.
	tokens := strutil.Tokenize("coffee shop latte Helsingki")
	prev := -1
	for _, theta := range []float64{0.5, 0.7, 0.9, 0.99} {
		sel, _ := testSelector(t, theta)
		sig := sel.Signature(tokens, AUHeuristic, 2)
		if prev >= 0 && sig.Len() > prev {
			t.Fatalf("signature length grew when θ grew: %d -> %d", prev, sig.Len())
		}
		prev = sig.Len()
	}
}

// overlapCount counts shared pebble occurrences between two signatures the
// way Algorithm 6 does: the inverted list of a key holds a string once per
// pebble carrying that key, so a pair is counted once per (S-pebble,
// T-pebble) combination with a common key.
func overlapCount(a, b Signature) int {
	countA := map[string]int{}
	for _, p := range a.Pebbles {
		countA[p.Key]++
	}
	n := 0
	for _, p := range b.Pebbles {
		n += countA[p.Key]
	}
	return n
}

// TestFilterCompleteness is the central correctness property (Lemmas 1 and
// 2): any pair whose unified similarity reaches θ must share at least τ
// pebbles between their signatures (at least 1 for U-Filter).
func TestFilterCompleteness(t *testing.T) {
	ctx := paperContext()
	gen := NewGenerator(ctx)
	calc := core.NewCalculator(ctx)

	corpus := []string{
		"coffee shop latte Helsingki",
		"espresso cafe Helsinki",
		"apple cake bakery",
		"cake gateau shop",
		"coffee house espresso",
		"latte coffee drinks",
		"cafe helsinki espresso",
		"apple cake gateau",
		"coffee shop cafe",
		"espresso latte coffee",
	}
	var tokenised [][]string
	for _, s := range corpus {
		tokenised = append(tokenised, strutil.Tokenize(s))
	}
	order := BuildOrder(gen, tokenised)

	for _, theta := range []float64{0.6, 0.75, 0.9} {
		sel := NewSelector(gen, order, theta)
		for _, method := range []Method{UFilter, AUHeuristic, AUDP} {
			for tau := 1; tau <= 3; tau++ {
				if method == UFilter && tau > 1 {
					continue
				}
				sigs := make([]Signature, len(tokenised))
				for i, tok := range tokenised {
					sigs[i] = sel.Signature(tok, method, tau)
				}
				for i := 0; i < len(tokenised); i++ {
					for j := i + 1; j < len(tokenised); j++ {
						usim := calc.SimilarityTokens(tokenised[i], tokenised[j])
						if usim < theta {
							continue
						}
						need := tau
						if method == UFilter {
							need = 1
						}
						if got := overlapCount(sigs[i], sigs[j]); got < need {
							t.Errorf("%s θ=%v τ=%d: pair (%q, %q) has USIM %.3f but only %d shared signature pebbles (need %d)",
								method, theta, tau, corpus[i], corpus[j], usim, got, need)
						}
					}
				}
			}
		}
	}
}

// TestFilterCompletenessSynthetic stresses the completeness guarantee on a
// randomly generated corpus with its own synonym rules and taxonomy.
func TestFilterCompletenessSynthetic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta",
		"theta", "iota", "kappa", "lambda", "mu"}
	rules := synonym.NewRuleSet()
	rules.MustAdd("alpha beta", "gamma", 1)
	rules.MustAdd("delta", "epsilon", 0.9)
	rules.MustAdd("zeta eta", "theta iota", 0.8)
	tax := taxonomy.NewTree("root")
	a := tax.MustAddChild(tax.Root(), "kappa")
	tax.MustAddChild(a, "lambda")
	tax.MustAddChild(a, "mu")
	ctx := sim.NewContext(rules, tax)
	gen := NewGenerator(ctx)
	calc := core.NewCalculator(ctx)

	var tokenised [][]string
	for i := 0; i < 24; i++ {
		n := 2 + rng.Intn(4)
		var toks []string
		for j := 0; j < n; j++ {
			toks = append(toks, vocab[rng.Intn(len(vocab))])
		}
		tokenised = append(tokenised, toks)
	}
	order := BuildOrder(gen, tokenised)
	theta := 0.7
	tau := 2
	sel := NewSelector(gen, order, theta)
	for _, method := range []Method{AUHeuristic, AUDP} {
		sigs := make([]Signature, len(tokenised))
		for i, tok := range tokenised {
			sigs[i] = sel.Signature(tok, method, tau)
		}
		for i := 0; i < len(tokenised); i++ {
			for j := i + 1; j < len(tokenised); j++ {
				usim := calc.SimilarityTokens(tokenised[i], tokenised[j])
				if usim < theta {
					continue
				}
				if got := overlapCount(sigs[i], sigs[j]); got < tau {
					t.Errorf("%s: pair (%v, %v) USIM %.3f shares only %d pebbles (need %d)",
						method, tokenised[i], tokenised[j], usim, got, tau)
				}
			}
		}
	}
}

func TestSignatureUnreachableThreshold(t *testing.T) {
	// A string whose maximal accumulated similarity cannot reach θ·MP gets
	// an empty signature, meaning it can never participate in a result.
	ctx := paperContext().WithMeasures(sim.SetSynonym) // only synonym similarity
	gen := NewGenerator(ctx)
	order := NewOrder()
	tokens := strutil.Tokenize("unrelated words here") // no rule applies
	p, _ := gen.Pebbles(tokens)
	order.Add(p)
	sel := NewSelector(gen, order, 0.9)
	sig := sel.Signature(tokens, AUHeuristic, 2)
	if sig.Len() != 0 {
		t.Errorf("expected empty signature, got %d pebbles", sig.Len())
	}
}

func BenchmarkSignatureAUDP(b *testing.B) {
	ctx := paperContext()
	gen := NewGenerator(ctx)
	corpus := [][]string{
		strutil.Tokenize("coffee shop latte Helsingki"),
		strutil.Tokenize("espresso cafe Helsinki"),
	}
	order := BuildOrder(gen, corpus)
	sel := NewSelector(gen, order, 0.85)
	tokens := strutil.Tokenize("coffee shop latte Helsingki espresso cafe")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel.Signature(tokens, AUDP, 4)
	}
}

func BenchmarkSignatureHeuristic(b *testing.B) {
	ctx := paperContext()
	gen := NewGenerator(ctx)
	corpus := [][]string{
		strutil.Tokenize("coffee shop latte Helsingki"),
		strutil.Tokenize("espresso cafe Helsinki"),
	}
	order := BuildOrder(gen, corpus)
	sel := NewSelector(gen, order, 0.85)
	tokens := strutil.Tokenize("coffee shop latte Helsingki espresso cafe")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel.Signature(tokens, AUHeuristic, 4)
	}
}
