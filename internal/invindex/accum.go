package invindex

import "math/bits"

// This file implements the block accumulation engine of the hybrid count
// filter. The classic count filter walks every posting entry of every probe
// token and bumps a per-record overlap counter; with frequent tokens in
// Bitset form the same counts can be produced block-at-a-time: 64 records
// per machine word, added through a carry-save adder network of bit-sliced
// counters that live entirely in registers while every dense token's word
// for that block is folded in, then drained once.
//
// The accumulation is word-major: for each bitmap word position w, the 64
// records' counters are held as countPlanes bit-planes in registers — plane
// k holds bit k of 64 independent counters — plus a saturation mask
// (counters that reached satCount stop counting; the accumulator routes any
// probe that could legitimately need larger counts through the exact
// per-bit path instead, so saturation is never observable). Adding a bitmap
// word is a ripple-carry add of 1 restricted to the set bits: two ALU ops
// per plane, independent of how many of the 64 records are present, with no
// loads or stores. Survivors are extracted from the registers bit-parallel
// before they die, so the per-record counter array is never touched on a
// pure-dense probe. Which records were touched at all falls out of the
// planes themselves (some plane or saturation bit set).

const (
	// countPlanes bounds the exact counter range of the register block:
	// counts 0..satCount-1 are exact, satCount is the saturation ceiling.
	countPlanes = 5
	// satCount is the first count the planes cannot represent exactly. The
	// accumulator only batches a token into the register block when the
	// probe's τ and the token's multiplicity guarantee saturation cannot
	// change the filter's verdict (see AddBitset).
	satCount = 1 << countPlanes
)

// The unrolled ripple and extraction in FlushDense spell out all five
// planes.
var _ = [1]struct{}{}[countPlanes-5]

// denseAdd is one deferred dense-token accumulation: the token's bitmap
// words (the slice header is copied here so the fold loop never chases the
// *Bitset pointer) and the probe-side multiplicity it contributes per
// record.
type denseAdd struct {
	words []uint64
	mult  int32
}

// Accumulator is the per-probe scratch of the hybrid count filter: a bump
// arena holding the per-record overlap counters and the touched list, plus
// a deferred list of dense tokens folded block-at-a-time by FlushDense. It
// replaces the counts/touched pair of the classic filter; one Accumulator
// serves any number of sequential probes (Begin resets per probe, Reset
// re-sizes per corpus) and is not safe for concurrent use — pool one per
// worker.
//
// The protocol per probe record is:
//
//	acc.Begin(tau)
//	acc.AddPostings(...) / acc.AddBitset(...)   // once per probe token
//	acc.FlushDense(limit)                       // drain deferred bitmaps
//	recs := acc.Collect(dead)                   // survivors; counters re-zeroed
//
// Counts produced this way are bit-identical to the classic entry-at-a-time
// accumulation: AddBitset defers a token into the block path only when τ
// and the multiplicity guarantee the saturation ceiling cannot flip the
// ≥ τ verdict, and falls back to exact per-bit accumulation otherwise.
type Accumulator struct {
	// block is the arena: one allocation backing both counts (first half)
	// and the touched list (second half). touched can never outgrow its
	// half — a record is appended only on its 0→nonzero transition, so at
	// most one entry per record.
	block   []int32
	counts  []int32
	touched []int32
	sized   int // counts length of the last Reset (the zeroed prefix bound)
	tau     int32
	dense   []denseAdd
	// sliceBits marks the records whose counter received a direct write
	// (slice postings or the per-bit fallback) this probe: exactly the
	// lanes whose block extraction cannot be skipped. Collect re-zeroes it
	// alongside the counters, so unlike the arena it needs no watermark —
	// it never aliases the touched list.
	sliceBits []uint64
	// mixed records whether any counter was written directly (slice
	// postings or the exact per-bit fallback) this probe; a probe whose
	// every token went through the block path can skip counter extraction
	// and read the survivors straight out of the register planes.
	mixed bool
	// collected is set when FlushDense already produced the final survivor
	// list in touched (pure-dense fast path); Collect then only applies the
	// dead filter, and there are no nonzero counters to restore.
	collected bool
}

// NewAccumulator returns an empty accumulator; Reset sizes it.
func NewAccumulator() *Accumulator { return &Accumulator{} }

// Reset sizes the arena for a corpus of numRecords records, reusing the
// backing block when it is large enough. Counters are zero afterwards: the
// prefix up to the previous size is zero by the Collect invariant, and a
// growing counter region — which overlaps the previous probe's touched
// list — is cleared explicitly.
func (a *Accumulator) Reset(numRecords int) {
	if cap(a.block) < 2*numRecords {
		a.block = make([]int32, 2*numRecords)
	} else if numRecords > a.sized {
		clear(a.block[a.sized:numRecords])
	}
	a.sized = numRecords
	a.counts = a.block[:numRecords]
	a.touched = a.block[numRecords:numRecords]
	nwords := (numRecords + 63) >> 6
	if cap(a.sliceBits) < nwords {
		a.sliceBits = make([]uint64, nwords)
	} else {
		// Zero by the Collect invariant, like the counter prefix.
		a.sliceBits = a.sliceBits[:nwords]
	}
	a.dense = a.dense[:0]
}

// Begin starts one probe record with overlap threshold tau.
func (a *Accumulator) Begin(tau int) {
	a.tau = int32(tau)
	a.touched = a.touched[:0]
	a.dense = a.dense[:0]
	a.mixed = false
	a.collected = false
}

// AddPostings folds one slice-form posting list into the counters with the
// given probe-side multiplicity and returns the number of entries
// processed. This is the classic inner loop, shared by rare tokens and the
// dynamic index's delta segments.
func (a *Accumulator) AddPostings(postings []Posting, mult int32) int64 {
	if len(postings) > 0 {
		a.mixed = true
	}
	counts := a.counts
	for _, p := range postings {
		if counts[p.Record] == 0 {
			a.touched = append(a.touched, int32(p.Record))
			a.sliceBits[p.Record>>6] |= 1 << (uint(p.Record) & 63)
		}
		counts[p.Record] += mult * int32(p.Count)
	}
	return int64(len(postings))
}

// AddBitset folds one bitmap-form posting list restricted to records
// < limit into the counters. When the probe's τ and the multiplicity fit
// the exact range of the register planes the token is deferred for block
// accumulation in FlushDense (returning 0 now; FlushDense reports the
// processed entries); otherwise it is accumulated immediately, bit by bit,
// which is exact for any τ and multiplicity.
func (a *Accumulator) AddBitset(bs *Bitset, mult int32, limit int) int64 {
	if a.tau <= satCount && mult < satCount {
		// Saturated counters read as satCount ≥ τ, and a counter only
		// saturates when its true count is > satCount ≥ τ, so the ≥ τ
		// verdict is unchanged; counts of survivors may read low but are
		// only ever compared against τ.
		a.dense = append(a.dense, denseAdd{bs.words, mult})
		return 0
	}
	return a.addBits(bs, mult, limit)
}

// addBits is the exact scalar fallback: every set bit bumps its counter
// directly.
func (a *Accumulator) addBits(bs *Bitset, mult int32, limit int) int64 {
	a.mixed = true
	words, lastWord, lastMask := clampWords(bs.words, limit)
	var processed int64
	counts := a.counts
	for w, x := range words {
		if w == lastWord {
			x &= lastMask
		}
		for ; x != 0; x &= x - 1 {
			r := int32(w<<6 + bits.TrailingZeros64(x))
			if counts[r] == 0 {
				a.touched = append(a.touched, r)
				a.sliceBits[r>>6] |= 1 << (uint32(r) & 63)
			}
			counts[r] += mult
			processed++
		}
	}
	return processed
}

// clampWords restricts a bitmap to records < limit: the usable word prefix,
// the index of the word the limit falls in (-1 when no masking is needed)
// and the mask for that word.
func clampWords(words []uint64, limit int) ([]uint64, int, uint64) {
	lw := (limit + 63) >> 6
	if lw >= len(words) {
		if limit&63 != 0 && lw == len(words) {
			return words, lw - 1, 1<<(uint(limit)&63) - 1
		}
		return words, -1, 0
	}
	if limit&63 != 0 {
		return words[:lw], lw - 1, 1<<(uint(limit)&63) - 1
	}
	return words[:lw], -1, 0
}

// FlushDense drains the deferred dense tokens through the register block
// adder, restricted to records < limit, and returns the number of (record,
// token) occurrences processed — the same quantity AddPostings reports for
// slice lists, so the filter's T_τ statistic is representation-independent.
//
// The loop is word-major: for each bitmap word position, every deferred
// token's word is ripple-carry added into six registers (five bit-planes
// plus saturation), then the 64 lanes are drained — straight into the
// survivor list via the bit-parallel ≥ τ comparison on a pure-dense probe,
// or merged into the arena counters when slice-form tokens also wrote this
// probe. The bit-planes never touch memory, there is nothing to re-zero,
// and each token's bitmap streams through the cache exactly once — the
// classic path streams the full-corpus count array once per token.
func (a *Accumulator) FlushDense(limit int) int64 {
	if len(a.dense) == 0 {
		return 0
	}
	lw := (limit + 63) >> 6
	lastMask := ^uint64(0)
	if limit&63 != 0 {
		lastMask = 1<<(uint(limit)&63) - 1
	}
	maxWords := 0
	for _, d := range a.dense {
		n := len(d.words)
		if n > lw {
			n = lw
		}
		if n > maxWords {
			maxWords = n
		}
	}
	// With no direct counter writes this probe, the ≥ τ verdict lives
	// entirely in the register planes: extract the survivor mask
	// bit-parallel and emit final survivors straight into touched, never
	// touching the counter array (Collect then only applies the dead
	// filter). One slice-form token forces the exact merge through the
	// counters instead.
	pure := !a.mixed
	var processed int64
	counts := a.counts
	dense := a.dense
	tau := a.tau
	for w := 0; w < maxWords; w++ {
		mask := ^uint64(0)
		if w == lw-1 {
			// A bitmap holds exactly ⌈records/64⌉ words with the excess
			// high bits of the last word zero, so this mask only bites when
			// the limit cuts a word short (the self-join prefix).
			mask = lastMask
		}
		var p0, p1, p2, p3, p4, st uint64
		for _, d := range dense {
			words := d.words
			if w >= len(words) {
				continue
			}
			x := words[w] & mask
			if x == 0 {
				continue
			}
			processed += int64(bits.OnesCount64(x))
			// Ripple-carry add of 1 restricted to the set bits, branchless
			// across the five planes; a multiplicity m > 1 (a probe
			// signature rarely repeats an ID) simply adds 1 m times, which
			// reaches the identical counter and saturation state.
			for m := d.mult; m > 0; m-- {
				c := p0 & x
				p0 ^= x
				t := p1 & c
				p1 ^= c
				c = t
				t = p2 & c
				p2 ^= c
				c = t
				t = p3 & c
				p3 ^= c
				c = t
				t = p4 & c
				p4 ^= c
				st |= t
			}
		}
		u := p0 | p1 | p2 | p3 | p4 | st
		if u == 0 {
			continue
		}
		// Bit-parallel ≥ τ over all 64 lanes: evaluate the bit-sliced
		// subtraction counter−τ plane by plane — a lane is ≥ τ exactly when
		// no borrow comes out of the top plane (for a constant subtrahend
		// bit of 1 the borrow recurrence is borrow|¬x, for 0 it is
		// borrow&¬x). Saturated lanes hold true counts > satCount ≥ τ and
		// are always included. AddBitset guarantees τ ≤ satCount here.
		var ge uint64
		if tau >= satCount {
			ge = st
		} else {
			var borrow uint64
			if tau&1 != 0 {
				borrow = ^p0
			}
			if tau&2 != 0 {
				borrow |= ^p1
			} else {
				borrow &^= p1
			}
			if tau&4 != 0 {
				borrow |= ^p2
			} else {
				borrow &^= p2
			}
			if tau&8 != 0 {
				borrow |= ^p3
			} else {
				borrow &^= p3
			}
			if tau&16 != 0 {
				borrow |= ^p4
			} else {
				borrow &^= p4
			}
			ge = ^borrow | st
		}
		recBase := int32(w) << 6
		if pure {
			for x := ge; x != 0; x &= x - 1 {
				a.touched = append(a.touched, recBase+int32(bits.TrailingZeros64(x)))
			}
			continue
		}
		// Only two kinds of lane can still matter: lanes whose counter got
		// a direct slice write (the block contribution must be merged
		// before Collect compares against τ), and dense-only lanes the
		// bit-parallel comparison already proves ≥ τ. Dense-only lanes
		// below τ — typically the vast majority — are skipped without
		// extraction.
		sb := a.sliceBits[w]
		for x := u & sb; x != 0; x &= x - 1 {
			b := bits.TrailingZeros64(x)
			c := int32(p0>>uint(b)&1) | int32(p1>>uint(b)&1)<<1 | int32(p2>>uint(b)&1)<<2 |
				int32(p3>>uint(b)&1)<<3 | int32(p4>>uint(b)&1)<<4
			if st>>uint(b)&1 != 0 {
				c = satCount
			}
			counts[recBase+int32(b)] += c
		}
		for x := ge &^ sb; x != 0; x &= x - 1 {
			b := bits.TrailingZeros64(x)
			c := int32(p0>>uint(b)&1) | int32(p1>>uint(b)&1)<<1 | int32(p2>>uint(b)&1)<<2 |
				int32(p3>>uint(b)&1)<<3 | int32(p4>>uint(b)&1)<<4
			if st>>uint(b)&1 != 0 {
				c = satCount
			}
			r := recBase + int32(b)
			a.touched = append(a.touched, r)
			counts[r] += c
		}
	}
	a.collected = pure
	a.dense = a.dense[:0]
	return processed
}

// Collect returns the touched records whose overlap reached the probe's τ,
// skipping records whose bit is set in the optional dead bitmap, and
// re-zeroes every touched counter (restoring the arena invariant Reset
// relies on). The result aliases the touched half of the arena and is valid
// until the next Begin/Reset.
func (a *Accumulator) Collect(dead []uint64) []int32 {
	if a.collected {
		// Pure-dense fast path: touched already holds the final survivors
		// and no counter was ever written, so only the dead filter remains.
		if dead == nil {
			return a.touched
		}
		out := a.touched[:0]
		for _, r := range a.touched {
			if dead[r>>6]&(1<<(uint32(r)&63)) == 0 {
				out = append(out, r)
			}
		}
		return out
	}
	out := a.touched[:0]
	tau := a.tau
	counts := a.counts
	for _, r := range a.touched {
		if counts[r] >= tau && (dead == nil || dead[r>>6]&(1<<(uint32(r)&63)) == 0) {
			out = append(out, r)
		}
		counts[r] = 0
		a.sliceBits[r>>6] &^= 1 << (uint32(r) & 63)
	}
	return out
}
