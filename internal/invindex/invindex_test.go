package invindex

import (
	"reflect"
	"testing"
)

func TestAddAndLookup(t *testing.T) {
	// IDs 0, 1, 2 stand for the interned keys "g:ab", "g:bc", "s:rule".
	ix := New(4)
	ix.Add(0, []uint32{0, 1, 0})
	ix.Add(1, []uint32{1, 2})
	if ix.Records() != 2 {
		t.Errorf("Records = %d, want 2", ix.Records())
	}
	if ix.Universe() != 4 {
		t.Errorf("Universe = %d, want 4", ix.Universe())
	}
	if ix.KeyCount() != 3 {
		t.Errorf("KeyCount = %d, want 3", ix.KeyCount())
	}
	ab := ix.Postings(0)
	if len(ab) != 1 || ab[0].Record != 0 || ab[0].Count != 2 {
		t.Errorf("Postings(0) = %+v", ab)
	}
	bc := ix.Postings(1)
	if len(bc) != 2 {
		t.Errorf("Postings(1) = %+v", bc)
	}
	if ix.ListLength(1) != 2 || ix.ListLength(3) != 0 {
		t.Error("ListLength wrong")
	}
	if ix.Postings(3) != nil || ix.Postings(99) != nil {
		t.Error("absent IDs should have nil postings")
	}
	want := []uint32{0, 1, 2}
	if got := ix.Keys(); !reflect.DeepEqual(got, want) {
		t.Errorf("Keys = %v, want %v", got, want)
	}
}

func TestAddSkipsOutOfUniverseIDs(t *testing.T) {
	ix := New(2)
	ix.Add(0, []uint32{0, ^uint32(0), 5}) // NoID and an overflow ID are dropped
	if ix.KeyCount() != 1 {
		t.Errorf("KeyCount = %d, want 1", ix.KeyCount())
	}
	if got := ix.Postings(0); len(got) != 1 || got[0].Count != 1 {
		t.Errorf("Postings(0) = %+v", got)
	}
}

func TestPostingListsSortedByRecord(t *testing.T) {
	ix := New(1)
	for rec := 0; rec < 5; rec++ {
		ix.Add(rec, []uint32{0})
	}
	l := ix.Postings(0)
	for i := 1; i < len(l); i++ {
		if l[i].Record <= l[i-1].Record {
			t.Fatalf("posting list not sorted by record: %+v", l)
		}
	}
}
