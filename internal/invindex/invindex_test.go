package invindex

import (
	"reflect"
	"testing"
)

func TestAddAndLookup(t *testing.T) {
	ix := New()
	ix.Add(0, []string{"g:ab", "g:bc", "g:ab"})
	ix.Add(1, []string{"g:bc", "s:rule"})
	if ix.Records() != 2 {
		t.Errorf("Records = %d, want 2", ix.Records())
	}
	if ix.KeyCount() != 3 {
		t.Errorf("KeyCount = %d, want 3", ix.KeyCount())
	}
	ab := ix.Postings("g:ab")
	if len(ab) != 1 || ab[0].Record != 0 || ab[0].Count != 2 {
		t.Errorf("Postings(g:ab) = %+v", ab)
	}
	bc := ix.Postings("g:bc")
	if len(bc) != 2 {
		t.Errorf("Postings(g:bc) = %+v", bc)
	}
	if ix.ListLength("g:bc") != 2 || ix.ListLength("missing") != 0 {
		t.Error("ListLength wrong")
	}
	if ix.Postings("missing") != nil {
		t.Error("missing key should have nil postings")
	}
	want := []string{"g:ab", "g:bc", "s:rule"}
	if got := ix.Keys(); !reflect.DeepEqual(got, want) {
		t.Errorf("Keys = %v, want %v", got, want)
	}
}

func TestCommonKeysAndTotalPairs(t *testing.T) {
	a := New()
	a.Add(0, []string{"x", "y"})
	a.Add(1, []string{"y", "z"})
	b := New()
	b.Add(0, []string{"y"})
	b.Add(1, []string{"z"})
	b.Add(2, []string{"w"})
	common := CommonKeys(a, b)
	if !reflect.DeepEqual(common, []string{"y", "z"}) {
		t.Errorf("CommonKeys = %v", common)
	}
	// y: 2×1, z: 1×1 → 3 pairs.
	if got := TotalPairs(a, b); got != 3 {
		t.Errorf("TotalPairs = %d, want 3", got)
	}
	// Symmetric.
	if got := TotalPairs(b, a); got != 3 {
		t.Errorf("TotalPairs reversed = %d, want 3", got)
	}
	empty := New()
	if got := TotalPairs(a, empty); got != 0 {
		t.Errorf("TotalPairs with empty = %d, want 0", got)
	}
	if got := CommonKeys(a, empty); len(got) != 0 {
		t.Errorf("CommonKeys with empty = %v", got)
	}
}
