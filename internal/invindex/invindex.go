// Package invindex provides the inverted index used by the join algorithms
// of Section 3: keys are pebble identities, postings are record identifiers.
// A record appears in a key's posting list once per signature pebble
// carrying that key, which is what the overlap counting of Algorithm 6
// requires.
package invindex

import "sort"

// Posting is one entry of a posting list: a record and how many of its
// signature pebbles carry the key.
type Posting struct {
	Record int
	Count  int
}

// Index is an inverted index from pebble keys to posting lists. The zero
// value is not usable; create indexes with New. Index is safe for
// concurrent reads after all Add calls have completed.
type Index struct {
	lists   map[string][]Posting
	records int
}

// New creates an empty index.
func New() *Index {
	return &Index{lists: make(map[string][]Posting)}
}

// Add registers the signature keys of one record. Keys may repeat; repeats
// increase the record's count in that key's posting list.
func (ix *Index) Add(record int, keys []string) {
	ix.records++
	counts := make(map[string]int, len(keys))
	for _, k := range keys {
		counts[k]++
	}
	for k, c := range counts {
		ix.lists[k] = append(ix.lists[k], Posting{Record: record, Count: c})
	}
}

// Records returns the number of records added to the index.
func (ix *Index) Records() int { return ix.records }

// KeyCount returns the number of distinct keys.
func (ix *Index) KeyCount() int { return len(ix.lists) }

// Postings returns the posting list of a key (nil when absent). The
// returned slice must not be modified.
func (ix *Index) Postings(key string) []Posting { return ix.lists[key] }

// ListLength returns the length of a key's posting list.
func (ix *Index) ListLength(key string) int { return len(ix.lists[key]) }

// Keys returns all distinct keys in sorted order; intended for diagnostics
// and deterministic iteration in tests, not hot paths.
func (ix *Index) Keys() []string {
	out := make([]string, 0, len(ix.lists))
	for k := range ix.lists {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CommonKeys returns the keys present in both indexes.
func CommonKeys(a, b *Index) []string {
	small, large := a, b
	if len(small.lists) > len(large.lists) {
		small, large = large, small
	}
	var out []string
	for k := range small.lists {
		if _, ok := large.lists[k]; ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// TotalPairs returns Σ over common keys of |ℓ_a(key)|·|ℓ_b(key)| — the
// number of pairs the filtering stage touches, i.e. the quantity T_τ of the
// cost model in Section 4 (Eq. 16).
func TotalPairs(a, b *Index) int64 {
	total := int64(0)
	for _, k := range CommonKeys(a, b) {
		total += int64(len(a.Postings(k))) * int64(len(b.Postings(k)))
	}
	return total
}
