// Package invindex provides the inverted index used by the join algorithms
// of Section 3: keys are interned pebble IDs (dense uint32 identifiers
// assigned by the global frequency order, see internal/pebble.Order),
// postings are record identifiers. A record appears in a key's posting list
// once per signature pebble carrying that key, which is what the overlap
// counting of Algorithm 6 requires.
//
// Keying by dense integer IDs instead of strings makes the index a plain
// slice of posting slices: lookups are array indexing, posting lists stay
// sorted by record for free, and nothing in the hot path hashes or
// compares strings.
//
// Two layouts share the Posting type. Index is the dense array form used
// for whole-collection builds: O(universe) memory, O(1) lookups, the right
// shape when most IDs have postings. Delta is the sparse map form used by
// the dynamic join index for the small batches appended between rebuilds:
// memory proportional to the postings actually present, so a single-record
// insert does not pay for the whole ID universe. Both are immutable after
// their Add calls and therefore safe for concurrent reads.
//
// Index additionally supports a hybrid posting representation: Hybridize
// converts the posting lists of frequent keys (list length at or above a
// density cutoff) into packed 64-bit bitmaps — plus a short residual slice
// for the rare counts above one — which the block Accumulator consumes
// tile-at-a-time instead of entry-at-a-time. Rare keys keep the sorted
// slice form. See accum.go for the accumulation engine.
package invindex

// Posting is one entry of a posting list: a record and how many of its
// signature pebbles carry the key.
type Posting struct {
	Record int
	Count  int
}

// Index is an inverted index from interned pebble IDs to posting lists.
// The zero value is not usable; create indexes with New. Index is safe for
// concurrent reads after all Add calls have completed.
type Index struct {
	lists     [][]Posting // indexed by pebble ID
	bitsets   []*Bitset   // parallel to lists after Hybridize; nil before
	nonEmpty  int
	denseKeys int
	records   int
	sealed    bool // set by Hybridize: no further Add calls
}

// New creates an empty index over a universe of `numKeys` interned IDs
// (pebble IDs must be < numKeys).
func New(numKeys int) *Index {
	return &Index{lists: make([][]Posting, numKeys)}
}

// Add registers the signature pebble IDs of one record. IDs may repeat;
// repeats increase the record's count in that ID's posting list. IDs out of
// the universe (in particular pebble.NoID, marking keys unknown to the
// order) are skipped: they can never match an indexed record. Records must
// be added in ascending record order, which keeps every posting list sorted
// by record — the self-join probe relies on this.
func (ix *Index) Add(record int, ids []uint32) {
	if ix.sealed {
		panic("invindex: Add after Hybridize")
	}
	ix.records++
	for _, id := range ids {
		if id >= uint32(len(ix.lists)) {
			continue
		}
		l := ix.lists[id]
		if n := len(l); n > 0 && l[n-1].Record == record {
			l[n-1].Count++
			continue
		}
		if len(l) == 0 {
			ix.nonEmpty++
		}
		ix.lists[id] = append(l, Posting{Record: record, Count: 1})
	}
}

// Presize reserves posting-list capacity ahead of the Add calls, carving
// every list's backing storage out of one contiguous arena. caps[id] is an
// upper bound on ID id's posting count (repeats within one record may
// over-count — they merge into a single posting — which only wastes
// capacity, never correctness). Adds that outgrow their reservation fall
// back to ordinary append growth. Callers that know the full signature
// multiset upfront (snapshot restore) avoid the per-list regrow churn —
// the dominant cost of rebuilding a large index entry by entry.
func (ix *Index) Presize(caps []int32) {
	if ix.sealed {
		panic("invindex: Presize after Hybridize")
	}
	total := 0
	n := len(ix.lists)
	for id, c := range caps {
		if id < n {
			total += int(c)
		}
	}
	if total == 0 {
		return
	}
	arena := make([]Posting, total)
	off := 0
	for id, c := range caps {
		if id >= n || c == 0 {
			continue
		}
		ix.lists[id] = arena[off : off : off+int(c)]
		off += int(c)
	}
}

// Records returns the number of records added to the index.
func (ix *Index) Records() int { return ix.records }

// Universe returns the size of the ID universe the index was created over.
func (ix *Index) Universe() int { return len(ix.lists) }

// KeyCount returns the number of distinct IDs with a non-empty posting
// list.
func (ix *Index) KeyCount() int { return ix.nonEmpty }

// Postings returns the posting list of an ID (nil when absent or out of
// universe, and nil for IDs Hybridize converted to bitmap form — check
// Bitset first on a hybridized index). The returned slice must not be
// modified.
func (ix *Index) Postings(id uint32) []Posting {
	if id >= uint32(len(ix.lists)) {
		return nil
	}
	return ix.lists[id]
}

// ListLength returns the number of records in an ID's posting list,
// whichever representation holds it.
func (ix *Index) ListLength(id uint32) int {
	if bs := ix.Bitset(id); bs != nil {
		return bs.card
	}
	return len(ix.Postings(id))
}

// Keys returns the IDs with non-empty posting lists (either representation)
// in ascending order.
func (ix *Index) Keys() []uint32 {
	out := make([]uint32, 0, ix.nonEmpty)
	for id, l := range ix.lists {
		if len(l) > 0 || (ix.bitsets != nil && ix.bitsets[id] != nil) {
			out = append(out, uint32(id))
		}
	}
	return out
}

// Bitset is the packed posting form of a frequent key: bit r set means
// record r carries the key at least once. Blocks of 64 records pack into
// one word, so intersecting a probe against the list is word-parallel. The
// few records carrying the key more than once (repeated tokens, shared
// q-grams) keep their surplus — count minus one — in a short sorted
// residual slice, so a dense list is never disqualified from bitmap form
// by a single multi-occurrence posting.
type Bitset struct {
	words    []uint64
	residual []Posting // Count = surplus over the bitmap bit (orig count − 1)
	card     int
}

// Card returns the number of set bits (the posting-list length).
func (b *Bitset) Card() int { return b.card }

// Words exposes the packed 64-bit blocks (bit r&63 of word r>>6 is record
// r). The slice must not be modified.
func (b *Bitset) Words() []uint64 { return b.words }

// Residual returns the multi-occurrence surplus postings: entries sorted by
// record, each Count being the record's original count minus the one
// occurrence the bitmap bit represents. Usually empty or very short. The
// returned slice must not be modified.
func (b *Bitset) Residual() []Posting { return b.residual }

// Bitset returns the packed form of an ID's posting list, or nil when the
// list is absent, out of universe, or still in slice form.
func (ix *Index) Bitset(id uint32) *Bitset {
	if ix.bitsets == nil || id >= uint32(len(ix.bitsets)) {
		return nil
	}
	return ix.bitsets[id]
}

// DenseKeys returns the number of keys Hybridize converted to bitmap form.
func (ix *Index) DenseKeys() int { return ix.denseKeys }

// SparseKeys returns the number of non-empty keys still in slice form.
func (ix *Index) SparseKeys() int { return ix.nonEmpty - ix.denseKeys }

// Hybridize converts every posting list with at least cutoff entries into a
// packed Bitset, releasing the slice form. Counts above one — which the
// bitmap bits cannot represent — survive as the Bitset's residual slice:
// one Posting per multi-occurrence record carrying the surplus (count − 1),
// so the bitmap plus residual is count-exact for every record. The index is
// sealed against further Add calls: record membership is frozen into
// fixed-width bitmaps. Hybridize is idempotent per key and O(total
// postings); call it once, after the last Add.
func (ix *Index) Hybridize(cutoff int) {
	if cutoff < 1 {
		cutoff = 1
	}
	ix.sealed = true
	nwords := (ix.records + 63) / 64
	for id, l := range ix.lists {
		if len(l) < cutoff {
			continue
		}
		if ix.bitsets == nil {
			ix.bitsets = make([]*Bitset, len(ix.lists))
		}
		bs := &Bitset{words: make([]uint64, nwords), card: len(l)}
		for i := range l {
			r := l[i].Record
			bs.words[r>>6] |= 1 << (uint(r) & 63)
			if c := l[i].Count; c > 1 {
				bs.residual = append(bs.residual, Posting{Record: r, Count: c - 1})
			}
		}
		ix.bitsets[id] = bs
		ix.lists[id] = nil
	}
	ix.denseKeys = 0
	if ix.bitsets != nil {
		for _, bs := range ix.bitsets {
			if bs != nil {
				ix.denseKeys++
			}
		}
	}
}

// noID mirrors pebble.NoID (the package is below pebble in the dependency
// order, so the constant is duplicated rather than imported).
const noID = ^uint32(0)

// Delta is the sparse, map-keyed inverted index used for the record batches
// a dynamic join index appends between rebuilds. Unlike Index it has no
// fixed ID universe — dynamically interned pebble IDs land in it directly —
// and costs memory only for the postings it actually holds. Records must be
// added in ascending record order (posting lists stay sorted by record);
// after the Add calls a Delta is immutable and safe for concurrent reads.
type Delta struct {
	lists   map[uint32][]Posting
	records int
}

// NewDelta creates an empty sparse index.
func NewDelta() *Delta {
	return &Delta{lists: make(map[uint32][]Posting)}
}

// Add registers the signature pebble IDs of one record, with the same
// multiplicity semantics as Index.Add. The NoID sentinel is skipped.
func (d *Delta) Add(record int, ids []uint32) {
	d.records++
	for _, id := range ids {
		if id == noID {
			continue
		}
		l := d.lists[id]
		if n := len(l); n > 0 && l[n-1].Record == record {
			l[n-1].Count++
			continue
		}
		d.lists[id] = append(l, Posting{Record: record, Count: 1})
	}
}

// Records returns the number of records added to the delta.
func (d *Delta) Records() int { return d.records }

// KeyCount returns the number of distinct IDs with a posting list.
func (d *Delta) KeyCount() int { return len(d.lists) }

// Postings returns the posting list of an ID (nil when absent). The
// returned slice must not be modified.
func (d *Delta) Postings(id uint32) []Posting { return d.lists[id] }

// Entries calls fn for every (ID, posting list) pair in the delta, in
// unspecified order. The snapshot writer uses it to recover each appended
// record's signature ID multiset without the delta having to retain the
// signatures themselves. The posting slices must not be modified.
func (d *Delta) Entries(fn func(id uint32, posts []Posting)) {
	for id, posts := range d.lists {
		fn(id, posts)
	}
}
