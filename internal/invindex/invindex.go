// Package invindex provides the inverted index used by the join algorithms
// of Section 3: keys are interned pebble IDs (dense uint32 identifiers
// assigned by the global frequency order, see internal/pebble.Order),
// postings are record identifiers. A record appears in a key's posting list
// once per signature pebble carrying that key, which is what the overlap
// counting of Algorithm 6 requires.
//
// Keying by dense integer IDs instead of strings makes the index a plain
// slice of posting slices: lookups are array indexing, posting lists stay
// sorted by record for free, and nothing in the hot path hashes or
// compares strings.
//
// Two layouts share the Posting type. Index is the dense array form used
// for whole-collection builds: O(universe) memory, O(1) lookups, the right
// shape when most IDs have postings. Delta is the sparse map form used by
// the dynamic join index for the small batches appended between rebuilds:
// memory proportional to the postings actually present, so a single-record
// insert does not pay for the whole ID universe. Both are immutable after
// their Add calls and therefore safe for concurrent reads.
package invindex

// Posting is one entry of a posting list: a record and how many of its
// signature pebbles carry the key.
type Posting struct {
	Record int
	Count  int
}

// Index is an inverted index from interned pebble IDs to posting lists.
// The zero value is not usable; create indexes with New. Index is safe for
// concurrent reads after all Add calls have completed.
type Index struct {
	lists    [][]Posting // indexed by pebble ID
	nonEmpty int
	records  int
}

// New creates an empty index over a universe of `numKeys` interned IDs
// (pebble IDs must be < numKeys).
func New(numKeys int) *Index {
	return &Index{lists: make([][]Posting, numKeys)}
}

// Add registers the signature pebble IDs of one record. IDs may repeat;
// repeats increase the record's count in that ID's posting list. IDs out of
// the universe (in particular pebble.NoID, marking keys unknown to the
// order) are skipped: they can never match an indexed record. Records must
// be added in ascending record order, which keeps every posting list sorted
// by record — the self-join probe relies on this.
func (ix *Index) Add(record int, ids []uint32) {
	ix.records++
	for _, id := range ids {
		if id >= uint32(len(ix.lists)) {
			continue
		}
		l := ix.lists[id]
		if n := len(l); n > 0 && l[n-1].Record == record {
			l[n-1].Count++
			continue
		}
		if len(l) == 0 {
			ix.nonEmpty++
		}
		ix.lists[id] = append(l, Posting{Record: record, Count: 1})
	}
}

// Records returns the number of records added to the index.
func (ix *Index) Records() int { return ix.records }

// Universe returns the size of the ID universe the index was created over.
func (ix *Index) Universe() int { return len(ix.lists) }

// KeyCount returns the number of distinct IDs with a non-empty posting
// list.
func (ix *Index) KeyCount() int { return ix.nonEmpty }

// Postings returns the posting list of an ID (nil when absent or out of
// universe). The returned slice must not be modified.
func (ix *Index) Postings(id uint32) []Posting {
	if id >= uint32(len(ix.lists)) {
		return nil
	}
	return ix.lists[id]
}

// ListLength returns the length of an ID's posting list.
func (ix *Index) ListLength(id uint32) int { return len(ix.Postings(id)) }

// Keys returns the IDs with non-empty posting lists in ascending order.
func (ix *Index) Keys() []uint32 {
	out := make([]uint32, 0, ix.nonEmpty)
	for id, l := range ix.lists {
		if len(l) > 0 {
			out = append(out, uint32(id))
		}
	}
	return out
}

// noID mirrors pebble.NoID (the package is below pebble in the dependency
// order, so the constant is duplicated rather than imported).
const noID = ^uint32(0)

// Delta is the sparse, map-keyed inverted index used for the record batches
// a dynamic join index appends between rebuilds. Unlike Index it has no
// fixed ID universe — dynamically interned pebble IDs land in it directly —
// and costs memory only for the postings it actually holds. Records must be
// added in ascending record order (posting lists stay sorted by record);
// after the Add calls a Delta is immutable and safe for concurrent reads.
type Delta struct {
	lists   map[uint32][]Posting
	records int
}

// NewDelta creates an empty sparse index.
func NewDelta() *Delta {
	return &Delta{lists: make(map[uint32][]Posting)}
}

// Add registers the signature pebble IDs of one record, with the same
// multiplicity semantics as Index.Add. The NoID sentinel is skipped.
func (d *Delta) Add(record int, ids []uint32) {
	d.records++
	for _, id := range ids {
		if id == noID {
			continue
		}
		l := d.lists[id]
		if n := len(l); n > 0 && l[n-1].Record == record {
			l[n-1].Count++
			continue
		}
		d.lists[id] = append(l, Posting{Record: record, Count: 1})
	}
}

// Records returns the number of records added to the delta.
func (d *Delta) Records() int { return d.records }

// KeyCount returns the number of distinct IDs with a posting list.
func (d *Delta) KeyCount() int { return len(d.lists) }

// Postings returns the posting list of an ID (nil when absent). The
// returned slice must not be modified.
func (d *Delta) Postings(id uint32) []Posting { return d.lists[id] }
