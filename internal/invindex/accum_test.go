package invindex

import (
	"math/rand"
	"sort"
	"testing"
)

// refFilter is the naive count filter the Accumulator must reproduce
// bit-identically: per-record counters, touched-order emission, τ check,
// optional dead skip, limit restriction.
type refFilter struct {
	counts  []int32
	touched []int32
}

func newRefFilter(n int) *refFilter { return &refFilter{counts: make([]int32, n)} }

func (f *refFilter) addPostings(postings []Posting, mult int32) int64 {
	for _, p := range postings {
		if f.counts[p.Record] == 0 {
			f.touched = append(f.touched, int32(p.Record))
		}
		f.counts[p.Record] += mult * int32(p.Count)
	}
	return int64(len(postings))
}

// addBitset is a deliberately dumb exact walk, independent of the tile
// machinery under test.
func (f *refFilter) addBitset(bs *Bitset, mult int32, limit int) int64 {
	var processed int64
	for r := 0; r < limit && r < len(f.counts); r++ {
		if r>>6 < len(bs.words) && bs.words[r>>6]&(1<<(uint(r)&63)) != 0 {
			if f.counts[r] == 0 {
				f.touched = append(f.touched, int32(r))
			}
			f.counts[r] += mult
			processed++
		}
	}
	return processed
}

func (f *refFilter) collect(tau int32, dead []uint64) []int32 {
	var out []int32
	for _, r := range f.touched {
		if f.counts[r] >= tau && (dead == nil || dead[r>>6]&(1<<(uint32(r)&63)) == 0) {
			out = append(out, r)
		}
		f.counts[r] = 0
	}
	f.touched = f.touched[:0]
	return out
}

func randBitset(rng *rand.Rand, numRecords int, density float64) *Bitset {
	bs := &Bitset{words: make([]uint64, (numRecords+63)/64)}
	for r := 0; r < numRecords; r++ {
		if rng.Float64() < density {
			bs.words[r>>6] |= 1 << (uint(r) & 63)
			bs.card++
		}
	}
	return bs
}

func sortedCopy(in []int32) []int32 {
	out := append([]int32(nil), in...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// TestAccumulatorMatchesReference drives random probes — mixed slice and
// bitmap tokens, varying multiplicities, τ values straddling the tile's
// saturation ceiling, self-join limits and tombstones — through the block
// accumulator and the naive reference, asserting identical candidate sets
// and identical processed-entry counts.
func TestAccumulatorMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	acc := NewAccumulator()
	for trial := 0; trial < 200; trial++ {
		numRecords := 1 + rng.Intn(20000)
		ref := newRefFilter(numRecords)
		acc.Reset(numRecords)

		tau := 1 + rng.Intn(40) // sometimes above satCount (32): exact fallback path
		limit := numRecords
		if rng.Intn(3) == 0 {
			limit = rng.Intn(numRecords + 1)
		}
		var dead []uint64
		if rng.Intn(3) == 0 {
			dead = make([]uint64, (numRecords+63)/64)
			for i := range dead {
				dead[i] = rng.Uint64() & rng.Uint64()
			}
		}

		acc.Begin(tau)
		var gotProc, wantProc int64
		tokens := 1 + rng.Intn(8)
		for k := 0; k < tokens; k++ {
			mult := int32(1 + rng.Intn(40)) // sometimes ≥ satCount: exact fallback path
			if rng.Intn(2) == 0 {
				bs := randBitset(rng, numRecords, []float64{0.9, 0.3, 0.02}[rng.Intn(3)])
				gotProc += acc.AddBitset(bs, mult, limit)
				wantProc += ref.addBitset(bs, mult, limit)
			} else {
				var postings []Posting
				for r := 0; r < limit; r++ {
					if rng.Float64() < 0.05 {
						postings = append(postings, Posting{Record: r, Count: 1 + rng.Intn(3)})
					}
				}
				gotProc += acc.AddPostings(postings, mult)
				wantProc += ref.addPostings(postings, mult)
			}
		}
		gotProc += acc.FlushDense(limit)
		got := sortedCopy(acc.Collect(dead))
		want := sortedCopy(ref.collect(int32(tau), dead))

		if gotProc != wantProc {
			t.Fatalf("trial %d: processed = %d, want %d", trial, gotProc, wantProc)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d candidates, want %d (n=%d τ=%d limit=%d)",
				trial, len(got), len(want), numRecords, tau, limit)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: candidate[%d] = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

// TestAccumulatorResize pins the arena invariant across shrink/grow cycles:
// a Reset to a larger corpus must observe zeroed counters even though the
// grown region overlaps the previous probe's touched list.
func TestAccumulatorResize(t *testing.T) {
	acc := NewAccumulator()
	for _, n := range []int{100, 40, 100, 70, 130} {
		acc.Reset(n)
		acc.Begin(1)
		postings := make([]Posting, 0, n)
		for r := 0; r < n; r++ {
			postings = append(postings, Posting{Record: r, Count: 1})
		}
		acc.AddPostings(postings, 1)
		got := acc.Collect(nil)
		if len(got) != n {
			t.Fatalf("Reset(%d): %d candidates, want %d", n, len(got), n)
		}
	}
}

// TestHybridize pins the representation split and the accessor semantics on
// a hybridized index.
func TestHybridize(t *testing.T) {
	ix := New(4)
	for rec := 0; rec < 8; rec++ {
		ids := []uint32{0}
		if rec%2 == 0 {
			ids = append(ids, 1)
		}
		if rec == 3 {
			ids = append(ids, 2, 2, 2) // count 3: surplus 2 lands in the residual
		}
		if rec == 5 {
			ids = append(ids, 2)
		}
		ix.Add(rec, ids)
	}
	ix.Add(8, []uint32{2, 3})
	ix.Hybridize(3)

	if bs := ix.Bitset(0); bs == nil || bs.Card() != 8 {
		t.Fatalf("id 0 should be a bitmap of card 8, got %+v", bs)
	}
	if bs := ix.Bitset(1); bs == nil || bs.Card() != 4 {
		t.Fatalf("id 1 should be a bitmap of card 4, got %+v", bs)
	}
	if bs := ix.Bitset(0); len(bs.Residual()) != 0 {
		t.Fatalf("id 0 has no multi-occurrence postings; residual = %v", bs.Residual())
	}
	bs2 := ix.Bitset(2)
	if bs2 == nil || bs2.Card() != 3 {
		t.Fatalf("id 2 should be a bitmap of card 3, got %+v", bs2)
	}
	if res := bs2.Residual(); len(res) != 1 || res[0] != (Posting{Record: 3, Count: 2}) {
		t.Fatalf("id 2 residual = %v, want [{3 2}]", res)
	}
	if ix.Bitset(3) != nil {
		t.Fatal("id 3 has a single posting and must stay in slice form")
	}
	if ix.Postings(0) != nil {
		t.Fatal("hybridized id 0 must release its slice form")
	}
	if got := ix.ListLength(0); got != 8 {
		t.Fatalf("ListLength(0) = %d, want 8", got)
	}
	if got := ix.ListLength(2); got != 3 {
		t.Fatalf("ListLength(2) = %d, want 3", got)
	}
	if got := ix.ListLength(3); got != 1 {
		t.Fatalf("ListLength(3) = %d, want 1", got)
	}
	if got, want := ix.DenseKeys(), 3; got != want {
		t.Fatalf("DenseKeys = %d, want %d", got, want)
	}
	if got, want := ix.SparseKeys(), 1; got != want {
		t.Fatalf("SparseKeys = %d, want %d", got, want)
	}
	want := []uint32{0, 1, 2, 3}
	keys := ix.Keys()
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}
	for i := range keys {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add after Hybridize must panic")
		}
	}()
	ix.Add(9, []uint32{0})
}
