// Package matching implements maximum-weight bipartite matching, the
// building block of Eq. (6) in the paper: the numerator of SIM(P_S, P_T) is
// the maximum-weight matching of the segment bipartite graph, which the
// paper computes with the Hungarian algorithm.
//
// The solver works on dense weight matrices (rows = segments of S, columns
// = segments of T). Weights must be non-negative; missing edges are encoded
// as weight 0 and never decrease the optimum because leaving a vertex
// unmatched contributes exactly 0.
package matching

import "math"

// epsilon guards floating-point comparisons inside the Hungarian algorithm.
const epsilon = 1e-12

// Assignment describes one matched pair of the optimal matching.
type Assignment struct {
	Row, Col int
	Weight   float64
}

// Result is the outcome of a maximum-weight matching computation.
type Result struct {
	// Total is the sum of matched edge weights.
	Total float64
	// Pairs lists the matched (row, col) pairs with non-zero weight.
	Pairs []Assignment
	// RowMatch[i] is the column matched to row i, or -1.
	RowMatch []int
	// ColMatch[j] is the row matched to column j, or -1.
	ColMatch []int
}

// MaxWeight computes a maximum-weight bipartite matching of the given
// weight matrix using the Jonker–Volgenant style O(n^3) Hungarian algorithm
// (the same asymptotics as [38] in the paper). weights[i][j] is the weight
// of matching row i with column j; all rows must have equal length.
//
// Negative weights are treated as 0 (an unmatched pair is always at least
// as good), so the returned Total is always ≥ 0.
func MaxWeight(weights [][]float64) Result {
	n := len(weights)
	m := 0
	if n > 0 {
		m = len(weights[0])
	}
	res := Result{
		RowMatch: make([]int, n),
		ColMatch: make([]int, m),
	}
	for i := range res.RowMatch {
		res.RowMatch[i] = -1
	}
	for j := range res.ColMatch {
		res.ColMatch[j] = -1
	}
	if n == 0 || m == 0 {
		return res
	}

	// The assignment algorithm below solves a *minimisation* over a square
	// cost matrix; convert max-weight to min-cost by negating against the
	// maximum weight and padding to square with zero-benefit cells.
	size := n
	if m > size {
		size = m
	}
	maxW := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			w := weights[i][j]
			if w > maxW {
				maxW = w
			}
		}
	}
	cost := make([][]float64, size)
	for i := range cost {
		cost[i] = make([]float64, size)
		for j := range cost[i] {
			w := 0.0
			if i < n && j < m && weights[i][j] > 0 {
				w = weights[i][j]
			}
			cost[i][j] = maxW - w
		}
	}

	rowSol := hungarianMin(cost)

	for i := 0; i < n; i++ {
		j := rowSol[i]
		if j < 0 || j >= m {
			continue
		}
		w := weights[i][j]
		if w <= epsilon {
			continue // matched to a padding / zero edge: treat as unmatched
		}
		res.RowMatch[i] = j
		res.ColMatch[j] = i
		res.Total += w
		res.Pairs = append(res.Pairs, Assignment{Row: i, Col: j, Weight: w})
	}
	return res
}

// hungarianMin solves the square min-cost assignment problem and returns,
// for every row, the assigned column. Implementation follows the classic
// shortest augmenting path formulation with potentials (u, v).
func hungarianMin(cost [][]float64) []int {
	n := len(cost)
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j] = row assigned to column j (1-based), 0 = none
	way := make([]int, n+1) // way[j] = previous column on the augmenting path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	rowSol := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			rowSol[p[j]-1] = j - 1
		}
	}
	return rowSol
}

// MaxWeightGreedy computes a 2-approximate matching by repeatedly taking the
// heaviest remaining edge. It exists as a fast verification-stage fallback
// and as an oracle-free cross-check in tests; the join pipeline uses
// MaxWeight.
func MaxWeightGreedy(weights [][]float64) Result {
	n := len(weights)
	m := 0
	if n > 0 {
		m = len(weights[0])
	}
	res := Result{RowMatch: make([]int, n), ColMatch: make([]int, m)}
	for i := range res.RowMatch {
		res.RowMatch[i] = -1
	}
	for j := range res.ColMatch {
		res.ColMatch[j] = -1
	}
	type edge struct {
		i, j int
		w    float64
	}
	edges := make([]edge, 0, n*m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if weights[i][j] > epsilon {
				edges = append(edges, edge{i, j, weights[i][j]})
			}
		}
	}
	// Simple selection of the best edge each round; the edge count in
	// verification is tiny (segments per string), so O(E^2) is fine.
	usedRow := make([]bool, n)
	usedCol := make([]bool, m)
	for {
		best := -1
		bestW := 0.0
		for k, e := range edges {
			if usedRow[e.i] || usedCol[e.j] {
				continue
			}
			if e.w > bestW {
				bestW = e.w
				best = k
			}
		}
		if best < 0 {
			break
		}
		e := edges[best]
		usedRow[e.i] = true
		usedCol[e.j] = true
		res.RowMatch[e.i] = e.j
		res.ColMatch[e.j] = e.i
		res.Total += e.w
		res.Pairs = append(res.Pairs, Assignment{Row: e.i, Col: e.j, Weight: e.w})
	}
	return res
}
