// Package matching implements maximum-weight bipartite matching, the
// building block of Eq. (6) in the paper: the numerator of SIM(P_S, P_T) is
// the maximum-weight matching of the segment bipartite graph, which the
// paper computes with the Hungarian algorithm.
//
// The solver works on dense weight matrices (rows = segments of S, columns
// = segments of T). Weights must be non-negative; missing edges are encoded
// as weight 0 and never decrease the optimum because leaving a vertex
// unmatched contributes exactly 0.
package matching

import (
	"math"

	"github.com/aujoin/aujoin/internal/strutil"
)

// epsilon guards floating-point comparisons inside the Hungarian algorithm.
const epsilon = 1e-12

// Assignment describes one matched pair of the optimal matching.
type Assignment struct {
	Row, Col int
	Weight   float64
}

// Result is the outcome of a maximum-weight matching computation.
type Result struct {
	// Total is the sum of matched edge weights.
	Total float64
	// Pairs lists the matched (row, col) pairs with non-zero weight.
	Pairs []Assignment
	// RowMatch[i] is the column matched to row i, or -1.
	RowMatch []int
	// ColMatch[j] is the row matched to column j, or -1.
	ColMatch []int
}

// MaxWeight computes a maximum-weight bipartite matching of the given
// weight matrix using the Jonker–Volgenant style O(n^3) Hungarian algorithm
// (the same asymptotics as [38] in the paper). weights[i][j] is the weight
// of matching row i with column j; all rows must have equal length.
//
// Negative weights are treated as 0 (an unmatched pair is always at least
// as good), so the returned Total is always ≥ 0.
func MaxWeight(weights [][]float64) Result {
	n := len(weights)
	m := 0
	if n > 0 {
		m = len(weights[0])
	}
	res := Result{
		RowMatch: make([]int, n),
		ColMatch: make([]int, m),
	}
	for i := range res.RowMatch {
		res.RowMatch[i] = -1
	}
	for j := range res.ColMatch {
		res.ColMatch[j] = -1
	}
	if n == 0 || m == 0 {
		return res
	}

	flat := make([]float64, n*m)
	for i := 0; i < n; i++ {
		copy(flat[i*m:(i+1)*m], weights[i])
	}
	var sc Scratch
	rowSol := sc.solve(flat, n, m)

	for i := 0; i < n; i++ {
		j := rowSol[i]
		if j < 0 || j >= m {
			continue
		}
		w := weights[i][j]
		if w <= epsilon {
			continue // matched to a padding / zero edge: treat as unmatched
		}
		res.RowMatch[i] = j
		res.ColMatch[j] = i
		res.Total += w
		res.Pairs = append(res.Pairs, Assignment{Row: i, Col: j, Weight: w})
	}
	return res
}

// Scratch holds the reusable buffers of the allocation-free matching solver
// used by the join verification hot path. A Scratch may be reused across any
// number of Total calls but must not be shared between goroutines. MaxWeight
// runs on a throwaway Scratch, so both entry points share one solver and
// return bit-identical totals for the same weights.
type Scratch struct {
	cost   []float64
	u, v   []float64
	p, way []int
	minv   []float64
	used   []bool
	rowSol []int
}

// Total computes the total weight of a maximum-weight bipartite matching of
// the n×m weight matrix given in row-major order, reusing the scratch
// buffers.
func (sc *Scratch) Total(weights []float64, n, m int) float64 {
	if n == 0 || m == 0 {
		return 0
	}
	rowSol := sc.solve(weights, n, m)
	total := 0.0
	for i := 0; i < n; i++ {
		j := rowSol[i]
		if j < 0 || j >= m {
			continue
		}
		w := weights[i*m+j]
		if w <= epsilon {
			continue // matched to a padding / zero edge: treat as unmatched
		}
		total += w
	}
	return total
}

// solve converts the max-weight problem to a square min-cost assignment —
// negating against the maximum weight and padding to square with
// zero-benefit cells — and returns the assigned column for every row.
func (sc *Scratch) solve(weights []float64, n, m int) []int {
	size := n
	if m > size {
		size = m
	}
	maxW := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if w := weights[i*m+j]; w > maxW {
				maxW = w
			}
		}
	}
	sc.cost = strutil.Resize(sc.cost, size*size)
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			w := 0.0
			if i < n && j < m && weights[i*m+j] > 0 {
				w = weights[i*m+j]
			}
			sc.cost[i*size+j] = maxW - w
		}
	}
	return sc.hungarianMinFlat(size)
}

// hungarianMinFlat solves the square min-cost assignment problem over the
// flat cost matrix held in the scratch using the classic shortest
// augmenting path formulation with potentials (u, v), reusing the scratch
// buffers.
func (sc *Scratch) hungarianMinFlat(n int) []int {
	const inf = math.MaxFloat64
	sc.u = strutil.Resize(sc.u, n+1)
	sc.v = strutil.Resize(sc.v, n+1)
	sc.p = strutil.Resize(sc.p, n+1)
	sc.way = strutil.Resize(sc.way, n+1)
	sc.minv = strutil.Resize(sc.minv, n+1)
	sc.used = strutil.Resize(sc.used, n+1)
	u, v, p, way := sc.u, sc.v, sc.p, sc.way
	for j := 0; j <= n; j++ {
		u[j], v[j], p[j], way[j] = 0, 0, 0, 0
	}
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv, used := sc.minv, sc.used
		for j := 0; j <= n; j++ {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := sc.cost[(i0-1)*n+(j-1)] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	sc.rowSol = strutil.Resize(sc.rowSol, n)
	for i := range sc.rowSol {
		sc.rowSol[i] = -1
	}
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			sc.rowSol[p[j]-1] = j - 1
		}
	}
	return sc.rowSol
}

// MaxWeightGreedy computes a 2-approximate matching by repeatedly taking the
// heaviest remaining edge. It exists as a fast verification-stage fallback
// and as an oracle-free cross-check in tests; the join pipeline uses
// MaxWeight.
func MaxWeightGreedy(weights [][]float64) Result {
	n := len(weights)
	m := 0
	if n > 0 {
		m = len(weights[0])
	}
	res := Result{RowMatch: make([]int, n), ColMatch: make([]int, m)}
	for i := range res.RowMatch {
		res.RowMatch[i] = -1
	}
	for j := range res.ColMatch {
		res.ColMatch[j] = -1
	}
	type edge struct {
		i, j int
		w    float64
	}
	edges := make([]edge, 0, n*m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if weights[i][j] > epsilon {
				edges = append(edges, edge{i, j, weights[i][j]})
			}
		}
	}
	// Simple selection of the best edge each round; the edge count in
	// verification is tiny (segments per string), so O(E^2) is fine.
	usedRow := make([]bool, n)
	usedCol := make([]bool, m)
	for {
		best := -1
		bestW := 0.0
		for k, e := range edges {
			if usedRow[e.i] || usedCol[e.j] {
				continue
			}
			if e.w > bestW {
				bestW = e.w
				best = k
			}
		}
		if best < 0 {
			break
		}
		e := edges[best]
		usedRow[e.i] = true
		usedCol[e.j] = true
		res.RowMatch[e.i] = e.j
		res.ColMatch[e.j] = e.i
		res.Total += e.w
		res.Pairs = append(res.Pairs, Assignment{Row: e.i, Col: e.j, Weight: e.w})
	}
	return res
}
