package matching

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForce enumerates all injective row→column assignments and returns the
// maximum total weight; exponential, only for tiny instances.
func bruteForce(weights [][]float64) float64 {
	n := len(weights)
	if n == 0 {
		return 0
	}
	m := len(weights[0])
	usedCol := make([]bool, m)
	var rec func(row int) float64
	rec = func(row int) float64 {
		if row == n {
			return 0
		}
		// Option: leave this row unmatched.
		best := rec(row + 1)
		for j := 0; j < m; j++ {
			if usedCol[j] || weights[row][j] <= 0 {
				continue
			}
			usedCol[j] = true
			v := weights[row][j] + rec(row+1)
			usedCol[j] = false
			if v > best {
				best = v
			}
		}
		return best
	}
	return rec(0)
}

func TestMaxWeightSimpleCases(t *testing.T) {
	tests := []struct {
		name    string
		weights [][]float64
		want    float64
	}{
		{"empty", nil, 0},
		{"one cell", [][]float64{{0.5}}, 0.5},
		{"zero cell", [][]float64{{0}}, 0},
		{"diagonal best", [][]float64{{1, 0}, {0, 1}}, 2},
		{"anti diagonal", [][]float64{{0, 1}, {1, 0}}, 2},
		{"conflict", [][]float64{{1, 0.9}, {0.95, 0}}, 1.85},
		{"rect rows>cols", [][]float64{{0.3}, {0.7}, {0.5}}, 0.7},
		{"rect cols>rows", [][]float64{{0.3, 0.7, 0.5}}, 0.7},
		{"paper figure1", [][]float64{
			// segments of S: coffee shop, latte, helsingki
			// segments of T: espresso, cafe, helsinki
			{0, 1, 0},     // coffee shop: synonym with cafe
			{0.8, 0, 0},   // latte: taxonomy with espresso
			{0, 0, 0.875}, // helsingki: jaccard with helsinki
		}, 2.675},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := MaxWeight(tt.weights)
			if math.Abs(got.Total-tt.want) > 1e-9 {
				t.Errorf("Total = %v, want %v", got.Total, tt.want)
			}
		})
	}
}

func TestMaxWeightMatchingIsValid(t *testing.T) {
	w := [][]float64{
		{0.9, 0.2, 0.0, 0.4},
		{0.8, 0.9, 0.1, 0.0},
		{0.0, 0.7, 0.6, 0.3},
	}
	res := MaxWeight(w)
	// Every row/col matched at most once, pairs consistent.
	seenCol := map[int]bool{}
	sum := 0.0
	for _, p := range res.Pairs {
		if seenCol[p.Col] {
			t.Fatalf("column %d matched twice", p.Col)
		}
		seenCol[p.Col] = true
		if res.RowMatch[p.Row] != p.Col || res.ColMatch[p.Col] != p.Row {
			t.Fatalf("inconsistent match arrays for pair %+v", p)
		}
		if math.Abs(w[p.Row][p.Col]-p.Weight) > 1e-12 {
			t.Fatalf("pair weight mismatch: %+v", p)
		}
		sum += p.Weight
	}
	if math.Abs(sum-res.Total) > 1e-9 {
		t.Errorf("sum of pairs %v != Total %v", sum, res.Total)
	}
}

func TestMaxWeightAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, m)
			for j := range w[i] {
				if rng.Float64() < 0.3 {
					continue // sparse zero entries
				}
				w[i][j] = math.Round(rng.Float64()*1000) / 1000
			}
		}
		got := MaxWeight(w).Total
		want := bruteForce(w)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d: MaxWeight = %v, brute force = %v, weights %v", trial, got, want, w)
		}
	}
}

func TestMaxWeightNegativeTreatedAsZero(t *testing.T) {
	w := [][]float64{{-1, 0.5}, {0.3, -2}}
	res := MaxWeight(w)
	if math.Abs(res.Total-0.8) > 1e-9 {
		t.Errorf("Total = %v, want 0.8", res.Total)
	}
	for _, p := range res.Pairs {
		if p.Weight <= 0 {
			t.Errorf("negative edge selected: %+v", p)
		}
	}
}

func TestMaxWeightGreedyIsHalfApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, m)
			for j := range w[i] {
				w[i][j] = rng.Float64()
			}
		}
		opt := MaxWeight(w).Total
		greedy := MaxWeightGreedy(w).Total
		if greedy > opt+1e-9 {
			t.Fatalf("greedy exceeded optimum: %v > %v", greedy, opt)
		}
		if greedy < opt/2-1e-9 {
			t.Fatalf("greedy below 1/2-approximation: %v < %v/2", greedy, opt)
		}
	}
}

func TestMaxWeightGreedyValidMatching(t *testing.T) {
	w := [][]float64{{0.5, 0.6}, {0.7, 0.1}}
	res := MaxWeightGreedy(w)
	if len(res.Pairs) != 2 {
		t.Fatalf("expected 2 pairs, got %d", len(res.Pairs))
	}
	if math.Abs(res.Total-1.3) > 1e-9 {
		t.Errorf("greedy total = %v, want 1.3", res.Total)
	}
	if res.RowMatch[0] != 1 || res.RowMatch[1] != 0 {
		t.Errorf("unexpected greedy matching %v", res.RowMatch)
	}
}

func TestEmptyDimensions(t *testing.T) {
	res := MaxWeight([][]float64{})
	if res.Total != 0 || len(res.Pairs) != 0 {
		t.Errorf("empty matrix result = %+v", res)
	}
	res = MaxWeight([][]float64{{}, {}})
	if res.Total != 0 {
		t.Errorf("zero-column result = %+v", res)
	}
	res = MaxWeightGreedy([][]float64{})
	if res.Total != 0 {
		t.Errorf("greedy empty result = %+v", res)
	}
}

// TestScratchTotalMatchesMaxWeight pins the bit-identity contract between
// the allocation-free flat solver and MaxWeight on random rectangular
// matrices of every small shape, reusing one scratch throughout.
func TestScratchTotalMatchesMaxWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var sc Scratch
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(7)
		m := 1 + rng.Intn(7)
		w := make([][]float64, n)
		flat := make([]float64, n*m)
		for i := range w {
			w[i] = make([]float64, m)
			for j := range w[i] {
				v := rng.Float64()
				switch rng.Intn(4) {
				case 0:
					v = 0 // sparse edges
				case 1:
					v = -v // negative weights are treated as 0
				}
				w[i][j] = v
				flat[i*m+j] = v
			}
		}
		want := MaxWeight(w).Total
		if got := sc.Total(flat, n, m); got != want {
			t.Fatalf("trial %d (%dx%d): Scratch.Total = %v, MaxWeight.Total = %v", trial, n, m, got, want)
		}
	}
	if sc.Total(nil, 0, 3) != 0 || sc.Total(nil, 3, 0) != 0 {
		t.Error("empty dimensions should yield 0")
	}
}

func BenchmarkMaxWeight10x10(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	w := make([][]float64, 10)
	for i := range w {
		w[i] = make([]float64, 10)
		for j := range w[i] {
			w[i][j] = rng.Float64()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxWeight(w)
	}
}
