package planner

import (
	"fmt"
	"sync/atomic"

	"github.com/aujoin/aujoin/internal/pebble"
)

// State is the planner's serializable feedback table. EWMA cells travel as
// raw IEEE-754 bits (the zero pattern doubles as "unobserved", exactly as
// in memory), counters as totals. Restoring the state is a warm-start
// optimization, never a correctness requirement: the planner only chooses
// between configurations that are each individually sound, so a planner
// restored with no state — or stale state — still yields bit-identical
// query results.
type State struct {
	TauMax         int
	Method         pebble.Method
	CandRatio      []uint64
	VerifyNs       []uint64
	LatNs          []uint64
	DPShrink       []uint64
	Decisions      []int64
	EpochDecisions []int64
	ExploreN       int64
	Plans          int64
	Fallbacks      int64
	Reanchors      int64
	Suggested      int64
}

// Export snapshots the feedback table. Concurrent Observe calls may land
// mid-snapshot; each cell is read atomically, and cross-cell skew is
// harmless for the same reason stale state is.
func (p *Planner) Export() *State {
	if p == nil {
		return nil
	}
	s := &State{
		TauMax:         p.tauMax,
		Method:         p.buildMethod,
		CandRatio:      exportEwmas(p.candRatio),
		VerifyNs:       exportEwmas(p.verifyNs),
		LatNs:          exportEwmas(p.latNs),
		DPShrink:       exportEwmas(p.dpShrink),
		Decisions:      exportCounters(p.decisions),
		EpochDecisions: exportCounters(p.epochDecisions),
		ExploreN:       p.exploreN.Load(),
		Plans:          p.plans.Load(),
		Fallbacks:      p.fallbacks.Load(),
		Reanchors:      p.reanchors.Load(),
		Suggested:      p.suggested.Load(),
	}
	return s
}

// Import loads a previously exported state into a freshly constructed
// planner. The state must match the planner's shape — same τ range, same
// build method, same table sizes; a mismatch (snapshot taken under a
// different configuration) is an error and leaves the planner cold, which
// is safe.
func (p *Planner) Import(s *State) error {
	if p == nil || s == nil {
		return nil
	}
	if s.TauMax != p.tauMax || s.Method != p.buildMethod {
		return fmt.Errorf("planner: state for method %v τ=%d does not match planner method %v τ=%d",
			s.Method, s.TauMax, p.buildMethod, p.tauMax)
	}
	if len(s.CandRatio) != len(p.candRatio) || len(s.VerifyNs) != len(p.verifyNs) ||
		len(s.LatNs) != len(p.latNs) || len(s.DPShrink) != len(p.dpShrink) ||
		len(s.Decisions) != len(p.decisions) || len(s.EpochDecisions) != len(p.epochDecisions) {
		return fmt.Errorf("planner: state table sizes do not match")
	}
	importEwmas(p.candRatio, s.CandRatio)
	importEwmas(p.verifyNs, s.VerifyNs)
	importEwmas(p.latNs, s.LatNs)
	importEwmas(p.dpShrink, s.DPShrink)
	importCounters(p.decisions, s.Decisions)
	importCounters(p.epochDecisions, s.EpochDecisions)
	p.exploreN.Store(s.ExploreN)
	p.plans.Store(s.Plans)
	p.fallbacks.Store(s.Fallbacks)
	p.reanchors.Store(s.Reanchors)
	if s.Suggested >= 1 && s.Suggested <= int64(p.tauMax) {
		p.suggested.Store(s.Suggested)
	}
	return nil
}

func exportEwmas(cells []ewma) []uint64 {
	out := make([]uint64, len(cells))
	for i := range cells {
		out[i] = cells[i].bits.Load()
	}
	return out
}

func importEwmas(cells []ewma, bits []uint64) {
	for i := range cells {
		cells[i].bits.Store(bits[i])
	}
}

func exportCounters(cells []atomic.Int64) []int64 {
	out := make([]int64, len(cells))
	for i := range cells {
		out[i] = cells[i].Load()
	}
	return out
}

func importCounters(cells []atomic.Int64, vals []int64) {
	for i := range cells {
		cells[i].Store(vals[i])
	}
}
