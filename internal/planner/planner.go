// Package planner picks the cheapest provably-sound probe-side
// configuration — signature-selection method and overlap constraint τ — for
// each query, from the query's own pebble statistics and the live document
// frequencies of the inverted index, and corrects its static cost model
// online with lock-free EWMA feedback from executed probes.
//
// # Soundness
//
// The indexed side is fixed at build time: every indexed record carries a
// valid τ_build-signature selected by the build method. The planner only
// ever switches the *probe* side, and only between configurations that are
// individually sound against that index:
//
//   - τ-signatures are nested prefixes: the heuristic bound
//     AS(i) + TW_{τ-1}(i-1) is monotone non-decreasing in τ, so the selected
//     prefix for τ' ≤ τ is a prefix of the one for τ. A valid τ-signature is
//     therefore also a valid τ'-signature for every τ' ≤ τ (the validity
//     condition — every position past the cut fails the bound — only gets
//     easier for smaller τ'), and the same holds for any *longer* valid
//     prefix, which is how the heuristic and DP selections relate (the DP
//     slack is a tighter upper bound, so DP cuts are never longer).
//
//   - Count filtering a probe's τ'-signature against the indexed
//     τ_build-signatures with threshold τ' (τ' ≤ τ_build) can only
//     over-admit: the indexed signatures are valid τ'-signatures too, so the
//     ≥ τ' overlap guarantee of the paper's Lemma applies verbatim, and
//     every truly similar pair still reaches verification.
//
// Exact thresholded verification then makes the final result bit-identical
// to any fixed configuration — the planner changes how much the filter
// over-admits, never what survives verification. The join package's
// property tests pin this equivalence.
//
// # Cost model
//
// For one prepared probe the planner computes the heuristic signature cut
// for every τ ∈ [1, τ_build] (one cheap backwards scan each; the cuts are
// nested) and, in a single pass over the longest prefix, the cumulative
// posting mass Σ ListLength(id) over distinct interned IDs. Per
// configuration it estimates
//
//	filter  ≈ c_post·mass + c_token·tokens      (posting folds, lookups)
//	cand    ≈ min(N, mass/τ) · ratio[bucket]    (counting bound, corrected)
//	verify  ≈ cand · verifyNs[bucket]
//	select  ≈ 0 for the heuristic (already paid while planning),
//	          c_dp·|pebbles|·|segments|·τ for the DP
//
// and picks the cheapest. DP signatures are estimated by a learned
// per-τ shrink factor (observed DP mass / heuristic mass) until a DP plan
// actually runs. ratio and verifyNs are per-(method, τ, query-size-class)
// EWMA buckets updated lock-free (atomic float bits, CAS) from observed
// executions — the size class keeps short head-token lookups (which
// over-admit relative to the counting bound) from contaminating the
// corrections learned on long near-duplicate probes (which under-admit),
// the two ends of a bimodal serving stream.
//
// The decomposed model only steers the cold start. Single-record requests
// also report their wall-clock latency, and once a (config, size-class)
// cell holds a measured latency the planner ranks that configuration by
// the measurement instead of the model — the model cannot see contention,
// cache behaviour or the true per-candidate rejection cost, the clock can.
// Convergence is a small bandit loop on top: while any configuration's
// latency cell for the query's size class is still unmeasured, plans are
// spent measuring those cells round-robin (play every arm once before
// exploiting — a cold arm whose model estimate is pessimistic would
// otherwise never be tried), and afterwards a deterministic exploration
// slot (one plan in 16) revisits configurations so cells gone stale under
// workload drift are re-measured. Latency cells average in log space
// (a geometric EWMA): tail samples from contention are multiplicative,
// not additive, so one 70 ms collision with a long query cannot bury a
// 4 ms arm for hundreds of plans. Reanchor decays the model corrections
// toward neutral after a re-finalize, when the corpus the estimates were
// learned against has been rebuilt, and re-suggests τ from the epoch's
// most-chosen configuration; measured latencies survive (the hardware did
// not change, and the exploration slot refreshes them anyway).
package planner

import (
	"fmt"
	"math"
	"sync/atomic"

	"github.com/aujoin/aujoin/internal/pebble"
)

// Mode selects between adaptive per-query planning and the fixed build-time
// configuration. The zero value is Auto.
type Mode int

const (
	// Auto plans each request: the cheapest sound (method, τ) pair wins.
	Auto Mode = iota
	// Fixed pins the build-time configuration (the pre-planner behaviour).
	Fixed
)

// Decision is the configuration picked for one request, plus the already
// selected probe signature on single-record paths (batch paths select their
// own signatures for the whole collection).
type Decision struct {
	// Method and Tau are the probe-side configuration to execute; Tau is
	// also the count-filter threshold.
	Method pebble.Method
	Tau    int
	// Sig is the probe signature selected under Method/Tau (zero on batch
	// decisions, where the caller selects per record).
	Sig pebble.Signature
	// EstCandidates is the corrected per-probe candidate estimate the
	// feedback loop compares observations against.
	EstCandidates float64
	// Planned marks an adaptive decision (false for fixed-mode or fallback
	// decisions, which must not feed the EWMA table).
	Planned bool

	bucket int
}

// Exec accumulates one request's observed execution; the sharded fan-out
// hands one Exec to every shard, so the totals arrive atomically.
type Exec struct {
	Candidates atomic.Int64
	VerifyNs   atomic.Int64
	// Pruned counts candidates skipped by the rising-floor upper-bound
	// check before Algorithm-1 verification ran; the verify-ns EWMA is
	// fed Candidates−Pruned so pruning makes verification look cheaper
	// per verified candidate, not per enumerated one.
	Pruned atomic.Int64
}

// exploreEvery is the deterministic exploration cadence: one plan in this
// many executes the next configuration in round-robin order instead of the
// cheapest-looking one, so stale latency measurements keep refreshing.
const exploreEvery = 16

// Counters is a snapshot of the planner's decision statistics, surfaced
// through DynamicStats / aujoind's /stats.
type Counters struct {
	Plans        int64
	Fallbacks    int64
	Reanchors    int64
	SuggestedTau int
	// Decisions counts plans per chosen configuration, keyed
	// "ufilter/t1", "auheur/t2", "audp/t3", ...
	Decisions map[string]int64
}

// Cost-model constants. Absolute scale is irrelevant (only ratios between
// configurations matter) and the candidate/verify terms are EWMA-corrected;
// these only have to be in the right ballpark for the cold start.
const (
	alpha            = 0.2    // EWMA smoothing factor (model corrections)
	costPostingNs    = 1.0    // per posting entry / bitmap bit folded
	costTokenNs      = 30.0   // per distinct signature token probed
	costVerifyNsInit = 1500.0 // per candidate, until feedback arrives
	costDPSelectNs   = 3.0    // per (pebble × segment × τ) DP cell
	dpShrinkInit     = 0.8    // DP/heuristic signature-mass ratio prior

	// Latency cells smooth harder and winsorize: configurations a few
	// percent apart must not flip ranking on every co-scheduling tail
	// sample (a 4 ms query measures ~70 ms when it lands behind a long
	// near-duplicate probe on a saturated worker pool).
	alphaLat  = 0.05 // EWMA smoothing factor for measured latencies
	latWinsor = 4.0  // samples clamp to [cell/4, cell·4] before folding
)

// nSize is the number of query-size classes the feedback table splits each
// (method, τ) configuration into; sizeClass maps a probe's pebble count to
// its class.
const nSize = 4

func sizeClass(pebbles int) int {
	switch {
	case pebbles <= 4:
		return 0
	case pebbles <= 16:
		return 1
	case pebbles <= 64:
		return 2
	default:
		return 3
	}
}

// Planner holds the static cost model and the online feedback table for one
// index (shared by all shards of a ShardedIndex — the corpus, and therefore
// the statistics, are global). All methods are safe for unbounded
// concurrency.
type Planner struct {
	tauMax      int
	buildMethod pebble.Method

	// Feedback buckets per (config, size class), where config index =
	// methodIdx·tauMax + (τ−1) with methodIdx 0 for the heuristic family
	// (U-Filter ≡ τ=1) and 1 for the DP, and bucket = config·nSize + size.
	candRatio []ewma // observed / estimated candidates per probe
	verifyNs  []ewma // observed verification ns per candidate
	latNs     []ewma // observed wall-clock ns per single-record request
	dpShrink  []ewma // per τ: DP signature mass / heuristic signature mass

	exploreN atomic.Int64 // plan counter driving the exploration slot

	decisions      []atomic.Int64 // lifetime plan counts per config
	epochDecisions []atomic.Int64 // since the last re-anchor; drives SuggestedTau
	plans          atomic.Int64
	fallbacks      atomic.Int64
	reanchors      atomic.Int64
	suggested      atomic.Int64
}

// New creates a planner for an index built with the given method and
// overlap constraint (the U-Filter fixes τ at 1, exactly as the build does).
func New(buildMethod pebble.Method, tau int) *Planner {
	if tau < 1 || buildMethod == pebble.UFilter {
		tau = 1
	}
	n := 2 * tau
	p := &Planner{
		tauMax:         tau,
		buildMethod:    buildMethod,
		candRatio:      make([]ewma, n*nSize),
		verifyNs:       make([]ewma, n*nSize),
		latNs:          make([]ewma, n*nSize),
		dpShrink:       make([]ewma, tau),
		decisions:      make([]atomic.Int64, n),
		epochDecisions: make([]atomic.Int64, n),
	}
	p.suggested.Store(int64(tau))
	return p
}

// TauMax returns the largest (and build-time) overlap constraint the
// planner may pick.
func (p *Planner) TauMax() int { return p.tauMax }

// FixedConfig is the non-planned decision for the build-time configuration:
// executing it is exactly today's fixed behaviour, and Observe ignores it.
func FixedConfig(method pebble.Method, tau int) Decision {
	return Decision{Method: method, Tau: tau, bucket: -1}
}

// configOf maps a configuration to its decision-counter index.
func (p *Planner) configOf(method pebble.Method, tau int) int {
	mi := 0
	if method == pebble.AUDP {
		mi = 1
	}
	return mi*p.tauMax + (tau - 1)
}

// bucketOf maps a configuration and a probe's pebble count to its feedback
// bucket; configOfBucket inverts the config part.
func (p *Planner) bucketOf(method pebble.Method, tau, pebbles int) int {
	return p.configOf(method, tau)*nSize + sizeClass(pebbles)
}

func configOfBucket(b int) int { return b / nSize }

// configLabel renders a config index as the /stats decision key.
func (p *Planner) configLabel(c int) string {
	tau := c%p.tauMax + 1
	switch {
	case c >= p.tauMax:
		return fmt.Sprintf("audp/t%d", tau)
	case tau == 1:
		return "ufilter/t1"
	default:
		return fmt.Sprintf("auheur/t%d", tau)
	}
}

// eval is the per-probe static state the cost model evaluates
// configurations against: the nested heuristic cuts per τ and the prefix
// sums of posting mass and distinct-token count up to the longest cut.
type eval struct {
	sigs []pebble.Signature // heuristic signature per τ (index τ, 1-based)
	cuts []int              // len(sigs[τ].Pebbles)
	mass []float64          // prefix posting mass over distinct known IDs
	toks []float64          // prefix distinct known-ID count
	segs float64
	plen float64
}

// prepareEval computes the τ-sweep of heuristic cuts and the posting-mass
// prefix sums for one prepared probe. ok is false when the probe has no
// pebbles (nothing to plan).
func (p *Planner) prepareEval(sel *pebble.Selector, pre pebble.Presig, listLen func(uint32) int) (eval, bool) {
	var ev eval
	if len(pre.Pebbles) == 0 {
		return ev, false
	}
	ev.sigs = make([]pebble.Signature, p.tauMax+1)
	ev.cuts = make([]int, p.tauMax+1)
	maxCut := 0
	for tau := 1; tau <= p.tauMax; tau++ {
		ev.sigs[tau] = sel.Select(pre, pebble.AUHeuristic, tau)
		ev.cuts[tau] = len(ev.sigs[tau].Pebbles)
		if ev.cuts[tau] > maxCut {
			maxCut = ev.cuts[tau]
		}
	}
	ev.mass = make([]float64, maxCut+1)
	ev.toks = make([]float64, maxCut+1)
	lastID, haveLast := uint32(0), false
	for i := 0; i < maxCut; i++ {
		ev.mass[i+1] = ev.mass[i]
		ev.toks[i+1] = ev.toks[i]
		id := pre.Pebbles[i].ID
		if id == pebble.NoID || (haveLast && id == lastID) {
			// Unknown key (no postings) or a duplicate of the previous ID:
			// duplicates fold into one accumulator pass via multiplicity, so
			// they add overlap weight but no posting cost.
			continue
		}
		lastID, haveLast = id, true
		ev.mass[i+1] += float64(listLen(id))
		ev.toks[i+1]++
	}
	ev.segs = float64(len(pre.Segments))
	if ev.segs < 1 {
		ev.segs = 1
	}
	ev.plen = float64(len(pre.Pebbles))
	return ev, true
}

// configCost estimates the execution cost of one configuration for one
// evaluated probe, returning the cost, the corrected candidate estimate and
// the feedback bucket.
func (p *Planner) configCost(ev eval, method pebble.Method, tau, numRecords int) (cost, cand float64, bucket int) {
	mass, toks := ev.mass[ev.cuts[tau]], ev.toks[ev.cuts[tau]]
	selCost := 0.0
	if method == pebble.AUDP {
		shrink := p.dpShrink[tau-1].value(dpShrinkInit)
		mass *= shrink
		toks *= shrink
		selCost = costDPSelectNs * ev.plen * ev.segs * float64(tau)
	}
	bucket = p.bucketOf(method, tau, int(ev.plen))
	n := float64(numRecords)
	cand = mass / float64(tau)
	if cand > n {
		cand = n
	}
	cand *= p.candRatio[bucket].value(1.0)
	if cand > n {
		cand = n
	}
	vns := p.verifyNs[bucket].value(costVerifyNsInit)
	cost = selCost + costPostingNs*mass + costTokenNs*toks + vns*cand
	return cost, cand, bucket
}

// fallback is the decision when planning is impossible (empty probe, empty
// corpus): the build-time configuration, selected directly.
func (p *Planner) fallback(sel *pebble.Selector, pre pebble.Presig) Decision {
	p.fallbacks.Add(1)
	d := FixedConfig(p.buildMethod, p.tauMax)
	d.Sig = sel.Select(pre, p.buildMethod, p.tauMax)
	return d
}

// Plan picks the cheapest sound configuration for one prepared probe
// against an index of numRecords records whose live posting lengths listLen
// reads. The returned decision carries the selected probe signature.
func (p *Planner) Plan(sel *pebble.Selector, pre pebble.Presig, listLen func(uint32) int, numRecords int) Decision {
	if numRecords <= 0 {
		return p.fallback(sel, pre)
	}
	ev, ok := p.prepareEval(sel, pre, listLen)
	if !ok {
		return p.fallback(sel, pre)
	}
	// Exploration slot: revisit configurations round-robin so every
	// (config, size-class) latency cell keeps a fresh measurement. Sound by
	// construction — any configuration in the sweep is.
	if n := p.exploreN.Add(1); n%exploreEvery == 0 {
		if cfg := int(n/exploreEvery) % (2 * p.tauMax); cfg != p.tauMax { // (DP, τ=1) has no slot
			tau := cfg%p.tauMax + 1
			method := pebble.AUHeuristic
			if cfg >= p.tauMax {
				method = pebble.AUDP
			}
			_, cand, bucket := p.configCost(ev, method, tau, numRecords)
			return p.finish(sel, pre, ev,
				Decision{Method: method, Tau: tau, EstCandidates: cand, Planned: true, bucket: bucket})
		}
	}
	best := Decision{bucket: -1}
	bestCost := math.Inf(1)
	var unmeasured []Decision
	for tau := 1; tau <= p.tauMax; tau++ {
		for mi := 0; mi < 2; mi++ {
			if mi == 1 && tau == 1 {
				continue // DP ≡ heuristic at τ = 1 (identical cut)
			}
			method := pebble.AUHeuristic
			if mi == 1 {
				method = pebble.AUDP
			}
			cost, cand, bucket := p.configCost(ev, method, tau, numRecords)
			// A measured wall-clock latency beats the decomposed estimate:
			// it prices contention and the true rejection cost the model
			// cannot see. Configurations this size class has never executed
			// collect in unmeasured and are played first.
			if l := p.latNs[bucket].value(0); l > 0 {
				cost = l
			} else {
				unmeasured = append(unmeasured,
					Decision{Method: method, Tau: tau, EstCandidates: cand, Planned: true, bucket: bucket})
			}
			if cost < bestCost {
				bestCost = cost
				best = Decision{Method: method, Tau: tau, EstCandidates: cand, Planned: true, bucket: bucket}
			}
		}
	}
	// Forced initial sampling: measure every arm once before exploiting —
	// an arm whose model estimate is pessimistic would otherwise never be
	// tried, however cheap it really is. Rotation spreads concurrent cold
	// plans across the still-unmeasured arms.
	if len(unmeasured) > 0 {
		return p.finish(sel, pre, ev, unmeasured[int(p.exploreN.Load())%len(unmeasured)])
	}
	if best.bucket < 0 {
		return p.fallback(sel, pre)
	}
	return p.finish(sel, pre, ev, best)
}

// finish resolves the probe signature for a chosen single-record decision
// and books the decision counters.
func (p *Planner) finish(sel *pebble.Selector, pre pebble.Presig, ev eval, d Decision) Decision {
	if d.Method == pebble.AUDP {
		d.Sig = sel.Select(pre, pebble.AUDP, d.Tau)
		// The DP cut is never longer than the heuristic cut for the same τ,
		// so its prefix mass is already tabulated: learn the shrink factor
		// from the plan we are about to execute.
		if hm := ev.mass[ev.cuts[d.Tau]]; hm > 0 {
			p.dpShrink[d.Tau-1].update(ev.mass[len(d.Sig.Pebbles)] / hm)
		}
	} else {
		d.Sig = ev.sigs[d.Tau]
		if d.Tau == 1 {
			d.Method = pebble.UFilter // τ=1 heuristic IS the U-Filter
		}
	}
	p.plans.Add(1)
	cfg := configOfBucket(d.bucket)
	p.decisions[cfg].Add(1)
	p.epochDecisions[cfg].Add(1)
	return d
}

// PlanBatch picks one configuration for a whole probe batch from a sample
// of prepared probes: per-configuration costs are summed over the sample and
// the cheapest total wins, so the batch pays one plan and one signature pass.
// The decision carries no signature — the caller selects per record with the
// chosen method and τ.
func (p *Planner) PlanBatch(sel *pebble.Selector, pres []pebble.Presig, listLen func(uint32) int, numRecords int) Decision {
	if numRecords <= 0 || len(pres) == 0 {
		p.fallbacks.Add(1)
		return FixedConfig(p.buildMethod, p.tauMax)
	}
	n := 2 * p.tauMax
	total := make([]float64, n)
	cands := make([]float64, n)
	planned := 0
	plenSum := 0
	for _, pre := range pres {
		ev, ok := p.prepareEval(sel, pre, listLen)
		if !ok {
			continue
		}
		planned++
		plenSum += len(pre.Pebbles)
		for tau := 1; tau <= p.tauMax; tau++ {
			for mi := 0; mi < 2; mi++ {
				if mi == 1 && tau == 1 {
					continue
				}
				method := pebble.AUHeuristic
				if mi == 1 {
					method = pebble.AUDP
				}
				cost, cand, bucket := p.configCost(ev, method, tau, numRecords)
				cfg := configOfBucket(bucket)
				total[cfg] += cost
				cands[cfg] += cand
			}
		}
	}
	if planned == 0 {
		p.fallbacks.Add(1)
		return FixedConfig(p.buildMethod, p.tauMax)
	}
	bestCfg, bestCost := -1, math.Inf(1)
	for c := 0; c < n; c++ {
		if c == p.tauMax {
			continue // (DP, τ=1) is never evaluated
		}
		if total[c] > 0 || cands[c] > 0 || c%p.tauMax == 0 {
			if total[c] < bestCost {
				bestCost = total[c]
				bestCfg = c
			}
		}
	}
	if bestCfg < 0 {
		p.fallbacks.Add(1)
		return FixedConfig(p.buildMethod, p.tauMax)
	}
	tau := bestCfg%p.tauMax + 1
	method := pebble.AUHeuristic
	if bestCfg >= p.tauMax {
		method = pebble.AUDP
	} else if tau == 1 {
		method = pebble.UFilter
	}
	d := Decision{
		Method:        method,
		Tau:           tau,
		EstCandidates: cands[bestCfg] / float64(planned),
		Planned:       true,
		// Feedback lands in the sample's mean size class — a batch is
		// usually homogeneous enough for that to be the right cell.
		bucket: bestCfg*nSize + sizeClass(plenSum/planned),
	}
	p.plans.Add(1)
	p.decisions[bestCfg].Add(1)
	p.epochDecisions[bestCfg].Add(1)
	return d
}

// Observe folds one executed request into the feedback table: candidates
// and verifyNs are request totals (across shards), verified the subset of
// candidates that actually ran Algorithm-1 verification (candidates minus
// upper-bound-pruned; pass candidates when no pruning applies), probes the
// number of probe records the request planned for (1 for single-record
// queries), and elapsedNs the request's wall-clock latency — 0 when the
// caller has no meaningful per-request clock (batch joins amortise across
// a collection, so their wall time would poison the single-record latency
// cells). Non-planned decisions are ignored.
func (p *Planner) Observe(d Decision, candidates, verified, probes, verifyNs, elapsedNs int64) {
	if p == nil || !d.Planned || d.bucket < 0 {
		return
	}
	if probes <= 0 {
		probes = 1
	}
	est := d.EstCandidates
	if est < 0.5 {
		est = 0.5
	}
	ratio := clamp(float64(candidates)/float64(probes)/est, 1.0/64, 64)
	p.candRatio[d.bucket].update(ratio)
	if verified > 0 && verifyNs > 0 {
		p.verifyNs[d.bucket].update(clamp(float64(verifyNs)/float64(verified), 1, 1e8))
	}
	if elapsedNs > 0 {
		p.latNs[d.bucket].updateGeo(clamp(float64(elapsedNs)/float64(probes), 1, 1e10), alphaLat, latWinsor)
	}
}

// ObserveExec is Observe over a fan-out accumulator.
func (p *Planner) ObserveExec(d Decision, ex *Exec, probes, elapsedNs int64) {
	if p == nil || ex == nil {
		return
	}
	cands := ex.Candidates.Load()
	p.Observe(d, cands, cands-ex.Pruned.Load(), probes, ex.VerifyNs.Load(), elapsedNs)
}

// Reanchor re-anchors the feedback table after a re-finalize: the candidate
// corrections and DP shrink factors decay halfway toward their neutral
// priors (the corpus they were learned against was just rebuilt; the
// verify-ns buckets are a hardware property and survive), and the cached τ
// suggestion is recomputed from the epoch's most-chosen configuration —
// previously the build-time value silently survived every rebuild.
func (p *Planner) Reanchor() {
	if p == nil {
		return
	}
	p.reanchors.Add(1)
	perTau := make([]int64, p.tauMax+1)
	for b := range p.epochDecisions {
		perTau[b%p.tauMax+1] += p.epochDecisions[b].Swap(0)
	}
	bestTau, bestCount := 0, int64(0)
	for tau := 1; tau <= p.tauMax; tau++ {
		if perTau[tau] > bestCount {
			bestTau, bestCount = tau, perTau[tau]
		}
	}
	if bestCount > 0 {
		p.suggested.Store(int64(bestTau))
	}
	for i := range p.candRatio {
		p.candRatio[i].decay(1.0)
	}
	for i := range p.dpShrink {
		p.dpShrink[i].decay(dpShrinkInit)
	}
}

// SuggestedTau returns the planner's current τ suggestion: the build-time τ
// until a re-anchor has observed a planned workload, the workload's
// most-chosen τ afterwards.
func (p *Planner) SuggestedTau() int {
	if p == nil {
		return 0
	}
	return int(p.suggested.Load())
}

// Counters snapshots the decision statistics.
func (p *Planner) Counters() Counters {
	if p == nil {
		return Counters{}
	}
	c := Counters{
		Plans:        p.plans.Load(),
		Fallbacks:    p.fallbacks.Load(),
		Reanchors:    p.reanchors.Load(),
		SuggestedTau: p.SuggestedTau(),
	}
	for b := range p.decisions {
		if n := p.decisions[b].Load(); n > 0 {
			if c.Decisions == nil {
				c.Decisions = make(map[string]int64)
			}
			c.Decisions[p.configLabel(b)] = n
		}
	}
	return c
}

// ewma is a lock-free exponentially weighted moving average: the float64
// value lives as its IEEE bits in an atomic word, updated by CAS. The zero
// bit pattern doubles as "no observation yet" (legitimate values are
// clamped strictly positive).
type ewma struct{ bits atomic.Uint64 }

// value returns the current average, or def before the first observation.
func (e *ewma) value(def float64) float64 {
	b := e.bits.Load()
	if b == 0 {
		return def
	}
	return math.Float64frombits(b)
}

// update folds one observation in.
func (e *ewma) update(x float64) {
	for {
		old := e.bits.Load()
		next := x
		if old != 0 {
			next = (1-alpha)*math.Float64frombits(old) + alpha*x
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// updateGeo folds one observation in geometrically — an EWMA of the
// logarithm with smoothing factor a, the sample winsorized to within a
// factor winsor of the current value. Heavy-tailed samples (latencies
// under contention) pull the average by a small bounded factor instead of
// burying it; sustained drift still walks the cell there multiplicatively.
func (e *ewma) updateGeo(x, a, winsor float64) {
	for {
		old := e.bits.Load()
		next := x
		if old != 0 {
			v := math.Float64frombits(old)
			next = math.Exp((1-a)*math.Log(v) + a*math.Log(clamp(x, v/winsor, v*winsor)))
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// decay moves the average halfway toward the neutral prior (no-op before
// the first observation).
func (e *ewma) decay(neutral float64) {
	for {
		old := e.bits.Load()
		if old == 0 {
			return
		}
		next := (math.Float64frombits(old) + neutral) / 2
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
