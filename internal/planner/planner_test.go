package planner

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/sim"
	"github.com/aujoin/aujoin/internal/synonym"
	"github.com/aujoin/aujoin/internal/taxonomy"
)

// testSelector builds a real Selector over a small corpus so plans run
// against genuine pebble statistics: a skewed shared vocabulary (dense
// posting lists) plus per-record unique tokens (sparse lists).
func testSelector(theta float64) (*pebble.Selector, func(uint32) int, int) {
	ctx := sim.NewContext(synonym.NewRuleSet(), taxonomy.NewTree("T"))
	gen := pebble.NewGenerator(ctx)
	order := pebble.NewOrder()
	const n = 200
	corpus := make([][]string, n)
	listLen := make(map[uint32]int)
	for i := range corpus {
		toks := []string{
			fmt.Sprintf("tok%02d", i%7),     // very dense
			fmt.Sprintf("tok%02d", 10+i%23), // medium
			fmt.Sprintf("uniq%d", i),        // singleton
			fmt.Sprintf("tok%02d", 40+i%51), // sparse
		}
		corpus[i] = toks
		pb, _ := gen.Pebbles(toks)
		order.Add(pb)
	}
	sel := pebble.NewSelector(gen, order, theta)
	for _, toks := range corpus {
		pb, _ := gen.Pebbles(toks)
		order.Intern(pb)
		seen := map[uint32]bool{}
		for _, p := range pb {
			if p.ID != pebble.NoID && !seen[p.ID] {
				seen[p.ID] = true
				listLen[p.ID]++
			}
		}
	}
	return sel, func(id uint32) int { return listLen[id] }, n
}

func TestNewClampsTau(t *testing.T) {
	if got := New(pebble.AUDP, 3).TauMax(); got != 3 {
		t.Errorf("TauMax = %d, want 3", got)
	}
	if got := New(pebble.AUDP, 0).TauMax(); got != 1 {
		t.Errorf("TauMax(τ=0) = %d, want 1", got)
	}
	// The U-Filter ignores τ at build time; the planner must as well.
	if got := New(pebble.UFilter, 5).TauMax(); got != 1 {
		t.Errorf("TauMax(UFilter, τ=5) = %d, want 1", got)
	}
}

func TestPlanPicksSoundConfig(t *testing.T) {
	sel, listLen, n := testSelector(0.8)
	p := New(pebble.AUDP, 3)
	pre := sel.Prepare(strings.Fields("tok00 tok12 tok45 uniq7 extra"))
	d := p.Plan(sel, pre, listLen, n)
	if !d.Planned {
		t.Fatalf("plan fell back: %+v", d)
	}
	if d.Tau < 1 || d.Tau > p.TauMax() {
		t.Fatalf("planned τ=%d outside [1, %d]", d.Tau, p.TauMax())
	}
	switch d.Method {
	case pebble.UFilter, pebble.AUHeuristic, pebble.AUDP:
	default:
		t.Fatalf("planned unknown method %v", d.Method)
	}
	if d.Method == pebble.UFilter && d.Tau != 1 {
		t.Fatalf("U-Filter decision with τ=%d", d.Tau)
	}
	if len(d.Sig.Pebbles) == 0 {
		t.Fatal("planned decision carries no signature")
	}
	c := p.Counters()
	if c.Plans != 1 || c.Fallbacks != 0 {
		t.Fatalf("counters after one plan: %+v", c)
	}
	if len(c.Decisions) != 1 {
		t.Fatalf("decision map after one plan: %v", c.Decisions)
	}
}

func TestPlanFallsBack(t *testing.T) {
	sel, listLen, n := testSelector(0.8)
	p := New(pebble.AUDP, 2)

	// Empty probe: nothing to plan, the build config executes.
	d := p.Plan(sel, sel.Prepare(nil), listLen, n)
	if d.Planned {
		t.Fatalf("empty probe produced a planned decision: %+v", d)
	}
	if d.Method != pebble.AUDP || d.Tau != 2 {
		t.Fatalf("fallback is not the build config: %+v", d)
	}

	// Empty corpus: same.
	d = p.Plan(sel, sel.Prepare(strings.Fields("tok00 tok01")), listLen, 0)
	if d.Planned {
		t.Fatalf("empty corpus produced a planned decision: %+v", d)
	}
	c := p.Counters()
	if c.Plans != 0 || c.Fallbacks != 2 {
		t.Fatalf("counters after two fallbacks: %+v", c)
	}

	// Observing a fallback (or any non-planned decision) must not touch the
	// feedback table.
	p.Observe(d, 1000, 1000, 1, 1e9, 0)
	for i := range p.candRatio {
		if p.candRatio[i].value(0) != 0 {
			t.Fatal("fallback observation reached the EWMA table")
		}
	}
}

func TestObserveFeedsEwma(t *testing.T) {
	p := New(pebble.AUDP, 2)
	d := Decision{Method: pebble.AUHeuristic, Tau: 2, EstCandidates: 100,
		Planned: true, bucket: p.bucketOf(pebble.AUHeuristic, 2, 3)}

	p.Observe(d, 200, 200, 1, 200*2000, 0)
	if got := p.candRatio[d.bucket].value(1.0); got != 2.0 {
		t.Errorf("candRatio after first observation = %v, want 2.0", got)
	}
	if got := p.verifyNs[d.bucket].value(0); got != 2000 {
		t.Errorf("verifyNs after first observation = %v, want 2000", got)
	}

	// Second observation folds in with α.
	p.Observe(d, 100, 100, 1, 0, 0)
	want := (1-alpha)*2.0 + alpha*1.0
	if got := p.candRatio[d.bucket].value(1.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("candRatio after second observation = %v, want %v", got, want)
	}

	// Extreme observations clamp instead of poisoning the table.
	p.Observe(Decision{Planned: true, EstCandidates: 1, bucket: d.bucket}, 1_000_000, 1_000_000, 1, 1, 0)
	if got := p.candRatio[d.bucket].value(1.0); got > 64*2 {
		t.Errorf("candRatio escaped the clamp: %v", got)
	}
}

func TestReanchorResuggestsTauAndDecays(t *testing.T) {
	sel, listLen, n := testSelector(0.8)
	p := New(pebble.AUDP, 3)
	if got := p.SuggestedTau(); got != 3 {
		t.Fatalf("initial SuggestedTau = %d, want build-time 3", got)
	}

	// Re-anchoring with no planned traffic keeps the build-time suggestion.
	p.Reanchor()
	if got := p.SuggestedTau(); got != 3 {
		t.Errorf("SuggestedTau after idle re-anchor = %d, want 3", got)
	}

	// Drive planned traffic, then force the epoch towards τ=2 and re-anchor:
	// the suggestion must follow the workload, not the build.
	for i := 0; i < 8; i++ {
		toks := strings.Fields(fmt.Sprintf("tok%02d tok%02d uniq%d", i%7, 10+i%23, i))
		p.Plan(sel, sel.Prepare(toks), listLen, n)
	}
	cfg := p.configOf(pebble.AUHeuristic, 2)
	b := p.bucketOf(pebble.AUHeuristic, 2, 3)
	p.epochDecisions[cfg].Add(1000)
	p.candRatio[b].update(8.0)
	p.Reanchor()
	if got := p.SuggestedTau(); got != 2 {
		t.Errorf("SuggestedTau after τ=2-dominated epoch = %d, want 2", got)
	}
	// Corrections decay halfway toward neutral; epoch counters reset.
	if got := p.candRatio[b].value(1.0); got >= 8.0 || got <= 1.0 {
		t.Errorf("candRatio did not decay toward 1.0: %v", got)
	}
	if p.epochDecisions[cfg].Load() != 0 {
		t.Error("epoch decisions survived the re-anchor")
	}
	if c := p.Counters(); c.Reanchors != 2 {
		t.Errorf("Reanchors = %d, want 2", c.Reanchors)
	}
}

func TestNilPlannerIsInert(t *testing.T) {
	var p *Planner
	p.Observe(Decision{Planned: true}, 1, 1, 1, 1, 1)
	p.ObserveExec(Decision{Planned: true}, &Exec{}, 1, 1)
	p.Reanchor()
	if p.SuggestedTau() != 0 {
		t.Error("nil SuggestedTau != 0")
	}
	if c := p.Counters(); c.Plans != 0 || c.Decisions != nil {
		t.Errorf("nil Counters = %+v", c)
	}
}

func TestEwma(t *testing.T) {
	var e ewma
	if e.value(42) != 42 {
		t.Error("unset ewma must return the default")
	}
	e.decay(1.0) // no-op before the first observation
	if e.value(42) != 42 {
		t.Error("decay on unset ewma stored a value")
	}
	e.update(10)
	if e.value(0) != 10 {
		t.Errorf("first update = %v, want 10", e.value(0))
	}
	e.update(20)
	want := (1-alpha)*10 + alpha*20
	if math.Abs(e.value(0)-want) > 1e-12 {
		t.Errorf("second update = %v, want %v", e.value(0), want)
	}
	before := e.value(0)
	e.decay(0)
	if math.Abs(e.value(0)-before/2) > 1e-12 {
		t.Errorf("decay = %v, want %v", e.value(0), before/2)
	}
}

func TestBucketLabels(t *testing.T) {
	p := New(pebble.AUDP, 3)
	got := map[string]bool{}
	for b := 0; b < 2*p.tauMax; b++ {
		got[p.configLabel(b)] = true
	}
	for _, want := range []string{"ufilter/t1", "auheur/t2", "auheur/t3", "audp/t1", "audp/t2", "audp/t3"} {
		if !got[want] {
			t.Errorf("missing bucket label %q (have %v)", want, got)
		}
	}
}
