package strutil

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		{"empty", "", ""},
		{"plain", "coffee shop", "coffee shop"},
		{"upper", "Coffee Shop", "coffee shop"},
		{"collapse spaces", "coffee   shop", "coffee shop"},
		{"tabs and newlines", "coffee\tshop\nlatte", "coffee shop latte"},
		{"leading trailing", "  espresso cafe  ", "espresso cafe"},
		{"only spaces", "   \t ", ""},
		{"unicode upper", "HELSINKI Café", "helsinki café"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Normalize(tt.in); got != tt.want {
				t.Errorf("Normalize(%q) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

func TestTokenize(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []string
	}{
		{"empty", "", nil},
		{"single", "coffee", []string{"coffee"}},
		{"poi", "coffee shop latte Helsingki", []string{"coffee", "shop", "latte", "helsingki"}},
		{"extra whitespace", "  espresso   cafe Helsinki ", []string{"espresso", "cafe", "helsinki"}},
		{"whitespace only", " \t\n", nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Tokenize(tt.in); !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestJoinTokensRoundTrip(t *testing.T) {
	in := "espresso cafe helsinki"
	if got := JoinTokens(Tokenize(in)); got != in {
		t.Errorf("round trip = %q, want %q", got, in)
	}
}

func TestQGramsPaperExample(t *testing.T) {
	// Example 2(i) of the paper: 2-grams of "Helsingki" and "Helsinki".
	s := QGrams("helsingki", 2)
	want := []string{"he", "el", "ls", "si", "in", "ng", "gk", "ki"}
	if !reflect.DeepEqual(s, want) {
		t.Errorf("QGrams(helsingki,2) = %v, want %v", s, want)
	}
	tSet := QGramSet("helsinki", 2)
	if len(tSet) != 7 {
		t.Errorf("QGramSet(helsinki,2) has %d grams, want 7", len(tSet))
	}
	// Their intersection must have 6 grams (sim_j = 6/9 in the paper).
	inter := OverlapCount(QGramSet("helsingki", 2), tSet)
	if inter != 6 {
		t.Errorf("overlap = %d, want 6", inter)
	}
}

func TestQGramsEdgeCases(t *testing.T) {
	if got := QGrams("", 2); got != nil {
		t.Errorf("QGrams(\"\",2) = %v, want nil", got)
	}
	if got := QGrams("ab", 0); got != nil {
		t.Errorf("QGrams with q=0 = %v, want nil", got)
	}
	if got := QGrams("a", 2); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("QGrams(a,2) = %v, want [a]", got)
	}
	if got := QGrams("abc", 3); !reflect.DeepEqual(got, []string{"abc"}) {
		t.Errorf("QGrams(abc,3) = %v, want [abc]", got)
	}
}

func TestQGramsCountProperty(t *testing.T) {
	f := func(s string, q uint8) bool {
		qq := int(q%5) + 1
		grams := QGrams(s, qq)
		if s == "" {
			return grams == nil
		}
		if len(s) < qq {
			return len(grams) == 1
		}
		return len(grams) == len(s)-qq+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQGramsReconstructProperty(t *testing.T) {
	// Every q-gram must be a substring of the input.
	f := func(s string) bool {
		for _, g := range QGrams(s, 3) {
			if !strings.Contains(s, g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenSetAndOverlap(t *testing.T) {
	a := TokenSet([]string{"coffee", "shop", "latte"})
	b := TokenSet([]string{"espresso", "cafe", "coffee"})
	if got := OverlapCount(a, b); got != 1 {
		t.Errorf("OverlapCount = %d, want 1", got)
	}
	if got := OverlapCount(b, a); got != 1 {
		t.Errorf("OverlapCount reversed = %d, want 1", got)
	}
	empty := TokenSet(nil)
	if got := OverlapCount(a, empty); got != 0 {
		t.Errorf("OverlapCount with empty = %d, want 0", got)
	}
}

func TestSpan(t *testing.T) {
	tokens := []string{"coffee", "shop", "latte", "helsingki"}
	sp := Span{Start: 0, End: 2}
	if sp.Len() != 2 {
		t.Errorf("Len = %d, want 2", sp.Len())
	}
	if got := sp.Text(tokens); got != "coffee shop" {
		t.Errorf("Text = %q, want %q", got, "coffee shop")
	}
	if !sp.Contains(1) || sp.Contains(2) {
		t.Errorf("Contains misbehaves: %v %v", sp.Contains(1), sp.Contains(2))
	}
	other := Span{Start: 1, End: 3}
	if !sp.Overlaps(other) || !other.Overlaps(sp) {
		t.Error("expected spans to overlap")
	}
	disjoint := Span{Start: 2, End: 4}
	if sp.Overlaps(disjoint) {
		t.Error("expected spans to be disjoint")
	}
	if got := (Span{Start: 3, End: 2}).Slice(tokens); got != nil {
		t.Errorf("invalid span Slice = %v, want nil", got)
	}
	if got := (Span{Start: 0, End: 10}).Slice(tokens); got != nil {
		t.Errorf("out of range span Slice = %v, want nil", got)
	}
}

func TestSpanOverlapsProperty(t *testing.T) {
	// Overlap is symmetric and consistent with Contains.
	f := func(a, b, c, d uint8) bool {
		s1 := Span{Start: int(a % 16), End: int(a%16) + int(b%8) + 1}
		s2 := Span{Start: int(c % 16), End: int(c%16) + int(d%8) + 1}
		if s1.Overlaps(s2) != s2.Overlaps(s1) {
			return false
		}
		// Overlap implies at least one shared position.
		shared := false
		for i := s1.Start; i < s1.End; i++ {
			if s2.Contains(i) {
				shared = true
				break
			}
		}
		return s1.Overlaps(s2) == shared
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewRecordAndCollection(t *testing.T) {
	r := NewRecord(7, "Coffee  Shop Latte")
	if r.ID != 7 || r.Raw != "Coffee  Shop Latte" {
		t.Errorf("unexpected record header %+v", r)
	}
	if !reflect.DeepEqual(r.Tokens, []string{"coffee", "shop", "latte"}) {
		t.Errorf("tokens = %v", r.Tokens)
	}
	coll := NewCollection([]string{"a b", "c"})
	if len(coll) != 2 || coll[0].ID != 0 || coll[1].ID != 1 {
		t.Errorf("unexpected collection %+v", coll)
	}
}
