// Package strutil provides the low-level string machinery used across the
// unified similarity-join framework: tokenisation, q-gram extraction,
// normalisation, and the Record type that every collection is made of.
//
// All higher-level packages (similarity measures, pebble signatures, join
// algorithms) operate on tokenised records produced here, so the exact
// tokenisation rules are centralised in this package.
package strutil

import (
	"strings"
	"unicode"
)

// Record is a single string record participating in a similarity join.
// Tokens caches the tokenisation of Raw so that join algorithms never
// re-tokenise inside inner loops.
type Record struct {
	// ID is the position of the record inside its collection. It is used
	// as the value stored in inverted lists and to identify result pairs.
	ID int
	// Raw is the original, unmodified string.
	Raw string
	// Tokens is the whitespace tokenisation of Raw after normalisation.
	Tokens []string
}

// NewRecord builds a Record with the given identifier, normalising and
// tokenising the raw string.
func NewRecord(id int, raw string) Record {
	return Record{ID: id, Raw: raw, Tokens: Tokenize(raw)}
}

// NewCollection converts a slice of raw strings into a slice of Records with
// consecutive identifiers starting at 0.
func NewCollection(raw []string) []Record {
	out := make([]Record, len(raw))
	for i, s := range raw {
		out[i] = NewRecord(i, s)
	}
	return out
}

// Normalize lower-cases the string and collapses any run of Unicode
// whitespace into a single ASCII space. Leading and trailing whitespace is
// removed. Normalisation keeps letters, digits and punctuation untouched so
// that q-grams remain meaningful for typo detection.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	prevSpace := true // swallow leading whitespace
	for _, r := range s {
		if unicode.IsSpace(r) {
			if !prevSpace {
				b.WriteByte(' ')
				prevSpace = true
			}
			continue
		}
		prevSpace = false
		b.WriteRune(unicode.ToLower(r))
	}
	return strings.TrimRight(b.String(), " ")
}

// Tokenize normalises the string and splits it on single spaces, returning
// the sequence of non-empty tokens. The returned slice is never nil for a
// string containing at least one non-space rune.
func Tokenize(s string) []string {
	n := Normalize(s)
	if n == "" {
		return nil
	}
	return strings.Split(n, " ")
}

// JoinTokens is the inverse of Tokenize for well-formed token slices: it
// joins tokens with single spaces.
func JoinTokens(tokens []string) string {
	return strings.Join(tokens, " ")
}

// QGrams returns the multiset of q-grams of s as defined in the paper
// (Section 2.1): every substring of length q, in order of occurrence. If
// len(s) < q the whole string is returned as a single gram so that very
// short tokens still produce a signature.
//
// The grams are computed on bytes of the normalised string; for the ASCII
// datasets used in the evaluation this is identical to rune-based grams and
// considerably faster.
func QGrams(s string, q int) []string {
	if q <= 0 {
		return nil
	}
	if s == "" {
		return nil
	}
	if len(s) < q {
		return []string{s}
	}
	grams := make([]string, 0, len(s)-q+1)
	for i := 0; i+q <= len(s); i++ {
		grams = append(grams, s[i:i+q])
	}
	return grams
}

// QGramSet returns the set (deduplicated) of q-grams of s. The paper's
// Jaccard coefficient (Eq. 1) is defined on gram sets, so the set form is
// what similarity computations use; the multiset form is what pebble
// generation uses (each occurrence is a pebble).
func QGramSet(s string, q int) map[string]struct{} {
	grams := QGrams(s, q)
	set := make(map[string]struct{}, len(grams))
	for _, g := range grams {
		set[g] = struct{}{}
	}
	return set
}

// TokenSet converts a token slice into a set.
func TokenSet(tokens []string) map[string]struct{} {
	set := make(map[string]struct{}, len(tokens))
	for _, t := range tokens {
		set[t] = struct{}{}
	}
	return set
}

// OverlapCount returns |a ∩ b| for two string sets.
func OverlapCount(a, b map[string]struct{}) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	n := 0
	for k := range a {
		if _, ok := b[k]; ok {
			n++
		}
	}
	return n
}

// Resize returns a slice of length n backed by s when its capacity allows,
// allocating otherwise. Existing contents are unspecified — callers must
// overwrite every element. It is the shared building block of the
// scratch-buffer reuse in the verification hot path.
func Resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Span identifies a run of consecutive tokens inside a tokenised string:
// the half-open interval [Start, End).
type Span struct {
	Start int // index of the first token, inclusive
	End   int // index one past the last token, exclusive
}

// Len returns the number of tokens covered by the span.
func (sp Span) Len() int { return sp.End - sp.Start }

// Overlaps reports whether two spans share at least one token position.
func (sp Span) Overlaps(other Span) bool {
	return sp.Start < other.End && other.Start < sp.End
}

// Contains reports whether position i falls inside the span.
func (sp Span) Contains(i int) bool { return i >= sp.Start && i < sp.End }

// Slice extracts the tokens covered by the span from the given token slice.
func (sp Span) Slice(tokens []string) []string {
	if sp.Start < 0 || sp.End > len(tokens) || sp.Start > sp.End {
		return nil
	}
	return tokens[sp.Start:sp.End]
}

// Text returns the space-joined text of the span over the given tokens.
func (sp Span) Text(tokens []string) string {
	return JoinTokens(sp.Slice(tokens))
}
