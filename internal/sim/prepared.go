package sim

import (
	"math/bits"
	"sort"

	"github.com/aujoin/aujoin/internal/strutil"
	"github.com/aujoin/aujoin/internal/taxonomy"
)

// GramSet is the deduplicated q-gram set of a string, sorted ascending.
// Unlike the map form returned by strutil.QGramSet it supports allocation-free
// intersection by merging, which is what the verification hot path needs.
type GramSet []string

// NewGramSet extracts, sorts and deduplicates the q-grams of s. The grams
// share s's backing storage, so a GramSet costs one slice beyond the string.
func NewGramSet(s string, q int) GramSet {
	grams := strutil.QGrams(s, q)
	if len(grams) == 0 {
		return nil
	}
	sort.Strings(grams)
	out := grams[:1]
	for _, g := range grams[1:] {
		if g != out[len(out)-1] {
			out = append(out, g)
		}
	}
	return out
}

// Overlap returns |a ∩ b| by merging the two sorted sets.
func (a GramSet) Overlap(b GramSet) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// SegmentData is the per-segment derivation table of the prepare-once
// verification engine: everything the base measures need about one token
// span, computed once per record instead of once per candidate pair. The
// zero value describes an empty span.
type SegmentData struct {
	// Text is the space-joined segment text.
	Text string
	// Grams is the sorted q-gram set of Text (nil when Jaccard is disabled).
	Grams GramSet
	// Node is the taxonomy entity the text maps to, or InvalidNode.
	Node taxonomy.NodeID
	// LHS and RHS list the identifiers (ascending) of the synonym rules whose
	// left / right side equals Text. The slices alias the rule set's index
	// and must not be modified.
	LHS, RHS []int
	// Sig is a 128-bit hashed bitmap over Grams: each gram sets bit
	// fnv64(gram) mod 128. It powers an exact-rejection prefilter in
	// SegmentJaccardData — the bound it yields is conservative, so a pair is
	// skipped only when the gram intersection is provably empty.
	Sig [2]uint64
}

func gramSignature(grams GramSet) [2]uint64 {
	var sig [2]uint64
	for _, g := range grams {
		h := fnv64(g)
		b := h & 127
		sig[b>>6] |= 1 << (b & 63)
	}
	return sig
}

func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// sigExcess returns the number of signature bits set in a but not in b. Each
// such bit is witnessed by at least one gram of a, and no gram of b hashes
// there, so at least that many grams of a are provably absent from b.
func sigExcess(a, b [2]uint64) int {
	return bits.OnesCount64(a[0]&^b[0]) + bits.OnesCount64(a[1]&^b[1])
}

// PrepareSegment derives the SegmentData of a token span under this context.
// The tokens must already be normalised (the output of strutil.Tokenize).
func (c *Context) PrepareSegment(tokens []string) SegmentData {
	d := SegmentData{Text: strutil.JoinTokens(tokens), Node: taxonomy.InvalidNode}
	if c.JaccardEnabled() {
		d.Grams = NewGramSet(d.Text, c.GramQ())
		d.Sig = gramSignature(d.Grams)
	}
	if c.SynonymEnabled() {
		d.LHS = c.Rules.ByLHSText(d.Text)
		d.RHS = c.Rules.ByRHSText(d.Text)
	}
	if c.TaxonomyEnabled() {
		if id, ok := c.Tax.LookupTokens(tokens); ok {
			d.Node = id
		}
	}
	return d
}

// SegmentJaccardData is SegmentJaccard over prepared gram sets; it returns
// exactly the value SegmentJaccard returns for the underlying spans.
func (c *Context) SegmentJaccardData(a, b *SegmentData) float64 {
	if a.Text == "" && b.Text == "" {
		return 1
	}
	if a.Text == "" || b.Text == "" {
		return 0
	}
	la, lb := len(a.Grams), len(b.Grams)
	if la == 0 && lb == 0 {
		// union == 0: identical to the merge path's answer.
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	// Signature prefilter: reject before the merge touches gram memory, but
	// only on proof of an empty intersection (so the result is unchanged).
	// Tier 1: no shared signature bits ⇒ no shared grams. Tier 2: every
	// signature bit of a absent from b witnesses ≥1 gram of a not in b (and
	// symmetrically), so |a∩b| ≤ la − sigExcess(a,b); a non-positive bound
	// proves inter == 0.
	if (a.Sig[0]&b.Sig[0])|(a.Sig[1]&b.Sig[1]) == 0 {
		return 0
	}
	if la-sigExcess(a.Sig, b.Sig) <= 0 || lb-sigExcess(b.Sig, a.Sig) <= 0 {
		return 0
	}
	inter := a.Grams.Overlap(b.Grams)
	union := la + lb - inter
	return float64(inter) / float64(union)
}

// SegmentSynonymData is SegmentSynonym over prepared rule-side id lists.
func (c *Context) SegmentSynonymData(a, b *SegmentData) float64 {
	if !c.SynonymEnabled() {
		return 0
	}
	s, ok := c.Rules.MatchIDLists(a.LHS, a.RHS, b.LHS, b.RHS)
	if !ok {
		return 0
	}
	return s
}

// SegmentTaxonomyData is SegmentTaxonomy over prepared entity nodes.
func (c *Context) SegmentTaxonomyData(a, b *SegmentData) float64 {
	if !c.TaxonomyEnabled() || a.Node == taxonomy.InvalidNode || b.Node == taxonomy.InvalidNode {
		return 0
	}
	return c.Tax.Similarity(a.Node, b.Node)
}

// MSimData implements Eq. (4) over prepared segment data. It evaluates the
// same measures in the same order as MSim and therefore returns bit-identical
// values for the same underlying token spans.
func (c *Context) MSimData(a, b *SegmentData) float64 {
	best := 0.0
	if c.JaccardEnabled() {
		if v := c.SegmentJaccardData(a, b); v > best {
			best = v
		}
	}
	if c.SynonymEnabled() {
		if v := c.SegmentSynonymData(a, b); v > best {
			best = v
		}
	}
	if c.TaxonomyEnabled() {
		if v := c.SegmentTaxonomyData(a, b); v > best {
			best = v
		}
	}
	return best
}
