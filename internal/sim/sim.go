// Package sim implements the individual (single-type) string similarity
// measures referenced in Section 2.1 and Section 6 of the paper: the
// gram-based syntactic measures (Jaccard, Cosine, Dice, Overlap), Hamming
// and Levenshtein distances, and thin adapters over the synonym and
// taxonomy substrates. The unified measure in internal/core composes these
// per-segment.
package sim

import (
	"github.com/aujoin/aujoin/internal/strutil"
	"github.com/aujoin/aujoin/internal/synonym"
	"github.com/aujoin/aujoin/internal/taxonomy"
)

// DefaultQ is the gram length used throughout the paper's examples (2-grams
// in Example 2) and the default for all gram-based measures in this
// repository.
const DefaultQ = 2

// Measure identifies one of the three base similarity types the unified
// framework combines.
type Measure int

const (
	// Jaccard is the gram-based syntactic measure of Eq. (1).
	Jaccard Measure = iota
	// Synonym is the rule-based semantic measure of Eq. (2).
	Synonym
	// Taxonomy is the hierarchy-based semantic measure of Eq. (3).
	Taxonomy
	numMeasures
)

// NumMeasures is the number of base measures.
const NumMeasures = int(numMeasures)

// String returns the single-letter code used by the paper's tables
// (J, S, T).
func (m Measure) String() string {
	switch m {
	case Jaccard:
		return "J"
	case Synonym:
		return "S"
	case Taxonomy:
		return "T"
	default:
		return "?"
	}
}

// MeasureSet is a bit set of enabled measures; the paper evaluates all seven
// non-empty combinations (J, S, T, TJ, TS, JS, TJS).
type MeasureSet uint8

// Set bits for the individual measures.
const (
	SetJaccard  MeasureSet = 1 << iota // J
	SetSynonym                         // S
	SetTaxonomy                        // T
)

// SetAll enables all three measures (the TJS configuration).
const SetAll = SetJaccard | SetSynonym | SetTaxonomy

// Has reports whether the given measure is enabled.
func (ms MeasureSet) Has(m Measure) bool {
	switch m {
	case Jaccard:
		return ms&SetJaccard != 0
	case Synonym:
		return ms&SetSynonym != 0
	case Taxonomy:
		return ms&SetTaxonomy != 0
	}
	return false
}

// String renders the combination in the paper's notation (e.g. "TJS").
func (ms MeasureSet) String() string {
	s := ""
	if ms.Has(Taxonomy) {
		s += "T"
	}
	if ms.Has(Jaccard) {
		s += "J"
	}
	if ms.Has(Synonym) {
		s += "S"
	}
	if s == "" {
		return "none"
	}
	return s
}

// ParseMeasureSet parses a combination string such as "TJS", "js" or "T".
// Unknown letters are ignored; an empty result defaults to SetAll.
func ParseMeasureSet(s string) MeasureSet {
	var ms MeasureSet
	for _, r := range s {
		switch r {
		case 'j', 'J':
			ms |= SetJaccard
		case 's', 'S':
			ms |= SetSynonym
		case 't', 'T':
			ms |= SetTaxonomy
		}
	}
	if ms == 0 {
		return SetAll
	}
	return ms
}

// JaccardGrams computes the Jaccard coefficient of the q-gram sets of two
// strings (Eq. 1). It returns 1 for two empty strings and 0 when exactly one
// is empty.
func JaccardGrams(s, t string, q int) float64 {
	if s == "" && t == "" {
		return 1
	}
	if s == "" || t == "" {
		return 0
	}
	gs := strutil.QGramSet(s, q)
	gt := strutil.QGramSet(t, q)
	inter := strutil.OverlapCount(gs, gt)
	union := len(gs) + len(gt) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// CosineGrams computes the cosine similarity of the q-gram sets of two
// strings: |A ∩ B| / sqrt(|A|·|B|).
func CosineGrams(s, t string, q int) float64 {
	if s == "" && t == "" {
		return 1
	}
	if s == "" || t == "" {
		return 0
	}
	gs := strutil.QGramSet(s, q)
	gt := strutil.QGramSet(t, q)
	inter := strutil.OverlapCount(gs, gt)
	if len(gs) == 0 || len(gt) == 0 {
		return 0
	}
	return float64(inter) / sqrtf(float64(len(gs))*float64(len(gt)))
}

// DiceGrams computes the Dice (Sørensen) coefficient of the q-gram sets of
// two strings: 2|A ∩ B| / (|A| + |B|).
func DiceGrams(s, t string, q int) float64 {
	if s == "" && t == "" {
		return 1
	}
	if s == "" || t == "" {
		return 0
	}
	gs := strutil.QGramSet(s, q)
	gt := strutil.QGramSet(t, q)
	inter := strutil.OverlapCount(gs, gt)
	den := len(gs) + len(gt)
	if den == 0 {
		return 1
	}
	return 2 * float64(inter) / float64(den)
}

// OverlapGrams computes the overlap coefficient of the q-gram sets:
// |A ∩ B| / min(|A|, |B|).
func OverlapGrams(s, t string, q int) float64 {
	if s == "" && t == "" {
		return 1
	}
	if s == "" || t == "" {
		return 0
	}
	gs := strutil.QGramSet(s, q)
	gt := strutil.QGramSet(t, q)
	inter := strutil.OverlapCount(gs, gt)
	minLen := len(gs)
	if len(gt) < minLen {
		minLen = len(gt)
	}
	if minLen == 0 {
		return 1
	}
	return float64(inter) / float64(minLen)
}

// sqrtf is a tiny Newton-iteration square root so the package stays free of
// math imports on the hot path; accuracy is far beyond what similarity
// thresholds need.
func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 32; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// HammingDistance returns the number of positions at which the two strings
// differ; strings of unequal length additionally count the length
// difference, following the convention of HmSearch-style gram comparisons.
func HammingDistance(s, t string) int {
	if len(s) > len(t) {
		s, t = t, s
	}
	d := len(t) - len(s)
	for i := 0; i < len(s); i++ {
		if s[i] != t[i] {
			d++
		}
	}
	return d
}

// Levenshtein returns the edit distance between two strings using the
// classic two-row dynamic program. It operates on bytes, which is exact for
// the ASCII evaluation datasets.
func Levenshtein(s, t string) int {
	if s == t {
		return 0
	}
	if len(s) == 0 {
		return len(t)
	}
	if len(t) == 0 {
		return len(s)
	}
	prev := make([]int, len(t)+1)
	cur := make([]int, len(t)+1)
	for j := 0; j <= len(t); j++ {
		prev[j] = j
	}
	for i := 1; i <= len(s); i++ {
		cur[0] = i
		for j := 1; j <= len(t); j++ {
			cost := 1
			if s[i-1] == t[j-1] {
				cost = 0
			}
			m := prev[j] + 1 // deletion
			if v := cur[j-1] + 1; v < m {
				m = v // insertion
			}
			if v := prev[j-1] + cost; v < m {
				m = v // substitution
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(t)]
}

// NormalizedEditSimilarity converts Levenshtein distance into a similarity
// in [0, 1]: 1 - ED(s,t)/max(|s|,|t|).
func NormalizedEditSimilarity(s, t string) float64 {
	if s == "" && t == "" {
		return 1
	}
	maxLen := len(s)
	if len(t) > maxLen {
		maxLen = len(t)
	}
	return 1 - float64(Levenshtein(s, t))/float64(maxLen)
}

// Context carries the knowledge sources and configuration every similarity
// computation needs. A single Context is shared by the unified measure, the
// pebble generator, and the join algorithms.
type Context struct {
	// Q is the gram length for the Jaccard measure; zero means DefaultQ.
	Q int
	// Rules is the synonym rule set; may be nil when the synonym measure is
	// disabled.
	Rules *synonym.RuleSet
	// Tax is the taxonomy hierarchy; may be nil when the taxonomy measure
	// is disabled.
	Tax *taxonomy.Tree
	// Measures selects which base measures participate in the unified
	// similarity. Zero means all measures.
	Measures MeasureSet
}

// NewContext builds a Context with the given knowledge sources and all
// measures enabled.
func NewContext(rules *synonym.RuleSet, tax *taxonomy.Tree) *Context {
	return &Context{Q: DefaultQ, Rules: rules, Tax: tax, Measures: SetAll}
}

// WithMeasures returns a copy of the context restricted to the given
// measures (used to reproduce the per-measure columns of Tables 8, 13 and
// Figure 6).
func (c *Context) WithMeasures(ms MeasureSet) *Context {
	cp := *c
	cp.Measures = ms
	return &cp
}

// GramQ returns the effective gram length.
func (c *Context) GramQ() int {
	if c == nil || c.Q <= 0 {
		return DefaultQ
	}
	return c.Q
}

// enabled reports whether measure m participates.
func (c *Context) enabled(m Measure) bool {
	if c == nil {
		return true
	}
	if c.Measures == 0 {
		return true
	}
	return c.Measures.Has(m)
}

// JaccardEnabled, SynonymEnabled and TaxonomyEnabled report whether the
// respective measure participates in this context (the measure must be both
// selected and backed by its knowledge source where one is required).
func (c *Context) JaccardEnabled() bool { return c.enabled(Jaccard) }

// SynonymEnabled reports whether the synonym measure participates.
func (c *Context) SynonymEnabled() bool { return c.enabled(Synonym) && c.Rules != nil }

// TaxonomyEnabled reports whether the taxonomy measure participates.
func (c *Context) TaxonomyEnabled() bool { return c.enabled(Taxonomy) && c.Tax != nil }

// SegmentJaccard returns the Jaccard similarity between two token spans
// rendered as text.
func (c *Context) SegmentJaccard(a, b []string) float64 {
	return JaccardGrams(strutil.JoinTokens(a), strutil.JoinTokens(b), c.GramQ())
}

// SegmentSynonym returns the synonym similarity between two token spans,
// 0 when the measure is disabled.
func (c *Context) SegmentSynonym(a, b []string) float64 {
	if !c.SynonymEnabled() {
		return 0
	}
	s, ok := c.Rules.MatchPair(a, b)
	if !ok {
		return 0
	}
	return s
}

// SegmentTaxonomy returns the taxonomy similarity between two token spans,
// 0 when either span is not a taxonomy entity or the measure is disabled.
func (c *Context) SegmentTaxonomy(a, b []string) float64 {
	if !c.TaxonomyEnabled() {
		return 0
	}
	na, ok := c.Tax.LookupTokens(a)
	if !ok {
		return 0
	}
	nb, ok := c.Tax.LookupTokens(b)
	if !ok {
		return 0
	}
	return c.Tax.Similarity(na, nb)
}

// MSim implements Eq. (4): the maximum of the enabled base measures applied
// to the two token spans. This is the per-vertex weight of the conflict
// graph and the per-edge weight of the bipartite matching.
func (c *Context) MSim(a, b []string) float64 {
	best := 0.0
	if c.JaccardEnabled() {
		if v := c.SegmentJaccard(a, b); v > best {
			best = v
		}
	}
	if c.SynonymEnabled() {
		if v := c.SegmentSynonym(a, b); v > best {
			best = v
		}
	}
	if c.TaxonomyEnabled() {
		if v := c.SegmentTaxonomy(a, b); v > best {
			best = v
		}
	}
	return best
}

// MSimBest returns both the best similarity and the measure attaining it.
func (c *Context) MSimBest(a, b []string) (float64, Measure) {
	best, bm := 0.0, Jaccard
	if c.JaccardEnabled() {
		if v := c.SegmentJaccard(a, b); v > best {
			best, bm = v, Jaccard
		}
	}
	if c.SynonymEnabled() {
		if v := c.SegmentSynonym(a, b); v > best {
			best, bm = v, Synonym
		}
	}
	if c.TaxonomyEnabled() {
		if v := c.SegmentTaxonomy(a, b); v > best {
			best, bm = v, Taxonomy
		}
	}
	return best, bm
}

// MaxRuleTokens returns the claw parameter k: the maximal number of tokens
// on any side of an applicable synonym rule or taxonomy entity.
func (c *Context) MaxRuleTokens() int {
	k := 1
	if c.SynonymEnabled() {
		if v := c.Rules.MaxSideTokens(); v > k {
			k = v
		}
	}
	if c.TaxonomyEnabled() {
		if v := c.Tax.MaxEntityTokens(); v > k {
			k = v
		}
	}
	return k
}
