package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/aujoin/aujoin/internal/synonym"
	"github.com/aujoin/aujoin/internal/taxonomy"
)

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestJaccardPaperExample(t *testing.T) {
	// Example 2(i): sim_j("Helsingki", "Helsinki") = 6/9.
	got := JaccardGrams("helsingki", "helsinki", 2)
	if !approxEq(got, 6.0/9.0) {
		t.Errorf("Jaccard = %v, want %v", got, 6.0/9.0)
	}
	// Figure 1(c): Jaccard("Helsingki","Helsinki") reported as 0.875 for the
	// overlap-style computation is not used here; Eq. (1) gives 2/3.
}

func TestGramMeasuresBasics(t *testing.T) {
	cases := []struct {
		name string
		f    func(s, t string, q int) float64
	}{
		{"jaccard", JaccardGrams},
		{"cosine", CosineGrams},
		{"dice", DiceGrams},
		{"overlap", OverlapGrams},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.f("", "", 2); got != 1 {
				t.Errorf("empty-empty = %v, want 1", got)
			}
			if got := c.f("abc", "", 2); got != 0 {
				t.Errorf("nonempty-empty = %v, want 0", got)
			}
			if got := c.f("abc", "abc", 2); !approxEq(got, 1) {
				t.Errorf("identical = %v, want 1", got)
			}
			if got := c.f("abc", "xyz", 2); got != 0 {
				t.Errorf("disjoint = %v, want 0", got)
			}
		})
	}
}

func TestGramMeasureProperties(t *testing.T) {
	fns := map[string]func(s, t string, q int) float64{
		"jaccard": JaccardGrams,
		"cosine":  CosineGrams,
		"dice":    DiceGrams,
		"overlap": OverlapGrams,
	}
	for name, fn := range fns {
		f := func(a, b string) bool {
			x := fn(a, b, 2)
			y := fn(b, a, 2)
			if !approxEq(x, y) {
				return false // symmetry
			}
			return x >= -1e-12 && x <= 1+1e-12
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestOrderingJaccardLeDiceLeOverlap(t *testing.T) {
	// For any pair: Jaccard <= Dice <= Overlap (classic set inequality).
	f := func(a, b string) bool {
		j := JaccardGrams(a, b, 2)
		d := DiceGrams(a, b, 2)
		o := OverlapGrams(a, b, 2)
		return j <= d+1e-12 && d <= o+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingDistance(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "abcd", 1},
		{"", "abc", 3},
		{"karolin", "kathrin", 3},
	}
	for _, tt := range tests {
		if got := HammingDistance(tt.a, tt.b); got != tt.want {
			t.Errorf("Hamming(%q,%q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
		if got := HammingDistance(tt.b, tt.a); got != tt.want {
			t.Errorf("Hamming(%q,%q) = %d, want %d", tt.b, tt.a, got, tt.want)
		}
	}
}

func TestLevenshtein(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"kitten", "sitting", 3},
		{"helsingki", "helsinki", 1},
		{"abc", "", 3},
		{"", "abc", 3},
		{"same", "same", 0},
		{"california", "callifornia", 1},
	}
	for _, tt := range tests {
		if got := Levenshtein(tt.a, tt.b); got != tt.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		d := Levenshtein(a, b)
		if d != Levenshtein(b, a) {
			return false
		}
		diff := len(a) - len(b)
		if diff < 0 {
			diff = -diff
		}
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		return d >= diff && d <= maxLen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizedEditSimilarity(t *testing.T) {
	if got := NormalizedEditSimilarity("", ""); got != 1 {
		t.Errorf("empty = %v, want 1", got)
	}
	if got := NormalizedEditSimilarity("abcd", "abcd"); got != 1 {
		t.Errorf("identical = %v, want 1", got)
	}
	got := NormalizedEditSimilarity("helsingki", "helsinki")
	if !approxEq(got, 1-1.0/9.0) {
		t.Errorf("similarity = %v, want %v", got, 1-1.0/9.0)
	}
}

func TestMeasureStrings(t *testing.T) {
	if Jaccard.String() != "J" || Synonym.String() != "S" || Taxonomy.String() != "T" {
		t.Error("unexpected measure letters")
	}
	if Measure(99).String() != "?" {
		t.Error("unknown measure should render ?")
	}
	if SetAll.String() != "TJS" {
		t.Errorf("SetAll = %q, want TJS", SetAll.String())
	}
	if (SetJaccard | SetSynonym).String() != "JS" {
		t.Errorf("JS = %q", (SetJaccard | SetSynonym).String())
	}
	if MeasureSet(0).String() != "none" {
		t.Errorf("zero set = %q", MeasureSet(0).String())
	}
}

func TestParseMeasureSet(t *testing.T) {
	tests := []struct {
		in   string
		want MeasureSet
	}{
		{"TJS", SetAll},
		{"tjs", SetAll},
		{"J", SetJaccard},
		{"st", SetSynonym | SetTaxonomy},
		{"", SetAll},
		{"xyz", SetAll},
		{"JJ", SetJaccard},
	}
	for _, tt := range tests {
		if got := ParseMeasureSet(tt.in); got != tt.want {
			t.Errorf("ParseMeasureSet(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func paperContext(t *testing.T) *Context {
	t.Helper()
	rules := synonym.NewRuleSet()
	rules.MustAdd("coffee shop", "cafe", 1)
	rules.MustAdd("cake", "gateau", 1)
	tax := taxonomy.NewTree("Wikipedia")
	food := tax.MustAddChild(tax.Root(), "food")
	coffee := tax.MustAddChild(food, "coffee")
	drinks := tax.MustAddChild(coffee, "coffee drinks")
	tax.MustAddChild(drinks, "espresso")
	tax.MustAddChild(drinks, "latte")
	cake := tax.MustAddChild(food, "cake")
	tax.MustAddChild(cake, "apple cake")
	return NewContext(rules, tax)
}

func TestContextSegmentMeasures(t *testing.T) {
	ctx := paperContext(t)
	if got := ctx.SegmentSynonym([]string{"coffee", "shop"}, []string{"cafe"}); got != 1 {
		t.Errorf("SegmentSynonym = %v, want 1", got)
	}
	if got := ctx.SegmentTaxonomy([]string{"latte"}, []string{"espresso"}); !approxEq(got, 0.8) {
		t.Errorf("SegmentTaxonomy = %v, want 0.8", got)
	}
	if got := ctx.SegmentTaxonomy([]string{"latte"}, []string{"helsinki"}); got != 0 {
		t.Errorf("SegmentTaxonomy with non-entity = %v, want 0", got)
	}
	if got := ctx.SegmentJaccard([]string{"helsingki"}, []string{"helsinki"}); !approxEq(got, 2.0/3.0) {
		t.Errorf("SegmentJaccard = %v, want 2/3", got)
	}
}

func TestMSimSelectsMaximum(t *testing.T) {
	ctx := paperContext(t)
	// Section 2.2: msim("cake", "apple cake") = max{0.33.., 0.75} = 0.75.
	got, m := ctx.MSimBest([]string{"cake"}, []string{"apple", "cake"})
	if !approxEq(got, 0.75) {
		t.Errorf("MSim = %v, want 0.75", got)
	}
	if m != Taxonomy {
		t.Errorf("best measure = %v, want Taxonomy", m)
	}
	if got := ctx.MSim([]string{"cake"}, []string{"apple", "cake"}); !approxEq(got, 0.75) {
		t.Errorf("MSim = %v, want 0.75", got)
	}
}

func TestMeasureRestriction(t *testing.T) {
	ctx := paperContext(t)
	jOnly := ctx.WithMeasures(SetJaccard)
	if jOnly.SynonymEnabled() || jOnly.TaxonomyEnabled() {
		t.Error("only Jaccard should be enabled")
	}
	got := jOnly.MSim([]string{"cake"}, []string{"apple", "cake"})
	want := JaccardGrams("cake", "apple cake", 2)
	if !approxEq(got, want) {
		t.Errorf("restricted MSim = %v, want %v", got, want)
	}
	if got := jOnly.SegmentSynonym([]string{"coffee", "shop"}, []string{"cafe"}); got != 0 {
		t.Errorf("disabled synonym measure returned %v", got)
	}
	if got := jOnly.SegmentTaxonomy([]string{"latte"}, []string{"espresso"}); got != 0 {
		t.Errorf("disabled taxonomy measure returned %v", got)
	}
	tOnly := ctx.WithMeasures(SetTaxonomy)
	if tOnly.JaccardEnabled() {
		t.Error("Jaccard should be disabled in T-only context")
	}
}

func TestContextDefaults(t *testing.T) {
	var nilCtx *Context
	if q := nilCtx.GramQ(); q != DefaultQ {
		t.Errorf("nil context GramQ = %d, want %d", q, DefaultQ)
	}
	ctx := &Context{}
	if !ctx.JaccardEnabled() {
		t.Error("zero-measure context should enable everything")
	}
	if ctx.SynonymEnabled() {
		t.Error("synonym requires a rule set")
	}
	if ctx.TaxonomyEnabled() {
		t.Error("taxonomy requires a tree")
	}
	if got := ctx.MaxRuleTokens(); got != 1 {
		t.Errorf("MaxRuleTokens with no knowledge = %d, want 1", got)
	}
}

func TestMaxRuleTokens(t *testing.T) {
	ctx := paperContext(t)
	// "coffee shop", "coffee drinks" and "apple cake" all have 2 tokens.
	if got := ctx.MaxRuleTokens(); got != 2 {
		t.Errorf("MaxRuleTokens = %d, want 2", got)
	}
}

func TestMSimRangeProperty(t *testing.T) {
	ctx := paperContext(t)
	words := []string{"coffee", "shop", "cafe", "latte", "espresso", "cake", "helsinki", "helsingki", "apple"}
	f := func(a, b, c, d uint8) bool {
		s1 := []string{words[int(a)%len(words)], words[int(b)%len(words)]}
		s2 := []string{words[int(c)%len(words)], words[int(d)%len(words)]}
		v := ctx.MSim(s1, s2)
		w := ctx.MSim(s2, s1)
		return approxEq(v, w) && v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSqrtf(t *testing.T) {
	for _, x := range []float64{0, 1, 2, 4, 100, 12345.678} {
		got := sqrtf(x)
		want := math.Sqrt(x)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("sqrtf(%v) = %v, want %v", x, got, want)
		}
	}
	if got := sqrtf(-1); got != 0 {
		t.Errorf("sqrtf(-1) = %v, want 0", got)
	}
}

func BenchmarkJaccardGrams(b *testing.B) {
	s := strings.Repeat("similarity join benchmark ", 4)
	t := strings.Repeat("similarity joins benchmarks ", 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		JaccardGrams(s, t, 2)
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	s := strings.Repeat("abcdefgh", 8)
	t := strings.Repeat("abcdefhh", 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Levenshtein(s, t)
	}
}
