package wmis

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// exactBrute enumerates every subset; only for tiny graphs.
func exactBrute(g *Graph) float64 {
	n := g.Len()
	best := 0.0
	for mask := 0; mask < 1<<uint(n); mask++ {
		var set []int
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				set = append(set, v)
			}
		}
		if !g.IsIndependent(set) {
			continue
		}
		if w := g.WeightOf(set); w > best {
			best = w
		}
	}
	return best
}

// figure2Graph builds the conflict graph of Figure 2(b) of the paper:
// vertices R1..R5 (indices 0..4) with weights 0.3, 0.13, 0.22, 0.09, 0.27
// and edges between conflicting rules.
func figure2Graph() *Graph {
	g := NewGraph(5)
	// Weights from Figure 2(b).
	g.SetWeight(0, 0.3)  // R1: {b,c,d} -> {f}
	g.SetWeight(1, 0.13) // R2: {b,c} -> {f,g}
	g.SetWeight(2, 0.22) // R3: {c,d} -> {f,g}
	g.SetWeight(3, 0.09) // R4: {a} -> {g}
	g.SetWeight(4, 0.27) // R5: {d} -> {h}
	// Conflicts: share tokens on S side or T side.
	g.AddEdge(0, 1) // share b,c and f
	g.AddEdge(0, 2) // share c,d and f
	g.AddEdge(0, 4) // share d
	g.AddEdge(1, 2) // share c; f,g
	g.AddEdge(1, 3) // share g
	g.AddEdge(2, 3) // share g
	g.AddEdge(2, 4) // share d
	return g
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	g.SetWeight(0, 1)
	g.SetWeight(1, 2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 0) // self loop ignored
	g.AddEdge(1, 0) // duplicate ignored
	if g.Len() != 4 {
		t.Errorf("Len = %d, want 4", g.Len())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge 0-1 missing")
	}
	if g.HasEdge(0, 0) {
		t.Error("self loop should not exist")
	}
	if g.HasEdge(2, 3) {
		t.Error("unexpected edge 2-3")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Errorf("degrees wrong: %d %d", g.Degree(0), g.Degree(2))
	}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("Neighbors(0) = %v", got)
	}
	if g.Weight(1) != 2 {
		t.Errorf("Weight(1) = %v", g.Weight(1))
	}
	if got := g.WeightOf([]int{0, 1}); got != 3 {
		t.Errorf("WeightOf = %v, want 3", got)
	}
	if got := g.SquaredWeightOf([]int{0, 1}); got != 5 {
		t.Errorf("SquaredWeightOf = %v, want 5", got)
	}
	if g.IsIndependent([]int{0, 1}) {
		t.Error("0,1 should conflict")
	}
	if !g.IsIndependent([]int{0, 2, 3}) {
		t.Error("0,2,3 should be independent")
	}
	if err := g.Validate([]int{0, 2}); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := g.Validate([]int{0, 1}); err == nil {
		t.Error("Validate should fail for conflicting set")
	}
}

func TestNeighborsInSet(t *testing.T) {
	g := figure2Graph()
	set := []int{1, 4} // {R2, R5}, the SquareImp greedy pick in Example 5
	// N(R1, A): R1 conflicts with R2 and R5, and is not in A.
	got := g.NeighborsInSet(0, set)
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{1, 4}) {
		t.Errorf("NeighborsInSet(R1) = %v, want [1 4]", got)
	}
	// N(R4, A): R4 conflicts with R2 only.
	got = g.NeighborsInSet(3, set)
	if !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("NeighborsInSet(R4) = %v, want [1]", got)
	}
	// A member of the set is its own neighbour.
	got = g.NeighborsInSet(1, set)
	if !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("NeighborsInSet(R2) = %v, want [1]", got)
	}
	got = g.NeighborsOfSetInSet([]int{0, 3}, set)
	if !reflect.DeepEqual(got, []int{1, 4}) {
		t.Errorf("NeighborsOfSetInSet = %v, want [1 4]", got)
	}
}

func TestSwap(t *testing.T) {
	got := Swap([]int{1, 4}, []int{0, 3}, []int{1, 4})
	if !reflect.DeepEqual(got, []int{0, 3}) {
		t.Errorf("Swap = %v, want [0 3]", got)
	}
	got = Swap([]int{2, 5}, []int{1}, nil)
	if !reflect.DeepEqual(got, []int{1, 2, 5}) {
		t.Errorf("Swap = %v, want [1 2 5]", got)
	}
}

func TestGreedyOnFigure2(t *testing.T) {
	g := figure2Graph()
	set := g.Greedy()
	// Greedy by weight: R1 (0.3) first, blocks R2, R3, R5; then R4 (0.09).
	if !reflect.DeepEqual(set, []int{0, 3}) {
		t.Errorf("Greedy = %v, want [0 3]", set)
	}
	if err := g.Validate(set); err != nil {
		t.Errorf("greedy set invalid: %v", err)
	}
}

func TestGreedySkipsNonPositive(t *testing.T) {
	g := NewGraph(3)
	g.SetWeight(0, 0)
	g.SetWeight(1, -1)
	g.SetWeight(2, 0.5)
	if got := g.Greedy(); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("Greedy = %v, want [2]", got)
	}
}

func TestSquareImpImprovesGreedy(t *testing.T) {
	// Construct a graph where greedy is suboptimal: a star whose centre is
	// the heaviest vertex but whose leaves together weigh more.
	g := NewGraph(4)
	g.SetWeight(0, 1.0)
	g.SetWeight(1, 0.6)
	g.SetWeight(2, 0.6)
	g.SetWeight(3, 0.6)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	greedy := g.Greedy()
	if !reflect.DeepEqual(greedy, []int{0}) {
		t.Fatalf("greedy = %v, want [0]", greedy)
	}
	improved := g.SquareImp(SquareImpOptions{})
	if !reflect.DeepEqual(improved, []int{1, 2, 3}) {
		t.Errorf("SquareImp = %v, want [1 2 3]", improved)
	}
}

func TestSquareImpValidAndAtLeastGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(14)
		g := NewGraph(n)
		for v := 0; v < n; v++ {
			g.SetWeight(v, rng.Float64())
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.3 {
					g.AddEdge(u, v)
				}
			}
		}
		greedyW := g.WeightOf(g.Greedy())
		si := g.SquareImp(SquareImpOptions{})
		if err := g.Validate(si); err != nil {
			t.Fatalf("trial %d: SquareImp produced invalid set: %v", trial, err)
		}
		siW := g.WeightOf(si)
		opt := exactBrute(g)
		if siW > opt+1e-9 {
			t.Fatalf("trial %d: SquareImp %v exceeds optimum %v", trial, siW, opt)
		}
		// SquareImp should never be drastically worse than greedy (both are
		// at least a constant-factor approximation); check it is at least
		// half of greedy to catch regressions without being brittle.
		if siW < greedyW/2-1e-9 {
			t.Fatalf("trial %d: SquareImp %v much worse than greedy %v", trial, siW, greedyW)
		}
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(12)
		g := NewGraph(n)
		for v := 0; v < n; v++ {
			g.SetWeight(v, math.Round(rng.Float64()*100)/100)
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.35 {
					g.AddEdge(u, v)
				}
			}
		}
		res := g.Exact(0)
		if !res.Complete {
			t.Fatalf("trial %d: exact did not complete", trial)
		}
		if err := g.Validate(res.Set); err != nil {
			t.Fatalf("trial %d: invalid exact set: %v", trial, err)
		}
		want := exactBrute(g)
		if math.Abs(res.Weight-want) > 1e-9 {
			t.Fatalf("trial %d: Exact = %v, brute force = %v", trial, res.Weight, want)
		}
		if math.Abs(g.WeightOf(res.Set)-res.Weight) > 1e-9 {
			t.Fatalf("trial %d: reported weight inconsistent with set", trial)
		}
	}
}

func TestExactOnFigure2(t *testing.T) {
	g := figure2Graph()
	res := g.Exact(0)
	// On raw vertex weights the optimum is {R2, R5} with weight 0.40; the
	// paper's Example 5 picks {R1, R4} only once the *unified similarity*
	// denominator is taken into account (that flip is tested in the core
	// package).
	if !reflect.DeepEqual(res.Set, []int{1, 4}) {
		t.Errorf("Exact set = %v, want [1 4]", res.Set)
	}
	if math.Abs(res.Weight-0.40) > 1e-9 {
		t.Errorf("Exact weight = %v, want 0.40", res.Weight)
	}
}

func TestExactBudgetExhaustion(t *testing.T) {
	// Dense-ish random graph with a budget of one node: must return the
	// greedy fallback and report Complete=false.
	rng := rand.New(rand.NewSource(3))
	n := 30
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		g.SetWeight(v, rng.Float64())
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.2 {
				g.AddEdge(u, v)
			}
		}
	}
	res := g.Exact(1)
	if res.Complete {
		t.Error("expected incomplete result with tiny budget")
	}
	if err := g.Validate(res.Set); err != nil {
		t.Errorf("fallback set invalid: %v", err)
	}
	if res.Weight <= 0 {
		t.Errorf("fallback weight = %v, want > 0", res.Weight)
	}
}

func TestEnumerateTalonSets(t *testing.T) {
	g := figure2Graph()
	set := []int{1, 4} // {R2, R5}
	count := 0
	sawR1R4 := false
	g.EnumerateTalonSets(set, 2, func(talons, removed []int) bool {
		count++
		if err := g.Validate(talons); err != nil {
			t.Fatalf("talon set %v not independent: %v", talons, err)
		}
		if reflect.DeepEqual(talons, []int{0, 3}) {
			sawR1R4 = true
			// Removing N({R1,R4}, {R2,R5}) must clear the whole set.
			if !reflect.DeepEqual(removed, []int{1, 4}) {
				t.Errorf("removed = %v, want [1 4]", removed)
			}
		}
		return true
	})
	if count == 0 {
		t.Fatal("no talon sets enumerated")
	}
	if !sawR1R4 {
		t.Error("the improving claw {R1, R4} of Example 5 was not enumerated")
	}
	// Early stop must be honoured.
	calls := 0
	g.EnumerateTalonSets(set, 2, func(talons, removed []int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early stop ignored, calls = %d", calls)
	}
}

func TestBitset(t *testing.T) {
	b := make(bitset, 2)
	b.set(3)
	b.set(64)
	if !b.has(3) || !b.has(64) || b.has(5) {
		t.Error("bitset set/has broken")
	}
	if b.count() != 2 {
		t.Errorf("count = %d, want 2", b.count())
	}
	if got := b.elements(); !reflect.DeepEqual(got, []int{3, 64}) {
		t.Errorf("elements = %v", got)
	}
	b.clear(3)
	if b.has(3) {
		t.Error("clear failed")
	}
	other := make(bitset, 2)
	other.set(1)
	b.or(other)
	if !b.has(1) {
		t.Error("or failed")
	}
	masked := b.andNot(other)
	if masked.has(1) || !masked.has(64) {
		t.Error("andNot failed")
	}
	b.andNotInPlace(other)
	if b.has(1) || !b.has(64) {
		t.Error("andNotInPlace failed")
	}
}

func BenchmarkSquareImp50(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	n := 50
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		g.SetWeight(v, rng.Float64())
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.15 {
				g.AddEdge(u, v)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SquareImp(SquareImpOptions{MaxTalons: 2})
	}
}

// randomGraph fills g (via Reset) with a random instance: n vertices,
// weights in (-0.2, 1.0] so some vertices are non-positive, edge density p.
func randomGraph(g *Graph, rng *rand.Rand, n int, p float64) {
	g.Reset(n)
	for v := 0; v < n; v++ {
		g.SetWeight(v, rng.Float64()*1.2-0.2)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
}

// TestScratchReuseMatchesFresh pins the scratch-based solvers to the legacy
// allocating API: one Graph (resized through Reset) and one Scratch reused
// across many random instances must produce exactly the sets a fresh graph
// and fresh buffers produce — no state may leak between instances.
func TestScratchReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var reused Graph
	var sc Scratch
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(13)
		p := rng.Float64() * 0.7
		seed := rng.Int63()
		build := func(g *Graph) {
			randomGraph(g, rand.New(rand.NewSource(seed)), n, p)
		}
		build(&reused)
		fresh := NewGraph(n)
		build(fresh)

		gotGreedy := reused.GreedyScratch(&sc)
		wantGreedy := fresh.Greedy()
		if !sameSet(gotGreedy, wantGreedy) {
			t.Fatalf("trial %d (n=%d p=%.2f): GreedyScratch=%v Greedy=%v", trial, n, p, gotGreedy, wantGreedy)
		}
		opts := SquareImpOptions{MaxTalons: 1 + rng.Intn(3)}
		gotImp := append([]int(nil), reused.SquareImpScratch(opts, &sc)...)
		wantImp := fresh.SquareImp(opts)
		if !sameSet(gotImp, wantImp) {
			t.Fatalf("trial %d (n=%d p=%.2f): SquareImpScratch=%v SquareImp=%v", trial, n, p, gotImp, wantImp)
		}
		if err := reused.Validate(gotImp); err != nil {
			t.Fatalf("trial %d: scratch solution not independent: %v", trial, err)
		}
	}
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// refEnumerateTalons is an independent recursive reference for the talon
// enumeration contract: every non-empty independent subset of the non-set
// vertices with size ≤ maxTalons, visited in depth-first lexicographic order
// (each set emitted when its last vertex is pushed), paired with N(T, set).
func refEnumerateTalons(g *Graph, set []int, maxTalons int, emit func(talons, removed []int)) {
	inSet := map[int]bool{}
	for _, v := range set {
		inSet[v] = true
	}
	var cands []int
	for v := 0; v < g.Len(); v++ {
		if !inSet[v] {
			cands = append(cands, v)
		}
	}
	var cur []int
	var rec func(start int)
	rec = func(start int) {
		if len(cur) >= maxTalons {
			return
		}
		for i := start; i < len(cands); i++ {
			v := cands[i]
			ok := true
			for _, u := range cur {
				if g.HasEdge(u, v) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			cur = append(cur, v)
			emit(append([]int(nil), cur...), g.NeighborsOfSetInSet(cur, set))
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
}

// TestTalonIterMatchesRecursiveReference pins the pull-based TalonIter (and
// through it EnumerateTalonSets) to the recursive reference: same sets, same
// removed neighbourhoods, same order.
func TestTalonIterMatchesRecursiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var sc Scratch
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		g := NewGraph(n)
		randomGraph(g, rng, n, rng.Float64()*0.8)
		set := g.Greedy()
		maxTalons := 1 + rng.Intn(3)

		type entry struct{ talons, removed []int }
		var want []entry
		refEnumerateTalons(g, set, maxTalons, func(tt, rr []int) {
			want = append(want, entry{tt, rr})
		})
		var got []entry
		it := g.TalonSets(set, maxTalons, false, &sc)
		for {
			tt, rr, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, entry{append([]int(nil), tt...), append([]int(nil), rr...)})
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d talon sets, reference has %d", trial, len(got), len(want))
		}
		for i := range got {
			if !sameSet(got[i].talons, want[i].talons) || !sameSet(got[i].removed, want[i].removed) {
				t.Fatalf("trial %d entry %d: got %v/%v want %v/%v",
					trial, i, got[i].talons, got[i].removed, want[i].talons, want[i].removed)
			}
		}
	}
}
