// Package wmis implements weighted maximum independent set (w-MIS) solvers
// on conflict graphs, the machinery behind the approximation algorithm of
// Section 2.3.
//
// The conflict graphs produced by the unified similarity measure are
// (k+1)-claw-free, where k is the maximal number of tokens on one side of a
// synonym rule or taxonomy entity. On such graphs the SquareImp algorithm
// (Berman, SWAT 2000 — reference [10] of the paper) approximates w-MIS by
// local claw improvements measured in *squared* vertex weight.
//
// The package provides three solvers:
//
//   - Greedy: heaviest-vertex-first; the classic baseline and SquareImp's
//     starting point.
//   - SquareImp: greedy followed by squared-weight claw-swap improvements.
//   - Exact: branch-and-bound over all independent sets, used by the
//     approximation-accuracy experiment (Table 9) and by tests as an oracle.
//
// Vertex sets are represented as sorted []int slices; the graph uses
// bitset adjacency so conflict checks inside local search are O(n/64).
package wmis

import (
	"fmt"
	"math/bits"
	"sort"
)

// Graph is an undirected vertex-weighted graph. Vertices are indexed
// 0..N-1. The zero value is an empty graph; use NewGraph to pre-size.
type Graph struct {
	weights []float64
	adj     []bitset
}

// NewGraph creates a graph with n isolated vertices of weight 0.
func NewGraph(n int) *Graph {
	g := &Graph{
		weights: make([]float64, n),
		adj:     make([]bitset, n),
	}
	words := (n + 63) / 64
	for i := range g.adj {
		g.adj[i] = make(bitset, words)
	}
	return g
}

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.weights) }

// SetWeight assigns a weight to vertex v.
func (g *Graph) SetWeight(v int, w float64) { g.weights[v] = w }

// Weight returns the weight of vertex v.
func (g *Graph) Weight(v int) float64 { return g.weights[v] }

// AddEdge inserts an undirected edge between u and v. Self-loops are
// ignored. Adding an existing edge is a no-op.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.adj[u].set(v)
	g.adj[v].set(u)
}

// HasEdge reports whether u and v conflict.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	return g.adj[u].has(v)
}

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int) int { return g.adj[v].count() }

// Neighbors returns the sorted neighbour list of v.
func (g *Graph) Neighbors(v int) []int { return g.adj[v].elements() }

// WeightOf sums the weights of the given vertex set.
func (g *Graph) WeightOf(set []int) float64 {
	total := 0.0
	for _, v := range set {
		total += g.weights[v]
	}
	return total
}

// SquaredWeightOf sums the squared weights of the given vertex set; the
// quantity SquareImp's improvement criterion is defined on.
func (g *Graph) SquaredWeightOf(set []int) float64 {
	total := 0.0
	for _, v := range set {
		total += g.weights[v] * g.weights[v]
	}
	return total
}

// IsIndependent reports whether no two vertices of the set conflict.
func (g *Graph) IsIndependent(set []int) bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if g.HasEdge(set[i], set[j]) {
				return false
			}
		}
	}
	return true
}

// NeighborsInSet returns N(v, A): the members of A adjacent to v (v itself
// is included if it belongs to A), matching the definition used in
// Algorithm 1 Line 2 of the paper.
func (g *Graph) NeighborsInSet(v int, set []int) []int {
	var out []int
	for _, u := range set {
		if u == v || g.HasEdge(u, v) {
			out = append(out, u)
		}
	}
	return out
}

// NeighborsOfSetInSet returns N(T, A) = ∪_{v∈T} N(v, A) without duplicates.
func (g *Graph) NeighborsOfSetInSet(talons, set []int) []int {
	seen := map[int]struct{}{}
	var out []int
	for _, v := range talons {
		for _, u := range g.NeighborsInSet(v, set) {
			if _, ok := seen[u]; !ok {
				seen[u] = struct{}{}
				out = append(out, u)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Swap returns set ∪ talons \ removed as a fresh sorted slice.
func Swap(set, talons, removed []int) []int {
	drop := map[int]struct{}{}
	for _, v := range removed {
		drop[v] = struct{}{}
	}
	out := make([]int, 0, len(set)+len(talons))
	for _, v := range set {
		if _, ok := drop[v]; !ok {
			out = append(out, v)
		}
	}
	out = append(out, talons...)
	sort.Ints(out)
	return out
}

// Greedy computes an independent set by repeatedly taking the heaviest
// remaining vertex and discarding its neighbours. Ties are broken by vertex
// index for determinism.
func (g *Graph) Greedy() []int {
	n := g.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if g.weights[order[a]] != g.weights[order[b]] {
			return g.weights[order[a]] > g.weights[order[b]]
		}
		return order[a] < order[b]
	})
	blocked := make(bitset, (n+63)/64)
	var set []int
	for _, v := range order {
		if g.weights[v] <= 0 || blocked.has(v) {
			continue
		}
		set = append(set, v)
		blocked.set(v)
		blocked.or(g.adj[v])
	}
	sort.Ints(set)
	return set
}

// SquareImpOptions tunes the SquareImp local search.
type SquareImpOptions struct {
	// MaxTalons bounds the size of the talon sets considered in a single
	// improvement step; claw-freeness bounds the useful size by k, but in
	// practice talon sets of size ≤ 3 capture nearly all improvements.
	// Zero means 3.
	MaxTalons int
	// MaxIterations caps the number of improvement rounds; zero means 4·n,
	// a generous bound that the squared-weight potential argument never
	// reaches on real inputs.
	MaxIterations int
	// MinImprove is the minimal relative squared-weight gain (corresponding
	// to the 1/t threshold of the paper); zero means 1e-9.
	MinImprove float64
}

func (o SquareImpOptions) withDefaults(n int) SquareImpOptions {
	if o.MaxTalons <= 0 {
		o.MaxTalons = 3
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 4*n + 8
	}
	if o.MinImprove <= 0 {
		o.MinImprove = 1e-9
	}
	return o
}

// SquareImp computes an independent set with Berman-style local claw
// improvements: starting from the greedy solution, it repeatedly looks for
// a set of mutually non-adjacent vertices T outside the current solution A
// whose squared weight exceeds the squared weight of N(T, A), and swaps.
func (g *Graph) SquareImp(opts SquareImpOptions) []int {
	opts = opts.withDefaults(g.Len())
	set := g.Greedy()
	for iter := 0; iter < opts.MaxIterations; iter++ {
		talons, removed, gain := g.bestSquaredImprovement(set, opts.MaxTalons)
		if talons == nil || gain <= opts.MinImprove {
			break
		}
		set = Swap(set, talons, removed)
	}
	return set
}

// bestSquaredImprovement searches for the talon set (|T| ≤ maxTalons) with
// the largest squared-weight gain over its neighbourhood in the current
// set. It returns nil talons when no improvement exists.
func (g *Graph) bestSquaredImprovement(set []int, maxTalons int) (talons, removed []int, gain float64) {
	inSet := make(bitset, (g.Len()+63)/64)
	for _, v := range set {
		inSet.set(v)
	}
	var bestT, bestR []int
	bestGain := 0.0

	var candidates []int
	for v := 0; v < g.Len(); v++ {
		if !inSet.has(v) && g.weights[v] > 0 {
			candidates = append(candidates, v)
		}
	}

	var cur []int
	var rec func(start int)
	rec = func(start int) {
		if len(cur) > 0 {
			removedSet := g.NeighborsOfSetInSet(cur, set)
			gainHere := g.SquaredWeightOf(cur) - g.SquaredWeightOf(removedSet)
			if gainHere > bestGain {
				bestGain = gainHere
				bestT = append([]int(nil), cur...)
				bestR = removedSet
			}
		}
		if len(cur) == maxTalons {
			return
		}
		for i := start; i < len(candidates); i++ {
			v := candidates[i]
			ok := true
			for _, u := range cur {
				if g.HasEdge(u, v) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			cur = append(cur, v)
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	if bestT == nil {
		return nil, nil, 0
	}
	return bestT, bestR, bestGain
}

// EnumerateTalonSets calls fn for every non-empty independent set of
// vertices outside the given set with size at most maxTalons, together with
// the members of set that would have to be removed (N(T, set)). If fn
// returns false the enumeration stops early. The unified-similarity
// approximation (Algorithm 1) uses this to search for claw improvements
// measured on the final similarity rather than squared weight.
func (g *Graph) EnumerateTalonSets(set []int, maxTalons int, fn func(talons, removed []int) bool) {
	inSet := make(bitset, (g.Len()+63)/64)
	for _, v := range set {
		inSet.set(v)
	}
	var candidates []int
	for v := 0; v < g.Len(); v++ {
		if !inSet.has(v) {
			candidates = append(candidates, v)
		}
	}
	var cur []int
	stopped := false
	var rec func(start int)
	rec = func(start int) {
		if stopped {
			return
		}
		if len(cur) > 0 {
			removed := g.NeighborsOfSetInSet(cur, set)
			if !fn(append([]int(nil), cur...), removed) {
				stopped = true
				return
			}
		}
		if len(cur) == maxTalons {
			return
		}
		for i := start; i < len(candidates); i++ {
			v := candidates[i]
			ok := true
			for _, u := range cur {
				if g.HasEdge(u, v) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			cur = append(cur, v)
			rec(i + 1)
			cur = cur[:len(cur)-1]
			if stopped {
				return
			}
		}
	}
	rec(0)
}

// ExactResult reports the outcome of the exact branch-and-bound solver.
type ExactResult struct {
	Set      []int
	Weight   float64
	Complete bool // false when the node budget was exhausted
}

// Exact computes the maximum-weight independent set by branch and bound.
// nodeBudget caps the number of explored search nodes; a non-positive
// budget means 1<<22. When the budget is exhausted the best set found so
// far is returned with Complete=false.
func (g *Graph) Exact(nodeBudget int) ExactResult {
	if nodeBudget <= 0 {
		nodeBudget = 1 << 22
	}
	n := g.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Branch on heavy vertices first to tighten the bound quickly.
	sort.Slice(order, func(a, b int) bool { return g.weights[order[a]] > g.weights[order[b]] })

	// suffixWeight[i] = total positive weight of order[i:]; an admissible
	// upper bound for pruning.
	suffixWeight := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		w := g.weights[order[i]]
		if w < 0 {
			w = 0
		}
		suffixWeight[i] = suffixWeight[i+1] + w
	}

	best := ExactResult{Complete: true}
	greedy := g.Greedy()
	best.Set = greedy
	best.Weight = g.WeightOf(greedy)

	blocked := make(bitset, (n+63)/64)
	var cur []int
	nodes := 0
	var rec func(idx int, curWeight float64)
	rec = func(idx int, curWeight float64) {
		nodes++
		if nodes > nodeBudget {
			best.Complete = false
			return
		}
		if curWeight > best.Weight {
			best.Weight = curWeight
			best.Set = append([]int(nil), cur...)
		}
		if idx >= n || curWeight+suffixWeight[idx] <= best.Weight {
			return
		}
		v := order[idx]
		// Branch 1: include v if it is not blocked and has positive weight.
		if !blocked.has(v) && g.weights[v] > 0 {
			newlyBlocked := g.adj[v].andNot(blocked)
			blocked.set(v)
			blocked.or(g.adj[v])
			cur = append(cur, v)
			rec(idx+1, curWeight+g.weights[v])
			cur = cur[:len(cur)-1]
			blocked.clear(v)
			blocked.andNotInPlace(newlyBlocked)
		}
		if !best.Complete {
			return
		}
		// Branch 2: exclude v.
		rec(idx+1, curWeight)
	}
	rec(0, 0)
	sort.Ints(best.Set)
	return best
}

// Validate returns an error when the given set is not independent; handy in
// tests and defensive checks.
func (g *Graph) Validate(set []int) error {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if g.HasEdge(set[i], set[j]) {
				return fmt.Errorf("wmis: vertices %d and %d conflict", set[i], set[j])
			}
		}
	}
	return nil
}

// bitset is a fixed-size bit vector over vertex indices.
type bitset []uint64

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) or(other bitset) {
	for i := range b {
		b[i] |= other[i]
	}
}

// andNot returns a new bitset containing the bits of b that are not in mask.
func (b bitset) andNot(mask bitset) bitset {
	out := make(bitset, len(b))
	for i := range b {
		out[i] = b[i] &^ mask[i]
	}
	return out
}

// andNotInPlace clears every bit of b present in mask.
func (b bitset) andNotInPlace(mask bitset) {
	for i := range b {
		b[i] &^= mask[i]
	}
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

func (b bitset) elements() []int {
	var out []int
	for wi, w := range b {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			out = append(out, wi*64+bit)
			w &= w - 1
		}
	}
	return out
}
