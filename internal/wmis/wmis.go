// Package wmis implements weighted maximum independent set (w-MIS) solvers
// on conflict graphs, the machinery behind the approximation algorithm of
// Section 2.3.
//
// The conflict graphs produced by the unified similarity measure are
// (k+1)-claw-free, where k is the maximal number of tokens on one side of a
// synonym rule or taxonomy entity. On such graphs the SquareImp algorithm
// (Berman, SWAT 2000 — reference [10] of the paper) approximates w-MIS by
// local claw improvements measured in *squared* vertex weight.
//
// The package provides three solvers:
//
//   - Greedy: heaviest-vertex-first; the classic baseline and SquareImp's
//     starting point.
//   - SquareImp: greedy followed by squared-weight claw-swap improvements.
//   - Exact: branch-and-bound over all independent sets, used by the
//     approximation-accuracy experiment (Table 9) and by tests as an oracle.
//
// Vertex sets are represented as sorted []int slices; the graph uses
// bitset adjacency so conflict checks inside local search are O(n/64).
package wmis

import (
	"fmt"
	"math/bits"
	"slices"
	"sort"
)

// Graph is an undirected vertex-weighted graph. Vertices are indexed
// 0..N-1. The zero value is an empty graph; use NewGraph to pre-size, or
// Reset to reuse one graph's backing storage across many small instances.
type Graph struct {
	weights []float64
	adj     []bitset
	// arena is the flattened backing store of adj when the graph was sized
	// through Reset: one contiguous allocation instead of one bitset per
	// vertex, so a reused Graph allocates nothing once grown.
	arena []uint64
}

// NewGraph creates a graph with n isolated vertices of weight 0.
func NewGraph(n int) *Graph {
	g := &Graph{}
	g.Reset(n)
	return g
}

// Reset re-sizes the graph to n isolated vertices of weight 0, reusing the
// backing storage of previous instantiations. Conflict-graph verification
// builds one small graph per candidate pair; Reset makes that allocation-free
// in the steady state.
func (g *Graph) Reset(n int) {
	words := (n + 63) / 64
	need := n * words
	if cap(g.arena) >= need {
		g.arena = g.arena[:need]
		clear(g.arena)
	} else {
		g.arena = make([]uint64, need)
	}
	if cap(g.adj) >= n {
		g.adj = g.adj[:n]
	} else {
		g.adj = make([]bitset, n)
	}
	for i := 0; i < n; i++ {
		g.adj[i] = bitset(g.arena[i*words : (i+1)*words])
	}
	if cap(g.weights) >= n {
		g.weights = g.weights[:n]
		clear(g.weights)
	} else {
		g.weights = make([]float64, n)
	}
}

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.weights) }

// SetWeight assigns a weight to vertex v.
func (g *Graph) SetWeight(v int, w float64) { g.weights[v] = w }

// Weight returns the weight of vertex v.
func (g *Graph) Weight(v int) float64 { return g.weights[v] }

// AddEdge inserts an undirected edge between u and v. Self-loops are
// ignored. Adding an existing edge is a no-op.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.adj[u].set(v)
	g.adj[v].set(u)
}

// HasEdge reports whether u and v conflict.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	return g.adj[u].has(v)
}

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int) int { return g.adj[v].count() }

// Neighbors returns the sorted neighbour list of v.
func (g *Graph) Neighbors(v int) []int { return g.adj[v].elements() }

// WeightOf sums the weights of the given vertex set.
func (g *Graph) WeightOf(set []int) float64 {
	total := 0.0
	for _, v := range set {
		total += g.weights[v]
	}
	return total
}

// SquaredWeightOf sums the squared weights of the given vertex set; the
// quantity SquareImp's improvement criterion is defined on.
func (g *Graph) SquaredWeightOf(set []int) float64 {
	total := 0.0
	for _, v := range set {
		total += g.weights[v] * g.weights[v]
	}
	return total
}

// IsIndependent reports whether no two vertices of the set conflict.
func (g *Graph) IsIndependent(set []int) bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if g.HasEdge(set[i], set[j]) {
				return false
			}
		}
	}
	return true
}

// NeighborsInSet returns N(v, A): the members of A adjacent to v (v itself
// is included if it belongs to A), matching the definition used in
// Algorithm 1 Line 2 of the paper.
func (g *Graph) NeighborsInSet(v int, set []int) []int {
	var out []int
	for _, u := range set {
		if u == v || g.HasEdge(u, v) {
			out = append(out, u)
		}
	}
	return out
}

// NeighborsOfSetInSet returns N(T, A) = ∪_{v∈T} N(v, A) without duplicates.
func (g *Graph) NeighborsOfSetInSet(talons, set []int) []int {
	seen := map[int]struct{}{}
	var out []int
	for _, v := range talons {
		for _, u := range g.NeighborsInSet(v, set) {
			if _, ok := seen[u]; !ok {
				seen[u] = struct{}{}
				out = append(out, u)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Swap returns set ∪ talons \ removed as a fresh sorted slice.
func Swap(set, talons, removed []int) []int {
	drop := map[int]struct{}{}
	for _, v := range removed {
		drop[v] = struct{}{}
	}
	out := make([]int, 0, len(set)+len(talons))
	for _, v := range set {
		if _, ok := drop[v]; !ok {
			out = append(out, v)
		}
	}
	out = append(out, talons...)
	sort.Ints(out)
	return out
}

// SwapInto appends set ∪ talons \ removed to dst and returns it, without
// allocating beyond dst's growth. All three inputs must be sorted ascending,
// removed must be a subset of set, and talons must be disjoint from set —
// exactly the shape produced by the talon iterator — so the union is a
// three-way merge rather than a map-and-sort.
func SwapInto(dst, set, talons, removed []int) []int {
	ri, ti := 0, 0
	for _, v := range set {
		if ri < len(removed) && removed[ri] == v {
			ri++
			continue
		}
		for ti < len(talons) && talons[ti] < v {
			dst = append(dst, talons[ti])
			ti++
		}
		dst = append(dst, v)
	}
	dst = append(dst, talons[ti:]...)
	return dst
}

// Scratch holds the reusable buffers of the scratch-based solvers. A zero
// value is ready to use; buffers grow on demand and are retained across
// calls, so a long-lived Scratch makes Greedy/SquareImp/TalonSets
// allocation-free in the steady state. A Scratch supports one active
// TalonIter at a time and is not safe for concurrent use.
type Scratch struct {
	order      []int
	blocked    bitset
	inSet      bitset
	candidates []int
	cur        []int
	idxs       []int
	nbr        []int
	bestT      []int
	bestR      []int
	swap       []int
	set        []int
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBitset(b bitset, words int) bitset {
	if cap(b) < words {
		return make(bitset, words)
	}
	b = b[:words]
	clear(b)
	return b
}

// GreedyScratch is Greedy using sc's buffers. The returned slice aliases
// sc.set and stays valid until the next GreedyScratch/SquareImpScratch call
// on sc.
func (g *Graph) GreedyScratch(sc *Scratch) []int {
	n := g.Len()
	sc.order = growInts(sc.order, n)
	for i := range sc.order {
		sc.order[i] = i
	}
	slices.SortFunc(sc.order, func(a, b int) int {
		if g.weights[a] != g.weights[b] {
			if g.weights[a] > g.weights[b] {
				return -1
			}
			return 1
		}
		return a - b
	})
	sc.blocked = growBitset(sc.blocked, (n+63)/64)
	sc.set = sc.set[:0]
	for _, v := range sc.order {
		if g.weights[v] <= 0 || sc.blocked.has(v) {
			continue
		}
		sc.set = append(sc.set, v)
		sc.blocked.set(v)
		sc.blocked.or(g.adj[v])
	}
	slices.Sort(sc.set)
	return sc.set
}

// Greedy computes an independent set by repeatedly taking the heaviest
// remaining vertex and discarding its neighbours. Ties are broken by vertex
// index for determinism.
func (g *Graph) Greedy() []int {
	var sc Scratch
	return append([]int(nil), g.GreedyScratch(&sc)...)
}

// SquareImpOptions tunes the SquareImp local search.
type SquareImpOptions struct {
	// MaxTalons bounds the size of the talon sets considered in a single
	// improvement step; claw-freeness bounds the useful size by k, but in
	// practice talon sets of size ≤ 3 capture nearly all improvements.
	// Zero means 3.
	MaxTalons int
	// MaxIterations caps the number of improvement rounds; zero means 4·n,
	// a generous bound that the squared-weight potential argument never
	// reaches on real inputs.
	MaxIterations int
	// MinImprove is the minimal relative squared-weight gain (corresponding
	// to the 1/t threshold of the paper); zero means 1e-9.
	MinImprove float64
}

func (o SquareImpOptions) withDefaults(n int) SquareImpOptions {
	if o.MaxTalons <= 0 {
		o.MaxTalons = 3
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 4*n + 8
	}
	if o.MinImprove <= 0 {
		o.MinImprove = 1e-9
	}
	return o
}

// SquareImp computes an independent set with Berman-style local claw
// improvements: starting from the greedy solution, it repeatedly looks for
// a set of mutually non-adjacent vertices T outside the current solution A
// whose squared weight exceeds the squared weight of N(T, A), and swaps.
func (g *Graph) SquareImp(opts SquareImpOptions) []int {
	var sc Scratch
	return append([]int(nil), g.SquareImpScratch(opts, &sc)...)
}

// SquareImpScratch is SquareImp using sc's buffers. The returned slice
// aliases sc and stays valid until the next solver call on sc.
func (g *Graph) SquareImpScratch(opts SquareImpOptions, sc *Scratch) []int {
	opts = opts.withDefaults(g.Len())
	set := g.GreedyScratch(sc)
	for iter := 0; iter < opts.MaxIterations; iter++ {
		talons, removed, gain := g.bestSquaredImprovement(sc, set, opts.MaxTalons)
		if talons == nil || gain <= opts.MinImprove {
			break
		}
		sc.swap = SwapInto(sc.swap[:0], set, talons, removed)
		set = append(set[:0], sc.swap...)
	}
	return set
}

// bestSquaredImprovement searches for the talon set (|T| ≤ maxTalons) with
// the largest squared-weight gain over its neighbourhood in the current
// set. It returns nil talons when no improvement exists; otherwise the
// returned slices alias sc.bestT/sc.bestR.
func (g *Graph) bestSquaredImprovement(sc *Scratch, set []int, maxTalons int) (talons, removed []int, gain float64) {
	it := g.TalonSets(set, maxTalons, true, sc)
	bestGain := 0.0
	found := false
	for {
		t, r, ok := it.Next()
		if !ok {
			break
		}
		gainHere := g.SquaredWeightOf(t) - g.SquaredWeightOf(r)
		if gainHere > bestGain {
			bestGain = gainHere
			sc.bestT = append(sc.bestT[:0], t...)
			sc.bestR = append(sc.bestR[:0], r...)
			found = true
		}
	}
	if !found {
		return nil, nil, 0
	}
	return sc.bestT, sc.bestR, bestGain
}

// TalonIter enumerates the non-empty independent talon sets outside a given
// solution set in depth-first lexicographic order, without allocating. It is
// the pull-based counterpart of EnumerateTalonSets; obtain one from
// Graph.TalonSets and drain it with Next.
type TalonIter struct {
	g         *Graph
	sc        *Scratch
	set       []int
	maxTalons int
	i         int
}

// TalonSets prepares an iterator over every non-empty independent set of
// vertices outside set with size at most maxTalons. When positiveOnly is
// true, only vertices of positive weight are considered (the squared-weight
// improvement criterion never benefits from non-positive talons). The
// iterator borrows sc's buffers: only one iterator per Scratch may be active
// at a time, and the slices returned by Next alias sc.
func (g *Graph) TalonSets(set []int, maxTalons int, positiveOnly bool, sc *Scratch) TalonIter {
	sc.inSet = growBitset(sc.inSet, (g.Len()+63)/64)
	for _, v := range set {
		sc.inSet.set(v)
	}
	sc.candidates = sc.candidates[:0]
	for v := 0; v < g.Len(); v++ {
		if sc.inSet.has(v) {
			continue
		}
		if positiveOnly && g.weights[v] <= 0 {
			continue
		}
		sc.candidates = append(sc.candidates, v)
	}
	sc.cur = sc.cur[:0]
	sc.idxs = sc.idxs[:0]
	return TalonIter{g: g, sc: sc, set: set, maxTalons: maxTalons}
}

// Next returns the next talon set together with N(T, set), the members of
// set that the swap would remove. Both slices alias the iterator's Scratch
// and are only valid until the following Next call. ok is false when the
// enumeration is exhausted.
func (it *TalonIter) Next() (talons, removed []int, ok bool) {
	g, sc := it.g, it.sc
	for {
		if len(sc.cur) < it.maxTalons {
			for ; it.i < len(sc.candidates); it.i++ {
				v := sc.candidates[it.i]
				compatible := true
				for _, u := range sc.cur {
					if g.adj[u].has(v) {
						compatible = false
						break
					}
				}
				if compatible {
					break
				}
			}
		} else {
			it.i = len(sc.candidates)
		}
		if it.i < len(sc.candidates) {
			sc.cur = append(sc.cur, sc.candidates[it.i])
			sc.idxs = append(sc.idxs, it.i)
			it.i++
			return sc.cur, g.neighborsOfSetInSet(sc, sc.cur, it.set), true
		}
		if len(sc.cur) == 0 {
			return nil, nil, false
		}
		it.i = sc.idxs[len(sc.idxs)-1] + 1
		sc.idxs = sc.idxs[:len(sc.idxs)-1]
		sc.cur = sc.cur[:len(sc.cur)-1]
	}
}

// neighborsOfSetInSet computes N(talons, set) into sc.nbr. Because set is
// iterated in order, the output is sorted and duplicate-free without a map.
func (g *Graph) neighborsOfSetInSet(sc *Scratch, talons, set []int) []int {
	sc.nbr = sc.nbr[:0]
	for _, u := range set {
		for _, v := range talons {
			if u == v || g.adj[v].has(u) {
				sc.nbr = append(sc.nbr, u)
				break
			}
		}
	}
	return sc.nbr
}

// EnumerateTalonSets calls fn for every non-empty independent set of
// vertices outside the given set with size at most maxTalons, together with
// the members of set that would have to be removed (N(T, set)). If fn
// returns false the enumeration stops early. The unified-similarity
// approximation (Algorithm 1) uses this to search for claw improvements
// measured on the final similarity rather than squared weight. The slices
// handed to fn are fresh copies the callback may retain; hot paths should
// use TalonSets instead.
func (g *Graph) EnumerateTalonSets(set []int, maxTalons int, fn func(talons, removed []int) bool) {
	var sc Scratch
	it := g.TalonSets(set, maxTalons, false, &sc)
	for {
		t, r, ok := it.Next()
		if !ok {
			return
		}
		if !fn(append([]int(nil), t...), append([]int(nil), r...)) {
			return
		}
	}
}

// ExactResult reports the outcome of the exact branch-and-bound solver.
type ExactResult struct {
	Set      []int
	Weight   float64
	Complete bool // false when the node budget was exhausted
}

// Exact computes the maximum-weight independent set by branch and bound.
// nodeBudget caps the number of explored search nodes; a non-positive
// budget means 1<<22. When the budget is exhausted the best set found so
// far is returned with Complete=false.
func (g *Graph) Exact(nodeBudget int) ExactResult {
	if nodeBudget <= 0 {
		nodeBudget = 1 << 22
	}
	n := g.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Branch on heavy vertices first to tighten the bound quickly.
	sort.Slice(order, func(a, b int) bool { return g.weights[order[a]] > g.weights[order[b]] })

	// suffixWeight[i] = total positive weight of order[i:]; an admissible
	// upper bound for pruning.
	suffixWeight := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		w := g.weights[order[i]]
		if w < 0 {
			w = 0
		}
		suffixWeight[i] = suffixWeight[i+1] + w
	}

	best := ExactResult{Complete: true}
	greedy := g.Greedy()
	best.Set = greedy
	best.Weight = g.WeightOf(greedy)

	blocked := make(bitset, (n+63)/64)
	var cur []int
	nodes := 0
	var rec func(idx int, curWeight float64)
	rec = func(idx int, curWeight float64) {
		nodes++
		if nodes > nodeBudget {
			best.Complete = false
			return
		}
		if curWeight > best.Weight {
			best.Weight = curWeight
			best.Set = append([]int(nil), cur...)
		}
		if idx >= n || curWeight+suffixWeight[idx] <= best.Weight {
			return
		}
		v := order[idx]
		// Branch 1: include v if it is not blocked and has positive weight.
		if !blocked.has(v) && g.weights[v] > 0 {
			newlyBlocked := g.adj[v].andNot(blocked)
			blocked.set(v)
			blocked.or(g.adj[v])
			cur = append(cur, v)
			rec(idx+1, curWeight+g.weights[v])
			cur = cur[:len(cur)-1]
			blocked.clear(v)
			blocked.andNotInPlace(newlyBlocked)
		}
		if !best.Complete {
			return
		}
		// Branch 2: exclude v.
		rec(idx+1, curWeight)
	}
	rec(0, 0)
	sort.Ints(best.Set)
	return best
}

// Validate returns an error when the given set is not independent; handy in
// tests and defensive checks.
func (g *Graph) Validate(set []int) error {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if g.HasEdge(set[i], set[j]) {
				return fmt.Errorf("wmis: vertices %d and %d conflict", set[i], set[j])
			}
		}
	}
	return nil
}

// bitset is a fixed-size bit vector over vertex indices.
type bitset []uint64

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) or(other bitset) {
	for i := range b {
		b[i] |= other[i]
	}
}

// andNot returns a new bitset containing the bits of b that are not in mask.
func (b bitset) andNot(mask bitset) bitset {
	out := make(bitset, len(b))
	for i := range b {
		out[i] = b[i] &^ mask[i]
	}
	return out
}

// andNotInPlace clears every bit of b present in mask.
func (b bitset) andNotInPlace(mask bitset) {
	for i := range b {
		b[i] &^= mask[i]
	}
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

func (b bitset) elements() []int {
	var out []int
	for wi, w := range b {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			out = append(out, wi*64+bit)
			w &= w - 1
		}
	}
	return out
}
