package metrics

import (
	"math"
	"testing"
	"time"
)

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEvaluate(t *testing.T) {
	truth := map[[2]int]bool{
		{0, 0}: true,
		{1, 1}: true,
		{2, 2}: true,
		{3, 3}: false, // labelled dissimilar
	}
	predicted := [][2]int{{0, 0}, {1, 1}, {3, 3}, {9, 9}}
	prf := Evaluate(predicted, truth, false)
	// tp = 2, fp = 1 (the labelled-negative pair), unlabelled ignored.
	if !approxEq(prf.Precision, 2.0/3.0) {
		t.Errorf("precision = %v, want 2/3", prf.Precision)
	}
	if !approxEq(prf.Recall, 2.0/3.0) {
		t.Errorf("recall = %v, want 2/3", prf.Recall)
	}
	if !approxEq(prf.F1, 2.0/3.0) {
		t.Errorf("F1 = %v, want 2/3", prf.F1)
	}
	strict := Evaluate(predicted, truth, true)
	if !approxEq(strict.Precision, 0.5) {
		t.Errorf("strict precision = %v, want 0.5", strict.Precision)
	}
	if prf.String() == "" {
		t.Error("String empty")
	}
	empty := Evaluate(nil, nil, false)
	if empty.Precision != 0 || empty.Recall != 0 || empty.F1 != 0 {
		t.Errorf("empty truth should give zeros: %+v", empty)
	}
	noPred := Evaluate(nil, truth, false)
	if noPred.Recall != 0 || noPred.F1 != 0 {
		t.Errorf("no predictions should give zero recall: %+v", noPred)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{0.1, 0.9, 0.5, 0.3, 0.7}
	if got := Percentile(vals, 50); !approxEq(got, 0.5) {
		t.Errorf("median = %v, want 0.5", got)
	}
	if got := Percentile(vals, 0); !approxEq(got, 0.1) {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(vals, 100); !approxEq(got, 0.9) {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	ps := Percentiles(vals, 2, 25, 50, 75, 98)
	if len(ps) != 5 {
		t.Fatalf("Percentiles returned %d values", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] < ps[i-1] {
			t.Errorf("percentiles not monotone: %v", ps)
		}
	}
	// Input slice must not be reordered.
	if vals[0] != 0.1 || vals[1] != 0.9 {
		t.Error("Percentile mutated its input")
	}
}

func TestMeanSecondsAccuracy(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !approxEq(got, 2) {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Seconds(1500 * time.Millisecond); !approxEq(got, 1.5) {
		t.Errorf("Seconds = %v", got)
	}
	if got := Accuracy([]int{1, 2, 3}, []int{1, 9, 3}); !approxEq(got, 2.0/3.0) {
		t.Errorf("Accuracy = %v", got)
	}
	if got := Accuracy(nil, nil); got != 0 {
		t.Errorf("Accuracy(nil) = %v", got)
	}
	if got := Accuracy([]int{1}, []int{1, 2}); got != 0 {
		t.Errorf("Accuracy with length mismatch = %v", got)
	}
}
