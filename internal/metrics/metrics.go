// Package metrics provides the evaluation measures used throughout Section
// 5 of the paper: precision / recall / F-measure against ground truth,
// percentiles for the approximation-accuracy table, and small helpers for
// aggregating timings.
package metrics

import (
	"fmt"
	"sort"
	"time"
)

// PRF holds precision, recall and F-measure.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
}

// String renders the triple the way the paper's tables do.
func (p PRF) String() string {
	return fmt.Sprintf("P=%.2f R=%.2f F=%.2f", p.Precision, p.Recall, p.F1)
}

// Evaluate compares a set of predicted pairs against the ground-truth pairs
// and returns precision, recall and F-measure. Predicted pairs that ground
// truth says nothing about count against precision only when strict is
// true; the paper's crowd-sourced evaluation judges only labelled pairs, so
// the default (strict=false) restricts precision to pairs with a label.
func Evaluate(predicted [][2]int, truth map[[2]int]bool, strict bool) PRF {
	if len(truth) == 0 {
		return PRF{}
	}
	tp, fp := 0, 0
	for _, p := range predicted {
		if label, ok := truth[p]; ok {
			if label {
				tp++
			} else {
				fp++
			}
		} else if strict {
			fp++
		}
	}
	positives := 0
	for _, label := range truth {
		if label {
			positives++
		}
	}
	var prf PRF
	if tp+fp > 0 {
		prf.Precision = float64(tp) / float64(tp+fp)
	}
	if positives > 0 {
		prf.Recall = float64(tp) / float64(positives)
	}
	if prf.Precision+prf.Recall > 0 {
		prf.F1 = 2 * prf.Precision * prf.Recall / (prf.Precision + prf.Recall)
	}
	return prf
}

// Percentile returns the p-th percentile (0–100) of the values using
// nearest-rank on a sorted copy. It returns 0 for an empty slice.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Percentiles evaluates several percentiles at once.
func Percentiles(values []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = Percentile(values, p)
	}
	return out
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range values {
		total += v
	}
	return total / float64(len(values))
}

// Seconds converts a duration to float seconds; convenient for tables.
func Seconds(d time.Duration) float64 { return d.Seconds() }

// Accuracy returns the fraction of trials in which got equals want.
func Accuracy(got, want []int) float64 {
	if len(got) == 0 || len(got) != len(want) {
		return 0
	}
	hit := 0
	for i := range got {
		if got[i] == want[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(got))
}
