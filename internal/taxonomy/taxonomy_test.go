package taxonomy

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperTree builds the taxonomy of Figure 1(a):
//
//	wikipedia → food → {coffee → coffee drinks → {espresso, latte}, cake → apple cake}
func paperTree(t *testing.T) *Tree {
	t.Helper()
	tr := NewTree("Wikipedia")
	food := tr.MustAddChild(tr.Root(), "food")
	coffee := tr.MustAddChild(food, "coffee")
	drinks := tr.MustAddChild(coffee, "coffee drinks")
	tr.MustAddChild(drinks, "espresso")
	tr.MustAddChild(drinks, "latte")
	cake := tr.MustAddChild(food, "cake")
	tr.MustAddChild(cake, "apple cake")
	return tr
}

func TestPaperFigure1Similarities(t *testing.T) {
	tr := paperTree(t)

	// Example 2(iii): sim(latte, espresso) = depth(coffee drinks)/max depth = 4/5.
	if got := tr.SimilarityByName("latte", "espresso"); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("sim(latte, espresso) = %v, want 0.8", got)
	}
	// Section 2.2: taxonomy similarity of "cake" and "apple cake" is 0.75.
	if got := tr.SimilarityByName("cake", "apple cake"); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("sim(cake, apple cake) = %v, want 0.75", got)
	}
	// Identical entities are perfectly similar.
	if got := tr.SimilarityByName("espresso", "espresso"); got != 1 {
		t.Errorf("sim(espresso, espresso) = %v, want 1", got)
	}
	// Unknown entity gives zero.
	if got := tr.SimilarityByName("espresso", "helsinki"); got != 0 {
		t.Errorf("sim with unknown entity = %v, want 0", got)
	}
}

func TestDepthsAndAncestors(t *testing.T) {
	tr := paperTree(t)
	esp, ok := tr.Lookup("espresso")
	if !ok {
		t.Fatal("espresso not found")
	}
	if d := tr.Depth(esp); d != 5 {
		t.Errorf("depth(espresso) = %d, want 5", d)
	}
	anc := tr.Ancestors(esp)
	if len(anc) != 5 {
		t.Fatalf("ancestors of espresso = %d nodes, want 5", len(anc))
	}
	names := make([]string, len(anc))
	for i, id := range anc {
		names[i] = tr.Name(id)
	}
	want := []string{"espresso", "coffee drinks", "coffee", "food", "wikipedia"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("ancestors[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	root := tr.Root()
	if !tr.IsAncestor(root, esp) {
		t.Error("root should be an ancestor of espresso")
	}
	if tr.IsAncestor(esp, root) {
		t.Error("espresso should not be an ancestor of root")
	}
	if got := tr.Ancestors(InvalidNode); got != nil {
		t.Errorf("Ancestors(InvalidNode) = %v, want nil", got)
	}
}

func TestLookupNormalisation(t *testing.T) {
	tr := paperTree(t)
	if _, ok := tr.Lookup("  Coffee   Drinks "); !ok {
		t.Error("lookup should normalise whitespace and case")
	}
	if _, ok := tr.LookupTokens([]string{"coffee", "drinks"}); !ok {
		t.Error("LookupTokens should find coffee drinks")
	}
	if _, ok := tr.LookupTokens([]string{"coffee", "mugs"}); ok {
		t.Error("LookupTokens should not find coffee mugs")
	}
}

func TestAddChildDuplicateAndErrors(t *testing.T) {
	tr := NewTree("root")
	a := tr.MustAddChild(tr.Root(), "alpha")
	b, err := tr.AddChild(tr.Root(), "Alpha")
	if err != nil {
		t.Fatalf("duplicate add returned error: %v", err)
	}
	if a != b {
		t.Errorf("duplicate name created a new node: %d vs %d", a, b)
	}
	if _, err := tr.AddChild(NodeID(99), "x"); err == nil {
		t.Error("expected error for out-of-range parent")
	}
	if _, err := tr.AddChild(tr.Root(), "   "); err == nil {
		t.Error("expected error for empty name")
	}
}

// naiveLCA walks parent pointers; used as the oracle for the sparse-table LCA.
func naiveLCA(t *Tree, a, b NodeID) NodeID {
	seen := map[NodeID]bool{}
	for cur := a; cur != InvalidNode; cur = t.Node(cur).Parent {
		seen[cur] = true
	}
	for cur := b; cur != InvalidNode; cur = t.Node(cur).Parent {
		if seen[cur] {
			return cur
		}
	}
	return InvalidNode
}

func TestLCAAgainstNaiveOnRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		tr := NewTree("root")
		n := 2 + rng.Intn(200)
		ids := []NodeID{tr.Root()}
		for i := 0; i < n; i++ {
			parent := ids[rng.Intn(len(ids))]
			id := tr.MustAddChild(parent, nodeName(trial, i))
			ids = append(ids, id)
		}
		tr.Finalize()
		for q := 0; q < 200; q++ {
			a := ids[rng.Intn(len(ids))]
			b := ids[rng.Intn(len(ids))]
			got := tr.LCA(a, b)
			want := naiveLCA(tr, a, b)
			if got != want {
				t.Fatalf("trial %d: LCA(%d,%d) = %d, want %d", trial, a, b, got, want)
			}
		}
	}
}

func nodeName(trial, i int) string {
	return "node" + string(rune('a'+trial%26)) + "-" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func TestLCAInvalidNodes(t *testing.T) {
	tr := paperTree(t)
	if got := tr.LCA(InvalidNode, tr.Root()); got != InvalidNode {
		t.Errorf("LCA with invalid node = %v, want InvalidNode", got)
	}
	if got := tr.Similarity(InvalidNode, tr.Root()); got != 0 {
		t.Errorf("Similarity with invalid node = %v, want 0", got)
	}
}

func TestSimilarityProperties(t *testing.T) {
	tr := paperTree(t)
	tr.Finalize()
	n := tr.Len()
	// Symmetry, range (0,1], and identity.
	f := func(x, y uint8) bool {
		a := NodeID(int(x) % n)
		b := NodeID(int(y) % n)
		sab := tr.Similarity(a, b)
		sba := tr.Similarity(b, a)
		if sab != sba {
			return false
		}
		if sab <= 0 || sab > 1 {
			return false
		}
		return tr.Similarity(a, a) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	tr := paperTree(t)
	st := tr.Stats()
	if st.Nodes != 8 {
		t.Errorf("Nodes = %d, want 8", st.Nodes)
	}
	// Leaves: espresso(5), latte(5), apple cake(4) → min 4, max 5.
	if st.MinHeight != 4 || st.MaxHeight != 5 {
		t.Errorf("heights = %d/%d, want 4/5", st.MinHeight, st.MaxHeight)
	}
	if math.Abs(st.AvgHeight-14.0/3.0) > 1e-9 {
		t.Errorf("AvgHeight = %v, want %v", st.AvgHeight, 14.0/3.0)
	}
	if st.AvgFanout <= 0 {
		t.Errorf("AvgFanout = %v, want > 0", st.AvgFanout)
	}
	if got := tr.MaxEntityTokens(); got != 2 {
		t.Errorf("MaxEntityTokens = %d, want 2", got)
	}
	single := NewTree("only")
	st = single.Stats()
	if st.Nodes != 1 || st.MaxHeight != 1 {
		t.Errorf("single-node stats = %+v", st)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := paperTree(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip length = %d, want %d", got.Len(), tr.Len())
	}
	for _, name := range tr.EntityNames() {
		a, _ := tr.Lookup(name)
		b, ok := got.Lookup(name)
		if !ok {
			t.Fatalf("entity %q lost in round trip", name)
		}
		if tr.Depth(a) != got.Depth(b) {
			t.Errorf("depth mismatch for %q: %d vs %d", name, tr.Depth(a), got.Depth(b))
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("")); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := Read(bytes.NewBufferString("child\troot\n")); err == nil {
		t.Error("expected error when first node has a parent")
	}
	if _, err := Read(bytes.NewBufferString("root\t\nchild\tmissing\n")); err == nil {
		t.Error("expected error for unknown parent")
	}
}

func TestEntityNamesSorted(t *testing.T) {
	tr := paperTree(t)
	names := tr.EntityNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("names not sorted at %d: %q > %q", i, names[i-1], names[i])
		}
	}
}

func BenchmarkLCA(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := NewTree("root")
	ids := []NodeID{tr.Root()}
	for i := 0; i < 10000; i++ {
		parent := ids[rng.Intn(len(ids))]
		ids = append(ids, tr.MustAddChild(parent, "n"+itoa(i)))
	}
	tr.Finalize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := ids[i%len(ids)]
		c := ids[(i*7919)%len(ids)]
		tr.LCA(a, c)
	}
}
