// Package taxonomy implements the IS-A knowledge hierarchy used by the
// taxonomy similarity measure of the paper (Section 2.1, Eq. 3).
//
// A taxonomy is a rooted tree whose nodes are labelled with multi-token
// entity names (for example "coffee drinks" or "energy conversion"). The
// similarity of two strings mapped onto nodes nS and nT is
//
//	simt(S, T) = |LCA(nS, nT)| / max{|nS|, |nT|}
//
// where |n| denotes the depth of node n counted from the root (the root has
// depth 1, matching the paper's Figure 1 where "Wikipedia" is depth 1 and
// "espresso" is depth 5).
//
// The package also provides entity lookup by name — the mapping used by
// segment detection — and ancestor enumeration, which is what pebble
// generation needs (a taxonomy pebble set is the node plus all of its
// ancestors, Table 2).
package taxonomy

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"github.com/aujoin/aujoin/internal/strutil"
)

// NodeID identifies a node inside a Tree. The root always has ID 0.
type NodeID int

// InvalidNode is returned by lookups that fail.
const InvalidNode NodeID = -1

// Node is a single entity in the taxonomy tree.
type Node struct {
	ID       NodeID
	Name     string // normalised entity name, e.g. "coffee drinks"
	Parent   NodeID // InvalidNode for the root
	Depth    int    // root has depth 1
	Children []NodeID
}

// Tree is an immutable-after-build taxonomy hierarchy.
//
// The zero value is not usable; construct trees with NewTree / Builder or
// load them with Read.
type Tree struct {
	nodes  []Node
	byName map[string]NodeID
	// euler tour structures for O(1) LCA via sparse table over first
	// occurrences; built lazily by Finalize.
	euler     []NodeID
	eulerDep  []int
	firstOcc  []int
	sparse    [][]int32
	finalized bool
	// mu serialises lazy finalisation so that concurrent readers never see
	// a partially built LCA index.
	mu sync.Mutex
}

// NewTree creates a taxonomy containing only a root node with the given
// name. Entity names are normalised with strutil.Normalize before storage.
func NewTree(rootName string) *Tree {
	t := &Tree{byName: make(map[string]NodeID)}
	name := strutil.Normalize(rootName)
	t.nodes = append(t.nodes, Node{ID: 0, Name: name, Parent: InvalidNode, Depth: 1})
	t.byName[name] = 0
	return t
}

// Len returns the number of nodes in the tree.
func (t *Tree) Len() int { return len(t.nodes) }

// Root returns the root node's identifier.
func (t *Tree) Root() NodeID { return 0 }

// Node returns the node with the given identifier. It panics if the id is
// out of range, mirroring slice indexing semantics.
func (t *Tree) Node(id NodeID) Node { return t.nodes[id] }

// Depth returns the depth of the node (root = 1).
func (t *Tree) Depth(id NodeID) int { return t.nodes[id].Depth }

// Name returns the normalised name of the node.
func (t *Tree) Name(id NodeID) string { return t.nodes[id].Name }

// AddChild inserts a new node under the given parent and returns its
// identifier. If another node already uses the same normalised name the
// existing node is returned and the tree is unchanged: entity names are
// unique, exactly like taxonomy entries in MeSH or Wikipedia categories.
func (t *Tree) AddChild(parent NodeID, name string) (NodeID, error) {
	if int(parent) < 0 || int(parent) >= len(t.nodes) {
		return InvalidNode, fmt.Errorf("taxonomy: parent %d out of range", parent)
	}
	norm := strutil.Normalize(name)
	if norm == "" {
		return InvalidNode, errors.New("taxonomy: empty node name")
	}
	if id, ok := t.byName[norm]; ok {
		return id, nil
	}
	id := NodeID(len(t.nodes))
	t.nodes = append(t.nodes, Node{
		ID:     id,
		Name:   norm,
		Parent: parent,
		Depth:  t.nodes[parent].Depth + 1,
	})
	t.nodes[parent].Children = append(t.nodes[parent].Children, id)
	t.byName[norm] = id
	t.finalized = false
	return id, nil
}

// MustAddChild is AddChild that panics on error; convenient in tests and
// generators where the input is known to be valid.
func (t *Tree) MustAddChild(parent NodeID, name string) NodeID {
	id, err := t.AddChild(parent, name)
	if err != nil {
		panic(err)
	}
	return id
}

// Lookup finds the node whose name equals the normalisation of the given
// string. The boolean reports whether the entity exists.
func (t *Tree) Lookup(name string) (NodeID, bool) {
	id, ok := t.byName[strutil.Normalize(name)]
	return id, ok
}

// LookupTokens finds the node whose name equals the space-joined tokens.
// This is the hot-path variant used by segment enumeration, which already
// holds normalised tokens.
func (t *Tree) LookupTokens(tokens []string) (NodeID, bool) {
	id, ok := t.byName[strutil.JoinTokens(tokens)]
	return id, ok
}

// Ancestors returns the path from the node up to and including the root,
// starting with the node itself. The returned slice has length Depth(id).
func (t *Tree) Ancestors(id NodeID) []NodeID {
	if int(id) < 0 || int(id) >= len(t.nodes) {
		return nil
	}
	path := make([]NodeID, 0, t.nodes[id].Depth)
	for cur := id; cur != InvalidNode; cur = t.nodes[cur].Parent {
		path = append(path, cur)
	}
	return path
}

// IsAncestor reports whether a is an ancestor of (or equal to) b.
func (t *Tree) IsAncestor(a, b NodeID) bool {
	for cur := b; cur != InvalidNode; cur = t.nodes[cur].Parent {
		if cur == a {
			return true
		}
	}
	return false
}

// Finalize builds the constant-time LCA index (Euler tour + sparse table).
// It is called automatically by LCA when needed and is safe to call from
// multiple goroutines; callers that keep adding nodes must not do so
// concurrently with readers.
func (t *Tree) Finalize() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.finalizeLocked()
}

func (t *Tree) finalizeLocked() {
	if t.finalized {
		return
	}
	n := len(t.nodes)
	t.euler = t.euler[:0]
	t.eulerDep = t.eulerDep[:0]
	t.firstOcc = make([]int, n)
	for i := range t.firstOcc {
		t.firstOcc[i] = -1
	}
	// Iterative Euler tour to avoid recursion depth limits on deep
	// generated taxonomies.
	type frame struct {
		node  NodeID
		child int
	}
	stack := []frame{{node: t.Root()}}
	visit := func(id NodeID) {
		if t.firstOcc[id] == -1 {
			t.firstOcc[id] = len(t.euler)
		}
		t.euler = append(t.euler, id)
		t.eulerDep = append(t.eulerDep, t.nodes[id].Depth)
	}
	visit(t.Root())
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		children := t.nodes[top.node].Children
		if top.child < len(children) {
			child := children[top.child]
			top.child++
			stack = append(stack, frame{node: child})
			visit(child)
			continue
		}
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			visit(stack[len(stack)-1].node)
		}
	}
	// Sparse table over eulerDep for range-minimum queries.
	m := len(t.euler)
	levels := 1
	for 1<<levels <= m {
		levels++
	}
	t.sparse = make([][]int32, levels)
	t.sparse[0] = make([]int32, m)
	for i := 0; i < m; i++ {
		t.sparse[0][i] = int32(i)
	}
	for k := 1; k < levels; k++ {
		span := 1 << k
		row := make([]int32, 0, m)
		prev := t.sparse[k-1]
		for i := 0; i+span <= m; i++ {
			a, b := prev[i], prev[i+span/2]
			if t.eulerDep[a] <= t.eulerDep[b] {
				row = append(row, a)
			} else {
				row = append(row, b)
			}
		}
		t.sparse[k] = row
	}
	t.finalized = true
}

// LCA returns the lowest common ancestor of a and b. Both nodes must belong
// to the tree.
func (t *Tree) LCA(a, b NodeID) NodeID {
	if !t.finalized {
		t.Finalize()
	}
	if int(a) < 0 || int(b) < 0 || int(a) >= len(t.nodes) || int(b) >= len(t.nodes) {
		return InvalidNode
	}
	i, j := t.firstOcc[a], t.firstOcc[b]
	if i > j {
		i, j = j, i
	}
	// Range-minimum over eulerDep[i..j].
	k := 0
	for 1<<(k+1) <= j-i+1 {
		k++
	}
	x := t.sparse[k][i]
	y := t.sparse[k][j-(1<<k)+1]
	if t.eulerDep[x] <= t.eulerDep[y] {
		return t.euler[x]
	}
	return t.euler[y]
}

// Similarity computes the taxonomy similarity of two nodes per Eq. (3):
// depth(LCA) / max(depth(a), depth(b)). Identical nodes have similarity 1.
func (t *Tree) Similarity(a, b NodeID) float64 {
	if int(a) < 0 || int(b) < 0 || int(a) >= len(t.nodes) || int(b) >= len(t.nodes) {
		return 0
	}
	lca := t.LCA(a, b)
	if lca == InvalidNode {
		return 0
	}
	da, db := t.nodes[a].Depth, t.nodes[b].Depth
	maxd := da
	if db > maxd {
		maxd = db
	}
	return float64(t.nodes[lca].Depth) / float64(maxd)
}

// SimilarityByName is a convenience wrapper mapping both strings to entities
// first; it returns 0 when either string is not a taxonomy entity.
func (t *Tree) SimilarityByName(s, u string) float64 {
	a, ok := t.Lookup(s)
	if !ok {
		return 0
	}
	b, ok := t.Lookup(u)
	if !ok {
		return 0
	}
	return t.Similarity(a, b)
}

// Stats summarises structural properties of the tree; used to report the
// dataset characteristics table (Table 6 of the paper).
type Stats struct {
	Nodes     int
	MinHeight int
	AvgHeight float64
	MaxHeight int
	AvgFanout float64
}

// Stats computes structural statistics over leaves (heights are leaf depths,
// matching the min/avg/max height columns of Table 6).
func (t *Tree) Stats() Stats {
	st := Stats{Nodes: len(t.nodes)}
	leafCount := 0
	internal := 0
	childSum := 0
	sumDepth := 0
	st.MinHeight = int(^uint(0) >> 1)
	for _, n := range t.nodes {
		if len(n.Children) == 0 {
			leafCount++
			sumDepth += n.Depth
			if n.Depth < st.MinHeight {
				st.MinHeight = n.Depth
			}
			if n.Depth > st.MaxHeight {
				st.MaxHeight = n.Depth
			}
		} else {
			internal++
			childSum += len(n.Children)
		}
	}
	if leafCount > 0 {
		st.AvgHeight = float64(sumDepth) / float64(leafCount)
	} else {
		st.MinHeight = 0
	}
	if internal > 0 {
		st.AvgFanout = float64(childSum) / float64(internal)
	}
	return st
}

// MaxEntityTokens returns the maximum number of tokens in any entity name.
// This feeds the claw-freeness parameter k of the approximation analysis.
func (t *Tree) MaxEntityTokens() int {
	maxTok := 0
	for _, n := range t.nodes {
		c := strings.Count(n.Name, " ") + 1
		if c > maxTok {
			maxTok = c
		}
	}
	return maxTok
}

// EntityNames returns all entity names sorted lexicographically. Intended
// for generators and debugging, not hot paths.
func (t *Tree) EntityNames() []string {
	names := make([]string, 0, len(t.nodes))
	for _, n := range t.nodes {
		names = append(names, n.Name)
	}
	sort.Strings(names)
	return names
}

// Write serialises the tree in a simple line-oriented text format:
//
//	<node name><TAB><parent name>
//
// with the root on the first line having an empty parent field. The format
// round-trips through Read.
func (t *Tree) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, n := range t.nodes {
		parent := ""
		if n.Parent != InvalidNode {
			parent = t.nodes[n.Parent].Name
		}
		if _, err := fmt.Fprintf(bw, "%s\t%s\n", n.Name, parent); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the format produced by Write. Parents must appear before
// children, which Write guarantees.
func Read(r io.Reader) (*Tree, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var t *Tree
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		parts := strings.SplitN(text, "\t", 2)
		name := parts[0]
		parent := ""
		if len(parts) == 2 {
			parent = parts[1]
		}
		if t == nil {
			if parent != "" {
				return nil, fmt.Errorf("taxonomy: line %d: first node must be the root", line)
			}
			t = NewTree(name)
			continue
		}
		pid, ok := t.Lookup(parent)
		if !ok {
			return nil, fmt.Errorf("taxonomy: line %d: unknown parent %q", line, parent)
		}
		if _, err := t.AddChild(pid, name); err != nil {
			return nil, fmt.Errorf("taxonomy: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t == nil {
		return nil, errors.New("taxonomy: empty input")
	}
	return t, nil
}
